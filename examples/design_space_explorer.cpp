// Architectural what-if exploration: because the model is parametric in
// ArchParams, it answers hardware questions, not just software ones —
// the paper's closing point that the methodology carries beyond SW26010.
//
// Question: which kernels of the suite would benefit from (a) doubling
// memory bandwidth, (b) halving the base latency, (c) doubling SPM — the
// three levers a successor chip could pull?
#include <cstdio>

#include "kernels/suite.h"
#include "model/model.h"
#include "pipeline/session.h"
#include "tuning/tuner.h"

using namespace swperf;

namespace {

/// Best achievable (model-predicted) time for `spec` on `arch`, retuning
/// tile/unroll for that machine — a fair cross-machine comparison.
double best_time_us(const kernels::KernelSpec& spec,
                    const sw::ArchParams& arch) {
  // One Session per candidate machine: the facade owns a single
  // ArchParams, and the scoped lifetime releases the memoized lowerings
  // after each sweep.
  pipeline::Session session(arch);
  const auto space = tuning::SearchSpace::standard(spec.desc, arch);
  double best = 1e300;
  for (const auto& v : space.enumerate(spec.desc, arch)) {
    best = std::min(best, session.predict(spec.desc, v).t_total);
  }
  return sw::cycles_to_us(best, arch.freq_ghz);
}

}  // namespace

int main() {
  const auto base = sw::ArchParams::sw26010();

  auto bw2 = base;
  bw2.mem_bw_gbps *= 2.0;  // HBM-class bandwidth
  auto lat2 = base;
  lat2.l_base_cycles /= 2;
  auto spm2 = base;
  spm2.spm_bytes *= 2;

  std::printf("Retuned model-predicted speedup over SW26010 per "
              "architectural lever\n");
  std::printf("%-14s %10s | %8s %8s %8s\n", "kernel", "base us", "2x bw",
              "L/2", "2x SPM");
  for (const auto& name : kernels::suite_names()) {
    const auto spec = kernels::make(name, kernels::Scale::kSmall);
    const double t0 = best_time_us(spec, base);
    std::printf("%-14s %10.1f | %7.2fx %7.2fx %7.2fx\n", name.c_str(), t0,
                t0 / best_time_us(spec, bw2),
                t0 / best_time_us(spec, lat2),
                t0 / best_time_us(spec, spm2));
  }
  std::printf(
      "\nreading: doubling bandwidth ~halves every memory-bound kernel,\n"
      "including the Gload-bound irregulars — at 64 CPEs even 8-byte\n"
      "Gloads are bandwidth-limited (64 x 11.6 > L_base), so cutting\n"
      "latency buys nothing; and bigger SPM only widens the tuning space.\n"
      "A successor chip should spend transistors on bandwidth.\n");
  return 0;
}
