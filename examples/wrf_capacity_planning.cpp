// Capacity planning with the static model: how many CPEs should a kernel
// use?  The Section IV-3 insight — more CPEs are not always faster —
// applied the way a performance engineer would: sweep configurations
// through the *model* (microseconds each), then validate only the chosen
// one in the simulator.
#include <cstdio>

#include "kernels/wrf.h"
#include "model/model.h"
#include "pipeline/session.h"
#include "sim/machine.h"

using namespace swperf;

namespace {

struct Choice {
  std::uint32_t cpes = 0;
  double predicted_us = 1e300;
};

template <typename Factory>
Choice plan(const char* name, Factory make_spec,
            pipeline::Session& session) {
  std::printf("%s:\n  %6s %10s %10s %8s %s\n", name, "CPEs", "pred us",
              "T_comp", "T_DMA", "DMA efficiency");
  Choice best;
  for (const std::uint32_t cpes : {8u, 16u, 32u, 48u, 64u, 96u, 128u}) {
    const auto spec = make_spec(cpes);
    const auto& lowered = session.lower(spec.desc, spec.tuned);
    const auto pred = session.predict(spec.desc, spec.tuned);
    const double us = pred.total_us(session.arch().freq_ghz);
    std::printf("  %6u %10.1f %10.0f %8.0f %10.2f\n", cpes, us, pred.t_comp,
                pred.t_dma, lowered.summary.dma_efficiency());
    if (us < best.predicted_us) best = {cpes, us};
  }
  std::printf("  -> model recommends %u CPEs\n", best.cpes);
  return best;
}

template <typename Factory>
void validate(const char* name, Factory make_spec, const Choice& choice,
              pipeline::Session& session) {
  // The winner was already lowered during planning; the Session memo
  // means this only pays for the one validation simulation.
  const auto spec = make_spec(choice.cpes);
  const auto& sim = session.simulate(spec.desc, spec.tuned);
  const double actual =
      sw::cycles_to_us(sim.total_cycles(), session.arch().freq_ghz);
  std::printf("  %s validation run at %u CPEs: %.1f us simulated vs %.1f "
              "us predicted (%.1f%% error)\n\n",
              name, choice.cpes, actual, choice.predicted_us,
              100.0 * (choice.predicted_us - actual) / actual);
}

}  // namespace

int main() {
  pipeline::Session session;  // SW26010 core group, Table I parameters
  std::printf("Choosing #active_CPEs with the static model "
              "(one simulation total per kernel)\n\n");

  auto dyn = [](std::uint32_t c) { return kernels::wrf_dynamics(c); };
  const auto cd = plan("WRF dynamics (memory-intensive)", dyn, session);
  validate("dynamics", dyn, cd, session);

  auto phys = [](std::uint32_t c) { return kernels::wrf_physics(c); };
  const auto cp = plan("WRF physics (computation-intensive)", phys, session);
  validate("physics", phys, cp, session);

  std::printf("Note how the memory-intensive kernel peaks below the full "
              "64 CPEs of a core group\n(transaction waste, Section IV-3) "
              "while the compute-intensive one wants them all.\n");
  return 0;
}
