// Capacity planning with the static model: how many CPEs should a kernel
// use?  The Section IV-3 insight — more CPEs are not always faster —
// applied the way a performance engineer would: sweep configurations
// through the *model* (microseconds each), then validate only the chosen
// one in the simulator.
#include <cstdio>

#include "kernels/wrf.h"
#include "model/model.h"
#include "sim/machine.h"
#include "swacc/lower.h"

using namespace swperf;

namespace {

struct Choice {
  std::uint32_t cpes = 0;
  double predicted_us = 1e300;
};

template <typename Factory>
Choice plan(const char* name, Factory make_spec,
            const sw::ArchParams& arch) {
  const model::PerfModel pm(arch);
  std::printf("%s:\n  %6s %10s %10s %8s %s\n", name, "CPEs", "pred us",
              "T_comp", "T_DMA", "DMA efficiency");
  Choice best;
  for (const std::uint32_t cpes : {8u, 16u, 32u, 48u, 64u, 96u, 128u}) {
    const auto spec = make_spec(cpes);
    const auto lowered = swacc::lower(spec.desc, spec.tuned, arch);
    const auto pred = pm.predict(lowered.summary);
    const double us = pred.total_us(arch.freq_ghz);
    std::printf("  %6u %10.1f %10.0f %8.0f %10.2f\n", cpes, us, pred.t_comp,
                pred.t_dma, lowered.summary.dma_efficiency());
    if (us < best.predicted_us) best = {cpes, us};
  }
  std::printf("  -> model recommends %u CPEs\n", best.cpes);
  return best;
}

template <typename Factory>
void validate(const char* name, Factory make_spec, const Choice& choice,
              const sw::ArchParams& arch) {
  const auto spec = make_spec(choice.cpes);
  const auto lowered = swacc::lower(spec.desc, spec.tuned, arch);
  const auto sim =
      sim::simulate(lowered.sim_config, lowered.binary, lowered.programs);
  const double actual = sw::cycles_to_us(sim.total_cycles(), arch.freq_ghz);
  std::printf("  %s validation run at %u CPEs: %.1f us simulated vs %.1f "
              "us predicted (%.1f%% error)\n\n",
              name, choice.cpes, actual, choice.predicted_us,
              100.0 * (choice.predicted_us - actual) / actual);
}

}  // namespace

int main() {
  const auto arch = sw::ArchParams::sw26010();
  std::printf("Choosing #active_CPEs with the static model "
              "(one simulation total per kernel)\n\n");

  auto dyn = [](std::uint32_t c) { return kernels::wrf_dynamics(c); };
  const auto cd = plan("WRF dynamics (memory-intensive)", dyn, arch);
  validate("dynamics", dyn, cd, arch);

  auto phys = [](std::uint32_t c) { return kernels::wrf_physics(c); };
  const auto cp = plan("WRF physics (computation-intensive)", phys, arch);
  validate("physics", phys, cp, arch);

  std::printf("Note how the memory-intensive kernel peaks below the full "
              "64 CPEs of a core group\n(transaction waste, Section IV-3) "
              "while the compute-intensive one wants them all.\n");
  return 0;
}
