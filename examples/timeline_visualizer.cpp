// Visualizing memory/computation overlap: the paper's Figure 4, drawn
// from an actual simulation trace.
//
// Eight CPEs run a chunked copy-in / compute / copy-out loop.  In the
// compute-heavy variant (Scenario 1) the memory lane shows idle gaps; in
// the memory-heavy variant (Scenario 2) the memory lane is saturated and
// the CPEs' computation hides entirely under other CPEs' transfers.
#include <cstdio>
#include <iostream>

#include "sim/machine.h"
#include "sim/trace.h"

using namespace swperf;

namespace {

sim::SimResult run_variant(std::uint64_t iters, std::uint64_t bytes) {
  isa::BlockBuilder b("body");
  const auto x = b.reg();
  for (int i = 0; i < 12; ++i) b.fmul(x, x);
  sim::KernelBinary bin;
  bin.add_block(std::move(b).build());

  std::vector<sim::CpeProgram> ps(8);
  for (auto& p : ps) {
    for (int c = 0; c < 4; ++c) {
      p.dma(mem::DmaRequest::contiguous(bytes));
      p.compute(0, iters);
      p.dma(mem::DmaRequest::contiguous(bytes, mem::Direction::kWrite));
    }
  }
  sim::SimConfig cfg;
  cfg.trace = true;
  return sim::simulate(cfg, bin, ps);
}

}  // namespace

int main() {
  std::printf("Scenario 1 — computation-bound (memory idles between "
              "requests):\n\n");
  const auto s1 = run_variant(/*iters=*/2000, /*bytes=*/4096);
  std::cout << sim::render_timeline(s1.trace, 100) << '\n';
  std::printf("memory idle: %.0f of %.0f cycles\n\n",
              sw::ticks_to_cycles(s1.mem_idle_ticks), s1.total_cycles());

  std::printf("Scenario 2 — memory-bound (compute fully hidden under "
              "other CPEs' transfers):\n\n");
  const auto s2 = run_variant(/*iters=*/100, /*bytes=*/16384);
  std::cout << sim::render_timeline(s2.trace, 100) << '\n';
  std::printf("memory idle: %.0f of %.0f cycles\n",
              sw::ticks_to_cycles(s2.mem_idle_ticks), s2.total_cycles());
  return 0;
}
