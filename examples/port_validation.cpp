// The full porting workflow: validate a kernel's SPM port *semantically*
// with the functional runtime, then *performance-wise* with the model —
// before ever running on (simulated) hardware.
//
// Kernel: one HotSpot thermal step (Rodinia).  The port stages each output
// row with its halo rows through SPM; the functional runtime executes that
// staging for real and must reproduce the plain host implementation
// exactly at any copy granularity.
#include <cmath>
#include <cstdio>
#include <vector>

#include "kernels/hotspot.h"
#include "model/report.h"
#include "sw/rng.h"
#include "swacc/runtime.h"

using namespace swperf;

int main() {
  const auto arch = sw::ArchParams::sw26010();
  constexpr std::uint32_t kRows = 256, kCols = 256;
  constexpr double kCap = 0.5;

  // ---- 1. Host algorithm + golden result. --------------------------------
  sw::Rng rng(7);
  std::vector<double> temp(kRows * kCols), power(kRows * kCols);
  for (auto& t : temp) t = 300.0 + rng.uniform(-5, 5);
  for (auto& p : power) p = rng.uniform(0, 2);
  const auto golden = kernels::host::hotspot_step(temp, power, kRows, kCols,
                                                  kCap);

  // ---- 2. SWACC port: per output row, stage [prev,this,next] + power. ----
  // (For the functional check we bind float-sized rows as in the kernel
  // description; here we validate with a simplified 3-row north/south
  // stencil, the structure the description stages.)
  swacc::KernelDesc port;
  {
    isa::BlockBuilder b("hotspot_ns");
    const auto x = b.spm_load();
    b.spm_store(b.fadd(x, x));
    port.name = "hotspot_ns";
    port.n_outer = kRows;
    port.inner_iters = kCols;
    port.body = std::move(b).build();
    const std::uint64_t row = sizeof(double) * kCols;
    port.arrays = {
        {"halo", swacc::Dir::kIn, swacc::Access::kContiguous, 3 * row},
        {"power", swacc::Dir::kIn, swacc::Access::kContiguous, row},
        {"out", swacc::Dir::kOut, swacc::Access::kContiguous, row},
    };
    port.dma_min_tile = 1;
  }

  // Build the halo image: row r of `halo` = [north | centre | south].
  std::vector<double> halo(3 * kRows * kCols);
  for (std::uint32_t r = 0; r < kRows; ++r) {
    for (std::uint32_t c = 0; c < kCols; ++c) {
      const auto at = [&](std::int64_t rr) {
        rr = std::clamp<std::int64_t>(rr, 0, kRows - 1);
        return temp[static_cast<std::size_t>(rr) * kCols + c];
      };
      halo[(3 * r + 0) * kCols + c] = at(static_cast<std::int64_t>(r) - 1);
      halo[(3 * r + 1) * kCols + c] = at(r);
      halo[(3 * r + 2) * kCols + c] = at(static_cast<std::int64_t>(r) + 1);
    }
  }

  // ---- 3. Semantic validation through the emulated SPM. ------------------
  std::vector<double> out(kRows * kCols, 0.0);
  for (const std::uint64_t tile : {1u, 2u, 5u}) {
    std::fill(out.begin(), out.end(), 0.0);
    swacc::LaunchParams lp;
    lp.tile = tile;
    swacc::Runtime rt(port, lp, arch);
    swacc::ArrayBindings bind;
    bind.bind_const<const double>("halo", halo);
    bind.bind_const<const double>("power", power);
    bind.bind<double>("out", out);
    rt.run(bind, [&](swacc::ChunkContext& ctx) {
      const auto h = ctx.spm<double>("halo");
      const auto pw = ctx.spm<double>("power");
      auto o = ctx.spm<double>("out");
      for (std::uint64_t i = 0; i < ctx.size(); ++i) {
        for (std::uint32_t c = 0; c < kCols; ++c) {
          const double tn = h[(3 * i + 0) * kCols + c];
          const double tc = h[(3 * i + 1) * kCols + c];
          const double ts = h[(3 * i + 2) * kCols + c];
          const std::uint64_t row = ctx.begin() + i;
          const double tw = c > 0 ? h[(3 * i + 1) * kCols + c - 1] : tc;
          const double te =
              c + 1 < kCols ? h[(3 * i + 1) * kCols + c + 1] : tc;
          o[i * kCols + c] =
              tc + kCap * (tn + ts + tw + te - 4.0 * tc +
                           power[row * kCols + c]);
          (void)pw;
        }
      }
    });
    double max_err = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      max_err = std::max(max_err, std::abs(out[i] - golden[i]));
    }
    std::printf("tile=%llu: SPM-staged result vs host reference, max |err| "
                "= %.2e  %s\n",
                static_cast<unsigned long long>(tile), max_err,
                max_err < 1e-12 ? "OK" : "MISMATCH");
  }

  // ---- 4. Performance assessment, statically. -----------------------------
  const auto spec = kernels::hotspot(kernels::Scale::kFull);
  const model::PerfModel pm(arch);
  std::printf("\n%s",
              model::analyze(pm, spec.desc, spec.tuned)
                  .to_string(arch)
                  .c_str());
  return 0;
}
