// The optimization advisor on a user-written kernel: a 2D Jacobi stencil
// a domain scientist might port to SW26010.  Shows how the Section IV
// closed-form analyses turn the model into actionable advice, and verifies
// each suggestion in the simulator.
#include <cstdio>

#include "model/analysis.h"
#include "pipeline/session.h"
#include "sim/machine.h"

using namespace swperf;

namespace {

swacc::KernelDesc jacobi(std::uint32_t rows, std::uint32_t cols) {
  isa::BlockBuilder b("jacobi");
  const auto c = b.spm_load();
  const auto n = b.spm_load();
  const auto s = b.spm_load();
  const auto quarter = b.reg();
  auto sum = b.fadd(n, s);
  sum = b.fadd(sum, c);
  sum = b.fadd(sum, c);
  b.spm_store(b.fmul(sum, quarter));
  b.loop_overhead(2);

  swacc::KernelDesc k;
  k.name = "jacobi2d";
  k.n_outer = rows;
  k.inner_iters = cols;
  k.body = std::move(b).build();
  k.arrays = {
      {"grid_in", swacc::Dir::kIn, swacc::Access::kContiguous,
       4ull * cols},
      {"grid_out", swacc::Dir::kOut, swacc::Access::kContiguous,
       4ull * cols},
  };
  k.dma_min_tile = 1;
  return k;
}

double simulate_us(pipeline::Session& session, const swacc::KernelDesc& k,
                   const swacc::LaunchParams& p) {
  return sw::cycles_to_us(session.simulate(k, p).total_cycles(),
                          session.arch().freq_ghz);
}

}  // namespace

int main() {
  pipeline::Session session;  // SW26010 core group, Table I parameters

  const auto kernel = jacobi(2048, 2048);
  swacc::LaunchParams params;  // a first-attempt configuration
  params.tile = 2;
  params.unroll = 1;

  double current_us = simulate_us(session, kernel, params);
  std::printf("jacobi2d @ %s: %.1f us simulated\n\n",
              params.to_string().c_str(), current_us);

  // Iteratively apply the advisor's best suggestion until it has none.
  for (int round = 1; round <= 4; ++round) {
    const auto advice = model::advise(session.model(), kernel, params);
    if (advice.empty()) {
      std::printf("round %d: advisor has no further profitable change\n",
                  round);
      break;
    }
    const auto& best = advice.front();
    const double new_us = simulate_us(session, kernel, best.suggested);
    std::printf("round %d: %s\n"
                "         rationale: %s\n"
                "         model: -%.1f%%   simulated: %.1f us -> %.1f us\n",
                round, best.optimization.c_str(), best.rationale.c_str(),
                100.0 * best.saving_fraction, current_us, new_us);
    if (new_us >= current_us) {
      std::printf("         (no measured gain; stopping)\n");
      break;
    }
    params = best.suggested;
    current_us = new_us;
  }

  std::printf("\nfinal configuration: %s (%.1f us)\n",
              params.to_string().c_str(), current_us);
  return 0;
}
