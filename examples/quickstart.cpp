// Quickstart: describe a kernel, predict its performance, verify against
// the simulator, and ask the advisor what to improve.
//
// The kernel is the paper's running example (Figure 3): element-wise
// vector addition C = A + B over 1M doubles, staged through SPM.
#include <cstdio>

#include "model/analysis.h"
#include "model/model.h"
#include "pipeline/session.h"
#include "sim/machine.h"
#include "sw/arch.h"

using namespace swperf;

int main() {
  // ---- 1. The machine: SW26010 core group, Table I parameters. ----------
  const auto arch = sw::ArchParams::sw26010();
  std::printf("SW26010 core group: %u CPEs, %.1f GB/s, %.2f GHz, "
              "%u-B transactions (%.1f cycles each)\n\n",
              arch.cpes_per_cg, arch.mem_bw_gbps, arch.freq_ghz,
              arch.trans_size_bytes, arch.trans_service_cycles());

  // ---- 2. Describe the kernel: loop body + data placement. --------------
  isa::BlockBuilder body("vecadd");
  const auto a = body.spm_load();
  const auto b = body.spm_load();
  body.spm_store(body.fadd(a, b));
  body.loop_overhead(2);

  swacc::KernelDesc kernel;
  kernel.name = "vecadd";
  kernel.n_outer = 1 << 20;   // distributed dimension
  kernel.inner_iters = 1;
  kernel.body = std::move(body).build();
  kernel.arrays = {
      {"A", swacc::Dir::kIn, swacc::Access::kContiguous, 8},
      {"B", swacc::Dir::kIn, swacc::Access::kContiguous, 8},
      {"C", swacc::Dir::kOut, swacc::Access::kContiguous, 8},
  };

  // ---- 3. Pick launch parameters and lower through the pipeline. ---------
  pipeline::Session session(arch);
  swacc::LaunchParams params;
  params.tile = 512;  // copy granularity: 512 elements per DMA request
  params.unroll = 4;
  const auto& lowered = session.lower(kernel, params);
  std::printf("lowered: %u active CPEs, %llu DMA requests/CPE, "
              "%u B SPM used\n",
              lowered.summary.active_cpes,
              static_cast<unsigned long long>(lowered.summary.n_dma_reqs()),
              lowered.spm_bytes_used);

  // ---- 4. Predict statically (microseconds, no execution). ---------------
  const auto pred = session.predict(kernel, params);
  std::printf("model:   %.1f us  (T_comp %.0f, T_DMA %.0f, overlap %.0f "
              "cycles, scenario %d)\n",
              pred.total_us(arch.freq_ghz), pred.t_comp, pred.t_dma,
              pred.t_overlap, pred.scenario);

  // ---- 5. Verify against the cycle-level simulator. -----------------------
  const auto& sim = session.simulate(kernel, params);
  const double actual_us =
      sw::cycles_to_us(sim.total_cycles(), arch.freq_ghz);
  std::printf("sim:     %.1f us  (%llu DRAM transactions)\n", actual_us,
              static_cast<unsigned long long>(sim.transactions));
  std::printf("error:   %.2f%%\n\n",
              100.0 * pipeline::relative_error(pred.total_us(arch.freq_ghz),
                                               actual_us));

  // ---- 6. Ask the model what to optimize (Section IV analyses). ----------
  const auto advice = model::advise(session.model(), kernel, params);
  if (advice.empty()) {
    std::printf("advisor: configuration already at the model's optimum\n");
  }
  for (const auto& adv : advice) {
    std::printf("advisor: %-45s -> saves %.1f%%  [%s]\n",
                adv.optimization.c_str(), 100.0 * adv.saving_fraction,
                adv.rationale.c_str());
  }
  return 0;
}
