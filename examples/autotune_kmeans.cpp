// End-to-end k-means study: run the real algorithm on the host, then tune
// its SW26010 port statically (model-based) and empirically
// (simulator-based), comparing quality and tuning cost — the Table II
// workflow on one kernel.
#include <cstdio>
#include <vector>

#include "kernels/kmeans.h"
#include "sw/rng.h"
#include "sw/time.h"
#include "tuning/tuner.h"

using namespace swperf;

int main() {
  const auto arch = sw::ArchParams::sw26010();

  // ---- 1. The actual computation (host reference). -----------------------
  // Synthetic point cloud with 8 well-separated clusters.
  sw::Rng rng(42);
  constexpr std::uint32_t kDim = 32;
  constexpr std::uint32_t kClusters = 8;
  constexpr std::size_t kPoints = 8192;
  std::vector<double> points;
  points.reserve(kPoints * kDim);
  for (std::size_t i = 0; i < kPoints; ++i) {
    const auto c = static_cast<double>(i % kClusters);
    for (std::uint32_t f = 0; f < kDim; ++f) {
      points.push_back(8.0 * c + rng.uniform(-0.5, 0.5));
    }
  }
  std::vector<std::uint32_t> assignments(kPoints);
  const auto centroids =
      kernels::host::kmeans(points, kDim, kClusters, 10, assignments);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < kPoints; ++i) {
    correct += (assignments[i] == assignments[i % kClusters]) ? 1 : 0;
  }
  std::printf("host k-means: %zu points, %u clusters -> %.1f%% consistent "
              "assignments, first centroid[0]=%.2f\n\n",
              kPoints, kClusters,
              100.0 * static_cast<double>(correct) / kPoints,
              centroids[0]);

  // ---- 2. The SW26010 port of the assignment step. -----------------------
  kernels::KmeansConfig cfg;
  cfg.n_points = kPoints * 32;  // production-size input
  cfg.n_features = kDim;
  cfg.n_clusters = kClusters;
  const auto spec = kernels::kmeans_cfg(cfg);

  // ---- 3. Tune: static (model) vs empirical (execution). -----------------
  const auto space = tuning::SearchSpace::standard(spec.desc, arch);
  tuning::TuningCosts costs;
  costs.compile_seconds = 5.0;
  costs.kernel_invocations = 8000;  // convergence iterations per run

  const auto rs = tuning::StaticTuner(arch, costs).tune(spec.desc, space);
  const auto re = tuning::EmpiricalTuner(arch, costs).tune(spec.desc, space);

  std::printf("search space: %zu feasible variants (tile x unroll)\n",
              rs.variants);
  std::printf("static  pick: %-28s -> %8.1f us  "
              "(campaign %6.0f s hw-equivalent, %.2f s host)\n",
              rs.best.to_string().c_str(),
              sw::cycles_to_us(rs.best_measured_cycles, arch.freq_ghz),
              rs.tuning_seconds, rs.host_seconds);
  std::printf("dynamic pick: %-28s -> %8.1f us  "
              "(campaign %6.0f s hw-equivalent, %.2f s host)\n",
              re.best.to_string().c_str(),
              sw::cycles_to_us(re.best_measured_cycles, arch.freq_ghz),
              re.tuning_seconds, re.host_seconds);
  std::printf("quality loss: %.2f%%   tuning-time savings: %.1fx\n",
              100.0 * (rs.best_measured_cycles / re.best_measured_cycles -
                       1.0),
              re.tuning_seconds / rs.tuning_seconds);

  // ---- 4. The per-variant view: model ranking vs measured ranking. -------
  std::printf("\n%-30s %14s\n", "variant", "predicted us");
  int shown = 0;
  for (const auto& v : rs.explored) {
    if (++shown > 6) break;
    std::printf("%-30s %14.1f\n", v.params.to_string().c_str(),
                sw::cycles_to_us(v.predicted_cycles, arch.freq_ghz));
  }
  std::printf("... (%zu total)\n", rs.explored.size());
  return 0;
}
