// swperf — command-line driver for the library.
//
//   swperf list                          registered kernels
//   swperf report   <kernel> [opts]      static performance report
//   swperf simulate <kernel> [opts]      run the cycle-level simulator
//   swperf tune     <kernel> [opts]      static (default) or empirical tuning
//   swperf timeline <kernel> [opts]      ASCII execution trace
//   swperf check    <kernel> [opts]      static diagnostics (swcheck)
//   swperf check    --all                swcheck over the whole suite
//   swperf check    --list-codes         the diagnostic code catalogue
//   swperf suite                         Fig.6-style accuracy sweep
//   swperf calibrate                     microbenchmark Table I recovery
//
// Options: --tile N  --unroll N  --cpes N  --db  --vw N  --coalesce
//          --small (reduced problem size)  --empirical  --vector (tuning)
//          --jobs N (tuning: parallel variant evaluation; results are
//          bit-identical to --jobs 1 at any N; 0 = all hardware threads)
//          --json  --Werror  --all  --list-codes (check)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/checker.h"
#include "kernels/suite.h"
#include "model/calibrate.h"
#include "model/report.h"
#include "sim/machine.h"
#include "sim/trace.h"
#include "sw/error.h"
#include "sw/stats.h"
#include "sw/table.h"
#include "swacc/lower.h"
#include "tuning/tuner.h"

using namespace swperf;

namespace {

struct Options {
  std::string command;
  std::string kernel;
  kernels::Scale scale = kernels::Scale::kFull;
  bool have_params = false;
  swacc::LaunchParams params;
  bool empirical = false;
  bool vector_space = false;
  int jobs = 1;
  bool json = false;
  bool werror = false;
  bool all_kernels = false;
  bool list_codes = false;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: swperf <list|report|simulate|tune|timeline|check|suite|"
      "calibrate> [kernel] [--tile N] [--unroll N] [--cpes N] [--db] "
      "[--vw N] [--coalesce] [--small] [--empirical] [--vector] "
      "[--jobs N] [--json] [--Werror] [--all] [--list-codes]\n");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  if (argc < 2) usage();
  Options o;
  o.command = argv[1];
  int i = 2;
  if (i < argc && argv[i][0] != '-') o.kernel = argv[i++];
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    auto next_u64 = [&](const char* what) -> std::uint64_t {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        usage();
      }
      return std::strtoull(argv[++i], nullptr, 10);
    };
    if (a == "--tile") {
      o.params.tile = next_u64("--tile");
      o.have_params = true;
    } else if (a == "--unroll") {
      o.params.unroll = static_cast<std::uint32_t>(next_u64("--unroll"));
      o.have_params = true;
    } else if (a == "--cpes") {
      o.params.requested_cpes =
          static_cast<std::uint32_t>(next_u64("--cpes"));
      o.have_params = true;
    } else if (a == "--vw") {
      o.params.vector_width = static_cast<std::uint32_t>(next_u64("--vw"));
      o.have_params = true;
    } else if (a == "--db") {
      o.params.double_buffer = true;
      o.have_params = true;
    } else if (a == "--coalesce") {
      o.params.coalesce_gloads = true;
      o.have_params = true;
    } else if (a == "--small") {
      o.scale = kernels::Scale::kSmall;
    } else if (a == "--jobs") {
      o.jobs = static_cast<int>(next_u64("--jobs"));
    } else if (a == "--empirical") {
      o.empirical = true;
    } else if (a == "--vector") {
      o.vector_space = true;
    } else if (a == "--json") {
      o.json = true;
    } else if (a == "--Werror") {
      o.werror = true;
    } else if (a == "--all") {
      o.all_kernels = true;
    } else if (a == "--list-codes") {
      o.list_codes = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      usage();
    }
  }
  return o;
}

int cmd_list() {
  for (const auto& name : kernels::suite_names()) {
    const auto spec = kernels::make(name);
    std::printf("%-14s %-9s %s\n", name.c_str(),
                spec.irregular ? "irregular" : "regular",
                spec.notes.c_str());
  }
  return 0;
}

int cmd_report(const Options& o, const sw::ArchParams& arch) {
  const auto spec = kernels::make(o.kernel, o.scale);
  const auto params = o.have_params ? o.params : spec.tuned;
  const model::PerfModel pm(arch);
  std::cout << model::analyze(pm, spec.desc, params).to_string(arch);
  return 0;
}

int cmd_simulate(const Options& o, const sw::ArchParams& arch) {
  const auto spec = kernels::make(o.kernel, o.scale);
  const auto params = o.have_params ? o.params : spec.tuned;
  const auto lk = swacc::lower(spec.desc, params, arch);
  const auto r = sim::simulate(lk.sim_config, lk.binary, lk.programs);
  const auto pred = model::PerfModel(arch).predict(lk.summary);
  std::printf("%s @ %s\n", o.kernel.c_str(), params.to_string().c_str());
  std::printf("simulated : %.1f us (%.0f cycles, %llu transactions)\n",
              sw::cycles_to_us(r.total_cycles(), arch.freq_ghz),
              r.total_cycles(),
              static_cast<unsigned long long>(r.transactions));
  std::printf("predicted : %.1f us (error %+.2f%%)\n",
              pred.total_us(arch.freq_ghz),
              100.0 * (pred.t_total - r.total_cycles()) / r.total_cycles());
  std::printf("breakdown : comp %.1f us, dma wait %.1f us, gload %.1f us "
              "(per-CPE averages)\n",
              sw::cycles_to_us(r.avg_comp_cycles(), arch.freq_ghz),
              sw::cycles_to_us(r.avg_dma_wait_cycles(), arch.freq_ghz),
              sw::cycles_to_us(r.avg_gload_wait_cycles(), arch.freq_ghz));
  return 0;
}

int cmd_tune(const Options& o, const sw::ArchParams& arch) {
  const auto spec = kernels::make(o.kernel, o.scale);
  const auto space =
      o.vector_space
          ? tuning::SearchSpace::with_vectorization(spec.desc, arch)
          : tuning::SearchSpace::standard(spec.desc, arch);
  const auto naive_lk = swacc::lower(spec.desc, spec.naive, arch);
  const double naive =
      sim::simulate(naive_lk.sim_config, naive_lk.binary, naive_lk.programs)
          .total_cycles();
  tuning::TuningOptions topt;
  topt.jobs = o.jobs;
  tuning::TuningResult r;
  if (o.empirical) {
    r = tuning::EmpiricalTuner(arch, {}, topt).tune(spec.desc, space);
  } else {
    r = tuning::StaticTuner(arch, {}, topt).tune(spec.desc, space);
  }
  std::printf("%s tuning of %s over %zu variants (%u jobs)\n",
              o.empirical ? "empirical" : "static", o.kernel.c_str(),
              r.variants, r.stats.jobs);
  std::printf("best: %s -> %.1f us (%.2fx over default), campaign %.0f s "
              "hw-equivalent, %.2f s host\n",
              r.best.to_string().c_str(),
              sw::cycles_to_us(r.best_measured_cycles, arch.freq_ghz),
              naive / r.best_measured_cycles, r.tuning_seconds,
              r.host_seconds);
  std::printf("cache: %llu evaluations, %llu hits / %llu misses\n",
              static_cast<unsigned long long>(r.stats.evaluations),
              static_cast<unsigned long long>(r.stats.cache_hits),
              static_cast<unsigned long long>(r.stats.cache_misses));
  return 0;
}

int cmd_timeline(const Options& o, const sw::ArchParams& arch) {
  const auto spec = kernels::make(o.kernel, o.scale);
  const auto params = o.have_params ? o.params : spec.tuned;
  auto lk = swacc::lower(spec.desc, params, arch);
  lk.sim_config.trace = true;
  const auto r = sim::simulate(lk.sim_config, lk.binary, lk.programs);
  std::cout << sim::render_timeline(r.trace, 110);
  return 0;
}

int cmd_suite(const sw::ArchParams& arch) {
  const model::PerfModel pm(arch);
  sw::ErrorAccumulator acc;
  std::printf("%-14s %10s %10s %8s\n", "kernel", "actual us", "pred us",
              "error");
  for (const auto& spec : kernels::fig6_suite()) {
    const auto lk = swacc::lower(spec.desc, spec.tuned, arch);
    const auto r = sim::simulate(lk.sim_config, lk.binary, lk.programs);
    const auto pred = pm.predict(lk.summary);
    acc.add(pred.t_total, r.total_cycles());
    std::printf("%-14s %10.1f %10.1f %7.1f%%\n", spec.desc.name.c_str(),
                sw::cycles_to_us(r.total_cycles(), arch.freq_ghz),
                pred.total_us(arch.freq_ghz),
                100.0 * std::abs(pred.t_total - r.total_cycles()) /
                    r.total_cycles());
  }
  std::printf("average |error|: %.1f%%\n", 100.0 * acc.mean_error());
  return 0;
}

/// Exit status of one swcheck run: 0 clean, 1 errors, and with --Werror
/// warnings count as errors too.
int check_status(const analysis::Diagnostics& diags, bool werror) {
  const auto min =
      werror ? analysis::Severity::kWarning : analysis::Severity::kError;
  return analysis::count_at_least(diags, min) > 0 ? 1 : 0;
}

void print_diags(const std::string& kernel,
                 const analysis::Diagnostics& diags, bool json) {
  if (json) {
    std::printf("{\"kernel\": \"%s\", \"diagnostics\": %s}\n",
                kernel.c_str(), analysis::to_json(diags).c_str());
    return;
  }
  for (const auto& d : diags) {
    std::printf("%s: %s\n", kernel.c_str(), d.to_string().c_str());
  }
  if (diags.empty()) std::printf("%s: clean\n", kernel.c_str());
}

int cmd_check(const Options& o, const sw::ArchParams& arch) {
  if (o.list_codes) {
    std::printf("%-8s %-8s %-12s %s\n", "code", "severity", "paper",
                "summary");
    for (const auto& c : analysis::diagnostic_catalog()) {
      std::printf("%-8s %-8s %-12s %s\n", c.code,
                  analysis::severity_name(c.severity), c.paper_ref,
                  c.summary);
    }
    return 0;
  }
  std::vector<std::string> names;
  if (o.all_kernels) {
    names = kernels::suite_names();
  } else if (!o.kernel.empty()) {
    names.push_back(o.kernel);
  } else {
    usage();
  }
  int status = 0;
  for (const auto& name : names) {
    const auto spec = kernels::make(name, o.scale);
    const auto params = o.have_params ? o.params : spec.tuned;
    const auto diags = analysis::check_all(spec.desc, params, arch);
    print_diags(name, diags, o.json);
    status = std::max(status, check_status(diags, o.werror));
  }
  return status;
}

int cmd_calibrate(const sw::ArchParams& arch) {
  const auto c = model::calibrate(arch);
  std::printf("L_base      : %.1f cycles\n", c.l_base_cycles);
  std::printf("Delta_delay : %.1f cycles\n", c.delta_delay_cycles);
  std::printf("mem_bw      : %.1f GB/s\n", c.mem_bw_gbps);
  std::printf("transaction : %.2f cycles\n", c.trans_service_cycles);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto o = parse(argc, argv);
  const auto arch = sw::ArchParams::sw26010();
  try {
    if (o.command == "list") return cmd_list();
    if (o.command == "suite") return cmd_suite(arch);
    if (o.command == "calibrate") return cmd_calibrate(arch);
    if (o.command == "check") return cmd_check(o, arch);
    if (o.kernel.empty()) usage();
    if (o.command == "report") return cmd_report(o, arch);
    if (o.command == "simulate") return cmd_simulate(o, arch);
    if (o.command == "tune") return cmd_tune(o, arch);
    if (o.command == "timeline") return cmd_timeline(o, arch);
  } catch (const sw::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
}
