// swperf — command-line driver for the library.
//
//   swperf list                          registered kernels
//   swperf report   <kernel> [opts]      static performance report
//   swperf simulate <kernel> [opts]      run the cycle-level simulator
//   swperf simulate --chip <file>        whole-chip scenario: concurrent
//                                        kernels gang-scheduled across the
//                                        CG slots, sharing cross-section
//                                        memory (schema in docs/PIPELINE.md)
//   swperf tune     <kernel> [opts]      static (default) or empirical tuning
//   swperf optimize <kernel> [opts]      guarded closed-loop optimization:
//                                        beam search over transformation
//                                        passes; every accepted step is
//                                        model-improved, sim-confirmed,
//                                        checker-clean and bit-equivalent
//                                        to the host reference
//   swperf timeline <kernel> [opts]      ASCII execution trace (--json: the
//                                        causal event stream + per-lane
//                                        utilization)
//   swperf explain  <kernel> [opts]      why is it this fast: critical path
//                                        over the causal trace, per-resource
//                                        slack, and a deterministic
//                                        bottleneck label with evidence
//   swperf check    <kernel> [opts]      static diagnostics (swcheck)
//   swperf check    --all                swcheck over the whole suite
//   swperf check    --list-codes         the diagnostic code catalogue
//   swperf suite                         Fig.6-style accuracy sweep
//   swperf calibrate                     microbenchmark Table I recovery
//   swperf eval     [file]               batch evaluation of a JSON request
//                                        ("-" or no file: read stdin); one
//                                        JSON result per entry on stdout;
//                                        --stats appends a final
//                                        {"stats": ...} line with the
//                                        session's cache counters
//   swperf serve    [opts]               long-running evaluation service:
//                                        JSONL over TCP on 127.0.0.1
//                                        (--port N; 0 = ephemeral, the
//                                        bound port is announced on
//                                        stdout) or over stdin/stdout
//                                        (--stdio); --queue-depth and
//                                        --batch bound each shard's queue
//                                        and its per-dispatch batch
//                                        (docs/SERVE.md)
//
// Options: --tile N  --unroll N  --cpes N  --db  --vw N  --coalesce
//          --small (reduced problem size)  --empirical  --vector (tuning)
//          --jobs N (tuning/optimize: parallel evaluation; results are
//          bit-identical to --jobs 1 at any N; 0 = all hardware threads)
//          --beam N --max-steps N (optimize: candidates guard-checked per
//          round / accepted-step budget)
//          --json (structured output on any subcommand)  --Werror  --all
//          --list-codes (check)  --analyze (check: legality facts per
//          kernel — launch legality plus the dataflow facts of
//          analysis::Legality; in JSON mode each kernel object gains a
//          "legality" key)
//
// `check --json` per-kernel objects carry a "summary" object (total,
// errors, warnings, notes, by_code) alongside the diagnostics array.
//
// Exit codes: 0 success (including a signal-triggered graceful serve
// drain); 1 failures (check findings, eval entry errors, runtime errors);
// 2 usage errors and malformed input (bad option values, unparsable eval
// requests); 130 one-shot commands interrupted by SIGINT.  --json output
// is never truncated by a signal: SIGINT/SIGTERM are blocked while a JSON
// line is being written.
//
// All kernel evaluation goes through pipeline::Session — the CLI owns no
// lowering/simulation plumbing of its own — and every --json surface is
// rendered by the serde writer, so escaping and number formatting are
// uniform across subcommands.
#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <map>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/checker.h"
#include "analysis/legality.h"
#include "explain/explain.h"
#include "kernels/suite.h"
#include "model/calibrate.h"
#include "model/report.h"
#include "pipeline/chip.h"
#include "pipeline/session.h"
#include "serde/serde.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/shard.h"
#include "sim/chip.h"
#include "sim/machine.h"
#include "sim/trace.h"
#include "sw/error.h"
#include "sw/stats.h"
#include "sw/table.h"
#include "transform/optimizer.h"
#include "transform/provenance.h"
#include "tuning/tuner.h"

using namespace swperf;

namespace {

struct Options {
  std::string command;
  std::string kernel;  // for `eval`: the request file path ("-" = stdin)
  kernels::Scale scale = kernels::Scale::kFull;
  bool have_params = false;
  swacc::LaunchParams params;
  bool empirical = false;
  bool vector_space = false;
  int jobs = 1;
  int beam = 4;
  int max_steps = 8;
  bool bnb = false;
  bool deterministic_json = false;
  bool json = false;
  bool time = false;
  bool werror = false;
  bool all_kernels = false;
  bool list_codes = false;
  bool analyze = false;
  std::string chip;  // chip-scenario file for `simulate --chip`
  bool stats = false;  // eval: append a final {"stats": ...} line
  // serve transport + shard configuration (docs/SERVE.md).
  bool stdio = false;
  int port = 7077;
  std::size_t queue_depth = 256;
  std::size_t batch = 8;
};

// ---- Signal handling -------------------------------------------------------
//
// One handler covers both modes.  For the long-running `serve` command the
// signal requests a graceful drain (stop accepting, answer everything
// queued, exit 0); for one-shot commands it exits 130 immediately — except
// while a JSON line is mid-write, where signals are blocked so `--json`
// output can never be truncated.

std::atomic<serve::Server*> g_server{nullptr};
std::atomic<bool> g_stdio_serving{false};

void on_signal(int) {
  serve::Server* server = g_server.load();
  if (server != nullptr) {
    server->request_stop();  // async-signal-safe: one write to a self-pipe
    return;
  }
  if (g_stdio_serving.load()) {
    serve::request_stdio_stop();
    return;
  }
  _exit(130);
}

void install_signal_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: serve's blocking poll/read calls must return EINTR so
  // the drain actually starts instead of waiting for the next request.
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: swperf <list|report|simulate|tune|optimize|timeline|explain|"
      "check|suite|calibrate|eval|serve> [kernel|file] [--tile N] "
      "[--unroll N] [--cpes N] [--db] [--vw N] [--coalesce] [--small] "
      "[--empirical] [--vector] [--jobs N] [--beam N] [--max-steps N] "
      "[--bnb] [--json] [--deterministic-json] [--time] [--Werror] [--all] "
      "[--list-codes] [--analyze] [--chip scenario.json] [--stats] "
      "[--stdio] [--port N] [--queue-depth N] [--batch N]\n");
  std::exit(2);
}

/// Strict non-negative integer parsing: the whole token must be digits.
/// "64x", "0x10", "-3", "" and " 64" are usage errors (exit 2), not
/// silently-zero launches.
std::uint64_t parse_u64(const char* what, const char* text) {
  const bool starts_with_digit =
      text != nullptr && std::isdigit(static_cast<unsigned char>(*text));
  char* end = nullptr;
  errno = 0;
  const unsigned long long v =
      starts_with_digit ? std::strtoull(text, &end, 10) : 0;
  if (!starts_with_digit || errno == ERANGE || *end != '\0') {
    std::fprintf(stderr,
                 "swperf: %s expects a non-negative integer, got '%s'\n",
                 what, text == nullptr ? "" : text);
    std::exit(2);
  }
  return v;
}

Options parse(int argc, char** argv) {
  if (argc < 2) usage();
  Options o;
  o.command = argv[1];
  int i = 2;
  // The positional argument: a kernel name, or for `eval` the request
  // file ("-" means stdin and is positional despite the leading dash).
  if (i < argc &&
      (argv[i][0] != '-' || std::strcmp(argv[i], "-") == 0)) {
    o.kernel = argv[i++];
  }
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    auto next_u64 = [&](const char* what) -> std::uint64_t {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        usage();
      }
      return parse_u64(what, argv[++i]);
    };
    if (a == "--tile") {
      o.params.tile = next_u64("--tile");
      o.have_params = true;
    } else if (a == "--unroll") {
      o.params.unroll = static_cast<std::uint32_t>(next_u64("--unroll"));
      o.have_params = true;
    } else if (a == "--cpes") {
      o.params.requested_cpes =
          static_cast<std::uint32_t>(next_u64("--cpes"));
      o.have_params = true;
    } else if (a == "--vw") {
      o.params.vector_width = static_cast<std::uint32_t>(next_u64("--vw"));
      o.have_params = true;
    } else if (a == "--db") {
      o.params.double_buffer = true;
      o.have_params = true;
    } else if (a == "--coalesce") {
      o.params.coalesce_gloads = true;
      o.have_params = true;
    } else if (a == "--small") {
      o.scale = kernels::Scale::kSmall;
    } else if (a == "--jobs") {
      o.jobs = static_cast<int>(next_u64("--jobs"));
    } else if (a == "--beam") {
      o.beam = static_cast<int>(next_u64("--beam"));
    } else if (a == "--max-steps") {
      o.max_steps = static_cast<int>(next_u64("--max-steps"));
    } else if (a == "--empirical") {
      o.empirical = true;
    } else if (a == "--vector") {
      o.vector_space = true;
    } else if (a == "--bnb") {
      o.bnb = true;
    } else if (a == "--json") {
      o.json = true;
    } else if (a == "--deterministic-json") {
      o.deterministic_json = true;
      o.json = true;
    } else if (a == "--time") {
      o.time = true;
    } else if (a == "--Werror") {
      o.werror = true;
    } else if (a == "--all") {
      o.all_kernels = true;
    } else if (a == "--list-codes") {
      o.list_codes = true;
    } else if (a == "--analyze") {
      o.analyze = true;
    } else if (a == "--stats") {
      o.stats = true;
    } else if (a == "--stdio") {
      o.stdio = true;
    } else if (a == "--port") {
      const std::uint64_t port = next_u64("--port");
      if (port > 65535) {
        std::fprintf(stderr, "swperf: --port expects 0..65535, got %llu\n",
                     static_cast<unsigned long long>(port));
        std::exit(2);
      }
      o.port = static_cast<int>(port);
    } else if (a == "--queue-depth") {
      const std::uint64_t depth = next_u64("--queue-depth");
      if (depth == 0) {
        std::fprintf(stderr, "swperf: --queue-depth expects at least 1\n");
        std::exit(2);
      }
      o.queue_depth = static_cast<std::size_t>(depth);
    } else if (a == "--batch") {
      const std::uint64_t batch = next_u64("--batch");
      if (batch == 0) {
        std::fprintf(stderr, "swperf: --batch expects at least 1\n");
        std::exit(2);
      }
      o.batch = static_cast<std::size_t>(batch);
    } else if (a == "--chip") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --chip\n");
        usage();
      }
      o.chip = argv[++i];
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      usage();
    }
  }
  return o;
}

void print_json_line(const serde::Json& j) {
  std::string out = j.dump();
  out.push_back('\n');
  // Block SIGINT/SIGTERM for the duration of the write: the handler exits
  // the process for one-shot commands, and a half-written JSON line is
  // worse for a consumer than one extra complete line.
  sigset_t block;
  sigemptyset(&block);
  sigaddset(&block, SIGINT);
  sigaddset(&block, SIGTERM);
  sigset_t previous;
  sigprocmask(SIG_BLOCK, &block, &previous);
  std::fputs(out.c_str(), stdout);
  std::fflush(stdout);
  sigprocmask(SIG_SETMASK, &previous, nullptr);
}

int cmd_list(const Options& o) {
  if (o.json) {
    serde::Json arr = serde::Json::array();
    for (const auto& name : kernels::suite_names()) {
      const auto spec = kernels::make(name);
      serde::Json j = serde::Json::object();
      j.set("name", name);
      j.set("irregular", spec.irregular);
      j.set("notes", spec.notes);
      arr.push_back(std::move(j));
    }
    print_json_line(arr);
    return 0;
  }
  for (const auto& name : kernels::suite_names()) {
    const auto spec = kernels::make(name);
    std::printf("%-14s %-9s %s\n", name.c_str(),
                spec.irregular ? "irregular" : "regular",
                spec.notes.c_str());
  }
  return 0;
}

int cmd_report(const Options& o, pipeline::Session& session) {
  const auto spec = kernels::make(o.kernel, o.scale);
  const auto params = o.have_params ? o.params : spec.tuned;
  const auto report = model::analyze(session.model(), spec.desc, params);
  if (o.json) {
    print_json_line(serde::to_json(report));
    return 0;
  }
  std::cout << report.to_string(session.arch());
  return 0;
}

/// `swperf simulate --chip scenario.json`: run a whole-chip scenario —
/// concurrent kernels gang-scheduled over the chip's CG slots, sharing
/// cross-section memory.  Output is deterministic: repeated runs (at any
/// --jobs value; the chip engine is single-threaded) render byte-identical
/// JSON.
int cmd_simulate_chip(const Options& o, pipeline::Session& session) {
  std::ifstream in(o.chip, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "swperf: cannot open chip scenario '%s'\n",
                 o.chip.c_str());
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto parsed = serde::Json::parse(ss.str());
  if (!parsed.ok) {
    std::fprintf(stderr, "swperf: malformed chip scenario: %s\n",
                 parsed.error.c_str());
    return 2;
  }
  const auto spec = pipeline::chip_scenario_spec_from_json(parsed.value);
  const auto scenario = pipeline::assemble_chip_scenario(spec, session);
  const auto result = sim::simulate_chip(scenario);

  if (o.json) {
    print_json_line(serde::to_json(result));
    return 0;
  }
  const auto& arch = session.arch();
  std::printf("chip: %u CG slots, %zu jobs, %.1f us makespan\n",
              scenario.core_groups, result.jobs.size(),
              sw::cycles_to_us(result.sim.total_cycles(), arch.freq_ghz));
  std::printf("%-16s %3s %5s %12s %12s %12s\n", "job", "cgs", "cpes",
              "launch us", "finish us", "makespan us");
  for (const auto& j : result.jobs) {
    std::printf("%-16s %3u %5u %12.1f %12.1f %12.1f\n", j.name.c_str(),
                j.core_groups, j.cpes,
                sw::cycles_to_us(sw::ticks_to_cycles(j.launch_ticks),
                                 arch.freq_ghz),
                sw::cycles_to_us(sw::ticks_to_cycles(j.finish_ticks),
                                 arch.freq_ghz),
                sw::cycles_to_us(sw::ticks_to_cycles(j.makespan_ticks()),
                                 arch.freq_ghz));
  }
  std::printf("memory    : %llu transactions, %.1f us busy\n",
              static_cast<unsigned long long>(result.sim.transactions),
              sw::cycles_to_us(sw::ticks_to_cycles(result.sim.mem_busy_ticks),
                               arch.freq_ghz));
  return 0;
}

int cmd_simulate(const Options& o, pipeline::Session& session) {
  if (!o.chip.empty()) return cmd_simulate_chip(o, session);
  const auto spec = kernels::make(o.kernel, o.scale);
  const auto params = o.have_params ? o.params : spec.tuned;

  // Host-side engine timing (--time): run the simulation once outside the
  // session memo under a wall clock, so engine-throughput regressions are
  // observable from the CLI without rebuilding the bench.
  double host_seconds = 0.0;
  pipeline::Evaluation e;
  if (o.time) {
    const auto& lk = session.lower(spec.desc, params);
    const auto t0 = std::chrono::steady_clock::now();
    auto timed = sim::simulate(lk.sim_config, lk.binary, lk.programs);
    host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    e.lowered = lk;
    e.actual = std::move(timed);
    e.predicted = session.model().predict(lk.summary);
  } else {
    e = session.evaluate(spec.desc, params);
  }
  const double events_per_sec =
      host_seconds > 0.0
          ? static_cast<double>(e.actual.counters.events_popped) / host_seconds
          : 0.0;

  if (o.json) {
    serde::Json j = pipeline::to_json(e);
    if (o.time) {
      serde::Json t = serde::Json::object();
      t.set("host_seconds", host_seconds);
      t.set("events_popped", e.actual.counters.events_popped);
      t.set("events_per_sec", events_per_sec);
      t.set("batched_grants", e.actual.counters.batched_grants);
      t.set("batched_transactions", e.actual.counters.batched_transactions);
      t.set("train_arrivals_absorbed",
            e.actual.counters.train_arrivals_absorbed);
      t.set("mc_enqueued", e.actual.counters.mc_enqueued);
      t.set("mc_max_queued", e.actual.counters.mc_max_queued);
      j.set("timing", std::move(t));
    }
    print_json_line(j);
    return 0;
  }
  const auto& arch = session.arch();
  std::printf("%s @ %s\n", o.kernel.c_str(), params.to_string().c_str());
  std::printf("simulated : %.1f us (%.0f cycles, %llu transactions)\n",
              e.actual_us(arch), e.actual_cycles(),
              static_cast<unsigned long long>(e.actual.transactions));
  std::printf("predicted : %.1f us (error %+.2f%%)\n", e.predicted_us(arch),
              100.0 * e.error());
  std::printf("breakdown : comp %.1f us, dma wait %.1f us, gload %.1f us "
              "(per-CPE averages)\n",
              sw::cycles_to_us(e.actual.avg_comp_cycles(), arch.freq_ghz),
              sw::cycles_to_us(e.actual.avg_dma_wait_cycles(), arch.freq_ghz),
              sw::cycles_to_us(e.actual.avg_gload_wait_cycles(),
                               arch.freq_ghz));
  if (o.time) {
    std::printf("host      : %.3f ms wall, %llu events, %.2f Mevents/s\n",
                1e3 * host_seconds,
                static_cast<unsigned long long>(
                    e.actual.counters.events_popped),
                1e-6 * events_per_sec);
    const auto& c = e.actual.counters;
    std::printf("fast path : %llu batched grants (%llu transactions), "
                "%llu arrivals absorbed\n",
                static_cast<unsigned long long>(c.batched_grants),
                static_cast<unsigned long long>(c.batched_transactions),
                static_cast<unsigned long long>(c.train_arrivals_absorbed));
    std::printf("mem queue : %llu enqueued, max depth %llu\n",
                static_cast<unsigned long long>(c.mc_enqueued),
                static_cast<unsigned long long>(c.mc_max_queued));
  }
  return 0;
}

int cmd_tune(const Options& o, pipeline::Session& session) {
  const auto& arch = session.arch();
  const auto spec = kernels::make(o.kernel, o.scale);
  const auto space =
      o.vector_space
          ? tuning::SearchSpace::with_vectorization(spec.desc, arch)
          : tuning::SearchSpace::standard(spec.desc, arch);
  const double naive =
      session.simulate(spec.desc, spec.naive).total_cycles();
  tuning::TuningOptions topt;
  topt.jobs = o.jobs;
  topt.branch_and_bound = o.bnb;
  auto r = session.tune(spec.desc, space, o.empirical, topt);
  if (o.deterministic_json) {
    // Byte-stable output for golden comparisons / diffing: zero both
    // timing fields (host_seconds is wall clock; tuning_seconds is kept in
    // lockstep so the pair always reads as "timing suppressed").
    r.tuning_seconds = 0.0;
    r.host_seconds = 0.0;
  }
  // naive / best is +inf for a degenerate zero-cycle best; the JSON
  // writer renders that as null, the text path prints "inf".
  const double speedup = naive / r.best_measured_cycles;
  if (o.json) {
    serde::Json j = serde::Json::object();
    j.set("kernel", o.kernel);
    j.set("mode", o.empirical ? "empirical" : "static");
    j.set("naive_cycles", naive);
    j.set("speedup", speedup);
    j.set("result", serde::to_json(r));
    print_json_line(j);
    return 0;
  }
  std::printf("%s tuning of %s over %zu variants (%u jobs)\n",
              o.empirical ? "empirical" : "static", o.kernel.c_str(),
              r.variants, r.stats.jobs);
  std::printf("best: %s -> %.1f us (%.2fx over default), campaign %.0f s "
              "hw-equivalent, %.2f s host\n",
              r.best.to_string().c_str(),
              sw::cycles_to_us(r.best_measured_cycles, arch.freq_ghz),
              speedup, r.tuning_seconds, r.host_seconds);
  std::printf("cache: %llu evaluations, %llu hits / %llu misses, "
              "%llu lowerings skipped, %llu bound-pruned, "
              "%llu skeleton reuses\n",
              static_cast<unsigned long long>(r.stats.evaluations),
              static_cast<unsigned long long>(r.stats.cache_hits),
              static_cast<unsigned long long>(r.stats.cache_misses),
              static_cast<unsigned long long>(r.stats.lowers_skipped),
              static_cast<unsigned long long>(r.stats.bound_pruned),
              static_cast<unsigned long long>(r.stats.skeleton_reuses));
  return 0;
}

int cmd_optimize(const Options& o, pipeline::Session& session) {
  const auto spec = kernels::make(o.kernel, o.scale);
  // The closed loop starts from the Table II naive launch (or an explicit
  // override) — the point is to *discover* the tuned configuration, not to
  // start from it.
  const auto initial = o.have_params ? o.params : spec.naive;
  transform::OptimizerOptions topt;
  topt.max_steps = o.max_steps;
  topt.beam = o.beam;
  topt.jobs = o.jobs;
  transform::Optimizer optimizer(session, topt);
  const auto t0 = std::chrono::steady_clock::now();
  auto r = optimizer.optimize(spec.desc, initial);
  r.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (o.json) {
    print_json_line(serde::optimize_report_json(r, o.deterministic_json));
    return 0;
  }
  const auto& arch = session.arch();
  std::printf("%s: %d accepted steps over %d rounds (%zu tried), "
              "%.2f s host\n",
              o.kernel.c_str(), r.accepted_steps, r.rounds, r.steps.size(),
              r.host_seconds);
  for (const auto& s : r.steps) {
    if (s.accepted) {
      std::printf("  + %-14s %-34s %.1f -> %.1f us measured\n",
                  s.step.pass.c_str(), s.step.detail.c_str(),
                  sw::cycles_to_us(s.measured_before, arch.freq_ghz),
                  sw::cycles_to_us(s.measured_after, arch.freq_ghz));
    } else {
      std::printf("  - %-14s %-34s rejected: %s\n", s.step.pass.c_str(),
                  s.step.detail.c_str(), s.rejection.c_str());
    }
  }
  std::printf("initial: %s -> %.1f us\n", r.initial_params.to_string().c_str(),
              sw::cycles_to_us(r.initial_measured, arch.freq_ghz));
  std::printf("final  : %s -> %.1f us (%.2fx)\n",
              r.final_params.to_string().c_str(),
              sw::cycles_to_us(r.final_measured, arch.freq_ghz), r.speedup());
  return 0;
}

int cmd_timeline(const Options& o, pipeline::Session& session) {
  const auto spec = kernels::make(o.kernel, o.scale);
  const auto params = o.have_params ? o.params : spec.tuned;
  const auto r = session.simulate_traced(spec.desc, params);
  if (o.json) {
    serde::Json j = serde::Json::object();
    j.set("kernel", o.kernel);
    j.set("params", serde::to_json(params));
    j.set("actual", serde::to_json(r));
    j.set("trace", serde::to_json(r.trace));
    print_json_line(j);
    return 0;
  }
  std::cout << sim::render_timeline(r.trace, 110);
  return 0;
}

int cmd_explain(const Options& o, pipeline::Session& session) {
  const auto spec = kernels::make(o.kernel, o.scale);
  const auto params = o.have_params ? o.params : spec.tuned;
  const auto e = session.explain(spec.desc, params);
  if (o.json) {
    print_json_line(explain::to_json(e));
    return 0;
  }
  const auto& arch = session.arch();
  std::printf("%s @ %s\n", e.kernel.c_str(), e.params.to_string().c_str());
  std::printf("time      : %.1f us (%.0f cycles), roofline %s "
              "(AI %.2f flops/byte)\n",
              sw::cycles_to_us(e.time_cycles, arch.freq_ghz), e.time_cycles,
              e.roofline_memory_bound ? "memory-bound" : "compute-bound",
              e.operational_intensity);
  std::printf("bottleneck: %s — %s\n", explain::label_name(e.label),
              e.evidence.c_str());
  const auto& b = e.breakdown;
  std::printf("critical path (%zu of %llu events): comp %.0f, dma wait "
              "%.0f, gload %.0f, barrier %.0f, mem service %.0f, idle %.0f "
              "cycles\n",
              e.path.size(),
              static_cast<unsigned long long>(e.trace_events),
              sw::ticks_to_cycles(b.compute), sw::ticks_to_cycles(b.dma_wait),
              sw::ticks_to_cycles(b.gload_wait),
              sw::ticks_to_cycles(b.barrier),
              sw::ticks_to_cycles(b.mem_service),
              sw::ticks_to_cycles(b.idle));
  std::printf("%-12s %12s %12s %12s %6s\n", "resource", "busy cyc",
              "critical cyc", "slack cyc", "util");
  for (const auto& r : e.slack) {
    std::printf("%-12s %12.0f %12.0f %12.0f %5.0f%%\n", r.resource.c_str(),
                r.busy_cycles, r.critical_cycles, r.slack_cycles,
                100.0 * r.utilization);
  }
  return 0;
}

int cmd_suite(const Options& o, pipeline::Session& session) {
  const auto& arch = session.arch();
  sw::ErrorAccumulator acc;
  if (!o.json) {
    std::printf("%-14s %10s %10s %8s\n", "kernel", "actual us", "pred us",
                "error");
  }
  for (const auto& spec : kernels::fig6_suite(o.scale)) {
    const auto e = session.evaluate(spec.desc, spec.tuned);
    acc.add(e.predicted.t_total, e.actual_cycles());
    if (o.json) {
      print_json_line(pipeline::to_json(e));
      continue;
    }
    std::printf("%-14s %10.1f %10.1f %7.1f%%\n", spec.desc.name.c_str(),
                e.actual_us(arch), e.predicted_us(arch),
                100.0 * std::abs(e.error()));
  }
  if (o.json) {
    serde::Json j = serde::Json::object();
    j.set("kernels", acc.count());
    j.set("mean_abs_error", acc.mean_error());
    j.set("max_abs_error", acc.max_error());
    print_json_line(j);
  } else {
    std::printf("average |error|: %.1f%%\n", 100.0 * acc.mean_error());
  }
  return 0;
}

/// Exit status of one swcheck run: 0 clean, 1 errors, and with --Werror
/// warnings count as errors too.
int check_status(const analysis::Diagnostics& diags, bool werror) {
  const auto min =
      werror ? analysis::Severity::kWarning : analysis::Severity::kError;
  return analysis::count_at_least(diags, min) > 0 ? 1 : 0;
}

/// Per-kernel rollup of one check run: totals per severity plus per-code
/// counts (sorted by code, so output is diff-stable).
serde::Json diag_summary(const analysis::Diagnostics& diags) {
  int errors = 0;
  int warnings = 0;
  int notes = 0;
  std::map<std::string, int> by_code;
  for (const auto& d : diags) {
    if (d.severity == analysis::Severity::kError) {
      ++errors;
    } else if (d.severity == analysis::Severity::kWarning) {
      ++warnings;
    } else {
      ++notes;
    }
    ++by_code[d.code];
  }
  serde::Json s = serde::Json::object();
  s.set("total", diags.size());
  s.set("errors", errors);
  s.set("warnings", warnings);
  s.set("notes", notes);
  serde::Json codes = serde::Json::object();
  for (const auto& [code, count] : by_code) codes.set(code, count);
  s.set("by_code", std::move(codes));
  return s;
}

void print_diags(const std::string& kernel,
                 const analysis::Diagnostics& diags, bool json,
                 const analysis::Legality* legality) {
  if (json) {
    serde::Json j = serde::Json::object();
    j.set("kernel", kernel);
    j.set("diagnostics", serde::to_json(diags));
    j.set("summary", diag_summary(diags));
    if (legality != nullptr) {
      j.set("legality", serde::to_json(*legality));
    }
    print_json_line(j);
    return;
  }
  for (const auto& d : diags) {
    std::printf("%s: %s\n", kernel.c_str(), d.to_string().c_str());
  }
  if (diags.empty()) std::printf("%s: clean\n", kernel.c_str());
  if (legality != nullptr) {
    const auto& l = *legality;
    std::string codes;
    for (const auto& c : l.error_codes) {
      if (!codes.empty()) codes += ", ";
      codes += c;
    }
    std::printf("%s: launch %s%s%s\n", kernel.c_str(),
                l.launch_legal ? "legal" : "illegal",
                codes.empty() ? "" : ": ", codes.c_str());
    std::printf(
        "%s: facts: spm_fits=%s loop_carried_independent=%s "
        "regions_disjoint=%s dma_protocol_clean=%s barriers_aligned=%s\n",
        kernel.c_str(), analysis::fact_name(l.spm_fits),
        analysis::fact_name(l.loop_carried_independent),
        analysis::fact_name(l.regions_disjoint),
        analysis::fact_name(l.dma_protocol_clean),
        analysis::fact_name(l.barriers_aligned));
  }
}

int cmd_check(const Options& o, pipeline::Session& session) {
  if (o.list_codes) {
    // The catalogue is pinned sorted-by-code and duplicate-free
    // (tests/analysis/engine_test.cpp), so both renderings below are
    // deterministic without re-sorting here.
    if (o.json) {
      serde::Json arr = serde::Json::array();
      for (const auto& c : analysis::diagnostic_catalog()) {
        serde::Json j = serde::Json::object();
        j.set("code", c.code);
        j.set("severity", analysis::severity_name(c.severity));
        j.set("family", c.family);
        j.set("paper", c.paper_ref);
        j.set("summary", c.summary);
        arr.push_back(std::move(j));
      }
      print_json_line(arr);
      return 0;
    }
    std::printf("%-8s %-8s %-10s %-12s %s\n", "code", "severity", "family",
                "paper", "summary");
    for (const auto& c : analysis::diagnostic_catalog()) {
      std::printf("%-8s %-8s %-10s %-12s %s\n", c.code,
                  analysis::severity_name(c.severity), c.family, c.paper_ref,
                  c.summary);
    }
    return 0;
  }
  std::vector<std::string> names;
  if (o.all_kernels) {
    names = kernels::suite_names();
  } else if (!o.kernel.empty()) {
    names.push_back(o.kernel);
  } else {
    usage();
  }
  int status = 0;
  for (const auto& name : names) {
    const auto spec = kernels::make(name, o.scale);
    const auto params = o.have_params ? o.params : spec.tuned;
    const auto diags = session.check(spec.desc, params);
    analysis::Legality legality;
    if (o.analyze) {
      legality = analysis::launch_legality(spec.desc, params, session.arch());
      if (legality.launch_legal) {
        // Reuse the session's memoized lowering rather than re-lowering
        // through program_legality().
        const auto& lk = session.lower(spec.desc, params);
        analysis::refine_with_program(legality, lk.binary, lk.programs,
                                      session.arch());
      }
    }
    print_diags(name, diags, o.json, o.analyze ? &legality : nullptr);
    status = std::max(status, check_status(diags, o.werror));
  }
  return status;
}

int cmd_calibrate(const Options& o, const sw::ArchParams& arch) {
  const auto c = model::calibrate(arch);
  if (o.json) {
    print_json_line(serde::to_json(c));
    return 0;
  }
  std::printf("L_base      : %.1f cycles\n", c.l_base_cycles);
  std::printf("Delta_delay : %.1f cycles\n", c.delta_delay_cycles);
  std::printf("mem_bw      : %.1f GB/s\n", c.mem_bw_gbps);
  std::printf("transaction : %.2f cycles\n", c.trans_service_cycles);
  return 0;
}

// ---- swperf eval: batch evaluation ----------------------------------------
//
// Request: a JSON array of entries (the schema serve::execute_entry
// documents — kernel/scale/params/stages/chip; docs/PIPELINE.md).
// Response: one JSON object per entry, in order. Entries that fail report
// {"kernel":..., "ok": false, "message": ...} without aborting the batch.
// The entry executor itself lives in src/serve/service.cpp, shared
// verbatim with the `swperf serve` daemon.

int cmd_eval(const Options& o, pipeline::Session& session) {
  std::string text;
  if (o.kernel.empty() || o.kernel == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    std::ifstream in(o.kernel, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "swperf: cannot open eval request '%s'\n",
                   o.kernel.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }
  const auto parsed = serde::Json::parse(text);
  if (!parsed.ok) {
    std::fprintf(stderr, "swperf: malformed eval request: %s\n",
                 parsed.error.c_str());
    return 2;
  }
  if (!parsed.value.is_array()) {
    std::fprintf(stderr,
                 "swperf: eval request must be a JSON array of entries\n");
    return 2;
  }
  bool failed = false;
  for (const auto& entry : parsed.value.items()) {
    print_json_line(serve::execute_entry(entry, session, failed));
  }
  if (o.stats) {
    // The final line reports the session's cache effectiveness over the
    // whole batch — the same counters `swperf serve` serves per shard.
    serde::Json j = serde::Json::object();
    j.set("stats", pipeline::to_json(session.stats()));
    print_json_line(j);
  }
  return failed ? 1 : 0;
}

// ---- swperf serve: the long-running evaluation service --------------------

int cmd_serve(const Options& o) {
  if (!o.kernel.empty()) {
    std::fprintf(stderr, "swperf: serve takes no positional argument\n");
    return 2;
  }
  serve::ServeOptions opts;
  opts.port = o.port;
  opts.jobs = o.jobs;
  opts.queue_depth = o.queue_depth;
  opts.batch = o.batch;
  if (o.stdio) {
    g_stdio_serving.store(true);
    const int rc = serve::serve_stdio(std::cin, std::cout, opts);
    g_stdio_serving.store(false);
    return rc;
  }
  serve::Server server(opts);
  std::string error;
  if (!server.listen_on(&error)) {
    std::fprintf(stderr, "swperf: serve: %s\n", error.c_str());
    return 2;
  }
  // Announce the bound address on stdout (essential with --port 0) so
  // drivers can connect without racing the listener.
  serde::Json hello = serde::Json::object();
  serde::Json addr = serde::Json::object();
  addr.set("host", "127.0.0.1");
  addr.set("port", server.port());
  hello.set("listening", std::move(addr));
  print_json_line(hello);
  g_server.store(&server);
  const int rc = server.run();
  g_server.store(nullptr);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const auto o = parse(argc, argv);
  install_signal_handlers();
  const auto arch = sw::ArchParams::sw26010();
  pipeline::Session session(arch);
  try {
    if (o.command == "serve") return cmd_serve(o);
    if (o.command == "list") return cmd_list(o);
    if (o.command == "suite") return cmd_suite(o, session);
    if (o.command == "calibrate") return cmd_calibrate(o, arch);
    if (o.command == "check") return cmd_check(o, session);
    if (o.command == "eval") return cmd_eval(o, session);
    if (o.command == "simulate" && !o.chip.empty()) {
      return cmd_simulate(o, session);
    }
    if (o.kernel.empty()) usage();
    if (o.command == "report") return cmd_report(o, session);
    if (o.command == "simulate") return cmd_simulate(o, session);
    if (o.command == "tune") return cmd_tune(o, session);
    if (o.command == "optimize") return cmd_optimize(o, session);
    if (o.command == "timeline") return cmd_timeline(o, session);
    if (o.command == "explain") return cmd_explain(o, session);
  } catch (const sw::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
}
