// Memory request descriptions: DMA and Gload/Gstore.
//
// SW26010 supports two ways for a CPE to reach main memory
// (Section II-A):
//   * DMA between main memory and SPM, in blocks (efficient, long latency);
//   * Gload/Gstore: normal ld/st between main memory and registers, up to
//     32 bytes per request — but each such request still consumes a whole
//     256-B DRAM transaction, wasting most of the bandwidth.
//
// A *DMA request* here corresponds to one SWACC copy intrinsic.  The SWACC
// compiler emits one DMA call per contiguous segment (several arrays,
// and/or several rows of a strided copy) and the CPE halts only at the last
// call, so the whole intrinsic behaves as a single request whose MRT is the
// sum over segments (Section III-C).  Each segment is rounded up to whole
// DRAM transactions separately — the transaction waste that drives the
// paper's #active_CPEs analysis (Section IV-3).
#pragma once

#include <cstdint>
#include <vector>

#include "sw/arch.h"

namespace swperf::mem {

enum class Direction : std::uint8_t {
  kRead,   // main memory -> SPM / registers (copy-in, gload)
  kWrite,  // SPM / registers -> main memory (copy-out, gstore)
};

/// `count` contiguous segments of `bytes` each.
struct DmaSeg {
  std::uint64_t bytes = 0;
  std::uint32_t count = 1;
};

/// One DMA request (one copy intrinsic): a bag of contiguous segments.
struct DmaRequest {
  std::vector<DmaSeg> segs;
  Direction dir = Direction::kRead;

  /// A single contiguous copy of `bytes`.
  static DmaRequest contiguous(std::uint64_t bytes,
                               Direction d = Direction::kRead) {
    return DmaRequest{{DmaSeg{bytes, 1}}, d};
  }

  /// A strided copy: `count` segments of `seg_bytes` each.
  static DmaRequest strided(std::uint64_t seg_bytes, std::uint32_t count,
                            Direction d = Direction::kRead) {
    return DmaRequest{{DmaSeg{seg_bytes, count}}, d};
  }

  DmaRequest& add(std::uint64_t seg_bytes, std::uint32_t count = 1) {
    if (seg_bytes > 0 && count > 0) segs.push_back(DmaSeg{seg_bytes, count});
    return *this;
  }

  /// Bytes the program asked to move.
  std::uint64_t total_bytes() const {
    std::uint64_t s = 0;
    for (const auto& seg : segs) s += seg.bytes * seg.count;
    return s;
  }

  /// MRT of this request (Eq. 5, summed over segments).
  std::uint64_t transactions(const sw::ArchParams& p) const {
    std::uint64_t s = 0;
    for (const auto& seg : segs) {
      s += p.transactions_for(seg.bytes) * seg.count;
    }
    return s;
  }

  /// Bytes actually moved over the DRAM interface (whole transactions).
  std::uint64_t transferred_bytes(const sw::ArchParams& p) const {
    return transactions(p) * p.trans_size_bytes;
  }

  /// Fraction of moved bytes that were requested (1.0 = no waste).
  double efficiency(const sw::ArchParams& p) const {
    const auto moved = transferred_bytes(p);
    return moved == 0 ? 1.0
                      : static_cast<double>(total_bytes()) /
                            static_cast<double>(moved);
  }

  bool empty() const { return total_bytes() == 0; }
};

/// One Gload/Gstore request: at most gload_max_bytes (32 B), exactly one
/// DRAM transaction regardless of size.
struct GloadRequest {
  std::uint32_t bytes = 8;
  Direction dir = Direction::kRead;
};

}  // namespace swperf::mem
