// Per-CPE DMA engine: converts DMA requests into timed DRAM transactions.
//
// Each CPE owns a DMA controller that issues the transactions of a request
// sequentially, Δdelay (50) cycles apart — this is the "extra delay by one
// transaction request" of Table I and the source of the paper's Eq. 11:
//   L_avg = L_base + (MRT − 1) × Δdelay    (uncontended request latency).
// Under contention the memory controller's queue dominates instead, giving
// the max(L_base, bandwidth) behaviour of Eq. 3.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/controller.h"
#include "mem/request.h"
#include "sw/arch.h"
#include "sw/time.h"

namespace swperf::mem {

/// Stateless planner for DMA transaction timing.
class DmaEngine {
 public:
  explicit DmaEngine(const sw::ArchParams& params) : params_(&params) {
    delta_ticks_ = sw::cycles_to_ticks(params.delta_delay_cycles);
  }

  /// Arrival-time offsets (relative to request issue) of every transaction
  /// of `req`: transaction i arrives at issue + i × Δdelay.
  std::vector<sw::Tick> plan(const DmaRequest& req) const;

  /// Ticks between consecutive transactions of one request.
  sw::Tick delta_ticks() const { return delta_ticks_; }

  /// Convenience for single-requester scenarios (unit tests, analytical
  /// checks): drives all transactions of `req` through `mc` and returns the
  /// completion tick of the request (when the last transaction's data is
  /// back and the CPE may proceed).
  sw::Tick complete_request(MemoryController& mc, sw::Tick issue,
                            const DmaRequest& req) const;

 private:
  const sw::ArchParams* params_;
  sw::Tick delta_ticks_;
};

}  // namespace swperf::mem
