// Scratch-pad memory (SPM) allocator.
//
// Each CPE has 64 KiB of software-managed SPM and no data cache; all data a
// kernel touches through fast loads/stores must be staged there explicitly.
// The allocator is a simple bump allocator with alignment — what the SWACC
// compiler effectively does for copyin/copyout buffers — and its capacity
// check is the binding constraint that prunes tile sizes in the auto-tuners
// (a tile's working set must fit, twice when double buffering).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sw/arch.h"

namespace swperf::mem {

/// Bump allocator over one CPE's scratch-pad memory.
class SpmAllocator {
 public:
  explicit SpmAllocator(std::uint32_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// A named region of SPM.
  struct Buffer {
    std::string name;
    std::uint32_t offset = 0;
    std::uint32_t bytes = 0;
  };

  /// Allocates `bytes` aligned to `align` (power of two); throws sw::Error
  /// on overflow. Returns the byte offset of the buffer.
  std::uint32_t allocate(std::string name, std::uint32_t bytes,
                         std::uint32_t align = 32);

  /// True if `bytes` more (aligned) would still fit.
  bool would_fit(std::uint32_t bytes, std::uint32_t align = 32) const;

  std::uint32_t used() const { return top_; }
  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t remaining() const { return capacity_ - top_; }
  const std::vector<Buffer>& buffers() const { return buffers_; }

  void reset();

 private:
  static std::uint32_t align_up(std::uint32_t v, std::uint32_t align);

  std::uint32_t capacity_;
  std::uint32_t top_ = 0;
  std::vector<Buffer> buffers_;
};

}  // namespace swperf::mem
