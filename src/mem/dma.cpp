#include "mem/dma.h"

#include <algorithm>

#include "sw/error.h"

namespace swperf::mem {

std::vector<sw::Tick> DmaEngine::plan(const DmaRequest& req) const {
  const std::uint64_t mrt = req.transactions(*params_);
  std::vector<sw::Tick> offsets;
  offsets.reserve(static_cast<std::size_t>(mrt));
  for (std::uint64_t i = 0; i < mrt; ++i) {
    offsets.push_back(i * delta_ticks_);
  }
  return offsets;
}

sw::Tick DmaEngine::complete_request(MemoryController& mc, sw::Tick issue,
                                     const DmaRequest& req) const {
  SWPERF_CHECK(!req.empty(), "empty DMA request");
  // Single-requester event loop: interleave transaction arrivals with the
  // controller's service slots in time order.
  const auto offsets = plan(req);
  sw::Tick done = issue;
  std::size_t next = 0;
  while (next < offsets.size() || mc.service_pending()) {
    const sw::Tick ta =
        next < offsets.size() ? issue + offsets[next] : sw::kTickNever;
    const sw::Tick ts =
        mc.service_pending() ? mc.busy_until() : sw::kTickNever;
    std::optional<MemoryController::Grant> g;
    if (ta <= ts) {
      g = mc.arrive(ta, /*stream=*/1);
      ++next;
    } else {
      g = mc.service(ts);
    }
    if (g) done = std::max(done, g->data_ready);
  }
  return done;
}

}  // namespace swperf::mem
