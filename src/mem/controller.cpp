#include "mem/controller.h"

#include <algorithm>

#include "sw/error.h"

namespace swperf::mem {

MemoryController::MemoryController(const sw::ArchParams& params,
                                   double bw_scale) {
  SWPERF_CHECK(bw_scale > 0.0, "bw_scale=" << bw_scale);
  service_ticks_ = sw::fractional_cycles_to_ticks(
      params.trans_service_cycles() / bw_scale);
  service_ticks_ = std::max<sw::Tick>(service_ticks_, 1);
  l_base_ticks_ = sw::cycles_to_ticks(params.l_base_cycles);
}

MemoryController::Grant MemoryController::start(sw::Tick t,
                                                std::uint64_t stream) {
  if (ever_busy_ && t > busy_until_) idle_ticks_ += t - busy_until_;
  ever_busy_ = true;
  busy_until_ = t + service_ticks_;
  busy_ticks_ += service_ticks_;
  ++transactions_;
  last_stream_ = stream;
  has_last_ = true;
  service_pending_ = true;
  return Grant{stream, t + l_base_ticks_};
}

std::optional<MemoryController::Grant> MemoryController::arrive(
    sw::Tick t, std::uint64_t stream) {
  if (!service_pending_ && t >= busy_until_ && queued_ == 0) {
    return start(t, stream);
  }
  const std::uint64_t s = seq_++;
  per_stream_[stream].push_back(Entry{t, s});
  order_.emplace(std::make_pair(t, s), stream);
  ++queued_;
  return std::nullopt;
}

std::optional<MemoryController::Grant> MemoryController::service(sw::Tick t) {
  SWPERF_CHECK(t >= busy_until_,
               "service() called at " << t << " before busy_until "
                                      << busy_until_);
  service_pending_ = false;
  if (queued_ == 0) return std::nullopt;

  // Stream affinity: keep draining the last-served stream while it has
  // queued transactions; otherwise take the globally oldest.
  std::uint64_t stream;
  if (has_last_) {
    auto it = per_stream_.find(last_stream_);
    if (it != per_stream_.end() && !it->second.empty()) {
      stream = last_stream_;
    } else {
      stream = order_.begin()->second;
    }
  } else {
    stream = order_.begin()->second;
  }

  auto& dq = per_stream_[stream];
  SWPERF_ASSERT(!dq.empty());
  const Entry e = dq.front();
  dq.pop_front();
  if (dq.empty()) per_stream_.erase(stream);
  order_.erase(std::make_pair(e.arrival, e.seq));
  --queued_;
  return start(t, stream);
}

}  // namespace swperf::mem
