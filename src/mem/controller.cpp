#include "mem/controller.h"

#include <algorithm>

#include "sw/error.h"

namespace swperf::mem {

namespace {
// Streams are dense small integers in the simulator (cpe * 18 + slot); a
// huge id is a caller bug, not a sparse workload.
constexpr std::uint64_t kMaxStreamId = std::uint64_t{1} << 22;
constexpr std::size_t kInitialCapacity = 256;
}  // namespace

MemoryController::MemoryController(const sw::ArchParams& params,
                                   double bw_scale) {
  SWPERF_CHECK(bw_scale > 0.0, "bw_scale=" << bw_scale);
  service_ticks_ = sw::fractional_cycles_to_ticks(
      params.trans_service_cycles() / bw_scale);
  service_ticks_ = std::max<sw::Tick>(service_ticks_, 1);
  l_base_ticks_ = sw::cycles_to_ticks(params.l_base_cycles);
}

MemoryController::Grant MemoryController::start(sw::Tick t,
                                                std::uint64_t stream) {
  if (ever_busy_ && t > busy_until_) idle_ticks_ += t - busy_until_;
  ever_busy_ = true;
  busy_until_ = t + service_ticks_;
  busy_ticks_ += service_ticks_;
  ++transactions_;
  last_stream_ = stream;
  has_last_ = true;
  service_pending_ = true;
  return Grant{stream, t + l_base_ticks_};
}

void MemoryController::grow() {
  const std::size_t ncap = capacity_ == 0 ? kInitialCapacity : capacity_ * 2;
  std::vector<sw::Tick> arrival(ncap);
  std::vector<std::uint64_t> stream_of(ncap);
  std::vector<std::uint64_t> next(ncap);
  std::vector<std::uint8_t> granted(ncap);
  // Live positions span less than the old capacity, so position & (ncap-1)
  // stays collision-free across the move.
  for (std::uint64_t p = head_pos_; p < tail_pos_; ++p) {
    const std::size_t from = slot(p);
    const std::size_t to = static_cast<std::size_t>(p) & (ncap - 1);
    arrival[to] = arrival_[from];
    stream_of[to] = stream_of_[from];
    next[to] = next_[from];
    granted[to] = granted_[from];
  }
  arrival_ = std::move(arrival);
  stream_of_ = std::move(stream_of);
  next_ = std::move(next);
  granted_ = std::move(granted);
  capacity_ = ncap;
}

void MemoryController::enqueue(sw::Tick t, std::uint64_t stream) {
  SWPERF_CHECK(queued_ == 0 || t >= last_queued_arrival_,
               "arrival at " << t << " behind queued arrival at "
                             << last_queued_arrival_
                             << " (drivers must arrive in time order)");
  SWPERF_CHECK(stream < kMaxStreamId, "stream id " << stream);
  last_queued_arrival_ = t;
  if (capacity_ == 0 || tail_pos_ - head_pos_ == capacity_) grow();
  const std::uint64_t pos = tail_pos_++;
  const std::size_t s = slot(pos);
  arrival_[s] = t;
  stream_of_[s] = stream;
  next_[s] = kNone;
  granted_[s] = 0;
  if (stream >= streams_.size()) {
    streams_.resize(std::max<std::size_t>(static_cast<std::size_t>(stream) + 1,
                                          streams_.size() * 2));
  }
  StreamChain& chain = streams_[static_cast<std::size_t>(stream)];
  if (chain.count == 0) {
    chain.head = pos;
  } else {
    next_[slot(chain.tail)] = pos;
  }
  chain.tail = pos;
  ++chain.count;
  ++queued_;
  ++enqueued_total_;
  max_queued_ = std::max(max_queued_, queued_);
}

std::uint64_t MemoryController::pop_waiter(std::uint64_t stream) {
  StreamChain& chain = streams_[static_cast<std::size_t>(stream)];
  SWPERF_ASSERT(chain.count > 0);
  const std::uint64_t pos = chain.head;
  const std::size_t s = slot(pos);
  chain.head = next_[s];
  if (--chain.count == 0) chain.tail = kNone;
  granted_[s] = 1;
  if (pos == head_pos_) ++head_pos_;
  --queued_;
  return pos;
}

std::optional<MemoryController::Grant> MemoryController::arrive(
    sw::Tick t, std::uint64_t stream) {
  if (!service_pending_ && t >= busy_until_ && queued_ == 0) {
    return start(t, stream);
  }
  enqueue(t, stream);
  return std::nullopt;
}

std::optional<MemoryController::Grant> MemoryController::service(sw::Tick t) {
  SWPERF_CHECK(t >= busy_until_,
               "service() called at " << t << " before busy_until "
                                      << busy_until_);
  service_pending_ = false;
  if (queued_ == 0) return std::nullopt;

  // Stream affinity: keep draining the last-served stream while it has
  // queued transactions; otherwise take the globally oldest.  Ring
  // positions are (arrival, admission) order, so the oldest ungranted
  // entry is wherever the lazy head cursor lands — and it is necessarily
  // the head of its stream's chain.
  std::uint64_t stream;
  if (has_last_ && last_stream_ < streams_.size() &&
      streams_[static_cast<std::size_t>(last_stream_)].count > 0) {
    stream = last_stream_;
  } else {
    while (granted_[slot(head_pos_)] != 0) ++head_pos_;
    stream = stream_of_[slot(head_pos_)];
  }
  pop_waiter(stream);
  return start(t, stream);
}

}  // namespace swperf::mem
