// Transaction-level main-memory controller of one core group.
//
// CPEs of SW26010 access main memory in whole DRAM transactions
// (Section II-A of the paper): the controller is the shared, bandwidth-
// limited resource all 64 CPEs contend for, and occurred transactions —
// not requested bytes — define the effective throughput.
//
// Service discipline: one transaction is in service at a time, occupying
// the controller for trans_service_ticks (the bandwidth term: 11.6 cycles
// per 256-B transaction with Table I values); its data returns to the
// requester L_base cycles after service starts (the pipelined latency
// term).  Arbitration is FIFO with *stream affinity*: while transactions
// of the stream served last are queued, they are preferred — modelling
// DRAM row-buffer/burst locality, under which concurrent DMA requests
// drain as consecutive bursts and complete staggered, the behaviour the
// paper's virtual-grouping abstraction (Fig. 4) captures.  Under light
// load the affinity is moot (queues are empty) and behaviour reduces to
// latency Eq. 11.
//
// The controller is event-driven and deterministic.  Protocol:
//   * a transaction of stream S arriving at tick t: g = arrive(t, S);
//   * whenever a call returns a Grant, that transaction entered service:
//     its data is ready at g->data_ready, and the caller must invoke
//     service(busy_until()) at the indicated tick to start the next one;
//   * service(t) starts the oldest/affine queued transaction, if any.
// The simulator drives this through its event queue; unit tests drive it
// directly.
//
// Queue storage is a pre-sized SoA ring arena, not node-based maps: the
// simulator's contended regime funnels hundreds of thousands of queued
// transactions through arrive()/service(), and per-entry allocation plus
// pointer-chasing dominated both engines' wall time before the rewrite.
// Entries live at monotone positions in power-of-two ring arrays (arrival
// tick / stream / per-stream chain / granted flag each in its own array);
// a stream's waiters form an intrusive chain through `next_`, and the
// globally oldest entry is found by advancing a lazy head cursor past
// granted slots.  Correctness leans on an invariant the simulator already
// guarantees (events pop in time order): queued arrivals are nondecreasing
// in time, so ring position order IS (arrival, admission) order — checked
// here, not assumed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sw/arch.h"
#include "sw/time.h"

namespace swperf::mem {

/// Bandwidth-limited, stream-affine memory controller.
class MemoryController {
 public:
  /// `bw_scale` scales effective bandwidth (cross-section memory through
  /// the NoC runs slightly below local bandwidth; multi-CG interleaving
  /// multiplies it).
  explicit MemoryController(const sw::ArchParams& params,
                            double bw_scale = 1.0);

  /// A transaction admitted into service.
  struct Grant {
    std::uint64_t stream = 0;
    sw::Tick data_ready = 0;  // when the requester sees the data
  };

  /// Transaction of `stream` arrives at `t`. Starts service immediately if
  /// the controller is idle (grant returned); otherwise queues.  Queued
  /// arrivals must be nondecreasing in `t` (the simulator pops events in
  /// time order; direct drivers must do the same).
  std::optional<Grant> arrive(sw::Tick t, std::uint64_t stream);

  /// Service slot at `t` (>= busy_until of the previous grant): starts the
  /// next queued transaction, preferring the last-served stream.
  std::optional<Grant> service(sw::Tick t);

  /// End of the service slot of the most recent grant; the caller must
  /// call service() at this tick after every grant.
  sw::Tick busy_until() const { return busy_until_; }

  /// True if a service() call is owed for an earlier grant.
  bool service_pending() const { return service_pending_; }

  std::uint64_t transactions() const { return transactions_; }
  std::uint64_t queued() const { return queued_; }

  /// Queued transactions of the last-served stream — the affinity target:
  /// the next affine_queued() service() calls are guaranteed to grant that
  /// stream's current waiters in arrival order, regardless of interleaved
  /// enqueues (which only append behind them).  The simulator's batched
  /// grant fast path leans on this guarantee.
  std::uint64_t affine_queued() const {
    if (!has_last_ || last_stream_ >= streams_.size()) return 0;
    return streams_[static_cast<std::size_t>(last_stream_)].count;
  }

  /// Arrivals that found the controller busy and had to queue.
  std::uint64_t enqueued_total() const { return enqueued_total_; }
  /// High-water mark of the wait queue (the paper's contended regime in
  /// one number: how deep the backlog behind one controller got).
  std::uint64_t max_queued() const { return max_queued_; }

  /// Ticks spent actually transferring data.
  sw::Tick busy_ticks() const { return busy_ticks_; }
  /// Idle gaps between transactions ("memory idle cycles" — nonzero
  /// exactly in the paper's Scenario 1).
  sw::Tick idle_ticks() const { return idle_ticks_; }

  /// Service ticks of one transaction under this controller's bandwidth.
  sw::Tick service_ticks() const { return service_ticks_; }

  /// Pipelined data-return latency: a grant's data_ready is its service
  /// start + l_base_ticks (Eq. 11's L_base term).
  sw::Tick l_base_ticks() const { return l_base_ticks_; }

 private:
  static constexpr std::uint64_t kNone = ~std::uint64_t{0};

  struct StreamChain {
    std::uint64_t head = kNone;  // ring position of the oldest waiter
    std::uint64_t tail = kNone;
    std::uint32_t count = 0;
  };

  Grant start(sw::Tick t, std::uint64_t stream);
  void enqueue(sw::Tick t, std::uint64_t stream);
  std::uint64_t pop_waiter(std::uint64_t stream);
  void grow();
  std::size_t slot(std::uint64_t pos) const {
    return static_cast<std::size_t>(pos) & (capacity_ - 1);
  }

  sw::Tick service_ticks_;
  sw::Tick l_base_ticks_;
  sw::Tick busy_until_ = 0;
  sw::Tick busy_ticks_ = 0;
  sw::Tick idle_ticks_ = 0;
  bool service_pending_ = false;
  bool ever_busy_ = false;
  std::uint64_t transactions_ = 0;
  std::uint64_t queued_ = 0;
  std::uint64_t enqueued_total_ = 0;
  std::uint64_t max_queued_ = 0;
  std::uint64_t last_stream_ = 0;
  bool has_last_ = false;

  // SoA ring arena over monotone positions [head_pos_, tail_pos_); slot
  // index = position & (capacity_ - 1).  `granted_` marks entries already
  // started out of ring order by stream affinity; the head cursor skips
  // them lazily.
  std::size_t capacity_ = 0;  // power of two; 0 until first enqueue
  std::uint64_t head_pos_ = 0;
  std::uint64_t tail_pos_ = 0;
  sw::Tick last_queued_arrival_ = 0;
  std::vector<sw::Tick> arrival_;
  std::vector<std::uint64_t> stream_of_;
  std::vector<std::uint64_t> next_;  // next waiter of the same stream
  std::vector<std::uint8_t> granted_;
  std::vector<StreamChain> streams_;  // indexed by stream id
};

}  // namespace swperf::mem
