#include "mem/spm.h"

#include "sw/error.h"

namespace swperf::mem {

std::uint32_t SpmAllocator::align_up(std::uint32_t v, std::uint32_t align) {
  SWPERF_CHECK(align != 0 && (align & (align - 1)) == 0,
               "alignment must be a power of two, got " << align);
  return (v + align - 1) & ~(align - 1);
}

std::uint32_t SpmAllocator::allocate(std::string name, std::uint32_t bytes,
                                     std::uint32_t align) {
  const std::uint32_t offset = align_up(top_, align);
  SWPERF_CHECK(bytes <= capacity_ && offset <= capacity_ - bytes,
               "SPM overflow allocating '"
                   << name << "' (" << bytes << " B at offset " << offset
                   << ", capacity " << capacity_ << " B)");
  top_ = offset + bytes;
  buffers_.push_back(Buffer{std::move(name), offset, bytes});
  return offset;
}

bool SpmAllocator::would_fit(std::uint32_t bytes, std::uint32_t align) const {
  const std::uint32_t offset = align_up(top_, align);
  return bytes <= capacity_ && offset <= capacity_ - bytes;
}

void SpmAllocator::reset() {
  top_ = 0;
  buffers_.clear();
}

}  // namespace swperf::mem
