// JSON serialization of the pipeline's core types.
//
// One schema per type, documented in docs/PIPELINE.md.  Two contracts:
//
//   * Request-side types (swacc::KernelDesc, swacc::LaunchParams, and their
//     parts) round-trip: `to_json(from_json(to_json(x)))` is byte-identical
//     to `to_json(x)`, so kernels can be shipped to `swperf eval`, cached,
//     and diffed as text.  from_json rejects unknown fields (typo safety)
//     and type mismatches with sw::Error — never crashes.
//   * Result-side types (StaticSummary, model::Prediction, sim::SimResult
//     minus its trace, analysis::Diagnostics, tuning::TuningResult) have a
//     deterministic to_json only: equal values render to equal bytes, which
//     is what the golden-fixture regression tests pin.
//
// Field order is fixed and all fields are always emitted, so output is
// diff-stable across runs and builds.
#pragma once

#include "analysis/diagnostic.h"
#include "analysis/legality.h"
#include "model/calibrate.h"
#include "model/model.h"
#include "model/report.h"
#include "serde/json.h"
#include "sim/chip.h"
#include "sim/machine.h"
#include "sw/arch.h"
#include "swacc/kernel.h"
#include "swacc/summary.h"
#include "tuning/tuner.h"

namespace swperf::serde {

// ---- Request side: serialize + parse (round-trip guaranteed) --------------

/// Machine parameters (Table I + structural constants).  from_json treats
/// absent fields as their SW26010 defaults — a request that only says
/// {"mem_bw_gbps": 24} describes a bandwidth-derated chip — rejects
/// unknown fields, and validates the result.  Used by the serve daemon to
/// key its per-tenant Session shards.
Json to_json(const sw::ArchParams& a);
sw::ArchParams arch_params_from_json(const Json& j);

Json to_json(const swacc::LaunchParams& p);
swacc::LaunchParams launch_params_from_json(const Json& j);

Json to_json(const isa::Instr& i);
isa::Instr instr_from_json(const Json& j);

Json to_json(const isa::BasicBlock& b);
isa::BasicBlock block_from_json(const Json& j);

Json to_json(const swacc::ArrayRef& a);
swacc::ArrayRef array_ref_from_json(const Json& j);

Json to_json(const swacc::KernelDesc& k);
swacc::KernelDesc kernel_desc_from_json(const Json& j);

// ---- Result side: serialize only ------------------------------------------

Json to_json(const isa::OpClassCounts& c);
Json to_json(const swacc::StaticSummary& s);
Json to_json(const model::Prediction& p);
Json to_json(const model::RooflinePrediction& r);
Json to_json(const model::Advice& a);
Json to_json(const model::KernelReport& r);
Json to_json(const model::CalibratedParams& c);
/// The simulation result without its (optional, large) trace.
Json to_json(const sim::CpeStats& s);
Json to_json(const sim::SimCounters& c);
Json to_json(const sim::SimResult& r);
/// One causal trace event; sentinel fields (no op / no handle / no
/// request / no predecessor) render as null.
Json to_json(const sim::TraceEvent& e);
/// The full causal trace (`swperf timeline --json`): lane shape, span in
/// ticks and cycles, per-lane busy time and utilization, and the events.
Json to_json(const sim::Trace& t);
/// One job's window inside a chip scenario: CG slots held, CPE count,
/// launch/finish/makespan on the shared chip clock.
Json to_json(const sim::ChipJobResult& r);
/// A whole-chip scenario outcome (`swperf simulate --chip --json`): the
/// merged simulation result plus one window per job, in queue order.
Json to_json(const sim::ChipResult& r);
Json to_json(const analysis::Diagnostic& d);
Json to_json(const analysis::Diagnostics& diags);
/// Legality facts of one launch (`swperf check --analyze`): launch_legal,
/// its error codes, and the tri-state facts as "holds"/"fails"/"unknown".
Json to_json(const analysis::Legality& l);
Json to_json(const tuning::TuningStats& s);
Json to_json(const tuning::VariantResult& v);
Json to_json(const tuning::TuningResult& r);

}  // namespace swperf::serde
