#include "serde/serde.h"

#include <limits>
#include <string>

#include "sw/error.h"

namespace swperf::serde {

namespace {

[[noreturn]] void bad_field(const char* type, const std::string& key) {
  throw sw::Error(std::string(type) + ": unknown field \"" + key + "\"");
}

void require_object(const Json& j, const char* type) {
  if (!j.is_object()) {
    throw sw::Error(std::string(type) + ": expected a JSON object");
  }
}

std::uint32_t as_u32(const Json& j) {
  const std::uint64_t v = j.as_u64();
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    throw sw::Error("number " + std::to_string(v) + " overflows uint32");
  }
  return static_cast<std::uint32_t>(v);
}

const char* dir_name(swacc::Dir d) {
  switch (d) {
    case swacc::Dir::kIn:
      return "in";
    case swacc::Dir::kOut:
      return "out";
    case swacc::Dir::kInOut:
      return "inout";
  }
  return "?";
}

swacc::Dir dir_from_name(const std::string& s) {
  if (s == "in") return swacc::Dir::kIn;
  if (s == "out") return swacc::Dir::kOut;
  if (s == "inout") return swacc::Dir::kInOut;
  throw sw::Error("ArrayRef: unknown dir \"" + s + "\"");
}

const char* access_name(swacc::Access a) {
  switch (a) {
    case swacc::Access::kContiguous:
      return "contiguous";
    case swacc::Access::kStrided:
      return "strided";
    case swacc::Access::kBlock2D:
      return "block2d";
    case swacc::Access::kBroadcast:
      return "broadcast";
    case swacc::Access::kIndirect:
      return "indirect";
  }
  return "?";
}

swacc::Access access_from_name(const std::string& s) {
  if (s == "contiguous") return swacc::Access::kContiguous;
  if (s == "strided") return swacc::Access::kStrided;
  if (s == "block2d") return swacc::Access::kBlock2D;
  if (s == "broadcast") return swacc::Access::kBroadcast;
  if (s == "indirect") return swacc::Access::kIndirect;
  throw sw::Error("ArrayRef: unknown access \"" + s + "\"");
}

isa::OpClass op_class_from_name(const std::string& s) {
  for (int i = 0; i < isa::kNumOpClasses; ++i) {
    const auto c = static_cast<isa::OpClass>(i);
    if (s == isa::op_class_name(c)) return c;
  }
  throw sw::Error("Instr: unknown op class \"" + s + "\"");
}

}  // namespace

// ---- ArchParams ------------------------------------------------------------

Json to_json(const sw::ArchParams& a) {
  Json j = Json::object();
  j.set("mem_bw_gbps", a.mem_bw_gbps);
  j.set("freq_ghz", a.freq_ghz);
  j.set("trans_size_bytes", a.trans_size_bytes);
  j.set("delta_delay_cycles", a.delta_delay_cycles);
  j.set("l_base_cycles", a.l_base_cycles);
  j.set("l_float_cycles", a.l_float_cycles);
  j.set("l_fixed_cycles", a.l_fixed_cycles);
  j.set("l_spm_cycles", a.l_spm_cycles);
  j.set("l_div_sqrt_cycles", a.l_div_sqrt_cycles);
  j.set("cpes_per_cg", a.cpes_per_cg);
  j.set("core_groups", a.core_groups);
  j.set("spm_bytes", a.spm_bytes);
  j.set("gload_max_bytes", a.gload_max_bytes);
  j.set("cross_section_bw_efficiency", a.cross_section_bw_efficiency);
  return j;
}

sw::ArchParams arch_params_from_json(const Json& j) {
  require_object(j, "ArchParams");
  sw::ArchParams a;  // absent fields keep their Table I defaults
  for (const auto& [k, v] : j.members()) {
    if (k == "mem_bw_gbps") {
      a.mem_bw_gbps = v.as_double();
    } else if (k == "freq_ghz") {
      a.freq_ghz = v.as_double();
    } else if (k == "trans_size_bytes") {
      a.trans_size_bytes = as_u32(v);
    } else if (k == "delta_delay_cycles") {
      a.delta_delay_cycles = as_u32(v);
    } else if (k == "l_base_cycles") {
      a.l_base_cycles = as_u32(v);
    } else if (k == "l_float_cycles") {
      a.l_float_cycles = as_u32(v);
    } else if (k == "l_fixed_cycles") {
      a.l_fixed_cycles = as_u32(v);
    } else if (k == "l_spm_cycles") {
      a.l_spm_cycles = as_u32(v);
    } else if (k == "l_div_sqrt_cycles") {
      a.l_div_sqrt_cycles = as_u32(v);
    } else if (k == "cpes_per_cg") {
      a.cpes_per_cg = as_u32(v);
    } else if (k == "core_groups") {
      a.core_groups = as_u32(v);
    } else if (k == "spm_bytes") {
      a.spm_bytes = as_u32(v);
    } else if (k == "gload_max_bytes") {
      a.gload_max_bytes = as_u32(v);
    } else if (k == "cross_section_bw_efficiency") {
      a.cross_section_bw_efficiency = v.as_double();
    } else {
      bad_field("ArchParams", k);
    }
  }
  a.validate();  // nonsense values throw sw::Error, never reach a Session
  return a;
}

// ---- LaunchParams ----------------------------------------------------------

Json to_json(const swacc::LaunchParams& p) {
  Json j = Json::object();
  j.set("tile", p.tile);
  j.set("unroll", p.unroll);
  j.set("requested_cpes", p.requested_cpes);
  j.set("double_buffer", p.double_buffer);
  j.set("vector_width", p.vector_width);
  j.set("coalesce_gloads", p.coalesce_gloads);
  return j;
}

swacc::LaunchParams launch_params_from_json(const Json& j) {
  require_object(j, "LaunchParams");
  swacc::LaunchParams p;
  for (const auto& [k, v] : j.members()) {
    if (k == "tile") {
      p.tile = v.as_u64();
    } else if (k == "unroll") {
      p.unroll = as_u32(v);
    } else if (k == "requested_cpes") {
      p.requested_cpes = as_u32(v);
    } else if (k == "double_buffer") {
      p.double_buffer = v.as_bool();
    } else if (k == "vector_width") {
      p.vector_width = as_u32(v);
    } else if (k == "coalesce_gloads") {
      p.coalesce_gloads = v.as_bool();
    } else {
      bad_field("LaunchParams", k);
    }
  }
  return p;
}

// ---- isa::Instr / BasicBlock ----------------------------------------------

Json to_json(const isa::Instr& i) {
  Json j = Json::object();
  j.set("op", isa::op_class_name(i.cls));
  j.set("dst", i.dst);
  Json srcs = Json::array();
  for (const isa::Reg s : i.srcs) srcs.push_back(s);
  j.set("srcs", std::move(srcs));
  j.set("loop_overhead", i.loop_overhead);
  return j;
}

isa::Instr instr_from_json(const Json& j) {
  require_object(j, "Instr");
  isa::Instr i;
  for (const auto& [k, v] : j.members()) {
    if (k == "op") {
      i.cls = op_class_from_name(v.as_string());
    } else if (k == "dst") {
      i.dst = static_cast<isa::Reg>(v.as_i64());
    } else if (k == "srcs") {
      const auto& items = v.items();
      if (items.size() > i.srcs.size()) {
        throw sw::Error("Instr: more than 3 sources");
      }
      for (std::size_t n = 0; n < items.size(); ++n) {
        i.srcs[n] = static_cast<isa::Reg>(items[n].as_i64());
      }
    } else if (k == "loop_overhead") {
      i.loop_overhead = v.as_bool();
    } else {
      bad_field("Instr", k);
    }
  }
  return i;
}

Json to_json(const isa::BasicBlock& b) {
  Json j = Json::object();
  j.set("name", b.name);
  j.set("num_regs", b.num_regs);
  j.set("lanes", b.lanes);
  Json instrs = Json::array();
  for (const auto& i : b.instrs) instrs.push_back(to_json(i));
  j.set("instrs", std::move(instrs));
  return j;
}

isa::BasicBlock block_from_json(const Json& j) {
  require_object(j, "BasicBlock");
  isa::BasicBlock b;
  for (const auto& [k, v] : j.members()) {
    if (k == "name") {
      b.name = v.as_string();
    } else if (k == "num_regs") {
      b.num_regs = static_cast<isa::Reg>(v.as_i64());
    } else if (k == "lanes") {
      b.lanes = as_u32(v);
    } else if (k == "instrs") {
      for (const auto& i : v.items()) b.instrs.push_back(instr_from_json(i));
    } else {
      bad_field("BasicBlock", k);
    }
  }
  b.validate();  // register-range and operand-shape errors, not crashes
  return b;
}

// ---- swacc::ArrayRef / KernelDesc -----------------------------------------

Json to_json(const swacc::ArrayRef& a) {
  Json j = Json::object();
  j.set("name", a.name);
  j.set("dir", dir_name(a.dir));
  j.set("access", access_name(a.access));
  j.set("bytes_per_outer", a.bytes_per_outer);
  j.set("segments_per_outer", a.segments_per_outer);
  j.set("broadcast_bytes", a.broadcast_bytes);
  j.set("gloads_per_inner", a.gloads_per_inner);
  j.set("gload_bytes", a.gload_bytes);
  return j;
}

swacc::ArrayRef array_ref_from_json(const Json& j) {
  require_object(j, "ArrayRef");
  swacc::ArrayRef a;
  bool have_name = false;
  for (const auto& [k, v] : j.members()) {
    if (k == "name") {
      a.name = v.as_string();
      have_name = true;
    } else if (k == "dir") {
      a.dir = dir_from_name(v.as_string());
    } else if (k == "access") {
      a.access = access_from_name(v.as_string());
    } else if (k == "bytes_per_outer") {
      a.bytes_per_outer = v.as_u64();
    } else if (k == "segments_per_outer") {
      a.segments_per_outer = as_u32(v);
    } else if (k == "broadcast_bytes") {
      a.broadcast_bytes = v.as_u64();
    } else if (k == "gloads_per_inner") {
      a.gloads_per_inner = v.as_double();
    } else if (k == "gload_bytes") {
      a.gload_bytes = as_u32(v);
    } else {
      bad_field("ArrayRef", k);
    }
  }
  if (!have_name) throw sw::Error("ArrayRef: missing required field \"name\"");
  return a;
}

Json to_json(const swacc::KernelDesc& k) {
  Json j = Json::object();
  j.set("name", k.name);
  j.set("n_outer", k.n_outer);
  j.set("inner_iters", k.inner_iters);
  j.set("body", to_json(k.body));
  Json arrays = Json::array();
  for (const auto& a : k.arrays) arrays.push_back(to_json(a));
  j.set("arrays", std::move(arrays));
  j.set("dma_min_tile", k.dma_min_tile);
  j.set("gload_coalesceable", k.gload_coalesceable);
  j.set("vectorizable", k.vectorizable);
  j.set("gload_imbalance", k.gload_imbalance);
  j.set("comp_imbalance", k.comp_imbalance);
  return j;
}

swacc::KernelDesc kernel_desc_from_json(const Json& j) {
  require_object(j, "KernelDesc");
  swacc::KernelDesc k;
  bool have_name = false;
  for (const auto& [key, v] : j.members()) {
    if (key == "name") {
      k.name = v.as_string();
      have_name = true;
    } else if (key == "n_outer") {
      k.n_outer = v.as_u64();
    } else if (key == "inner_iters") {
      k.inner_iters = v.as_u64();
    } else if (key == "body") {
      k.body = block_from_json(v);
    } else if (key == "arrays") {
      for (const auto& a : v.items()) {
        k.arrays.push_back(array_ref_from_json(a));
      }
    } else if (key == "dma_min_tile") {
      k.dma_min_tile = v.as_u64();
    } else if (key == "gload_coalesceable") {
      k.gload_coalesceable = v.as_double();
    } else if (key == "vectorizable") {
      k.vectorizable = v.as_bool();
    } else if (key == "gload_imbalance") {
      k.gload_imbalance = v.as_double();
    } else if (key == "comp_imbalance") {
      k.comp_imbalance = v.as_double();
    } else {
      bad_field("KernelDesc", key);
    }
  }
  if (!have_name) {
    throw sw::Error("KernelDesc: missing required field \"name\"");
  }
  return k;
}

// ---- Result side -----------------------------------------------------------

Json to_json(const isa::OpClassCounts& c) {
  Json j = Json::object();
  for (int i = 0; i < isa::kNumOpClasses; ++i) {
    const auto cls = static_cast<isa::OpClass>(i);
    j.set(isa::op_class_name(cls), c[cls]);
  }
  return j;
}

Json to_json(const swacc::StaticSummary& s) {
  Json j = Json::object();
  j.set("kernel", s.kernel);
  j.set("params", to_json(s.params));
  j.set("active_cpes", s.active_cpes);
  j.set("core_groups", s.core_groups);
  j.set("double_buffer", s.double_buffer);
  Json mrt = Json::array();
  for (const std::uint64_t m : s.dma_req_mrt) mrt.push_back(m);
  j.set("dma_req_mrt", std::move(mrt));
  j.set("n_gloads", s.n_gloads);
  j.set("comp_cycles", s.comp_cycles);
  j.set("inst_counts", to_json(s.inst_counts));
  j.set("dma_bytes_requested", s.dma_bytes_requested);
  j.set("dma_bytes_transferred", s.dma_bytes_transferred);
  j.set("total_flops", s.total_flops);
  return j;
}

Json to_json(const model::Prediction& p) {
  Json j = Json::object();
  j.set("t_total", p.t_total);
  j.set("t_mem", p.t_mem);
  j.set("t_dma", p.t_dma);
  j.set("t_g", p.t_g);
  j.set("t_comp", p.t_comp);
  j.set("t_overlap", p.t_overlap);
  j.set("t_dma_overlap", p.t_dma_overlap);
  j.set("t_g_overlap", p.t_g_overlap);
  j.set("double_buffer_saving", p.double_buffer_saving);
  j.set("avg_mrt_dma", p.avg_mrt_dma);
  j.set("l_avg_dma", p.l_avg_dma);
  j.set("mrp_dma", p.mrp_dma);
  j.set("ng_dma", p.ng_dma);
  j.set("mrp_g", p.mrp_g);
  j.set("ng_g", p.ng_g);
  j.set("scenario", p.scenario);
  j.set("avg_ilp", p.avg_ilp);
  return j;
}

Json to_json(const model::RooflinePrediction& r) {
  Json j = Json::object();
  j.set("arithmetic_intensity", r.arithmetic_intensity);
  j.set("attainable_gflops", r.attainable_gflops);
  j.set("t_cycles", r.t_cycles);
  j.set("memory_bound", r.memory_bound);
  return j;
}

Json to_json(const model::Advice& a) {
  Json j = Json::object();
  j.set("optimization", a.optimization);
  j.set("suggested", to_json(a.suggested));
  j.set("closed_form_saving", a.closed_form_saving);
  j.set("model_saving", a.model_saving);
  j.set("saving_fraction", a.saving_fraction);
  j.set("rationale", a.rationale);
  return j;
}

Json to_json(const model::KernelReport& r) {
  Json j = Json::object();
  j.set("kernel", r.kernel);
  j.set("params", to_json(r.params));
  j.set("prediction", to_json(r.prediction));
  j.set("roofline", to_json(r.roofline));
  j.set("bottleneck", model::bottleneck_name(r.bottleneck));
  j.set("dma_fraction", r.dma_fraction);
  j.set("gload_fraction", r.gload_fraction);
  j.set("comp_fraction", r.comp_fraction);
  j.set("overlap_fraction", r.overlap_fraction);
  j.set("dma_efficiency", r.dma_efficiency);
  j.set("gflops", r.gflops);
  j.set("roofline_fraction", r.roofline_fraction);
  Json advice = Json::array();
  for (const auto& a : r.advice) advice.push_back(to_json(a));
  j.set("advice", std::move(advice));
  return j;
}

Json to_json(const model::CalibratedParams& c) {
  Json j = Json::object();
  j.set("l_base_cycles", c.l_base_cycles);
  j.set("delta_delay_cycles", c.delta_delay_cycles);
  j.set("trans_service_cycles", c.trans_service_cycles);
  j.set("mem_bw_gbps", c.mem_bw_gbps);
  return j;
}

Json to_json(const sim::CpeStats& s) {
  Json j = Json::object();
  j.set("finish", s.finish);
  j.set("comp", s.comp);
  j.set("dma_wait", s.dma_wait);
  j.set("gload_wait", s.gload_wait);
  j.set("barrier_wait", s.barrier_wait);
  j.set("dma_requests", s.dma_requests);
  j.set("gload_requests", s.gload_requests);
  return j;
}

Json to_json(const sim::SimCounters& c) {
  Json j = Json::object();
  j.set("events_popped", c.events_popped);
  j.set("heap_pushes_avoided", c.heap_pushes_avoided);
  j.set("dma_trains", c.dma_trains);
  j.set("trains_fast_forwarded", c.trains_fast_forwarded);
  j.set("ff_transactions", c.ff_transactions);
  j.set("batched_grants", c.batched_grants);
  j.set("batched_transactions", c.batched_transactions);
  j.set("train_arrivals_absorbed", c.train_arrivals_absorbed);
  j.set("mc_enqueued", c.mc_enqueued);
  j.set("mc_max_queued", c.mc_max_queued);
  return j;
}

Json to_json(const sim::SimResult& r) {
  Json j = Json::object();
  j.set("total_ticks", r.total_ticks);
  j.set("total_cycles", r.total_cycles());
  j.set("transactions", r.transactions);
  j.set("mem_busy_ticks", r.mem_busy_ticks);
  j.set("mem_idle_ticks", r.mem_idle_ticks);
  j.set("avg_comp_cycles", r.avg_comp_cycles());
  j.set("avg_dma_wait_cycles", r.avg_dma_wait_cycles());
  j.set("avg_gload_wait_cycles", r.avg_gload_wait_cycles());
  j.set("avg_barrier_wait_cycles", r.avg_barrier_wait_cycles());
  j.set("counters", to_json(r.counters));
  Json cpes = Json::array();
  for (const auto& c : r.cpes) cpes.push_back(to_json(c));
  j.set("cpes", std::move(cpes));
  return j;
}

Json to_json(const sim::ChipJobResult& r) {
  Json j = Json::object();
  j.set("name", r.name);
  j.set("core_groups", r.core_groups);
  j.set("cpes", r.cpes);
  j.set("launch_ticks", r.launch_ticks);
  j.set("finish_ticks", r.finish_ticks);
  j.set("makespan_ticks", r.makespan_ticks());
  j.set("makespan_cycles", sw::ticks_to_cycles(r.makespan_ticks()));
  return j;
}

Json to_json(const sim::ChipResult& r) {
  Json j = Json::object();
  j.set("schema", "swperf.chip_result.v1");
  Json jobs = Json::array();
  for (const auto& job : r.jobs) jobs.push_back(to_json(job));
  j.set("jobs", std::move(jobs));
  j.set("sim", to_json(r.sim));
  return j;
}

Json to_json(const sim::TraceEvent& e) {
  Json j = Json::object();
  j.set("lane", e.lane);
  j.set("what", sim::activity_name(e.what));
  j.set("begin_ticks", e.begin);
  j.set("end_ticks", e.end);
  j.set("op", e.op == sim::kNoOp ? Json() : Json(e.op));
  j.set("handle", e.handle == sim::kNoHandle ? Json() : Json(e.handle));
  j.set("req", e.req == sim::kNoReq ? Json() : Json(e.req));
  j.set("pred", e.pred == sim::kNoPred ? Json() : Json(e.pred));
  return j;
}

Json to_json(const sim::Trace& t) {
  Json j = Json::object();
  j.set("n_cpes", t.n_cpes);
  j.set("n_controllers", t.n_controllers);
  const sw::Tick span = t.span();
  j.set("span_ticks", span);
  j.set("span_cycles", sw::ticks_to_cycles(span));
  Json lanes = Json::array();
  const std::uint32_t n_lanes = t.n_cpes + t.n_controllers;
  for (std::uint32_t lane = 0; lane < n_lanes; ++lane) {
    Json l = Json::object();
    l.set("lane", lane);
    l.set("kind", lane < t.n_cpes ? "cpe" : "mem");
    const sw::Tick busy = t.lane_busy(lane);
    l.set("busy_ticks", busy);
    l.set("utilization", span > 0 ? static_cast<double>(busy) /
                                        static_cast<double>(span)
                                  : 0.0);
    lanes.push_back(std::move(l));
  }
  j.set("lanes", std::move(lanes));
  Json events = Json::array();
  for (const auto& e : t.events) events.push_back(to_json(e));
  j.set("events", std::move(events));
  return j;
}

Json to_json(const analysis::Diagnostic& d) {
  Json j = Json::object();
  j.set("severity", analysis::severity_name(d.severity));
  j.set("code", d.code);
  j.set("message", d.message);
  j.set("fixit", d.fixit);
  return j;
}

Json to_json(const analysis::Diagnostics& diags) {
  Json arr = Json::array();
  for (const auto& d : diags) arr.push_back(to_json(d));
  return arr;
}

Json to_json(const analysis::Legality& l) {
  Json j = Json::object();
  j.set("launch_legal", l.launch_legal);
  Json codes = Json::array();
  for (const auto& c : l.error_codes) codes.push_back(c);
  j.set("error_codes", std::move(codes));
  Json facts = Json::object();
  facts.set("spm_fits", analysis::fact_name(l.spm_fits));
  facts.set("loop_carried_independent",
            analysis::fact_name(l.loop_carried_independent));
  facts.set("regions_disjoint", analysis::fact_name(l.regions_disjoint));
  facts.set("dma_protocol_clean", analysis::fact_name(l.dma_protocol_clean));
  facts.set("barriers_aligned", analysis::fact_name(l.barriers_aligned));
  j.set("facts", std::move(facts));
  return j;
}

Json to_json(const tuning::TuningStats& s) {
  Json j = Json::object();
  j.set("evaluations", s.evaluations);
  j.set("cache_hits", s.cache_hits);
  j.set("cache_misses", s.cache_misses);
  j.set("lowers_skipped", s.lowers_skipped);
  j.set("bound_pruned", s.bound_pruned);
  j.set("skeleton_reuses", s.skeleton_reuses);
  j.set("jobs", s.jobs);
  return j;
}

Json to_json(const tuning::VariantResult& v) {
  Json j = Json::object();
  j.set("params", to_json(v.params));
  j.set("predicted_cycles", v.predicted_cycles);
  j.set("measured_cycles", v.measured_cycles);
  return j;
}

Json to_json(const tuning::TuningResult& r) {
  Json j = Json::object();
  j.set("best", to_json(r.best));
  j.set("best_measured_cycles", r.best_measured_cycles);
  j.set("tuning_seconds", r.tuning_seconds);
  j.set("host_seconds", r.host_seconds);
  j.set("variants", r.variants);
  j.set("stats", to_json(r.stats));
  Json explored = Json::array();
  for (const auto& v : r.explored) explored.push_back(to_json(v));
  j.set("explored", std::move(explored));
  return j;
}

}  // namespace swperf::serde
