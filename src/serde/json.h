// A small dependency-free JSON value type with a writer and a reader.
//
// This is the interchange layer of the evaluation pipeline: every
// machine-readable surface (the `swperf --json` outputs, the `swperf eval`
// batch service, the golden model fixtures) goes through this one writer,
// so escaping and number formatting are correct in exactly one place.
//
// Design constraints, in priority order:
//   1. Round-trip stability: dump(parse(dump(x))) == dump(x), byte for
//      byte.  Objects preserve member insertion order, integers print as
//      integers, and doubles print with the shortest decimal form that
//      parses back to the identical value (tried at 15, 16, then 17
//      significant digits).
//   2. Malformed input is an *error value*, never undefined behaviour:
//      parse() returns a ParseResult carrying a position-annotated message.
//   3. No dependencies beyond the standard library and sw/error.h.
//
// JSON has no NaN/Infinity; non-finite doubles serialize as `null`.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace swperf::serde {

class Json;
/// Object members in insertion order (order is part of the byte-stable
/// round-trip contract; keys are expected to be unique).
using JsonMembers = std::vector<std::pair<std::string, Json>>;

/// Outcome of Json::parse(): a value, or a position-annotated error.
struct JsonParseResult;

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kInt,     // negative integers
    kUint,    // non-negative integers
    kDouble,  // anything written with '.', 'e' or 'E'
    kString,
    kArray,
    kObject,
  };

  // ---- Construction -------------------------------------------------------
  // Every standard integer type has a non-explicit constructor so numeric
  // struct fields serialize with plain `Json(value)`; negatives normalize
  // to kInt, non-negatives to kUint.
  Json() = default;  // null
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Json(int v) : Json(static_cast<long long>(v)) {}  // NOLINT
  Json(long v) : Json(static_cast<long long>(v)) {}  // NOLINT
  Json(long long v) {  // NOLINT
    if (v < 0) {
      type_ = Type::kInt;
      int_ = v;
    } else {
      type_ = Type::kUint;
      uint_ = static_cast<std::uint64_t>(v);
    }
  }
  Json(unsigned v)  // NOLINT
      : Json(static_cast<unsigned long long>(v)) {}
  Json(unsigned long v)  // NOLINT
      : Json(static_cast<unsigned long long>(v)) {}
  Json(unsigned long long v) : type_(Type::kUint), uint_(v) {}  // NOLINT
  // Non-finite doubles normalize to null at construction (JSON has no
  // NaN/Infinity), so the in-memory value already equals its parse.
  Json(double v) {  // NOLINT(google-explicit-constructor)
    if (std::isfinite(v)) {
      type_ = Type::kDouble;
      dbl_ = v;
    }
  }
  Json(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  // ---- Inspection ---------------------------------------------------------
  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kUint ||
           type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // ---- Typed accessors (throw sw::Error on type mismatch) -----------------
  bool as_bool() const;
  /// Any numeric value as double.
  double as_double() const;
  /// Integral value in [0, 2^64); throws on negatives, doubles with a
  /// fractional part, or out-of-range values.
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  const std::string& as_string() const;

  // ---- Array operations ---------------------------------------------------
  void push_back(Json v);
  const std::vector<Json>& items() const;

  // ---- Object operations --------------------------------------------------
  /// Appends a member (keys are not deduplicated; callers keep them unique).
  void set(std::string key, Json value);
  const JsonMembers& members() const;
  /// Member lookup; nullptr when absent (or not an object).
  const Json* find(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }
  /// Member lookup; throws sw::Error naming the key when absent.
  const Json& at(std::string_view key) const;

  /// Array/object element count; 0 for scalars.
  std::size_t size() const;

  // ---- Writer -------------------------------------------------------------
  /// Compact canonical rendering (no whitespace, members in insertion
  /// order).  Deterministic: equal values render to equal bytes.
  std::string dump() const;
  void dump_to(std::string& out) const;

  /// The shortest decimal form of `v` that strtod()s back to the identical
  /// value; "null" for non-finite values (JSON has no NaN/Infinity).
  static std::string number_to_string(double v);
  /// Appends `s` as a quoted JSON string with all required escapes.
  static void escape_to(std::string& out, std::string_view s);

  // ---- Reader -------------------------------------------------------------
  /// Parses a complete JSON document (trailing whitespace allowed, trailing
  /// garbage rejected).  Never throws on malformed input.
  static JsonParseResult parse(std::string_view text);
  /// parse() that throws sw::Error on failure.
  static Json parse_or_throw(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  JsonMembers obj_;

  friend class JsonParser;
};

struct JsonParseResult {
  bool ok = false;
  Json value;
  std::string error;  // "offset N: message" when !ok
};

}  // namespace swperf::serde
