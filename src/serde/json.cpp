#include "serde/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sw/error.h"

namespace swperf::serde {

namespace {

const char* type_name(Json::Type t) {
  switch (t) {
    case Json::Type::kNull:
      return "null";
    case Json::Type::kBool:
      return "bool";
    case Json::Type::kInt:
    case Json::Type::kUint:
    case Json::Type::kDouble:
      return "number";
    case Json::Type::kString:
      return "string";
    case Json::Type::kArray:
      return "array";
    case Json::Type::kObject:
      return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* wanted, Json::Type got) {
  throw sw::Error(std::string("JSON type mismatch: wanted ") + wanted +
                  ", value is " + type_name(got));
}

}  // namespace

// ---- Typed accessors ------------------------------------------------------

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_double() const {
  switch (type_) {
    case Type::kInt:
      return static_cast<double>(int_);
    case Type::kUint:
      return static_cast<double>(uint_);
    case Type::kDouble:
      return dbl_;
    default:
      type_error("number", type_);
  }
}

std::uint64_t Json::as_u64() const {
  switch (type_) {
    case Type::kUint:
      return uint_;
    case Type::kInt:
      throw sw::Error("JSON number " + std::to_string(int_) +
                      " is negative, wanted an unsigned integer");
    case Type::kDouble:
      if (dbl_ >= 0.0 && dbl_ < 1.8446744073709552e19 &&
          dbl_ == std::floor(dbl_)) {
        return static_cast<std::uint64_t>(dbl_);
      }
      throw sw::Error("JSON number " + number_to_string(dbl_) +
                      " is not an unsigned integer");
    default:
      type_error("unsigned integer", type_);
  }
}

std::int64_t Json::as_i64() const {
  switch (type_) {
    case Type::kInt:
      return int_;
    case Type::kUint:
      if (uint_ > static_cast<std::uint64_t>(INT64_MAX)) {
        throw sw::Error("JSON number " + std::to_string(uint_) +
                        " overflows a signed integer");
      }
      return static_cast<std::int64_t>(uint_);
    case Type::kDouble:
      if (dbl_ >= -9.2233720368547758e18 && dbl_ < 9.2233720368547758e18 &&
          dbl_ == std::floor(dbl_)) {
        return static_cast<std::int64_t>(dbl_);
      }
      throw sw::Error("JSON number " + number_to_string(dbl_) +
                      " is not a signed integer");
    default:
      type_error("integer", type_);
  }
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

// ---- Array / object -------------------------------------------------------

void Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  arr_.push_back(std::move(v));
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

void Json::set(std::string key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  obj_.emplace_back(std::move(key), std::move(value));
}

const JsonMembers& Json::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  const Json* v = find(key);
  if (!v) throw sw::Error("JSON object has no member \"" + std::string(key) + "\"");
  return *v;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  return 0;
}

// ---- Writer ---------------------------------------------------------------

std::string Json::number_to_string(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == 0.0) return std::signbit(v) ? "-0.0" : "0";
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void Json::escape_to(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 passes through byte-for-byte
        }
    }
  }
  out.push_back('"');
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kInt:
      out += std::to_string(int_);
      return;
    case Type::kUint:
      out += std::to_string(uint_);
      return;
    case Type::kDouble:
      out += number_to_string(dbl_);
      return;
    case Type::kString:
      escape_to(out, str_);
      return;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out.push_back(',');
        first = false;
        v.dump_to(out);
      }
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        escape_to(out, k);
        out.push_back(':');
        v.dump_to(out);
      }
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  out.reserve(64);
  dump_to(out);
  return out;
}

// ---- Reader ---------------------------------------------------------------

/// Recursive-descent parser. Malformed input produces a position-annotated
/// error message; nesting is depth-limited so adversarial input cannot
/// overflow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult r;
    try {
      skip_ws();
      r.value = parse_value(0);
      skip_ws();
      if (pos_ != text_.size()) fail("trailing garbage after JSON value");
      r.ok = true;
    } catch (const ParseError& e) {
      r.value = Json();
      r.error = e.message;
    }
    return r;
  }

 private:
  static constexpr int kMaxDepth = 192;

  struct ParseError {
    std::string message;
  };

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError{"offset " + std::to_string(pos_) + ": " + what};
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char next() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        return;
      }
    }
  }

  void expect_literal(const char* lit) {
    for (const char* p = lit; *p; ++p) {
      if (eof() || peek() != *p) fail(std::string("invalid literal, expected '") + lit + "'");
      ++pos_;
    }
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        expect_literal("null");
        return Json();
      case 't':
        expect_literal("true");
        return Json(true);
      case 'f':
        expect_literal("false");
        return Json(false);
      case '"':
        return Json(parse_string());
      case '[':
        return parse_array(depth);
      case '{':
        return parse_object(depth);
      default:
        return parse_number();
    }
  }

  Json parse_array(int depth) {
    ++pos_;  // '['
    Json arr = Json::array();
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      skip_ws();
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == ']') return arr;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  Json parse_object(int depth) {
    ++pos_;  // '{'
    Json obj = Json::object();
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected string key in object");
      std::string key = parse_string();
      skip_ws();
      if (next() != ':') {
        --pos_;
        fail("expected ':' after object key");
      }
      skip_ws();
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == '}') return obj;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        --pos_;
        fail("invalid \\u escape digit");
      }
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (eof() || peek() != '\\') fail("unpaired UTF-16 surrogate");
            ++pos_;
            if (eof() || peek() != 'u') fail("unpaired UTF-16 surrogate");
            ++pos_;
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid UTF-16 surrogate pair");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          --pos_;
          fail("invalid escape sequence");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    // JSON numbers start with '-' or a digit (no '+', no leading '.').
    if (!eof() && peek() != '-' && (peek() < '0' || peek() > '9')) {
      fail("invalid value");
    }
    if (!eof() && peek() == '-') ++pos_;
    bool any_digits = false;
    bool is_double = false;
    while (!eof()) {
      const char c = peek();
      if (c >= '0' && c <= '9') {
        any_digits = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (!any_digits) {
      pos_ = start;
      fail("invalid value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    // JSON forbids leading zeros ("01"); accepting them would also break
    // the byte-level round-trip contract.
    const std::size_t ip = token[0] == '-' ? 1 : 0;
    if (token.size() > ip + 1 && token[ip] == '0' && token[ip + 1] >= '0' &&
        token[ip + 1] <= '9') {
      pos_ = start;
      fail("leading zero in number '" + token + "'");
    }
    errno = 0;
    char* end = nullptr;
    if (is_double) {
      const double v = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size() || !std::isfinite(v)) {
        pos_ = start;
        fail("invalid number '" + token + "'");
      }
      return Json(v);
    }
    if (token[0] == '-') {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end != token.c_str() + token.size()) {
        pos_ = start;
        fail("invalid number '" + token + "'");
      }
      if (errno == ERANGE) return Json(std::strtod(token.c_str(), &end));
      return Json(v);
    }
    const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("invalid number '" + token + "'");
    }
    if (errno == ERANGE) return Json(std::strtod(token.c_str(), &end));
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonParseResult Json::parse(std::string_view text) {
  return JsonParser(text).run();
}

Json Json::parse_or_throw(std::string_view text) {
  auto r = parse(text);
  if (!r.ok) throw sw::Error("JSON parse error: " + r.error);
  return std::move(r.value);
}

}  // namespace swperf::serde
