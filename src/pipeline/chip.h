// Chip-scenario specs: the JSON front door of sim::simulate_chip().
//
// A scenario file describes a whole-chip run — several kernel launches
// queued on the SW26010's CG slots, sharing cross-section memory — in
// terms of the same building blocks the rest of the pipeline speaks:
// suite kernel names (or inline KernelDesc objects) plus LaunchParams.
// Parsing is strict in the serde style (unknown fields and type
// mismatches raise sw::Error); assembly lowers each job through a
// Session, so repeated jobs share one lowering via the session memo.
//
// Schema (swperf.chip_scenario.v1, documented in docs/PIPELINE.md):
//   { "core_groups": 4,                  // optional; CG slots on the chip
//     "trace": false,                    // optional; record a causal trace
//     "jobs": [                          // required, non-empty, in queue
//       { "kernel": "vecadd" | {KernelDesc},   //   order
//         "name": "a",                   // optional; default kernel name
//         "scale": "small" | "full",     // named kernels only
//         "params": {LaunchParams},      // optional; default tuned preset
//         "core_groups": 2 } ] }         // optional; >= the lowering's
//                                        //   own CG demand
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/spec.h"
#include "pipeline/session.h"
#include "serde/json.h"
#include "sim/chip.h"
#include "swacc/kernel.h"

namespace swperf::pipeline {

/// One job of a scenario file, before lowering.
struct ChipJobSpec {
  std::string name;               // display name (defaulted on parse)
  bool named_kernel = true;       // suite name vs. inline description
  std::string kernel_name;        // when named_kernel
  swacc::KernelDesc kernel_desc;  // when !named_kernel
  kernels::Scale scale = kernels::Scale::kFull;
  bool have_params = false;
  swacc::LaunchParams params;     // when have_params
  std::uint32_t core_groups = 0;  // 0 = take the lowering's CG demand
};

/// A parsed scenario file: chip shape plus the job queue.
struct ChipScenarioSpec {
  std::uint32_t core_groups = 4;
  bool trace = false;
  std::vector<ChipJobSpec> jobs;
};

/// Strict parse of a scenario file; throws sw::Error on unknown fields,
/// type mismatches, or an empty job list.
ChipScenarioSpec chip_scenario_spec_from_json(const serde::Json& j);

/// Lowers every job through `session` (named kernels resolve their preset
/// params unless the spec overrides them) and assembles the runnable
/// scenario.  A job's explicit core_groups must cover the lowering's own
/// CG demand; left unset, the demand is used as-is.
sim::ChipScenario assemble_chip_scenario(const ChipScenarioSpec& spec,
                                         Session& session);

}  // namespace swperf::pipeline
