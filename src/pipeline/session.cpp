#include "pipeline/session.h"

#include <limits>
#include <utility>

#include "serde/serde.h"

namespace swperf::pipeline {

double relative_error(double predicted_cycles, double actual_cycles) {
  if (actual_cycles <= 0.0) {
    return predicted_cycles <= 0.0
               ? 0.0
               : std::numeric_limits<double>::infinity();
  }
  return (predicted_cycles - actual_cycles) / actual_cycles;
}

serde::Json to_json(const Evaluation& e) {
  serde::Json j = serde::Json::object();
  j.set("kernel", e.lowered.summary.kernel);
  j.set("params", serde::to_json(e.lowered.summary.params));
  j.set("summary", serde::to_json(e.lowered.summary));
  j.set("actual", serde::to_json(e.actual));
  j.set("predicted", serde::to_json(e.predicted));
  j.set("error", e.error());
  return j;
}

serde::Json to_json(const SessionStats& s) {
  serde::Json j = serde::Json::object();
  j.set("hits", s.hits);
  j.set("misses", s.misses);
  j.set("lowers_skipped", s.lowers_skipped);
  j.set("skeleton_reuses", s.skeleton_reuses);
  j.set("hit_rate", s.hit_rate());
  return j;
}

std::string Session::key(const swacc::KernelDesc& kernel,
                         const swacc::LaunchParams& params) const {
  // The tuners' pre-lowering encoding is a canonical content key: two
  // structurally equal (kernel, params) pairs — under this session's arch
  // — encode to identical bytes, and building it costs a fraction of the
  // JSON serialization it replaced (no number formatting, no escaping).
  return tuning::prelower_key(kernel, params, arch_);
}

const swacc::LoweredKernel& Session::lower(const swacc::KernelDesc& kernel,
                                           const swacc::LaunchParams& params) {
  std::string k = key(kernel, params);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = lowered_.find(k);
    if (it != lowered_.end()) {
      ++counters_.hits;
      ++counters_.lowers_skipped;
      return it->second;
    }
  }
  // Share the tile-independent code-generation artifact across lowerings
  // of the same kernel: variants differing only in tile/CPEs/
  // double-buffer/coalescing reuse one unroll×vectorize×schedule pass.
  // Illegal launches still throw exactly like swacc::lower() and cache
  // nothing: both build_skeleton and lower_with_skeleton validate before
  // this code inserts into either table.
  std::string sk = tuning::skeleton_key(kernel, params, arch_);
  const swacc::LoweredSkeleton* skel = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = skeletons_.find(sk);
    if (it != skeletons_.end()) {
      ++counters_.skeleton_reuses;
      skel = &it->second;
    }
  }
  if (skel == nullptr) {
    // Build outside the lock; on a first-seen race the first insert wins
    // (codegen is a pure function, so the discarded copy was identical).
    auto built = swacc::build_skeleton(kernel, params, arch_);
    std::lock_guard<std::mutex> lock(mu_);
    skel = &skeletons_.emplace(std::move(sk), std::move(built)).first->second;
  }
  auto lowered = swacc::lower_with_skeleton(kernel, params, arch_, *skel);
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.misses;
  return lowered_.emplace(std::move(k), std::move(lowered)).first->second;
}

analysis::Diagnostics Session::check(const swacc::KernelDesc& kernel,
                                     const swacc::LaunchParams& params) const {
  return analysis::check_all(kernel, params, arch_);
}

const sim::SimResult& Session::simulate(const swacc::KernelDesc& kernel,
                                        const swacc::LaunchParams& params) {
  std::string k = key(kernel, params);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = simulated_.find(k);
    if (it != simulated_.end()) {
      ++counters_.hits;
      return it->second;
    }
  }
  const auto& lk = lower(kernel, params);
  // Simulate outside the lock (the deterministic simulator is a pure
  // function of the lowered artifact); first insert wins on a race.
  auto r = sim::simulate(lk.sim_config, lk.binary, lk.programs);
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.misses;
  return simulated_.emplace(std::move(k), std::move(r)).first->second;
}

sim::SimResult Session::simulate_traced(const swacc::KernelDesc& kernel,
                                        const swacc::LaunchParams& params) {
  const auto& lk = lower(kernel, params);
  sim::SimConfig cfg = lk.sim_config;
  cfg.trace = true;
  return sim::simulate(cfg, lk.binary, lk.programs);
}

model::Prediction Session::predict(const swacc::KernelDesc& kernel,
                                   const swacc::LaunchParams& params) {
  return model_.predict(lower(kernel, params).summary);
}

explain::Explanation Session::explain(const swacc::KernelDesc& kernel,
                                      const swacc::LaunchParams& params) {
  const auto& lk = lower(kernel, params);
  return explain::explain(lk, simulate_traced(kernel, params), model_);
}

explain::Classification Session::bottleneck(
    const swacc::KernelDesc& kernel, const swacc::LaunchParams& params) {
  const auto& lk = lower(kernel, params);
  const sim::SimResult& actual = simulate(kernel, params);
  const model::Prediction pred = model_.predict(lk.summary);
  const model::RooflinePrediction roof =
      model::RooflineModel(arch_, /*transaction_aware=*/true)
          .predict(lk.summary);
  return explain::classify(
      explain::gather_signals(lk.summary, actual, pred, roof, arch_));
}

Evaluation Session::evaluate(const swacc::KernelDesc& kernel,
                             const swacc::LaunchParams& params) {
  Evaluation e;
  e.lowered = lower(kernel, params);
  e.actual = simulate(kernel, params);
  e.predicted = model_.predict(e.lowered.summary);
  return e;
}

tuning::TuningResult Session::tune(const swacc::KernelDesc& kernel,
                                   const tuning::SearchSpace& space,
                                   bool empirical,
                                   tuning::TuningOptions options) const {
  if (options.cache == nullptr) {
    options.cache = empirical ? empirical_cache_ : static_cache_;
  }
  if (empirical) {
    return tuning::EmpiricalTuner(arch_, {}, std::move(options))
        .tune(kernel, space);
  }
  return tuning::StaticTuner(arch_, {}, std::move(options))
      .tune(kernel, space);
}

SessionStats Session::stats() const {
  SessionStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = counters_;
  }
  // Fold in the shared tuning caches (internally sharded + thread-safe;
  // their stats() aggregates across shards).
  for (const auto& cache : {static_cache_, empirical_cache_}) {
    const tuning::EvalCacheStats cs = cache->stats();
    s.hits += cs.hits;
    s.misses += cs.misses;
    s.lowers_skipped += cs.lowers_skipped;
    s.skeleton_reuses += cs.skeleton_hits;
  }
  return s;
}

std::size_t Session::lowered_cached() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lowered_.size();
}

std::size_t Session::simulated_cached() const {
  std::lock_guard<std::mutex> lock(mu_);
  return simulated_.size();
}

std::size_t Session::skeletons_cached() const {
  std::lock_guard<std::mutex> lock(mu_);
  return skeletons_.size();
}

}  // namespace swperf::pipeline
