#include "pipeline/session.h"

#include <limits>
#include <utility>

#include "serde/serde.h"

namespace swperf::pipeline {

double relative_error(double predicted_cycles, double actual_cycles) {
  if (actual_cycles <= 0.0) {
    return predicted_cycles <= 0.0
               ? 0.0
               : std::numeric_limits<double>::infinity();
  }
  return (predicted_cycles - actual_cycles) / actual_cycles;
}

serde::Json to_json(const Evaluation& e) {
  serde::Json j = serde::Json::object();
  j.set("kernel", e.lowered.summary.kernel);
  j.set("params", serde::to_json(e.lowered.summary.params));
  j.set("summary", serde::to_json(e.lowered.summary));
  j.set("actual", serde::to_json(e.actual));
  j.set("predicted", serde::to_json(e.predicted));
  j.set("error", e.error());
  return j;
}

std::string Session::key(const swacc::KernelDesc& kernel,
                         const swacc::LaunchParams& params) const {
  // The tuners' pre-lowering encoding is a canonical content key: two
  // structurally equal (kernel, params) pairs — under this session's arch
  // — encode to identical bytes, and building it costs a fraction of the
  // JSON serialization it replaced (no number formatting, no escaping).
  return tuning::prelower_key(kernel, params, arch_);
}

const swacc::LoweredKernel& Session::lower(const swacc::KernelDesc& kernel,
                                           const swacc::LaunchParams& params) {
  std::string k = key(kernel, params);
  auto it = lowered_.find(k);
  if (it == lowered_.end()) {
    // Share the tile-independent code-generation artifact across lowerings
    // of the same kernel: variants differing only in tile/CPEs/
    // double-buffer/coalescing reuse one unroll×vectorize×schedule pass.
    // Illegal launches still throw exactly like swacc::lower() and cache
    // nothing: both build_skeleton and lower_with_skeleton validate before
    // this code inserts into either table.
    std::string sk = tuning::skeleton_key(kernel, params, arch_);
    auto skel = skeletons_.find(sk);
    if (skel == skeletons_.end()) {
      skel = skeletons_
                 .emplace(std::move(sk),
                          swacc::build_skeleton(kernel, params, arch_))
                 .first;
    }
    it = lowered_
             .emplace(std::move(k), swacc::lower_with_skeleton(
                                        kernel, params, arch_, skel->second))
             .first;
  }
  return it->second;
}

analysis::Diagnostics Session::check(const swacc::KernelDesc& kernel,
                                     const swacc::LaunchParams& params) const {
  return analysis::check_all(kernel, params, arch_);
}

const sim::SimResult& Session::simulate(const swacc::KernelDesc& kernel,
                                        const swacc::LaunchParams& params) {
  std::string k = key(kernel, params);
  auto it = simulated_.find(k);
  if (it == simulated_.end()) {
    const auto& lk = lower(kernel, params);
    it = simulated_
             .emplace(std::move(k),
                      sim::simulate(lk.sim_config, lk.binary, lk.programs))
             .first;
  }
  return it->second;
}

sim::SimResult Session::simulate_traced(const swacc::KernelDesc& kernel,
                                        const swacc::LaunchParams& params) {
  const auto& lk = lower(kernel, params);
  sim::SimConfig cfg = lk.sim_config;
  cfg.trace = true;
  return sim::simulate(cfg, lk.binary, lk.programs);
}

model::Prediction Session::predict(const swacc::KernelDesc& kernel,
                                   const swacc::LaunchParams& params) {
  return model_.predict(lower(kernel, params).summary);
}

explain::Explanation Session::explain(const swacc::KernelDesc& kernel,
                                      const swacc::LaunchParams& params) {
  const auto& lk = lower(kernel, params);
  return explain::explain(lk, simulate_traced(kernel, params), model_);
}

explain::Classification Session::bottleneck(
    const swacc::KernelDesc& kernel, const swacc::LaunchParams& params) {
  const auto& lk = lower(kernel, params);
  const sim::SimResult& actual = simulate(kernel, params);
  const model::Prediction pred = model_.predict(lk.summary);
  const model::RooflinePrediction roof =
      model::RooflineModel(arch_, /*transaction_aware=*/true)
          .predict(lk.summary);
  return explain::classify(
      explain::gather_signals(lk.summary, actual, pred, roof, arch_));
}

Evaluation Session::evaluate(const swacc::KernelDesc& kernel,
                             const swacc::LaunchParams& params) {
  Evaluation e;
  e.lowered = lower(kernel, params);
  e.actual = simulate(kernel, params);
  e.predicted = model_.predict(e.lowered.summary);
  return e;
}

tuning::TuningResult Session::tune(const swacc::KernelDesc& kernel,
                                   const tuning::SearchSpace& space,
                                   bool empirical,
                                   tuning::TuningOptions options) const {
  if (empirical) {
    return tuning::EmpiricalTuner(arch_, {}, std::move(options))
        .tune(kernel, space);
  }
  return tuning::StaticTuner(arch_, {}, std::move(options))
      .tune(kernel, space);
}

}  // namespace swperf::pipeline
