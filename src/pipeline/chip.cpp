#include "pipeline/chip.h"

#include <limits>

#include "kernels/suite.h"
#include "serde/serde.h"
#include "sw/error.h"

namespace swperf::pipeline {

namespace {

std::uint32_t as_u32_field(const serde::Json& j, const char* what) {
  const std::uint64_t v = j.as_u64();
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    throw sw::Error(std::string(what) + " overflows uint32");
  }
  return static_cast<std::uint32_t>(v);
}

ChipJobSpec job_from_json(const serde::Json& j) {
  if (!j.is_object()) {
    throw sw::Error("chip scenario job must be a JSON object");
  }
  ChipJobSpec job;
  bool have_kernel = false;
  bool have_scale = false;
  for (const auto& [key, value] : j.members()) {
    if (key == "kernel") {
      have_kernel = true;
      if (value.is_string()) {
        job.named_kernel = true;
        job.kernel_name = value.as_string();
      } else {
        job.named_kernel = false;
        job.kernel_desc = serde::kernel_desc_from_json(value);
      }
    } else if (key == "name") {
      job.name = value.as_string();
    } else if (key == "scale") {
      have_scale = true;
      const std::string& s = value.as_string();
      if (s == "small") {
        job.scale = kernels::Scale::kSmall;
      } else if (s == "full") {
        job.scale = kernels::Scale::kFull;
      } else {
        throw sw::Error("chip scenario job: unknown scale '" + s +
                        "' (expected \"small\" or \"full\")");
      }
    } else if (key == "params") {
      job.have_params = true;
      job.params = serde::launch_params_from_json(value);
    } else if (key == "core_groups") {
      job.core_groups = as_u32_field(value, "chip scenario job core_groups");
      if (job.core_groups == 0) {
        throw sw::Error("chip scenario job: core_groups must be >= 1");
      }
    } else {
      throw sw::Error("chip scenario job: unknown field \"" + key + "\"");
    }
  }
  if (!have_kernel) {
    throw sw::Error("chip scenario job: missing \"kernel\"");
  }
  if (have_scale && !job.named_kernel) {
    throw sw::Error(
        "chip scenario job: \"scale\" applies to named suite kernels only");
  }
  if (job.name.empty()) {
    job.name = job.named_kernel ? job.kernel_name : job.kernel_desc.name;
  }
  return job;
}

}  // namespace

ChipScenarioSpec chip_scenario_spec_from_json(const serde::Json& j) {
  if (!j.is_object()) {
    throw sw::Error("chip scenario must be a JSON object");
  }
  ChipScenarioSpec spec;
  bool have_jobs = false;
  for (const auto& [key, value] : j.members()) {
    if (key == "core_groups") {
      spec.core_groups = as_u32_field(value, "chip scenario core_groups");
      if (spec.core_groups == 0) {
        throw sw::Error("chip scenario: core_groups must be >= 1");
      }
    } else if (key == "trace") {
      spec.trace = value.as_bool();
    } else if (key == "jobs") {
      have_jobs = true;
      if (!value.is_array()) {
        throw sw::Error("chip scenario: \"jobs\" must be an array");
      }
      for (const auto& job : value.items()) {
        spec.jobs.push_back(job_from_json(job));
      }
    } else {
      throw sw::Error("chip scenario: unknown field \"" + key + "\"");
    }
  }
  if (!have_jobs || spec.jobs.empty()) {
    throw sw::Error("chip scenario: needs a non-empty \"jobs\" array");
  }
  return spec;
}

sim::ChipScenario assemble_chip_scenario(const ChipScenarioSpec& spec,
                                         Session& session) {
  sim::ChipScenario scenario;
  scenario.arch = session.arch();
  scenario.core_groups = spec.core_groups;
  scenario.trace = spec.trace;
  scenario.jobs.reserve(spec.jobs.size());
  for (const auto& job : spec.jobs) {
    swacc::KernelDesc desc;
    swacc::LaunchParams params;
    if (job.named_kernel) {
      const auto kspec = kernels::make(job.kernel_name, job.scale);
      desc = kspec.desc;
      params = kspec.tuned;
    } else {
      desc = job.kernel_desc;
    }
    if (job.have_params) params = job.params;

    const auto& lk = session.lower(desc, params);
    const std::uint32_t demand = lk.sim_config.core_groups;
    std::uint32_t slots = job.core_groups == 0 ? demand : job.core_groups;
    if (slots < demand) {
      throw sw::Error("chip scenario job '" + job.name + "' reserves " +
                      std::to_string(slots) + " CGs but its launch needs " +
                      std::to_string(demand));
    }
    sim::ChipJob cj;
    cj.name = job.name;
    cj.binary = lk.binary;
    cj.programs = lk.programs;
    cj.core_groups = slots;
    scenario.jobs.push_back(std::move(cj));
  }
  return scenario;
}

}  // namespace swperf::pipeline
