// The evaluation-pipeline facade.
//
// The paper's workflow is one fixed pipeline: kernel description → SWACC
// lowering → {static checks, cycle-level simulation, analytical model,
// auto-tuning}.  Before this module, every consumer (the CLI subcommands,
// the bench harnesses, the examples) re-implemented that plumbing by hand;
// Session puts the lower-once-use-thrice pattern in exactly one place.
//
// A Session owns the machine (sw::ArchParams) and the model configuration
// (model::ModelOptions) and memoizes lowering and simulation per
// (kernel, params) — keyed by the tuners' canonical pre-lowering encoding
// (tuning::prelower_key) of the lowering inputs, so two structurally
// identical descriptions share one lowering and a repeat evaluation skips
// swacc::lower() without serializing anything to JSON.  predict() and
// evaluate() reuse the memoized artifacts; check() is stateless and cheap.
//
// Sessions ARE thread-safe: the memo tables sit behind a mutex, and the
// expensive work (skeleton build, lowering, simulation) runs outside it.
// Concurrent first-seen callers may both compute; the first insert wins
// and every caller observes the stored artifact, so results are
// bit-identical to serial use at any thread count — the re-entrancy
// contract the serve shard pool fans out on
// (tests/pipeline/concurrent_session_test.cpp pins it).  References
// returned by lower()/simulate() stay valid for the Session's lifetime
// (node-based map storage; nodes are never erased).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "analysis/checker.h"
#include "explain/explain.h"
#include "model/model.h"
#include "serde/json.h"
#include "sim/machine.h"
#include "swacc/lower.h"
#include "swacc/skeleton.h"
#include "tuning/eval_cache.h"
#include "tuning/tuner.h"

namespace swperf::pipeline {

/// Relative prediction error (predicted − actual) / actual, defined for
/// degenerate launches: 0 when both are zero, +infinity when only the
/// actual time is zero.  (JSON renders the infinite case as null.)
double relative_error(double predicted_cycles, double actual_cycles);

/// One kernel launch evaluated both ways — the unified record of the
/// model-accuracy studies (simulated "actual" vs. model "predicted").
struct Evaluation {
  swacc::LoweredKernel lowered;
  sim::SimResult actual;
  model::Prediction predicted;

  double actual_cycles() const { return actual.total_cycles(); }
  /// Signed relative error of the prediction; see relative_error().
  double error() const {
    return relative_error(predicted.t_total, actual_cycles());
  }
  double actual_us(const sw::ArchParams& arch) const {
    return sw::cycles_to_us(actual_cycles(), arch.freq_ghz);
  }
  double predicted_us(const sw::ArchParams& arch) const {
    return predicted.total_us(arch.freq_ghz);
  }
};

/// JSON record of one evaluation: kernel, params, static summary, actual
/// (trace-free sim result), predicted, and the relative error.
serde::Json to_json(const Evaluation& e);

/// Aggregate cache statistics of one Session: its own memo tables plus the
/// tuning EvalCaches its campaigns share.  The counters follow the
/// EvalCacheStats vocabulary so `swperf eval --stats` and the serve
/// daemon's `--stats` endpoint report the same numbers:
///   hits / misses        — memo probes (lower + simulate) and tuning-cache
///                          evaluations, hit or paid for;
///   lowers_skipped       — probes served without running swacc::lower()
///                          (always <= hits);
///   skeleton_reuses      — lowerings that reused a stored code-generation
///                          skeleton instead of re-running codegen.
struct SessionStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t lowers_skipped = 0;
  std::uint64_t skeleton_reuses = 0;
  std::uint64_t probes() const { return hits + misses; }
  double hit_rate() const {
    const std::uint64_t n = probes();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

/// Deterministic JSON rendering of SessionStats (fixed field order).
serde::Json to_json(const SessionStats& s);

class Session {
 public:
  explicit Session(sw::ArchParams arch = sw::ArchParams::sw26010(),
                   model::ModelOptions opts = {})
      : arch_(arch),
        model_(arch, opts),
        static_cache_(std::make_shared<tuning::EvalCache>()),
        empirical_cache_(std::make_shared<tuning::EvalCache>()) {}

  // The memo tables and their mutex pin the Session in place.
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const sw::ArchParams& arch() const { return arch_; }
  const model::PerfModel& model() const { return model_; }

  /// Lowers (kernel, params), memoized; throws sw::Error on illegal
  /// launches exactly like swacc::lower().
  const swacc::LoweredKernel& lower(const swacc::KernelDesc& kernel,
                                    const swacc::LaunchParams& params);

  /// Full static diagnostics (description, launch and — when those are
  /// error-free — lowered-program checks). Never throws on findings.
  analysis::Diagnostics check(const swacc::KernelDesc& kernel,
                              const swacc::LaunchParams& params) const;

  /// Cycle-level simulation of the lowered launch, memoized.
  const sim::SimResult& simulate(const swacc::KernelDesc& kernel,
                                 const swacc::LaunchParams& params);

  /// Simulation with trace recording; not memoized (traces are large and
  /// one-shot consumers render them immediately).
  sim::SimResult simulate_traced(const swacc::KernelDesc& kernel,
                                 const swacc::LaunchParams& params);

  /// Static model prediction from the memoized lowering's summary.
  model::Prediction predict(const swacc::KernelDesc& kernel,
                            const swacc::LaunchParams& params);

  /// Full explanation of the launch: critical path and per-resource slack
  /// over a traced simulation plus the bottleneck label.  The trace is
  /// one-shot (not memoized, like simulate_traced); the label always
  /// equals bottleneck()'s for the same launch.
  explain::Explanation explain(const swacc::KernelDesc& kernel,
                               const swacc::LaunchParams& params);

  /// The bottleneck label alone, from trace-free signals (memoized
  /// lowering + simulation) — cheap enough for the optimizer to query
  /// every round.
  explain::Classification bottleneck(const swacc::KernelDesc& kernel,
                                     const swacc::LaunchParams& params);

  /// lower + simulate + predict in one call, sharing the memo tables.
  Evaluation evaluate(const swacc::KernelDesc& kernel,
                      const swacc::LaunchParams& params);

  /// Auto-tuning over `space`: the model-driven StaticTuner by default,
  /// the simulate-everything EmpiricalTuner when `empirical`.  Campaigns
  /// without an explicit options.cache share this Session's persistent
  /// EvalCache (one per tuner kind — they memoize different functions), so
  /// repeated campaigns over overlapping spaces hit warm: results are
  /// bit-identical either way (memoized values equal computed ones), only
  /// the campaign's hit/miss stats change.
  tuning::TuningResult tune(const swacc::KernelDesc& kernel,
                            const tuning::SearchSpace& space,
                            bool empirical = false,
                            tuning::TuningOptions options = {}) const;

  /// Aggregate cache statistics: the Session memo tables plus both shared
  /// tuning EvalCaches.  Safe to call concurrently with evaluations.
  SessionStats stats() const;

  // Memo-table introspection (tests pin the memoization behaviour).
  std::size_t lowered_cached() const;
  std::size_t simulated_cached() const;
  std::size_t skeletons_cached() const;

 private:
  std::string key(const swacc::KernelDesc& kernel,
                  const swacc::LaunchParams& params) const;

  sw::ArchParams arch_;
  model::PerfModel model_;
  /// Guards the memo tables and counters below.  Never held while
  /// lowering, simulating or building a skeleton: concurrent first-seen
  /// callers recompute the identical pure function and the first insert
  /// wins, which keeps slow work off the lock.
  mutable std::mutex mu_;
  SessionStats counters_;
  std::unordered_map<std::string, swacc::LoweredKernel> lowered_;
  std::unordered_map<std::string, sim::SimResult> simulated_;
  /// Code-generation skeletons shared across lowerings that differ only in
  /// tile/CPEs/double-buffer/coalescing (keyed by tuning::skeleton_key).
  std::unordered_map<std::string, swacc::LoweredSkeleton> skeletons_;
  /// Persistent tuning caches handed to campaigns that bring none (see
  /// tune()); EvalCache is internally sharded and thread-safe.
  std::shared_ptr<tuning::EvalCache> static_cache_;
  std::shared_ptr<tuning::EvalCache> empirical_cache_;
};

}  // namespace swperf::pipeline
