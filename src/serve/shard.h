// The sharded, batching, backpressured core of the evaluation service.
//
// A ShardPool owns one Session shard per distinct ArchParams fingerprint
// (serve::arch_key): unrelated tenants — a default-SW26010 client and a
// bandwidth-derated what-if sweep — never contend on one memo-table
// mutex.  Each shard runs a dispatcher thread over a *bounded* FIFO queue:
//
//   * enqueue past the depth limit answers immediately with the
//     structured {"error":{"code":"overloaded"}} reply (429-style
//     backpressure) instead of growing memory without bound;
//   * the dispatcher drains up to `batch` queued requests per wakeup and
//     fans them out on sw::parallel_for — the work-stealing executor the
//     tuners use — against the shard's (thread-safe) Session, so one slow
//     request does not serialize its whole batch;
//   * replies are written in batch order through each request's ReplySink,
//     so a connection that keeps its requests on one shard reads replies
//     in request order;
//   * drain() stops the dispatchers only after their queues are empty:
//     every accepted request is answered before shutdown completes.
//
// Latency is measured enqueue-to-reply (queue wait included) into a
// fixed-bucket sw::LatencyHistogram per shard; stats_json() renders the
// whole pool deterministically (sorted shards, fixed field order).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "pipeline/session.h"
#include "serde/json.h"
#include "serve/service.h"
#include "sw/stats.h"

namespace swperf::serve {

/// Configuration shared by the TCP daemon, the stdio mode and the pool.
struct ServeOptions {
  /// TCP listen port (0 = kernel-assigned ephemeral port).
  int port = 7077;
  /// Workers fanning out one drained batch (0 = hardware concurrency).
  int jobs = 0;
  /// Bound on each shard's queue; an enqueue past it is answered with the
  /// "overloaded" error reply.
  std::size_t queue_depth = 256;
  /// Maximum requests drained per dispatcher wakeup (K).
  std::size_t batch = 8;
  /// Tests only: construct shards with their dispatcher paused, so
  /// overload behaviour can be pinned deterministically (see
  /// ShardPool::start_shards).
  bool auto_start = true;
};

/// A thread-safe whole-line reply writer.  Requests hold a shared_ptr to
/// their connection's sink, so replies outlive an early client close.
class ReplySink {
 public:
  virtual ~ReplySink() = default;
  /// Writes one complete reply line (terminator added by the sink).
  virtual void write_line(const std::string& line) = 0;
};

/// Sink over a std::ostream (the --stdio mode and the in-process tests).
class OstreamSink final : public ReplySink {
 public:
  explicit OstreamSink(std::ostream& out) : out_(out) {}
  void write_line(const std::string& line) override;

 private:
  std::mutex mu_;
  std::ostream& out_;
};

/// One queued request: the parsed envelope, where to answer, and when it
/// arrived (latency is enqueue-to-reply).
struct QueuedItem {
  Request req;
  std::shared_ptr<ReplySink> sink;
  std::chrono::steady_clock::time_point enqueued;
};

/// One Session shard: a bounded queue plus its batching dispatcher.
class Shard {
 public:
  Shard(const sw::ArchParams& arch, std::string key,
        const ServeOptions& opts);
  ~Shard();

  /// Spawns the dispatcher (no-op if already running).
  void start();
  /// Enqueues or — when the queue is at depth, or the shard is draining —
  /// answers with the "overloaded" error reply immediately.  Every call
  /// produces exactly one reply, now or from the dispatcher.
  void enqueue(QueuedItem item);
  /// Stops accepting, finishes every queued request, joins the
  /// dispatcher.  Idempotent.
  void drain();

  /// Deterministically ordered stats object for this shard.
  serde::Json stats_json();

 private:
  void dispatch_loop();
  std::string execute(QueuedItem& item);

  const std::string key_;
  const ServeOptions opts_;
  pipeline::Session session_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedItem> queue_;
  bool stopping_ = false;
  bool started_ = false;
  std::uint64_t served_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t max_batch_ = 0;
  sw::LatencyHistogram latency_;
  std::thread dispatcher_;
};

/// The shard map plus the line-level front door shared by every transport
/// (TCP connections, --stdio, in-process tests).
class ShardPool {
 public:
  explicit ShardPool(ServeOptions opts);
  ~ShardPool();

  /// Handles one request line end-to-end: parse, classify, route — and
  /// guarantee exactly one reply per non-blank line (inline for
  /// malformed/invalid/stats/overloaded, from a dispatcher otherwise).
  /// Blank lines are ignored.
  void handle_line(std::string_view line,
                   const std::shared_ptr<ReplySink>& sink);

  /// Starts every paused shard dispatcher (tests with auto_start=false).
  void start_shards();
  /// Finishes all queued work and joins every dispatcher.  Idempotent;
  /// handle_line afterwards still answers (with "overloaded").
  void drain();

  /// The deterministic stats document served for {"stats": true}.
  serde::Json stats_json();

  std::size_t shard_count() const;

 private:
  Shard& shard_for(const Request& req);

  const ServeOptions opts_;
  mutable std::mutex mu_;  // guards shards_ and the counters below
  /// Ordered by canonical arch fingerprint, so stats output is stable.
  std::map<std::string, std::unique_ptr<Shard>> shards_;
  std::uint64_t requests_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t invalid_ = 0;
  std::uint64_t stats_requests_ = 0;
};

}  // namespace swperf::serve
