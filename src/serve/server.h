// Transports of the evaluation service: a loopback TCP daemon and a
// stdio mode, both thin line pumps into the same ShardPool.
//
// TCP (`swperf serve --port N`): the server binds 127.0.0.1 only, accepts
// in a poll() loop, and runs one reader thread per connection.  Replies go
// through a per-connection FdSink that requests keep alive by shared_ptr,
// so a client that disconnects with work still queued costs nothing but
// discarded writes (EPIPE is swallowed; MSG_NOSIGNAL, never SIGPIPE).
//
// Shutdown is a graceful drain and the only supported exit: request_stop()
// — async-signal-safe, it writes one byte to a self-pipe — makes run()
// stop accepting, shutdown(SHUT_RD) every connection so readers see EOF,
// join them, drain the pool (every accepted request answered), and
// return 0.
//
// Stdio (`swperf serve --stdio`): one line in, replies out, EOF or
// request_stdio_stop() drains and exits — same code path, no sockets, so
// shell tests can pipe the full protocol without port management.
#pragma once

#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serde/json.h"
#include "serve/shard.h"

namespace swperf::serve {

/// The loopback TCP daemon.
class Server {
 public:
  explicit Server(ServeOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens on 127.0.0.1:opts.port (port 0 picks an ephemeral
  /// port, readable via port() afterwards).  On failure fills *error and
  /// returns false without touching the process state.
  bool listen_on(std::string* error);

  /// The bound port (valid after listen_on succeeded).
  int port() const { return port_; }

  /// Accept loop; blocks until request_stop(), then drains gracefully.
  /// Returns 0 on a clean drain.
  int run();

  /// Stops run() from a signal handler: async-signal-safe (one write()
  /// to a self-pipe), callable any number of times.
  void request_stop();

 private:
  struct Connection {
    int fd = -1;
    /// Keeps the fd open (the sink owns it) while this entry exists, so
    /// shutdown(fd) during drain can never hit a recycled descriptor.
    std::shared_ptr<ReplySink> sink;
    std::thread reader;
    std::shared_ptr<bool> done;  // heap flag: set by reader, read by reaper
  };

  void reader_loop(int fd, std::shared_ptr<ReplySink> sink,
                   std::shared_ptr<bool> done);
  void reap_finished_locked();

  ServeOptions opts_;
  ShardPool pool_;
  int listen_fd_ = -1;
  int wake_fd_[2] = {-1, -1};  // self-pipe: [0] polled, [1] signal-written
  int port_ = 0;

  std::mutex conn_mu_;
  std::list<Connection> connections_;
};

/// Runs the service over an istream/ostream pair until EOF or
/// request_stdio_stop(); drains and returns 0.
int serve_stdio(std::istream& in, std::ostream& out,
                const ServeOptions& opts);

/// Makes the running serve_stdio() drain after its current line.
/// Async-signal-safe (one atomic store).
void request_stdio_stop();

}  // namespace swperf::serve
