#include "serve/service.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "explain/explain.h"
#include "kernels/suite.h"
#include "pipeline/chip.h"
#include "serde/serde.h"
#include "sim/chip.h"
#include "sw/error.h"
#include "transform/optimizer.h"
#include "transform/provenance.h"
#include "tuning/space.h"

namespace swperf::serve {

serde::Json execute_entry(const serde::Json& entry,
                          pipeline::Session& session, bool& failed) {
  std::string name = "?";
  try {
    if (!entry.is_object()) {
      throw sw::Error("eval entry must be a JSON object");
    }
    // A chip entry runs a whole-chip scenario instead of a single launch:
    // { "chip": {chip scenario object} } — no other fields.
    if (const auto* cj = entry.find("chip")) {
      name = "chip";
      for (const auto& [key, value] : entry.members()) {
        (void)value;
        if (key != "chip") {
          throw sw::Error("chip eval entry: unknown field \"" + key + "\"");
        }
      }
      const auto spec = pipeline::chip_scenario_spec_from_json(*cj);
      const auto scenario = pipeline::assemble_chip_scenario(spec, session);
      serde::Json out = serde::Json::object();
      out.set("kernel", name);
      out.set("ok", true);
      out.set("chip", serde::to_json(sim::simulate_chip(scenario)));
      return out;
    }
    kernels::Scale scale = kernels::Scale::kFull;
    if (const auto* sj = entry.find("scale")) {
      const std::string& s = sj->as_string();
      if (s == "small") {
        scale = kernels::Scale::kSmall;
      } else if (s != "full") {
        throw sw::Error("unknown scale '" + s +
                        "' (expected \"small\" or \"full\")");
      }
    }
    swacc::KernelDesc desc;
    swacc::LaunchParams params;
    const serde::Json& kj = entry.at("kernel");
    if (kj.is_string()) {
      const auto spec = kernels::make(kj.as_string(), scale);
      desc = spec.desc;
      params = spec.tuned;
    } else {
      desc = serde::kernel_desc_from_json(kj);
    }
    name = desc.name;
    if (const auto* pj = entry.find("params")) {
      params = serde::launch_params_from_json(*pj);
    }
    std::vector<std::string> stages = {"check", "sim", "model"};
    if (const auto* sj = entry.find("stages")) {
      stages.clear();
      for (const auto& s : sj->items()) stages.push_back(s.as_string());
    }
    serde::Json out = serde::Json::object();
    out.set("kernel", name);
    out.set("ok", true);
    out.set("params", serde::to_json(params));
    bool did_sim = false;
    bool did_model = false;
    for (const auto& stage : stages) {
      if (stage == "check") {
        out.set("check", serde::to_json(session.check(desc, params)));
      } else if (stage == "sim") {
        out.set("actual", serde::to_json(session.simulate(desc, params)));
        did_sim = true;
      } else if (stage == "model") {
        out.set("predicted", serde::to_json(session.predict(desc, params)));
        did_model = true;
      } else if (stage == "explain") {
        out.set("explain",
                explain::to_json(session.explain(desc, params)));
      } else if (stage == "tune") {
        const auto space =
            tuning::SearchSpace::standard(desc, session.arch());
        out.set("tune", serde::to_json(session.tune(desc, space)));
      } else if (stage == "optimize") {
        transform::Optimizer optimizer(session);
        // Batch results are consumed by diff-based tooling, so the
        // deterministic (host-timing-free) rendering is the right default.
        out.set("optimize", serde::optimize_report_json(
                                optimizer.optimize(desc, params), true));
      } else {
        throw sw::Error("unknown stage '" + stage +
                        "' (expected check, sim, model, explain, tune or "
                        "optimize)");
      }
    }
    if (did_sim || did_model) {
      out.set("summary", serde::to_json(session.lower(desc, params).summary));
    }
    if (did_sim && did_model) {
      out.set("error",
              pipeline::relative_error(
                  session.predict(desc, params).t_total,
                  session.simulate(desc, params).total_cycles()));
    }
    return out;
  } catch (const sw::Error& e) {
    failed = true;
    serde::Json out = serde::Json::object();
    out.set("kernel", name);
    out.set("ok", false);
    out.set("message", e.what());
    return out;
  }
}

Request parse_request(const serde::Json& value) {
  if (!value.is_object()) {
    throw sw::Error("request must be a JSON object");
  }
  Request req;
  serde::Json entry = serde::Json::object();
  for (const auto& [key, member] : value.members()) {
    if (key == "id") {
      req.id = member;
      req.has_id = true;
    } else if (key == "arch") {
      req.arch = serde::arch_params_from_json(member);
    } else if (key == "stats") {
      if (!member.is_bool() || !member.as_bool()) {
        throw sw::Error("\"stats\" must be true when present");
      }
      req.stats = true;
    } else {
      entry.set(key, member);
    }
  }
  if (req.stats && entry.size() > 0) {
    throw sw::Error("a stats request carries no other fields");
  }
  req.arch_key = arch_key(req.arch);
  req.entry = std::move(entry);
  return req;
}

std::string arch_key(const sw::ArchParams& arch) {
  return serde::to_json(arch).dump();
}

std::string arch_key_digest(const std::string& key) {
  // FNV-1a, 64 bit: stable across platforms, purely for display.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  static const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[h & 0xf];
    h >>= 4;
  }
  return out;
}

serde::Json error_reply(const serde::Json& id, bool has_id,
                        std::string_view code, std::string message) {
  serde::Json out = serde::Json::object();
  if (has_id) out.set("id", id);
  out.set("ok", false);
  serde::Json err = serde::Json::object();
  err.set("code", std::string(code));
  err.set("message", std::move(message));
  out.set("error", std::move(err));
  return out;
}

serde::Json finish_reply(const Request& req, serde::Json result,
                         bool failed) {
  if (failed) {
    // execute_entry's failure shape is {"kernel", "ok":false, "message"};
    // the wire contract wraps it into the structured error object so
    // clients key on error.code uniformly.
    const auto* message = result.find("message");
    serde::Json out =
        error_reply(req.id, req.has_id, "invalid",
                    message != nullptr && message->is_string()
                        ? message->as_string()
                        : std::string("request failed"));
    if (const auto* kernel = result.find("kernel")) {
      // Keep the kernel name visible for log correlation.
      serde::Json named = serde::Json::object();
      if (req.has_id) named.set("id", req.id);
      named.set("kernel", *kernel);
      named.set("ok", false);
      named.set("error", *out.find("error"));
      return named;
    }
    return out;
  }
  if (!req.has_id) return result;
  serde::Json out = serde::Json::object();
  out.set("id", req.id);
  for (const auto& [key, member] : result.members()) out.set(key, member);
  return out;
}

}  // namespace swperf::serve
