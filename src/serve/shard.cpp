#include "serve/shard.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "sw/error.h"
#include "sw/pool.h"

namespace swperf::serve {

void OstreamSink::write_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mu_);
  out_ << line << '\n';
  out_.flush();
}

// ---- Shard -----------------------------------------------------------------

Shard::Shard(const sw::ArchParams& arch, std::string key,
             const ServeOptions& opts)
    : key_(std::move(key)), opts_(opts), session_(arch) {
  if (opts_.auto_start) start();
}

Shard::~Shard() { drain(); }

void Shard::start() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (started_ || stopping_) return;
  started_ = true;
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

void Shard::enqueue(QueuedItem item) {
  bool draining = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_ && queue_.size() < opts_.queue_depth) {
      queue_.push_back(std::move(item));
      cv_.notify_one();
      return;
    }
    draining = stopping_;
    ++rejected_;
  }
  item.sink->write_line(
      error_reply(item.req.id, item.req.has_id, "overloaded",
                  draining ? "server is draining"
                           : "shard queue full (depth " +
                                 std::to_string(opts_.queue_depth) + ")")
          .dump());
}

void Shard::drain() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    cv_.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  // Never-started shards (auto_start=false, or paused tests) still owe a
  // reply for everything accepted into the queue.
  std::deque<QueuedItem> leftover;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
  }
  for (auto& item : leftover) {
    const std::string reply = execute(item);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++served_;
      ++batches_;
      max_batch_ = std::max<std::uint64_t>(max_batch_, 1);
      latency_.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - item.enqueued)
              .count()));
    }
    item.sink->write_line(reply);
  }
}

void Shard::dispatch_loop() {
  for (;;) {
    std::vector<QueuedItem> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      const std::size_t n =
          std::min<std::size_t>(queue_.size(), std::max<std::size_t>(
                                                   opts_.batch, 1));
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++batches_;
      max_batch_ = std::max<std::uint64_t>(max_batch_, batch.size());
    }
    std::vector<std::string> replies(batch.size());
    sw::parallel_for(batch.size(), opts_.jobs, [&](std::size_t i) {
      replies[i] = execute(batch[i]);
    });
    // Batch order is queue order, so a single-shard client sees replies
    // in the order it sent requests.
    const auto now = std::chrono::steady_clock::now();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      served_ += batch.size();
      for (const auto& item : batch) {
        latency_.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                now - item.enqueued)
                .count()));
      }
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].sink->write_line(replies[i]);
    }
  }
}

std::string Shard::execute(QueuedItem& item) {
  bool failed = false;
  serde::Json result;
  try {
    result = execute_entry(item.req.entry, session_, failed);
  } catch (const std::exception& e) {
    // execute_entry absorbs sw::Error itself; anything else (bad_alloc,
    // logic errors) must still produce a reply, not kill the dispatcher.
    return error_reply(item.req.id, item.req.has_id, "internal", e.what())
        .dump();
  }
  return finish_reply(item.req, std::move(result), failed).dump();
}

serde::Json Shard::stats_json() {
  // Session::stats() takes the session lock; ours only guards counters.
  const auto session_stats = session_.stats();
  const std::lock_guard<std::mutex> lock(mu_);
  serde::Json out = serde::Json::object();
  out.set("arch", arch_key_digest(key_));
  out.set("queue_depth", static_cast<std::uint64_t>(queue_.size()));
  out.set("queue_limit", static_cast<std::uint64_t>(opts_.queue_depth));
  out.set("served", served_);
  out.set("overloaded", rejected_);
  out.set("batches", batches_);
  out.set("max_batch", max_batch_);
  out.set("session", pipeline::to_json(session_stats));
  serde::Json lat = serde::Json::object();
  lat.set("count", latency_.count());
  lat.set("p50", latency_.quantile_us(0.50));
  lat.set("p95", latency_.quantile_us(0.95));
  lat.set("p99", latency_.quantile_us(0.99));
  lat.set("max", latency_.max_us());
  out.set("latency_us", std::move(lat));
  return out;
}

// ---- ShardPool -------------------------------------------------------------

ShardPool::ShardPool(ServeOptions opts) : opts_([&] {
  // A zero depth or batch would deadlock the dispatcher; clamp, never throw.
  opts.queue_depth = std::max<std::size_t>(opts.queue_depth, 1);
  opts.batch = std::max<std::size_t>(opts.batch, 1);
  return opts;
}()) {}

ShardPool::~ShardPool() { drain(); }

void ShardPool::handle_line(std::string_view line,
                            const std::shared_ptr<ReplySink>& sink) {
  if (line.find_first_not_of(" \t\r\n") == std::string_view::npos) return;
  const auto t0 = std::chrono::steady_clock::now();
  serde::JsonParseResult parsed = serde::Json::parse(line);
  std::string parse_error = parsed.ok ? std::string() : parsed.error;
  if (parsed.ok && !parsed.value.is_object()) {
    parse_error = "request must be a JSON object";
  }
  const serde::Json& value = parsed.value;
  if (!parse_error.empty()) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++requests_;
      ++malformed_;
    }
    sink->write_line(
        error_reply(serde::Json(), false, "malformed", parse_error).dump());
    return;
  }
  Request req;
  try {
    req = parse_request(value);
  } catch (const sw::Error& e) {
    const serde::Json* id = value.find("id");
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++requests_;
      ++invalid_;
    }
    sink->write_line(error_reply(id != nullptr ? *id : serde::Json(),
                                 id != nullptr, "invalid", e.what())
                         .dump());
    return;
  }
  if (req.stats) {
    serde::Json stats;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++requests_;
      ++stats_requests_;
    }
    // The reader thread answers stats inline — out of band with respect
    // to queued work, so a loaded server still reports its own state.
    stats = stats_json();
    serde::Json out = serde::Json::object();
    if (req.has_id) out.set("id", req.id);
    out.set("ok", true);
    out.set("stats", std::move(stats));
    sink->write_line(out.dump());
    return;
  }
  Shard* shard = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
    shard = &shard_for(req);
  }
  shard->enqueue(QueuedItem{std::move(req), sink, t0});
}

Shard& ShardPool::shard_for(const Request& req) {
  auto it = shards_.find(req.arch_key);
  if (it == shards_.end()) {
    it = shards_
             .emplace(req.arch_key, std::make_unique<Shard>(
                                        req.arch, req.arch_key, opts_))
             .first;
  }
  return *it->second;
}

void ShardPool::start_shards() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, shard] : shards_) {
    (void)key;
    shard->start();
  }
}

void ShardPool::drain() {
  std::vector<Shard*> shards;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shards.reserve(shards_.size());
    for (auto& [key, shard] : shards_) {
      (void)key;
      shards.push_back(shard.get());
    }
  }
  for (Shard* shard : shards) shard->drain();
}

serde::Json ShardPool::stats_json() {
  serde::Json server = serde::Json::object();
  serde::Json shard_list = serde::Json::array();
  std::vector<Shard*> shards;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    server.set("requests", requests_);
    server.set("malformed", malformed_);
    server.set("invalid", invalid_);
    server.set("stats_requests", stats_requests_);
    server.set("shards", static_cast<std::uint64_t>(shards_.size()));
    server.set("queue_limit", static_cast<std::uint64_t>(opts_.queue_depth));
    server.set("batch_limit", static_cast<std::uint64_t>(opts_.batch));
    shards.reserve(shards_.size());
    // shards_ is an ordered map over canonical fingerprints, so the stats
    // document is deterministic for a given request history.
    for (auto& [key, shard] : shards_) {
      (void)key;
      shards.push_back(shard.get());
    }
  }
  for (Shard* shard : shards) shard_list.push_back(shard->stats_json());
  serde::Json out = serde::Json::object();
  out.set("server", std::move(server));
  out.set("shards", std::move(shard_list));
  return out;
}

std::size_t ShardPool::shard_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

}  // namespace swperf::serve
