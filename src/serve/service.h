// Request execution and the wire envelope of the evaluation service.
//
// One request vocabulary serves two consumers: the one-shot `swperf eval`
// batch subcommand and the long-running `swperf serve` daemon.  Both
// execute the same entry schema (kernel/scale/params/stages/chip,
// docs/PIPELINE.md) through execute_entry(); the daemon wraps it in a thin
// envelope — an optional client "id" echoed on the reply, an optional
// "arch" object selecting the tenant's machine parameters (and with them
// the Session shard), and the out-of-band {"stats": true} request.
//
// Reply contract (docs/SERVE.md):
//   * success        {"id":..., "kernel":..., "ok":true, ...stage outputs}
//   * request error  {"id":..., "ok":false,
//                     "error":{"code":"malformed"|"invalid"|"overloaded"|
//                              "internal", "message":...}}
//   * stats          {"id":..., "ok":true, "stats":{...}}
// Every accepted line gets exactly one reply; a malformed line gets an
// error reply and the connection stays up.
#pragma once

#include <string>
#include <string_view>

#include "pipeline/session.h"
#include "serde/json.h"
#include "sw/arch.h"

namespace swperf::serve {

/// Executes one eval-entry request against `session` and renders the
/// result object ({"kernel":..., "ok":true, ...} on success,
/// {"kernel":..., "ok":false, "message":...} on failure — the exact
/// `swperf eval` output line).  Never throws on request-level failures;
/// `failed` is set instead so batch drivers can report exit status 1.
serde::Json execute_entry(const serde::Json& entry,
                          pipeline::Session& session, bool& failed);

/// One parsed serve request: the envelope fields split off, the entry
/// left for execute_entry().
struct Request {
  serde::Json id;       // echoed verbatim; null when the client sent none
  bool has_id = false;  // distinguishes "id":null from no id at all
  bool stats = false;   // {"stats": true}: answer out of band, skip entry
  sw::ArchParams arch;  // defaults to sw26010 when "arch" is absent
  std::string arch_key;  // canonical fingerprint keying the Session shard
  serde::Json entry;    // the request minus "id"/"arch" (what executes)
};

/// Splits a request object into envelope + entry.  Throws sw::Error on a
/// non-object request, a bad "arch" object, or a non-true "stats" value;
/// the caller turns that into an "invalid" error reply.
Request parse_request(const serde::Json& value);

/// Canonical fingerprint of a machine configuration: the deterministic
/// serde rendering, so two tenants share a shard exactly when their
/// ArchParams are field-for-field equal.
std::string arch_key(const sw::ArchParams& arch);

/// Short display form of an arch key for stats output (16 hex digits of a
/// 64-bit FNV-1a over the canonical fingerprint).
std::string arch_key_digest(const std::string& key);

/// Renders a structured error reply. `id` may be null (malformed lines
/// have none to echo); `has_id` controls whether the member is emitted.
serde::Json error_reply(const serde::Json& id, bool has_id,
                        std::string_view code, std::string message);

/// Prepends the envelope's id (when present) and the "ok" flag to an
/// execute_entry() result, wrapping failures into the structured error
/// shape with code "invalid".
serde::Json finish_reply(const Request& req, serde::Json result,
                         bool failed);

}  // namespace swperf::serve
