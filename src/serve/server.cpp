#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <utility>

namespace swperf::serve {

namespace {

/// Thread-safe line writer over a connected socket.  Owns the fd: the
/// last reply (or the reaper) dropping its shared_ptr closes it, so the
/// descriptor is never reused while a queued request could still answer
/// on it.  Write errors (client gone) are swallowed — a reply to a dead
/// client is simply discarded.
class FdSinkImpl final : public ReplySink {
 public:
  explicit FdSinkImpl(int fd) : fd_(fd) {}
  ~FdSinkImpl() override { ::close(fd_); }

  void write_line(const std::string& line) override {
    const std::lock_guard<std::mutex> lock(mu_);
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return;  // client closed; drop the rest of this reply
    }
  }

 private:
  std::mutex mu_;
  const int fd_;
};

}  // namespace

Server::Server(ServeOptions opts) : opts_(opts), pool_(opts) {}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_[0] >= 0) ::close(wake_fd_[0]);
  if (wake_fd_[1] >= 0) ::close(wake_fd_[1]);
  // run() joins readers before returning; this covers listen_on-then-drop.
  const std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto& c : connections_) {
    if (c.reader.joinable()) c.reader.join();
  }
}

bool Server::listen_on(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (::pipe(wake_fd_) != 0) return fail("pipe");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind 127.0.0.1:" + std::to_string(opts_.port));
  }
  if (::listen(listen_fd_, 64) != 0) return fail("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return fail("getsockname");
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
  return true;
}

void Server::request_stop() {
  if (wake_fd_[1] < 0) return;
  const char byte = 's';
  // write() is async-signal-safe; a full pipe just means a stop is
  // already pending, so the result is deliberately ignored either way.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_[1], &byte, 1);
}

void Server::reader_loop(int fd, std::shared_ptr<ReplySink> sink,
                         std::shared_ptr<bool> done) {
  std::string pending;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, error, or shutdown(SHUT_RD) during drain
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = pending.find('\n', start);
      if (nl == std::string::npos) break;
      pool_.handle_line(
          std::string_view(pending).substr(start, nl - start), sink);
      start = nl + 1;
    }
    pending.erase(0, start);
  }
  // A final line without a terminating newline still counts.
  if (!pending.empty()) pool_.handle_line(pending, sink);
  *done = true;
}

void Server::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (*it->done) {
      it->reader.join();
      // Dropping our sink reference lets the last in-flight reply (or
      // this erase, if none are queued) close the fd.
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

int Server::run() {
  pollfd fds[2];
  fds[0].fd = listen_fd_;
  fds[0].events = POLLIN;
  fds[1].fd = wake_fd_[0];
  fds[1].events = POLLIN;
  bool stopping = false;
  while (!stopping) {
    fds[0].revents = 0;
    fds[1].revents = 0;
    const int rc = ::poll(fds, 2, 500);
    if (rc < 0) {
      if (errno == EINTR) continue;  // the signal handler woke the pipe
      break;
    }
    {
      const std::lock_guard<std::mutex> lock(conn_mu_);
      reap_finished_locked();
    }
    if ((fds[1].revents & POLLIN) != 0) {
      stopping = true;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) continue;
      auto sink = std::make_shared<FdSinkImpl>(fd);
      auto done = std::make_shared<bool>(false);
      const std::lock_guard<std::mutex> lock(conn_mu_);
      connections_.push_back(Connection{});
      Connection& c = connections_.back();
      c.fd = fd;
      c.sink = sink;
      c.done = done;
      c.reader = std::thread(
          [this, fd, sink, done] { reader_loop(fd, sink, done); });
    }
  }
  // Graceful drain: stop accepting, unblock every reader, let them flush
  // the lines they already received, answer everything queued, exit 0.
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    const std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& c : connections_) ::shutdown(c.fd, SHUT_RD);
    for (auto& c : connections_) {
      if (c.reader.joinable()) c.reader.join();
    }
  }
  pool_.drain();
  {
    const std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.clear();  // drops the sink references; fds close here
  }
  return 0;
}

// ---- stdio mode ------------------------------------------------------------

namespace {
std::atomic<bool> g_stdio_stop{false};
}  // namespace

void request_stdio_stop() { g_stdio_stop.store(true); }

int serve_stdio(std::istream& in, std::ostream& out,
                const ServeOptions& opts) {
  g_stdio_stop.store(false);
  ShardPool pool(opts);
  auto sink = std::make_shared<OstreamSink>(out);
  std::string line;
  while (!g_stdio_stop.load() && std::getline(in, line)) {
    pool.handle_line(line, sink);
  }
  pool.drain();
  return 0;
}

}  // namespace swperf::serve
