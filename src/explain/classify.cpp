#include "explain/classify.h"

#include <cstdio>

namespace swperf::explain {

namespace {

std::string pct(double frac) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f%%", frac * 100.0);
  return buf;
}

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace

const char* label_name(Label l) {
  switch (l) {
    case Label::kMemoryBandwidthBound: return "memory-bandwidth-bound";
    case Label::kDmaLatencyBound: return "dma-latency-bound";
    case Label::kIssueBound: return "issue-bound";
    case Label::kGloadLatencyBound: return "gload-latency-bound";
    case Label::kUnderOccupied: return "under-occupied";
    case Label::kComputeBound: return "compute-bound";
    case Label::kBarrierBound: return "barrier-bound";
    case Label::kBalanced: return "balanced";
  }
  return "?";
}

Signals gather_signals(const swacc::StaticSummary& summary,
                       const sim::SimResult& actual,
                       const model::Prediction& predicted,
                       const model::RooflinePrediction& roofline,
                       const sw::ArchParams& arch) {
  Signals s;
  s.span_cycles = actual.total_cycles();
  const double capacity =
      static_cast<double>(arch.cpes_per_cg) * summary.core_groups;
  s.occupancy = capacity > 0.0 ? summary.active_cpes / capacity : 0.0;
  if (s.span_cycles > 0.0) {
    s.mem_busy_frac = sw::ticks_to_cycles(actual.mem_busy_ticks) /
                      (s.span_cycles * summary.core_groups);
    s.comp_frac = actual.avg_comp_cycles() / s.span_cycles;
    s.dma_stall_frac = actual.avg_dma_wait_cycles() / s.span_cycles;
    s.gload_stall_frac = actual.avg_gload_wait_cycles() / s.span_cycles;
    s.barrier_frac = actual.avg_barrier_wait_cycles() / s.span_cycles;
  }
  s.roofline_memory_bound = roofline.memory_bound;
  s.ng_dma = predicted.ng_dma;
  // Eq. 11 splits a request's latency into the fixed L_base and the
  // issue-serialization tail (MRT−1)·Δ; when the tail dominates, widening
  // bandwidth or overlapping more requests cannot help — the CPE's own
  // issue rate is the limit.
  if (predicted.l_avg_dma > 0.0 && predicted.avg_mrt_dma > 1.0) {
    s.issue_gap_frac = (predicted.avg_mrt_dma - 1.0) *
                       arch.delta_delay_cycles / predicted.l_avg_dma;
  }
  return s;
}

// The rule chain, first match wins.  Thresholds are fixed constants so
// the labels are stable artifacts (golden fixtures pin them per kernel):
//   1. saturated controllers        -> memory-bandwidth-bound
//   2. Gload stalls dominate        -> gload-latency-bound
//   3. DMA stalls dominate:
//        enough in-flight requests  -> memory-bandwidth-bound
//        issue tail dominates L_avg -> issue-bound
//        otherwise                  -> dma-latency-bound
//   4. most CPEs idle, nothing saturated -> under-occupied
//   5. compute dominates            -> compute-bound
//   6. barrier imbalance dominates  -> barrier-bound
//   7. otherwise                    -> balanced
Classification classify(const Signals& s) {
  constexpr double kSaturated = 0.75;
  constexpr double kStall = 0.30;
  constexpr double kIssueTail = 0.50;
  constexpr double kOccupied = 0.50;
  constexpr double kCompute = 0.60;
  constexpr double kBarrier = 0.25;

  if (s.span_cycles <= 0.0) {
    return {Label::kBalanced, "empty launch: nothing executed"};
  }
  if (s.mem_busy_frac >= kSaturated) {
    return {Label::kMemoryBandwidthBound,
            "memory controllers busy " + pct(s.mem_busy_frac) +
                " of the span (>= " + pct(kSaturated) +
                (s.roofline_memory_bound ? "); roofline agrees: memory-bound"
                                         : ")")};
  }
  if (s.gload_stall_frac >= kStall &&
      s.gload_stall_frac >= s.dma_stall_frac) {
    return {Label::kGloadLatencyBound,
            "CPEs stalled on serial Gload round-trips " +
                pct(s.gload_stall_frac) + " of the span (>= " + pct(kStall) +
                ")"};
  }
  if (s.dma_stall_frac >= kStall) {
    if (s.ng_dma > 1.0) {
      return {Label::kMemoryBandwidthBound,
              "DMA stalls " + pct(s.dma_stall_frac) + " of the span with NG=" +
                  num(s.ng_dma) +
                  " > 1 virtual groups: enough requests in flight to "
                  "saturate bandwidth"};
    }
    if (s.issue_gap_frac >= kIssueTail) {
      return {Label::kIssueBound,
              "DMA stalls " + pct(s.dma_stall_frac) +
                  " of the span and the (MRT-1)*delta issue tail is " +
                  pct(s.issue_gap_frac) + " of request latency (>= " +
                  pct(kIssueTail) + ")"};
    }
    return {Label::kDmaLatencyBound,
            "DMA stalls " + pct(s.dma_stall_frac) + " of the span with NG=" +
                num(s.ng_dma) +
                " <= 1 virtual groups: round-trip latency, not bandwidth"};
  }
  if (s.occupancy <= kOccupied) {
    return {Label::kUnderOccupied,
            "only " + pct(s.occupancy) +
                " of CPEs active and no resource saturated (memory busy " +
                pct(s.mem_busy_frac) + ")"};
  }
  if (s.comp_frac >= kCompute) {
    return {Label::kComputeBound,
            "CPE pipelines computing " + pct(s.comp_frac) +
                " of the span (>= " + pct(kCompute) + ")"};
  }
  if (s.barrier_frac >= kBarrier) {
    return {Label::kBarrierBound,
            "CPEs parked at barriers " + pct(s.barrier_frac) +
                " of the span (>= " + pct(kBarrier) + "): load imbalance"};
  }
  return {Label::kBalanced,
          "no signal clears its threshold (memory " + pct(s.mem_busy_frac) +
              ", compute " + pct(s.comp_frac) + ", dma stalls " +
              pct(s.dma_stall_frac) + ")"};
}

}  // namespace swperf::explain
