// Deterministic bottleneck classification — the rule-based half of the
// explain engine (modeled on rocm-perf-lab's analysis.json classifier
// and Kerncraft's automated roofline/ECM attribution).
//
// The signals come only from trace-free artifacts — the static summary,
// the untraced SimResult, the analytic model's virtual-grouping
// internals (Eq. 9–12), and the roofline position — so the same label is
// produced whether or not a trace was recorded: `swperf explain` and the
// optimizer's cheap per-round query agree by construction.  classify()
// is a pure, total, ordered rule chain: every input gets exactly one
// label, and equal signals always get equal labels.
#pragma once

#include <cstdint>
#include <string>

#include "model/model.h"
#include "model/roofline.h"
#include "sim/machine.h"
#include "sw/arch.h"
#include "swacc/summary.h"

namespace swperf::explain {

enum class Label : std::uint8_t {
  kMemoryBandwidthBound,  // controllers saturated; less traffic, not less
                          // latency, is the cure
  kDmaLatencyBound,       // stalled on request round-trips with bandwidth
                          // to spare; overlap/double-buffer first
  kIssueBound,            // the (MRT−1)·Δ issue serialization dominates
                          // request latency; restructure requests
  kGloadLatencyBound,     // serial Gload round-trips dominate
  kUnderOccupied,         // most CPEs idle and no resource saturated
  kComputeBound,          // CPE pipelines dominate the span
  kBarrierBound,          // imbalance parked at barriers
  kBalanced,              // nothing clears a threshold
};

/// Stable kebab-case name ("memory-bandwidth-bound", ...).
const char* label_name(Label l);

/// The classifier's inputs, all span-normalized fractions unless noted.
struct Signals {
  double span_cycles = 0.0;
  double occupancy = 0.0;       // active CPEs / machine capacity
  double mem_busy_frac = 0.0;   // controller busy / (span × controllers)
  double comp_frac = 0.0;       // avg CPE compute / span
  double dma_stall_frac = 0.0;  // avg CPE dma wait / span
  double gload_stall_frac = 0.0;
  double barrier_frac = 0.0;
  bool roofline_memory_bound = false;  // transaction-aware roofline
  double ng_dma = 0.0;          // Eq. 9: virtual groups; >1 ⇒ the launch
                                // has enough requests in flight to saturate
  double issue_gap_frac = 0.0;  // (avg_MRT−1)·Δ / L_avg (Eq. 11 split)
};

struct Classification {
  Label label = Label::kBalanced;
  /// One deterministic sentence naming the signal(s) that fired the rule.
  std::string evidence;
};

/// Derives the classifier signals for one evaluated launch.  `actual`
/// may be traced or untraced — only its aggregate stats are read.
Signals gather_signals(const swacc::StaticSummary& summary,
                       const sim::SimResult& actual,
                       const model::Prediction& predicted,
                       const model::RooflinePrediction& roofline,
                       const sw::ArchParams& arch);

/// First-match ordered rule chain; see classify.cpp for the rules.
Classification classify(const Signals& s);

}  // namespace swperf::explain
