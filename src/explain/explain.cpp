#include "explain/explain.h"

#include "model/roofline.h"
#include "serde/serde.h"
#include "sw/error.h"

namespace swperf::explain {

Explanation explain(const swacc::LoweredKernel& lk,
                    const sim::SimResult& traced,
                    const model::PerfModel& model) {
  const swacc::StaticSummary& summary = lk.summary;
  const model::Prediction pred = model.predict(summary);
  const model::RooflinePrediction roof =
      model::RooflineModel(model.arch(), /*transaction_aware=*/true)
          .predict(summary);

  Explanation e;
  e.kernel = summary.kernel;
  e.params = summary.params;
  e.time_cycles = traced.total_cycles();
  e.operational_intensity = roof.arithmetic_intensity;
  e.roofline_memory_bound = roof.memory_bound;
  e.signals = gather_signals(summary, traced, pred, roof, model.arch());

  const ExecutionDag dag(traced.trace);
  e.span_cycles = sw::ticks_to_cycles(dag.span());
  e.trace_events = traced.trace.events.size();
  e.path = dag.critical_path();
  e.breakdown = dag.breakdown();

  // Aggregate lane slack into the schedulable resources: the CPE compute
  // array as one resource, each memory controller on its own, and the
  // barrier network.
  const auto& lanes = dag.lane_slack();
  const double span = sw::ticks_to_cycles(dag.span());
  const std::uint32_t n_cpes = traced.trace.n_cpes;
  {
    ResourceSlack cpe;
    cpe.resource = "cpe_compute";
    double critical = 0.0;
    for (std::uint32_t l = 0; l < n_cpes; ++l) {
      cpe.busy_cycles += sw::ticks_to_cycles(lanes[l].busy);
    }
    critical = sw::ticks_to_cycles(dag.breakdown().compute);
    cpe.critical_cycles = critical;
    cpe.slack_cycles = span - critical;
    cpe.utilization =
        span > 0.0 && n_cpes > 0 ? cpe.busy_cycles / (span * n_cpes) : 0.0;
    e.slack.push_back(cpe);
  }
  for (std::uint32_t mc = 0; mc < traced.trace.n_controllers; ++mc) {
    const LaneSlack& lane = lanes[n_cpes + mc];
    ResourceSlack r;
    r.resource = "mem" + std::to_string(mc);
    r.busy_cycles = sw::ticks_to_cycles(lane.busy);
    r.critical_cycles = sw::ticks_to_cycles(lane.critical);
    r.slack_cycles = sw::ticks_to_cycles(lane.slack);
    r.utilization = span > 0.0 ? r.busy_cycles / span : 0.0;
    e.slack.push_back(r);
  }
  {
    ResourceSlack bar;
    bar.resource = "barrier";
    double waited = 0.0;
    for (const auto& c : traced.cpes) {
      waited += sw::ticks_to_cycles(c.barrier_wait);
    }
    bar.busy_cycles = waited;
    bar.critical_cycles = sw::ticks_to_cycles(dag.breakdown().barrier);
    bar.slack_cycles = span - bar.critical_cycles;
    bar.utilization = span > 0.0 && n_cpes > 0
                          ? waited / (span * n_cpes)
                          : 0.0;
    e.slack.push_back(bar);
  }

  const Classification c = classify(e.signals);
  e.label = c.label;
  e.evidence = c.evidence;
  return e;
}

namespace {

serde::Json to_json(const CriticalBreakdown& b) {
  serde::Json j = serde::Json::object();
  j.set("compute", sw::ticks_to_cycles(b.compute));
  j.set("dma_latency", sw::ticks_to_cycles(b.dma_wait));
  j.set("gload", sw::ticks_to_cycles(b.gload_wait));
  j.set("barrier", sw::ticks_to_cycles(b.barrier));
  j.set("mem_service", sw::ticks_to_cycles(b.mem_service));
  j.set("idle", sw::ticks_to_cycles(b.idle));
  return j;
}

serde::Json to_json(const ResourceSlack& r) {
  serde::Json j = serde::Json::object();
  j.set("resource", r.resource);
  j.set("busy_cycles", r.busy_cycles);
  j.set("critical_cycles", r.critical_cycles);
  j.set("slack_cycles", r.slack_cycles);
  j.set("utilization", r.utilization);
  return j;
}

serde::Json to_json(const Signals& s) {
  serde::Json j = serde::Json::object();
  j.set("occupancy", s.occupancy);
  j.set("mem_busy_frac", s.mem_busy_frac);
  j.set("comp_frac", s.comp_frac);
  j.set("dma_stall_frac", s.dma_stall_frac);
  j.set("gload_stall_frac", s.gload_stall_frac);
  j.set("barrier_frac", s.barrier_frac);
  j.set("ng_dma", s.ng_dma);
  j.set("issue_gap_frac", s.issue_gap_frac);
  return j;
}

}  // namespace

serde::Json to_json(const Explanation& e) {
  serde::Json j = serde::Json::object();
  j.set("kernel", e.kernel);
  j.set("params", serde::to_json(e.params));
  j.set("time_cycles", e.time_cycles);
  j.set("operational_intensity", e.operational_intensity);
  j.set("roofline_position",
        e.roofline_memory_bound ? "memory-bound" : "compute-bound");

  serde::Json cp = serde::Json::object();
  cp.set("span_cycles", e.span_cycles);
  cp.set("trace_events", e.trace_events);
  cp.set("path_events", static_cast<std::uint64_t>(e.path.size()));
  cp.set("breakdown_cycles", to_json(e.breakdown));
  j.set("critical_path", std::move(cp));

  serde::Json slack = serde::Json::array();
  for (const auto& r : e.slack) slack.push_back(to_json(r));
  j.set("slack", std::move(slack));

  j.set("signals", to_json(e.signals));
  j.set("bottleneck", label_name(e.label));
  j.set("evidence", e.evidence);
  return j;
}

}  // namespace swperf::explain
