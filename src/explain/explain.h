// The explain engine: turns one traced simulation into an explanation —
// critical path, per-resource slack, and a deterministic bottleneck
// label — rendered as an `analysis.json`-shaped artifact.
//
// Consumes the causal trace (sim/trace.h) through the execution DAG
// (explain/dag.h) and the trace-free classifier (explain/classify.h);
// surfaced as `pipeline::Session::explain()`, the `swperf explain`
// subcommand, and the `explain` stage of `swperf eval`.  The label also
// drives the closed-loop optimizer's proposal ordering (src/transform/).
#pragma once

#include <string>
#include <vector>

#include "explain/classify.h"
#include "explain/dag.h"
#include "model/model.h"
#include "serde/json.h"
#include "swacc/lower.h"

namespace swperf::explain {

/// Slack of one schedulable resource against the critical path.
struct ResourceSlack {
  std::string resource;  // "cpe_compute", "mem<i>", "barrier"
  double busy_cycles = 0.0;      // useful work booked on the resource
  double critical_cycles = 0.0;  // span attributed to it on the path
  double slack_cycles = 0.0;     // span − critical
  double utilization = 0.0;      // busy / available span on the resource
};

/// The complete explanation of one kernel launch.
struct Explanation {
  std::string kernel;
  swacc::LaunchParams params;

  double time_cycles = 0.0;
  double operational_intensity = 0.0;  // transaction-aware roofline AI
  bool roofline_memory_bound = false;

  // Critical path over the causal trace.  `span_cycles` is the trace's
  // own span (what the breakdown telescopes to exactly); it equals
  // time_cycles whenever the last thing a CPE does is observable.
  double span_cycles = 0.0;
  std::uint64_t trace_events = 0;
  std::vector<CriticalStep> path;
  CriticalBreakdown breakdown;
  std::vector<ResourceSlack> slack;

  Signals signals;
  Label label = Label::kBalanced;
  std::string evidence;
};

/// Explains one lowered launch from its traced simulation.  The label is
/// computed from trace-free signals only, so it matches what
/// Session::bottleneck() returns for the same launch without a trace.
Explanation explain(const swacc::LoweredKernel& lk,
                    const sim::SimResult& traced,
                    const model::PerfModel& model);

/// Deterministic JSON rendering (the analysis.json-shaped artifact);
/// schema documented in docs/EXPLAIN.md.  Contains no wall-clock or
/// host-dependent fields, so equal explanations render to equal bytes.
serde::Json to_json(const Explanation& e);

}  // namespace swperf::explain
