// Execution DAG over the simulator's causal trace events.
//
// The trace (sim/trace.h) already carries the edges: same-lane program
// order, per-request DMA chains (issue → service → ... → wait), Gload
// grant → interleaved compute, and barrier joins (all arrivals sharing a
// barrier ordinal gate the release).  This module walks those edges
// backward from the finish event to extract the *critical path* — the
// single causal chain that determines the span — attributing every tick
// of the span either to an event on the path or to idle gaps, plus the
// per-lane slack (how far off the critical path each CPE / memory
// controller sits).  The walk is deterministic: ties between equally
// late predecessors break toward the smallest event id, so two runs (or
// the two engines) produce byte-identical paths.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/trace.h"
#include "sw/time.h"

namespace swperf::explain {

/// One hop of the critical path, in time order.  `attributed` is the
/// slice of the span this hop is responsible for: its event's duration
/// clipped against the handoff from the previous hop, so the hops'
/// attributed ticks plus the recorded idle gaps sum exactly to the span.
struct CriticalStep {
  std::uint64_t event = 0;
  sw::Tick attributed = 0;
};

/// Span ticks attributed per activity class along the critical path.
/// kDmaWait attribution is the latency tail between the request's last
/// memory grant and the CPE's resume — the part no bandwidth increase
/// can remove — because the wait event's predecessor is that grant.
struct CriticalBreakdown {
  sw::Tick compute = 0;
  sw::Tick dma_wait = 0;
  sw::Tick gload_wait = 0;
  sw::Tick barrier = 0;
  sw::Tick mem_service = 0;
  sw::Tick idle = 0;  // gaps between consecutive hops (and before the first)

  sw::Tick total() const {
    return compute + dma_wait + gload_wait + barrier + mem_service + idle;
  }
};

/// How much of the span one lane spends on the critical path.
struct LaneSlack {
  std::uint32_t lane = 0;
  sw::Tick busy = 0;      // useful work (compute / service) on the lane
  sw::Tick critical = 0;  // ticks attributed to this lane's events
  sw::Tick slack = 0;     // span − critical
};

class ExecutionDag {
 public:
  explicit ExecutionDag(const sim::Trace& trace);

  sw::Tick span() const { return span_; }
  /// The critical path in time order (first hop starts the chain).  Empty
  /// for an empty trace.
  const std::vector<CriticalStep>& critical_path() const { return path_; }
  const CriticalBreakdown& breakdown() const { return breakdown_; }
  /// One entry per lane (CPEs first, then controllers), lane order.
  const std::vector<LaneSlack>& lane_slack() const { return lanes_; }

 private:
  sw::Tick span_ = 0;
  std::vector<CriticalStep> path_;
  CriticalBreakdown breakdown_;
  std::vector<LaneSlack> lanes_;
};

}  // namespace swperf::explain
