#include "explain/dag.h"

#include <algorithm>
#include <unordered_map>

#include "sw/error.h"

namespace swperf::explain {

namespace {

using sim::Activity;
using sim::TraceEvent;

/// A candidate predecessor: following it hands the walk off at
/// `eff_end` (the tick up to which the candidate's chain explains time).
struct Candidate {
  std::uint64_t event = sim::kNoPred;
  sw::Tick eff_end = 0;
};

void consider(Candidate& best, std::uint64_t event, sw::Tick eff_end) {
  if (event == sim::kNoPred) return;
  // Latest handoff wins; ties break toward the smallest event id so the
  // walk is deterministic and engine-independent.
  if (best.event == sim::kNoPred || eff_end > best.eff_end ||
      (eff_end == best.eff_end && event < best.event)) {
    best = {event, eff_end};
  }
}

}  // namespace

ExecutionDag::ExecutionDag(const sim::Trace& trace) {
  const auto& ev = trace.events;
  const std::uint32_t n_lanes = trace.n_cpes + trace.n_controllers;
  lanes_.resize(n_lanes);
  for (std::uint32_t l = 0; l < n_lanes; ++l) {
    lanes_[l].lane = l;
    lanes_[l].busy = trace.lane_busy(l);
  }
  span_ = trace.span();
  if (ev.empty() || span_ == 0) {
    for (auto& l : lanes_) l.slack = span_;
    return;
  }

  // Per-lane emission order is time order; remember each event's
  // predecessor on its own lane.
  std::vector<std::uint64_t> lane_pred(ev.size(), sim::kNoPred);
  std::vector<std::uint64_t> last_on_lane(n_lanes, sim::kNoPred);
  // Barrier joins: ordinal -> member events.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> barriers;
  std::uint64_t finish = 0;
  for (std::uint64_t i = 0; i < ev.size(); ++i) {
    const TraceEvent& e = ev[i];
    SWPERF_CHECK(e.lane < n_lanes, "trace event lane out of range");
    lane_pred[i] = last_on_lane[e.lane];
    last_on_lane[e.lane] = i;
    if (e.what == Activity::kBarrier) barriers[e.req].push_back(i);
    const TraceEvent& f = ev[finish];
    if (e.end > f.end || (e.end == f.end && i < finish)) finish = i;
  }

  // Backward walk from the finish event.  Each hop picks the predecessor
  // whose chain hands off latest: the same-lane predecessor, the causal
  // link, or — at a barrier — the chain that produced the latest arrival
  // among all the barrier's members.
  std::vector<CriticalStep> rpath;
  std::uint64_t cur = finish;
  // Guard against cycles (impossible by construction: every edge points
  // to a smaller id or an earlier same-lane event, but keep the walk
  // total anyway).
  for (std::size_t hops = 0; hops <= ev.size(); ++hops) {
    const TraceEvent& e = ev[cur];
    Candidate best;
    consider(best, lane_pred[cur], lane_pred[cur] == sim::kNoPred
                                       ? 0
                                       : ev[lane_pred[cur]].end);
    if (e.pred != sim::kNoPred) consider(best, e.pred, ev[e.pred].end);
    if (e.what == Activity::kBarrier) {
      for (const std::uint64_t m : barriers[e.req]) {
        if (m == cur) continue;
        // The member's own wait is not on the path — the chain *leading
        // to* its arrival is, so hand off through its lane predecessor.
        consider(best, lane_pred[m], lane_pred[m] == sim::kNoPred
                                         ? 0
                                         : ev[lane_pred[m]].end);
      }
    }

    const sw::Tick handoff =
        best.event == sim::kNoPred ? 0 : std::min(best.eff_end, e.end);
    const sw::Tick covered = std::max(handoff, e.begin);
    rpath.push_back({cur, e.end > covered ? e.end - covered : 0});
    if (covered > handoff) breakdown_.idle += covered - handoff;
    if (best.event == sim::kNoPred) break;
    cur = best.event;
  }

  path_.assign(rpath.rbegin(), rpath.rend());
  for (const auto& step : path_) {
    const TraceEvent& e = ev[step.event];
    lanes_[e.lane].critical += step.attributed;
    switch (e.what) {
      case Activity::kCompute: breakdown_.compute += step.attributed; break;
      case Activity::kDmaWait: breakdown_.dma_wait += step.attributed; break;
      case Activity::kGloadWait:
        breakdown_.gload_wait += step.attributed;
        break;
      case Activity::kBarrier: breakdown_.barrier += step.attributed; break;
      case Activity::kMemService:
        breakdown_.mem_service += step.attributed;
        break;
      case Activity::kDmaIssue: break;  // zero-duration by construction
    }
  }
  for (auto& l : lanes_) l.slack = span_ - l.critical;
  SWPERF_CHECK(breakdown_.total() == span_,
               "critical path attribution " << breakdown_.total()
                                            << " != span " << span_);
}

}  // namespace swperf::explain
