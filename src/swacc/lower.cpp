#include "swacc/lower.h"

#include "swacc/skeleton.h"

namespace swperf::swacc {

// The body of lowering lives in skeleton.cpp, split into the
// tile-independent code-generation skeleton and the tile-dependent
// completion so tuning campaigns can share skeletons across variants.
// Composing the two here is bit-identical to the former monolithic
// lower() (tests/swacc/skeleton_test.cpp pins this).
LoweredKernel lower(const KernelDesc& kernel, const LaunchParams& params,
                    const sw::ArchParams& arch) {
  return lower_with_skeleton(kernel, params, arch,
                             build_skeleton(kernel, params, arch));
}

sim::SimResult simulate_kernel(const KernelDesc& kernel,
                               const LaunchParams& params,
                               const sw::ArchParams& arch) {
  const LoweredKernel lk = lower(kernel, params, arch);
  return sim::simulate(lk.sim_config, lk.binary, lk.programs);
}

}  // namespace swperf::swacc
