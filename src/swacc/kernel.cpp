#include "swacc/kernel.h"

#include <algorithm>
#include <sstream>

#include "analysis/checker.h"
#include "sw/error.h"

namespace swperf::swacc {

std::uint64_t KernelDesc::spm_bytes_per_outer() const {
  std::uint64_t s = 0;
  for (const auto& a : arrays) {
    if (a.staged()) s += a.bytes_per_outer;
  }
  return s;
}

std::uint64_t KernelDesc::broadcast_bytes_total() const {
  std::uint64_t s = 0;
  for (const auto& a : arrays) {
    if (a.access == Access::kBroadcast) s += a.broadcast_bytes;
  }
  return s;
}

double KernelDesc::gloads_per_inner_total() const {
  double s = 0.0;
  for (const auto& a : arrays) {
    if (a.access == Access::kIndirect) s += a.gloads_per_inner;
  }
  return s;
}

std::uint32_t KernelDesc::gload_bytes_max() const {
  std::uint32_t m = 8;
  for (const auto& a : arrays) {
    if (a.access == Access::kIndirect) m = std::max(m, a.gload_bytes);
  }
  return m;
}

double KernelDesc::total_flops() const {
  const auto per_iter =
      static_cast<double>(body.class_counts().total_flops());
  return per_iter * static_cast<double>(inner_iters) *
         static_cast<double>(n_outer);
}

bool KernelDesc::has_indirect() const {
  return std::any_of(arrays.begin(), arrays.end(), [](const ArrayRef& a) {
    return a.access == Access::kIndirect;
  });
}

void KernelDesc::validate() const {
  // Routed through the static diagnostics engine so every rejection
  // carries a stable code ([SWK001]... in the exception message) instead
  // of a bare string; docs/ANALYSIS.md catalogues the codes.
  analysis::throw_on_errors(analysis::check_kernel_desc(*this));
}

std::string LaunchParams::to_string() const {
  std::ostringstream os;
  os << "tile=" << tile << " unroll=" << unroll
     << " cpes=" << requested_cpes << (double_buffer ? " db" : "");
  if (vector_width > 1) os << " v" << vector_width;
  if (coalesce_gloads) os << " coal";
  return os.str();
}

}  // namespace swperf::swacc
