#include "swacc/kernel.h"

#include <algorithm>
#include <sstream>

#include "sw/error.h"

namespace swperf::swacc {

std::uint64_t KernelDesc::spm_bytes_per_outer() const {
  std::uint64_t s = 0;
  for (const auto& a : arrays) {
    if (a.staged()) s += a.bytes_per_outer;
  }
  return s;
}

std::uint64_t KernelDesc::broadcast_bytes_total() const {
  std::uint64_t s = 0;
  for (const auto& a : arrays) {
    if (a.access == Access::kBroadcast) s += a.broadcast_bytes;
  }
  return s;
}

double KernelDesc::gloads_per_inner_total() const {
  double s = 0.0;
  for (const auto& a : arrays) {
    if (a.access == Access::kIndirect) s += a.gloads_per_inner;
  }
  return s;
}

std::uint32_t KernelDesc::gload_bytes_max() const {
  std::uint32_t m = 8;
  for (const auto& a : arrays) {
    if (a.access == Access::kIndirect) m = std::max(m, a.gload_bytes);
  }
  return m;
}

double KernelDesc::total_flops() const {
  const auto per_iter =
      static_cast<double>(body.class_counts().total_flops());
  return per_iter * static_cast<double>(inner_iters) *
         static_cast<double>(n_outer);
}

bool KernelDesc::has_indirect() const {
  return std::any_of(arrays.begin(), arrays.end(), [](const ArrayRef& a) {
    return a.access == Access::kIndirect;
  });
}

void KernelDesc::validate() const {
  SWPERF_CHECK(!name.empty(), "kernel has no name");
  SWPERF_CHECK(n_outer >= 1, "kernel '" << name << "': n_outer must be >= 1");
  SWPERF_CHECK(inner_iters >= 1,
               "kernel '" << name << "': inner_iters must be >= 1");
  SWPERF_CHECK(!body.instrs.empty(),
               "kernel '" << name << "': empty compute body");
  body.validate();
  for (const auto& a : arrays) {
    SWPERF_CHECK(!a.name.empty(), "kernel '" << name << "': unnamed array");
    switch (a.access) {
      case Access::kContiguous:
      case Access::kStrided:
      case Access::kBlock2D:
        SWPERF_CHECK(a.bytes_per_outer > 0,
                     "array '" << a.name << "': staged arrays need "
                               << "bytes_per_outer > 0");
        SWPERF_CHECK(a.segments_per_outer >= 1 &&
                         a.bytes_per_outer % a.segments_per_outer == 0,
                     "array '" << a.name
                               << "': segments_per_outer must divide "
                               << "bytes_per_outer");
        break;
      case Access::kBroadcast:
        SWPERF_CHECK(a.broadcast_bytes > 0,
                     "array '" << a.name << "': broadcast needs bytes");
        SWPERF_CHECK(a.dir == Dir::kIn,
                     "array '" << a.name << "': broadcast arrays are "
                               << "read-only per launch");
        break;
      case Access::kIndirect:
        SWPERF_CHECK(a.gloads_per_inner > 0.0,
                     "array '" << a.name << "': indirect arrays need "
                               << "gloads_per_inner > 0");
        SWPERF_CHECK(a.gload_bytes >= 1 && a.gload_bytes <= 32,
                     "array '" << a.name << "': gload_bytes must be 1..32");
        break;
    }
  }
  SWPERF_CHECK(gload_coalesceable >= 0.0 && gload_coalesceable <= 1.0,
               "kernel '" << name << "': gload_coalesceable out of [0,1]");
  SWPERF_CHECK(gload_imbalance >= 0.0 && gload_imbalance < 1.0,
               "kernel '" << name << "': gload_imbalance out of [0,1)");
  SWPERF_CHECK(comp_imbalance >= 0.0 && comp_imbalance < 1.0,
               "kernel '" << name << "': comp_imbalance out of [0,1)");
}

std::string LaunchParams::to_string() const {
  std::ostringstream os;
  os << "tile=" << tile << " unroll=" << unroll
     << " cpes=" << requested_cpes << (double_buffer ? " db" : "");
  if (vector_width > 1) os << " v" << vector_width;
  if (coalesce_gloads) os << " coal";
  return os.str();
}

}  // namespace swperf::swacc
