#include "swacc/skeleton.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "analysis/checker.h"
#include "isa/reorder.h"
#include "isa/vectorize.h"
#include "isa/unroll.h"
#include "mem/spm.h"
#include "sw/error.h"
#include "sw/rng.h"

namespace swperf::swacc {

namespace {

/// Deterministic per-CPE skew in [-1, 1], a pure function of (tag, cpe):
/// irregular kernels' workload imbalance must be reproducible.
double skew_unit(const std::string& tag, std::uint32_t cpe) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the tag
  for (char ch : tag) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  sw::SplitMix64 sm(h ^ (0x9e3779b97f4a7c15ULL * (cpe + 1)));
  const double u =
      static_cast<double>(sm.next() >> 11) * 0x1.0p-53;  // [0, 1)
  return 2.0 * u - 1.0;
}

/// One copy intrinsic over the staged arrays of one direction, for a chunk
/// of `g` outer elements.
mem::DmaRequest build_request(const KernelDesc& k, bool copy_in,
                              std::uint64_t g) {
  mem::DmaRequest req;
  req.dir = copy_in ? mem::Direction::kRead : mem::Direction::kWrite;
  for (const auto& a : k.arrays) {
    if (!a.staged()) continue;
    if (copy_in ? !a.copies_in() : !a.copies_out()) continue;
    switch (a.access) {
      case Access::kContiguous:
        req.add(a.bytes_per_outer * g, 1);
        break;
      case Access::kStrided:
        // One DMA call per outer element's row, rounded up separately.
        req.add(a.bytes_per_outer / a.segments_per_outer,
                static_cast<std::uint32_t>(g * a.segments_per_outer));
        break;
      case Access::kBlock2D:
        // A 2D sub-block: fixed row count, row length grows with chunk
        // size (shrinks when more CPEs split the outer dimension).
        req.add(g * (a.bytes_per_outer / a.segments_per_outer),
                a.segments_per_outer);
        break;
      default:
        break;
    }
  }
  return req;
}

std::uint32_t count_staged_in(const KernelDesc& k) {
  std::uint32_t n = 0;
  for (const auto& a : k.arrays) {
    if (a.staged() && a.copies_in()) ++n;
  }
  return n;
}

/// Where every staged/broadcast buffer landed in SPM — the byte-range view
/// of the layout that lowering annotates onto the op stream (SpmNote) for
/// the dataflow analyses.  Indexed parallel to kernel.arrays; offsets of
/// non-staged arrays are unused.
struct SpmPlan {
  std::uint64_t used = 0;
  /// Combined broadcast region [bcast_lo, bcast_hi); empty when equal.
  std::uint32_t bcast_lo = 0;
  std::uint32_t bcast_hi = 0;
  /// Per-array buffer offsets by parity; [1] aliases [0] when
  /// single-buffered, so callers can index with chunk%2 unconditionally.
  std::vector<std::array<std::uint32_t, 2>> staged_offset;
};

/// SPM layout shared by lowering and spm_bytes_required().  The allocation
/// order is part of the layout contract (spm_bytes_used is golden-pinned):
/// broadcasts first, then staged arrays in declaration order, buffer copies
/// innermost.
std::uint64_t layout_spm(const KernelDesc& kernel, const LaunchParams& params,
                         std::uint32_t spm_capacity, bool enforce,
                         SpmPlan* plan = nullptr) {
  mem::SpmAllocator spm(enforce ? spm_capacity : ~std::uint32_t{0});
  if (plan != nullptr) {
    plan->staged_offset.assign(kernel.arrays.size(), {0, 0});
  }
  for (const auto& a : kernel.arrays) {
    if (a.access == Access::kBroadcast) {
      spm.allocate("bcast:" + a.name,
                   static_cast<std::uint32_t>(a.broadcast_bytes));
    }
  }
  if (plan != nullptr) plan->bcast_hi = spm.used();
  const std::uint64_t eff_tile = std::min(params.tile, kernel.n_outer);
  const int nbuf = params.double_buffer ? 2 : 1;
  for (std::size_t ai = 0; ai < kernel.arrays.size(); ++ai) {
    const auto& a = kernel.arrays[ai];
    if (!a.staged()) continue;
    for (int b = 0; b < nbuf; ++b) {
      const std::uint32_t off = spm.allocate(
          a.name + "#" + std::to_string(b),
          static_cast<std::uint32_t>(eff_tile * a.bytes_per_outer));
      if (plan != nullptr) {
        (*plan).staged_offset[ai][b] = off;
        if (nbuf == 1) (*plan).staged_offset[ai][1] = off;
      }
    }
  }
  if (plan != nullptr) plan->used = spm.used();
  return spm.used();
}

/// Shared precondition gate: every entry point into lowering (plain,
/// skeleton build, skeleton completion) must reject an illegal launch with
/// the same [code] exception, so callers that cache skeletons cannot
/// observe different errors than callers that do not.
void validate_launch_or_throw(const KernelDesc& kernel,
                              const LaunchParams& params,
                              const sw::ArchParams& arch) {
  arch.validate();
  analysis::throw_on_errors(analysis::check_launch(kernel, params, arch));
}

}  // namespace

std::uint64_t spm_bytes_required(const KernelDesc& kernel,
                                 const LaunchParams& params) {
  kernel.validate();
  return layout_spm(kernel, params, 0, /*enforce=*/false);
}

LoweredSkeleton build_skeleton(const KernelDesc& kernel,
                               const LaunchParams& params,
                               const sw::ArchParams& arch) {
  validate_launch_or_throw(kernel, params, arch);

  // Code generation: the unrolled body (steady state) plus, when the trip
  // count does not divide, the original body for the remainder.  Blocks are
  // list-scheduled like the native compiler would (the IR is written in
  // source order; the in-order pipeline rewards a good static order).
  sim::KernelBinary binary;
  const std::uint32_t span = params.unroll * params.vector_width;
  const std::uint32_t blk_u = binary.add_block(isa::reorder_for_ilp(
      isa::unroll(isa::vectorize(kernel.body, params.vector_width),
                  isa::UnrollOptions{static_cast<int>(params.unroll), true,
                                     true}),
      arch));
  const std::uint32_t blk_1 =
      span > 1 ? binary.add_block(isa::reorder_for_ilp(kernel.body, arch))
               : blk_u;
  isa::LoopSchedule ls_u(binary.blocks[blk_u], arch);
  isa::LoopSchedule ls_1(binary.blocks[blk_1], arch);
  return LoweredSkeleton{std::move(binary),  blk_u,
                         blk_1,              std::move(ls_u),
                         std::move(ls_1),    span,
                         params.unroll,      params.vector_width};
}

LoweredKernel lower_with_skeleton(const KernelDesc& kernel,
                                  const LaunchParams& params,
                                  const sw::ArchParams& arch,
                                  const LoweredSkeleton& skel) {
  validate_launch_or_throw(kernel, params, arch);
  SWPERF_CHECK(skel.unroll == params.unroll &&
                   skel.vector_width == params.vector_width,
               "lower_with_skeleton: skeleton built for unroll=" +
                   std::to_string(skel.unroll) + " vector_width=" +
                   std::to_string(skel.vector_width) +
                   " cannot lower " + params.to_string());

  LoweredKernel out;
  out.decomp = decompose(kernel.n_outer, params.tile, params.requested_cpes);
  out.sim_config.arch = arch;
  out.sim_config.core_groups = out.decomp.core_groups_needed(arch);
  SpmPlan spm_plan;
  out.spm_bytes_used = static_cast<std::uint32_t>(
      layout_spm(kernel, params, arch.spm_bytes, /*enforce=*/true,
                 &spm_plan));

  out.binary = skel.binary;
  const std::uint32_t span = skel.span;
  const std::uint32_t blk_u = skel.blk_u;
  const std::uint32_t blk_1 = skel.blk_1;
  const isa::LoopSchedule& ls_u = skel.ls_u;
  const isa::LoopSchedule& ls_1 = skel.ls_1;

  // Below the compiler's staging threshold, DMA stays but extra per-element
  // Gloads appear (the Fig. 7(a) cliff).
  const bool gload_fallback = params.tile < kernel.dma_min_tile;
  const std::uint32_t n_staged_in = count_staged_in(kernel);
  const double gpi = kernel.gloads_per_inner_total();
  const std::uint32_t gbytes =
      std::min(kernel.gload_bytes_max(), arch.gload_max_bytes);

  struct PerCpe {
    double comp_cycles = 0.0;
    std::vector<std::uint64_t> mrt;
    std::uint64_t gloads = 0;
    isa::OpClassCounts counts;
  };
  std::vector<PerCpe> acc(out.decomp.active_cpes);
  out.programs.reserve(out.decomp.active_cpes);

  std::uint64_t bytes_requested = 0;
  std::uint64_t bytes_transferred = 0;

  for (std::uint32_t cpe = 0; cpe < out.decomp.active_cpes; ++cpe) {
    sim::CpeProgram prog;
    PerCpe& pc = acc[cpe];
    const auto chunks = out.decomp.chunks_of(cpe);
    const double cscale =
        1.0 + kernel.comp_imbalance * skew_unit(kernel.name + "#c", cpe);
    const double gscale =
        1.0 + kernel.gload_imbalance * skew_unit(kernel.name + "#g", cpe);

    auto record_dma = [&](const mem::DmaRequest& req) {
      pc.mrt.push_back(req.transactions(arch));
      bytes_requested += req.total_bytes();
      bytes_transferred += req.transferred_bytes(arch);
    };

    // SPM byte-range annotations for the dataflow analyses: which staged
    // buffers (by the chunk's parity) the op just pushed touches for a
    // chunk of g outer elements.
    auto note_staged_dma = [&](bool copy_in, int parity, std::uint64_t g) {
      for (std::size_t ai = 0; ai < kernel.arrays.size(); ++ai) {
        const auto& a = kernel.arrays[ai];
        if (!a.staged()) continue;
        if (copy_in ? !a.copies_in() : !a.copies_out()) continue;
        const std::uint32_t lo = spm_plan.staged_offset[ai][parity & 1];
        prog.note_last_spm(
            copy_in ? sim::SpmAccessKind::kDmaDst : sim::SpmAccessKind::kDmaSrc,
            lo, lo + static_cast<std::uint32_t>(g * a.bytes_per_outer));
      }
    };
    auto note_compute = [&](std::size_t first_op, int parity,
                            std::uint64_t g) {
      for (std::size_t oi = first_op; oi < prog.ops.size(); ++oi) {
        prog.note_spm(oi, sim::SpmAccessKind::kComputeRead, spm_plan.bcast_lo,
                      spm_plan.bcast_hi);
        for (std::size_t ai = 0; ai < kernel.arrays.size(); ++ai) {
          const auto& a = kernel.arrays[ai];
          if (!a.staged()) continue;
          const std::uint32_t lo = spm_plan.staged_offset[ai][parity & 1];
          const std::uint32_t hi =
              lo + static_cast<std::uint32_t>(g * a.bytes_per_outer);
          if (a.copies_in()) {
            prog.note_spm(oi, sim::SpmAccessKind::kComputeRead, lo, hi);
          }
          if (a.copies_out()) {
            prog.note_spm(oi, sim::SpmAccessKind::kComputeWrite, lo, hi);
          }
        }
      }
    };

    // Broadcast arrays: one copy intrinsic at launch, blocking.
    {
      mem::DmaRequest bc;
      bc.dir = mem::Direction::kRead;
      for (const auto& a : kernel.arrays) {
        if (a.access == Access::kBroadcast) bc.add(a.broadcast_bytes);
      }
      if (!bc.empty()) {
        record_dma(bc);
        prog.dma(std::move(bc));
        prog.note_last_spm(sim::SpmAccessKind::kDmaDst, spm_plan.bcast_lo,
                           spm_plan.bcast_hi);
      }
    }

    // Compute (or gload-interleaved compute) for one chunk of g elements,
    // operating on the staged buffers of parity `par`.
    auto emit_compute = [&](std::uint64_t g, int par) {
      const std::size_t first_op = prog.ops.size();
      const auto raw =
          static_cast<double>(g) * static_cast<double>(kernel.inner_iters);
      const auto inner_total = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::llround(raw * cscale)));
      const std::uint64_t q = inner_total / span;
      const std::uint64_t rem = inner_total % span;
      const std::uint64_t comp_cycles = ls_u.cycles(q) + ls_1.cycles(rem);

      std::uint64_t ng = static_cast<std::uint64_t>(
          std::llround(gpi * static_cast<double>(inner_total) * gscale));
      if (gload_fallback) ng += g * n_staged_in;
      if (params.coalesce_gloads && ng > 0) {
        // Adjacent accesses pack into one request of up to 32 bytes; only
        // the kernel's coalesceable fraction benefits.
        const double pack = static_cast<double>(arch.gload_max_bytes) /
                            static_cast<double>(gbytes);
        const double kept =
            static_cast<double>(ng) *
            (1.0 - kernel.gload_coalesceable +
             kernel.gload_coalesceable / std::max(1.0, pack));
        ng = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(std::llround(kept)));
      }

      if (ng == 0) {
        prog.compute(blk_u, q);
        prog.compute(blk_1, rem);
      } else {
        const sw::Tick total_ticks = sw::cycles_to_ticks(comp_cycles);
        sim::GloadLoopOp gl;
        gl.count = ng;
        gl.bytes = gbytes;
        gl.dir = mem::Direction::kRead;
        gl.compute_ticks_per_elem = (total_ticks + ng / 2) / ng;
        prog.gload_loop(gl);
        pc.gloads += ng;
      }
      pc.comp_cycles += static_cast<double>(comp_cycles);
      pc.counts += ls_u.counts_per_iter().scaled(q);
      if (rem > 0) pc.counts += ls_1.counts_per_iter().scaled(rem);
      note_compute(first_op, par, g);
    };

    const bool has_in = !build_request(kernel, true, 1).empty();
    const bool has_out = !build_request(kernel, false, 1).empty();

    if (!params.double_buffer) {
      for (std::uint64_t c : chunks) {
        const std::uint64_t g = out.decomp.chunk_size(c);
        if (has_in) {
          auto req = build_request(kernel, true, g);
          record_dma(req);
          prog.dma(std::move(req));
          note_staged_dma(/*copy_in=*/true, /*parity=*/0, g);
        }
        emit_compute(g, /*par=*/0);
        if (has_out) {
          auto req = build_request(kernel, false, g);
          record_dma(req);
          prog.dma(std::move(req));
          note_staged_dma(/*copy_in=*/false, /*parity=*/0, g);
        }
      }
    } else {
      // Double buffering: handles 0/1 alternate copy-in buffers, handles
      // 2/3 alternate copy-out buffers (Figure 5 of the paper).  Buffer
      // parity follows the chunk's position i in this CPE's chunk list.
      if (has_in && !chunks.empty()) {
        const std::uint64_t g0 = out.decomp.chunk_size(chunks[0]);
        auto req = build_request(kernel, true, g0);
        record_dma(req);
        prog.dma(std::move(req), /*handle=*/0);
        note_staged_dma(/*copy_in=*/true, /*parity=*/0, g0);
      }
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        const std::uint64_t g = out.decomp.chunk_size(chunks[i]);
        if (has_in) {
          prog.dma_wait(static_cast<int>(i % 2));
          if (i + 1 < chunks.size()) {
            const std::uint64_t gn = out.decomp.chunk_size(chunks[i + 1]);
            auto req = build_request(kernel, true, gn);
            record_dma(req);
            prog.dma(std::move(req), static_cast<int>((i + 1) % 2));
            note_staged_dma(/*copy_in=*/true,
                            /*parity=*/static_cast<int>((i + 1) % 2), gn);
          }
        }
        emit_compute(g, /*par=*/static_cast<int>(i % 2));
        if (has_out) {
          if (i >= 2) prog.dma_wait(static_cast<int>(2 + i % 2));
          auto req = build_request(kernel, false, g);
          record_dma(req);
          prog.dma(std::move(req), static_cast<int>(2 + i % 2));
          note_staged_dma(/*copy_in=*/false,
                          /*parity=*/static_cast<int>(i % 2), g);
        }
      }
      if (has_out) {
        if (!chunks.empty()) {
          prog.dma_wait(static_cast<int>(2 + (chunks.size() - 1) % 2));
        }
        if (chunks.size() >= 2) {
          prog.dma_wait(static_cast<int>(2 + (chunks.size() - 2) % 2));
        }
      }
    }
    out.programs.push_back(std::move(prog));
  }

  // Representative CPEs for the model's single-CPE view:
  //  * computation uses the longest execution path (Section III-B: "upon
  //    load imbalance, the longest execution time among the CPEs is used
  //    for T_comp"), and likewise the Gload stream (longest branch,
  //    Section III-F);
  //  * the DMA request sequence uses the *median* CPE — Eq. 4 assumes all
  //    active CPEs issue equivalent requests concurrently, so the
  //    symmetric-CPE view, not the longest path, matches its contention
  //    formula when round-robin chunk dealing leaves some CPEs one chunk
  //    short.
  std::size_t rep_comp = 0;
  std::size_t rep_gload = 0;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    if (acc[i].comp_cycles > acc[rep_comp].comp_cycles) rep_comp = i;
    if (acc[i].gloads > acc[rep_gload].gloads) rep_gload = i;
  }
  std::vector<std::size_t> by_mrt(acc.size());
  for (std::size_t i = 0; i < acc.size(); ++i) by_mrt[i] = i;
  std::sort(by_mrt.begin(), by_mrt.end(), [&](std::size_t a, std::size_t c) {
    std::uint64_t sa = 0, sc = 0;
    for (auto m : acc[a].mrt) sa += m;
    for (auto m : acc[c].mrt) sc += m;
    return sa < sc;
  });
  const std::size_t rep_dma = by_mrt[by_mrt.size() / 2];

  StaticSummary& s = out.summary;
  s.kernel = kernel.name;
  s.params = params;
  s.active_cpes = out.decomp.active_cpes;
  s.core_groups = out.sim_config.core_groups;
  s.double_buffer = params.double_buffer;
  s.dma_req_mrt = acc[rep_dma].mrt;
  s.n_gloads = acc[rep_gload].gloads;
  s.comp_cycles = acc[rep_comp].comp_cycles;
  s.inst_counts = acc[rep_comp].counts;
  s.dma_bytes_requested = bytes_requested;
  s.dma_bytes_transferred = bytes_transferred;
  s.total_flops = kernel.total_flops();
  return out;
}

}  // namespace swperf::swacc
