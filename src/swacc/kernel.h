// SWACC-style kernel descriptions.
//
// The paper's programming model (Section II-B) describes a kernel by
//   * a data decomposition: an outer loop dimension distributed over CPEs,
//     an inner loop each CPE executes fully;
//   * SPM data placement: copyin/copyout/copy intrinsics naming the arrays
//     staged through the scratch pad;
//   * the `tile` intrinsic, which does NOT tile the loop but sets the *copy
//     granularity* — how many outer elements move per DMA request — and,
//     when the granularity exceeds n_outer / #CPEs, reduces the number of
//     CPEs that actively participate.
//
// KernelDesc captures exactly that, plus the per-inner-iteration compute
// body as an isa::BasicBlock (what the native compiler's annotated assembly
// exposes) and Gload traffic for irregular arrays that cannot be staged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/block.h"
#include "sw/arch.h"

namespace swperf::swacc {

/// How an array is accessed relative to the distributed outer dimension.
enum class Access : std::uint8_t {
  /// A CPE's share is contiguous in main memory: one DMA segment per
  /// request.
  kContiguous,
  /// A CPE's share is `segments_per_outer` separate rows per outer element
  /// (e.g. a column block of a row-major matrix): each row is a separate
  /// DMA segment, each rounded up to whole transactions.
  kStrided,
  /// A CPE's share is a 2D sub-block: `segments_per_outer` rows spanning
  /// the whole chunk, so one chunk of g outer elements copies
  /// `segments_per_outer` segments of g × bytes_per_outer /
  /// segments_per_outer bytes each.  Segment size *shrinks* as more CPEs
  /// split the outer dimension — the transaction-waste mechanism behind
  /// the paper's WRF-dynamics #active_CPEs study (Section IV-3, Fig. 9).
  kBlock2D,
  /// The whole array is copied once into every CPE's SPM (e.g. k-means
  /// centroids, n-body positions).
  kBroadcast,
  /// Data-dependent addressing: cannot be staged; every touch is a Gload
  /// consuming a full DRAM transaction (BFS neighbours, B+tree nodes...).
  kIndirect,
};

enum class Dir : std::uint8_t { kIn, kOut, kInOut };

/// One array named by a copy intrinsic (or accessed indirectly).
struct ArrayRef {
  std::string name;
  Dir dir = Dir::kIn;
  Access access = Access::kContiguous;

  /// kContiguous/kStrided/kBlock2D: bytes contributed per outer element.
  std::uint64_t bytes_per_outer = 0;
  /// kStrided: contiguous segments composing one outer element's bytes.
  /// kBlock2D: rows of the 2D sub-block (see Access::kBlock2D).
  std::uint32_t segments_per_outer = 1;
  /// kBroadcast: total bytes copied to each CPE once per launch.
  std::uint64_t broadcast_bytes = 0;
  /// kIndirect: gload requests per inner iteration.
  double gloads_per_inner = 0.0;
  /// kIndirect: bytes per gload request (<= 32).
  std::uint32_t gload_bytes = 8;

  bool staged() const {
    return access == Access::kContiguous || access == Access::kStrided ||
           access == Access::kBlock2D;
  }
  bool copies_in() const { return dir == Dir::kIn || dir == Dir::kInOut; }
  bool copies_out() const { return dir == Dir::kOut || dir == Dir::kInOut; }
};

/// A complete SWACC kernel description.
struct KernelDesc {
  std::string name;
  /// Extent of the distributed (outer) dimension.
  std::uint64_t n_outer = 1;
  /// Inner-loop iterations executed per outer element.
  std::uint64_t inner_iters = 1;
  /// Compute body of one inner iteration.
  isa::BasicBlock body;
  std::vector<ArrayRef> arrays;

  /// Below this copy granularity the compiler stops staging arrays and
  /// falls back to Gloads — the sharp Gload increase the paper observed in
  /// Fig. 7(a) when elements/request drops under 16.
  std::uint64_t dma_min_tile = 16;

  /// Fraction of Gload accesses that target adjacent addresses and can be
  /// merged into wider requests when LaunchParams::coalesce_gloads is set
  /// (the "coalesce memory accesses" optimization the paper's Section V-B
  /// prescribes for irregular kernels). A data property: sorted neighbour
  /// lists coalesce well, pointer chases do not.
  double gload_coalesceable = 0.0;

  /// True when the body is legal to vectorize (stride-1 SPM accesses,
  /// lane-independent arithmetic): enables LaunchParams::vector_width > 1,
  /// engaging the CPE's 256-bit vector unit (4 doubles per instruction).
  bool vectorizable = false;

  /// Deterministic per-CPE workload skew for irregular kernels: each CPE's
  /// gload count / inner iterations are scaled by up to ±this fraction.
  /// The model (like the paper's) uses the longest path, so imbalance is a
  /// genuine source of prediction error (Section III-F).
  double gload_imbalance = 0.0;
  double comp_imbalance = 0.0;

  // ---- Derived helpers ---------------------------------------------------
  /// SPM bytes needed per outer element of copy granularity (staged arrays).
  std::uint64_t spm_bytes_per_outer() const;
  /// SPM bytes of broadcast arrays (copied once, never double-buffered).
  std::uint64_t broadcast_bytes_total() const;
  /// Total gloads per inner iteration over all indirect arrays.
  double gloads_per_inner_total() const;
  /// Largest gload request size among indirect arrays.
  std::uint32_t gload_bytes_max() const;
  /// Double-precision flops of the whole kernel (all outer × inner).
  double total_flops() const;
  /// True if any array is accessed indirectly.
  bool has_indirect() const;

  /// Structural validation; throws sw::Error on malformed descriptions.
  void validate() const;
};

/// Tunable launch parameters — the search space of the paper's auto-tuners
/// (tile size, unroll factor, Section V-D) plus #active_CPEs (Section IV-3)
/// and double buffering (Section IV-2).
struct LaunchParams {
  /// Copy granularity in outer elements (the `tile` intrinsic). 1 is the
  /// SWACC default (round-robin by single outer element).
  std::uint64_t tile = 1;
  /// Unroll factor of the inner loop body.
  std::uint32_t unroll = 1;
  /// CPEs requested; >64 engages multiple core groups (cross-section
  /// memory). The decomposition may activate fewer (tile intrinsic).
  std::uint32_t requested_cpes = 64;
  /// Overlap DMA of the next chunk with compute of the current one.
  bool double_buffer = false;
  /// SIMD lanes of the compute body (1, 2 or 4); >1 requires
  /// KernelDesc::vectorizable.
  std::uint32_t vector_width = 1;
  /// Merge adjacent Gloads up to the 32-byte request limit (effective only
  /// on the kernel's gload_coalesceable fraction).
  bool coalesce_gloads = false;

  std::string to_string() const;
};

}  // namespace swperf::swacc
