// Functional execution of SWACC kernels: the semantic complement of the
// timing simulator.
//
// The timing simulator (src/sim) answers "how long does this lowered
// kernel take"; this runtime answers "does the lowering move the right
// bytes".  It executes a kernel's data movement for real on host memory:
// per CPE, per chunk, the staged arrays are copied into an emulated 64-KiB
// SPM at the same offsets the lowering allocates, a user-supplied compute
// body runs over the SPM-resident views, and outputs are copied back.
// Broadcast arrays are staged once per CPE; indirect arrays are exposed as
// raw main-memory views (Gload semantics).
//
// Because it reuses the same decomposition and SPM layout as lowering,
// it verifies end-to-end that tile granularity, chunk dealing, and buffer
// placement preserve the source program's semantics — e.g. running the
// k-means assignment step through it must reproduce the host reference
// implementation exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "sw/arch.h"
#include "swacc/decompose.h"
#include "swacc/kernel.h"

namespace swperf::swacc {

/// Main-memory images of the kernel's arrays, by name.
///
/// Layout convention: staged arrays (contiguous / strided / block-2D) are
/// logically [n_outer][bytes_per_outer] row-major — the access kinds
/// differ in how the DMA engine *times* the copy, not in which bytes
/// belong to which outer element. Broadcast arrays are broadcast_bytes
/// flat; indirect arrays are arbitrary blobs read via global().
class ArrayBindings {
 public:
  /// Binds a writable buffer to array `name`.
  void bind(const std::string& name, std::span<std::byte> data);
  /// Binds a read-only buffer (valid only for kIn / indirect arrays).
  void bind_const(const std::string& name, std::span<const std::byte> data);

  /// Typed convenience binders.
  template <typename T>
  void bind(const std::string& name, std::span<T> data) {
    bind(name, std::as_writable_bytes(data));
  }
  template <typename T>
  void bind_const(const std::string& name, std::span<const T> data) {
    bind_const(name, std::as_bytes(data));
  }

  std::span<std::byte> writable(const std::string& name) const;
  std::span<const std::byte> readable(const std::string& name) const;
  bool has(const std::string& name) const;

 private:
  std::map<std::string, std::span<std::byte>> rw_;
  std::map<std::string, std::span<const std::byte>> ro_;
};

/// Per-chunk execution context handed to the compute body.
class ChunkContext {
 public:
  std::uint32_t cpe() const { return cpe_; }
  std::uint64_t chunk() const { return chunk_; }
  /// First outer element and element count of this chunk.
  std::uint64_t begin() const { return begin_; }
  std::uint64_t size() const { return size_; }

  /// SPM-resident view of a staged array's bytes for this chunk
  /// (size() * bytes_per_outer bytes).
  std::span<std::byte> spm_bytes(const std::string& array);
  /// SPM-resident view of a broadcast array.
  std::span<const std::byte> broadcast_bytes_of(const std::string& array);
  /// Raw main-memory view of an indirect array (Gload access).
  std::span<const std::byte> global_bytes(const std::string& array);

  /// Typed views.
  template <typename T>
  std::span<T> spm(const std::string& array) {
    auto b = spm_bytes(array);
    return {reinterpret_cast<T*>(b.data()), b.size() / sizeof(T)};
  }
  template <typename T>
  std::span<const T> broadcast(const std::string& array) {
    auto b = broadcast_bytes_of(array);
    return {reinterpret_cast<const T*>(b.data()), b.size() / sizeof(T)};
  }
  template <typename T>
  std::span<const T> global(const std::string& array) {
    auto b = global_bytes(array);
    return {reinterpret_cast<const T*>(b.data()), b.size() / sizeof(T)};
  }

 private:
  friend class Runtime;
  std::uint32_t cpe_ = 0;
  std::uint64_t chunk_ = 0;
  std::uint64_t begin_ = 0;
  std::uint64_t size_ = 0;
  class Runtime* rt_ = nullptr;
};

/// Functional executor for one (kernel, launch-parameters) pair.
///
/// All execution state (the emulated SPM, staging buffers, byte counters)
/// is per-instance: distinct Runtime instances may run concurrently on
/// different threads. A single instance is not thread-safe — run() mutates
/// the shared SPM image (CPEs execute sequentially by design).
class Runtime {
 public:
  Runtime(const KernelDesc& kernel, const LaunchParams& params,
          const sw::ArchParams& arch);

  /// Executes the kernel: for every active CPE, stages broadcast arrays,
  /// then per assigned chunk copies staged inputs into the emulated SPM,
  /// invokes `body`, and copies staged outputs back. Throws sw::Error on
  /// missing/missized bindings.
  void run(const ArrayBindings& bindings,
           const std::function<void(ChunkContext&)>& body);

  const Decomposition& decomposition() const { return decomp_; }
  std::uint32_t spm_bytes_used() const { return spm_used_; }

  /// Bytes moved by DMA during the last run() (copy-in + copy-out),
  /// for cross-checking against the timing path's accounting.
  std::uint64_t bytes_staged_in() const { return bytes_in_; }
  std::uint64_t bytes_staged_out() const { return bytes_out_; }

 private:
  friend class ChunkContext;

  struct Buffer {
    const ArrayRef* array = nullptr;
    std::uint32_t offset = 0;   // SPM offset
    std::uint32_t bytes = 0;    // capacity (tile-sized)
  };

  const Buffer& buffer_of(const std::string& name) const;

  const KernelDesc* kernel_;
  LaunchParams params_;
  Decomposition decomp_;
  std::vector<Buffer> staged_;
  std::vector<Buffer> broadcast_;
  std::vector<std::byte> spm_;  // the emulated scratch pad (one CPE at a
                                // time; CPEs execute sequentially)
  std::uint32_t spm_used_ = 0;
  const ArrayBindings* bindings_ = nullptr;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
};

}  // namespace swperf::swacc
