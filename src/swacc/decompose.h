// Data decomposition: how outer elements map to CPEs.
//
// Reproduces the SWACC semantics of Section II-B: the outer dimension is
// split into chunks of `tile` elements (the copy granularity); chunks are
// dealt round-robin to CPEs.  When there are fewer chunks than requested
// CPEs, only #chunks CPEs actively participate — the paper's example where
// tile(i:32) on a 1024-element outer loop leaves #active_CPEs = 32.
#pragma once

#include <cstdint>
#include <vector>

#include "sw/arch.h"

namespace swperf::swacc {

/// The chunk → CPE mapping of one launch.
struct Decomposition {
  std::uint64_t n_outer = 0;
  std::uint64_t tile = 1;
  std::uint64_t n_chunks = 0;
  std::uint32_t active_cpes = 0;

  /// Size (in outer elements) of chunk `c`; `tile`, except a smaller tail.
  std::uint64_t chunk_size(std::uint64_t c) const;

  /// First outer element of chunk `c`.
  std::uint64_t chunk_begin(std::uint64_t c) const { return c * tile; }

  /// Chunk ids assigned to CPE `cpe` (round-robin dealing).
  std::vector<std::uint64_t> chunks_of(std::uint32_t cpe) const;

  /// Outer elements CPE `cpe` processes in total.
  std::uint64_t elements_of(std::uint32_t cpe) const;

  /// Core groups needed to supply `active_cpes` CPEs.
  std::uint32_t core_groups_needed(const sw::ArchParams& p) const {
    return (active_cpes + p.cpes_per_cg - 1) / p.cpes_per_cg;
  }
};

/// Builds the decomposition for `n_outer` elements at copy granularity
/// `tile` over at most `requested_cpes` CPEs. Throws sw::Error on invalid
/// arguments (tile == 0, no CPEs).
Decomposition decompose(std::uint64_t n_outer, std::uint64_t tile,
                        std::uint32_t requested_cpes);

}  // namespace swperf::swacc
