#include "swacc/runtime.h"

#include <algorithm>
#include <cstring>

#include "mem/spm.h"
#include "sw/error.h"

namespace swperf::swacc {

void ArrayBindings::bind(const std::string& name,
                         std::span<std::byte> data) {
  rw_[name] = data;
}

void ArrayBindings::bind_const(const std::string& name,
                               std::span<const std::byte> data) {
  ro_[name] = data;
}

std::span<std::byte> ArrayBindings::writable(const std::string& name) const {
  const auto it = rw_.find(name);
  SWPERF_CHECK(it != rw_.end(),
               "no writable binding for array '" << name << "'");
  return it->second;
}

std::span<const std::byte> ArrayBindings::readable(
    const std::string& name) const {
  if (const auto it = ro_.find(name); it != ro_.end()) return it->second;
  const auto it = rw_.find(name);
  SWPERF_CHECK(it != rw_.end(), "no binding for array '" << name << "'");
  return it->second;
}

bool ArrayBindings::has(const std::string& name) const {
  return ro_.count(name) != 0 || rw_.count(name) != 0;
}

std::span<std::byte> ChunkContext::spm_bytes(const std::string& array) {
  const auto& buf = rt_->buffer_of(array);
  SWPERF_CHECK(buf.array->staged(),
               "array '" << array << "' is not staged in SPM");
  const std::size_t bytes =
      static_cast<std::size_t>(size_) * buf.array->bytes_per_outer;
  return {rt_->spm_.data() + buf.offset, bytes};
}

std::span<const std::byte> ChunkContext::broadcast_bytes_of(
    const std::string& array) {
  const auto& buf = rt_->buffer_of(array);
  SWPERF_CHECK(buf.array->access == Access::kBroadcast,
               "array '" << array << "' is not broadcast");
  return {rt_->spm_.data() + buf.offset, buf.bytes};
}

std::span<const std::byte> ChunkContext::global_bytes(
    const std::string& array) {
  // Gload semantics: the data never enters SPM.
  return rt_->bindings_->readable(array);
}

Runtime::Runtime(const KernelDesc& kernel, const LaunchParams& params,
                 const sw::ArchParams& arch)
    : kernel_(&kernel), params_(params) {
  kernel.validate();
  decomp_ = decompose(kernel.n_outer, params.tile, params.requested_cpes);

  // Mirror the lowering's SPM layout (single-buffered: double buffering
  // changes timing, not which bytes land where).
  mem::SpmAllocator spm(arch.spm_bytes);
  for (const auto& a : kernel.arrays) {
    if (a.access == Access::kBroadcast) {
      Buffer b;
      b.array = &a;
      b.bytes = static_cast<std::uint32_t>(a.broadcast_bytes);
      b.offset = spm.allocate("bcast:" + a.name, b.bytes);
      broadcast_.push_back(b);
    }
  }
  const std::uint64_t eff_tile = std::min(params.tile, kernel.n_outer);
  for (const auto& a : kernel.arrays) {
    if (!a.staged()) continue;
    Buffer b;
    b.array = &a;
    b.bytes = static_cast<std::uint32_t>(eff_tile * a.bytes_per_outer);
    b.offset = spm.allocate(a.name, b.bytes);
    staged_.push_back(b);
  }
  spm_used_ = spm.used();
  spm_.resize(arch.spm_bytes);
}

const Runtime::Buffer& Runtime::buffer_of(const std::string& name) const {
  for (const auto& b : staged_) {
    if (b.array->name == name) return b;
  }
  for (const auto& b : broadcast_) {
    if (b.array->name == name) return b;
  }
  SWPERF_CHECK(false, "kernel '" << kernel_->name << "' has no SPM array '"
                                 << name << "'");
  return staged_.front();  // unreachable
}

void Runtime::run(const ArrayBindings& bindings,
                  const std::function<void(ChunkContext&)>& body) {
  bindings_ = &bindings;
  bytes_in_ = bytes_out_ = 0;

  // Validate binding sizes up front.
  for (const auto& a : kernel_->arrays) {
    if (a.access == Access::kIndirect) {
      SWPERF_CHECK(bindings.has(a.name),
                   "indirect array '" << a.name << "' not bound");
      continue;
    }
    const auto span = a.copies_out() ? bindings.writable(a.name)
                                     : bindings.readable(a.name);
    const std::uint64_t expect =
        a.access == Access::kBroadcast
            ? a.broadcast_bytes
            : kernel_->n_outer * a.bytes_per_outer;
    SWPERF_CHECK(span.size() == expect,
                 "array '" << a.name << "': bound " << span.size()
                           << " B, kernel needs " << expect << " B");
  }

  for (std::uint32_t cpe = 0; cpe < decomp_.active_cpes; ++cpe) {
    // Stage broadcast arrays for this CPE.
    for (const auto& b : broadcast_) {
      const auto src = bindings.readable(b.array->name);
      std::memcpy(spm_.data() + b.offset, src.data(), b.bytes);
      bytes_in_ += b.bytes;
    }

    for (const std::uint64_t chunk : decomp_.chunks_of(cpe)) {
      ChunkContext ctx;
      ctx.rt_ = this;
      ctx.cpe_ = cpe;
      ctx.chunk_ = chunk;
      ctx.begin_ = decomp_.chunk_begin(chunk);
      ctx.size_ = decomp_.chunk_size(chunk);

      // Copy-in.
      for (const auto& b : staged_) {
        if (!b.array->copies_in()) continue;
        const auto src = bindings.readable(b.array->name);
        const std::size_t off =
            static_cast<std::size_t>(ctx.begin_) * b.array->bytes_per_outer;
        const std::size_t n =
            static_cast<std::size_t>(ctx.size_) * b.array->bytes_per_outer;
        std::memcpy(spm_.data() + b.offset, src.data() + off, n);
        bytes_in_ += n;
      }

      body(ctx);

      // Copy-out.
      for (const auto& b : staged_) {
        if (!b.array->copies_out()) continue;
        const auto dst = bindings.writable(b.array->name);
        const std::size_t off =
            static_cast<std::size_t>(ctx.begin_) * b.array->bytes_per_outer;
        const std::size_t n =
            static_cast<std::size_t>(ctx.size_) * b.array->bytes_per_outer;
        std::memcpy(dst.data() + off, spm_.data() + b.offset, n);
        bytes_out_ += n;
      }
    }
  }
  bindings_ = nullptr;
}

}  // namespace swperf::swacc
