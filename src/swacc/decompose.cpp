#include "swacc/decompose.h"

#include <algorithm>

#include "sw/error.h"

namespace swperf::swacc {

std::uint64_t Decomposition::chunk_size(std::uint64_t c) const {
  SWPERF_ASSERT(c < n_chunks);
  const std::uint64_t begin = c * tile;
  return std::min(tile, n_outer - begin);
}

std::vector<std::uint64_t> Decomposition::chunks_of(std::uint32_t cpe) const {
  std::vector<std::uint64_t> out;
  if (cpe >= active_cpes) return out;
  for (std::uint64_t c = cpe; c < n_chunks; c += active_cpes) {
    out.push_back(c);
  }
  return out;
}

std::uint64_t Decomposition::elements_of(std::uint32_t cpe) const {
  std::uint64_t s = 0;
  for (std::uint64_t c : chunks_of(cpe)) s += chunk_size(c);
  return s;
}

Decomposition decompose(std::uint64_t n_outer, std::uint64_t tile,
                        std::uint32_t requested_cpes) {
  SWPERF_CHECK(n_outer >= 1, "decompose: n_outer=" << n_outer);
  SWPERF_CHECK(tile >= 1, "decompose: tile must be >= 1");
  SWPERF_CHECK(requested_cpes >= 1, "decompose: no CPEs requested");
  Decomposition d;
  d.n_outer = n_outer;
  d.tile = tile;
  d.n_chunks = (n_outer + tile - 1) / tile;
  d.active_cpes = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(requested_cpes, d.n_chunks));
  return d;
}

}  // namespace swperf::swacc
