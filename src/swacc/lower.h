// Lowering: KernelDesc × LaunchParams → per-CPE simulator programs plus the
// StaticSummary the analytical model reads.
//
// Mirrors the SWACC compiler workflow of Figure 3: the kernel description
// is decomposed over CPEs, copy intrinsics become DMA requests (one request
// per intrinsic; strided copies become multiple segments of one request),
// the compute body is unrolled and statically scheduled, and indirect
// accesses become serial Gload loops.  Double buffering restructures each
// CPE's program to prefetch chunk c+1 during the computation on chunk c
// (Section IV-2).
//
// SPM capacity is enforced exactly: staged buffers (×2 under double
// buffering) plus broadcast arrays must fit in 64 KiB, or lowering throws —
// this is the constraint that prunes the auto-tuners' search space.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.h"
#include "sim/program.h"
#include "sw/arch.h"
#include "swacc/decompose.h"
#include "swacc/kernel.h"
#include "swacc/summary.h"

namespace swperf::swacc {

/// A fully lowered kernel launch, ready to simulate and to model.
struct LoweredKernel {
  sim::KernelBinary binary;
  std::vector<sim::CpeProgram> programs;  // one per active CPE
  StaticSummary summary;
  sim::SimConfig sim_config;
  Decomposition decomp;
  std::uint32_t spm_bytes_used = 0;
};

/// Lowers `kernel` under `params` for the machine `arch`.
/// Throws sw::Error on invalid kernels, invalid parameters, or SPM
/// overflow.
LoweredKernel lower(const KernelDesc& kernel, const LaunchParams& params,
                    const sw::ArchParams& arch);

/// SPM bytes a launch would use, without building programs (cheap check
/// used by search-space pruning). Throws only on malformed kernels.
std::uint64_t spm_bytes_required(const KernelDesc& kernel,
                                 const LaunchParams& params);

/// Convenience: lower + simulate in one step.
sim::SimResult simulate_kernel(const KernelDesc& kernel,
                               const LaunchParams& params,
                               const sw::ArchParams& arch);

}  // namespace swperf::swacc
