#include "swacc/validate.h"

#include <sstream>
#include <vector>

#include "sw/error.h"
#include "swacc/lower.h"

namespace swperf::swacc {

CoverageReport validate_coverage(const Decomposition& d) {
  std::vector<std::uint32_t> chunk_owners(d.n_chunks, 0);
  std::uint64_t covered = 0;
  for (std::uint32_t cpe = 0; cpe < d.active_cpes; ++cpe) {
    for (std::uint64_t c : d.chunks_of(cpe)) {
      if (c >= d.n_chunks) {
        return {false, "chunk id out of range"};
      }
      ++chunk_owners[static_cast<std::size_t>(c)];
      covered += d.chunk_size(c);
    }
  }
  for (std::uint64_t c = 0; c < d.n_chunks; ++c) {
    if (chunk_owners[static_cast<std::size_t>(c)] != 1) {
      std::ostringstream os;
      os << "chunk " << c << " owned by "
         << chunk_owners[static_cast<std::size_t>(c)] << " CPEs";
      return {false, os.str()};
    }
  }
  if (covered != d.n_outer) {
    std::ostringstream os;
    os << "coverage " << covered << " != n_outer " << d.n_outer;
    return {false, os.str()};
  }
  return {};
}

CoverageReport validate_launch(const KernelDesc& kernel,
                               const LaunchParams& params,
                               const sw::ArchParams& arch) {
  try {
    kernel.validate();
    arch.validate();
    SWPERF_CHECK(params.tile >= 1, "tile must be >= 1");
    SWPERF_CHECK(params.unroll >= 1 && params.unroll <= 64,
                 "unroll out of range");
    SWPERF_CHECK(params.vector_width == 1 || params.vector_width == 2 ||
                     params.vector_width == 4,
                 "vector_width must be 1, 2 or 4");
    SWPERF_CHECK(params.vector_width == 1 || kernel.vectorizable,
                 "kernel is not vectorizable");
    SWPERF_CHECK(params.requested_cpes >= 1 &&
                     params.requested_cpes <=
                         arch.cpes_per_cg * arch.core_groups,
                 "requested_cpes out of range");
    const std::uint64_t spm = spm_bytes_required(kernel, params);
    SWPERF_CHECK(spm <= arch.spm_bytes,
                 "SPM overflow: needs " << spm << " B of "
                                        << arch.spm_bytes);
  } catch (const sw::Error& e) {
    return {false, e.what()};
  }
  return validate_coverage(
      decompose(kernel.n_outer, params.tile, params.requested_cpes));
}

}  // namespace swperf::swacc
