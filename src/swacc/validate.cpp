#include "swacc/validate.h"

#include <sstream>
#include <vector>

#include "analysis/checker.h"
#include "sw/error.h"
#include "swacc/lower.h"

namespace swperf::swacc {

CoverageReport validate_coverage(const Decomposition& d) {
  std::vector<std::uint32_t> chunk_owners(d.n_chunks, 0);
  std::uint64_t covered = 0;
  for (std::uint32_t cpe = 0; cpe < d.active_cpes; ++cpe) {
    for (std::uint64_t c : d.chunks_of(cpe)) {
      if (c >= d.n_chunks) {
        return {false, "chunk id out of range"};
      }
      ++chunk_owners[static_cast<std::size_t>(c)];
      covered += d.chunk_size(c);
    }
  }
  for (std::uint64_t c = 0; c < d.n_chunks; ++c) {
    if (chunk_owners[static_cast<std::size_t>(c)] != 1) {
      std::ostringstream os;
      os << "chunk " << c << " owned by "
         << chunk_owners[static_cast<std::size_t>(c)] << " CPEs";
      return {false, os.str()};
    }
  }
  if (covered != d.n_outer) {
    std::ostringstream os;
    os << "coverage " << covered << " != n_outer " << d.n_outer;
    return {false, os.str()};
  }
  return {};
}

CoverageReport validate_launch(const KernelDesc& kernel,
                               const LaunchParams& params,
                               const sw::ArchParams& arch) {
  try {
    arch.validate();
  } catch (const sw::Error& e) {
    return {false, e.what()};
  }
  const auto diags = analysis::check_launch(kernel, params, arch);
  for (const auto& d : diags) {
    if (d.severity >= analysis::Severity::kError) {
      return {false, d.to_string()};
    }
  }
  return validate_coverage(
      decompose(kernel.n_outer, params.tile, params.requested_cpes));
}

}  // namespace swperf::swacc
