// StaticSummary: everything the analytical model is allowed to know.
//
// The paper's model is *static*: its inputs come from source-code analysis
// (request structure, decomposition — Table I's starred rows) and from the
// native compiler's annotated assembly (instruction counts, predicted issue
// cycles — the daggered rows).  Lowering produces this summary alongside
// the simulator programs; the model consumes ONLY the summary, never the
// simulation, keeping the two independent.
//
// Per the paper, the longest execution path is used when CPEs are
// imbalanced (Section III-B/F): the summary describes the busiest CPE.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instr.h"
#include "sw/arch.h"
#include "swacc/kernel.h"

namespace swperf::swacc {

/// Static description of one lowered kernel launch.
struct StaticSummary {
  std::string kernel;
  LaunchParams params;

  std::uint32_t active_cpes = 0;
  std::uint32_t core_groups = 1;
  bool double_buffer = false;

  // ---- Busiest CPE's memory-request sequence -----------------------------
  /// MRT (Eq. 5) of each DMA request that CPE issues, in program order
  /// (broadcast, then per chunk: copy-in, copy-out, ...).
  std::vector<std::uint64_t> dma_req_mrt;
  /// Gload/Gstore requests that CPE issues (MRT_g = 1 each).
  std::uint64_t n_gloads = 0;

  // ---- Busiest CPE's compute ---------------------------------------------
  /// Statically scheduled computation cycles (Eq. 6 evaluated through the
  /// per-block schedule, like the paper reads block times off assembly).
  double comp_cycles = 0.0;
  /// Retired instructions by class.
  isa::OpClassCounts inst_counts;

  // ---- Launch-wide aggregates (reporting) --------------------------------
  std::uint64_t dma_bytes_requested = 0;
  std::uint64_t dma_bytes_transferred = 0;
  double total_flops = 0.0;

  // ---- Helpers ------------------------------------------------------------
  std::uint64_t n_dma_reqs() const { return dma_req_mrt.size(); }

  std::uint64_t sum_mrt() const {
    std::uint64_t s = 0;
    for (auto m : dma_req_mrt) s += m;
    return s;
  }

  /// avg_MRT_DMA of Eq. 12.
  double avg_mrt() const {
    return dma_req_mrt.empty()
               ? 0.0
               : static_cast<double>(sum_mrt()) /
                     static_cast<double>(dma_req_mrt.size());
  }

  /// avg_ILP of Eq. 6 (weighted instruction latency over scheduled time).
  double avg_ilp(const sw::ArchParams& p) const {
    return comp_cycles <= 0.0 ? 0.0
                              : inst_counts.weighted_latency(p) / comp_cycles;
  }

  /// DMA transfer efficiency: requested bytes / bytes moved (1 = no waste).
  double dma_efficiency() const {
    return dma_bytes_transferred == 0
               ? 1.0
               : static_cast<double>(dma_bytes_requested) /
                     static_cast<double>(dma_bytes_transferred);
  }
};

}  // namespace swperf::swacc
