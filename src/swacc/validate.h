// Launch validation helpers.
//
// The decomposition must partition the outer iteration space exactly —
// every element processed by exactly one CPE — for a lowered kernel to be
// semantically equivalent to the source loop nest.  This validator checks
// that property from the chunk→CPE mapping alone, so it also guards any
// future custom decomposition strategies.
#pragma once

#include <string>

#include "sw/arch.h"
#include "swacc/decompose.h"
#include "swacc/kernel.h"

namespace swperf::swacc {

struct CoverageReport {
  bool ok = true;
  std::string message;  // empty when ok
};

/// Checks that the chunks of all active CPEs partition [0, n_outer).
CoverageReport validate_coverage(const Decomposition& d);

/// Full pre-flight check of a launch: kernel validity, SPM fit, parameter
/// sanity. Returns false (with message) instead of throwing, so tuners can
/// probe candidate variants cheaply.
CoverageReport validate_launch(const KernelDesc& kernel,
                               const LaunchParams& params,
                               const sw::ArchParams& arch);

}  // namespace swperf::swacc
