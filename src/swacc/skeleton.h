// Incremental lowering: the tile-independent half of swacc::lower().
//
// Code generation (vectorize → unroll → reorder → list-schedule) depends
// only on (KernelDesc, unroll, vector_width, ArchParams) — never on the
// tile size, the CPE count, double buffering, or Gload coalescing.  A
// tuning campaign that sweeps 12 tiles × 4 unrolls therefore rebuilds the
// same four scheduled blocks 12 times each.  `LoweredSkeleton` captures
// that reusable half; `lower_with_skeleton()` re-derives only the
// tile-dependent rest (decomposition, SPM layout, per-chunk trip counts
// and DMA segment math) and is bit-identical to a plain `lower()` call.
//
// Contract: `lower(k, p, a)` ≡ `lower_with_skeleton(k, p, a,
// build_skeleton(k, p, a))` — enforced field-for-field by
// tests/swacc/skeleton_test.cpp.
#pragma once

#include <cstdint>

#include "isa/schedule.h"
#include "swacc/lower.h"

namespace swperf::swacc {

/// The tile-independent artifact of lowering: the scheduled code blocks
/// and their loop schedules.  Valid for any LaunchParams that agree on
/// `unroll` and `vector_width` (the code-generation parameters).
struct LoweredSkeleton {
  sim::KernelBinary binary;     // blocks[blk_u], blocks[blk_1]
  std::uint32_t blk_u = 0;      // unrolled+vectorized steady-state block
  std::uint32_t blk_1 = 0;      // scalar remainder block (== blk_u if span 1)
  isa::LoopSchedule ls_u;       // schedule of blk_u
  isa::LoopSchedule ls_1;       // schedule of blk_1
  std::uint32_t span = 1;       // source iterations per blk_u execution
  std::uint32_t unroll = 1;     // the params.unroll this was built for
  std::uint32_t vector_width = 1;  // the params.vector_width ditto
};

/// Builds the code-generation skeleton for `params`.  Validates the launch
/// exactly like lower() (same exceptions, same [code] messages), so an
/// illegal variant fails identically through either path.
LoweredSkeleton build_skeleton(const KernelDesc& kernel,
                               const LaunchParams& params,
                               const sw::ArchParams& arch);

/// Completes lowering on top of a previously built skeleton.  `skel` may
/// come from a *different* LaunchParams as long as unroll and vector_width
/// match (checked); everything tile-dependent is re-derived here.
/// Bit-identical to lower(kernel, params, arch).
LoweredKernel lower_with_skeleton(const KernelDesc& kernel,
                                  const LaunchParams& params,
                                  const sw::ArchParams& arch,
                                  const LoweredSkeleton& skel);

}  // namespace swperf::swacc
