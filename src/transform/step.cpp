#include "transform/step.h"

namespace swperf::transform {

const char* pass_kind_name(PassKind k) {
  switch (k) {
    case PassKind::kDoubleBuffer:
      return "double-buffer";
    case PassKind::kRetile:
      return "retile";
    case PassKind::kMergeStrided:
      return "merge-strided";
    case PassKind::kActiveCpes:
      return "active-cpes";
    case PassKind::kUnroll:
      return "unroll";
    case PassKind::kVectorWidth:
      return "vector-width";
    case PassKind::kCoalesceGloads:
      return "coalesce-gloads";
  }
  return "?";
}

}  // namespace swperf::transform
