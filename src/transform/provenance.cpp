#include "transform/provenance.h"

#include "serde/serde.h"

namespace swperf::serde {

Json to_json(const transform::TransformStep& s) {
  Json j = Json::object();
  j.set("pass", s.pass);
  j.set("kind", transform::pass_kind_name(s.kind));
  j.set("detail", s.detail);
  j.set("params_before", to_json(s.params_before));
  j.set("params_after", to_json(s.params_after));
  j.set("kernel_mutated", s.kernel_mutated);
  return j;
}

Json to_json(const transform::GuardVerdicts& v) {
  Json j = Json::object();
  j.set("model_improved", v.model_improved);
  j.set("sim_confirmed", v.sim_confirmed);
  j.set("checker_clean", v.checker_clean);
  j.set("equivalent", v.equivalent);
  return j;
}

Json to_json(const transform::StepRecord& r) {
  Json j = Json::object();
  j.set("round", r.round);
  j.set("step", to_json(r.step));
  j.set("predicted_before", r.predicted_before);
  j.set("predicted_after", r.predicted_after);
  j.set("measured_before", r.measured_before);
  j.set("measured_after", r.measured_after);
  j.set("verdicts", to_json(r.verdicts));
  j.set("accepted", r.accepted);
  j.set("rejection", r.rejection);
  j.set("label", r.label);
  return j;
}

Json to_json(const transform::OptimizeResult& r) {
  Json j = Json::object();
  j.set("kernel", r.kernel);
  j.set("initial_params", to_json(r.initial_params));
  j.set("final_params", to_json(r.final_params));
  j.set("kernel_mutated", r.kernel_mutated());
  // The full final description only when a pass rewrote it — otherwise it
  // is the input kernel and would bloat every log.
  j.set("final_kernel",
        r.kernel_mutated() ? to_json(r.final_kernel) : Json());
  j.set("initial_predicted", r.initial_predicted);
  j.set("final_predicted", r.final_predicted);
  j.set("initial_measured", r.initial_measured);
  j.set("final_measured", r.final_measured);
  j.set("speedup", r.speedup());
  j.set("rounds", r.rounds);
  j.set("accepted_steps", r.accepted_steps);
  Json steps = Json::array();
  for (const auto& s : r.steps) steps.push_back(to_json(s));
  j.set("steps", std::move(steps));
  j.set("host_seconds", r.host_seconds);
  return j;
}

Json optimize_report_json(const transform::OptimizeResult& r,
                          bool deterministic) {
  if (!deterministic) return to_json(r);
  transform::OptimizeResult copy = r;
  copy.host_seconds = 0.0;
  return to_json(copy);
}

}  // namespace swperf::serde
