// JSON provenance of optimizer runs, rendered through the serde layer.
//
// Same contract as the result-side types in serde/serde.h: deterministic
// to_json only — fixed field order, every field always emitted — so two
// equal OptimizeResults render to equal bytes.  optimize_report_json() is
// the one assembly point shared by `swperf optimize --json`, the eval
// batch stage, and the golden provenance-log tests, so the checked-in
// fixtures pin exactly what the CLI emits.
#pragma once

#include "serde/json.h"
#include "transform/optimizer.h"

namespace swperf::serde {

Json to_json(const transform::TransformStep& s);
Json to_json(const transform::GuardVerdicts& v);
Json to_json(const transform::StepRecord& r);
Json to_json(const transform::OptimizeResult& r);

/// The `swperf optimize` report: to_json(result) with host timing zeroed
/// when `deterministic` (the --deterministic-json contract: repeated runs
/// are byte-identical).
Json optimize_report_json(const transform::OptimizeResult& r,
                          bool deterministic);

}  // namespace swperf::serde
