// Differential testing of kernel transformations.
//
// A transformation is only admissible when the rewritten kernel moves
// exactly the bytes the original moved.  This harness proves it the way a
// host-reference comparison would on the real machine: both candidates are
// executed for real through the functional runtime (swacc::Runtime) over
// identical seeded inputs with one canonical compute body, and every
// output buffer is compared bit for bit.
//
// The canonical body is a keyed byte mixer: each output byte of outer
// element i is a deterministic function of (i, every input byte of element
// i, broadcast samples, Gload samples, the array's name, and the kernel's
// inner_iters) — and of nothing else.  Because the function never sees the
// chunk/CPE/tile shape, any two decompositions of the *same* kernel
// produce identical outputs, while any transport bug (wrong offsets,
// dropped rows, mis-dealt chunks) or semantic change (different n_outer,
// resized arrays, altered iteration count) perturbs at least one byte.
#pragma once

#include <cstdint>
#include <string>

#include "sw/arch.h"
#include "transform/step.h"

namespace swperf::transform {

struct EquivalenceReport {
  /// The two candidates' array schemas admit a differential run (same
  /// n_outer, inner_iters, and per-array observable sizes).
  bool comparable = false;
  /// Every output buffer matched byte for byte.
  bool equivalent = false;
  std::uint64_t bytes_compared = 0;
  std::string detail;  // incompatibility reason or first mismatch

  bool holds() const { return comparable && equivalent; }
};

/// Executes `reference` and `candidate` through the functional runtime on
/// identical seeded inputs and compares every output array bit for bit.
/// Throws only on internal runtime errors for *legal* launches (callers
/// gate candidates on analysis::launch_legality first).
EquivalenceReport check_equivalence(const Candidate& reference,
                                    const Candidate& candidate,
                                    const sw::ArchParams& arch,
                                    std::uint64_t seed = 0x5eedd1ffULL);

}  // namespace swperf::transform
