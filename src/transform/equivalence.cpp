#include "transform/equivalence.h"

#include <cstddef>
#include <cstring>
#include <map>
#include <vector>

#include "sw/error.h"
#include "sw/rng.h"
#include "swacc/runtime.h"

namespace swperf::transform {
namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
/// Observable size of an indirect array's main-memory blob.  Fixed, so the
/// Gload samples of both runs address the same image.
constexpr std::size_t kIndirectBlobBytes = 4096;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char ch : s) {
    h = (h ^ static_cast<unsigned char>(ch)) * kFnvPrime;
  }
  return h;
}

std::uint64_t mix(std::uint64_t z) { return sw::SplitMix64(z).next(); }

/// Observable byte size of one array binding.
std::size_t binding_bytes(const swacc::KernelDesc& k,
                          const swacc::ArrayRef& a) {
  if (a.staged()) {
    return static_cast<std::size_t>(k.n_outer * a.bytes_per_outer);
  }
  if (a.access == swacc::Access::kBroadcast) {
    return static_cast<std::size_t>(a.broadcast_bytes);
  }
  return kIndirectBlobBytes;
}

/// Schema compatibility: the candidate must observe and produce the same
/// byte image as the reference.  Access *kind* may differ between staged
/// kinds (contiguous/strided/2D-block are timing annotations over the same
/// [n_outer][bytes_per_outer] row-major image); everything observable must
/// match.
bool compatible(const Candidate& ref, const Candidate& cand,
                std::string* why) {
  auto fail = [&](std::string w) {
    *why = std::move(w);
    return false;
  };
  if (ref.kernel.n_outer != cand.kernel.n_outer) {
    return fail("n_outer differs (" + std::to_string(ref.kernel.n_outer) +
                " vs " + std::to_string(cand.kernel.n_outer) + ")");
  }
  if (ref.kernel.inner_iters != cand.kernel.inner_iters) {
    return fail("inner_iters differs");
  }
  if (ref.kernel.arrays.size() != cand.kernel.arrays.size()) {
    return fail("array count differs");
  }
  std::map<std::string, const swacc::ArrayRef*> by_name;
  for (const auto& a : cand.kernel.arrays) by_name[a.name] = &a;
  for (const auto& a : ref.kernel.arrays) {
    const auto it = by_name.find(a.name);
    if (it == by_name.end()) {
      return fail("array '" + a.name + "' missing from candidate");
    }
    const auto& b = *it->second;
    if (a.dir != b.dir) return fail("array '" + a.name + "' changed dir");
    if (a.staged() != b.staged() ||
        (a.access == swacc::Access::kBroadcast) !=
            (b.access == swacc::Access::kBroadcast)) {
      return fail("array '" + a.name + "' changed staging class");
    }
    if (a.staged() && a.bytes_per_outer != b.bytes_per_outer) {
      return fail("array '" + a.name + "' changed bytes_per_outer");
    }
    if (a.access == swacc::Access::kBroadcast &&
        a.broadcast_bytes != b.broadcast_bytes) {
      return fail("array '" + a.name + "' changed broadcast_bytes");
    }
  }
  return true;
}

struct Image {
  std::map<std::string, std::vector<std::byte>> buffers;
};

/// The identical pre-execution state both runs start from: inputs filled
/// from a per-array keyed byte stream, outputs zeroed.
Image initial_image(const swacc::KernelDesc& k, std::uint64_t seed) {
  Image img;
  for (const auto& a : k.arrays) {
    std::vector<std::byte> buf(binding_bytes(k, a));
    const bool is_input = a.copies_in() || !a.staged();
    if (is_input) {
      sw::SplitMix64 sm(seed ^ fnv1a(a.name));
      std::size_t i = 0;
      while (i < buf.size()) {
        std::uint64_t word = sm.next();
        for (int b = 0; b < 8 && i < buf.size(); ++b, ++i) {
          buf[i] = static_cast<std::byte>(word & 0xff);
          word >>= 8;
        }
      }
    }
    img.buffers[a.name] = std::move(buf);
  }
  return img;
}

/// Runs `c` over `img` (mutating its output buffers) with the canonical
/// keyed byte-mixer body.
void run_canonical(const Candidate& c, Image& img,
                   const sw::ArchParams& arch, std::uint64_t seed) {
  swacc::Runtime rt(c.kernel, c.params, arch);
  swacc::ArrayBindings bind;
  for (const auto& a : c.kernel.arrays) {
    auto& buf = img.buffers.at(a.name);
    if (a.staged() && a.copies_out()) {
      bind.bind(a.name, std::span<std::byte>(buf));
    } else {
      bind.bind_const(a.name,
                      std::span<const std::byte>(buf.data(), buf.size()));
    }
  }
  const auto& k = c.kernel;
  const std::uint64_t inner_key =
      k.inner_iters * 0xff51afd7ed558ccdULL;
  rt.run(bind, [&](swacc::ChunkContext& ctx) {
    for (std::uint64_t i = 0; i < ctx.size(); ++i) {
      const std::uint64_t outer = ctx.begin() + i;
      // Phase 1: fold every input byte of this outer element into the
      // accumulator.  Nothing chunk- or CPE-dependent enters the mix.
      std::uint64_t acc =
          mix(seed ^ (outer * 0x9e3779b97f4a7c15ULL) ^ inner_key);
      for (const auto& a : k.arrays) {
        if (a.staged() && a.copies_in()) {
          const auto v = ctx.spm_bytes(a.name);
          const std::size_t base = i * a.bytes_per_outer;
          for (std::uint64_t e = 0; e < a.bytes_per_outer; ++e) {
            acc = (acc ^ std::to_integer<std::uint64_t>(v[base + e])) *
                  kFnvPrime;
          }
        } else if (a.access == swacc::Access::kBroadcast) {
          const auto v = ctx.broadcast_bytes_of(a.name);
          for (std::uint64_t s = 0; s < 8 && !v.empty(); ++s) {
            const std::size_t at = (outer * 13 + s * 7) % v.size();
            acc = (acc ^ std::to_integer<std::uint64_t>(v[at])) * kFnvPrime;
          }
        } else if (a.access == swacc::Access::kIndirect) {
          const auto v = ctx.global_bytes(a.name);
          for (std::uint64_t s = 0; s < 4 && !v.empty(); ++s) {
            const std::size_t at = (outer * 31 + s * 11) % v.size();
            acc = (acc ^ std::to_integer<std::uint64_t>(v[at])) * kFnvPrime;
          }
        }
      }
      // Phase 2: write every output byte of this element as a keyed mix
      // of the accumulator — all reads above happen before any write.
      for (const auto& a : k.arrays) {
        if (!a.staged() || !a.copies_out()) continue;
        auto v = ctx.spm_bytes(a.name);
        const std::uint64_t name_key = fnv1a(a.name);
        const std::size_t base = i * a.bytes_per_outer;
        for (std::uint64_t e = 0; e < a.bytes_per_outer; ++e) {
          const std::uint64_t m =
              mix(acc ^ (name_key + e * 0x9e3779b97f4a7c15ULL));
          v[base + e] = static_cast<std::byte>(m & 0xff);
        }
      }
    }
  });
}

}  // namespace

EquivalenceReport check_equivalence(const Candidate& reference,
                                    const Candidate& candidate,
                                    const sw::ArchParams& arch,
                                    std::uint64_t seed) {
  EquivalenceReport rep;
  std::string why;
  if (!compatible(reference, candidate, &why)) {
    rep.detail = "schema mismatch: " + why;
    return rep;
  }
  rep.comparable = true;
  Image ref_img = initial_image(reference.kernel, seed);
  Image cand_img = initial_image(candidate.kernel, seed);
  try {
    run_canonical(reference, ref_img, arch, seed);
    run_canonical(candidate, cand_img, arch, seed);
  } catch (const sw::Error& e) {
    rep.comparable = false;
    rep.detail = std::string("runtime error: ") + e.what();
    return rep;
  }
  rep.equivalent = true;
  for (const auto& a : reference.kernel.arrays) {
    if (!a.staged() || !a.copies_out()) continue;
    const auto& rbuf = ref_img.buffers.at(a.name);
    const auto& cbuf = cand_img.buffers.at(a.name);
    rep.bytes_compared += rbuf.size();
    if (rbuf == cbuf) continue;
    rep.equivalent = false;
    for (std::size_t i = 0; i < rbuf.size(); ++i) {
      if (rbuf[i] != cbuf[i]) {
        rep.detail = "array '" + a.name + "' differs at byte " +
                     std::to_string(i) + " of " +
                     std::to_string(rbuf.size());
        break;
      }
    }
    break;
  }
  return rep;
}

}  // namespace swperf::transform
