#include "transform/passes.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "swacc/decompose.h"

namespace swperf::transform {
namespace {

/// True when the rewritten candidate is a legal launch.  Exceptions (from
/// structurally broken rewrites) count as refusal, never escape: the pass
/// contract is apply-or-cleanly-refuse.
bool legal(const Candidate& c, const sw::ArchParams& arch) {
  try {
    return analysis::launch_legality(c.kernel, c.params, arch).launch_legal;
  } catch (...) {
    return false;
  }
}

/// Emits `cand` as a proposal of `pass` when it is legal and differs from
/// the incumbent.
void emit(std::vector<Proposal>& out, const Pass& pass, const Candidate& base,
          Candidate cand, std::string detail, const sw::ArchParams& arch,
          bool kernel_mutated = false) {
  if (!legal(cand, arch)) return;
  Proposal p;
  p.step.kind = pass.kind();
  p.step.pass = pass.name();
  p.step.detail = std::move(detail);
  p.step.params_before = base.params;
  p.step.params_after = cand.params;
  p.step.kernel_mutated = kernel_mutated;
  p.candidate = std::move(cand);
  out.push_back(std::move(p));
}

bool has_staged_arrays(const swacc::KernelDesc& k) {
  return std::any_of(k.arrays.begin(), k.arrays.end(),
                     [](const swacc::ArrayRef& a) { return a.staged(); });
}

// ---- Double buffering (Section IV-2) --------------------------------------

class DoubleBufferPass final : public Pass {
 public:
  const char* name() const override { return "double-buffer"; }
  PassKind kind() const override { return PassKind::kDoubleBuffer; }

  std::vector<Proposal> propose(const Candidate& c,
                                const analysis::Legality& facts,
                                const sw::ArchParams& arch) const override {
    std::vector<Proposal> out;
    if (!facts.launch_legal) return out;
    if (!c.params.double_buffer) {
      // Enabling doubles the staged SPM footprint; emit() drops the
      // proposal when the 2x footprint overflows the scratchpad.
      if (!has_staged_arrays(c.kernel)) return out;
      Candidate cand = c;
      cand.params.double_buffer = true;
      emit(out, *this, c, std::move(cand),
           "enable double buffering: prefetch chunk c+1 during compute on "
           "chunk c (Eq. 14 saving)",
           arch);
    } else {
      // Disabling halves the footprint, freeing SPM for larger tiles; on
      // compute-bound kernels the Eq. 14 saving is ~0 and the simpler
      // schedule can win.
      Candidate cand = c;
      cand.params.double_buffer = false;
      emit(out, *this, c, std::move(cand),
           "disable double buffering: halve the staged SPM footprint", arch);
    }
    return out;
  }
};

// ---- Copy-granularity retiling (SWD006 fix-it arithmetic) -----------------

class RetilePass final : public Pass {
 public:
  const char* name() const override { return "retile"; }
  PassKind kind() const override { return PassKind::kRetile; }

  std::vector<Proposal> propose(const Candidate& c,
                                const analysis::Legality& facts,
                                const sw::ArchParams& arch) const override {
    std::vector<Proposal> out;
    if (!facts.launch_legal || !has_staged_arrays(c.kernel)) return out;
    const auto& k = c.kernel;
    const auto& p = c.params;

    // Candidate granularities, each with its closed-form rationale.
    std::vector<std::pair<std::uint64_t, std::string>> tiles;
    if (p.tile >= 2) {
      tiles.push_back({p.tile / 2, "halve copy granularity"});
    }
    tiles.push_back({p.tile * 2, "double copy granularity"});
    // The SWD006 fix-it arithmetic: the largest tile whose chunk count
    // still reaches every requested CPE.
    const std::uint64_t fit_tile =
        std::max<std::uint64_t>(1, k.n_outer / std::max(1u, p.requested_cpes));
    tiles.push_back(
        {fit_tile, "largest tile that keeps every requested CPE active "
                   "(SWD006 arithmetic)"});
    // The Fig. 7(a) Gload-fallback cliff: staging stops below dma_min_tile.
    if (p.tile < k.dma_min_tile) {
      tiles.push_back({k.dma_min_tile,
                       "raise granularity to the staging threshold "
                       "(Fig. 7(a) Gload-fallback cliff)"});
    }
    // The SWD005 arithmetic: for 2D-block arrays, the smallest tile whose
    // segments each cover a whole DRAM transaction.
    for (const auto& a : k.arrays) {
      if (a.access != swacc::Access::kBlock2D || a.bytes_per_outer == 0) {
        continue;
      }
      const std::uint64_t want =
          (static_cast<std::uint64_t>(arch.trans_size_bytes) *
               a.segments_per_outer +
           a.bytes_per_outer - 1) /
          a.bytes_per_outer;
      if (want > p.tile) {
        tiles.push_back({want, "raise tile so each '" + a.name +
                                   "' segment fills a whole transaction "
                                   "(SWD005 arithmetic)"});
      }
    }

    std::set<std::uint64_t> seen{p.tile};
    for (auto& [tile, why] : tiles) {
      if (tile < 1 || !seen.insert(tile).second) continue;
      Candidate cand = c;
      cand.params.tile = tile;
      emit(out, *this, c, std::move(cand),
           "retile " + std::to_string(p.tile) + " -> " +
               std::to_string(tile) + ": " + why,
           arch);
    }
    return out;
  }
};

// ---- Strided-copy merging (Section IV-3) ----------------------------------

class MergeStridedPass final : public Pass {
 public:
  const char* name() const override { return "merge-strided"; }
  PassKind kind() const override { return PassKind::kMergeStrided; }

  std::vector<Proposal> propose(const Candidate& c,
                                const analysis::Legality& facts,
                                const sw::ArchParams& arch) const override {
    std::vector<Proposal> out;
    if (!facts.launch_legal) return out;
    // Merge adjacent rows of one outer element into a single DMA segment:
    // legal whenever the rows are consecutive in the [n_outer]
    // [bytes_per_outer] row-major image every staged array uses, i.e.
    // whenever the per-row byte count stays integral after the merge.  The
    // bytes moved are identical — only the segment count (and with it the
    // per-transaction rounding waste of Eq. 5) changes; the differential
    // harness re-proves the byte identity per candidate.
    for (std::size_t i = 0; i < c.kernel.arrays.size(); ++i) {
      const auto& a = c.kernel.arrays[i];
      if ((a.access != swacc::Access::kStrided &&
           a.access != swacc::Access::kBlock2D) ||
          a.segments_per_outer < 2) {
        continue;
      }
      // Pairwise merge: halve the segment count.
      if (a.segments_per_outer % 2 == 0 &&
          a.bytes_per_outer % (a.segments_per_outer / 2) == 0) {
        Candidate cand = c;
        cand.kernel.arrays[i].segments_per_outer = a.segments_per_outer / 2;
        emit(out, *this, c, std::move(cand),
             "merge adjacent rows of '" + a.name + "': " +
                 std::to_string(a.segments_per_outer) + " -> " +
                 std::to_string(a.segments_per_outer / 2) +
                 " DMA segments per outer element",
             arch, /*kernel_mutated=*/true);
      }
      // Full merge: one segment per outer element.
      Candidate cand = c;
      cand.kernel.arrays[i].segments_per_outer = 1;
      emit(out, *this, c, std::move(cand),
           "merge all " + std::to_string(a.segments_per_outer) +
               " rows of '" + a.name +
               "' into one DMA segment per outer element",
           arch, /*kernel_mutated=*/true);
    }
    return out;
  }
};

// ---- #active CPEs (Section IV-3 / Fig. 9) ---------------------------------

class ActiveCpesPass final : public Pass {
 public:
  const char* name() const override { return "active-cpes"; }
  PassKind kind() const override { return PassKind::kActiveCpes; }

  std::vector<Proposal> propose(const Candidate& c,
                                const analysis::Legality& facts,
                                const sw::ArchParams& arch) const override {
    std::vector<Proposal> out;
    if (!facts.launch_legal) return out;
    const auto& p = c.params;
    std::vector<std::pair<std::uint32_t, std::string>> counts;
    const auto d =
        swacc::decompose(c.kernel.n_outer, p.tile, p.requested_cpes);
    if (d.active_cpes < p.requested_cpes) {
      counts.push_back({d.active_cpes,
                        "request only the CPEs the decomposition activates "
                        "(SWD006 fix)"});
    }
    if (p.requested_cpes != arch.cpes_per_cg) {
      counts.push_back({arch.cpes_per_cg, "use the full core group"});
    }
    if (p.requested_cpes >= 2) {
      counts.push_back({p.requested_cpes / 2,
                        "halve the active CPEs: larger per-CPE segments "
                        "waste fewer transaction bytes (Fig. 9)"});
    }
    std::set<std::uint32_t> seen{p.requested_cpes};
    for (auto& [cpes, why] : counts) {
      if (cpes < 1 || !seen.insert(cpes).second) continue;
      Candidate cand = c;
      cand.params.requested_cpes = cpes;
      emit(out, *this, c, std::move(cand),
           "active CPEs " + std::to_string(p.requested_cpes) + " -> " +
               std::to_string(cpes) + ": " + why,
           arch);
    }
    return out;
  }
};

// ---- Inner-loop unrolling (Section V-D) -----------------------------------

class UnrollPass final : public Pass {
 public:
  const char* name() const override { return "unroll"; }
  PassKind kind() const override { return PassKind::kUnroll; }

  std::vector<Proposal> propose(const Candidate& c,
                                const analysis::Legality& facts,
                                const sw::ArchParams& arch) const override {
    std::vector<Proposal> out;
    if (!facts.launch_legal) return out;
    // Unrolling needs independent iterations to deliver ILP; a loop-carried
    // dependence makes the wider body a pure code-size cost.
    if (facts.loop_carried_independent == analysis::Legality::Fact::kFails) {
      return out;
    }
    const std::uint32_t u = c.params.unroll;
    if (u < 8) {
      Candidate cand = c;
      cand.params.unroll = u * 2;
      emit(out, *this, c, std::move(cand),
           "unroll " + std::to_string(u) + " -> " + std::to_string(u * 2) +
               ": expose more independent chains to the dual pipes",
           arch);
    }
    if (u >= 2) {
      Candidate cand = c;
      cand.params.unroll = u / 2;
      emit(out, *this, c, std::move(cand),
           "unroll " + std::to_string(u) + " -> " + std::to_string(u / 2) +
               ": shrink the body (loop overhead already amortized)",
           arch);
    }
    return out;
  }
};

// ---- Vector width ----------------------------------------------------------

class VectorWidthPass final : public Pass {
 public:
  const char* name() const override { return "vector-width"; }
  PassKind kind() const override { return PassKind::kVectorWidth; }

  std::vector<Proposal> propose(const Candidate& c,
                                const analysis::Legality& facts,
                                const sw::ArchParams& arch) const override {
    std::vector<Proposal> out;
    if (!facts.launch_legal) return out;
    // Precondition: the description must be marked vectorizable AND the
    // liveness analysis must not have found a loop-carried dependence.
    if (!c.kernel.vectorizable ||
        facts.loop_carried_independent == analysis::Legality::Fact::kFails) {
      return out;
    }
    for (const std::uint32_t w : {4u, 2u, 1u}) {
      if (w == c.params.vector_width) continue;
      Candidate cand = c;
      cand.params.vector_width = w;
      emit(out, *this, c, std::move(cand),
           "vector width " + std::to_string(c.params.vector_width) + " -> " +
               std::to_string(w) +
               (w > 1 ? ": engage the 256-bit vector unit"
                      : ": scalar fallback"),
           arch);
    }
    return out;
  }
};

// ---- Gload coalescing (Section V-B) ---------------------------------------

class CoalesceGloadsPass final : public Pass {
 public:
  const char* name() const override { return "coalesce-gloads"; }
  PassKind kind() const override { return PassKind::kCoalesceGloads; }

  std::vector<Proposal> propose(const Candidate& c,
                                const analysis::Legality& facts,
                                const sw::ArchParams& arch) const override {
    std::vector<Proposal> out;
    if (!facts.launch_legal) return out;
    if (!c.params.coalesce_gloads) {
      // Only worthwhile when there are Gloads and some fraction of them
      // target adjacent addresses.
      if (!c.kernel.has_indirect() || c.kernel.gload_coalesceable <= 0.0) {
        return out;
      }
      Candidate cand = c;
      cand.params.coalesce_gloads = true;
      emit(out, *this, c, std::move(cand),
           "coalesce adjacent Gloads into wider requests (Section V-B)",
           arch);
    } else {
      Candidate cand = c;
      cand.params.coalesce_gloads = false;
      emit(out, *this, c, std::move(cand), "disable Gload coalescing", arch);
    }
    return out;
  }
};

}  // namespace

std::vector<std::unique_ptr<Pass>> standard_passes() {
  std::vector<std::unique_ptr<Pass>> passes;
  passes.push_back(std::make_unique<DoubleBufferPass>());
  passes.push_back(std::make_unique<RetilePass>());
  passes.push_back(std::make_unique<MergeStridedPass>());
  passes.push_back(std::make_unique<ActiveCpesPass>());
  passes.push_back(std::make_unique<UnrollPass>());
  passes.push_back(std::make_unique<VectorWidthPass>());
  passes.push_back(std::make_unique<CoalesceGloadsPass>());
  return passes;
}

}  // namespace swperf::transform
