// Typed transformation steps over SWACC kernels.
//
// The paper's end goal (Section IV) is not predicting SW26010 performance
// but *improving programs* with the model's closed-form guidance.  The
// transform layer makes those improvements first-class values: a Candidate
// is a (KernelDesc, LaunchParams) pair a pass may rewrite, and every
// rewrite is described by a TransformStep — which pass fired, what changed,
// and the launch parameters before and after — so the optimizer's
// provenance log can replay exactly what was tried and why it was kept or
// rolled back.
#pragma once

#include <cstdint>
#include <string>

#include "swacc/kernel.h"

namespace swperf::transform {

/// The transformation families of Section IV, one per pass.
enum class PassKind : std::uint8_t {
  kDoubleBuffer,    // Section IV-2: overlap DMA with compute (Eq. 14)
  kRetile,          // Section IV-1 / SWD006 arithmetic: copy granularity
  kMergeStrided,    // Section IV-3: fewer, larger DMA segments
  kActiveCpes,      // Section IV-3 / Fig. 9: #active CPEs
  kUnroll,          // Section V-D: inner-loop unroll factor
  kVectorWidth,     // 256-bit vector unit engagement
  kCoalesceGloads,  // Section V-B: merge adjacent Gloads
};

const char* pass_kind_name(PassKind k);

/// One rewritable unit: the kernel description plus its launch parameters.
/// Most passes touch only the parameters; kernel-mutating passes (strided
/// merge) must preserve the byte-level semantics the differential harness
/// (transform/equivalence.h) verifies.
struct Candidate {
  swacc::KernelDesc kernel;
  swacc::LaunchParams params;
};

/// A typed record of one applied rewrite.
struct TransformStep {
  PassKind kind = PassKind::kRetile;
  std::string pass;    // registry name of the emitting pass
  std::string detail;  // human-readable description of the change
  swacc::LaunchParams params_before;
  swacc::LaunchParams params_after;
  /// True when the KernelDesc itself changed (not just launch parameters).
  bool kernel_mutated = false;
};

}  // namespace swperf::transform
