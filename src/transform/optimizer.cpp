#include "transform/optimizer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <utility>

#include "analysis/diagnostic.h"
#include "explain/classify.h"
#include "sw/error.h"
#include "sw/pool.h"
#include "swacc/lower.h"
#include "tuning/eval_cache.h"

namespace swperf::transform {
namespace {

/// The warning-and-above fingerprint of a diagnostics report.  A candidate
/// is checker-clean when it has no errors and this fingerprint is a subset
/// of the original launch's — optimization must never *introduce* a
/// finding, but pre-existing ones don't block it.
using Sig = std::multiset<std::pair<std::string, int>>;

Sig warn_signature(const analysis::Diagnostics& diags) {
  Sig sig;
  for (const auto& d : diags) {
    if (d.severity >= analysis::Severity::kWarning) {
      sig.insert({d.code, static_cast<int>(d.severity)});
    }
  }
  return sig;
}

/// Priority of a pass family under a bottleneck label: lower ranks are
/// tried first, the predicted score breaking ties within a rank.  The
/// table encodes the paper's cures — saturated bandwidth wants less
/// traffic (merge/retile/coalesce), exposed latency wants overlap
/// (double-buffer), idle CPEs want occupancy — and leaves everything the
/// label says nothing about at a common low priority, so guidance
/// reorders the beam without ever excluding a candidate.
int pass_rank(explain::Label label, PassKind kind) {
  using explain::Label;
  switch (label) {
    case Label::kDmaLatencyBound:
      if (kind == PassKind::kDoubleBuffer) return 0;
      if (kind == PassKind::kRetile) return 1;
      if (kind == PassKind::kMergeStrided) return 2;
      return 3;
    case Label::kIssueBound:
      if (kind == PassKind::kRetile) return 0;
      if (kind == PassKind::kMergeStrided) return 1;
      if (kind == PassKind::kDoubleBuffer) return 2;
      return 3;
    case Label::kMemoryBandwidthBound:
      if (kind == PassKind::kMergeStrided) return 0;
      if (kind == PassKind::kRetile) return 1;
      if (kind == PassKind::kCoalesceGloads) return 2;
      if (kind == PassKind::kActiveCpes) return 3;
      return 4;
    case Label::kGloadLatencyBound:
      if (kind == PassKind::kCoalesceGloads) return 0;
      if (kind == PassKind::kDoubleBuffer) return 1;
      return 2;
    case Label::kUnderOccupied:
      if (kind == PassKind::kActiveCpes) return 0;
      if (kind == PassKind::kRetile) return 1;
      return 2;
    case Label::kComputeBound:
      // The vector unit is the bigger lever (up to 4 lanes) — engage it
      // before unrolling for latency.
      if (kind == PassKind::kVectorWidth) return 0;
      if (kind == PassKind::kUnroll) return 1;
      return 2;
    case Label::kBarrierBound:
      if (kind == PassKind::kActiveCpes) return 0;
      if (kind == PassKind::kRetile) return 1;
      return 2;
    case Label::kBalanced:
      return 0;
  }
  return 0;
}

}  // namespace

bool OptimizeResult::kernel_mutated() const {
  return std::any_of(steps.begin(), steps.end(), [](const StepRecord& s) {
    return s.accepted && s.step.kernel_mutated;
  });
}

Optimizer::Optimizer(pipeline::Session& session, OptimizerOptions opts)
    : Optimizer(session, opts, standard_passes()) {}

Optimizer::Optimizer(pipeline::Session& session, OptimizerOptions opts,
                     std::vector<std::unique_ptr<Pass>> passes)
    : session_(session), opts_(opts), passes_(std::move(passes)) {}

OptimizeResult Optimizer::optimize(const swacc::KernelDesc& kernel,
                                   const swacc::LaunchParams& initial) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto& arch = session_.arch();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  const auto facts0 = analysis::launch_legality(kernel, initial, arch);
  if (!facts0.launch_legal) {
    std::string codes;
    for (const auto& c : facts0.error_codes) {
      if (!codes.empty()) codes += ", ";
      codes += c;
    }
    throw sw::Error("optimize: initial launch of kernel '" + kernel.name +
                    "' is illegal (" + codes + ")");
  }

  Candidate inc{kernel, initial};
  const Candidate original = inc;  // the reference the harness compares to
  const Sig baseline_sig = warn_signature(session_.check(kernel, initial));
  double inc_pred = session_.predict(inc.kernel, inc.params).t_total;
  double inc_meas = session_.simulate(inc.kernel, inc.params).total_cycles();

  OptimizeResult res;
  res.kernel = kernel.name;
  res.initial_kernel = kernel;
  res.initial_params = initial;
  res.initial_predicted = inc_pred;
  res.initial_measured = inc_meas;

  // Every candidate ever tried (by canonical content key): a rejected
  // rewrite is never proposed again, which also keeps involutions
  // (double-buffer on/off) from cycling.
  std::set<std::string> tried{
      tuning::prelower_key(inc.kernel, inc.params, arch)};

  int round = 0;
  while (res.accepted_steps < opts_.max_steps) {
    ++round;
    const auto facts = analysis::launch_legality(inc.kernel, inc.params, arch);
    std::vector<Proposal> proposals;
    for (const auto& pass : passes_) {
      auto v = pass->propose(inc, facts, arch);
      std::move(v.begin(), v.end(), std::back_inserter(proposals));
    }
    {
      // Drop candidates already tried, and duplicates within the round.
      std::set<std::string> this_round;
      std::vector<Proposal> fresh;
      for (auto& p : proposals) {
        std::string key =
            tuning::prelower_key(p.candidate.kernel, p.candidate.params, arch);
        if (tried.count(key) != 0 || !this_round.insert(key).second) continue;
        fresh.push_back(std::move(p));
      }
      proposals = std::move(fresh);
    }
    if (proposals.empty()) break;

    // Parallel scoring: pure lower + model per proposal, results in slots,
    // every decision below taken serially — bit-identical at any jobs.
    std::vector<double> score(proposals.size(), kInf);
    const model::PerfModel& model = session_.model();
    sw::parallel_for(proposals.size(), opts_.jobs, [&](std::uint64_t i) {
      try {
        const auto lk = swacc::lower(proposals[i].candidate.kernel,
                                     proposals[i].candidate.params, arch);
        score[i] = model.predict(lk.summary).t_total;
      } catch (const sw::Error&) {
        score[i] = kInf;  // refused at scoring: recorded as illegal_launch
      }
    });

    // Label guidance: classify the incumbent's bottleneck (from the
    // memoized, trace-free simulation — the incumbent has always been
    // simulated by this point, so this is a table lookup plus arithmetic)
    // and rank each proposal by how directly its pass family addresses
    // that label.  The sort key is (rank, score): guidance reorders the
    // beam, the model still breaks ties.
    std::string round_label;
    std::vector<int> rank(proposals.size(), 0);
    if (opts_.label_guided) {
      const explain::Classification cls =
          session_.bottleneck(inc.kernel, inc.params);
      round_label = explain::label_name(cls.label);
      for (std::size_t i = 0; i < proposals.size(); ++i) {
        rank[i] = pass_rank(cls.label, proposals[i].step.kind);
      }
    }

    std::vector<std::size_t> order(proposals.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       if (rank[a] != rank[b]) return rank[a] < rank[b];
                       return score[a] < score[b];
                     });

    bool accepted = false;
    const std::size_t beam =
        static_cast<std::size_t>(std::max(1, opts_.beam));
    for (std::size_t rank = 0;
         rank < order.size() && rank < beam && !accepted; ++rank) {
      const std::size_t idx = order[rank];
      const Proposal& prop = proposals[idx];
      tried.insert(
          tuning::prelower_key(prop.candidate.kernel, prop.candidate.params,
                               arch));

      StepRecord rec;
      rec.round = round;
      rec.step = prop.step;
      rec.label = round_label;
      rec.predicted_before = inc_pred;
      rec.predicted_after = std::isfinite(score[idx]) ? score[idx] : 0.0;

      if (!std::isfinite(score[idx])) {
        rec.rejection = reject::kIllegalLaunch;
        res.steps.push_back(std::move(rec));
        continue;
      }
      if (!(score[idx] < inc_pred)) {
        rec.rejection = reject::kPredictedNoImprovement;
        res.steps.push_back(std::move(rec));
        continue;
      }
      rec.verdicts.model_improved = true;

      // Transactional acceptance: install the candidate, then let each
      // remaining guard veto it.  rollback() restores the incumbent.
      const Candidate saved = inc;
      const double saved_pred = inc_pred;
      const double saved_meas = inc_meas;
      inc = prop.candidate;
      inc_pred = score[idx];
      const auto rollback = [&] {
        inc = saved;
        inc_pred = saved_pred;
        inc_meas = saved_meas;
      };

      rec.measured_before = saved_meas;
      const double meas =
          session_.simulate(inc.kernel, inc.params).total_cycles();
      rec.measured_after = meas;
      if (!(meas < saved_meas)) {
        rec.rejection = reject::kSimulatorRegression;
        rollback();
        res.steps.push_back(std::move(rec));
        continue;
      }
      rec.verdicts.sim_confirmed = true;

      const auto diags = session_.check(inc.kernel, inc.params);
      const Sig sig = warn_signature(diags);
      const bool clean =
          !analysis::has_errors(diags) &&
          std::includes(baseline_sig.begin(), baseline_sig.end(),
                        sig.begin(), sig.end());
      if (!clean) {
        rec.rejection = reject::kCheckerFindings;
        rollback();
        res.steps.push_back(std::move(rec));
        continue;
      }
      rec.verdicts.checker_clean = true;

      const EquivalenceReport eq =
          check_equivalence(original, inc, arch, opts_.equivalence_seed);
      if (!eq.holds()) {
        rec.rejection = reject::kNotEquivalent;
        rollback();
        res.steps.push_back(std::move(rec));
        continue;
      }
      rec.verdicts.equivalent = true;

      rec.accepted = true;
      inc_meas = meas;
      ++res.accepted_steps;
      accepted = true;
      res.steps.push_back(std::move(rec));
    }
    if (!accepted) break;
  }

  res.rounds = round;
  res.final_kernel = inc.kernel;
  res.final_params = inc.params;
  res.final_predicted = inc_pred;
  res.final_measured = inc_meas;
  res.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

}  // namespace swperf::transform
