// The transformation pass library.
//
// Each pass proposes legal rewrites of a Candidate — exactly the program
// optimizations the paper analyses in closed form (Section IV): double
// buffering, copy-granularity retiling (reusing the SWD006 fix-it
// arithmetic), merging strided copies into fewer DMA segments, adjusting
// the number of active CPEs, inner-loop unrolling, vectorization, and
// Gload coalescing.
//
// Contract: propose() never throws.  Preconditions are checked against the
// incumbent's analysis::Legality facts plus the kernel description; every
// emitted Proposal has already passed analysis::launch_legality() for the
// rewritten candidate, so a pass either *applies* (emits legal proposals)
// or *cleanly refuses* (returns an empty list).  Semantic equivalence of
// the rewrite is NOT assumed here — the optimizer proves it per candidate
// with the differential harness (transform/equivalence.h) before
// accepting.
#pragma once

#include <memory>
#include <vector>

#include "analysis/legality.h"
#include "sw/arch.h"
#include "transform/step.h"

namespace swperf::transform {

/// One legal rewrite of a candidate, with its typed provenance record.
struct Proposal {
  TransformStep step;
  Candidate candidate;
};

/// A transformation pass.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  virtual PassKind kind() const = 0;

  /// Proposes legal rewrites of `c`.  `facts` are the incumbent's legality
  /// facts (from analysis::launch_legality).  Never throws; an empty
  /// result is a clean refusal.
  virtual std::vector<Proposal> propose(const Candidate& c,
                                        const analysis::Legality& facts,
                                        const sw::ArchParams& arch) const = 0;
};

/// The standard pass registry, in deterministic order.
std::vector<std::unique_ptr<Pass>> standard_passes();

}  // namespace swperf::transform
