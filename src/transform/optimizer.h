// The guarded closed-loop kernel optimizer.
//
// The driver behind `swperf optimize`: a beam search over transformation
// sequences where every candidate must clear four independent guards, in
// order, before it replaces the incumbent —
//
//   1. model_improved   — the analytic model (Section III) predicts
//                         strictly fewer cycles than the incumbent;
//   2. sim_confirmed    — the cycle-level simulator measures strictly
//                         fewer cycles (the model proposes, the machine
//                         disposes);
//   3. checker_clean    — the full static checker (swcheck + the SWA
//                         dataflow analyses) reports no errors and no
//                         finding the *original* launch did not already
//                         carry;
//   4. equivalent       — the differential harness proves the candidate
//                         bit-identical to the original kernel's reference
//                         execution (transform/equivalence.h).
//
// Acceptance is transactional: the candidate is installed as the incumbent
// before guards 2–4 run and rolled back the moment any guard fails, with
// the failure recorded in the provenance log (StepRecord::rejection).  The
// log is complete — every candidate the search *tried* appears in steps[],
// accepted or not — so a rejected transformation is as auditable as an
// accepted one.
//
// Scoring is embarrassingly parallel (OptimizerOptions::jobs); decisions
// are taken serially in enumeration order, so any job count yields the
// bit-identical accepted sequence (tests/transform/determinism_test.cpp).
//
// Proposal ordering is label-guided by default: each round classifies the
// incumbent's bottleneck (explain/classify.h, from the already-memoized
// simulation — no trace) and tries the passes that address that label
// first, predicted score breaking ties.  A DMA-latency-bound incumbent
// sees double-buffer/retile candidates before anything else; a
// memory-bandwidth-bound one sees traffic reducers first.  The label that
// motivated each trial is part of its provenance record.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pipeline/session.h"
#include "transform/equivalence.h"
#include "transform/passes.h"
#include "transform/step.h"

namespace swperf::transform {

struct OptimizerOptions {
  /// Maximum accepted transformations (search rounds).
  int max_steps = 8;
  /// Candidates guard-checked per round, best-predicted-first.
  int beam = 4;
  /// Worker threads for model scoring; any value gives bit-identical
  /// results (0 = hardware concurrency).
  int jobs = 1;
  /// Seed of the differential harness's input images.
  std::uint64_t equivalence_seed = 0x5eedd1ffULL;
  /// Order each round's beam by the incumbent's bottleneck label before
  /// predicted score; false restores pure best-predicted-first order.
  bool label_guided = true;
};

/// The four guards' verdicts for one tried candidate.  Later guards stay
/// false when an earlier one already rejected (guards run in order and
/// short-circuit).
struct GuardVerdicts {
  bool model_improved = false;
  bool sim_confirmed = false;
  bool checker_clean = false;
  bool equivalent = false;

  bool all() const {
    return model_improved && sim_confirmed && checker_clean && equivalent;
  }
};

/// Stable rejection reasons of the provenance log ("" = accepted).
namespace reject {
inline constexpr const char* kIllegalLaunch = "illegal_launch";
inline constexpr const char* kPredictedNoImprovement =
    "predicted_no_improvement";
inline constexpr const char* kSimulatorRegression = "simulator_regression";
inline constexpr const char* kCheckerFindings = "checker_findings";
inline constexpr const char* kNotEquivalent = "not_equivalent";
}  // namespace reject

/// One tried candidate: the typed step, both scores before/after, the
/// guard verdicts, and the accept/rollback outcome.
struct StepRecord {
  int round = 0;
  TransformStep step;
  double predicted_before = 0.0;
  double predicted_after = 0.0;
  /// Simulated cycles; 0 when the candidate never reached the simulator.
  double measured_before = 0.0;
  double measured_after = 0.0;
  GuardVerdicts verdicts;
  bool accepted = false;
  std::string rejection;  // reject::* constant, or "" when accepted
  /// The incumbent's bottleneck label that ordered this round's proposals
  /// ("" when label guidance is off).
  std::string label;
};

struct OptimizeResult {
  std::string kernel;  // kernel name
  swacc::KernelDesc initial_kernel;
  swacc::KernelDesc final_kernel;
  swacc::LaunchParams initial_params;
  swacc::LaunchParams final_params;
  double initial_predicted = 0.0;
  double final_predicted = 0.0;
  double initial_measured = 0.0;
  double final_measured = 0.0;
  int rounds = 0;
  int accepted_steps = 0;
  /// Every candidate tried, in trial order (accepted and rejected).
  std::vector<StepRecord> steps;
  double host_seconds = 0.0;

  bool kernel_mutated() const;
  double speedup() const {
    return final_measured > 0.0 ? initial_measured / final_measured : 0.0;
  }
};

class Optimizer {
 public:
  /// Uses the standard pass registry.
  Optimizer(pipeline::Session& session, OptimizerOptions opts = {});
  /// Custom pass registry (tests inject adversarial passes through this).
  Optimizer(pipeline::Session& session, OptimizerOptions opts,
            std::vector<std::unique_ptr<Pass>> passes);

  /// Optimizes `kernel` starting from `initial`.  Throws sw::Error when
  /// the initial launch itself is illegal.
  OptimizeResult optimize(const swacc::KernelDesc& kernel,
                          const swacc::LaunchParams& initial);

 private:
  pipeline::Session& session_;
  OptimizerOptions opts_;
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace swperf::transform
