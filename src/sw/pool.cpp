#include "sw/pool.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace swperf::sw {

namespace {

/// A contiguous chunk of indices [begin, end).
struct Range {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t size() const { return end - begin; }
};

/// Per-worker deque of pending ranges. Owners pop from the front; thieves
/// split off the back half, keeping stolen work coarse.
struct WorkerQueue {
  std::mutex mu;
  std::deque<Range> ranges;
};

class ForkJoin {
 public:
  ForkJoin(std::uint64_t n, unsigned workers,
           const std::function<void(std::uint64_t)>& body)
      : body_(body), queues_(workers) {
    // Seed each worker with an even share, split into chunks small enough
    // that stealing has something to grab but large enough to amortise
    // locking (4 chunks per worker share).
    const std::uint64_t share = (n + workers - 1) / workers;
    const std::uint64_t chunk = std::max<std::uint64_t>(1, share / 4);
    std::uint64_t next = 0;
    for (unsigned w = 0; w < workers && next < n; ++w) {
      const std::uint64_t hi = std::min(n, next + share);
      for (std::uint64_t b = next; b < hi; b += chunk) {
        queues_[w].ranges.push_back(Range{b, std::min(hi, b + chunk)});
      }
      next = hi;
    }
  }

  void run() {
    std::vector<std::thread> threads;
    threads.reserve(queues_.size());
    for (unsigned w = 0; w < queues_.size(); ++w) {
      threads.emplace_back([this, w] { work(w); });
    }
    for (auto& t : threads) t.join();
    if (failed_index_ != kNoFailure) std::rethrow_exception(error_);
  }

 private:
  static constexpr std::uint64_t kNoFailure = ~std::uint64_t{0};

  bool pop_local(unsigned w, Range& out) {
    auto& q = queues_[w];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.ranges.empty()) return false;
    out = q.ranges.front();
    q.ranges.pop_front();
    return true;
  }

  /// Steals the back half of the fullest victim queue.
  bool steal(unsigned thief, Range& out) {
    const unsigned n = static_cast<unsigned>(queues_.size());
    for (unsigned d = 1; d < n; ++d) {
      auto& q = queues_[(thief + d) % n];
      std::lock_guard<std::mutex> lock(q.mu);
      if (q.ranges.empty()) continue;
      Range victim = q.ranges.back();
      q.ranges.pop_back();
      if (victim.size() > 1) {
        const std::uint64_t mid = victim.begin + victim.size() / 2;
        q.ranges.push_back(Range{victim.begin, mid});
        victim.begin = mid;
      }
      out = victim;
      return true;
    }
    return false;
  }

  void work(unsigned w) {
    Range r;
    while (pop_local(w, r) || steal(w, r)) {
      for (std::uint64_t i = r.begin; i < r.end; ++i) {
        if (failed_index_.load(std::memory_order_relaxed) < i) continue;
        try {
          body_(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu_);
          // Keep the lowest-index failure so the rethrown exception does
          // not depend on thread timing.
          if (i < failed_index_.load(std::memory_order_relaxed)) {
            failed_index_.store(i, std::memory_order_relaxed);
            error_ = std::current_exception();
          }
        }
      }
    }
  }

  const std::function<void(std::uint64_t)>& body_;
  std::vector<WorkerQueue> queues_;
  std::mutex error_mu_;
  std::atomic<std::uint64_t> failed_index_{kNoFailure};
  std::exception_ptr error_;
};

}  // namespace

unsigned resolve_jobs(int jobs) {
  if (jobs >= 1) return static_cast<unsigned>(jobs);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::uint64_t n, int jobs,
                  const std::function<void(std::uint64_t)>& body) {
  const unsigned workers =
      static_cast<unsigned>(std::min<std::uint64_t>(resolve_jobs(jobs), n));
  if (workers <= 1) {
    for (std::uint64_t i = 0; i < n; ++i) body(i);
    return;
  }
  ForkJoin fj(n, workers, body);
  fj.run();
}

}  // namespace swperf::sw
