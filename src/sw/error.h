// Error handling helpers.
//
// SWPERF_CHECK is for user-facing precondition violations (bad kernel
// descriptions, SPM overflow, invalid tuning parameters): it throws
// swperf::sw::Error so callers (tests, tuners exploring invalid variants)
// can recover.  SWPERF_ASSERT is for internal invariants and aborts.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace swperf::sw {

/// Exception thrown on violated user-facing preconditions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "swperf check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace swperf::sw

/// Throws swperf::sw::Error when `cond` is false. `msg` is streamed, so
/// SWPERF_CHECK(x > 0, "x=" << x) works.
#define SWPERF_CHECK(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream swperf_check_os;                                  \
      swperf_check_os << msg;                                              \
      ::swperf::sw::detail::throw_error(#cond, __FILE__, __LINE__,         \
                                        swperf_check_os.str());            \
    }                                                                      \
  } while (false)

/// Internal invariant; violation is a bug in swperf itself.
#define SWPERF_ASSERT(cond)                                                \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::swperf::sw::detail::throw_error(#cond, __FILE__, __LINE__,         \
                                        "internal invariant violated");    \
    }                                                                      \
  } while (false)
