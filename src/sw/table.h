// ASCII table formatting for bench harness output.
//
// Every bench binary reproduces a paper table/figure as rows of text; this
// keeps them aligned and uniform.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace swperf::sw {

/// Column-aligned ASCII table with a title and header row.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header; must be called before adding rows.
  Table& header(std::vector<std::string> cols);

  /// Adds a row of pre-formatted cells; size must match the header.
  Table& row(std::vector<std::string> cells);

  /// Renders the table.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  /// Formats a double with `digits` significant decimals.
  static std::string num(double v, int digits = 2);
  /// Formats a value as a percentage ("4.3%").
  static std::string pct(double fraction, int digits = 1);
  /// Formats a speedup ("2.41x").
  static std::string times(double v, int digits = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace swperf::sw
