// Architecture parameters of an SW26010-class processor.
//
// These are the *input parameters* of the paper's performance model
// (Table I) plus the structural constants of the processor (Section II-A):
// 4 core groups (CG), each with 64 compute processing elements (CPE), a
// 64 KiB scratch-pad memory (SPM) per CPE, and a memory controller per CG.
//
// Both the discrete-event simulator (src/sim) and the analytical model
// (src/model) are parameterised by the same ArchParams instance, so
// model-vs-simulator comparisons isolate the modelling abstraction (virtual
// grouping, closed-form contention) rather than parameter mismatches.
#pragma once

#include <cstdint>

#include "sw/time.h"

namespace swperf::sw {

/// Model/simulator parameters. Defaults reproduce Table I of the paper.
struct ArchParams {
  // ---- Table I: input parameters ----------------------------------------
  /// Memory bandwidth per core group, in GB/s (1 GB = 1e9 bytes).
  double mem_bw_gbps = 32.0;
  /// Processor frequency in GHz.
  double freq_ghz = 1.45;
  /// DRAM transaction size in bytes. CPEs access main memory in whole
  /// transactions; partially used transactions waste bandwidth.
  std::uint32_t trans_size_bytes = 256;
  /// Extra issue delay contributed by each additional transaction of a DMA
  /// request (Δdelay, cycles): transactions of one request leave the DMA
  /// engine this far apart.
  std::uint32_t delta_delay_cycles = 50;
  /// Baseline (uncontended) round-trip latency of a memory access (cycles).
  std::uint32_t l_base_cycles = 220;
  /// Floating point operation latency (cycles), fully pipelined.
  std::uint32_t l_float_cycles = 9;
  /// Fixed point operation latency (cycles).
  std::uint32_t l_fixed_cycles = 1;
  /// SPM (scratch-pad) access latency (cycles).
  std::uint32_t l_spm_cycles = 3;
  /// Divide / square-root latency (cycles); not pipelined (footnote 1).
  std::uint32_t l_div_sqrt_cycles = 34;

  // ---- Structural constants (Section II-A) ------------------------------
  /// Compute processing elements per core group.
  std::uint32_t cpes_per_cg = 64;
  /// Core groups per processor.
  std::uint32_t core_groups = 4;
  /// Scratch-pad memory per CPE, bytes.
  std::uint32_t spm_bytes = 64 * 1024;
  /// Maximum bytes a single Gload/Gstore request can move.
  std::uint32_t gload_max_bytes = 32;
  /// Cross-section memory bandwidth efficiency when data is interleaved
  /// across CGs through the NoC; the paper measured it "only slightly
  /// lower than the local memory".
  double cross_section_bw_efficiency = 0.95;

  // ---- Derived quantities ------------------------------------------------
  /// Bytes the memory controller can move per cycle.
  double bytes_per_cycle() const { return mem_bw_gbps / freq_ghz; }

  /// Cycles the memory controller is occupied by one DRAM transaction
  /// (bandwidth component). 11.6 cycles with Table I defaults.
  double trans_service_cycles() const {
    return static_cast<double>(trans_size_bytes) / bytes_per_cycle();
  }

  /// Transaction service time in simulator ticks (116 with defaults).
  Tick trans_service_ticks() const {
    return fractional_cycles_to_ticks(trans_service_cycles());
  }

  /// Number of DRAM transactions needed to move `bytes` (Eq. 5): partially
  /// used transactions still occupy a whole one.
  std::uint64_t transactions_for(std::uint64_t bytes) const {
    if (bytes == 0) return 0;
    return (bytes + trans_size_bytes - 1) / trans_size_bytes;
  }

  /// Uncontended completion latency of a request of `mrt` transactions
  /// (Eq. 11): L_base + (MRT - 1) * Δdelay.
  double request_latency_cycles(double mrt) const {
    if (mrt < 1.0) return 0.0;
    return static_cast<double>(l_base_cycles) +
           (mrt - 1.0) * static_cast<double>(delta_delay_cycles);
  }

  /// Peak double-precision FLOP/s of one core group, assuming each CPE can
  /// retire one 4-wide FMA per cycle (8 flops/cycle), as on SW26010
  /// (765 GFLOPS per CG / 3.06 TFLOPS per processor).
  double peak_gflops_per_cg() const {
    return freq_ghz * 8.0 * static_cast<double>(cpes_per_cg);
  }

  /// Validates parameter sanity; throws sw::Error on nonsense values.
  void validate() const;

  /// The default SW26010 configuration (Table I).
  static ArchParams sw26010() { return ArchParams{}; }
};

}  // namespace swperf::sw
