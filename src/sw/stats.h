// Small summary-statistics helpers used by benches and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace swperf::sw {

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> xs);

/// Geometric mean; requires all inputs > 0. 0 for empty input.
double geomean(std::span<const double> xs);

/// Population standard deviation; 0 for fewer than 2 elements.
double stdev(std::span<const double> xs);

/// Maximum; 0 for empty input.
double max_of(std::span<const double> xs);

/// Minimum; 0 for empty input.
double min_of(std::span<const double> xs);

/// Relative error |predicted - actual| / actual (actual must be nonzero).
double rel_error(double predicted, double actual);

/// Median (of a copy); 0 for empty input.
double median(std::span<const double> xs);

/// Accumulates relative errors over a series of (predicted, actual) pairs
/// and reports the aggregate statistics that Figure 6 of the paper uses.
class ErrorAccumulator {
 public:
  void add(double predicted, double actual);

  double mean_error() const;
  double max_error() const;
  std::size_t count() const { return errors_.size(); }
  std::span<const double> errors() const { return errors_; }

 private:
  std::vector<double> errors_;
};

}  // namespace swperf::sw
