// Small summary-statistics helpers used by benches and tests.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace swperf::sw {

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> xs);

/// Geometric mean; requires all inputs > 0. 0 for empty input.
double geomean(std::span<const double> xs);

/// Population standard deviation; 0 for fewer than 2 elements.
double stdev(std::span<const double> xs);

/// Maximum; 0 for empty input.
double max_of(std::span<const double> xs);

/// Minimum; 0 for empty input.
double min_of(std::span<const double> xs);

/// Relative error |predicted - actual| / actual (actual must be nonzero).
double rel_error(double predicted, double actual);

/// Median (of a copy); 0 for empty input.
double median(std::span<const double> xs);

/// Accumulates relative errors over a series of (predicted, actual) pairs
/// and reports the aggregate statistics that Figure 6 of the paper uses.
class ErrorAccumulator {
 public:
  void add(double predicted, double actual);

  double mean_error() const;
  double max_error() const;
  std::size_t count() const { return errors_.size(); }
  std::span<const double> errors() const { return errors_; }

 private:
  std::vector<double> errors_;
};

/// Fixed-bucket latency histogram for the serving layer's tail-latency
/// accounting (`swperf serve` stats, bench_serve).
///
/// Buckets are powers of two in microseconds — [0,1), [1,2), [2,4), …,
/// [2^25,2^26), [2^26,∞) — so the layout is identical on every machine and
/// run: reported quantiles are a pure function of the recorded counts
/// ("deterministic rendering"), never of sampling order or wall clock.
/// A quantile reports its bucket's inclusive upper bound (the histogram
/// overestimates by at most 2x, never underestimates), except the overflow
/// bucket, which reports the exact maximum recorded value.
///
/// Not internally synchronized; callers hold their own lock (the serve
/// shard records under its queue mutex).
class LatencyHistogram {
 public:
  /// [0,1) plus one bucket per power of two up to 2^26 us (~67 s), plus
  /// the overflow bucket.
  static constexpr std::size_t kBuckets = 28;

  /// Records one latency sample, in microseconds.
  void record(std::uint64_t us);
  /// Merges another histogram's samples into this one.
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  /// Exact maximum recorded value; 0 when empty.
  std::uint64_t max_us() const { return max_us_; }
  /// Upper bound (us) of the first bucket whose cumulative count reaches
  /// ceil(q * count); 0 when empty. q is clamped to (0, 1].
  std::uint64_t quantile_us(double q) const;
  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  /// Bucket index a sample lands in.
  static std::size_t bucket_of(std::uint64_t us);
  /// Inclusive upper bound (us) reported for bucket `i`; the overflow
  /// bucket has none and defers to max_us().
  static std::uint64_t bucket_ceil(std::size_t i);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t max_us_ = 0;
};

}  // namespace swperf::sw
