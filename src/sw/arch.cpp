#include "sw/arch.h"

#include "sw/error.h"

namespace swperf::sw {

void ArchParams::validate() const {
  SWPERF_CHECK(mem_bw_gbps > 0.0, "mem_bw_gbps=" << mem_bw_gbps);
  SWPERF_CHECK(freq_ghz > 0.0, "freq_ghz=" << freq_ghz);
  SWPERF_CHECK(trans_size_bytes > 0 && (trans_size_bytes & (trans_size_bytes - 1)) == 0,
               "trans_size_bytes must be a power of two, got " << trans_size_bytes);
  SWPERF_CHECK(l_base_cycles > 0, "l_base_cycles=" << l_base_cycles);
  SWPERF_CHECK(cpes_per_cg > 0, "cpes_per_cg=" << cpes_per_cg);
  SWPERF_CHECK(core_groups >= 1 && core_groups <= 16,
               "core_groups=" << core_groups);
  SWPERF_CHECK(spm_bytes >= 1024, "spm_bytes=" << spm_bytes);
  SWPERF_CHECK(gload_max_bytes > 0 && gload_max_bytes <= trans_size_bytes,
               "gload_max_bytes=" << gload_max_bytes);
  SWPERF_CHECK(cross_section_bw_efficiency > 0.0 &&
                   cross_section_bw_efficiency <= 1.0,
               "cross_section_bw_efficiency=" << cross_section_bw_efficiency);
  // The simulator requires the transaction service time to be at least one
  // tick, otherwise bandwidth contention would vanish.
  SWPERF_CHECK(trans_service_ticks() >= 1,
               "transaction service time below simulator resolution");
}

}  // namespace swperf::sw
