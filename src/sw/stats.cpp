#include "sw/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "sw/error.h"

namespace swperf::sw {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) {
    SWPERF_CHECK(x > 0.0, "geomean requires positive inputs, got " << x);
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double stdev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double rel_error(double predicted, double actual) {
  SWPERF_CHECK(actual != 0.0, "rel_error with zero actual");
  return std::abs(predicted - actual) / std::abs(actual);
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

void ErrorAccumulator::add(double predicted, double actual) {
  errors_.push_back(rel_error(predicted, actual));
}

double ErrorAccumulator::mean_error() const { return mean(errors_); }

double ErrorAccumulator::max_error() const { return max_of(errors_); }

std::size_t LatencyHistogram::bucket_of(std::uint64_t us) {
  if (us == 0) return 0;
  // Bucket i >= 1 covers [2^(i-1), 2^i); 64 - countl_zero(us) is the bit
  // width of us, so us in [2^(w-1), 2^w) lands in bucket w.
  const std::size_t width =
      64u - static_cast<std::size_t>(std::countl_zero(us));
  return std::min(width, kBuckets - 1);
}

std::uint64_t LatencyHistogram::bucket_ceil(std::size_t i) {
  SWPERF_CHECK(i < kBuckets, "histogram bucket out of range");
  if (i == 0) return 0;                        // [0,1) reports 0 us
  if (i == kBuckets - 1) return 0;             // overflow: use max_us()
  return std::uint64_t{1} << i;                // [2^(i-1), 2^i) reports 2^i
}

void LatencyHistogram::record(std::uint64_t us) {
  ++buckets_[bucket_of(us)];
  ++count_;
  max_us_ = std::max(max_us_, us);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  max_us_ = std::max(max_us_, other.max_us_);
}

std::uint64_t LatencyHistogram::quantile_us(double q) const {
  if (count_ == 0) return 0;
  q = std::min(std::max(q, std::numeric_limits<double>::min()), 1.0);
  // ceil(q * count) without float rounding surprises at the top end.
  const std::uint64_t rank = std::min(
      count_, static_cast<std::uint64_t>(
                  std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return i == kBuckets - 1 ? max_us_ : bucket_ceil(i);
    }
  }
  return max_us_;  // unreachable: seen reaches count_ in the loop
}

}  // namespace swperf::sw
