#include "sw/stats.h"

#include <algorithm>
#include <cmath>

#include "sw/error.h"

namespace swperf::sw {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) {
    SWPERF_CHECK(x > 0.0, "geomean requires positive inputs, got " << x);
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double stdev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double rel_error(double predicted, double actual) {
  SWPERF_CHECK(actual != 0.0, "rel_error with zero actual");
  return std::abs(predicted - actual) / std::abs(actual);
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

void ErrorAccumulator::add(double predicted, double actual) {
  errors_.push_back(rel_error(predicted, actual));
}

double ErrorAccumulator::mean_error() const { return mean(errors_); }

double ErrorAccumulator::max_error() const { return max_of(errors_); }

}  // namespace swperf::sw
