// A small work-stealing thread pool for embarrassingly parallel index
// spaces.
//
// The auto-tuning campaigns of Section V-D evaluate every variant of a
// pruned search space independently — the textbook fork/join workload.
// This pool shards an index range [0, n) into per-worker deques of chunks;
// an idle worker steals the *back* half of the largest remaining deque, so
// load imbalance (simulations vary ~10x in cost across tile sizes) is
// absorbed without a central queue bottleneck.
//
// Determinism contract: the pool schedules *which thread* runs an index,
// never *what the index computes* or where the result lands.  Callers
// write result i into slot i of a pre-sized vector and reduce serially
// afterwards, so any schedule produces bit-identical output — the property
// tests/tuning/parallel_tuner_test.cpp pins.
//
// Exceptions thrown by the body are captured; the first one (by index
// order, not arrival order — again for determinism) is rethrown from
// parallel_for() after all workers drain.
#pragma once

#include <cstdint>
#include <functional>

namespace swperf::sw {

/// Number of workers to use for `jobs` requested jobs: jobs if >= 1,
/// otherwise std::thread::hardware_concurrency().
unsigned resolve_jobs(int jobs);

/// Runs body(i) for every i in [0, n), spread over `jobs` threads.
///
/// jobs <= 1 (or n <= 1) runs inline on the caller's thread with no pool
/// at all, so the serial path stays byte-for-byte the pre-pool code path.
/// The call blocks until every index completed. If any invocation threw,
/// the exception of the *lowest failing index* is rethrown.
void parallel_for(std::uint64_t n, int jobs,
                  const std::function<void(std::uint64_t)>& body);

}  // namespace swperf::sw
