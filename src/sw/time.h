// Time base shared by the simulator and the analytical model.
//
// The simulator needs sub-cycle resolution: the DRAM transaction service
// time implied by Table I of the paper is 256 B / (32 GB/s / 1.45 GHz) =
// 11.6 CPE cycles, which is not an integer.  All simulated time is therefore
// kept in integer *ticks* with 10 ticks per CPE cycle, making every quantity
// derived from Table I exactly representable and the simulation fully
// deterministic.  The analytical model works in (double) cycles.
#pragma once

#include <cstdint>

namespace swperf::sw {

/// Simulated time in ticks (1 cycle == kTicksPerCycle ticks).
using Tick = std::uint64_t;

/// Sub-cycle resolution of the simulator time base.
inline constexpr Tick kTicksPerCycle = 10;

/// Sentinel for "never" / unset times.
inline constexpr Tick kTickNever = ~Tick{0};

/// Converts a whole number of cycles to ticks.
constexpr Tick cycles_to_ticks(std::uint64_t cycles) {
  return cycles * kTicksPerCycle;
}

/// Converts ticks to cycles, as a double (model-facing).
constexpr double ticks_to_cycles(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerCycle);
}

/// Converts a fractional number of cycles to ticks, rounding to nearest.
constexpr Tick fractional_cycles_to_ticks(double cycles) {
  const double t = cycles * static_cast<double>(kTicksPerCycle);
  return static_cast<Tick>(t + 0.5);
}

/// Converts simulated cycles to seconds at the given frequency (GHz).
constexpr double cycles_to_seconds(double cycles, double freq_ghz) {
  return cycles / (freq_ghz * 1e9);
}

/// Converts simulated cycles to microseconds at the given frequency (GHz).
constexpr double cycles_to_us(double cycles, double freq_ghz) {
  return cycles / (freq_ghz * 1e3);
}

}  // namespace swperf::sw
