// Deterministic pseudo-random number generation for synthetic workloads.
//
// Benchmarks and tests must be reproducible run-to-run and machine-to-
// machine, so all stochastic inputs (k-means point clouds, BFS edge lists,
// ...) are drawn from this self-contained SplitMix64/xoshiro256** pair
// rather than std::mt19937 (whose distributions are not portable).
#pragma once

#include <array>
#include <cstdint>

namespace swperf::sw {

/// SplitMix64: used to seed xoshiro and for cheap stateless hashing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, portable generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    auto m = static_cast<unsigned __int128>(next_u64()) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace swperf::sw
