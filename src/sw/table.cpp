#include "sw/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sw/error.h"

namespace swperf::sw {

Table& Table::header(std::vector<std::string> cols) {
  SWPERF_CHECK(rows_.empty(), "header must precede rows");
  header_ = std::move(cols);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  SWPERF_CHECK(cells.size() == header_.size(),
               "row has " << cells.size() << " cells, header has "
                          << header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }

  auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << '\n';
  };

  os << "== " << title_ << " ==\n";
  rule();
  line(header_);
  rule();
  for (const auto& r : rows_) line(r);
  rule();
}

std::string Table::num(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string Table::pct(double fraction, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << fraction * 100.0 << '%';
  return os.str();
}

std::string Table::times(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v << 'x';
  return os.str();
}

}  // namespace swperf::sw
