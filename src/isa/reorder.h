// Instruction scheduling (list scheduling) for basic blocks.
//
// The CPE issues strictly in order, so the *static instruction order*
// determines ILP — exactly why the paper reads the native compiler's
// predicted issue cycles off the annotated assembly: that compiler has
// already list-scheduled the block.  This pass reproduces it: a greedy
// earliest-issue topological reordering under the dual-issue scoreboard,
// honouring RAW/WAW/WAR register dependencies.  Kernel bodies can then be
// written in natural (source) order; lowering schedules them like the
// toolchain would.
#pragma once

#include "isa/block.h"
#include "sw/arch.h"

namespace swperf::isa {

/// Returns a semantically equivalent block whose instruction order
/// minimises (greedily) the in-order dual-issue schedule length.
BasicBlock reorder_for_ilp(const BasicBlock& block, const sw::ArchParams& p);

}  // namespace swperf::isa
