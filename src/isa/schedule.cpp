#include "isa/schedule.h"

#include <algorithm>

#include "sw/error.h"

namespace swperf::isa {

namespace {

/// In-order dual-issue scoreboard. State persists across block repetitions
/// so loop-carried register dependencies serialise naturally.
class Scoreboard {
 public:
  Scoreboard(const BasicBlock& block, const sw::ArchParams& p)
      : block_(block), params_(p), ready_(block.num_regs, 0) {}

  /// Runs one execution of the block; returns (issue cycle of last
  /// instruction, max retirement cycle so far). Optionally records the
  /// per-instruction issue cycles of this execution.
  void run_once(std::vector<std::uint32_t>* issue_out) {
    for (const auto& i : block_.instrs) {
      const auto pipe = static_cast<std::size_t>(pipe_of(i.cls));
      std::uint64_t t = std::max(prev_issue_, pipe_next_[pipe]);
      for (Reg s : i.srcs) {
        if (s != kNoReg) t = std::max(t, ready_[static_cast<std::size_t>(s)]);
      }
      const std::uint64_t lat = latency_of(i.cls, params_);
      prev_issue_ = t;
      pipe_next_[pipe] = t + (is_unpipelined(i.cls) ? lat : 1);
      if (i.dst != kNoReg) ready_[static_cast<std::size_t>(i.dst)] = t + lat;
      retire_ = std::max(retire_, t + lat);
      if (issue_out != nullptr) {
        issue_out->push_back(static_cast<std::uint32_t>(t));
      }
    }
  }

  std::uint64_t retire() const { return retire_; }

 private:
  const BasicBlock& block_;
  const sw::ArchParams& params_;
  std::vector<std::uint64_t> ready_;       // per-register availability cycle
  std::array<std::uint64_t, 2> pipe_next_{0, 0};  // next free cycle per pipe
  std::uint64_t prev_issue_ = 0;           // in-order issue constraint
  std::uint64_t retire_ = 0;
};

}  // namespace

double BlockSchedule::avg_ilp(const sw::ArchParams& p) const {
  if (span_cycles == 0) return 0.0;
  return counts.weighted_latency(p) / static_cast<double>(span_cycles);
}

BlockSchedule schedule_block(const BasicBlock& block, const sw::ArchParams& p) {
  block.validate();
  BlockSchedule s;
  s.counts = block.class_counts();
  Scoreboard sb(block, p);
  sb.run_once(&s.issue_cycle);
  s.span_cycles = sb.retire();
  return s;
}

LoopSchedule::LoopSchedule(const BasicBlock& block, const sw::ArchParams& p) {
  block.validate();
  counts_ = block.class_counts();
  if (block.instrs.empty()) {
    steady_ii_ = 0;
    return;
  }

  // Replay iterations until three consecutive retirement deltas agree —
  // with fixed latencies and in-order issue the schedule always settles
  // into a linear steady state, normally within a couple of iterations.
  constexpr std::size_t kMaxWarmup = 64;
  Scoreboard sb(block, p);
  std::uint64_t stable_delta = 0;
  int stable_count = 0;
  for (std::size_t it = 0; it < kMaxWarmup; ++it) {
    sb.run_once(nullptr);
    retire_prefix_.push_back(sb.retire());
    const std::size_t n = retire_prefix_.size();
    if (n >= 2) {
      const std::uint64_t delta = retire_prefix_[n - 1] - retire_prefix_[n - 2];
      if (delta == stable_delta) {
        if (++stable_count >= 3) break;
      } else {
        stable_delta = delta;
        stable_count = 1;
      }
    }
  }
  steady_ii_ = stable_delta;
  SWPERF_ASSERT(steady_ii_ > 0 || retire_prefix_.size() == 1);
  if (steady_ii_ == 0) steady_ii_ = retire_prefix_.back();
}

std::uint64_t LoopSchedule::cycles(std::uint64_t iters) const {
  if (iters == 0 || retire_prefix_.empty()) return 0;
  if (iters <= retire_prefix_.size()) {
    return retire_prefix_[static_cast<std::size_t>(iters) - 1];
  }
  const std::uint64_t warm = retire_prefix_.size();
  return retire_prefix_.back() + (iters - warm) * steady_ii_;
}

double LoopSchedule::avg_ilp(const sw::ArchParams& p,
                             std::uint64_t iters) const {
  const std::uint64_t c = cycles(iters);
  if (c == 0) return 0.0;
  return counts_.weighted_latency(p) * static_cast<double>(iters) /
         static_cast<double>(c);
}

}  // namespace swperf::isa
