// SIMD vectorization of basic blocks.
//
// Each CPE of SW26010 has a 256-bit vector unit: one vector instruction
// processes 4 double-precision lanes at the same issue cost and latency as
// its scalar form (that is where the chip's 8 flops/cycle/CPE — 742 GFLOPS
// per core group — come from; a scalar port reaches at most a quarter of
// peak).  A vectorized block therefore keeps the *same* instruction
// sequence but covers `lanes` source iterations per execution:
// BasicBlock::lanes records the widening, and lowering divides the trip
// count accordingly (with a scalar remainder loop).
//
// Legality is the kernel author's contract (KernelDesc::vectorizable):
// stride-1 SPM accesses and lane-independent arithmetic. Reductions
// vectorize into per-lane accumulators; the final horizontal reduction
// (once per loop, not per iteration) is negligible and not emitted — the
// same convention as unrolling's accumulator merge.
#pragma once

#include "isa/block.h"

namespace swperf::isa {

/// Maximum lanes of the 256-bit vector unit on doubles.
inline constexpr std::uint32_t kMaxVectorLanes = 4;

/// Returns `block` widened to `lanes` source iterations per execution.
/// lanes must be 1, 2 or 4 and blocks must not be re-vectorized.
BasicBlock vectorize(const BasicBlock& block, std::uint32_t lanes);

}  // namespace swperf::isa
