#include "isa/vectorize.h"

#include <string>

#include "sw/error.h"

namespace swperf::isa {

BasicBlock vectorize(const BasicBlock& block, std::uint32_t lanes) {
  block.validate();
  SWPERF_CHECK(lanes == 1 || lanes == 2 || lanes == kMaxVectorLanes,
               "vector width must be 1, 2 or 4, got " << lanes);
  SWPERF_CHECK(block.lanes == 1,
               "block '" << block.name << "' is already vectorized");
  if (lanes == 1) return block;
  BasicBlock out = block;
  out.lanes = lanes;
  out.name = block.name + "_v" + std::to_string(lanes);
  return out;
}

}  // namespace swperf::isa
