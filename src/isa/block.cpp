#include "isa/block.h"

#include <algorithm>
#include <set>

#include "sw/error.h"

namespace swperf::isa {

OpClassCounts BasicBlock::class_counts() const {
  OpClassCounts c;
  for (const auto& i : instrs) ++c[i.cls];
  return c;
}

std::vector<Reg> BasicBlock::live_in() const {
  std::set<Reg> written;
  std::set<Reg> live;
  for (const auto& i : instrs) {
    for (Reg s : i.srcs) {
      if (s != kNoReg && written.count(s) == 0) live.insert(s);
    }
    if (i.dst != kNoReg) written.insert(i.dst);
  }
  return {live.begin(), live.end()};
}

std::vector<Reg> BasicBlock::written() const {
  std::set<Reg> defs;
  for (const auto& i : instrs) {
    if (i.dst != kNoReg) defs.insert(i.dst);
  }
  return {defs.begin(), defs.end()};
}

std::vector<Reg> BasicBlock::carried() const {
  const std::vector<Reg> defs = written();
  std::vector<Reg> out;
  for (Reg r : live_in()) {
    if (std::binary_search(defs.begin(), defs.end(), r)) out.push_back(r);
  }
  return out;
}

void BasicBlock::validate() const {
  for (const auto& i : instrs) {
    if (i.dst != kNoReg) {
      SWPERF_CHECK(i.dst >= 0 && i.dst < num_regs,
                   "dst register " << i.dst << " out of range in block '"
                                   << name << "'");
    }
    SWPERF_CHECK(i.cls != OpClass::kSpmStore || i.dst == kNoReg,
                 "spm_store must not have a destination");
    for (Reg s : i.srcs) {
      SWPERF_CHECK(s == kNoReg || (s >= 0 && s < num_regs),
                   "src register " << s << " out of range in block '" << name
                                   << "'");
    }
  }
}

BlockBuilder::BlockBuilder(std::string name) { block_.name = std::move(name); }

Reg BlockBuilder::reg() { return block_.num_regs++; }

Reg BlockBuilder::emit(OpClass cls, Reg a, Reg b, Reg c, bool has_dst) {
  Instr i;
  i.cls = cls;
  i.srcs = {a, b, c};
  i.dst = has_dst ? reg() : kNoReg;
  block_.instrs.push_back(i);
  return i.dst;
}

Reg BlockBuilder::fadd(Reg a, Reg b) { return emit(OpClass::kFloatAdd, a, b); }
Reg BlockBuilder::fmul(Reg a, Reg b) { return emit(OpClass::kFloatMul, a, b); }
Reg BlockBuilder::fma(Reg a, Reg b, Reg c) {
  return emit(OpClass::kFloatFma, a, b, c);
}
Reg BlockBuilder::fdiv(Reg a, Reg b) { return emit(OpClass::kFloatDiv, a, b); }
Reg BlockBuilder::fsqrt(Reg a) { return emit(OpClass::kFloatSqrt, a); }
Reg BlockBuilder::fixed(Reg a, Reg b) { return emit(OpClass::kFixed, a, b); }

Reg BlockBuilder::spm_load(Reg addr) {
  return emit(OpClass::kSpmLoad, addr);
}

void BlockBuilder::spm_store(Reg value, Reg addr) {
  emit(OpClass::kSpmStore, value, addr, kNoReg, /*has_dst=*/false);
}

void BlockBuilder::accumulate_add(Reg acc, Reg x) {
  Instr i;
  i.cls = OpClass::kFloatAdd;
  i.srcs = {acc, x, kNoReg};
  i.dst = acc;  // read-modify-write: loop-carried when repeated
  block_.instrs.push_back(i);
}

void BlockBuilder::carry_fixed(Reg carried, Reg x) {
  Instr i;
  i.cls = OpClass::kFixed;
  i.srcs = {carried, x, kNoReg};
  i.dst = carried;
  block_.instrs.push_back(i);
}

void BlockBuilder::accumulate_fma(Reg acc, Reg a, Reg b) {
  Instr i;
  i.cls = OpClass::kFloatFma;
  i.srcs = {a, b, acc};
  i.dst = acc;
  block_.instrs.push_back(i);
}

void BlockBuilder::loop_overhead(int n_fixed_ops) {
  for (int k = 0; k < n_fixed_ops; ++k) {
    Instr i;
    i.cls = OpClass::kFixed;
    i.dst = reg();
    i.loop_overhead = true;
    block_.instrs.push_back(i);
  }
}

Reg BlockBuilder::independent_flops(Reg seed, int n) {
  Reg last = seed;
  for (int k = 0; k < n; ++k) {
    last = fmul(seed, seed);  // all depend only on seed: fully parallel
  }
  return last;
}

BasicBlock BlockBuilder::build() && {
  block_.validate();
  return std::move(block_);
}

}  // namespace swperf::isa
