#include "isa/unroll.h"

#include <set>
#include <string>
#include <vector>

#include "sw/error.h"

namespace swperf::isa {

BasicBlock unroll(const BasicBlock& block, const UnrollOptions& opts) {
  block.validate();
  SWPERF_CHECK(opts.factor >= 1, "unroll factor must be >= 1, got "
                                     << opts.factor);
  if (opts.factor == 1) return block;

  const std::vector<Reg> carried_vec = block.carried();
  const std::set<Reg> carried(carried_vec.begin(), carried_vec.end());

  BasicBlock out;
  out.name = block.name + "_x" + std::to_string(opts.factor);
  out.lanes = block.lanes;
  out.num_regs = block.num_regs;

  for (int k = 0; k < opts.factor; ++k) {
    // Per-copy register map, initialised to identity: live-in invariants
    // stay shared across copies.
    std::vector<Reg> map(static_cast<std::size_t>(block.num_regs));
    for (Reg r = 0; r < block.num_regs; ++r) {
      map[static_cast<std::size_t>(r)] = r;
    }
    if (k > 0 && opts.split_reductions) {
      // Each copy accumulates into its own alias of every carried register,
      // making the k chains mutually independent.
      for (Reg r : carried_vec) {
        map[static_cast<std::size_t>(r)] = out.num_regs++;
      }
    }

    for (const auto& instr : block.instrs) {
      if (instr.loop_overhead && opts.collapse_loop_overhead && k > 0) {
        continue;
      }
      Instr ni = instr;
      for (auto& s : ni.srcs) {
        if (s != kNoReg) s = map[static_cast<std::size_t>(s)];
      }
      if (instr.dst != kNoReg) {
        if (carried.count(instr.dst) != 0) {
          // Writes to a carried register stay on that copy's alias so the
          // chain persists across repetitions of the unrolled body.
          ni.dst = map[static_cast<std::size_t>(instr.dst)];
        } else if (k == 0) {
          ni.dst = instr.dst;  // identity for the first copy
        } else {
          ni.dst = out.num_regs++;
          map[static_cast<std::size_t>(instr.dst)] = ni.dst;
        }
      }
      out.instrs.push_back(ni);
    }
  }
  out.validate();
  return out;
}

}  // namespace swperf::isa
