// Basic blocks and a builder API for writing CPE kernel bodies.
//
// Kernel definitions (src/kernels) construct one basic block describing the
// loop body that runs once per innermost iteration (or per element).  The
// builder hands out virtual registers; writing an expression like
//   acc = b.fadd(acc, x)
// with the *same* register on both sides creates a loop-carried dependence
// when the block is executed repeatedly — exactly how a reduction serialises
// a real in-order pipeline (and why unrolling with reduction splitting
// helps; see unroll.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instr.h"

namespace swperf::isa {

/// A straight-line sequence of IR instructions plus its register universe.
struct BasicBlock {
  std::string name;
  std::vector<Instr> instrs;
  /// Number of virtual registers; register ids are in [0, num_regs).
  Reg num_regs = 0;
  /// Source iterations covered per execution: 1 for scalar code, 2/4 when
  /// the block has been vectorized (see isa/vectorize.h). The instruction
  /// stream itself is width-agnostic — vector ops share scalar latencies.
  std::uint32_t lanes = 1;

  OpClassCounts class_counts() const;

  /// Registers read before they are written in this block (live-in).
  std::vector<Reg> live_in() const;
  /// Registers the block writes (every instruction destination), sorted
  /// and deduplicated.
  std::vector<Reg> written() const;
  /// Live-in registers that the block also writes: loop-carried values
  /// (reduction accumulators, running indices).
  std::vector<Reg> carried() const;

  /// Structural validation (register ids in range, dst present where
  /// required); throws sw::Error on malformed blocks.
  void validate() const;
};

/// Fluent builder for BasicBlock.
class BlockBuilder {
 public:
  explicit BlockBuilder(std::string name);

  /// Allocates a fresh virtual register (e.g. for live-in values).
  Reg reg();

  // -- pipeline 0: compute ------------------------------------------------
  Reg fadd(Reg a, Reg b);
  Reg fsub(Reg a, Reg b) { return fadd(a, b); }  // same class/latency
  Reg fmul(Reg a, Reg b);
  Reg fma(Reg a, Reg b, Reg c);
  Reg fdiv(Reg a, Reg b);
  Reg fsqrt(Reg a);
  Reg fixed(Reg a, Reg b = kNoReg);
  Reg cmp(Reg a, Reg b) { return fixed(a, b); }

  // -- pipeline 1: SPM access ----------------------------------------------
  /// SPM load producing a value; `addr` is the (fixed-point) address source.
  Reg spm_load(Reg addr = kNoReg);
  void spm_store(Reg value, Reg addr = kNoReg);

  /// Accumulate into an existing register: dst = op(dst, src).
  void accumulate_add(Reg acc, Reg x);
  void accumulate_fma(Reg acc, Reg a, Reg b);
  /// Fixed-point carried update: dst = fixed(dst, x) — e.g. a DP cell's
  /// west-neighbour dependence.
  void carry_fixed(Reg carried, Reg x);

  /// Emits the canonical per-iteration loop overhead (index increment +
  /// bound compare/branch), marked so unrolling collapses it.
  void loop_overhead(int n_fixed_ops = 2);

  /// Repeats: returns `n` fresh mutually-independent FP chains feeding from
  /// `seed` — convenience for writing synthetic compute-heavy bodies.
  Reg independent_flops(Reg seed, int n);

  BasicBlock build() &&;

  const BasicBlock& peek() const { return block_; }

 private:
  Reg emit(OpClass cls, Reg a, Reg b = kNoReg, Reg c = kNoReg,
           bool has_dst = true);

  BasicBlock block_;
};

}  // namespace swperf::isa
