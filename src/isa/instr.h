// Instruction IR for CPE kernel bodies.
//
// The paper's model consumes the *statically scheduled assembly* of a CPE
// kernel: the native SW26010 compiler annotates predicted issue cycles,
// dependencies and basic blocks, from which the authors count retired
// instructions per class and compute avg_ILP (Section III-D).  We reproduce
// that toolchain artefact with a small SSA-like instruction IR over virtual
// registers plus a static scheduler (schedule.h).
//
// A CPE issues in order, up to two instructions per cycle: pipeline 0
// executes float/fixed computation, pipeline 1 executes data motion (SPM
// load/store and memory-request issue).  Latencies come from Table I.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sw/arch.h"

namespace swperf::isa {

/// Virtual register id. Values are assigned by BlockBuilder.
using Reg = std::int32_t;
inline constexpr Reg kNoReg = -1;

/// Instruction classes distinguished by the model (Table I latencies).
enum class OpClass : std::uint8_t {
  kFloatAdd,   // pipelined FP add/sub
  kFloatMul,   // pipelined FP multiply
  kFloatFma,   // pipelined fused multiply-add (counted as one instruction)
  kFloatDiv,   // unpipelined divide (footnote 1)
  kFloatSqrt,  // unpipelined square root (footnote 1)
  kFixed,      // fixed-point / address arithmetic / branch
  kSpmLoad,    // scratch-pad load
  kSpmStore,   // scratch-pad store
};
inline constexpr int kNumOpClasses = 8;

/// Execution pipeline an instruction class issues on.
enum class Pipe : std::uint8_t {
  kCompute = 0,  // pipeline 0
  kMemory = 1,   // pipeline 1
};

constexpr Pipe pipe_of(OpClass c) {
  switch (c) {
    case OpClass::kSpmLoad:
    case OpClass::kSpmStore:
      return Pipe::kMemory;
    default:
      return Pipe::kCompute;
  }
}

/// True for div/sqrt, which occupy the FP unit for their whole latency.
constexpr bool is_unpipelined(OpClass c) {
  return c == OpClass::kFloatDiv || c == OpClass::kFloatSqrt;
}

/// True for floating-point arithmetic classes.
constexpr bool is_float(OpClass c) {
  return c == OpClass::kFloatAdd || c == OpClass::kFloatMul ||
         c == OpClass::kFloatFma || c == OpClass::kFloatDiv ||
         c == OpClass::kFloatSqrt;
}

/// Table I latency of an instruction class, in cycles.
constexpr std::uint32_t latency_of(OpClass c, const sw::ArchParams& p) {
  switch (c) {
    case OpClass::kFloatAdd:
    case OpClass::kFloatMul:
    case OpClass::kFloatFma:
      return p.l_float_cycles;
    case OpClass::kFloatDiv:
    case OpClass::kFloatSqrt:
      return p.l_div_sqrt_cycles;
    case OpClass::kFixed:
      return p.l_fixed_cycles;
    case OpClass::kSpmLoad:
    case OpClass::kSpmStore:
      return p.l_spm_cycles;
  }
  return 1;  // unreachable
}

/// Double-precision flops contributed by one retired instruction of class c
/// (FMA counts 2), used for GFLOPS reporting like the paper's Section V-D.
constexpr std::uint32_t flops_of(OpClass c) {
  switch (c) {
    case OpClass::kFloatAdd:
    case OpClass::kFloatMul:
    case OpClass::kFloatDiv:
    case OpClass::kFloatSqrt:
      return 1;
    case OpClass::kFloatFma:
      return 2;
    default:
      return 0;
  }
}

const char* op_class_name(OpClass c);

/// One IR instruction: dst <- cls(srcs...). Up to three sources (FMA).
struct Instr {
  OpClass cls = OpClass::kFixed;
  Reg dst = kNoReg;
  std::array<Reg, 3> srcs = {kNoReg, kNoReg, kNoReg};
  /// Loop-overhead instructions (index increment, bound compare, branch)
  /// are emitted once per *source* iteration and collapse under unrolling.
  bool loop_overhead = false;

  int num_srcs() const {
    int n = 0;
    for (Reg s : srcs) n += (s != kNoReg) ? 1 : 0;
    return n;
  }
};

/// Per-class instruction counts of a block or a whole kernel execution.
struct OpClassCounts {
  std::array<std::uint64_t, kNumOpClasses> counts{};

  std::uint64_t& operator[](OpClass c) {
    return counts[static_cast<std::size_t>(c)];
  }
  std::uint64_t operator[](OpClass c) const {
    return counts[static_cast<std::size_t>(c)];
  }

  std::uint64_t total() const;
  std::uint64_t total_flops() const;
  /// Sum over classes of #instructions × latency — the numerator of the
  /// paper's Eq. 6.
  double weighted_latency(const sw::ArchParams& p) const;

  OpClassCounts& operator+=(const OpClassCounts& o);
  OpClassCounts scaled(std::uint64_t factor) const;

  std::string to_string() const;
};

}  // namespace swperf::isa
