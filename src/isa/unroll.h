// Loop unrolling on basic blocks.
//
// Unrolling is one of the two code transformations the paper's auto-tuners
// search over (Section V-D).  On an in-order cache-less CPE its effect is
// purely static and therefore fully visible to the scheduler:
//   * per-iteration loop overhead (index/branch fixed-point ops) collapses
//     to once per unrolled body;
//   * with reduction splitting, a loop-carried accumulator chain is renamed
//     into `factor` independent chains, raising avg_ILP toward the pipeline
//     depth (the paper's ILP "can be as many as 8").
// The epilogue that re-combines split accumulators ((factor-1) adds once per
// loop, not per iteration) is negligible and not emitted.
#pragma once

#include "isa/block.h"

namespace swperf::isa {

struct UnrollOptions {
  /// Number of source iterations per unrolled body. 1 = no change.
  int factor = 1;
  /// Rename loop-carried registers per copy (independent reduction chains).
  bool split_reductions = true;
  /// Emit loop-overhead instructions once per unrolled body instead of once
  /// per source iteration.
  bool collapse_loop_overhead = true;
};

/// Returns a block representing `factor` consecutive source iterations.
/// Executing the result N/factor times is equivalent to executing `block`
/// N times.
BasicBlock unroll(const BasicBlock& block, const UnrollOptions& opts);

}  // namespace swperf::isa
