#include "isa/instr.h"

#include <sstream>

namespace swperf::isa {

const char* op_class_name(OpClass c) {
  switch (c) {
    case OpClass::kFloatAdd: return "fadd";
    case OpClass::kFloatMul: return "fmul";
    case OpClass::kFloatFma: return "fma";
    case OpClass::kFloatDiv: return "fdiv";
    case OpClass::kFloatSqrt: return "fsqrt";
    case OpClass::kFixed: return "fixed";
    case OpClass::kSpmLoad: return "spm_ld";
    case OpClass::kSpmStore: return "spm_st";
  }
  return "?";
}

std::uint64_t OpClassCounts::total() const {
  std::uint64_t s = 0;
  for (auto c : counts) s += c;
  return s;
}

std::uint64_t OpClassCounts::total_flops() const {
  std::uint64_t s = 0;
  for (int i = 0; i < kNumOpClasses; ++i) {
    s += counts[static_cast<std::size_t>(i)] *
         flops_of(static_cast<OpClass>(i));
  }
  return s;
}

double OpClassCounts::weighted_latency(const sw::ArchParams& p) const {
  double s = 0.0;
  for (int i = 0; i < kNumOpClasses; ++i) {
    const auto c = static_cast<OpClass>(i);
    s += static_cast<double>(counts[static_cast<std::size_t>(i)]) *
         static_cast<double>(latency_of(c, p));
  }
  return s;
}

OpClassCounts& OpClassCounts::operator+=(const OpClassCounts& o) {
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += o.counts[i];
  return *this;
}

OpClassCounts OpClassCounts::scaled(std::uint64_t factor) const {
  OpClassCounts r = *this;
  for (auto& c : r.counts) c *= factor;
  return r;
}

std::string OpClassCounts::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (int i = 0; i < kNumOpClasses; ++i) {
    const auto n = counts[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    if (!first) os << ' ';
    os << op_class_name(static_cast<OpClass>(i)) << ':' << n;
    first = false;
  }
  return os.str();
}

}  // namespace swperf::isa
