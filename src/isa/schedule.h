// Static instruction scheduling for CPE basic blocks.
//
// Reproduces what the paper extracts from the native compiler's annotated
// assembly (Section III-D): the predicted issue cycle of each instruction
// under the CPE's in-order dual-issue pipeline, from which the per-block
// execution time and the average instruction-level parallelism (avg_ILP,
// the denominator of Eq. 6) follow.
//
// The machine model: instructions issue strictly in program order; in one
// cycle at most one instruction issues on pipeline 0 (compute) and one on
// pipeline 1 (SPM access).  An instruction issues when its pipeline is free
// and all source registers are ready; a register becomes ready
// `latency(class)` cycles after its producer issues.  Divide/sqrt are
// unpipelined and occupy pipeline 0 for their full latency (footnote 1 of
// the paper).  Because the architecture is cache-less, these latencies are
// exact, which is precisely why static modeling works on SW26010.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/block.h"
#include "sw/arch.h"

namespace swperf::isa {

/// Schedule of one standalone execution of a block.
struct BlockSchedule {
  /// Issue cycle of each instruction (index-parallel with block.instrs).
  std::vector<std::uint32_t> issue_cycle;
  /// Cycles from first issue to last retirement.
  std::uint64_t span_cycles = 0;
  /// Instruction-class histogram of the block.
  OpClassCounts counts;

  /// avg_ILP of a single execution: Σ(#t × L_t) / span (Eq. 6 rearranged).
  double avg_ilp(const sw::ArchParams& p) const;
};

/// Schedules one standalone execution of `block`.
BlockSchedule schedule_block(const BasicBlock& block, const sw::ArchParams& p);

/// Timing of a block executed back-to-back `iters` times (an innermost
/// loop).  The scoreboard is replayed iteration by iteration, carrying
/// register-ready state across iterations — so a reduction written as
/// `acc = fadd(acc, x)` serialises exactly as on hardware — until the
/// initiation interval stabilises; the steady state is then extrapolated.
class LoopSchedule {
 public:
  LoopSchedule(const BasicBlock& block, const sw::ArchParams& p);

  /// Total cycles to execute `iters` repetitions (0 for 0 iterations).
  std::uint64_t cycles(std::uint64_t iters) const;

  /// Steady-state initiation interval in cycles.
  std::uint64_t steady_ii() const { return steady_ii_; }

  /// Instruction-class histogram of one iteration.
  const OpClassCounts& counts_per_iter() const { return counts_; }

  /// avg_ILP over `iters` iterations (→ Eq. 6's avg_ILP as iters grows).
  double avg_ilp(const sw::ArchParams& p, std::uint64_t iters) const;

 private:
  /// retire_prefix_[i] = total cycles after i+1 iterations, for the
  /// simulated warm-up iterations.
  std::vector<std::uint64_t> retire_prefix_;
  std::uint64_t steady_ii_ = 0;
  OpClassCounts counts_;
};

}  // namespace swperf::isa
