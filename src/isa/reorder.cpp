#include "isa/reorder.h"

#include <algorithm>
#include <vector>

#include "sw/error.h"

namespace swperf::isa {

namespace {

struct Edge {
  std::uint32_t from;
  bool carries_latency;  // RAW: true; WAW/WAR (order only): false
};

}  // namespace

BasicBlock reorder_for_ilp(const BasicBlock& block, const sw::ArchParams& p) {
  block.validate();
  const std::size_t n = block.instrs.size();
  if (n <= 2) return block;

  // ---- Dependence edges ----------------------------------------------------
  std::vector<std::vector<Edge>> preds(n);
  std::vector<std::vector<std::uint32_t>> succs(n);
  {
    std::vector<std::int32_t> last_writer(
        static_cast<std::size_t>(block.num_regs), -1);
    std::vector<std::vector<std::uint32_t>> readers(
        static_cast<std::size_t>(block.num_regs));
    auto add_edge = [&](std::uint32_t from, std::uint32_t to, bool lat) {
      preds[to].push_back(Edge{from, lat});
      succs[from].push_back(to);
    };
    for (std::uint32_t i = 0; i < n; ++i) {
      const Instr& in = block.instrs[i];
      for (Reg s : in.srcs) {
        if (s == kNoReg) continue;
        const auto w = last_writer[static_cast<std::size_t>(s)];
        if (w >= 0) add_edge(static_cast<std::uint32_t>(w), i, true);  // RAW
        readers[static_cast<std::size_t>(s)].push_back(i);
      }
      if (in.dst != kNoReg) {
        const auto d = static_cast<std::size_t>(in.dst);
        if (last_writer[d] >= 0) {
          add_edge(static_cast<std::uint32_t>(last_writer[d]), i, false);
        }
        for (std::uint32_t r : readers[d]) {
          if (r != i) add_edge(r, i, false);  // WAR
        }
        readers[d].clear();
        last_writer[d] = static_cast<std::int32_t>(i);
      }
    }
  }

  // ---- Criticality: longest latency path to any exit ------------------------
  std::vector<std::uint64_t> height(n, 0);
  for (std::size_t i = n; i-- > 0;) {
    const std::uint64_t lat = latency_of(block.instrs[i].cls, p);
    std::uint64_t h = lat;
    for (std::uint32_t s : succs[i]) {
      h = std::max(h, lat + height[s]);
    }
    height[i] = h;
  }

  // ---- Greedy list scheduling under the dual-issue scoreboard ---------------
  std::vector<std::uint32_t> unscheduled_preds(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    unscheduled_preds[i] = static_cast<std::uint32_t>(preds[i].size());
  }
  std::vector<std::uint64_t> issue(n, 0);
  std::vector<bool> done(n, false);
  std::vector<std::uint32_t> ready;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (unscheduled_preds[i] == 0) ready.push_back(i);
  }

  BasicBlock out;
  out.name = block.name;
  out.lanes = block.lanes;
  out.num_regs = block.num_regs;
  out.instrs.reserve(n);

  std::uint64_t prev_issue = 0;
  std::array<std::uint64_t, 2> pipe_next{0, 0};

  while (!ready.empty()) {
    // Earliest feasible issue per ready instruction.
    std::size_t best = 0;
    std::uint64_t best_issue = ~std::uint64_t{0};
    for (std::size_t k = 0; k < ready.size(); ++k) {
      const std::uint32_t i = ready[k];
      const Instr& in = block.instrs[i];
      std::uint64_t t = std::max(
          prev_issue, pipe_next[static_cast<std::size_t>(pipe_of(in.cls))]);
      for (const Edge& e : preds[i]) {
        const std::uint64_t lat =
            e.carries_latency ? latency_of(block.instrs[e.from].cls, p) : 0;
        t = std::max(t, issue[e.from] + lat);
      }
      const bool better =
          t < best_issue ||
          (t == best_issue &&
           (height[i] > height[ready[best]] ||
            (height[i] == height[ready[best]] && i < ready[best])));
      if (k == 0 || better) {
        best = k;
        best_issue = t;
      }
    }

    const std::uint32_t pick = ready[best];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
    const Instr& in = block.instrs[pick];
    const auto pipe = static_cast<std::size_t>(pipe_of(in.cls));
    issue[pick] = best_issue;
    prev_issue = best_issue;
    pipe_next[pipe] =
        best_issue + (is_unpipelined(in.cls) ? latency_of(in.cls, p) : 1);
    done[pick] = true;
    out.instrs.push_back(in);
    for (std::uint32_t s : succs[pick]) {
      if (--unscheduled_preds[s] == 0) ready.push_back(s);
    }
  }

  SWPERF_ASSERT(out.instrs.size() == n);
  out.validate();
  return out;
}

}  // namespace swperf::isa
