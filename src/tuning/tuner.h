// Static vs. empirical auto-tuning (Section V-D / Table II).
//
// Both tuners pick the best variant of a search space; they differ only in
// how a variant's quality is assessed:
//   * EmpiricalTuner executes every variant ("on hardware" = the
//     discrete-event simulator) — the conventional approach, whose cost is
//     dominated by compiling and running each variant;
//   * StaticTuner evaluates the performance model on each variant's
//     StaticSummary — no executions at all; its cost is the per-variant
//     compilation the static analysis needs (the paper: "its tuning time
//     mostly consists of the compilation time").
//
// Both campaigns are embarrassingly parallel: every variant is an
// independent lowering plus an independent (pure, deterministic)
// evaluation.  TuningOptions::jobs shards the pruned space across a
// work-stealing pool (sw/pool.h); per-variant results land in slots
// indexed by enumeration order and the winner is reduced *serially* with
// the exact argmin/tie-break walk the serial path uses, so any job count
// returns bit-identical best params, best cycles, and explored order
// (pinned by tests/tuning/parallel_tuner_test.cpp).
//
// Evaluations are memoized in a two-level EvalCache: the primary key is a
// content hash of the lowering *inputs* (KernelDesc, LaunchParams,
// ArchParams), so a repeat variant skips swacc::lower() entirely — the
// dominant per-variant cost — with the variant's StaticSummary retained as
// the second-level collision guard.  Repeated campaigns (ablation benches,
// repeated spaces) are served from cache; hit/miss/lowers-skipped counters
// surface in TuningResult::stats.
//
// Tuning time is reported in two currencies:
//   * hardware-equivalent seconds, reconstructing what the campaign would
//     cost on the real machine under an explicit cost model (compile time
//     per variant; per run, a fixed program overhead plus the kernel time
//     times the application's kernel-invocation count) — this is the
//     quantity the paper's Table II "Tuning Time/Savings" columns report;
//   * actual host seconds spent by this process.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "model/model.h"
#include "swacc/kernel.h"
#include "tuning/eval_cache.h"
#include "tuning/space.h"

namespace swperf::tuning {

/// Cost model for hardware-equivalent tuning-time accounting.
struct TuningCosts {
  /// SWACC + native compilation of one variant, seconds.
  double compile_seconds = 20.0;
  /// Empirical repetitions per variant.
  int runs_per_variant = 5;
  /// Fixed per-run cost (job launch, data load/generation), seconds.
  double program_overhead_seconds = 30.0;
  /// Kernel invocations per program run (applications call the kernel in a
  /// convergence/time-step loop).
  std::uint64_t kernel_invocations = 1000;
};

/// Execution knobs of a campaign — orthogonal to what is tuned.
struct TuningOptions {
  /// Worker threads evaluating variants. 1 = serial (the reference
  /// behaviour); 0 = hardware concurrency. Any value returns bit-identical
  /// results.
  int jobs = 1;
  /// Shared memoization cache; nullptr gives the campaign a private one.
  /// Static and empirical tuners memoize different functions, so share a
  /// cache only between campaigns of the same tuner kind.
  std::shared_ptr<EvalCache> cache;
  /// Branch-and-bound cold path (StaticTuner only): evaluate candidates in
  /// ascending order of their admissible analytic lower bound
  /// (tuning/bounds.h) and skip lowering+modeling any variant whose bound
  /// already exceeds the incumbent best beyond the tie window.  Returns
  /// the bit-identical winner of exhaustive enumeration at any `jobs`
  /// (tests/tuning/bnb_tuner_test.cpp); `explored` then lists only the
  /// variants actually evaluated, and TuningStats::bound_pruned counts the
  /// rest.  Ignored by EmpiricalTuner — the bound is proven against the
  /// model's prediction, which the empirical tuner does not minimize.
  bool branch_and_bound = false;
};

/// One explored variant.
struct VariantResult {
  swacc::LaunchParams params;
  double predicted_cycles = 0.0;  // model estimate (static tuner)
  double measured_cycles = 0.0;   // simulated time (empirical tuner, and
                                  // the final validation run of the static
                                  // tuner's pick)
};

/// Campaign execution statistics (memoization + parallelism).
struct TuningStats {
  /// Variant evaluations requested (== variants of the pruned space;
  /// under branch-and-bound, the variants actually evaluated, so
  /// evaluations + bound_pruned == TuningResult::variants).
  std::uint64_t evaluations = 0;
  /// Served from the memoization cache / actually evaluated.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Cache hits served at the pre-lowering level, where swacc::lower()
  /// itself was skipped (always <= cache_hits; equals it once the cache
  /// has seen the same (kernel, params, arch) triples before).
  std::uint64_t lowers_skipped = 0;
  /// Variants the branch-and-bound path skipped because their admissible
  /// lower bound exceeded the incumbent best (0 on the exhaustive path).
  std::uint64_t bound_pruned = 0;
  /// Lowerings served from the skeleton level of the cache: the variant's
  /// code generation (unroll/vectorize/schedule) was reused from another
  /// variant of the campaign, and only tile-dependent work was redone.
  std::uint64_t skeleton_reuses = 0;
  /// Worker threads used.
  unsigned jobs = 1;

  double hit_rate() const {
    return evaluations == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(evaluations);
  }
};

struct TuningResult {
  swacc::LaunchParams best;
  /// Simulated execution time of the chosen variant.
  double best_measured_cycles = 0.0;
  /// Hardware-equivalent campaign cost, seconds.
  double tuning_seconds = 0.0;
  /// Actual host time this tuner took, seconds.
  double host_seconds = 0.0;
  std::size_t variants = 0;
  std::vector<VariantResult> explored;
  TuningStats stats;
};

/// Picks the variant with minimal *model-predicted* time; runs a single
/// validation simulation of the winner so best_measured_cycles is
/// comparable with the empirical tuner.
class StaticTuner {
 public:
  StaticTuner(const sw::ArchParams& arch, TuningCosts costs = {},
              TuningOptions options = {})
      : model_(arch), costs_(costs), options_(std::move(options)) {}

  TuningResult tune(const swacc::KernelDesc& kernel,
                    const SearchSpace& space) const;

 private:
  model::PerfModel model_;
  TuningCosts costs_;
  TuningOptions options_;
};

/// Simulates every variant and picks the fastest.
class EmpiricalTuner {
 public:
  EmpiricalTuner(const sw::ArchParams& arch, TuningCosts costs = {},
                 TuningOptions options = {})
      : arch_(arch), costs_(costs), options_(std::move(options)) {}

  TuningResult tune(const swacc::KernelDesc& kernel,
                    const SearchSpace& space) const;

 private:
  sw::ArchParams arch_;
  TuningCosts costs_;
  TuningOptions options_;
};

}  // namespace swperf::tuning
