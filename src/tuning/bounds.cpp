#include "tuning/bounds.h"

#include <algorithm>
#include <cmath>

#include "isa/vectorize.h"
#include "sw/error.h"
#include "swacc/decompose.h"

namespace swperf::tuning {

namespace {

// Floating-point safety deflation.  Every inequality below is proved in
// exact arithmetic; the computed bound and the computed prediction each
// carry rounding error of at most a few thousand ULPs (the model sums one
// term per DMA request sequentially).  Deflating the bound by 1e-7 —
// orders of magnitude above accumulated rounding, orders of magnitude
// below the tuner's 1% tie resolution — makes `bound(v) <= predict(v)`
// hold as *computed*, not just as proved, so the admissibility tests can
// assert it without tolerance and branch-and-bound stays exact.
constexpr double kFloatSafety = 1.0 - 1e-7;

/// DRAM transactions one chunk of `g` outer elements moves for `a` —
/// exactly swacc's build_request(...).transactions(arch) restricted to
/// one array (lower.cpp emits one segment bag per direction per chunk;
/// transactions() sums count × ⌈bytes/TransSize⌉ over segments, Eq. 5).
/// Monotone non-decreasing in `g` for every access type: contiguous is
/// ⌈g·b/T⌉, strided is g·segs·⌈row/T⌉, block-2D is segs·⌈g·row/T⌉.
std::uint64_t chunk_transactions(const swacc::ArrayRef& a, std::uint64_t g,
                                 const sw::ArchParams& arch) {
  switch (a.access) {
    case swacc::Access::kContiguous:
      return arch.transactions_for(g * a.bytes_per_outer);
    case swacc::Access::kStrided:
      return g * a.segments_per_outer *
             arch.transactions_for(a.bytes_per_outer / a.segments_per_outer);
    case swacc::Access::kBlock2D:
      return a.segments_per_outer *
             arch.transactions_for(g *
                                   (a.bytes_per_outer /
                                    a.segments_per_outer));
    default:
      return 0;
  }
}

/// MRT of the one copy intrinsic lowering emits per direction per chunk
/// of `g` outer elements (the sum over that direction's staged arrays).
std::uint64_t dir_chunk_mrt(const swacc::KernelDesc& k, bool copy_in,
                            std::uint64_t g, const sw::ArchParams& arch) {
  std::uint64_t m = 0;
  for (const auto& a : k.arrays) {
    if (!a.staged()) continue;
    if (copy_in ? !a.copies_in() : !a.copies_out()) continue;
    m += chunk_transactions(a, g, arch);
  }
  return m;
}

}  // namespace

double CycleBound::value() const {
  return std::max(mem_roofline, std::max(dma_latency, compute));
}

BoundEvaluator::BoundEvaluator(const swacc::KernelDesc& kernel,
                               const sw::ArchParams& arch)
    : kernel_(kernel), arch_(arch) {
  kernel_.validate();

  // Per-execution pipe occupancies of the source body.  Loop-overhead
  // instructions collapse under unrolling, so only the real body counts;
  // unpipelined div/sqrt occupy pipeline 0 for their full latency
  // regardless of scheduling (footnote 1 of the paper).
  for (const auto& i : kernel_.body.instrs) {
    if (i.loop_overhead) continue;
    const double occupancy =
        isa::is_unpipelined(i.cls)
            ? static_cast<double>(isa::latency_of(i.cls, arch_))
            : 1.0;
    if (isa::pipe_of(i.cls) == isa::Pipe::kCompute) {
      p0_ += occupancy;
    } else {
      p1_ += occupancy;
    }
  }
  const double max_lanes =
      kernel_.vectorizable ? static_cast<double>(isa::kMaxVectorLanes) : 1.0;
  per_iter_legacy_ = std::max(p0_, p1_) / max_lanes;

  for (const auto& a : kernel_.arrays) {
    bcast_trans_ += arch_.transactions_for(a.access ==
                                                   swacc::Access::kBroadcast
                                               ? a.broadcast_bytes
                                               : 0);
    staged_in_ += (a.staged() && a.copies_in()) ? 1 : 0;
  }
  gpi_ = kernel_.gloads_per_inner_total();
  inner_total_ = static_cast<double>(kernel_.n_outer) *
                 static_cast<double>(kernel_.inner_iters);

  // Coalescing keep-fraction, exactly as emit_compute applies it: only
  // the coalesceable fraction packs, by the ratio of the 32-B Gload limit
  // to this kernel's Gload width (gbytes == 0 packs infinitely, matching
  // the IEEE division in lower).
  const std::uint32_t gbytes =
      std::min(kernel_.gload_bytes_max(), arch_.gload_max_bytes);
  const double pack = static_cast<double>(arch_.gload_max_bytes) /
                      static_cast<double>(gbytes);
  coalesce_keep_ = 1.0 - kernel_.gload_coalesceable +
                   kernel_.gload_coalesceable / std::max(1.0, pack);
}

CycleBound BoundEvaluator::bound(const swacc::LaunchParams& params) const {
  SWPERF_CHECK(params.tile >= 1 && params.unroll >= 1 &&
                   params.requested_cpes >= 1 && params.vector_width >= 1,
               "invalid launch parameters");
  const auto d = swacc::decompose(kernel_.n_outer, params.tile,
                                  params.requested_cpes);
  const double active = static_cast<double>(d.active_cpes);

  // Per-transaction service time at this variant's core-group count —
  // identical to PerfModel::trans_cycles (model.cpp): per-CG service
  // scaled by CG count × cross-section efficiency when more than one CG
  // participates.
  const std::uint32_t cg = d.core_groups_needed(arch_);
  const double tc =
      arch_.trans_service_cycles() /
      (cg > 1 ? static_cast<double>(cg) * arch_.cross_section_bw_efficiency
              : 1.0);
  const double l_base = static_cast<double>(arch_.l_base_cycles);
  const double ddelay = static_cast<double>(arch_.delta_delay_cycles);

  // ---- DMA terms over a conservative request multiset. -------------------
  //
  // The model charges T_DMA = Σ_r max(L_avg_r, L_bw_r) over the *median*
  // CPE's request sequence (lower.cpp picks the median-by-total-MRT CPE as
  // rep_dma; model.cpp skips MRT==0 requests and takes the max per request
  // when bandwidth contention is on — the default the static tuner runs
  // with).  We bound that sum from below with a request multiset every
  // active CPE's sequence pointwise dominates:
  //
  //   * Round-robin dealing gives every active CPE at least
  //     q_min = ⌊#chunks/#active⌋ ≥ 1 chunks, of which at most one (the
  //     globally last chunk) is smaller than the full tile; so per
  //     direction every CPE issues ≥ q_min−1 requests of MRT(full chunk)
  //     and ≥ 1 request of MRT ≥ MRT(tail chunk).
  //   * Per-request MRT is monotone in the chunk size (see
  //     chunk_transactions), so MRT(tail) ≤ MRT(full) ≤ MRT(any chunk).
  //   * The broadcast intrinsic is issued identically by every CPE.
  //
  // Both max-arguments, L_avg(m) = L_base + (m−1)Δ (Eq. 11) and
  // L_bw(m) = #active·m·tc (Eq. 4), increase with m, so summing either one
  // over the dominated multiset can only undershoot the model's
  // Σ max(L_avg, L_bw):
  //
  //   Σ_cons L_bw(m)  ≤ Σ_med max(...) = T_DMA      (the roofline term)
  //   Σ_cons L_avg(m) ≤ Σ_med max(...) = T_DMA      (the latency term)
  //
  // and T_DMA ≤ T_mem ≤ T_total: T_total = T_mem + T_comp − T_overlap −
  // db_saving, with T_overlap ≤ T_comp (Eq. 7 is a min with T_comp) and
  // db_saving ≤ max(0, T_comp − T_overlap) (Eq. 14 as implemented), so
  // T_overlap + db_saving ≤ T_comp and T_total ≥ T_mem.
  double bw = 0.0;   // Σ L_bw over the conservative multiset
  double lat = 0.0;  // Σ L_avg over the conservative multiset
  const auto add_request = [&](std::uint64_t m, double copies) {
    if (m == 0 || copies <= 0.0) return;  // model skips MRT==0 requests
    const double md = static_cast<double>(m);
    bw += copies * (active * md * tc);
    lat += copies * (l_base + (md - 1.0) * ddelay);
  };
  const std::uint64_t q_min = d.n_chunks / d.active_cpes;  // ≥ 1
  const std::uint64_t g_full = d.chunk_size(0);
  const std::uint64_t g_tail = d.chunk_size(d.n_chunks - 1);
  for (int dir = 0; dir < 2; ++dir) {
    const bool copy_in = dir == 0;
    const std::uint64_t m_full = dir_chunk_mrt(kernel_, copy_in, g_full,
                                               arch_);
    const std::uint64_t m_tail = dir_chunk_mrt(kernel_, copy_in, g_tail,
                                               arch_);
    add_request(m_full, static_cast<double>(q_min - 1));
    add_request(std::min(m_tail, m_full), 1.0);
  }
  add_request(bcast_trans_, 1.0);

  // ---- Gload floor, added to both memory terms. --------------------------
  //
  // The model charges T_g = #gloads_busiest × max(L_base, #active·tc)
  // (model.cpp, contended default), where #gloads_busiest is the largest
  // per-CPE Gload count — so T_g ≥ (Σ_launch #gloads / #active) ·
  // max(L_base, #active·tc), i.e. ≥ Σ_launch·tc (bandwidth view) and
  // ≥ (Σ_launch/#active)·L_base (latency view).  Σ_launch is bounded
  // below by replaying emit_compute's arithmetic against its worst-case
  // roundings, one −0.5 slop per llround per chunk:
  //
  //   inner_c = max(1, llround(raw_c · cscale)) ≥ max(1, raw_c(1−imb)−0.5)
  //     ⇒ Σ inner ≥ max(#chunks, inner_total(1−imb) − 0.5·#chunks)
  //       (a sum of per-chunk maxima dominates the max of the sums);
  //   gloads_c = llround(gpi · inner_c · gscale) ≥ gpi(1−imb)·inner_c − 0.5
  //     ⇒ Σ gloads ≥ gpi(1−gload_imb)·Σ inner − 0.5·#chunks;
  //   the dma_min_tile fallback adds exactly g_c·#staged_in ⇒ +n_outer·
  //   #staged_in over the launch;
  //   coalescing keeps max(1, llround(keep·ng_c)) ≥ keep·ng_c − 0.5
  //     ⇒ apply `keep` to the launch total and give back 0.5·#chunks.
  const double n_chunks_d = static_cast<double>(d.n_chunks);
  const double sum_inner = std::max(
      n_chunks_d,
      inner_total_ * (1.0 - kernel_.comp_imbalance) - 0.5 * n_chunks_d);
  double gl = 0.0;
  if (gpi_ > 0.0) {
    gl = std::max(0.0, gpi_ * (1.0 - kernel_.gload_imbalance) * sum_inner -
                           0.5 * n_chunks_d);
  }
  if (params.tile < kernel_.dma_min_tile) {
    gl += static_cast<double>(kernel_.n_outer) * staged_in_;
  }
  if (params.coalesce_gloads && gl > 0.0) {
    gl = std::max(0.0, coalesce_keep_ * gl - 0.5 * n_chunks_d);
  }

  // ---- Compute floor at this variant's actual widening. ------------------
  //
  // The model's T_comp is the busiest CPE's Σ over its chunks of
  // ls_u.cycles(q) + ls_1.cycles(rem) with q·span + rem = inner_c.  The
  // pipeline issues in order, at most one instruction per pipe per cycle,
  // and div/sqrt hold pipe 0 for their full latency, so `iters` executions
  // of a block cost at least iters × (that block's busiest-pipe occupancy).
  // Unrolling duplicates every non-overhead instruction `unroll`× and
  // vectorization keeps the instruction sequence while covering
  // `vector_width` source iterations (vectorize.h), reordering only
  // permutes — so the unrolled block's occupancy is ≥ unroll·max(p0,p1)
  // and cycles(q)+cycles(rem) ≥ inner_c · max(p0,p1)/vector_width.
  // CPE 0 owns ⌈#chunks/#active⌉ chunks — the round-robin maximum — so
  // bounding *its* Σ inner_c (against the same llround/imbalance slop as
  // above) bounds the busiest CPE's, and T_comp ≤ T_total follows from
  // T_total = T_mem + (T_comp − T_overlap − db_saving) with
  // T_overlap ≤ T_DMA_ov + T_g_ov ≤ T_DMA + T_g and
  // db_saving ≤ T_DMA/NG_DMA ≤ T_DMA (Eq. 8/14), hence
  // T_overlap + db_saving ≤ T_mem and T_total ≥ T_comp.
  const double chunks0 = static_cast<double>(
      d.n_chunks / d.active_cpes + (d.n_chunks % d.active_cpes != 0 ? 1 : 0));
  const double elems0 = static_cast<double>(d.elements_of(0));
  const double sum_inner0 = std::max(
      chunks0, elems0 * static_cast<double>(kernel_.inner_iters) *
                       (1.0 - kernel_.comp_imbalance) -
                   0.5 * chunks0);
  const double comp = sum_inner0 * std::max(p0_, p1_) /
                      static_cast<double>(params.vector_width);

  CycleBound b;
  b.mem_roofline = (bw + gl * tc) * kFloatSafety;
  b.dma_latency = (lat + gl / active * l_base) * kFloatSafety;
  b.compute = comp * kFloatSafety;
  return b;
}

double BoundEvaluator::prune_floor(const swacc::LaunchParams& params) const {
  SWPERF_CHECK(params.tile >= 1 && params.unroll >= 1 &&
                   params.requested_cpes >= 1,
               "invalid launch parameters");
  const auto d = swacc::decompose(kernel_.n_outer, params.tile,
                                  params.requested_cpes);

  // ---- Memory floor: every transaction the launch must move. ------------
  std::uint64_t trans = 0;
  const std::uint64_t full_chunks =
      kernel_.n_outer / params.tile;  // chunks of exactly `tile`
  const std::uint64_t tail = kernel_.n_outer % params.tile;
  for (const auto& a : kernel_.arrays) {
    if (!a.staged()) continue;
    std::uint64_t per_dir = full_chunks *
                            chunk_transactions(a, params.tile, arch_);
    if (tail > 0) per_dir += chunk_transactions(a, tail, arch_);
    trans += per_dir * ((a.copies_in() ? 1 : 0) + (a.copies_out() ? 1 : 0));
  }
  // Broadcast arrays: once per active CPE.
  trans += static_cast<std::uint64_t>(d.active_cpes) * bcast_trans_;
  // Gloads: one whole transaction each.
  double gloads = gpi_ * inner_total_;
  if (params.tile < kernel_.dma_min_tile) {
    gloads += static_cast<double>(kernel_.n_outer) * staged_in_;
  }
  const double cg_scale =
      d.core_groups_needed(arch_) > 1
          ? static_cast<double>(d.core_groups_needed(arch_)) *
                arch_.cross_section_bw_efficiency
          : 1.0;
  const double mem_floor =
      (static_cast<double>(trans) + gloads) * arch_.trans_service_cycles() /
      cg_scale;

  // ---- Compute floor: issue-limited cycles of the busiest CPE. -----------
  const double busiest_elems = static_cast<double>(d.elements_of(0));
  const double comp_floor = busiest_elems *
                            static_cast<double>(kernel_.inner_iters) *
                            per_iter_legacy_ * (1.0 - kernel_.comp_imbalance);

  return std::max(mem_floor, comp_floor);
}

}  // namespace swperf::tuning
