// Admissible analytic lower bounds for branch-and-bound static tuning.
//
// `BoundEvaluator::bound()` computes, directly from (KernelDesc,
// LaunchParams, ArchParams) and *without lowering*, a lower bound on the
// cycles the precise model (model/model.cpp, default ModelOptions) would
// predict for the fully lowered variant.  The bound is the max of three
// closed-form terms, each individually a lower bound on the prediction:
//
//   * `mem_roofline` — the Eq. 3/4 bandwidth floor: transactions the
//     variant must move, served at the per-CG transaction service time
//     (the same roofline quantity model/roofline.h charges as `t_cycles`,
//     here per chunk-granularity request rather than per total byte).
//   * `dma_latency`  — the Eq. 11 uncontended floor: every DMA request
//     costs at least L_base + (MRT−1)·Δdelay even on an idle memory
//     system (the regime the sim fast-forward replays analytically).
//   * `compute`      — the issue-limited floor of Eq. 6: the busiest
//     CPE's instructions cannot issue faster than one per pipeline per
//     cycle, scaled by this variant's actual unroll/vectorize factors.
//
// Admissibility (bound ≤ prediction for every variant the checker
// admits) is what makes branch-and-bound exact: a pruned variant provably
// cannot beat the incumbent, so the search returns the bit-identical
// winner of exhaustive enumeration.  Each term's proof lives next to its
// code in bounds.cpp; tests/tuning/bounds_test.cpp checks all of it
// against the real model on random and Table II spaces.
//
// `prune_floor()` is the pre-existing sieve bound of prune.h
// (`variant_lower_bound_cycles`), byte-for-byte, with its per-variant
// invariants hoisted into the evaluator so a campaign computes them once.
#pragma once

#include <cstdint>

#include "sw/arch.h"
#include "swacc/kernel.h"

namespace swperf::tuning {

/// The three admissible terms; the bound itself is their max.
struct CycleBound {
  double mem_roofline = 0.0;  // Eq. 3/4 bandwidth floor (≤ T_mem)
  double dma_latency = 0.0;   // Eq. 11 uncontended latency floor (≤ T_mem)
  double compute = 0.0;       // Eq. 6 issue-limited floor (≤ T_comp)
  double value() const;
};

/// Per-campaign bound evaluator: hoists everything that depends only on
/// (kernel, arch) — pipe occupancies, broadcast transactions, Gload
/// rates, coalescing factors — and evaluates per-variant bounds from
/// those invariants.  Construction validates the kernel once.
class BoundEvaluator {
 public:
  BoundEvaluator(const swacc::KernelDesc& kernel, const sw::ArchParams& arch);

  /// Admissible lower bound on the default-options model prediction of
  /// `params`.  Throws sw::Error on invalid parameters; for parameter
  /// sets the static checker rejects the value is meaningless (the
  /// variant never reaches the model).
  CycleBound bound(const swacc::LaunchParams& params) const;

  /// The legacy prune sieve bound, identical in every bit to
  /// variant_lower_bound_cycles() (prune_test pins its soundness).
  double prune_floor(const swacc::LaunchParams& params) const;

 private:
  swacc::KernelDesc kernel_;
  sw::ArchParams arch_;
  // Hoisted (kernel, arch) invariants.
  double p0_ = 0.0;             // pipeline-0 occupancy per body execution
  double p1_ = 0.0;             // pipeline-1 occupancy per body execution
  double per_iter_legacy_ = 0.0;  // max(p0,p1)/kMaxVectorLanes-or-1
  std::uint64_t bcast_trans_ = 0;  // Σ transactions(broadcast arrays)
  std::uint32_t staged_in_ = 0;    // staged arrays copied in
  double gpi_ = 0.0;               // kernel.gloads_per_inner_total()
  double inner_total_ = 0.0;       // n_outer × inner_iters, as double
  double coalesce_keep_ = 1.0;     // Gload fraction surviving coalescing
};

}  // namespace swperf::tuning
