// Search-space pruning for the auto-tuners.
//
// The paper positions pruning methods [13-16] as orthogonal to the
// static-vs-empirical assessment question: "they can benefit both the
// static and dynamic methods".  This module provides a model-derived
// pruner: each variant gets a cheap closed-form *lower bound* — the
// greater of its DRAM bandwidth floor (every transaction it must move)
// and its issue/ILP-limited compute floor — computable without lowering
// or compiling.  Variants whose lower bound already exceeds the best
// lower bound by `slack` cannot win and are dropped before either tuner
// spends a compilation on them.
//
// Soundness invariant (tested): the bound never exceeds the precise
// model's prediction or the simulated time of the same variant, so
// pruning with slack >= 1 never discards the true optimum.
#pragma once

#include <cstdint>
#include <vector>

#include "sw/arch.h"
#include "swacc/kernel.h"

namespace swperf::tuning {

/// Closed-form lower bound on the execution time of `kernel` under
/// `params`, in cycles. Throws sw::Error on invalid parameters.
double variant_lower_bound_cycles(const swacc::KernelDesc& kernel,
                                  const swacc::LaunchParams& params,
                                  const sw::ArchParams& arch);

struct PruneStats {
  std::size_t considered = 0;
  std::size_t kept = 0;
  /// Variants rejected by the static checker (error-severity findings,
  /// e.g. SPM overflow) before any bound was computed.
  std::size_t illegal = 0;
  /// Legal variants dropped by the lower-bound sieve (so
  /// pruned() == illegal + bound_pruned).
  std::size_t bound_pruned = 0;
  std::size_t pruned() const { return considered - kept; }
};

/// Filters `variants` in two stages: first drops every variant whose
/// legality facts say the launch is illegal (analysis::launch_legality —
/// by construction the same verdict swacc::lower() would throw on), then
/// keeps those whose lower bound is within `slack` x the best lower
/// bound. Preserves order. slack >= 1.
std::vector<swacc::LaunchParams> prune_variants(
    const swacc::KernelDesc& kernel,
    const std::vector<swacc::LaunchParams>& variants,
    const sw::ArchParams& arch, double slack = 1.3,
    PruneStats* stats = nullptr);

}  // namespace swperf::tuning
