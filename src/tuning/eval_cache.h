// Memoized variant evaluation for the auto-tuners.
//
// A tuning campaign assesses each variant through a pure function of its
// lowered StaticSummary: the model's prediction (static tuner) or the
// deterministic simulator's cycle count (empirical tuner).  Repeated
// evaluations of an identical summary — across ablation benches, repeated
// campaigns, or overlapping search spaces — therefore always produce the
// identical number, and can be served from a cache.
//
// The cache key is a *content hash* of everything the evaluators may read:
// every field of swacc::StaticSummary, encoded canonically byte-by-byte
// (no padding, doubles by bit pattern), then hashed with SplitMix64 in a
// Merkle–Damgård chain.  The full encoding is kept alongside the hash and
// compared on lookup, so a 64-bit collision can never silently return the
// wrong variant's time (tests/tuning/eval_cache_test.cpp property-tests
// that any field mutation changes the key).
//
// Two key levels exist.  The summary key above requires the variant to be
// *lowered* first — which is exactly the cost a tuning campaign pays per
// variant (the paper: static tuning time "mostly consists of the
// compilation time").  The *pre-lowering* level keys on the lowering
// inputs instead — a canonical encoding of (KernelDesc, LaunchParams,
// ArchParams), see PrelowerKey — so a repeat variant skips swacc::lower()
// entirely (get_or_lower_eval, counted in lowers_skipped).  Lowering is a
// pure function of those inputs, and the summary key is retained
// underneath as the collision guard: a first-seen prekey still lowers and
// probes by summary before evaluating.
//
// Thread safety: lookups and inserts take a shard mutex (16 shards by key
// hash), so concurrent workers of the parallel tuner share one cache
// race-free.  Counters satisfy hits + misses == evaluations.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "swacc/kernel.h"
#include "swacc/summary.h"

namespace swperf::swacc {
struct LoweredSkeleton;  // swacc/skeleton.h; stored via shared_ptr only
}

namespace swperf::tuning {

/// Canonical byte encoding of a summary: equal encodings <=> the
/// evaluators cannot distinguish the variants.
std::string encode_summary(const swacc::StaticSummary& s);

/// 64-bit content hash of the canonical encoding.
std::uint64_t summary_hash(const swacc::StaticSummary& s);

/// Pre-lowering cache key builder: canonically encodes everything
/// swacc::lower() reads.  The kernel/arch prefix is encoded once per
/// campaign; key(params) appends one variant's LaunchParams.
class PrelowerKey {
 public:
  PrelowerKey(const swacc::KernelDesc& kernel, const sw::ArchParams& arch);

  /// Full key for one variant: prefix + canonical LaunchParams bytes.
  std::string key(const swacc::LaunchParams& params) const;

  /// Key of the variant's code-generation skeleton: prefix + only the
  /// parameters swacc::build_skeleton() reads (unroll, vector_width).
  /// Variants differing in tile/CPEs/double-buffer/coalescing map to the
  /// same skeleton key and share one swacc::LoweredSkeleton.
  std::string skeleton_key(const swacc::LaunchParams& params) const;

 private:
  std::string prefix_;
};

/// One-shot convenience over PrelowerKey (pipeline::Session's memo key).
std::string prelower_key(const swacc::KernelDesc& kernel,
                         const swacc::LaunchParams& params,
                         const sw::ArchParams& arch);

/// One-shot convenience over PrelowerKey::skeleton_key.
std::string skeleton_key(const swacc::KernelDesc& kernel,
                         const swacc::LaunchParams& params,
                         const sw::ArchParams& arch);

/// Cache hit/miss counters (also surfaced in TuningStats).
struct EvalCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Hits served at the pre-lowering level: swacc::lower() never ran.
  /// Always <= hits.
  std::uint64_t lowers_skipped = 0;
  /// Skeleton-level probes (the tile-independent codegen artifact shared
  /// by variants that differ only in tile/CPEs/double-buffer/coalescing):
  /// a hit reused a stored swacc::LoweredSkeleton, a miss built one.  Not
  /// part of evaluations() — skeletons are an input to lowering, not an
  /// evaluated cost.
  std::uint64_t skeleton_hits = 0;
  std::uint64_t skeleton_misses = 0;
  std::uint64_t evaluations() const { return hits + misses; }
  double hit_rate() const {
    const std::uint64_t n = evaluations();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

/// Sharded, thread-safe map from summary content to an evaluated cost in
/// cycles. One instance may be shared across tuners and campaigns; static
/// and empirical evaluations must use *separate* caches (they memoize
/// different functions of the same summary).
class EvalCache {
 public:
  /// Returns the memoized value for `s`, or runs `eval()` and stores its
  /// result. `eval` must be a pure function of `s`'s content.
  template <typename Fn>
  double get_or_eval(const swacc::StaticSummary& s, Fn&& eval) {
    std::string key = encode_summary(s);
    const std::uint64_t h = hash_bytes(key);
    {
      Shard& shard = shard_of(h);
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        ++shard.hits;
        return it->second;
      }
    }
    // Evaluate outside the lock: simulations are many orders of magnitude
    // slower than a map probe, and stalling sibling workers on the shard
    // mutex would serialize the campaign.
    const double value = eval();
    Shard& shard = shard_of(h);
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.misses;  // counted even if another worker raced us to insert:
                     // this thread did pay for an evaluation
    shard.map.emplace(std::move(key), value);
    return value;
  }

  /// Two-level memoized evaluation.  `prekey` is the variant's
  /// PrelowerKey::key(); `lower` is invoked only when the prekey is
  /// unseen, must return something dereferenceable to the lowered
  /// artifact (e.g. shared_ptr<const swacc::LoweredKernel>), and its
  /// result is probed by summary (the collision guard / cross-campaign
  /// level) before `eval(*lowered)` runs.  A prekey hit counts as a hit
  /// *and* a skipped lowering.
  template <typename LowerFn, typename EvalFn>
  double get_or_lower_eval(std::string prekey, LowerFn&& lower,
                           EvalFn&& eval) {
    const std::uint64_t ph = hash_bytes(prekey);
    {
      Shard& shard = shard_of(ph);
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.pre.find(prekey);
      if (it != shard.pre.end()) {
        ++shard.hits;
        ++shard.lowers_skipped;
        return it->second;
      }
    }

    decltype(auto) lowered = lower();
    std::string key = encode_summary((*lowered).summary);
    const std::uint64_t h = hash_bytes(key);
    bool have = false;
    double value = 0.0;
    {
      Shard& shard = shard_of(h);
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        ++shard.hits;
        have = true;
        value = it->second;
      }
    }
    if (!have) {
      // Evaluate outside any lock, exactly like get_or_eval.
      value = eval(*lowered);
      Shard& shard = shard_of(h);
      std::lock_guard<std::mutex> lock(shard.mu);
      ++shard.misses;
      shard.map.emplace(std::move(key), value);
    }
    {
      // Bind the prekey so the next identical variant skips lowering.
      Shard& shard = shard_of(ph);
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.pre.emplace(std::move(prekey), value);
    }
    return value;
  }

  /// Returns the stored code-generation skeleton for `key` (a
  /// PrelowerKey::skeleton_key), or runs `build()` — which must return a
  /// shared_ptr<const swacc::LoweredSkeleton> — and stores its result.
  /// Concurrent first-seen callers may both build (the build runs outside
  /// the shard lock, like evaluations); the first insert wins and every
  /// caller observes that stored skeleton, so sharing stays safe.
  template <typename BuildFn>
  std::shared_ptr<const swacc::LoweredSkeleton> get_or_build_skeleton(
      std::string key, BuildFn&& build) {
    const std::uint64_t h = hash_bytes(key);
    {
      Shard& shard = shard_of(h);
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.skel.find(key);
      if (it != shard.skel.end()) {
        ++shard.skeleton_hits;
        return it->second;
      }
    }
    std::shared_ptr<const swacc::LoweredSkeleton> built = build();
    Shard& shard = shard_of(h);
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.skeleton_misses;  // this thread did pay for codegen
    auto [it, inserted] = shard.skel.emplace(std::move(key), std::move(built));
    (void)inserted;  // on a race, return the winning entry, drop ours
    return it->second;
  }

  /// True and the value if `s` is already cached (does not count as an
  /// evaluation).
  bool peek(const swacc::StaticSummary& s, double* value) const;

  /// Aggregated counters over all shards.
  EvalCacheStats stats() const;
  /// Distinct summaries stored.
  std::size_t size() const;
  /// Distinct pre-lowering keys bound.
  std::size_t prelower_size() const;
  /// Distinct code-generation skeletons stored.
  std::size_t skeleton_size() const;
  /// Drops all entries and zeroes the counters.
  void clear();

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, double> map;  // summary level
    std::unordered_map<std::string, double> pre;  // pre-lowering level
    std::unordered_map<std::string,
                       std::shared_ptr<const swacc::LoweredSkeleton>>
        skel;  // skeleton level
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t lowers_skipped = 0;
    std::uint64_t skeleton_hits = 0;
    std::uint64_t skeleton_misses = 0;
  };

  static std::uint64_t hash_bytes(const std::string& bytes);
  Shard& shard_of(std::uint64_t h) { return shards_[h % kShards]; }
  const Shard& shard_of(std::uint64_t h) const { return shards_[h % kShards]; }

  Shard shards_[kShards];
};

}  // namespace swperf::tuning
