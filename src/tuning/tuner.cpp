#include "tuning/tuner.h"

#include <chrono>
#include <tuple>
#include <limits>

#include "sim/machine.h"
#include "sw/error.h"
#include "swacc/lower.h"

namespace swperf::tuning {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double run_seconds(double kernel_cycles, const sw::ArchParams& arch,
                   const TuningCosts& costs) {
  return costs.program_overhead_seconds +
         static_cast<double>(costs.kernel_invocations) *
             sw::cycles_to_seconds(kernel_cycles, arch.freq_ghz);
}

}  // namespace

TuningResult StaticTuner::tune(const swacc::KernelDesc& kernel,
                               const SearchSpace& space) const {
  const double t0 = now_seconds();
  const auto variants = space.enumerate(kernel, model_.arch());

  TuningResult r;
  double best_pred = std::numeric_limits<double>::infinity();
  for (const auto& params : variants) {
    const auto lowered = swacc::lower(kernel, params, model_.arch());
    const double pred = model_.predict(lowered.summary).t_total;
    r.explored.push_back(VariantResult{params, pred, 0.0});
    best_pred = std::min(best_pred, pred);
  }
  r.variants = variants.size();

  // Variants within the model's resolution (1%) of the optimum are tied:
  // in fully-overlapped launches (Scenario 2) T_total collapses to T_mem,
  // which many tile/unroll pairs share exactly.  Break ties by the paper's
  // own secondary analyses: smaller copy granularity (Eq. 13: more
  // requests, more overlap headroom), then deeper unrolling (never hurts a
  // bandwidth-bound launch), then no double buffering (saves SPM).
  constexpr double kResolution = 1.01;
  bool first = true;
  for (const auto& v : r.explored) {
    if (v.predicted_cycles > best_pred * kResolution) continue;
    if (first) {
      r.best = v.params;
      first = false;
      continue;
    }
    const auto& b = r.best;
    const auto rank = [](const swacc::LaunchParams& p) {
      return std::make_tuple(p.tile, ~p.vector_width, ~p.unroll,
                             p.double_buffer);
    };
    if (rank(v.params) < rank(b)) r.best = v.params;
  }
  // The static analysis needs each variant compiled (for the annotated
  // assembly) but never run.
  r.tuning_seconds =
      static_cast<double>(r.variants) * costs_.compile_seconds;

  // One validation run of the winner, so quality is comparable.
  const auto lowered = swacc::lower(kernel, r.best, model_.arch());
  r.best_measured_cycles =
      sim::simulate(lowered.sim_config, lowered.binary, lowered.programs)
          .total_cycles();
  r.host_seconds = now_seconds() - t0;
  return r;
}

TuningResult EmpiricalTuner::tune(const swacc::KernelDesc& kernel,
                                  const SearchSpace& space) const {
  const double t0 = now_seconds();
  const auto variants = space.enumerate(kernel, arch_);

  TuningResult r;
  double best_measured = std::numeric_limits<double>::infinity();
  for (const auto& params : variants) {
    const auto lowered = swacc::lower(kernel, params, arch_);
    const double cycles =
        sim::simulate(lowered.sim_config, lowered.binary, lowered.programs)
            .total_cycles();
    r.explored.push_back(VariantResult{params, 0.0, cycles});
    r.tuning_seconds += costs_.compile_seconds +
                        costs_.runs_per_variant *
                            run_seconds(cycles, arch_, costs_);
    if (cycles < best_measured) {
      best_measured = cycles;
      r.best = params;
    }
  }
  r.variants = variants.size();
  r.best_measured_cycles = best_measured;
  r.host_seconds = now_seconds() - t0;
  return r;
}

}  // namespace swperf::tuning
