#include "tuning/tuner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <numeric>
#include <tuple>
#include <utility>

#include "sim/machine.h"
#include "sw/error.h"
#include "sw/pool.h"
#include "swacc/lower.h"
#include "swacc/skeleton.h"
#include "tuning/bounds.h"

namespace swperf::tuning {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double run_seconds(double kernel_cycles, const sw::ArchParams& arch,
                   const TuningCosts& costs) {
  return costs.program_overhead_seconds +
         static_cast<double>(costs.kernel_invocations) *
             sw::cycles_to_seconds(kernel_cycles, arch.freq_ghz);
}

/// Upper bound on lowered artifacts kept alive for the winner-validation
/// reuse: beyond this, holding every variant's programs would dwarf the
/// cost of re-lowering one winner.
constexpr std::size_t kMaxStashedArtifacts = 1024;

/// Memoized evaluation of one variant through the cache's three levels:
/// prekey (skip everything), skeleton (skip code generation — variants of
/// one campaign differing only in tile/CPEs/double-buffer share the
/// unroll×vectorize×schedule artifact), summary (skip the evaluation).
/// When `artifact` is non-null and the variant was actually lowered, the
/// lowered kernel is parked there for the caller to reuse.
template <typename Eval>
double evaluate_one(
    const swacc::KernelDesc& kernel, const swacc::LaunchParams& v,
    const sw::ArchParams& arch, EvalCache& cache, const PrelowerKey& prekey,
    const Eval& eval,
    std::shared_ptr<const swacc::LoweredKernel>* artifact) {
  return cache.get_or_lower_eval(
      prekey.key(v),
      [&] {
        const auto skeleton = cache.get_or_build_skeleton(
            prekey.skeleton_key(v), [&] {
              return std::make_shared<const swacc::LoweredSkeleton>(
                  swacc::build_skeleton(kernel, v, arch));
            });
        auto lowered = std::make_shared<const swacc::LoweredKernel>(
            swacc::lower_with_skeleton(kernel, v, arch, *skeleton));
        if (artifact != nullptr) *artifact = lowered;
        return lowered;
      },
      eval);
}

/// Evaluates every variant of `variants` into an index-ordered slot
/// vector: each worker asks the memoization cache for the cost by the
/// variant's pre-lowering key, lowering (its own simulator/model inputs —
/// no shared mutable state) and falling back to `eval` only on a miss.
/// The slot layout makes the result independent of which worker ran which
/// index, so the caller's serial reduction over slots is bit-identical at
/// any job count.  When `artifacts` is non-null, each variant actually
/// lowered parks its artifact in the matching slot (prekey hits leave it
/// null) for the caller to reuse.
template <typename Eval>
std::vector<double> evaluate_variants(
    const std::vector<swacc::LaunchParams>& variants,
    const swacc::KernelDesc& kernel, const sw::ArchParams& arch,
    EvalCache& cache, int jobs, const Eval& eval,
    std::vector<std::shared_ptr<const swacc::LoweredKernel>>* artifacts =
        nullptr) {
  std::vector<double> slots(variants.size(), 0.0);
  if (artifacts != nullptr) artifacts->assign(variants.size(), nullptr);
  const PrelowerKey prekey(kernel, arch);
  sw::parallel_for(
      variants.size(), jobs, [&](std::uint64_t i) {
        slots[i] = evaluate_one(kernel, variants[i], arch, cache, prekey,
                                eval,
                                artifacts != nullptr ? &(*artifacts)[i]
                                                     : nullptr);
      });
  return slots;
}

/// Cache bookkeeping around one campaign: the cache may be shared across
/// campaigns, so per-campaign hit/miss counts are deltas.
struct CampaignCache {
  explicit CampaignCache(const TuningOptions& options)
      : owned(options.cache ? nullptr : std::make_shared<EvalCache>()),
        cache(options.cache ? options.cache.get() : owned.get()),
        before(cache->stats()) {}

  TuningStats finish(std::size_t evaluations, int jobs) const {
    const EvalCacheStats after = cache->stats();
    TuningStats s;
    s.evaluations = evaluations;
    s.cache_hits = after.hits - before.hits;
    s.cache_misses = after.misses - before.misses;
    s.lowers_skipped = after.lowers_skipped - before.lowers_skipped;
    s.skeleton_reuses = after.skeleton_hits - before.skeleton_hits;
    s.jobs = sw::resolve_jobs(jobs);
    return s;
  }

  std::shared_ptr<EvalCache> owned;
  EvalCache* cache;
  EvalCacheStats before;
};

/// The model's resolution: predictions within 1% of the optimum are tied.
/// Shared by the winner tie-break walk and the branch-and-bound cut — a
/// variant whose *lower bound* already exceeds incumbent × kResolution
/// cannot enter the tie window, let alone win.
constexpr double kResolution = 1.01;

/// Candidates evaluated per branch-and-bound round.  A fixed,
/// jobs-independent batch: the incumbent is only published between rounds,
/// so the set of evaluated variants — and with it every reported number —
/// is a pure function of the bounds, not of worker timing.
constexpr std::size_t kBnbBatch = 8;

/// The winner walk shared by the exhaustive and branch-and-bound static
/// paths, over `explored` in enumeration order.
///
/// Variants within the model's resolution (1%) of the optimum are tied:
/// in fully-overlapped launches (Scenario 2) T_total collapses to T_mem,
/// which many tile/unroll pairs share exactly.  Break ties by the paper's
/// own secondary analyses: smaller copy granularity (Eq. 13: more
/// requests, more overlap headroom), then deeper unrolling (never hurts a
/// bandwidth-bound launch), then no double buffering (saves SPM).
std::size_t select_best(const std::vector<VariantResult>& explored,
                        double best_pred) {
  std::size_t best_i = 0;
  bool first = true;
  const auto rank = [](const swacc::LaunchParams& p) {
    return std::make_tuple(p.tile, ~p.vector_width, ~p.unroll,
                           p.double_buffer);
  };
  for (std::size_t i = 0; i < explored.size(); ++i) {
    const auto& v = explored[i];
    if (v.predicted_cycles > best_pred * kResolution) continue;
    if (first) {
      best_i = i;
      first = false;
      continue;
    }
    if (rank(v.params) < rank(explored[best_i].params)) best_i = i;
  }
  return best_i;
}

}  // namespace

TuningResult StaticTuner::tune(const swacc::KernelDesc& kernel,
                               const SearchSpace& space) const {
  const double t0 = now_seconds();
  const auto variants = space.enumerate(kernel, model_.arch());

  CampaignCache cc(options_);
  std::vector<std::shared_ptr<const swacc::LoweredKernel>> artifacts;
  const bool stash = variants.size() <= kMaxStashedArtifacts;
  const auto eval = [this](const swacc::LoweredKernel& lowered) {
    return model_.predict(lowered.summary).t_total;
  };

  std::vector<double> predictions;
  std::vector<char> evaluated;  // slot i: was variants[i] fully evaluated?
  std::uint64_t bound_pruned = 0;
  if (!options_.branch_and_bound) {
    predictions =
        evaluate_variants(variants, kernel, model_.arch(), *cc.cache,
                          options_.jobs, eval, stash ? &artifacts : nullptr);
    evaluated.assign(variants.size(), 1);
  } else {
    // Branch-and-bound over the enumerated space.  Why the winner is
    // bit-identical to exhaustive enumeration:
    //   * a variant is skipped only when bound > incumbent × kResolution
    //     at its round, and the incumbent (a min over evaluated
    //     predictions) never increases, so for every pruned v:
    //     prediction(v) ≥ bound(v) > best_pred × kResolution — outside the
    //     tie window of select_best and not the argmin;
    //   * therefore the evaluated subset contains the exhaustive walk's
    //     whole tie window, best_pred is the exhaustive minimum, and the
    //     same enumeration-order walk picks the same winner;
    //   * determinism at any --jobs: candidates are processed in fixed
    //     rounds of kBnbBatch in ascending-(bound, index) order, and the
    //     incumbent is published only between rounds — workers share it
    //     through an atomic (re-checked at dequeue) but all loads of one
    //     round observe the same value, so the pruned set is a pure
    //     function of the bounds.
    const BoundEvaluator bounds_eval(kernel, model_.arch());
    std::vector<double> bnd(variants.size());
    for (std::size_t i = 0; i < variants.size(); ++i) {
      bnd[i] = bounds_eval.bound(variants[i]).value();
    }
    std::vector<std::size_t> order(variants.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return bnd[a] != bnd[b] ? bnd[a] < bnd[b] : a < b;
              });

    predictions.assign(variants.size(), 0.0);
    evaluated.assign(variants.size(), 0);
    if (stash) artifacts.assign(variants.size(), nullptr);
    const PrelowerKey prekey(kernel, model_.arch());
    std::atomic<double> incumbent{std::numeric_limits<double>::infinity()};
    for (std::size_t pos = 0; pos < order.size();) {
      const std::size_t end = std::min(pos + kBnbBatch, order.size());
      const double cut =
          incumbent.load(std::memory_order_acquire) * kResolution;
      if (bnd[order[pos]] > cut) {
        // Bounds are sorted: once the round's best candidate is pruned,
        // the whole remaining tail is.
        bound_pruned += order.size() - pos;
        break;
      }
      sw::parallel_for(end - pos, options_.jobs, [&](std::uint64_t k) {
        const std::size_t i = order[pos + k];
        // Dequeue-time re-check against the shared incumbent; constant
        // within the round, so this cannot depend on worker interleaving.
        if (bnd[i] > incumbent.load(std::memory_order_acquire) * kResolution) {
          return;
        }
        predictions[i] =
            evaluate_one(kernel, variants[i], model_.arch(), *cc.cache,
                         prekey, eval, stash ? &artifacts[i] : nullptr);
        evaluated[i] = 1;
      });
      double inc = incumbent.load(std::memory_order_relaxed);
      for (std::size_t k = pos; k < end; ++k) {
        const std::size_t i = order[k];
        if (evaluated[i] != 0) {
          inc = std::min(inc, predictions[i]);
        } else {
          ++bound_pruned;
        }
      }
      incumbent.store(inc, std::memory_order_release);
      pos = end;
    }
  }

  TuningResult r;
  r.variants = variants.size();
  r.explored.reserve(variants.size());
  std::vector<std::size_t> explored_idx;  // explored pos -> variant index
  explored_idx.reserve(variants.size());
  double best_pred = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < variants.size(); ++i) {
    if (evaluated[i] == 0) continue;
    r.explored.emplace_back(variants[i], predictions[i], 0.0);
    explored_idx.push_back(i);
    best_pred = std::min(best_pred, predictions[i]);
  }

  const std::size_t best_e = select_best(r.explored, best_pred);
  r.best = r.explored[best_e].params;
  const std::size_t best_i = explored_idx[best_e];
  // The static analysis needs each evaluated variant compiled (for the
  // annotated assembly) but never run; pruned variants cost nothing.
  r.tuning_seconds =
      static_cast<double>(r.explored.size()) * costs_.compile_seconds;

  // One validation run of the winner, so quality is comparable.  Reuse the
  // artifact lowered during evaluation; a warm cache skipped that
  // lowering, so redo just the winner's.
  std::shared_ptr<const swacc::LoweredKernel> winner =
      stash && best_i < artifacts.size() ? artifacts[best_i] : nullptr;
  if (winner == nullptr) {
    winner = std::make_shared<const swacc::LoweredKernel>(
        swacc::lower(kernel, r.best, model_.arch()));
  }
  r.best_measured_cycles =
      sim::simulate(winner->sim_config, winner->binary, winner->programs)
          .total_cycles();
  r.stats = cc.finish(r.explored.size(), options_.jobs);
  r.stats.bound_pruned = bound_pruned;
  r.host_seconds = now_seconds() - t0;
  return r;
}

TuningResult EmpiricalTuner::tune(const swacc::KernelDesc& kernel,
                                  const SearchSpace& space) const {
  const double t0 = now_seconds();
  const auto variants = space.enumerate(kernel, arch_);

  CampaignCache cc(options_);
  const auto measured = evaluate_variants(
      variants, kernel, arch_, *cc.cache, options_.jobs,
      [](const swacc::LoweredKernel& lowered) {
        return sim::simulate(lowered.sim_config, lowered.binary,
                             lowered.programs)
            .total_cycles();
      });

  // Serial reduction in enumeration order: the strict-< argmin and the
  // left-to-right tuning_seconds accumulation reproduce the serial
  // tuner's float-addition order exactly.
  TuningResult r;
  r.explored.reserve(variants.size());
  double best_measured = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const double cycles = measured[i];
    r.explored.emplace_back(variants[i], 0.0, cycles);
    r.tuning_seconds += costs_.compile_seconds +
                        costs_.runs_per_variant *
                            run_seconds(cycles, arch_, costs_);
    if (cycles < best_measured) {
      best_measured = cycles;
      r.best = variants[i];
    }
  }
  r.variants = variants.size();
  r.best_measured_cycles = best_measured;
  r.stats = cc.finish(r.variants, options_.jobs);
  r.host_seconds = now_seconds() - t0;
  return r;
}

}  // namespace swperf::tuning
