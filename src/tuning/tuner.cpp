#include "tuning/tuner.h"

#include <chrono>
#include <limits>
#include <tuple>
#include <utility>

#include "sim/machine.h"
#include "sw/error.h"
#include "sw/pool.h"
#include "swacc/lower.h"

namespace swperf::tuning {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double run_seconds(double kernel_cycles, const sw::ArchParams& arch,
                   const TuningCosts& costs) {
  return costs.program_overhead_seconds +
         static_cast<double>(costs.kernel_invocations) *
             sw::cycles_to_seconds(kernel_cycles, arch.freq_ghz);
}

/// Upper bound on lowered artifacts kept alive for the winner-validation
/// reuse: beyond this, holding every variant's programs would dwarf the
/// cost of re-lowering one winner.
constexpr std::size_t kMaxStashedArtifacts = 1024;

/// Evaluates every variant of `variants` into an index-ordered slot
/// vector: each worker asks the memoization cache for the cost by the
/// variant's pre-lowering key, lowering (its own simulator/model inputs —
/// no shared mutable state) and falling back to `eval` only on a miss.
/// The slot layout makes the result independent of which worker ran which
/// index, so the caller's serial reduction over slots is bit-identical at
/// any job count.  When `artifacts` is non-null, each variant actually
/// lowered parks its artifact in the matching slot (prekey hits leave it
/// null) for the caller to reuse.
template <typename Eval>
std::vector<double> evaluate_variants(
    const std::vector<swacc::LaunchParams>& variants,
    const swacc::KernelDesc& kernel, const sw::ArchParams& arch,
    EvalCache& cache, int jobs, const Eval& eval,
    std::vector<std::shared_ptr<const swacc::LoweredKernel>>* artifacts =
        nullptr) {
  std::vector<double> slots(variants.size(), 0.0);
  if (artifacts != nullptr) artifacts->assign(variants.size(), nullptr);
  const PrelowerKey prekey(kernel, arch);
  sw::parallel_for(
      variants.size(), jobs, [&](std::uint64_t i) {
        slots[i] = cache.get_or_lower_eval(
            prekey.key(variants[i]),
            [&] {
              auto lowered = std::make_shared<const swacc::LoweredKernel>(
                  swacc::lower(kernel, variants[i], arch));
              if (artifacts != nullptr) (*artifacts)[i] = lowered;
              return lowered;
            },
            eval);
      });
  return slots;
}

/// Cache bookkeeping around one campaign: the cache may be shared across
/// campaigns, so per-campaign hit/miss counts are deltas.
struct CampaignCache {
  explicit CampaignCache(const TuningOptions& options)
      : owned(options.cache ? nullptr : std::make_shared<EvalCache>()),
        cache(options.cache ? options.cache.get() : owned.get()),
        before(cache->stats()) {}

  TuningStats finish(std::size_t variants, int jobs) const {
    const EvalCacheStats after = cache->stats();
    TuningStats s;
    s.evaluations = variants;
    s.cache_hits = after.hits - before.hits;
    s.cache_misses = after.misses - before.misses;
    s.lowers_skipped = after.lowers_skipped - before.lowers_skipped;
    s.jobs = sw::resolve_jobs(jobs);
    return s;
  }

  std::shared_ptr<EvalCache> owned;
  EvalCache* cache;
  EvalCacheStats before;
};

}  // namespace

TuningResult StaticTuner::tune(const swacc::KernelDesc& kernel,
                               const SearchSpace& space) const {
  const double t0 = now_seconds();
  const auto variants = space.enumerate(kernel, model_.arch());

  CampaignCache cc(options_);
  std::vector<std::shared_ptr<const swacc::LoweredKernel>> artifacts;
  const bool stash = variants.size() <= kMaxStashedArtifacts;
  const auto predictions = evaluate_variants(
      variants, kernel, model_.arch(), *cc.cache, options_.jobs,
      [this](const swacc::LoweredKernel& lowered) {
        return model_.predict(lowered.summary).t_total;
      },
      stash ? &artifacts : nullptr);

  TuningResult r;
  r.explored.reserve(variants.size());
  double best_pred = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < variants.size(); ++i) {
    r.explored.emplace_back(variants[i], predictions[i], 0.0);
    best_pred = std::min(best_pred, predictions[i]);
  }
  r.variants = variants.size();

  // Variants within the model's resolution (1%) of the optimum are tied:
  // in fully-overlapped launches (Scenario 2) T_total collapses to T_mem,
  // which many tile/unroll pairs share exactly.  Break ties by the paper's
  // own secondary analyses: smaller copy granularity (Eq. 13: more
  // requests, more overlap headroom), then deeper unrolling (never hurts a
  // bandwidth-bound launch), then no double buffering (saves SPM).
  constexpr double kResolution = 1.01;
  std::size_t best_i = 0;
  bool first = true;
  for (std::size_t i = 0; i < r.explored.size(); ++i) {
    const auto& v = r.explored[i];
    if (v.predicted_cycles > best_pred * kResolution) continue;
    if (first) {
      r.best = v.params;
      best_i = i;
      first = false;
      continue;
    }
    const auto& b = r.best;
    const auto rank = [](const swacc::LaunchParams& p) {
      return std::make_tuple(p.tile, ~p.vector_width, ~p.unroll,
                             p.double_buffer);
    };
    if (rank(v.params) < rank(b)) {
      r.best = v.params;
      best_i = i;
    }
  }
  // The static analysis needs each variant compiled (for the annotated
  // assembly) but never run.
  r.tuning_seconds =
      static_cast<double>(r.variants) * costs_.compile_seconds;

  // One validation run of the winner, so quality is comparable.  Reuse the
  // artifact lowered during evaluation; a warm cache skipped that
  // lowering, so redo just the winner's.
  std::shared_ptr<const swacc::LoweredKernel> winner =
      stash && best_i < artifacts.size() ? artifacts[best_i] : nullptr;
  if (winner == nullptr) {
    winner = std::make_shared<const swacc::LoweredKernel>(
        swacc::lower(kernel, r.best, model_.arch()));
  }
  r.best_measured_cycles =
      sim::simulate(winner->sim_config, winner->binary, winner->programs)
          .total_cycles();
  r.stats = cc.finish(r.variants, options_.jobs);
  r.host_seconds = now_seconds() - t0;
  return r;
}

TuningResult EmpiricalTuner::tune(const swacc::KernelDesc& kernel,
                                  const SearchSpace& space) const {
  const double t0 = now_seconds();
  const auto variants = space.enumerate(kernel, arch_);

  CampaignCache cc(options_);
  const auto measured = evaluate_variants(
      variants, kernel, arch_, *cc.cache, options_.jobs,
      [](const swacc::LoweredKernel& lowered) {
        return sim::simulate(lowered.sim_config, lowered.binary,
                             lowered.programs)
            .total_cycles();
      });

  // Serial reduction in enumeration order: the strict-< argmin and the
  // left-to-right tuning_seconds accumulation reproduce the serial
  // tuner's float-addition order exactly.
  TuningResult r;
  r.explored.reserve(variants.size());
  double best_measured = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const double cycles = measured[i];
    r.explored.emplace_back(variants[i], 0.0, cycles);
    r.tuning_seconds += costs_.compile_seconds +
                        costs_.runs_per_variant *
                            run_seconds(cycles, arch_, costs_);
    if (cycles < best_measured) {
      best_measured = cycles;
      r.best = variants[i];
    }
  }
  r.variants = variants.size();
  r.best_measured_cycles = best_measured;
  r.stats = cc.finish(r.variants, options_.jobs);
  r.host_seconds = now_seconds() - t0;
  return r;
}

}  // namespace swperf::tuning
