#include "tuning/eval_cache.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <type_traits>

#include "sw/rng.h"

namespace swperf::tuning {

namespace {

/// Append the raw little-endian bytes of a trivially copyable scalar.
template <typename T>
void put(std::string& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

void put_double(std::string& out, double v) {
  // Bit pattern, not value: the key must distinguish -0.0 from 0.0 and be
  // total over NaNs, exactly like the evaluators' arithmetic sees them.
  put(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::string& out, const std::string& s) {
  put(out, static_cast<std::uint64_t>(s.size()));
  out.append(s);
}

void put_params(std::string& out, const swacc::LaunchParams& p) {
  put(out, p.tile);
  put(out, p.unroll);
  put(out, p.requested_cpes);
  put(out, static_cast<std::uint8_t>(p.double_buffer));
  put(out, p.vector_width);
  put(out, static_cast<std::uint8_t>(p.coalesce_gloads));
}

void put_block(std::string& out, const isa::BasicBlock& b) {
  put_str(out, b.name);
  put(out, b.num_regs);
  put(out, b.lanes);
  put(out, static_cast<std::uint64_t>(b.instrs.size()));
  for (const isa::Instr& in : b.instrs) {
    put(out, static_cast<std::uint8_t>(in.cls));
    put(out, in.dst);
    for (const isa::Reg s : in.srcs) put(out, s);
    put(out, static_cast<std::uint8_t>(in.loop_overhead));
  }
}

void put_array(std::string& out, const swacc::ArrayRef& a) {
  put_str(out, a.name);
  put(out, static_cast<std::uint8_t>(a.dir));
  put(out, static_cast<std::uint8_t>(a.access));
  put(out, a.bytes_per_outer);
  put(out, a.segments_per_outer);
  put(out, a.broadcast_bytes);
  put_double(out, a.gloads_per_inner);
  put(out, a.gload_bytes);
}

void put_kernel(std::string& out, const swacc::KernelDesc& k) {
  put_str(out, k.name);
  put(out, k.n_outer);
  put(out, k.inner_iters);
  put_block(out, k.body);
  put(out, static_cast<std::uint64_t>(k.arrays.size()));
  for (const swacc::ArrayRef& a : k.arrays) put_array(out, a);
  put(out, k.dma_min_tile);
  put_double(out, k.gload_coalesceable);
  put(out, static_cast<std::uint8_t>(k.vectorizable));
  put_double(out, k.gload_imbalance);
  put_double(out, k.comp_imbalance);
}

void put_arch(std::string& out, const sw::ArchParams& a) {
  put_double(out, a.mem_bw_gbps);
  put_double(out, a.freq_ghz);
  put(out, a.trans_size_bytes);
  put(out, a.delta_delay_cycles);
  put(out, a.l_base_cycles);
  put(out, a.l_float_cycles);
  put(out, a.l_fixed_cycles);
  put(out, a.l_spm_cycles);
  put(out, a.l_div_sqrt_cycles);
  put(out, a.cpes_per_cg);
  put(out, a.core_groups);
  put(out, a.spm_bytes);
  put(out, a.gload_max_bytes);
  put_double(out, a.cross_section_bw_efficiency);
}

std::uint64_t chain_hash(const std::string& bytes) {
  // SplitMix64 as a chained compression function over 8-byte words; the
  // generator's full-avalanche finalizer makes every input bit affect
  // every output bit of each link.
  std::uint64_t h = 0x5357504552465543ULL;  // "SWPERFUC"
  std::size_t i = 0;
  while (i < bytes.size()) {
    std::uint64_t word = 0;
    const std::size_t n = std::min<std::size_t>(8, bytes.size() - i);
    std::memcpy(&word, bytes.data() + i, n);
    i += n;
    h = sw::SplitMix64(h ^ word).next();
  }
  // Fold in the length so trailing zero bytes cannot alias.
  return sw::SplitMix64(h ^ bytes.size()).next();
}

}  // namespace

std::string encode_summary(const swacc::StaticSummary& s) {
  std::string out;
  out.reserve(128 + s.kernel.size() + 8 * s.dma_req_mrt.size());

  put_str(out, s.kernel);

  // LaunchParams, field by field (the struct has padding; memcpy of the
  // whole object would hash indeterminate bytes).
  put_params(out, s.params);

  put(out, s.active_cpes);
  put(out, s.core_groups);
  put(out, static_cast<std::uint8_t>(s.double_buffer));

  put(out, static_cast<std::uint64_t>(s.dma_req_mrt.size()));
  for (const std::uint64_t mrt : s.dma_req_mrt) put(out, mrt);
  put(out, s.n_gloads);

  put_double(out, s.comp_cycles);
  for (const std::uint64_t c : s.inst_counts.counts) put(out, c);

  put(out, s.dma_bytes_requested);
  put(out, s.dma_bytes_transferred);
  put_double(out, s.total_flops);
  return out;
}

std::uint64_t EvalCache::hash_bytes(const std::string& bytes) {
  return chain_hash(bytes);
}

std::uint64_t summary_hash(const swacc::StaticSummary& s) {
  return chain_hash(encode_summary(s));
}

PrelowerKey::PrelowerKey(const swacc::KernelDesc& kernel,
                         const sw::ArchParams& arch) {
  prefix_.reserve(256 + kernel.name.size() + 32 * kernel.body.instrs.size() +
                  64 * kernel.arrays.size());
  put_kernel(prefix_, kernel);
  put_arch(prefix_, arch);
}

std::string PrelowerKey::key(const swacc::LaunchParams& params) const {
  std::string out;
  out.reserve(prefix_.size() + 32);
  out = prefix_;
  put_params(out, params);
  return out;
}

std::string PrelowerKey::skeleton_key(const swacc::LaunchParams& params) const {
  // Only the parameters swacc::build_skeleton() reads; a leading tag keeps
  // the encoding disjoint from key() even though the two live in separate
  // maps.
  std::string out;
  out.reserve(prefix_.size() + 16);
  out = prefix_;
  out.append("skel");
  put(out, params.unroll);
  put(out, params.vector_width);
  return out;
}

std::string prelower_key(const swacc::KernelDesc& kernel,
                         const swacc::LaunchParams& params,
                         const sw::ArchParams& arch) {
  return PrelowerKey(kernel, arch).key(params);
}

std::string skeleton_key(const swacc::KernelDesc& kernel,
                         const swacc::LaunchParams& params,
                         const sw::ArchParams& arch) {
  return PrelowerKey(kernel, arch).skeleton_key(params);
}

bool EvalCache::peek(const swacc::StaticSummary& s, double* value) const {
  const std::string key = encode_summary(s);
  const Shard& shard = shard_of(hash_bytes(key));
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  if (value != nullptr) *value = it->second;
  return true;
}

EvalCacheStats EvalCache::stats() const {
  EvalCacheStats s;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.hits += shard.hits;
    s.misses += shard.misses;
    s.lowers_skipped += shard.lowers_skipped;
    s.skeleton_hits += shard.skeleton_hits;
    s.skeleton_misses += shard.skeleton_misses;
  }
  return s;
}

std::size_t EvalCache::skeleton_size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.skel.size();
  }
  return n;
}

std::size_t EvalCache::prelower_size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.pre.size();
  }
  return n;
}

std::size_t EvalCache::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

void EvalCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.pre.clear();
    shard.skel.clear();
    shard.hits = 0;
    shard.misses = 0;
    shard.lowers_skipped = 0;
    shard.skeleton_hits = 0;
    shard.skeleton_misses = 0;
  }
}

}  // namespace swperf::tuning
