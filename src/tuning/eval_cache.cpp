#include "tuning/eval_cache.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <type_traits>

#include "sw/rng.h"

namespace swperf::tuning {

namespace {

/// Append the raw little-endian bytes of a trivially copyable scalar.
template <typename T>
void put(std::string& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

void put_double(std::string& out, double v) {
  // Bit pattern, not value: the key must distinguish -0.0 from 0.0 and be
  // total over NaNs, exactly like the evaluators' arithmetic sees them.
  put(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::string& out, const std::string& s) {
  put(out, static_cast<std::uint64_t>(s.size()));
  out.append(s);
}

std::uint64_t chain_hash(const std::string& bytes) {
  // SplitMix64 as a chained compression function over 8-byte words; the
  // generator's full-avalanche finalizer makes every input bit affect
  // every output bit of each link.
  std::uint64_t h = 0x5357504552465543ULL;  // "SWPERFUC"
  std::size_t i = 0;
  while (i < bytes.size()) {
    std::uint64_t word = 0;
    const std::size_t n = std::min<std::size_t>(8, bytes.size() - i);
    std::memcpy(&word, bytes.data() + i, n);
    i += n;
    h = sw::SplitMix64(h ^ word).next();
  }
  // Fold in the length so trailing zero bytes cannot alias.
  return sw::SplitMix64(h ^ bytes.size()).next();
}

}  // namespace

std::string encode_summary(const swacc::StaticSummary& s) {
  std::string out;
  out.reserve(128 + s.kernel.size() + 8 * s.dma_req_mrt.size());

  put_str(out, s.kernel);

  // LaunchParams, field by field (the struct has padding; memcpy of the
  // whole object would hash indeterminate bytes).
  put(out, s.params.tile);
  put(out, s.params.unroll);
  put(out, s.params.requested_cpes);
  put(out, static_cast<std::uint8_t>(s.params.double_buffer));
  put(out, s.params.vector_width);
  put(out, static_cast<std::uint8_t>(s.params.coalesce_gloads));

  put(out, s.active_cpes);
  put(out, s.core_groups);
  put(out, static_cast<std::uint8_t>(s.double_buffer));

  put(out, static_cast<std::uint64_t>(s.dma_req_mrt.size()));
  for (const std::uint64_t mrt : s.dma_req_mrt) put(out, mrt);
  put(out, s.n_gloads);

  put_double(out, s.comp_cycles);
  for (const std::uint64_t c : s.inst_counts.counts) put(out, c);

  put(out, s.dma_bytes_requested);
  put(out, s.dma_bytes_transferred);
  put_double(out, s.total_flops);
  return out;
}

std::uint64_t EvalCache::hash_bytes(const std::string& bytes) {
  return chain_hash(bytes);
}

std::uint64_t summary_hash(const swacc::StaticSummary& s) {
  return chain_hash(encode_summary(s));
}

bool EvalCache::peek(const swacc::StaticSummary& s, double* value) const {
  const std::string key = encode_summary(s);
  const Shard& shard = shard_of(hash_bytes(key));
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  if (value != nullptr) *value = it->second;
  return true;
}

EvalCacheStats EvalCache::stats() const {
  EvalCacheStats s;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.hits += shard.hits;
    s.misses += shard.misses;
  }
  return s;
}

std::size_t EvalCache::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.map.size();
  }
  return n;
}

void EvalCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.hits = 0;
    shard.misses = 0;
  }
}

}  // namespace swperf::tuning
