#include "tuning/space.h"

#include "sw/error.h"
#include "swacc/lower.h"
#include "swacc/validate.h"

namespace swperf::tuning {

SearchSpace SearchSpace::standard(const swacc::KernelDesc& kernel,
                                  const sw::ArchParams& arch) {
  SearchSpace s;
  for (std::uint64_t t = 1; t <= kernel.n_outer; t *= 2) {
    swacc::LaunchParams probe;
    probe.tile = t;
    if (swacc::spm_bytes_required(kernel, probe) > arch.spm_bytes) break;
    s.tiles.push_back(t);
  }
  SWPERF_CHECK(!s.tiles.empty(),
               "kernel '" << kernel.name << "' fits no tile in SPM");
  return s;
}

SearchSpace SearchSpace::with_vectorization(const swacc::KernelDesc& kernel,
                                            const sw::ArchParams& arch) {
  SearchSpace s = standard(kernel, arch);
  if (kernel.vectorizable) s.vector_widths = {1, 4};
  return s;
}

std::vector<swacc::LaunchParams> SearchSpace::enumerate(
    const swacc::KernelDesc& kernel, const sw::ArchParams& arch) const {
  std::vector<swacc::LaunchParams> out;
  for (const std::uint64_t tile : tiles) {
    for (const std::uint32_t unroll : unrolls) {
      for (const std::uint32_t ncpe : cpes) {
        for (const bool db : double_buffer) {
          for (const std::uint32_t vw : vector_widths) {
            swacc::LaunchParams p;
            p.tile = tile;
            p.unroll = unroll;
            p.requested_cpes = ncpe;
            p.double_buffer = db;
            p.vector_width = vw;
            if (swacc::validate_launch(kernel, p, arch).ok) {
              out.push_back(p);
            }
          }
        }
      }
    }
  }
  SWPERF_CHECK(!out.empty(), "search space for '" << kernel.name
                                                  << "' pruned to nothing");
  return out;
}

}  // namespace swperf::tuning
