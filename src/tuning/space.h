// Search spaces for loop tiling / unrolling auto-tuning (Section V-D).
//
// The paper tunes the `tile` copy granularity and the unroll factor of
// SWACC kernels; both tuners (static and empirical) explore the SAME space
// for a fair comparison, with infeasible variants (SPM overflow) pruned up
// front.
#pragma once

#include <cstdint>
#include <vector>

#include "sw/arch.h"
#include "swacc/kernel.h"

namespace swperf::tuning {

/// Cartesian tuning space over launch parameters.
struct SearchSpace {
  std::vector<std::uint64_t> tiles;
  std::vector<std::uint32_t> unrolls = {1, 2, 4, 8};
  std::vector<std::uint32_t> cpes = {64};
  std::vector<bool> double_buffer = {false};
  std::vector<std::uint32_t> vector_widths = {1};

  /// The standard tile/unroll space for `kernel`: power-of-two tiles from 1
  /// up to the largest that fits SPM, unroll in {1,2,4,8}.
  static SearchSpace standard(const swacc::KernelDesc& kernel,
                              const sw::ArchParams& arch);

  /// The standard space extended with the vector unit (widths {1,4}) when
  /// the kernel is vectorizable. The paper's Table II space is tile x
  /// unroll only; vectorization is the natural third dimension on SW26010.
  static SearchSpace with_vectorization(const swacc::KernelDesc& kernel,
                                        const sw::ArchParams& arch);

  /// All feasible variants (SPM-fitting, valid decomposition), in
  /// deterministic order. Throws if the space is empty after pruning.
  std::vector<swacc::LaunchParams> enumerate(
      const swacc::KernelDesc& kernel, const sw::ArchParams& arch) const;

  /// Cardinality before pruning.
  std::size_t raw_size() const {
    return tiles.size() * unrolls.size() * cpes.size() *
           double_buffer.size() * vector_widths.size();
  }
};

}  // namespace swperf::tuning
