#include "tuning/prune.h"

#include <limits>

#include "analysis/legality.h"
#include "sw/error.h"
#include "tuning/bounds.h"

namespace swperf::tuning {

double variant_lower_bound_cycles(const swacc::KernelDesc& kernel,
                                  const swacc::LaunchParams& params,
                                  const sw::ArchParams& arch) {
  return BoundEvaluator(kernel, arch).prune_floor(params);
}

std::vector<swacc::LaunchParams> prune_variants(
    const swacc::KernelDesc& kernel,
    const std::vector<swacc::LaunchParams>& variants,
    const sw::ArchParams& arch, double slack, PruneStats* stats) {
  SWPERF_CHECK(slack >= 1.0, "prune slack must be >= 1, got " << slack);
  // Stage 1: the legality facts. A variant swacc::lower() would refuse
  // (SPM overflow, illegal vector width, ...) gets no bound computed — it
  // is dropped with the same verdict the lowering itself would give:
  // launch_legality().launch_legal is by construction identical to the
  // absence of error-severity check_launch findings.
  std::vector<swacc::LaunchParams> legal;
  legal.reserve(variants.size());
  std::size_t illegal = 0;
  for (const auto& v : variants) {
    if (analysis::launch_legality(kernel, v, arch).launch_legal) {
      legal.push_back(v);
    } else {
      ++illegal;
    }
  }
  SWPERF_CHECK(!legal.empty(),
               "all " << variants.size()
                      << " variants rejected by the static checker");

  // Stage 2: the lower-bound sieve over the legal survivors.  One
  // evaluator for the whole campaign: everything that depends only on
  // (kernel, arch) — body pipe occupancies, broadcast transactions, Gload
  // rates — is hoisted out of the per-candidate loop (bounds_test pins
  // that the per-variant results are unchanged).
  const BoundEvaluator evaluator(kernel, arch);
  std::vector<double> bounds;
  bounds.reserve(legal.size());
  double best = std::numeric_limits<double>::infinity();
  for (const auto& v : legal) {
    bounds.push_back(evaluator.prune_floor(v));
    best = std::min(best, bounds.back());
  }
  std::vector<swacc::LaunchParams> kept;
  for (std::size_t i = 0; i < legal.size(); ++i) {
    if (bounds[i] <= best * slack) kept.push_back(legal[i]);
  }
  if (stats != nullptr) {
    stats->considered = variants.size();
    stats->kept = kept.size();
    stats->illegal = illegal;
    stats->bound_pruned = legal.size() - kept.size();
  }
  SWPERF_ASSERT(!kept.empty());
  return kept;
}

}  // namespace swperf::tuning
