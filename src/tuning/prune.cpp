#include "tuning/prune.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "analysis/checker.h"
#include "sw/error.h"
#include "isa/vectorize.h"
#include "swacc/decompose.h"

namespace swperf::tuning {

namespace {

/// DRAM transactions one chunk of `g` outer elements moves for `a`.
std::uint64_t chunk_transactions(const swacc::ArrayRef& a, std::uint64_t g,
                                 const sw::ArchParams& arch) {
  switch (a.access) {
    case swacc::Access::kContiguous:
      return arch.transactions_for(g * a.bytes_per_outer);
    case swacc::Access::kStrided:
      return g * a.segments_per_outer *
             arch.transactions_for(a.bytes_per_outer / a.segments_per_outer);
    case swacc::Access::kBlock2D:
      return a.segments_per_outer *
             arch.transactions_for(g *
                                   (a.bytes_per_outer /
                                    a.segments_per_outer));
    default:
      return 0;
  }
}

}  // namespace

double variant_lower_bound_cycles(const swacc::KernelDesc& kernel,
                                  const swacc::LaunchParams& params,
                                  const sw::ArchParams& arch) {
  kernel.validate();
  SWPERF_CHECK(params.tile >= 1 && params.unroll >= 1 &&
                   params.requested_cpes >= 1,
               "invalid launch parameters");
  const auto d = swacc::decompose(kernel.n_outer, params.tile,
                                  params.requested_cpes);

  // ---- Memory floor: every transaction the launch must move. ------------
  std::uint64_t trans = 0;
  const std::uint64_t full_chunks =
      kernel.n_outer / params.tile;  // chunks of exactly `tile`
  const std::uint64_t tail = kernel.n_outer % params.tile;
  for (const auto& a : kernel.arrays) {
    if (!a.staged()) continue;
    std::uint64_t per_dir = full_chunks *
                            chunk_transactions(a, params.tile, arch);
    if (tail > 0) per_dir += chunk_transactions(a, tail, arch);
    trans += per_dir * ((a.copies_in() ? 1 : 0) + (a.copies_out() ? 1 : 0));
  }
  // Broadcast arrays: once per active CPE.
  for (const auto& a : kernel.arrays) {
    if (a.access == swacc::Access::kBroadcast) {
      trans += static_cast<std::uint64_t>(d.active_cpes) *
               arch.transactions_for(a.broadcast_bytes);
    }
  }
  // Gloads: one whole transaction each.
  const double inner_total = static_cast<double>(kernel.n_outer) *
                             static_cast<double>(kernel.inner_iters);
  double gloads = kernel.gloads_per_inner_total() * inner_total;
  if (params.tile < kernel.dma_min_tile) {
    std::uint32_t staged_in = 0;
    for (const auto& a : kernel.arrays) {
      staged_in += (a.staged() && a.copies_in()) ? 1 : 0;
    }
    gloads += static_cast<double>(kernel.n_outer) * staged_in;
  }
  const double cg_scale =
      d.core_groups_needed(arch) > 1
          ? static_cast<double>(d.core_groups_needed(arch)) *
                arch.cross_section_bw_efficiency
          : 1.0;
  const double mem_floor =
      (static_cast<double>(trans) + gloads) * arch.trans_service_cycles() /
      cg_scale;

  // ---- Compute floor: issue-limited cycles of the busiest CPE. -----------
  // Loop-overhead instructions collapse under unrolling, so only the real
  // body counts; unpipelined div/sqrt occupy pipeline 0 for their full
  // latency regardless of scheduling.
  double p0 = 0.0, p1 = 0.0;
  for (const auto& i : kernel.body.instrs) {
    if (i.loop_overhead) continue;
    const double occupancy =
        isa::is_unpipelined(i.cls)
            ? static_cast<double>(isa::latency_of(i.cls, arch))
            : 1.0;
    if (isa::pipe_of(i.cls) == isa::Pipe::kCompute) {
      p0 += occupancy;
    } else {
      p1 += occupancy;
    }
  }
  // Vectorizable kernels can cover up to kMaxVectorLanes source
  // iterations per instruction, so the floor must assume full widening.
  const double max_lanes =
      kernel.vectorizable ? static_cast<double>(isa::kMaxVectorLanes) : 1.0;
  const double per_iter = std::max(p0, p1) / max_lanes;
  const double busiest_elems = static_cast<double>(d.elements_of(0));
  const double comp_floor = busiest_elems *
                            static_cast<double>(kernel.inner_iters) *
                            per_iter * (1.0 - kernel.comp_imbalance);

  return std::max(mem_floor, comp_floor);
}

std::vector<swacc::LaunchParams> prune_variants(
    const swacc::KernelDesc& kernel,
    const std::vector<swacc::LaunchParams>& variants,
    const sw::ArchParams& arch, double slack, PruneStats* stats) {
  SWPERF_CHECK(slack >= 1.0, "prune slack must be >= 1, got " << slack);
  // Stage 1: the static checker. A variant swacc::lower() would refuse
  // (SPM overflow, illegal vector width, ...) gets no bound computed — it
  // is dropped with the same verdict the lowering itself would give.
  std::vector<swacc::LaunchParams> legal;
  legal.reserve(variants.size());
  std::size_t illegal = 0;
  for (const auto& v : variants) {
    if (analysis::has_errors(analysis::check_launch(kernel, v, arch))) {
      ++illegal;
    } else {
      legal.push_back(v);
    }
  }
  SWPERF_CHECK(!legal.empty(),
               "all " << variants.size()
                      << " variants rejected by the static checker");

  // Stage 2: the lower-bound sieve over the legal survivors.
  std::vector<double> bounds;
  bounds.reserve(legal.size());
  double best = std::numeric_limits<double>::infinity();
  for (const auto& v : legal) {
    bounds.push_back(variant_lower_bound_cycles(kernel, v, arch));
    best = std::min(best, bounds.back());
  }
  std::vector<swacc::LaunchParams> kept;
  for (std::size_t i = 0; i < legal.size(); ++i) {
    if (bounds[i] <= best * slack) kept.push_back(legal[i]);
  }
  if (stats != nullptr) {
    stats->considered = variants.size();
    stats->kept = kept.size();
    stats->illegal = illegal;
  }
  SWPERF_ASSERT(!kept.empty());
  return kept;
}

}  // namespace swperf::tuning
