#include "model/roofline.h"

#include <algorithm>

#include "sw/error.h"

namespace swperf::model {

RooflinePrediction RooflineModel::predict(
    const swacc::StaticSummary& s) const {
  SWPERF_CHECK(s.active_cpes >= 1, "summary has no active CPEs");
  RooflinePrediction p;

  // Launch-wide traffic. Gloads move gload-sized payloads but always
  // occupy a whole transaction; the classic model counts payloads.
  const double gload_total =
      static_cast<double>(s.n_gloads) * static_cast<double>(s.active_cpes);
  double bytes = static_cast<double>(s.dma_bytes_requested) +
                 gload_total * 8.0;  // payload bytes
  if (transaction_aware_) {
    bytes = static_cast<double>(s.dma_bytes_transferred) +
            gload_total * arch_.trans_size_bytes;
  }

  const double flops = s.total_flops;
  p.arithmetic_intensity = bytes > 0.0 ? flops / bytes : 0.0;

  // Compute roof: 8 flops/cycle per active CPE (FMA on the vector unit).
  const double flops_per_cycle = 8.0 * static_cast<double>(s.active_cpes);
  const double comp_roof_cycles =
      flops_per_cycle > 0.0 ? flops / flops_per_cycle : 0.0;
  // Memory roof: launch bytes over aggregate bandwidth.
  const double cg_scale =
      s.core_groups > 1 ? static_cast<double>(s.core_groups) *
                              arch_.cross_section_bw_efficiency
                        : 1.0;
  const double bytes_per_cycle = arch_.bytes_per_cycle() * cg_scale;
  const double mem_roof_cycles = bytes / bytes_per_cycle;

  p.t_cycles = std::max(comp_roof_cycles, mem_roof_cycles);
  p.memory_bound = mem_roof_cycles >= comp_roof_cycles;
  if (p.t_cycles > 0.0 && flops > 0.0) {
    p.attainable_gflops = flops / (p.t_cycles / arch_.freq_ghz);
  }
  return p;
}

}  // namespace swperf::model
