// Roofline comparison model (related work, Section VI).
//
// The paper contrasts its precise model against Roofline [24]: Roofline
// bounds attainable performance by min(peak compute, arithmetic intensity
// × bandwidth) and therefore cannot see effects that leave arithmetic
// intensity unchanged — DMA request granularity, double buffering, or the
// #active_CPEs transaction-waste trade-off.  This implementation exists to
// quantify that argument on the same kernels (bench_comparison_roofline).
//
// Two variants:
//   * algorithmic: bytes = what the program asked to move (classic
//     Roofline);
//   * transaction-aware: bytes = whole DRAM transactions actually occupied
//     (a Roofline that at least knows about Eq. 5's waste).
#pragma once

#include "sw/arch.h"
#include "swacc/summary.h"

namespace swperf::model {

struct RooflinePrediction {
  /// Flops per byte moved.
  double arithmetic_intensity = 0.0;
  /// min(peak, AI x BW), in GFLOPS (0 for flop-free kernels).
  double attainable_gflops = 0.0;
  /// Lower-bound execution time: max(compute roof, memory roof), cycles.
  double t_cycles = 0.0;
  /// True when the memory roof binds.
  bool memory_bound = false;
};

class RooflineModel {
 public:
  explicit RooflineModel(const sw::ArchParams& arch,
                         bool transaction_aware = false)
      : arch_(arch), transaction_aware_(transaction_aware) {
    arch_.validate();
  }

  RooflinePrediction predict(const swacc::StaticSummary& s) const;

 private:
  sw::ArchParams arch_;
  bool transaction_aware_;
};

}  // namespace swperf::model
