#include "model/report.h"

#include <sstream>

#include "sw/error.h"
#include "swacc/lower.h"

namespace swperf::model {

const char* bottleneck_name(Bottleneck b) {
  switch (b) {
    case Bottleneck::kMemoryBandwidth: return "memory bandwidth (DMA)";
    case Bottleneck::kGload: return "Gload requests (irregular access)";
    case Bottleneck::kCompute: return "computation";
    case Bottleneck::kLatency: return "memory latency (small requests)";
  }
  return "?";
}

KernelReport analyze(const PerfModel& model, const swacc::KernelDesc& kernel,
                     const swacc::LaunchParams& params) {
  const auto lowered = swacc::lower(kernel, params, model.arch());
  const auto& s = lowered.summary;

  KernelReport r;
  r.kernel = kernel.name;
  r.params = params;
  r.prediction = model.predict(s);
  r.roofline = RooflineModel(model.arch()).predict(s);

  const double total = r.prediction.t_total;
  SWPERF_ASSERT(total > 0.0);
  r.dma_fraction = r.prediction.t_dma / total;
  r.gload_fraction = r.prediction.t_g / total;
  r.comp_fraction = r.prediction.t_comp / total;
  r.overlap_fraction = r.prediction.t_overlap / total;
  r.dma_efficiency = s.dma_efficiency();
  r.gflops = r.prediction.gflops(s.total_flops, model.arch().freq_ghz);
  r.roofline_fraction = r.roofline.attainable_gflops > 0.0
                            ? r.gflops / r.roofline.attainable_gflops
                            : 0.0;

  // Classify the binding resource.
  if (r.prediction.scenario == 1) {
    r.bottleneck = Bottleneck::kCompute;
  } else if (r.prediction.t_g > r.prediction.t_dma) {
    r.bottleneck = Bottleneck::kGload;
  } else {
    // Memory-bound: distinguish bandwidth saturation from latency.
    const double bw_time =
        static_cast<double>(s.sum_mrt()) * s.active_cpes *
        model.trans_cycles(s.core_groups);
    r.bottleneck = r.prediction.t_dma >= 0.9 * bw_time
                       ? Bottleneck::kMemoryBandwidth
                       : Bottleneck::kLatency;
  }

  r.advice = advise(model, kernel, params);
  return r;
}

std::string KernelReport::to_string(const sw::ArchParams& arch) const {
  std::ostringstream os;
  os << "=== " << kernel << " @ " << params.to_string() << " ===\n";
  os << "predicted time : " << prediction.total_us(arch.freq_ghz)
     << " us (" << prediction.t_total << " cycles, scenario "
     << prediction.scenario << ")\n";
  os << "bottleneck     : " << bottleneck_name(bottleneck) << "\n";
  os << "breakdown      : comp " << static_cast<int>(100 * comp_fraction)
     << "%  dma " << static_cast<int>(100 * dma_fraction) << "%  gload "
     << static_cast<int>(100 * gload_fraction) << "%  (overlap "
     << static_cast<int>(100 * overlap_fraction) << "%)\n";
  os << "dma efficiency : " << static_cast<int>(100 * dma_efficiency)
     << "% of moved bytes useful\n";
  if (gflops > 0.0) {
    os << "throughput     : " << gflops << " GFLOPS ("
       << static_cast<int>(100 * roofline_fraction)
       << "% of the Roofline-attainable "
       << roofline.attainable_gflops << ")\n";
  }
  if (advice.empty()) {
    os << "advice         : none — configuration is model-optimal\n";
  } else {
    for (const auto& a : advice) {
      os << "advice         : " << a.optimization << " (saves "
         << static_cast<int>(100 * a.saving_fraction) << "%)\n";
    }
  }
  return os.str();
}

}  // namespace swperf::model
