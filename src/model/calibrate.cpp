#include "model/calibrate.h"

#include <algorithm>
#include <cmath>

#include "sim/machine.h"
#include "sw/error.h"

namespace swperf::model {

namespace {

double run_cycles(const sw::ArchParams& machine,
                  const std::vector<sim::CpeProgram>& programs) {
  sim::KernelBinary empty;
  return sim::simulate(sim::SimConfig{machine, 1}, empty, programs)
      .total_cycles();
}

}  // namespace

sw::ArchParams CalibratedParams::apply_to(sw::ArchParams base) const {
  base.l_base_cycles =
      static_cast<std::uint32_t>(std::llround(l_base_cycles));
  base.delta_delay_cycles =
      static_cast<std::uint32_t>(std::llround(delta_delay_cycles));
  base.mem_bw_gbps = mem_bw_gbps;
  base.validate();
  return base;
}

CalibratedParams calibrate(const sw::ArchParams& machine) {
  machine.validate();
  CalibratedParams out;

  // ---- Probe 1: uncontended single-transaction latency -> L_base. --------
  {
    sim::CpeProgram p;
    p.dma(mem::DmaRequest::contiguous(machine.trans_size_bytes));
    out.l_base_cycles = run_cycles(machine, {p});
  }

  // ---- Probe 2: request latency vs MRT -> Δdelay (slope of Eq. 11). ------
  {
    constexpr std::uint64_t kLoMrt = 1, kHiMrt = 33;
    sim::CpeProgram lo;
    lo.dma(mem::DmaRequest::contiguous(machine.trans_size_bytes * kLoMrt));
    sim::CpeProgram hi;
    hi.dma(mem::DmaRequest::contiguous(machine.trans_size_bytes * kHiMrt));
    const double t_lo = run_cycles(machine, {lo});
    const double t_hi = run_cycles(machine, {hi});
    out.delta_delay_cycles =
        (t_hi - t_lo) / static_cast<double>(kHiMrt - kLoMrt);
  }

  // ---- Probe 3: saturation -> bandwidth and transaction service time. ----
  {
    constexpr int kChunks = 16;
    const std::uint64_t block = 16 * 1024;  // 16 KiB per request
    std::vector<sim::CpeProgram> ps(machine.cpes_per_cg);
    for (auto& p : ps) {
      for (int c = 0; c < kChunks; ++c) {
        p.dma(mem::DmaRequest::contiguous(block));
      }
    }
    const double cycles = run_cycles(machine, ps);
    const double bytes = static_cast<double>(machine.cpes_per_cg) *
                         kChunks * static_cast<double>(block);
    const double seconds = sw::cycles_to_seconds(cycles, machine.freq_ghz);
    out.mem_bw_gbps = bytes / seconds / 1e9;
    out.trans_service_cycles =
        static_cast<double>(machine.trans_size_bytes) /
        (out.mem_bw_gbps / machine.freq_ghz);
  }

  return out;
}

}  // namespace swperf::model
