// The static performance model for SW26010 (Section III of the paper).
//
// Predicts the execution time of a CPE kernel from purely static inputs
// (swacc::StaticSummary) and machine parameters (Table I):
//
//   T_total = T_mem + T_comp − T_overlap                      (Eq. 1)
//   T_mem   = T_g + T_DMA                                     (Eq. 2)
//   T_g/DMA = Σ_r max(L_avg_r, L_mem_bw_r)                    (Eq. 3)
//   L_mem_bw_r = #active_CPEs × MRT_r × TransSize × Freq / mem_bw  (Eq. 4)
//   MRT_r   = ⌈req_size / TransSize⌉                          (Eq. 5)
//   T_comp  = Σ_t #t × L_t / avg_ILP                          (Eq. 6)
//   T_overlap = min(T_comp, T_DMA_ov + T_g_ov)                (Eq. 7)
//   T_x_ov  = (1 − 1/NG_x)(1 − 1/#x_reqs) × T_x               (Eq. 8)
//   NG_x    = #active_CPEs / MRP_x                            (Eq. 9)
//   MRP_x   = L_avg_x × mem_bw / (Freq × TransSize × avg_MRT_x)  (Eq. 10)
//   L_avg_x = L_base + (avg_MRT_x − 1) × Δdelay               (Eq. 11)
//   avg_MRT_DMA = Σ_r MRT_r / #DMA_reqs                       (Eq. 12)
//
// The key abstraction is *virtual grouping*: the #active_CPEs are treated
// as NG lock-step groups of MRP CPEs each, where MRP is the number of
// concurrent requests that exactly saturate memory bandwidth for one
// request latency.  Memory/computation overlap happens between the memory
// accesses of one group and the computation of the others.
//
// One refinement over the paper's Eq. 3 as printed: the uncontended bound
// uses the full request latency L_avg_r = L_base + (MRT_r−1)Δdelay
// (the paper's own "Req_Latency" of Figure 4) rather than bare L_base,
// which keeps the model accurate at low CPE counts where the per-CPE DMA
// issue rate, not bandwidth, limits throughput.
//
// Double buffering is modelled by subtracting the paper's Eq. 14 saving
// (Section IV-2).
#pragma once

#include <string>

#include "sw/arch.h"
#include "swacc/summary.h"

namespace swperf::model {

/// Which terms of the model are active — the defaults are the paper's
/// model; switching terms off supports the ablation benches that motivate
/// each term.
struct ModelOptions {
  /// Eq. 7–12: memory/computation overlap via virtual grouping.
  bool overlap = true;
  /// The (1 − 1/NG) term of Eq. 8. Off = treat CPEs like independent GPU
  /// SMs (every group's accesses overlapable), the contrast the paper
  /// draws with MWP/CWP-style GPU models.
  bool virtual_grouping = true;
  /// The bandwidth term of Eq. 3–4. Off = every request at its uncontended
  /// latency.
  bool bandwidth_contention = true;
};

/// Model output: total time plus every intermediate quantity of Table I's
/// output rows, so analyses and tests can inspect the internals.
struct Prediction {
  // Primary outputs, in cycles (per the busiest CPE / core-group view).
  double t_total = 0.0;
  double t_mem = 0.0;
  double t_dma = 0.0;
  double t_g = 0.0;
  double t_comp = 0.0;
  double t_overlap = 0.0;

  // Overlap decomposition (Eq. 8).
  double t_dma_overlap = 0.0;
  double t_g_overlap = 0.0;
  /// Eq. 14 saving applied when the launch double-buffers.
  double double_buffer_saving = 0.0;

  // Virtual-grouping internals.
  double avg_mrt_dma = 0.0;  // Eq. 12
  double l_avg_dma = 0.0;    // Eq. 11
  double mrp_dma = 0.0;      // Eq. 10
  double ng_dma = 0.0;       // Eq. 9
  double mrp_g = 0.0;
  double ng_g = 0.0;

  /// Section III-A execution scenario: 1 = memory idles during compute,
  /// 2 = computation fully hidden by memory accesses. 0 = no memory phase.
  int scenario = 0;

  double avg_ilp = 0.0;

  /// Time in microseconds at frequency `freq_ghz`.
  double total_us(double freq_ghz) const {
    return sw::cycles_to_us(t_total, freq_ghz);
  }
  /// Achieved GFLOPS given the launch-wide flop count (cycles / GHz is
  /// nanoseconds, so flops-per-ns is GFLOPS directly).
  double gflops(double total_flops, double freq_ghz) const {
    return t_total <= 0.0 ? 0.0 : total_flops / (t_total / freq_ghz);
  }
};

/// The static performance model.
class PerfModel {
 public:
  explicit PerfModel(const sw::ArchParams& arch, ModelOptions opts = {});

  /// Predicts the execution time of one lowered launch.
  Prediction predict(const swacc::StaticSummary& s) const;

  const sw::ArchParams& arch() const { return arch_; }
  const ModelOptions& options() const { return opts_; }

  /// Effective per-transaction service time in cycles for a launch on
  /// `core_groups` CGs: bandwidth scales linearly with CGs (Section V-C3),
  /// at slightly reduced cross-section efficiency when more than one.
  double trans_cycles(std::uint32_t core_groups) const;

 private:
  sw::ArchParams arch_;
  ModelOptions opts_;
};

}  // namespace swperf::model
