#include "model/analysis.h"

#include <algorithm>
#include <sstream>

#include "sw/error.h"
#include "swacc/lower.h"
#include "swacc/validate.h"

namespace swperf::model {

double granularity_saving(const Prediction& p, std::uint64_t n_reqs_before,
                          std::uint64_t n_reqs_after) {
  SWPERF_CHECK(n_reqs_before >= 1 && n_reqs_after >= n_reqs_before,
               "granularity_saving: request count must grow ("
                   << n_reqs_before << " -> " << n_reqs_after << ")");
  // Eq. 13: the overlapable share grows from (1 − 1/#DMA_1) to
  // (1 − 1/#DMA_2) of T_DMA.
  return (1.0 / static_cast<double>(n_reqs_before) -
          1.0 / static_cast<double>(n_reqs_after)) *
         p.t_dma;
}

double double_buffer_saving(const Prediction& p) {
  if (p.ng_dma <= 0.0) return 0.0;
  // Eq. 14: at best the copy-in duration of one virtual group is hidden,
  // and never more than the not-yet-overlapped computation.
  return std::min(p.t_dma / p.ng_dma, std::max(0.0, p.t_comp - p.t_overlap));
}

double fewer_cpes_saving(const Prediction& p, double reduction_fraction) {
  SWPERF_CHECK(reduction_fraction >= 0.0 && reduction_fraction < 1.0,
               "reduction_fraction=" << reduction_fraction);
  // Eq. 15: pays off only when DMA dominates compute.
  return reduction_fraction * std::max(0.0, p.t_dma - p.t_comp);
}

namespace {

/// Full-model saving of `variant` relative to `base_total`; negative means
/// the variant is slower.
double model_saving(const PerfModel& model, const swacc::KernelDesc& kernel,
                    const swacc::LaunchParams& variant, double base_total) {
  const auto lowered = swacc::lower(kernel, variant, model.arch());
  return base_total - model.predict(lowered.summary).t_total;
}

}  // namespace

std::vector<Advice> advise(const PerfModel& model,
                           const swacc::KernelDesc& kernel,
                           const swacc::LaunchParams& params) {
  const auto base = swacc::lower(kernel, params, model.arch());
  const Prediction p = model.predict(base.summary);
  std::vector<Advice> out;

  auto consider = [&](std::string what, swacc::LaunchParams v,
                      double closed_form, std::string why) {
    if (!swacc::validate_launch(kernel, v, model.arch()).ok) return;
    const double saving = model_saving(model, kernel, v, p.t_total);
    if (saving <= 0.0) return;
    out.push_back(Advice{std::move(what), v, closed_form, saving,
                         saving / p.t_total, std::move(why)});
  };

  // Section IV-1: smaller DMA request granularity, as long as requests stay
  // at least one transaction and above the compiler's staging threshold.
  if (params.tile / 2 >= kernel.dma_min_tile &&
      base.summary.n_dma_reqs() > 0) {
    swacc::LaunchParams v = params;
    v.tile = params.tile / 2;
    std::ostringstream why;
    why << "Eq.13: doubling #DMA_reqs raises the overlapable share "
        << "(1 - 1/#DMA_reqs) of T_DMA";
    consider("halve DMA granularity (tile " + std::to_string(params.tile) +
                 " -> " + std::to_string(v.tile) + ")",
             v,
             granularity_saving(p, base.summary.n_dma_reqs(),
                                2 * base.summary.n_dma_reqs()),
             why.str());
  }

  // Section IV-2: double buffering.
  if (!params.double_buffer && base.summary.n_dma_reqs() > 0) {
    swacc::LaunchParams v = params;
    v.double_buffer = true;
    std::ostringstream why;
    why << "Eq.14: benefit capped at T_DMA/NG_DMA = one virtual group's "
        << "copy-in (NG=" << p.ng_dma << ")";
    consider("enable double buffering", v, double_buffer_saving(p),
             why.str());
  }

  // Section IV-3: fewer active CPEs when DMA dominates.  Per-CPE data
  // shares grow when fewer CPEs split the work, so the copy granularity is
  // scaled up with the reduction — that is what shrinks per-request
  // transaction waste (DMA_req_size vs Trans_size) in blocked ports.
  if (params.requested_cpes > 8 && p.t_dma > p.t_comp) {
    swacc::LaunchParams v = params;
    v.requested_cpes = params.requested_cpes * 3 / 4;
    v.tile = std::max<std::uint64_t>(
        1, params.tile * params.requested_cpes / v.requested_cpes);
    const double frac =
        1.0 - static_cast<double>(v.requested_cpes) /
                  static_cast<double>(params.requested_cpes);
    std::ostringstream why;
    why << "Eq.15: T_DMA > T_comp and small requests waste transactions; "
        << "fewer CPEs (with proportionally larger chunks) shrink the waste";
    consider("reduce #active_CPEs (" + std::to_string(params.requested_cpes) +
                 " -> " + std::to_string(v.requested_cpes) + ")",
             v, fewer_cpes_saving(p, frac), why.str());
  }

  std::sort(out.begin(), out.end(), [](const Advice& a, const Advice& b) {
    return a.model_saving > b.model_saving;
  });
  return out;
}

}  // namespace swperf::model
