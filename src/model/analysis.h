// Closed-form optimization-effect analyses (Section IV of the paper).
//
// The precise model permits analysing an optimization's payoff *before*
// applying it — including the paper's findings that contradict prior
// guidelines: smaller DMA granularity beats larger (as long as requests
// stay >= one transaction), double buffering is capped at T_DMA/NG (often
// a mere 1/16), and fewer active CPEs can win when small requests waste
// transactions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/model.h"
#include "swacc/kernel.h"

namespace swperf::model {

/// Eq. 13: time saved by shrinking DMA request granularity so the per-CPE
/// request count grows from `n_reqs_before` to `n_reqs_after` (> before).
/// Valid while requests stay >= one transaction.
double granularity_saving(const Prediction& p, std::uint64_t n_reqs_before,
                          std::uint64_t n_reqs_after);

/// Eq. 14: upper bound on the double-buffering benefit —
/// min(T_DMA / NG_DMA, T_comp − T_overlap).
double double_buffer_saving(const Prediction& p);

/// Eq. 15: time saved by reducing #active_CPEs by `reduction_fraction`
/// (e.g. 0.25 for 64 → 48): Δ × max(0, T_DMA − T_comp).
double fewer_cpes_saving(const Prediction& p, double reduction_fraction);

/// A recommendation produced by the advisor.
struct Advice {
  std::string optimization;      // e.g. "halve DMA granularity"
  swacc::LaunchParams suggested; // concrete parameters to apply
  double closed_form_saving;     // Eq. 13/14/15 estimate, cycles
  double model_saving;           // full-model re-evaluation, cycles
  double saving_fraction;        // model_saving / baseline t_total
  std::string rationale;
};

/// Evaluates the three Section-IV optimizations against `kernel` at
/// `params`: for each, reports both the closed-form estimate and the full
/// model's prediction of the changed variant. Only profitable, feasible
/// (SPM-fitting) changes are returned, best first.
std::vector<Advice> advise(const PerfModel& model,
                           const swacc::KernelDesc& kernel,
                           const swacc::LaunchParams& params);

}  // namespace swperf::model
