// Microbenchmark calibration of the model's machine parameters.
//
// The paper's Table I values (L_base 220, Δdelay 50, 32 GB/s per CG) are
// measured properties of SW26010, not datasheet numbers.  This module
// reproduces the measurement methodology against any machine the simulator
// can represent:
//   * latency probe: one CPE, one single-transaction DMA → L_base;
//   * issue-rate probe: one CPE, requests of growing MRT → the slope is
//     Δdelay (Eq. 11);
//   * saturation probe: all 64 CPEs streaming large blocks → effective
//     bandwidth, hence the per-transaction service time.
//
// Besides documenting how Table I comes about, calibration closes the
// loop: a PerfModel built from *recovered* parameters must predict as well
// as one built from the configured ones (tested), so the model could be
// stood up on a machine whose parameters are unknown.
#pragma once

#include "sw/arch.h"

namespace swperf::model {

struct CalibratedParams {
  double l_base_cycles = 0.0;
  double delta_delay_cycles = 0.0;
  double trans_service_cycles = 0.0;
  double mem_bw_gbps = 0.0;

  /// Folds the recovered values into an ArchParams (other fields from
  /// `base`).
  sw::ArchParams apply_to(sw::ArchParams base) const;
};

/// Runs the three probes against a machine with the given true parameters
/// and returns what the microbenchmarks measure.
CalibratedParams calibrate(const sw::ArchParams& machine);

}  // namespace swperf::model
