#include "model/model.h"

#include <algorithm>
#include <cmath>

#include "sw/error.h"

namespace swperf::model {

PerfModel::PerfModel(const sw::ArchParams& arch, ModelOptions opts)
    : arch_(arch), opts_(opts) {
  arch_.validate();
}

double PerfModel::trans_cycles(std::uint32_t core_groups) const {
  SWPERF_CHECK(core_groups >= 1, "core_groups=" << core_groups);
  const double scale =
      core_groups > 1
          ? static_cast<double>(core_groups) *
                arch_.cross_section_bw_efficiency
          : 1.0;
  return arch_.trans_service_cycles() / scale;
}

Prediction PerfModel::predict(const swacc::StaticSummary& s) const {
  SWPERF_CHECK(s.active_cpes >= 1, "summary has no active CPEs");
  Prediction p;
  const double active = static_cast<double>(s.active_cpes);
  const double tc = trans_cycles(s.core_groups);
  const double l_base = static_cast<double>(arch_.l_base_cycles);
  const double ddelay = static_cast<double>(arch_.delta_delay_cycles);

  // ---- T_comp (Eq. 6) ----------------------------------------------------
  // comp_cycles is Σ(#t × L_t) / avg_ILP evaluated through the static
  // per-block schedule, for the longest-path CPE.
  p.t_comp = s.comp_cycles;
  p.avg_ilp = s.avg_ilp(arch_);

  // ---- T_DMA (Eq. 3–5, 11) -----------------------------------------------
  for (const std::uint64_t mrt_u : s.dma_req_mrt) {
    const double mrt = static_cast<double>(mrt_u);
    if (mrt <= 0.0) continue;
    const double l_avg = l_base + (mrt - 1.0) * ddelay;         // Eq. 11
    const double l_bw = active * mrt * tc;                      // Eq. 4
    p.t_dma += opts_.bandwidth_contention ? std::max(l_avg, l_bw) : l_avg;
  }

  // ---- T_g (Eq. 3–4 with MRT_g = 1) ---------------------------------------
  if (s.n_gloads > 0) {
    const double l_bw_g = active * tc;
    const double per_req =
        opts_.bandwidth_contention ? std::max(l_base, l_bw_g) : l_base;
    p.t_g = static_cast<double>(s.n_gloads) * per_req;
  }

  p.t_mem = p.t_g + p.t_dma;  // Eq. 2

  // ---- Virtual grouping (Eq. 9–12) ----------------------------------------
  const std::uint64_t n_dma_reqs = s.n_dma_reqs();
  if (n_dma_reqs > 0) {
    p.avg_mrt_dma = s.avg_mrt();                                 // Eq. 12
    p.l_avg_dma = l_base + (p.avg_mrt_dma - 1.0) * ddelay;       // Eq. 11
    p.mrp_dma = p.l_avg_dma / (tc * p.avg_mrt_dma);              // Eq. 10
    p.mrp_dma = std::clamp(p.mrp_dma, 1.0, active);
    p.ng_dma = active / p.mrp_dma;                               // Eq. 9
  }
  if (s.n_gloads > 0) {
    p.mrp_g = std::clamp(l_base / tc, 1.0, active);              // Eq. 10
    p.ng_g = active / p.mrp_g;                                   // Eq. 9
  }

  // ---- T_overlap (Eq. 7–8) -------------------------------------------------
  if (opts_.overlap) {
    if (n_dma_reqs > 0 && p.t_dma > 0.0) {
      const double group_term =
          opts_.virtual_grouping ? 1.0 - 1.0 / p.ng_dma : 1.0;
      const double req_term =
          1.0 - 1.0 / static_cast<double>(n_dma_reqs);
      p.t_dma_overlap = group_term * req_term * p.t_dma;         // Eq. 8
    }
    if (s.n_gloads > 0 && p.t_g > 0.0) {
      const double group_term =
          opts_.virtual_grouping ? 1.0 - 1.0 / p.ng_g : 1.0;
      const double req_term =
          1.0 - 1.0 / static_cast<double>(s.n_gloads);
      p.t_g_overlap = group_term * req_term * p.t_g;             // Eq. 8
    }
    p.t_overlap = std::min(p.t_comp, p.t_dma_overlap + p.t_g_overlap);
  }

  // Scenario classification (Section III-A): in scenario 2 the computation
  // is fully hidden behind memory accesses.
  if (p.t_mem <= 0.0) {
    p.scenario = 0;
  } else {
    p.scenario =
        (p.t_comp <= p.t_dma_overlap + p.t_g_overlap) ? 2 : 1;
  }

  p.t_total = p.t_mem + p.t_comp - p.t_overlap;  // Eq. 1

  // ---- Double buffering (Eq. 14, Section IV-2) -----------------------------
  if (s.double_buffer && n_dma_reqs > 0 && p.ng_dma > 0.0) {
    p.double_buffer_saving =
        std::min(p.t_dma / p.ng_dma, std::max(0.0, p.t_comp - p.t_overlap));
    p.t_total -= p.double_buffer_saving;
  }

  return p;
}

}  // namespace swperf::model
