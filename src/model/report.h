// Kernel performance reports: the model as a profiler replacement.
//
// One of the paper's motivations is that on SW26010 "insights on the
// applications' performance and the interplay with underlying architecture
// are rarely revealed".  This module packages everything the model knows
// about a launch — time breakdown, scenario, bottleneck, transaction
// efficiency, achieved vs attainable GFLOPS, and the Section-IV advice —
// into a single structured report, computable in microseconds without any
// execution.
#pragma once

#include <string>
#include <vector>

#include "model/analysis.h"
#include "model/model.h"
#include "model/roofline.h"
#include "swacc/kernel.h"

namespace swperf::model {

enum class Bottleneck {
  kMemoryBandwidth,  // T_DMA-dominated, scenario 2
  kGload,            // T_g-dominated (irregular access)
  kCompute,          // T_comp-dominated, scenario 1
  kLatency,          // few CPEs / small requests: L_avg-bound
};

const char* bottleneck_name(Bottleneck b);

/// A complete static assessment of one launch.
struct KernelReport {
  std::string kernel;
  swacc::LaunchParams params;
  Prediction prediction;
  RooflinePrediction roofline;

  Bottleneck bottleneck = Bottleneck::kCompute;
  /// Fractions of predicted total time (can exceed 1 before overlap).
  double dma_fraction = 0.0;
  double gload_fraction = 0.0;
  double comp_fraction = 0.0;
  double overlap_fraction = 0.0;
  /// Requested bytes / transferred bytes (1 = no transaction waste).
  double dma_efficiency = 1.0;
  /// Achieved GFLOPS and fraction of the Roofline-attainable rate.
  double gflops = 0.0;
  double roofline_fraction = 0.0;

  std::vector<Advice> advice;

  /// Multi-line human-readable rendering.
  std::string to_string(const sw::ArchParams& arch) const;
};

/// Builds the full report for `kernel` at `params`.
KernelReport analyze(const PerfModel& model, const swacc::KernelDesc& kernel,
                     const swacc::LaunchParams& params);

}  // namespace swperf::model
