#include "kernels/lud.h"

#include <algorithm>
#include <cmath>

#include "sw/error.h"

namespace swperf::kernels {

KernelSpec lud_cfg(const LudConfig& cfg) {
  // Per trailing-row element: the perimeter-block elimination applies a
  // short panel of pivots in sequence — a dependent update chain per
  // element (a[i][j] -= l0*p0; -= l1*p1; ...) that unrolling across j
  // interleaves.
  isa::BlockBuilder b("lud_body");
  const auto aij = b.spm_load();
  const auto pkj = b.spm_load();
  const auto l0 = b.reg();
  const auto l1 = b.reg();
  const auto l2 = b.reg();
  const auto l3 = b.reg();
  auto v = b.fma(l0, pkj, aij);  // dependent pivot-panel chain
  v = b.fma(l1, pkj, v);
  v = b.fma(l2, pkj, v);
  v = b.fma(l3, pkj, v);
  v = b.fsub(v, aij);
  b.spm_store(v);
  b.loop_overhead(2);

  KernelSpec spec;
  spec.desc.name = "lud";
  spec.desc.n_outer = cfg.n;               // trailing rows
  spec.desc.inner_iters = cfg.n / 2;       // triangular: avg row length
  spec.desc.body = std::move(b).build();
  const std::uint64_t row_bytes = 4ull * cfg.n;  // float row
  spec.desc.arrays = {
      {"trailing_rows", swacc::Dir::kInOut, swacc::Access::kContiguous,
       row_bytes},
      {.name = "pivot_block",
       .dir = swacc::Dir::kIn,
       .access = swacc::Access::kBroadcast,
       .broadcast_bytes = row_bytes},
  };
  spec.desc.dma_min_tile = 2;
  spec.desc.comp_imbalance = 0.3;  // triangular workload skew
  spec.desc.vectorizable = true;
  spec.tuned = {.tile = 4, .unroll = 4, .requested_cpes = 64,
                .double_buffer = false};
  spec.naive = {.tile = 1, .unroll = 1, .requested_cpes = 64,
                .double_buffer = false};
  spec.notes =
      "Triangular elimination; paper Table II size 1600x1600, padded to "
      "2048 so copy-granularity chunks divide the CPE count evenly.";
  return spec;
}

KernelSpec lud(Scale scale) {
  LudConfig cfg;
  if (scale == Scale::kSmall) cfg.n = 512;
  return lud_cfg(cfg);
}

namespace host {

void lud(std::span<double> a, std::uint32_t n) {
  SWPERF_CHECK(a.size() == static_cast<std::size_t>(n) * n,
               "lud: bad matrix size");
  for (std::uint32_t k = 0; k < n; ++k) {
    const double piv = a[static_cast<std::size_t>(k) * n + k];
    SWPERF_CHECK(std::abs(piv) > 1e-12, "lud: zero pivot at " << k);
    for (std::uint32_t i = k + 1; i < n; ++i) {
      const double lik = a[static_cast<std::size_t>(i) * n + k] / piv;
      a[static_cast<std::size_t>(i) * n + k] = lik;
      for (std::uint32_t j = k + 1; j < n; ++j) {
        a[static_cast<std::size_t>(i) * n + j] -=
            lik * a[static_cast<std::size_t>(k) * n + j];
      }
    }
  }
}

double lud_residual(std::span<const double> lu,
                    std::span<const double> original, std::uint32_t n) {
  SWPERF_CHECK(lu.size() == original.size() &&
                   lu.size() == static_cast<std::size_t>(n) * n,
               "lud_residual: size mismatch");
  double worst = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      double s = 0.0;
      const std::uint32_t kmax = std::min(i, j);
      for (std::uint32_t k = 0; k <= kmax; ++k) {
        const double l =
            (k == i) ? 1.0 : lu[static_cast<std::size_t>(i) * n + k];
        const double u = lu[static_cast<std::size_t>(k) * n + j];
        s += l * u;
      }
      worst = std::max(
          worst, std::abs(s - original[static_cast<std::size_t>(i) * n + j]));
    }
  }
  return worst;
}

}  // namespace host

}  // namespace swperf::kernels
