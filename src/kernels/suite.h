// The benchmark-suite registry.
//
// Mirrors the paper's evaluation set (Section V-A): the named Rodinia
// kernels ported to the SWACC model, a few extra Rodinia members, and the
// two WRF proxies. fig6_suite() is the accuracy-study population;
// table2_kernels() are the five loop-rich programs the auto-tuning study
// uses.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "kernels/spec.h"

namespace swperf::kernels {

/// All registered kernel names, in the suite's canonical order.
std::vector<std::string> suite_names();

/// Builds a kernel by registry name; throws sw::Error for unknown names.
KernelSpec make(const std::string& name, Scale scale = Scale::kFull);

/// The Fig. 6 accuracy-study population: every registered kernel (with the
/// WRF proxies at 64 CPEs), in its tuned configuration.
std::vector<KernelSpec> fig6_suite(Scale scale = Scale::kFull);

/// The five Table II auto-tuning kernels.
std::vector<std::string> table2_kernels();

}  // namespace swperf::kernels
