// HotSpot thermal simulation (Rodinia), 1024x1024 — the paper's Table II
// size.
//
// Five-point stencil over the temperature grid plus the power map.  The
// SWACC port stages each output row together with its north/south halo
// rows, so the per-row SPM footprint is large (3 temperature rows + power +
// output) and feasible copy granularities are small — tiling choices are
// tight against SPM capacity, which is what makes it an interesting tuning
// subject (2.41x in Table II).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/spec.h"

namespace swperf::kernels {

struct HotspotConfig {
  std::uint32_t rows = 1024;
  std::uint32_t cols = 1024;
};

KernelSpec hotspot(Scale scale = Scale::kFull);
KernelSpec hotspot_cfg(const HotspotConfig& cfg);

namespace host {

/// One explicit step of the HotSpot update on a rows x cols grid
/// (row-major); boundary cells clamp to their own temperature.
std::vector<double> hotspot_step(std::span<const double> temp,
                                 std::span<const double> power,
                                 std::uint32_t rows, std::uint32_t cols,
                                 double cap = 0.5);

}  // namespace host

}  // namespace swperf::kernels
