#include "kernels/backprop.h"

#include <cmath>

#include "sw/error.h"

namespace swperf::kernels {

KernelSpec backprop_cfg(const BackpropConfig& cfg) {
  // Per (input, hidden) connection: partial[j] += in[i] * w[i][j].
  isa::BlockBuilder b("backprop_body");
  const auto w = b.spm_load();
  const auto x = b.spm_load();
  const auto acc = b.reg();
  b.accumulate_fma(acc, w, x);  // loop-carried reduction chain
  b.spm_store(acc);
  b.loop_overhead(2);

  KernelSpec spec;
  spec.desc.name = "backprop";
  spec.desc.n_outer = cfg.n_input;
  spec.desc.inner_iters = cfg.n_hidden;
  spec.desc.body = std::move(b).build();
  spec.desc.arrays = {
      {"weights", swacc::Dir::kIn, swacc::Access::kContiguous,
       4ull * cfg.n_hidden},
      {"partials", swacc::Dir::kOut, swacc::Access::kContiguous, 8},
      {.name = "input",
       .dir = swacc::Dir::kIn,
       .access = swacc::Access::kBroadcast,
       .broadcast_bytes = 4ull * cfg.n_hidden},
  };
  spec.desc.vectorizable = true;
  spec.tuned = {.tile = 128, .unroll = 4, .requested_cpes = 64,
                .double_buffer = false};
  spec.naive = {.tile = 1, .unroll = 1, .requested_cpes = 64,
                .double_buffer = false};
  spec.notes =
      "Loop-carried FMA reduction; unrolling splits the chain. Paper size "
      "1048576*64 scaled.";
  return spec;
}

KernelSpec backprop(Scale scale) {
  BackpropConfig cfg;
  if (scale == Scale::kSmall) cfg.n_input = 1u << 12;
  return backprop_cfg(cfg);
}

namespace host {

std::vector<double> backprop_forward(std::span<const double> input,
                                     std::span<const double> weights,
                                     std::uint32_t n_hidden) {
  SWPERF_CHECK(n_hidden > 0 &&
                   weights.size() == input.size() * n_hidden,
               "backprop: size mismatch");
  std::vector<double> hidden(n_hidden, 0.0);
  for (std::size_t i = 0; i < input.size(); ++i) {
    for (std::uint32_t j = 0; j < n_hidden; ++j) {
      hidden[j] += input[i] * weights[i * n_hidden + j];
    }
  }
  for (auto& h : hidden) h = 1.0 / (1.0 + std::exp(-h));
  return hidden;
}

}  // namespace host

}  // namespace swperf::kernels
