#include "kernels/nw.h"

#include <algorithm>

#include "sw/error.h"

namespace swperf::kernels {

KernelSpec nw_cfg(const NwConfig& cfg) {
  // Per cell: max of north+gap, west+gap, northwest+score — the west
  // dependence makes the chain loop-carried.
  isa::BlockBuilder b("nw_body");
  const auto north = b.spm_load();
  const auto nw_ = b.spm_load();
  const auto sub = b.spm_load();   // substitution score
  const auto west = b.reg();       // carried along the row
  auto best = b.cmp(north, west);
  best = b.fixed(best, nw_);
  best = b.fixed(best, sub);
  b.carry_fixed(west, best);       // west = f(west, best): carried
  b.spm_store(best);
  b.loop_overhead(2);

  KernelSpec spec;
  spec.desc.name = "nw";
  spec.desc.n_outer = cfg.seq_len;       // DP rows
  spec.desc.inner_iters = cfg.seq_len;   // cells per row
  spec.desc.body = std::move(b).build();
  const std::uint64_t row_bytes = 4ull * cfg.seq_len;
  spec.desc.arrays = {
      {"prev_row", swacc::Dir::kIn, swacc::Access::kContiguous, row_bytes},
      {"subst_row", swacc::Dir::kIn, swacc::Access::kContiguous, row_bytes},
      {"this_row", swacc::Dir::kOut, swacc::Access::kContiguous, row_bytes},
      {.name = "seq_b",
       .dir = swacc::Dir::kIn,
       .access = swacc::Access::kBroadcast,
       .broadcast_bytes = cfg.seq_len},
  };
  spec.desc.dma_min_tile = 1;
  spec.tuned = {.tile = 2, .unroll = 4, .requested_cpes = 64,
                .double_buffer = false};
  spec.naive = {.tile = 1, .unroll = 1, .requested_cpes = 64,
                .double_buffer = false};
  spec.notes =
      "Alignment DP with a west-neighbour carried dependence; rows stream "
      "through SPM.";
  return spec;
}

KernelSpec nw(Scale scale) {
  NwConfig cfg;
  if (scale == Scale::kSmall) cfg.seq_len = 512;
  return nw_cfg(cfg);
}

namespace host {

std::vector<int> nw_last_row(std::span<const char> a,
                             std::span<const char> b) {
  SWPERF_CHECK(!a.empty() && !b.empty(), "nw: empty sequences");
  std::vector<int> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) {
    prev[j] = -static_cast<int>(j);
  }
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = -static_cast<int>(i);
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const int match = a[i - 1] == b[j - 1] ? 1 : -1;
      cur[j] = std::max({prev[j] - 1, cur[j - 1] - 1, prev[j - 1] + match});
    }
    std::swap(prev, cur);
  }
  return prev;
}

}  // namespace host

}  // namespace swperf::kernels
