// Back-propagation (Rodinia backprop) forward-pass proxy.
//
// Weighted-sum accumulation of a wide input layer into a hidden layer: the
// weight rows stream through SPM while the input vector stays broadcast-
// resident.  The inner loop is a single loop-carried FMA reduction — the
// strongest unrolling candidate in the suite (the paper's Table II finds
// differing static/dynamic picks here, within 6%).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/spec.h"

namespace swperf::kernels {

struct BackpropConfig {
  std::uint64_t n_input = 1u << 16;  // paper: 1048576*64, scaled /16
  std::uint32_t n_hidden = 64;
};

KernelSpec backprop(Scale scale = Scale::kFull);
KernelSpec backprop_cfg(const BackpropConfig& cfg);

namespace host {

/// hidden[j] = sigmoid(sum_i input[i] * w[i][j]) for a row-major
/// (n_input x n_hidden) weight matrix.
std::vector<double> backprop_forward(std::span<const double> input,
                                     std::span<const double> weights,
                                     std::uint32_t n_hidden);

}  // namespace host

}  // namespace swperf::kernels
