#include "kernels/pathfinder.h"

#include <algorithm>

#include "sw/error.h"

namespace swperf::kernels {

KernelSpec pathfinder_cfg(const PathfinderConfig& cfg) {
  // Per cell: min of three predecessors plus the wall cost.
  isa::BlockBuilder b("pathfinder_body");
  const auto left = b.spm_load();
  const auto mid = b.spm_load();
  const auto right = b.spm_load();
  const auto wall = b.spm_load();
  auto m = b.cmp(left, mid);
  m = b.cmp(m, right);
  const auto sum = b.fixed(m, wall);
  b.spm_store(sum);
  b.loop_overhead(2);

  KernelSpec spec;
  spec.desc.name = "pathfinder";
  spec.desc.n_outer = cfg.n_cols;
  spec.desc.inner_iters = cfg.n_rows;
  spec.desc.body = std::move(b).build();
  spec.desc.arrays = {
      {.name = "wall",
       .dir = swacc::Dir::kIn,
       .access = swacc::Access::kBlock2D,
       .bytes_per_outer = 4ull * cfg.n_rows,
       .segments_per_outer = cfg.n_rows},  // one segment per grid row
      {"result", swacc::Dir::kOut, swacc::Access::kContiguous, 4},
  };
  spec.desc.dma_min_tile = 1;
  spec.desc.vectorizable = true;
  spec.tuned = {.tile = 128, .unroll = 4, .requested_cpes = 64,
                .double_buffer = false};
  spec.naive = {.tile = 1, .unroll = 1, .requested_cpes = 64,
                .double_buffer = false};
  spec.notes =
      "Column-tiled DP; naive 1-column tiles move one 256-B transaction "
      "per 4-B cell per row.";
  return spec;
}

KernelSpec pathfinder(Scale scale) {
  PathfinderConfig cfg;
  if (scale == Scale::kSmall) {
    cfg.n_cols = 10000;
    cfg.n_rows = 50;
  }
  return pathfinder_cfg(cfg);
}

namespace host {

std::vector<int> pathfinder(std::span<const int> wall, std::uint32_t rows,
                            std::uint32_t cols) {
  SWPERF_CHECK(rows >= 1 && cols >= 1 &&
                   wall.size() == static_cast<std::size_t>(rows) * cols,
               "pathfinder: bad grid");
  std::vector<int> cur(wall.begin(), wall.begin() + cols);
  std::vector<int> next(cols);
  for (std::uint32_t r = 1; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      int best = cur[c];
      if (c > 0) best = std::min(best, cur[c - 1]);
      if (c + 1 < cols) best = std::min(best, cur[c + 1]);
      next[c] = best + wall[static_cast<std::size_t>(r) * cols + c];
    }
    std::swap(cur, next);
  }
  return cur;
}

}  // namespace host

}  // namespace swperf::kernels
