// Common kernel-specification type for the benchmark suite.
//
// Each kernel module provides (a) a factory building its SWACC description
// at a configurable problem size, (b) launch-parameter presets — `naive` is
// the SWACC default configuration the paper's Table II speedups are
// measured against, `tuned` is a hand-reasoned good configuration used by
// the Fig. 6 accuracy study (the paper ported and tuned its benchmarks
// before evaluating the model) — and usually (c) a host reference
// implementation of the actual algorithm, so examples and tests exercise
// real computations rather than stubs.
#pragma once

#include <string>

#include "swacc/kernel.h"

namespace swperf::kernels {

/// A kernel plus its launch presets.
struct KernelSpec {
  swacc::KernelDesc desc;
  /// Hand-tuned configuration (Fig. 6 accuracy study).
  swacc::LaunchParams tuned;
  /// SWACC default configuration (Table II speedup baseline).
  swacc::LaunchParams naive;
  /// Irregular kernels (Gload-dominated / imbalanced), per Section V-A.
  bool irregular = false;
  std::string notes;
};

/// Problem-size scale for the suite: kFull mirrors the paper's data sizes
/// (scaled to simulator-feasible magnitudes, documented per kernel), kSmall
/// is for fast tests and auto-tuning studies.
enum class Scale { kSmall, kFull };

}  // namespace swperf::kernels
