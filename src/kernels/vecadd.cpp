#include "kernels/vecadd.h"

#include "sw/error.h"

namespace swperf::kernels {

KernelSpec vecadd_n(std::uint64_t n) {
  isa::BlockBuilder b("vecadd_body");
  const auto a = b.spm_load();
  const auto c = b.spm_load();
  b.spm_store(b.fadd(a, c));
  b.loop_overhead(2);

  KernelSpec spec;
  spec.desc.name = "vecadd";
  spec.desc.n_outer = n;
  spec.desc.inner_iters = 1;
  spec.desc.body = std::move(b).build();
  spec.desc.arrays = {
      {"A", swacc::Dir::kIn, swacc::Access::kContiguous, 8},
      {"B", swacc::Dir::kIn, swacc::Access::kContiguous, 8},
      {"C", swacc::Dir::kOut, swacc::Access::kContiguous, 8},
  };
  spec.desc.vectorizable = true;
  spec.tuned = {.tile = 512, .unroll = 4, .requested_cpes = 64,
                .double_buffer = true};
  spec.naive = {.tile = 1, .unroll = 1, .requested_cpes = 64,
                .double_buffer = false};
  spec.notes = "Fig.3 running example; bandwidth-bound streaming.";
  return spec;
}

KernelSpec vecadd(Scale scale) {
  return vecadd_n(scale == Scale::kFull ? (1u << 20) : (1u << 16));
}

namespace host {

void vecadd(std::span<const double> a, std::span<const double> b,
            std::span<double> c) {
  SWPERF_CHECK(a.size() == b.size() && a.size() == c.size(),
               "vecadd size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] + b[i];
}

}  // namespace host

}  // namespace swperf::kernels
