// SRAD (Rodinia) — speckle-reducing anisotropic diffusion.
//
// Image-processing stencil with a division/sqrt-rich diffusion coefficient:
// regular row staging like hotspot but with a much heavier, partially
// unpipelined compute body.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/spec.h"

namespace swperf::kernels {

struct SradConfig {
  std::uint32_t rows = 512;  // Rodinia's 502x458 padded to 512x512
  std::uint32_t cols = 512;
};

KernelSpec srad(Scale scale = Scale::kFull);
KernelSpec srad_cfg(const SradConfig& cfg);

namespace host {

/// One SRAD diffusion-coefficient pass over a row-major image; returns the
/// coefficient grid. `q0sq` is the speckle-scale parameter.
std::vector<double> srad_coefficients(std::span<const double> img,
                                      std::uint32_t rows, std::uint32_t cols,
                                      double q0sq = 0.05);

}  // namespace host

}  // namespace swperf::kernels
