// N-body (all-pairs gravitational step) — the paper's double-buffering
// case study (Figure 8).
//
// All body positions fit in SPM (broadcast) while each CPE streams its own
// bodies through; the O(n) inner loop of square roots and divisions makes
// the kernel strongly compute-bound.  Exactly because computation already
// hides almost all DMA time, double buffering buys only a few percent —
// the paper measured 3.7%, predicted within 3.3%.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/spec.h"

namespace swperf::kernels {

struct NbodyConfig {
  std::uint32_t n_bodies = 1024;
  /// Bodies per SPM-resident j-tile: each CPE streams the j-bodies through
  /// SPM tile by tile (the positions of all bodies exceed what a kernel
  /// can keep resident alongside its own block), recomputing against its
  /// own i-block.  This j-tile streaming is what gives n-body its DMA
  /// phase — and the double-buffer opportunity of Fig. 8.
  std::uint32_t j_tile = 16;
  /// i-bodies owned per CPE (n_bodies / 64 by default).
  std::uint32_t i_block = 16;
};

KernelSpec nbody(Scale scale = Scale::kFull);
KernelSpec nbody_cfg(const NbodyConfig& cfg);

namespace host {

/// One all-pairs acceleration evaluation + Euler step.
/// pos/vel are xyz triples; softening avoids singularities.
void nbody_step(std::span<double> pos, std::span<double> vel, double dt,
                double softening = 1e-3);

/// Total energy (kinetic + potential), for conservation checks.
double nbody_energy(std::span<const double> pos, std::span<const double> vel,
                    double softening = 1e-3);

}  // namespace host

}  // namespace swperf::kernels
