#include "kernels/streamcluster.h"

#include <limits>

#include "sw/error.h"

namespace swperf::kernels {

KernelSpec streamcluster_cfg(const StreamclusterConfig& cfg) {
  // Per (point, dimension): squared-distance accumulation to the candidate
  // centre.
  isa::BlockBuilder b("streamcluster_body");
  const auto x = b.spm_load();
  const auto c = b.spm_load();
  const auto acc = b.reg();
  const auto d = b.fsub(x, c);
  b.accumulate_fma(acc, d, d);
  b.loop_overhead(2);

  KernelSpec spec;
  spec.desc.name = "streamcluster";
  spec.desc.n_outer = cfg.n_points;
  spec.desc.inner_iters = cfg.dim;
  spec.desc.body = std::move(b).build();
  spec.desc.arrays = {
      {"points", swacc::Dir::kIn, swacc::Access::kContiguous,
       4ull * cfg.dim},
      {"assign", swacc::Dir::kOut, swacc::Access::kContiguous, 4},
      {.name = "centers",
       .dir = swacc::Dir::kIn,
       .access = swacc::Access::kIndirect,
       .gloads_per_inner = 0.5,  // open-facility membership tests
       .gload_bytes = 32},
  };
  spec.desc.gload_imbalance = 0.1;
  spec.desc.gload_coalesceable = 0.4;
  spec.irregular = true;
  spec.tuned = {.tile = 64, .unroll = 2, .requested_cpes = 64,
                .double_buffer = false};
  spec.naive = {.tile = 16, .unroll = 1, .requested_cpes = 64,
                .double_buffer = false};
  spec.notes = "Mixed DMA streaming + irregular centre Gloads.";
  return spec;
}

KernelSpec streamcluster(Scale scale) {
  StreamclusterConfig cfg;
  if (scale == Scale::kSmall) cfg.n_points = 1u << 12;
  return streamcluster_cfg(cfg);
}

namespace host {

double assignment_cost(std::span<const double> points,
                       std::span<const double> centers, std::uint32_t dim) {
  SWPERF_CHECK(dim > 0 && points.size() % dim == 0 &&
                   centers.size() % dim == 0 && !centers.empty(),
               "assignment_cost: bad spans");
  const std::size_t n = points.size() / dim;
  const std::size_t k = centers.size() / dim;
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      double d2 = 0.0;
      for (std::uint32_t f = 0; f < dim; ++f) {
        const double d = points[i * dim + f] - centers[c * dim + f];
        d2 += d * d;
      }
      best = std::min(best, d2);
    }
    total += best;
  }
  return total;
}

}  // namespace host

}  // namespace swperf::kernels
