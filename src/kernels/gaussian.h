// Gaussian elimination (Rodinia gaussian).
//
// Trailing-submatrix update against the current pivot row: matrix rows
// stream through SPM, the pivot row is broadcast, and per-row multipliers
// stay in registers — structurally lud's sibling with a leaner body,
// included to round out the suite's dense-linear-algebra coverage.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/spec.h"

namespace swperf::kernels {

struct GaussianConfig {
  std::uint32_t n = 1024;
};

KernelSpec gaussian(Scale scale = Scale::kFull);
KernelSpec gaussian_cfg(const GaussianConfig& cfg);

namespace host {

/// Forward elimination of [A|b] (n x n matrix, rhs) followed by back
/// substitution; returns x with A x = b. Requires nonzero pivots.
std::vector<double> gaussian_solve(std::span<const double> a,
                                   std::span<const double> b,
                                   std::uint32_t n);

}  // namespace host

}  // namespace swperf::kernels
