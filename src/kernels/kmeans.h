// K-Means clustering (Rodinia) — the paper's showcase regular kernel.
//
// The assignment step is distributed over points: each CPE stages a tile of
// points through SPM, keeps the k centroids SPM-resident (broadcast), and
// accumulates per-cluster squared distances — k independent reduction
// chains, making unrolling/ILP matter.  Its fully predictable accesses give
// the paper's near-perfect prediction (Section V-B) and its DMA granularity
// sweep is Figure 7.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/spec.h"

namespace swperf::kernels {

struct KmeansConfig {
  std::uint64_t n_points = 1u << 18;  // paper used 395216 x 32 features
  std::uint32_t n_features = 32;
  std::uint32_t n_clusters = 8;
};

KernelSpec kmeans(Scale scale = Scale::kFull);
KernelSpec kmeans_cfg(const KmeansConfig& cfg);

namespace host {

/// One Lloyd iteration: assigns each point (row-major n x dim) to the
/// nearest centroid and returns the new centroids. `assignments` receives
/// the nearest-centroid index per point.
std::vector<double> kmeans_step(std::span<const double> points,
                                std::span<const double> centroids,
                                std::uint32_t dim,
                                std::span<std::uint32_t> assignments);

/// Full Lloyd's algorithm for `iters` iterations from the first k points.
std::vector<double> kmeans(std::span<const double> points, std::uint32_t dim,
                           std::uint32_t k, int iters,
                           std::span<std::uint32_t> assignments);

}  // namespace host

}  // namespace swperf::kernels
