// B+tree lookups (Rodinia b+tree) — pointer-chasing irregular kernel.
//
// Each query walks root-to-leaf through nodes whose addresses depend on the
// previous comparison: every level is a Gload, nothing can be staged (the
// paper groups it with bfs/leukocyte/streamcluster as "difficult to
// leverage SPM", Section V-B).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/spec.h"

namespace swperf::kernels {

struct BtreeConfig {
  std::uint64_t n_queries = 1u << 17;
  std::uint32_t depth = 8;  // tree levels walked per query
};

KernelSpec btree(Scale scale = Scale::kFull);
KernelSpec btree_cfg(const BtreeConfig& cfg);

namespace host {

/// Sorted-array binary search standing in for the B+tree walk: returns the
/// index of the first element >= key (== size if none).
std::size_t lower_bound_search(std::span<const std::uint64_t> sorted,
                               std::uint64_t key);

}  // namespace host

}  // namespace swperf::kernels
