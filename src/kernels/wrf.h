// WRF weather-model kernel proxies (Section V-C3 / Figures 9 and 10).
//
// The paper evaluates its #active_CPEs analysis on two kernels of the WRF
// production weather code: a memory-intensive *dynamics* kernel and a
// computation-intensive *physics* kernel.  The originals are proprietary
// Fortran; these proxies reproduce their documented structure:
//
//   * dynamics: 2D [nz x nx] float fields distributed along x.  Each CPE
//     owns an x-slice of width nx/active and DMAs it in z-chunks, so each
//     DMA segment is width*4 bytes — with more CPEs the segment shrinks
//     below the 256-B DRAM transaction and bandwidth is wasted, which is
//     why 48 CPEs beat 64 (Section IV-3).  Because the per-CPE slice width
//     depends on the CPE count, the kernel factory is parameterised by the
//     number of active CPEs (like re-generating the SWACC code per
//     configuration).
//
//   * physics: independent column microphysics — div/sqrt-heavy compute on
//     a modest column state, scaling almost linearly with CPEs.
#pragma once

#include <cstdint>

#include "kernels/spec.h"

namespace swperf::kernels {

struct WrfDynamicsConfig {
  std::uint64_t nx = 6144;      // horizontal extent (contiguous dimension)
  std::uint32_t nz = 64;        // vertical levels
  std::uint32_t z_chunk = 4;    // levels per DMA chunk
  std::uint32_t n_fields = 8;   // prognostic fields
};

/// Builds the dynamics proxy for a given CPE count. The returned spec's
/// presets request exactly `active_cpes`.
KernelSpec wrf_dynamics(std::uint32_t active_cpes,
                        Scale scale = Scale::kFull);
KernelSpec wrf_dynamics_cfg(std::uint32_t active_cpes,
                            const WrfDynamicsConfig& cfg);

struct WrfPhysicsConfig {
  std::uint64_t n_columns = 8192;
  std::uint32_t nz = 40;
  std::uint32_t passes = 3;  // microphysics sweeps per column
};

KernelSpec wrf_physics(std::uint32_t active_cpes = 64,
                       Scale scale = Scale::kFull);
KernelSpec wrf_physics_cfg(std::uint32_t active_cpes,
                           const WrfPhysicsConfig& cfg);

}  // namespace swperf::kernels
