#include "kernels/wrf.h"

#include <algorithm>

#include "sw/error.h"

namespace swperf::kernels {

KernelSpec wrf_dynamics_cfg(std::uint32_t active_cpes,
                            const WrfDynamicsConfig& cfg) {
  SWPERF_CHECK(active_cpes >= 1, "wrf_dynamics: active_cpes=0");
  SWPERF_CHECK(cfg.nz % cfg.z_chunk == 0,
               "wrf_dynamics: z_chunk must divide nz");
  // Each CPE owns an x-slice of width nx/active. At low CPE counts the
  // slice's z-chunk would overflow SPM, so the slice is split into several
  // sub-slices processed one after another (extra outer elements), exactly
  // as a real port would re-block the domain.
  const std::uint64_t width_total =
      std::max<std::uint64_t>(1, cfg.nx / active_cpes);
  const std::uint64_t width_max =
      (sw::ArchParams{}.spm_bytes / 2) /
      (4ull * cfg.z_chunk * cfg.n_fields);
  const std::uint64_t slices = (width_total + width_max - 1) / width_max;
  const std::uint64_t width = width_total / slices;

  // Per grid point: upwind advection + pressure-gradient update. Enough
  // arithmetic that the kernel is compute-limited below ~32 CPEs and
  // memory-limited above — the trade-off Fig. 9/10 turn on.
  isa::BlockBuilder b("wrf_dyn_body");
  const auto u = b.spm_load();
  const auto v = b.spm_load();
  const auto w = b.spm_load();
  const auto dtx = b.reg();
  const auto dtz = b.reg();
  auto flux = b.fsub(u, v);
  flux = b.fmul(flux, dtx);
  auto grad = b.fsub(w, u);
  grad = b.fmul(grad, dtz);
  auto s = b.fadd(flux, grad);
  s = b.fma(s, dtx, u);
  s = b.fma(grad, flux, s);
  s = b.fadd(s, v);
  b.spm_store(s);
  b.loop_overhead(2);

  KernelSpec spec;
  spec.desc.name = "wrf_dynamics";
  // Flattened outer space: one element per (CPE sub-slice, z-chunk) pair,
  // dealt round-robin so each CPE gets exactly its slice's z-chunks.
  spec.desc.n_outer = static_cast<std::uint64_t>(active_cpes) * slices *
                      (cfg.nz / cfg.z_chunk);
  spec.desc.inner_iters = width * cfg.z_chunk;  // grid points per chunk
  spec.desc.body = std::move(b).build();
  for (std::uint32_t f = 0; f < cfg.n_fields; ++f) {
    swacc::ArrayRef ar;
    ar.name = "field" + std::to_string(f);
    ar.dir = f < cfg.n_fields / 2 ? swacc::Dir::kIn : swacc::Dir::kInOut;
    ar.access = swacc::Access::kStrided;
    ar.bytes_per_outer = static_cast<std::uint64_t>(cfg.z_chunk) * width * 4;
    ar.segments_per_outer = cfg.z_chunk;  // one DMA call per level row
    spec.desc.arrays.push_back(ar);
  }
  spec.desc.dma_min_tile = 1;
  spec.desc.vectorizable = true;
  spec.tuned = {.tile = 1, .unroll = 2, .requested_cpes = active_cpes,
                .double_buffer = false};
  spec.naive = {.tile = 1, .unroll = 1, .requested_cpes = active_cpes,
                .double_buffer = false};
  spec.notes =
      "Memory-intensive 2D advection proxy; DMA row length = 4*nx/active "
      "bytes, so transaction waste grows with #active_CPEs.";
  return spec;
}

KernelSpec wrf_dynamics(std::uint32_t active_cpes, Scale scale) {
  WrfDynamicsConfig cfg;
  if (scale == Scale::kSmall) {
    cfg.nx = 1536;
    cfg.nz = 32;
  }
  return wrf_dynamics_cfg(active_cpes, cfg);
}

KernelSpec wrf_physics_cfg(std::uint32_t active_cpes,
                           const WrfPhysicsConfig& cfg) {
  // Per level per pass: saturation adjustment with div/sqrt chains.
  isa::BlockBuilder b("wrf_phys_body");
  const auto t = b.spm_load();
  const auto qv = b.spm_load();
  const auto qc = b.spm_load();
  auto es = b.fma(t, t, qv);          // saturation pressure proxy
  es = b.fadd(es, qc);
  const auto rs = b.fdiv(qv, es);
  const auto ex = b.fsqrt(rs);
  auto cond = b.fsub(qv, rs);
  cond = b.fmul(cond, ex);
  auto tn = b.fma(cond, es, t);
  tn = b.fadd(tn, cond);
  auto qn = b.fsub(qv, cond);
  qn = b.fma(qn, rs, qc);
  b.spm_store(tn);
  b.spm_store(qn);
  b.loop_overhead(2);

  KernelSpec spec;
  spec.desc.name = "wrf_physics";
  spec.desc.n_outer = cfg.n_columns;
  spec.desc.inner_iters =
      static_cast<std::uint64_t>(cfg.nz) * cfg.passes;
  spec.desc.body = std::move(b).build();
  const std::uint64_t col_bytes = 8ull * cfg.nz;  // double-precision column
  spec.desc.arrays = {
      {"state", swacc::Dir::kInOut, swacc::Access::kContiguous, col_bytes},
      {"forcing", swacc::Dir::kIn, swacc::Access::kContiguous, col_bytes},
      {.name = "coeffs",
       .dir = swacc::Dir::kIn,
       .access = swacc::Access::kBroadcast,
       .broadcast_bytes = 2048},
  };
  spec.desc.dma_min_tile = 1;
  spec.desc.vectorizable = true;
  spec.tuned = {.tile = 16, .unroll = 2, .requested_cpes = active_cpes,
                .double_buffer = false};
  spec.naive = {.tile = 1, .unroll = 1, .requested_cpes = active_cpes,
                .double_buffer = false};
  spec.notes =
      "Computation-intensive column microphysics proxy; scales with CPEs.";
  return spec;
}

KernelSpec wrf_physics(std::uint32_t active_cpes, Scale scale) {
  WrfPhysicsConfig cfg;
  if (scale == Scale::kSmall) cfg.n_columns = 1024;
  return wrf_physics_cfg(active_cpes, cfg);
}

}  // namespace swperf::kernels
