#include "kernels/nbody.h"

#include <cmath>

#include "sw/error.h"

namespace swperf::kernels {

KernelSpec nbody_cfg(const NbodyConfig& cfg) {
  SWPERF_CHECK(cfg.n_bodies % cfg.j_tile == 0 &&
                   cfg.n_bodies % cfg.i_block == 0,
               "nbody: j_tile and i_block must divide n_bodies");
  // One i-j interaction: displacement, r^2, 1/r^3, accumulate.
  isa::BlockBuilder b("nbody_body");
  const auto xi = b.reg();
  const auto yi = b.reg();
  const auto zi = b.reg();
  const auto xj = b.spm_load();
  const auto yj = b.spm_load();
  const auto zj = b.spm_load();
  const auto dx = b.fsub(xj, xi);
  const auto dy = b.fsub(yj, yi);
  const auto dz = b.fsub(zj, zi);
  auto r2 = b.fmul(dx, dx);
  r2 = b.fma(dy, dy, r2);
  r2 = b.fma(dz, dz, r2);
  const auto r = b.fsqrt(r2);
  const auto inv3 = b.fdiv(r, r2);  // ~ 1/r^3 scaling chain
  const auto ax = b.reg();
  const auto ay = b.reg();
  const auto az = b.reg();
  b.accumulate_fma(ax, dx, inv3);
  b.accumulate_fma(ay, dy, inv3);
  b.accumulate_fma(az, dz, inv3);
  b.loop_overhead(2);

  KernelSpec spec;
  spec.desc.name = "nbody";
  // Flattened outer space: one element per (i-block, j-tile) pair. Each
  // outer element stages the j-tile's positions through SPM and computes
  // i_block x j_tile interactions against the SPM-resident i-block.
  spec.desc.n_outer = static_cast<std::uint64_t>(cfg.n_bodies / cfg.i_block) *
                      (cfg.n_bodies / cfg.j_tile);
  spec.desc.inner_iters =
      static_cast<std::uint64_t>(cfg.i_block) * cfg.j_tile;
  spec.desc.body = std::move(b).build();
  spec.desc.arrays = {
      {"j_pos", swacc::Dir::kIn, swacc::Access::kContiguous,
       16ull * cfg.j_tile},
      {"i_acc", swacc::Dir::kOut, swacc::Access::kContiguous,
       24ull * cfg.i_block},
      {.name = "i_pos",
       .dir = swacc::Dir::kIn,
       .access = swacc::Access::kBroadcast,
       .broadcast_bytes = 16ull * cfg.i_block},
  };
  spec.desc.dma_min_tile = 1;
  spec.desc.vectorizable = true;
  spec.tuned = {.tile = 1, .unroll = 2, .requested_cpes = 64,
                .double_buffer = false};
  spec.naive = {.tile = 1, .unroll = 1, .requested_cpes = 64,
                .double_buffer = false};
  spec.notes =
      "All-pairs with SPM j-tile streaming; double-buffer study of Fig. 8 "
      "toggles double_buffer on the tuned configuration.";
  return spec;
}

KernelSpec nbody(Scale scale) {
  NbodyConfig cfg;
  if (scale == Scale::kSmall) {
    cfg.n_bodies = 512;
    cfg.j_tile = 16;
    cfg.i_block = 8;
  }
  return nbody_cfg(cfg);
}

namespace host {

void nbody_step(std::span<double> pos, std::span<double> vel, double dt,
                double softening) {
  SWPERF_CHECK(pos.size() % 3 == 0 && pos.size() == vel.size(),
               "nbody: bad spans");
  const std::size_t n = pos.size() / 3;
  std::vector<double> acc(pos.size(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double dx = pos[3 * j] - pos[3 * i];
      const double dy = pos[3 * j + 1] - pos[3 * i + 1];
      const double dz = pos[3 * j + 2] - pos[3 * i + 2];
      const double r2 = dx * dx + dy * dy + dz * dz + softening;
      const double inv3 = 1.0 / (r2 * std::sqrt(r2));
      acc[3 * i] += dx * inv3;
      acc[3 * i + 1] += dy * inv3;
      acc[3 * i + 2] += dz * inv3;
    }
  }
  for (std::size_t k = 0; k < pos.size(); ++k) {
    vel[k] += dt * acc[k];
    pos[k] += dt * vel[k];
  }
}

double nbody_energy(std::span<const double> pos, std::span<const double> vel,
                    double softening) {
  SWPERF_CHECK(pos.size() % 3 == 0 && pos.size() == vel.size(),
               "nbody: bad spans");
  const std::size_t n = pos.size() / 3;
  double e = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    e += 0.5 * (vel[3 * i] * vel[3 * i] + vel[3 * i + 1] * vel[3 * i + 1] +
                vel[3 * i + 2] * vel[3 * i + 2]);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = pos[3 * j] - pos[3 * i];
      const double dy = pos[3 * j + 1] - pos[3 * i + 1];
      const double dz = pos[3 * j + 2] - pos[3 * i + 2];
      e -= 1.0 / std::sqrt(dx * dx + dy * dy + dz * dz + softening);
    }
  }
  return e;
}

}  // namespace host

}  // namespace swperf::kernels
