// Breadth-first search (Rodinia bfs) — the paper's canonical irregular
// kernel and its worst prediction case (9.6% error, Fig. 6).
//
// Neighbour lists and the visited map are data-dependent: conventional
// blocking cannot stage them, so nearly every access is a Gload consuming a
// whole 256-B transaction for 8 bytes of payload — Gload waste dominates
// the execution time.  Frontier sizes also skew per-CPE work (modelled as
// gload imbalance; the model takes the longest path, as the paper does).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/spec.h"
#include "sw/rng.h"

namespace swperf::kernels {

struct BfsConfig {
  std::uint64_t n_nodes = 1u << 18;
  double avg_degree = 4.0;
};

KernelSpec bfs(Scale scale = Scale::kFull);
KernelSpec bfs_cfg(const BfsConfig& cfg);

namespace host {

/// Compressed-sparse-row graph.
struct Graph {
  std::vector<std::uint32_t> row_offsets;  // n+1 entries
  std::vector<std::uint32_t> columns;

  std::uint32_t nodes() const {
    return static_cast<std::uint32_t>(row_offsets.size() - 1);
  }
};

/// Deterministic random graph with ~avg_degree out-edges per node, always
/// including edge i -> i+1 so the graph is connected from node 0.
Graph random_graph(std::uint32_t n, double avg_degree, sw::Rng& rng);

/// BFS distances from `source` (UINT32_MAX = unreachable).
std::vector<std::uint32_t> bfs(const Graph& g, std::uint32_t source);

}  // namespace host

}  // namespace swperf::kernels
