// Vector addition — the paper's running example (Figure 3).
//
// C[i][j] = A[i][j] + B[i][j] over a 1024-wide inner dimension: the
// simplest fully regular, bandwidth-bound kernel. Used by the quickstart
// example and as the canonical regular data point of the accuracy study.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/spec.h"

namespace swperf::kernels {

/// SWACC description of vector add over `n` double elements.
KernelSpec vecadd(Scale scale = Scale::kFull);
KernelSpec vecadd_n(std::uint64_t n);

namespace host {
/// Reference implementation: c = a + b.
void vecadd(std::span<const double> a, std::span<const double> b,
            std::span<double> c);
}  // namespace host

}  // namespace swperf::kernels
