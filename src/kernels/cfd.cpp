#include "kernels/cfd.h"

namespace swperf::kernels {

KernelSpec cfd_cfg(const CfdConfig& cfg) {
  // One face's flux contribution: momentum/energy FMAs plus the pressure
  // division (unpipelined on the CPE).
  isa::BlockBuilder b("cfd_body");
  const auto rho = b.spm_load();
  const auto mom = b.spm_load();
  const auto ene = b.spm_load();
  const auto nrm = b.spm_load();
  const auto vel = b.fdiv(mom, rho);                 // velocity = momentum/density
  const auto ke = b.fmul(vel, vel);
  const auto pres = b.fma(ene, ke, rho);             // pressure proxy
  auto fl = b.fmul(pres, nrm);
  fl = b.fma(vel, mom, fl);
  fl = b.fma(vel, ene, fl);
  fl = b.fadd(fl, ke);
  b.spm_store(fl);
  b.loop_overhead(2);

  KernelSpec spec;
  spec.desc.name = "cfd";
  spec.desc.n_outer = cfg.n_cells;
  spec.desc.inner_iters = cfg.n_faces;
  spec.desc.body = std::move(b).build();
  spec.desc.arrays = {
      {"variables", swacc::Dir::kIn, swacc::Access::kContiguous, 20},
      {"normals", swacc::Dir::kIn, swacc::Access::kContiguous, 48},
      {"fluxes", swacc::Dir::kOut, swacc::Access::kContiguous, 20},
      {.name = "nb_variables",
       .dir = swacc::Dir::kIn,
       .access = swacc::Access::kIndirect,
       .gloads_per_inner = 0.25,  // unstructured-mesh gather
       .gload_bytes = 20},
  };
  spec.desc.gload_imbalance = 0.1;
  spec.desc.dma_min_tile = 1;  // mesh ports always stage cell data via DMA
  spec.desc.vectorizable = true;
  spec.tuned = {.tile = 128, .unroll = 2, .requested_cpes = 64,
                .double_buffer = false};
  spec.naive = {.tile = 1, .unroll = 1, .requested_cpes = 64,
                .double_buffer = false};
  spec.notes =
      "Division-heavy per-face fluxes; light indirect neighbour gather. "
      "Paper size 193474*4 scaled.";
  return spec;
}

KernelSpec cfd(Scale scale) {
  CfdConfig cfg;
  if (scale == Scale::kSmall) cfg.n_cells = 12144;
  return cfd_cfg(cfg);
}

}  // namespace swperf::kernels
