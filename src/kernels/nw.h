// Needleman-Wunsch (Rodinia nw) — sequence-alignment dynamic programming.
//
// Row-by-row DP with a hard loop-carried dependence along the row (each
// cell needs its west neighbour), so the body cannot vectorize; the port
// streams score rows and the reference sequence through SPM.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/spec.h"

namespace swperf::kernels {

struct NwConfig {
  std::uint32_t seq_len = 2048;  // alignment matrix dimension
};

KernelSpec nw(Scale scale = Scale::kFull);
KernelSpec nw_cfg(const NwConfig& cfg);

namespace host {

/// Global alignment score matrix (last row returned) for sequences a and b
/// under +1 match / -1 mismatch / -1 gap scoring.
std::vector<int> nw_last_row(std::span<const char> a,
                             std::span<const char> b);

}  // namespace host

}  // namespace swperf::kernels
