// Streamcluster (Rodinia) — online clustering with irregular centre access.
//
// Points stream through SPM, but the evolving centre set is accessed
// data-dependently (membership tests against the open facilities), which
// the SW26010 port cannot stage — a mixed DMA + Gload profile, listed by
// the paper among the kernels where SPM is hard to leverage.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/spec.h"

namespace swperf::kernels {

struct StreamclusterConfig {
  std::uint64_t n_points = 1u << 15;
  std::uint32_t dim = 64;
};

KernelSpec streamcluster(Scale scale = Scale::kFull);
KernelSpec streamcluster_cfg(const StreamclusterConfig& cfg);

namespace host {

/// Total cost of assigning each point (row-major n x dim) to its nearest
/// centre — the gain function streamcluster evaluates.
double assignment_cost(std::span<const double> points,
                       std::span<const double> centers, std::uint32_t dim);

}  // namespace host

}  // namespace swperf::kernels
