#include "kernels/gaussian.h"

#include <cmath>

#include "sw/error.h"

namespace swperf::kernels {

KernelSpec gaussian_cfg(const GaussianConfig& cfg) {
  // Per trailing element: a[i][j] -= m_i * pivot[j].
  isa::BlockBuilder b("gaussian_body");
  const auto aij = b.spm_load();
  const auto pj = b.spm_load();
  const auto mi = b.reg();  // row multiplier, register-resident
  const auto prod = b.fmul(mi, pj);
  b.spm_store(b.fsub(aij, prod));
  b.loop_overhead(2);

  KernelSpec spec;
  spec.desc.name = "gaussian";
  spec.desc.n_outer = cfg.n;             // trailing rows
  spec.desc.inner_iters = cfg.n / 2;     // triangular average
  spec.desc.body = std::move(b).build();
  const std::uint64_t row_bytes = 4ull * cfg.n;
  spec.desc.arrays = {
      {"rows", swacc::Dir::kInOut, swacc::Access::kContiguous, row_bytes},
      {.name = "pivot_row",
       .dir = swacc::Dir::kIn,
       .access = swacc::Access::kBroadcast,
       .broadcast_bytes = row_bytes},
  };
  spec.desc.dma_min_tile = 2;
  spec.desc.comp_imbalance = 0.25;  // triangular workload skew
  spec.desc.vectorizable = true;
  spec.tuned = {.tile = 8, .unroll = 4, .requested_cpes = 64,
                .double_buffer = false};
  spec.naive = {.tile = 1, .unroll = 1, .requested_cpes = 64,
                .double_buffer = false};
  spec.notes = "Trailing-matrix elimination; lud's leaner sibling.";
  return spec;
}

KernelSpec gaussian(Scale scale) {
  GaussianConfig cfg;
  if (scale == Scale::kSmall) cfg.n = 256;
  return gaussian_cfg(cfg);
}

namespace host {

std::vector<double> gaussian_solve(std::span<const double> a,
                                   std::span<const double> b,
                                   std::uint32_t n) {
  SWPERF_CHECK(a.size() == static_cast<std::size_t>(n) * n &&
                   b.size() == n,
               "gaussian: bad dimensions");
  std::vector<double> m(a.begin(), a.end());
  std::vector<double> rhs(b.begin(), b.end());
  for (std::uint32_t k = 0; k < n; ++k) {
    const double piv = m[static_cast<std::size_t>(k) * n + k];
    SWPERF_CHECK(std::abs(piv) > 1e-12, "gaussian: zero pivot at " << k);
    for (std::uint32_t i = k + 1; i < n; ++i) {
      const double f = m[static_cast<std::size_t>(i) * n + k] / piv;
      for (std::uint32_t j = k; j < n; ++j) {
        m[static_cast<std::size_t>(i) * n + j] -=
            f * m[static_cast<std::size_t>(k) * n + j];
      }
      rhs[i] -= f * rhs[k];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::uint32_t i = n; i-- > 0;) {
    double s = rhs[i];
    for (std::uint32_t j = i + 1; j < n; ++j) {
      s -= m[static_cast<std::size_t>(i) * n + j] * x[j];
    }
    x[i] = s / m[static_cast<std::size_t>(i) * n + i];
  }
  return x;
}

}  // namespace host

}  // namespace swperf::kernels
