#include "kernels/leukocyte.h"

namespace swperf::kernels {

KernelSpec leukocyte_cfg(const LeukocyteConfig& cfg) {
  // Per contour sample: gradient projection with normalisation (div+sqrt).
  isa::BlockBuilder b("leukocyte_body");
  const auto gx = b.spm_load();
  const auto gy = b.spm_load();
  const auto nx = b.spm_load();
  auto g2 = b.fmul(gx, gx);
  g2 = b.fma(gy, gy, g2);
  const auto norm = b.fsqrt(g2);
  const auto proj = b.fdiv(gx, norm);
  auto s = b.fma(proj, nx, gy);
  s = b.fadd(s, g2);
  const auto acc = b.reg();
  b.accumulate_add(acc, s);
  b.loop_overhead(2);

  KernelSpec spec;
  spec.desc.name = "leukocyte";
  spec.desc.n_outer = cfg.n_cells;
  spec.desc.inner_iters = cfg.n_samples;
  spec.desc.body = std::move(b).build();
  spec.desc.arrays = {
      {.name = "patch",
       .dir = swacc::Dir::kIn,
       .access = swacc::Access::kStrided,
       .bytes_per_outer = 1024,
       .segments_per_outer = 8},  // 8 image rows per candidate window
      {"gicov", swacc::Dir::kOut, swacc::Access::kContiguous, 8},
      {.name = "gradient",
       .dir = swacc::Dir::kIn,
       .access = swacc::Access::kIndirect,
       .gloads_per_inner = 0.3,  // off-window gradient lookups
       .gload_bytes = 8},
  };
  spec.desc.comp_imbalance = 0.15;  // branch-dependent sample counts
  spec.desc.gload_imbalance = 0.08;
  spec.desc.dma_min_tile = 2;
  spec.irregular = true;
  spec.tuned = {.tile = 16, .unroll = 2, .requested_cpes = 64,
                .double_buffer = false};
  spec.naive = {.tile = 2, .unroll = 1, .requested_cpes = 64,
                .double_buffer = false};
  spec.notes =
      "Unpipelined div/sqrt chains + branch-imbalanced sampling; strided "
      "image windows.";
  return spec;
}

KernelSpec leukocyte(Scale scale) {
  LeukocyteConfig cfg;
  if (scale == Scale::kSmall) cfg.n_cells = 512;
  return leukocyte_cfg(cfg);
}

}  // namespace swperf::kernels
