#include "kernels/suite.h"

#include <map>

#include "kernels/backprop.h"
#include "kernels/bfs.h"
#include "kernels/btree.h"
#include "kernels/cfd.h"
#include "kernels/gaussian.h"
#include "kernels/hotspot.h"
#include "kernels/kmeans.h"
#include "kernels/leukocyte.h"
#include "kernels/lud.h"
#include "kernels/nbody.h"
#include "kernels/nw.h"
#include "kernels/pathfinder.h"
#include "kernels/srad.h"
#include "kernels/streamcluster.h"
#include "kernels/vecadd.h"
#include "kernels/wrf.h"
#include "sw/error.h"

namespace swperf::kernels {

namespace {

using Factory = KernelSpec (*)(Scale);

const std::vector<std::pair<std::string, Factory>>& registry() {
  static const std::vector<std::pair<std::string, Factory>> reg = {
      {"vecadd", &vecadd},
      {"kmeans", &kmeans},
      {"cfd", &cfd},
      {"lud", &lud},
      {"hotspot", &hotspot},
      {"backprop", &backprop},
      {"nbody", &nbody},
      {"bfs", &bfs},
      {"b+tree", &btree},
      {"streamcluster", &streamcluster},
      {"leukocyte", &leukocyte},
      {"pathfinder", &pathfinder},
      {"srad", &srad},
      {"nw", &nw},
      {"gaussian", &gaussian},
      {"wrf_dynamics", [](Scale s) { return wrf_dynamics(64, s); }},
      {"wrf_physics", [](Scale s) { return wrf_physics(64, s); }},
  };
  return reg;
}

}  // namespace

std::vector<std::string> suite_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, _] : registry()) names.push_back(name);
  return names;
}

KernelSpec make(const std::string& name, Scale scale) {
  for (const auto& [n, factory] : registry()) {
    if (n == name) return factory(scale);
  }
  SWPERF_CHECK(false, "unknown kernel '" << name << "'");
  return {};  // unreachable
}

std::vector<KernelSpec> fig6_suite(Scale scale) {
  std::vector<KernelSpec> out;
  out.reserve(registry().size());
  for (const auto& [_, factory] : registry()) out.push_back(factory(scale));
  return out;
}

std::vector<std::string> table2_kernels() {
  return {"kmeans", "cfd", "lud", "hotspot", "backprop"};
}

}  // namespace swperf::kernels
