#include "kernels/kmeans.h"

#include <limits>

#include "sw/error.h"

namespace swperf::kernels {

KernelSpec kmeans_cfg(const KmeansConfig& cfg) {
  SWPERF_CHECK(cfg.n_clusters >= 1 && cfg.n_features >= 1,
               "kmeans: bad config");
  // Body of one (point, feature) step: load the point's feature, then for
  // each cluster subtract the centroid feature and accumulate the squared
  // difference — k loop-carried accumulator chains.
  isa::BlockBuilder b("kmeans_body");
  const auto x = b.spm_load();
  std::vector<isa::Reg> accs(cfg.n_clusters);
  for (auto& acc : accs) acc = b.reg();
  for (std::uint32_t c = 0; c < cfg.n_clusters; ++c) {
    const auto cf = b.spm_load();     // centroid feature (SPM-resident)
    const auto d = b.fsub(x, cf);
    b.accumulate_fma(accs[c], d, d);  // acc += d*d (carried)
  }
  b.loop_overhead(2);

  KernelSpec spec;
  spec.desc.name = "kmeans";
  spec.desc.n_outer = cfg.n_points;
  spec.desc.inner_iters = cfg.n_features;
  spec.desc.body = std::move(b).build();
  const std::uint64_t point_bytes = 4ull * cfg.n_features;  // float features
  spec.desc.arrays = {
      {"points", swacc::Dir::kIn, swacc::Access::kContiguous, point_bytes},
      {"membership", swacc::Dir::kOut, swacc::Access::kContiguous, 4},
      {.name = "centroids",
       .dir = swacc::Dir::kIn,
       .access = swacc::Access::kBroadcast,
       .broadcast_bytes = 4ull * cfg.n_features * cfg.n_clusters},
  };
  spec.desc.dma_min_tile = 16;  // Fig. 7(a): Gloads appear below 16 elem/req
  spec.desc.vectorizable = true;
  spec.tuned = {.tile = 256, .unroll = 2, .requested_cpes = 64,
                .double_buffer = false};
  spec.naive = {.tile = 1, .unroll = 1, .requested_cpes = 64,
                .double_buffer = false};
  spec.notes =
      "Regular, predictable accesses; granularity study of Fig. 7. Paper "
      "size 395216x32 scaled to 262144x32.";
  return spec;
}

KernelSpec kmeans(Scale scale) {
  KmeansConfig cfg;
  if (scale == Scale::kSmall) cfg.n_points = 1u << 14;
  return kmeans_cfg(cfg);
}

namespace host {

std::vector<double> kmeans_step(std::span<const double> points,
                                std::span<const double> centroids,
                                std::uint32_t dim,
                                std::span<std::uint32_t> assignments) {
  SWPERF_CHECK(dim > 0 && points.size() % dim == 0, "kmeans: bad points");
  SWPERF_CHECK(centroids.size() % dim == 0, "kmeans: bad centroids");
  const std::size_t n = points.size() / dim;
  const std::size_t k = centroids.size() / dim;
  SWPERF_CHECK(assignments.size() == n, "kmeans: bad assignments span");

  std::vector<double> next(centroids.size(), 0.0);
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < k; ++c) {
      double d2 = 0.0;
      for (std::uint32_t f = 0; f < dim; ++f) {
        const double d = points[i * dim + f] - centroids[c * dim + f];
        d2 += d * d;
      }
      if (d2 < best) {
        best = d2;
        best_c = c;
      }
    }
    assignments[i] = static_cast<std::uint32_t>(best_c);
    ++counts[best_c];
    for (std::uint32_t f = 0; f < dim; ++f) {
      next[best_c * dim + f] += points[i * dim + f];
    }
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) {
      // Keep empty clusters where they were.
      for (std::uint32_t f = 0; f < dim; ++f) {
        next[c * dim + f] = centroids[c * dim + f];
      }
    } else {
      for (std::uint32_t f = 0; f < dim; ++f) {
        next[c * dim + f] /= static_cast<double>(counts[c]);
      }
    }
  }
  return next;
}

std::vector<double> kmeans(std::span<const double> points, std::uint32_t dim,
                           std::uint32_t k, int iters,
                           std::span<std::uint32_t> assignments) {
  SWPERF_CHECK(points.size() >= static_cast<std::size_t>(k) * dim,
               "kmeans: fewer points than clusters");
  // Spread the initial centroids across the data set (k points at evenly
  // strided indices) — seeding from the first k points collapses when the
  // input is ordered by cluster.
  const std::size_t n = points.size() / dim;
  std::vector<double> centroids;
  centroids.reserve(static_cast<std::size_t>(k) * dim);
  for (std::uint32_t c = 0; c < k; ++c) {
    const std::size_t idx = (static_cast<std::size_t>(c) * n) / k;
    for (std::uint32_t f = 0; f < dim; ++f) {
      centroids.push_back(points[idx * dim + f]);
    }
  }
  for (int it = 0; it < iters; ++it) {
    centroids = kmeans_step(points, centroids, dim, assignments);
  }
  // Final assignment against the converged centroids.
  kmeans_step(points, centroids, dim, assignments);
  return centroids;
}

}  // namespace host

}  // namespace swperf::kernels
