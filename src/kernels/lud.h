// LU decomposition (Rodinia lud), 1600x1600 — the paper's Table II size.
//
// Row elimination against a pivot block: the pivot row block is broadcast
// to every CPE's SPM, trailing rows stream through at the copy granularity.
// The triangular iteration space makes per-CPE work shrink with the row
// index — genuine load imbalance the model handles by taking the longest
// path (Section III-F).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/spec.h"

namespace swperf::kernels {

struct LudConfig {
  std::uint32_t n = 2048;  // paper size 1600, padded to a power of two
};

KernelSpec lud(Scale scale = Scale::kFull);
KernelSpec lud_cfg(const LudConfig& cfg);

namespace host {

/// In-place LU decomposition without pivoting (Doolittle): on return, `a`
/// holds L (unit diagonal, below) and U (on/above the diagonal).
/// Requires a nonsingular leading principal minors matrix.
void lud(std::span<double> a, std::uint32_t n);

/// Max |(L*U - original)| element for verification.
double lud_residual(std::span<const double> lu,
                    std::span<const double> original, std::uint32_t n);

}  // namespace host

}  // namespace swperf::kernels
