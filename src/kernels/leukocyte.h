// Leukocyte tracking (Rodinia) — GICOV ellipse-fitting proxy.
//
// Per candidate cell position, the kernel samples an ellipse contour over
// the image gradient: heavy div/sqrt chains (unpipelined on the CPE) plus
// data-dependent gradient lookups, with per-cell branching that skews CPE
// workloads.  Grouped by the paper with the SPM-resistant kernels.
#pragma once

#include "kernels/spec.h"

namespace swperf::kernels {

struct LeukocyteConfig {
  std::uint64_t n_cells = 4096;    // candidate positions
  std::uint32_t n_samples = 150;   // contour samples per candidate
};

KernelSpec leukocyte(Scale scale = Scale::kFull);
KernelSpec leukocyte_cfg(const LeukocyteConfig& cfg);

}  // namespace swperf::kernels
