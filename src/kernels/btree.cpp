#include "kernels/btree.h"

#include <algorithm>

namespace swperf::kernels {

KernelSpec btree_cfg(const BtreeConfig& cfg) {
  // Per tree level: key compare + child-pointer arithmetic.
  isa::BlockBuilder b("btree_body");
  const auto key = b.spm_load();
  auto t = b.cmp(key, key);
  t = b.fixed(t);
  b.fixed(t);
  b.loop_overhead(2);

  KernelSpec spec;
  spec.desc.name = "b+tree";
  spec.desc.n_outer = cfg.n_queries;
  spec.desc.inner_iters = cfg.depth;
  spec.desc.body = std::move(b).build();
  spec.desc.arrays = {
      {"queries", swacc::Dir::kIn, swacc::Access::kContiguous, 8},
      {"results", swacc::Dir::kOut, swacc::Access::kContiguous, 8},
      {.name = "tree_nodes",
       .dir = swacc::Dir::kIn,
       .access = swacc::Access::kIndirect,
       .gloads_per_inner = 1.0,  // one node fetch per level
       .gload_bytes = 16},
  };
  spec.desc.gload_imbalance = 0.08;
  spec.desc.gload_coalesceable = 0.05;  // pointer chasing barely coalesces
  spec.irregular = true;
  spec.tuned = {.tile = 512, .unroll = 1, .requested_cpes = 64,
                .double_buffer = false};
  spec.naive = {.tile = 64, .unroll = 1, .requested_cpes = 64,
                .double_buffer = false};
  spec.notes = "Pointer chasing: one Gload per level per query.";
  return spec;
}

KernelSpec btree(Scale scale) {
  BtreeConfig cfg;
  if (scale == Scale::kSmall) cfg.n_queries = 1u << 13;
  return btree_cfg(cfg);
}

namespace host {

std::size_t lower_bound_search(std::span<const std::uint64_t> sorted,
                               std::uint64_t key) {
  return static_cast<std::size_t>(
      std::lower_bound(sorted.begin(), sorted.end(), key) - sorted.begin());
}

}  // namespace host

}  // namespace swperf::kernels
