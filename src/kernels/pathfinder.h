// PathFinder (Rodinia) — dynamic programming over a wide grid.
//
// Row-by-row minimum-path DP distributed along columns: each CPE's column
// block is a 2D sub-block of the row-major grid (kBlock2D), so the DMA
// segment length shrinks with finer column tiles — transaction waste makes
// the naive configuration dramatically slower than the tuned one.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/spec.h"

namespace swperf::kernels {

struct PathfinderConfig {
  std::uint64_t n_cols = 100000;
  std::uint32_t n_rows = 100;
};

KernelSpec pathfinder(Scale scale = Scale::kFull);
KernelSpec pathfinder_cfg(const PathfinderConfig& cfg);

namespace host {

/// Min-cost path DP: returns the final cost row for a row-major
/// (rows x cols) wall, where each step moves down and at most one column
/// sideways.
std::vector<int> pathfinder(std::span<const int> wall, std::uint32_t rows,
                            std::uint32_t cols);

}  // namespace host

}  // namespace swperf::kernels
