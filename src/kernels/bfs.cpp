#include "kernels/bfs.h"

#include <deque>
#include <limits>

#include "sw/error.h"

namespace swperf::kernels {

KernelSpec bfs_cfg(const BfsConfig& cfg) {
  // Per visited node: integer frontier bookkeeping only.
  isa::BlockBuilder b("bfs_body");
  const auto off = b.spm_load();
  auto t = b.fixed(off);
  t = b.fixed(t);
  b.cmp(t, off);
  b.loop_overhead(2);

  KernelSpec spec;
  spec.desc.name = "bfs";
  spec.desc.n_outer = cfg.n_nodes;
  spec.desc.inner_iters = 1;
  spec.desc.body = std::move(b).build();
  spec.desc.arrays = {
      {"row_offsets", swacc::Dir::kIn, swacc::Access::kContiguous, 8},
      {.name = "columns",
       .dir = swacc::Dir::kIn,
       .access = swacc::Access::kIndirect,
       .gloads_per_inner = cfg.avg_degree,
       .gload_bytes = 8},
      {.name = "visited",
       .dir = swacc::Dir::kInOut,
       .access = swacc::Access::kIndirect,
       .gloads_per_inner = 1.0,
       .gload_bytes = 4},
  };
  spec.desc.gload_imbalance = 0.15;  // frontier skew across CPEs
  spec.desc.gload_coalesceable = 0.6;  // CSR neighbour lists are sorted
  spec.irregular = true;
  spec.tuned = {.tile = 256, .unroll = 1, .requested_cpes = 64,
                .double_buffer = false};
  spec.naive = {.tile = 64, .unroll = 1, .requested_cpes = 64,
                .double_buffer = false};
  spec.notes =
      "Gload-dominated; the paper's max-error case. Paper used 1M nodes, "
      "scaled to 256k.";
  return spec;
}

KernelSpec bfs(Scale scale) {
  BfsConfig cfg;
  if (scale == Scale::kSmall) cfg.n_nodes = 1u << 14;
  return bfs_cfg(cfg);
}

namespace host {

Graph random_graph(std::uint32_t n, double avg_degree, sw::Rng& rng) {
  SWPERF_CHECK(n >= 2, "random_graph: need at least two nodes");
  SWPERF_CHECK(avg_degree >= 1.0, "random_graph: avg_degree < 1");
  Graph g;
  g.row_offsets.reserve(n + 1);
  g.row_offsets.push_back(0);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (i + 1 < n) g.columns.push_back(i + 1);  // connectivity backbone
    const auto extra = static_cast<std::uint32_t>(
        rng.next_below(static_cast<std::uint64_t>(2.0 * avg_degree - 1.0)));
    for (std::uint32_t e = 0; e < extra; ++e) {
      g.columns.push_back(static_cast<std::uint32_t>(rng.next_below(n)));
    }
    g.row_offsets.push_back(static_cast<std::uint32_t>(g.columns.size()));
  }
  return g;
}

std::vector<std::uint32_t> bfs(const Graph& g, std::uint32_t source) {
  const std::uint32_t n = g.nodes();
  SWPERF_CHECK(source < n, "bfs: source out of range");
  std::vector<std::uint32_t> dist(
      n, std::numeric_limits<std::uint32_t>::max());
  std::deque<std::uint32_t> frontier{source};
  dist[source] = 0;
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.front();
    frontier.pop_front();
    for (std::uint32_t e = g.row_offsets[u]; e < g.row_offsets[u + 1]; ++e) {
      const std::uint32_t v = g.columns[e];
      if (dist[v] == std::numeric_limits<std::uint32_t>::max()) {
        dist[v] = dist[u] + 1;
        frontier.push_back(v);
      }
    }
  }
  return dist;
}

}  // namespace host

}  // namespace swperf::kernels
