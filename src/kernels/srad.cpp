#include "kernels/srad.h"

#include <cmath>

#include "sw/error.h"

namespace swperf::kernels {

KernelSpec srad_cfg(const SradConfig& cfg) {
  // Per pixel: gradient magnitude, laplacian, q statistic, coefficient.
  isa::BlockBuilder b("srad_body");
  const auto jc = b.spm_load();
  const auto jn = b.spm_load();
  const auto js = b.spm_load();
  const auto dn = b.fsub(jn, jc);
  const auto ds = b.fsub(js, jc);
  auto g2 = b.fmul(dn, dn);
  g2 = b.fma(ds, ds, g2);
  const auto l = b.fadd(dn, ds);
  const auto jc2 = b.fmul(jc, jc);
  const auto g2n = b.fdiv(g2, jc2);      // normalised gradient
  const auto ln = b.fdiv(l, jc);         // normalised laplacian
  auto q = b.fma(ln, ln, g2n);
  q = b.fsqrt(q);
  const auto coef = b.fdiv(q, jc2);
  b.spm_store(coef);
  b.loop_overhead(2);

  KernelSpec spec;
  spec.desc.name = "srad";
  spec.desc.n_outer = cfg.rows;
  spec.desc.inner_iters = cfg.cols;
  spec.desc.body = std::move(b).build();
  const std::uint64_t row_bytes = 4ull * cfg.cols;
  spec.desc.arrays = {
      {"img_halo", swacc::Dir::kIn, swacc::Access::kContiguous,
       3 * row_bytes},
      {"coeff", swacc::Dir::kOut, swacc::Access::kContiguous, row_bytes},
  };
  spec.desc.dma_min_tile = 1;
  spec.desc.vectorizable = true;
  spec.tuned = {.tile = 4, .unroll = 2, .requested_cpes = 64,
                .double_buffer = false};
  spec.naive = {.tile = 1, .unroll = 1, .requested_cpes = 64,
                .double_buffer = false};
  spec.notes = "Division/sqrt-heavy stencil; Rodinia image padded to 512^2.";
  return spec;
}

KernelSpec srad(Scale scale) {
  SradConfig cfg;
  if (scale == Scale::kSmall) cfg.rows = cfg.cols = 128;
  return srad_cfg(cfg);
}

namespace host {

std::vector<double> srad_coefficients(std::span<const double> img,
                                      std::uint32_t rows, std::uint32_t cols,
                                      double q0sq) {
  SWPERF_CHECK(img.size() == static_cast<std::size_t>(rows) * cols,
               "srad: bad image size");
  std::vector<double> coef(img.size());
  auto at = [&](std::uint32_t r, std::uint32_t c) {
    return img[static_cast<std::size_t>(r) * cols + c];
  };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      const double jc = at(r, c);
      SWPERF_CHECK(jc != 0.0, "srad: zero pixel");
      const double dn = (r > 0 ? at(r - 1, c) : jc) - jc;
      const double ds = (r + 1 < rows ? at(r + 1, c) : jc) - jc;
      const double dw = (c > 0 ? at(r, c - 1) : jc) - jc;
      const double de = (c + 1 < cols ? at(r, c + 1) : jc) - jc;
      const double g2 = (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc);
      const double lap = (dn + ds + dw + de) / jc;
      const double num = 0.5 * g2 - (1.0 / 16.0) * lap * lap;
      const double den = 1.0 + 0.25 * lap;
      const double qsq = num / (den * den);
      coef[static_cast<std::size_t>(r) * cols + c] =
          1.0 / (1.0 + (qsq - q0sq) / (q0sq * (1.0 + q0sq)));
    }
  }
  return coef;
}

}  // namespace host

}  // namespace swperf::kernels
