// CFD Euler solver (Rodinia euler3d) proxy.
//
// Per-cell flux computation over an unstructured mesh: the five
// conservative variables stream through SPM, per-face normals are staged,
// and the neighbour gather — unpredictable on an unstructured mesh —
// appears as a light Gload stream.  Division-heavy (pressure), so its
// compute time is sensitive to unpipelined fdiv, one of the reasons it
// profits less from tuning in the paper's Table II (1.67x).
#pragma once

#include "kernels/spec.h"

namespace swperf::kernels {

struct CfdConfig {
  std::uint64_t n_cells = 97152;  // paper: 193474*4, scaled /8
  std::uint32_t n_faces = 4;
};

KernelSpec cfd(Scale scale = Scale::kFull);
KernelSpec cfd_cfg(const CfdConfig& cfg);

}  // namespace swperf::kernels
