#include "kernels/hotspot.h"

#include "sw/error.h"

namespace swperf::kernels {

KernelSpec hotspot_cfg(const HotspotConfig& cfg) {
  // Per-column update: the Rodinia expression is one long dependent chain
  //   t' = t + (step/Cap) * (power + (n+s-2t)/Ry + (e+w-2t)/Rx + (amb-t)/Rz)
  // with the 1/R* factors folded into constants; on the in-order CPE its
  // serial latency is what unrolling (interleaving neighbouring columns)
  // recovers — the core of hotspot's Table II speedup.
  isa::BlockBuilder b("hotspot_body");
  const auto tc = b.spm_load();
  const auto tn = b.spm_load();
  const auto ts = b.spm_load();
  const auto pw = b.spm_load();
  const auto ry = b.reg();
  const auto rx = b.reg();
  const auto rz = b.reg();
  const auto cap = b.reg();
  auto s = b.fadd(tn, ts);      // dependent chain start
  s = b.fma(tc, ry, s);
  s = b.fadd(s, pw);
  s = b.fma(tc, rx, s);
  s = b.fadd(s, tc);
  s = b.fma(s, rz, s);
  s = b.fadd(s, pw);
  s = b.fma(s, cap, tc);
  s = b.fadd(s, tc);
  b.spm_store(s);
  b.loop_overhead(2);

  KernelSpec spec;
  spec.desc.name = "hotspot";
  spec.desc.n_outer = cfg.rows;
  spec.desc.inner_iters = cfg.cols;
  spec.desc.body = std::move(b).build();
  const std::uint64_t row_bytes = 4ull * cfg.cols;
  spec.desc.arrays = {
      // Temperature rows (halo rows are kept across consecutive chunks, so
      // each row crosses the DMA once), the power map, and the output.
      {"temp_rows", swacc::Dir::kIn, swacc::Access::kContiguous, row_bytes},
      {"power", swacc::Dir::kIn, swacc::Access::kContiguous, row_bytes},
      {"temp_out", swacc::Dir::kOut, swacc::Access::kContiguous, row_bytes},
  };
  spec.desc.dma_min_tile = 1;  // rows are huge; staging always pays
  spec.desc.vectorizable = true;
  spec.tuned = {.tile = 2, .unroll = 8, .requested_cpes = 64,
                .double_buffer = false};
  spec.naive = {.tile = 1, .unroll = 1, .requested_cpes = 64,
                .double_buffer = false};
  spec.notes =
      "Five-point stencil, SPM-tight row staging; paper Table II size "
      "1024x1024.";
  return spec;
}

KernelSpec hotspot(Scale scale) {
  HotspotConfig cfg;
  if (scale == Scale::kSmall) cfg.rows = cfg.cols = 256;
  return hotspot_cfg(cfg);
}

namespace host {

std::vector<double> hotspot_step(std::span<const double> temp,
                                 std::span<const double> power,
                                 std::uint32_t rows, std::uint32_t cols,
                                 double cap) {
  SWPERF_CHECK(temp.size() == static_cast<std::size_t>(rows) * cols &&
                   power.size() == temp.size(),
               "hotspot: bad grid size");
  std::vector<double> out(temp.size());
  auto at = [&](std::uint32_t r, std::uint32_t c) {
    return temp[static_cast<std::size_t>(r) * cols + c];
  };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      const double tc = at(r, c);
      const double tn = r > 0 ? at(r - 1, c) : tc;
      const double ts = r + 1 < rows ? at(r + 1, c) : tc;
      const double tw = c > 0 ? at(r, c - 1) : tc;
      const double te = c + 1 < cols ? at(r, c + 1) : tc;
      const double p = power[static_cast<std::size_t>(r) * cols + c];
      out[static_cast<std::size_t>(r) * cols + c] =
          tc + cap * (tn + ts + tw + te - 4.0 * tc + p);
    }
  }
  return out;
}

}  // namespace host

}  // namespace swperf::kernels
