#include "sim/trace.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "sw/error.h"

namespace swperf::sim {

char activity_glyph(Activity a) {
  switch (a) {
    case Activity::kCompute: return '#';
    case Activity::kDmaWait: return 'D';
    case Activity::kGloadWait: return 'G';
    case Activity::kBarrier: return 'B';
    case Activity::kMemService: return '=';
    case Activity::kDmaIssue: return '^';
  }
  return '?';
}

const char* activity_name(Activity a) {
  switch (a) {
    case Activity::kCompute: return "compute";
    case Activity::kDmaWait: return "dma_wait";
    case Activity::kGloadWait: return "gload_wait";
    case Activity::kBarrier: return "barrier";
    case Activity::kMemService: return "mem_service";
    case Activity::kDmaIssue: return "dma_issue";
  }
  return "?";
}

sw::Tick Trace::span() const {
  sw::Tick m = 0;
  for (const auto& e : events) m = std::max(m, e.end);
  return m;
}

sw::Tick Trace::lane_busy(std::uint32_t lane) const {
  const Activity busy =
      lane < n_cpes ? Activity::kCompute : Activity::kMemService;
  sw::Tick total = 0;
  for (const auto& e : events) {
    if (e.lane == lane && e.what == busy) total += e.end - e.begin;
  }
  return total;
}

std::string render_timeline(const Trace& trace, std::size_t width,
                            std::uint32_t max_cpe_rows) {
  SWPERF_CHECK(width >= 10, "timeline width too small");
  const sw::Tick span = trace.span();
  if (span == 0) return "(empty trace)\n";

  const std::uint32_t cpe_rows = std::min(trace.n_cpes, max_cpe_rows);
  const std::uint32_t lanes = trace.n_cpes + trace.n_controllers;

  // Per visible lane, per column: ticks of each activity; densest wins.
  std::vector<std::vector<std::map<Activity, sw::Tick>>> cells(
      lanes, std::vector<std::map<Activity, sw::Tick>>(width));
  std::vector<sw::Tick> busy(lanes, 0);
  const double ticks_per_col =
      static_cast<double>(span) / static_cast<double>(width);

  for (const auto& e : trace.events) {
    if (e.lane >= lanes || e.end <= e.begin) continue;
    const Activity lane_work =
        e.lane < trace.n_cpes ? Activity::kCompute : Activity::kMemService;
    if (e.what == lane_work) busy[e.lane] += e.end - e.begin;
    const auto c0 = static_cast<std::size_t>(
        static_cast<double>(e.begin) / ticks_per_col);
    const auto c1 = std::min<std::size_t>(
        width - 1,
        static_cast<std::size_t>(static_cast<double>(e.end - 1) /
                                 ticks_per_col));
    for (std::size_t c = c0; c <= c1; ++c) {
      const sw::Tick col_begin =
          static_cast<sw::Tick>(static_cast<double>(c) * ticks_per_col);
      const sw::Tick col_end = static_cast<sw::Tick>(
          static_cast<double>(c + 1) * ticks_per_col);
      const sw::Tick overlap = std::min(e.end, col_end) -
                               std::max(e.begin, col_begin);
      cells[e.lane][c][e.what] += overlap;
    }
  }

  std::ostringstream os;
  os << "timeline: span " << sw::ticks_to_cycles(span) << " cycles ("
     << span << " ticks), one column = "
     << sw::ticks_to_cycles(static_cast<sw::Tick>(ticks_per_col))
     << " cycles\n"
     << "  [#]=compute [D]=dma wait [G]=gload [B]=barrier [=]=memory busy; "
        "rows end with lane busy%\n";
  auto emit_lane = [&](std::uint32_t lane, const std::string& label) {
    os << label;
    for (std::size_t c = 0; c < width; ++c) {
      const auto& m = cells[lane][c];
      if (m.empty()) {
        os << '.';
        continue;
      }
      auto best = m.begin();
      for (auto it = m.begin(); it != m.end(); ++it) {
        if (it->second > best->second) best = it;
      }
      os << activity_glyph(best->first);
    }
    const auto pct = static_cast<unsigned>(
        (200 * busy[lane] / span + 1) / 2);  // round-to-nearest percent
    os << ' ' << pct << "%\n";
  };

  for (std::uint32_t cpe = 0; cpe < cpe_rows; ++cpe) {
    std::ostringstream label;
    label << "cpe" << cpe;
    std::string l = label.str();
    l.resize(7, ' ');
    emit_lane(cpe, l);
  }
  if (cpe_rows < trace.n_cpes) {
    os << "  ... (" << trace.n_cpes - cpe_rows << " more CPEs)\n";
  }
  for (std::uint32_t mc = 0; mc < trace.n_controllers; ++mc) {
    std::ostringstream label;
    label << "mem" << mc;
    std::string l = label.str();
    l.resize(7, ' ');
    emit_lane(trace.n_cpes + mc, l);
  }
  return os.str();
}

}  // namespace swperf::sim
