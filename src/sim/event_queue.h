// Event queues for the discrete-event simulator core.
//
// Both queues order items by the strict key (tick, seq): seq is the
// engine's insertion counter and makes the pop order fully deterministic.
// Two interchangeable implementations share the same interface:
//
//   * HeapEventQueue — std::priority_queue, the original engine's queue.
//     Kept as the reference oracle (sim::simulate_reference) and as the
//     baseline for bench_sim_throughput.
//   * BucketEventQueue — a two-level timing wheel tuned for the
//     simulator's event distribution: almost all events land within a few
//     thousand ticks of "now" (Δdelay is 500 ticks, service is 116 ticks,
//     L_base is 2200 ticks with Table I values), so the near horizon is an
//     array of single-tick buckets popped by a rotating cursor in O(1)
//     amortized with no per-event heap reshuffle; the rare far events
//     (long ComputeOps) overflow into a small heap and migrate into the
//     wheel as the cursor approaches them.
//
// Determinism invariants (pinned by tests/sim/event_queue_test.cpp, which
// drives both queues with seeded random push/pop schedules and asserts
// identical pop sequences):
//   * pops come out in ascending (tick, seq) order;
//   * pushes never go backwards in time: it.tick >= the tick of the most
//     recent pop (the simulator never schedules into the past);
//   * peek_tick() has no observable side effect.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "sw/time.h"

namespace swperf::sim {

/// Min-first comparator on (tick, seq) for heap-based containers.
template <typename Item>
struct EvAfter {
  bool operator()(const Item& a, const Item& b) const {
    if (a.tick != b.tick) return a.tick > b.tick;
    return a.seq > b.seq;
  }
};

/// The original engine queue: one binary heap over all pending events.
template <typename Item>
class HeapEventQueue {
 public:
  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }

  void push(const Item& it) { q_.push(it); }

  Item pop() {
    Item it = q_.top();
    q_.pop();
    return it;
  }

  /// Tick of the next event to pop, if any.
  std::optional<sw::Tick> peek_tick() const {
    if (q_.empty()) return std::nullopt;
    return q_.top().tick;
  }

  /// Full (tick, seq) key of the next event to pop, if any.  Lets the
  /// engine order its out-of-queue controller service slots against the
  /// queued events without popping anything.
  std::optional<std::pair<sw::Tick, std::uint64_t>> peek_key() {
    if (q_.empty()) return std::nullopt;
    return std::make_pair(q_.top().tick, q_.top().seq);
  }

 private:
  std::priority_queue<Item, std::vector<Item>, EvAfter<Item>> q_;
};

/// Two-level queue: timing wheel over [base, base + kSpan) plus an
/// overflow heap for events beyond the horizon.
template <typename Item>
class BucketEventQueue {
 public:
  BucketEventQueue() : wheel_(kSpan) {}

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(const Item& it) {
    assert(it.tick >= base_ && "scheduled into the past");
    if (it.tick - base_ < kSpan) {
      const std::size_t idx = index_of(it.tick);
      Bucket& b = wheel_[idx];
      b.items.push_back(it);
      b.sorted = b.items.size() <= 1;
      occ_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
      ++wheel_size_;
    } else {
      overflow_.push(it);
    }
    ++size_;
  }

  Item pop() {
    assert(size_ > 0);
    advance_to_next();
    Bucket& b = wheel_[cursor_];
    if (!b.sorted) sort_bucket(b);
    Item it = b.items.back();
    b.items.pop_back();
    if (b.items.empty()) occ_[cursor_ >> 6] &= ~(std::uint64_t{1} << (cursor_ & 63));
    --wheel_size_;
    --size_;
    return it;
  }

  /// Tick of the next event to pop, if any. Read-only: computed from the
  /// occupancy bitmap without moving the cursor, so interleaved pushes at
  /// the current tick stay legal.
  std::optional<sw::Tick> peek_tick() const {
    if (size_ == 0) return std::nullopt;
    if (wheel_size_ == 0) return overflow_.top().tick;
    const std::size_t idx = next_occupied(cursor_);
    const sw::Tick t = base_ + ((idx - cursor_ + kSpan) & (kSpan - 1));
    if (!overflow_.empty() && overflow_.top().tick < t) return overflow_.top().tick;
    return t;
  }

  /// Full (tick, seq) key of the next event to pop, if any.  Not const:
  /// it may lazily sort the head bucket (the same sort pop() would do), but
  /// the observable queue state — contents and pop order — is unchanged.
  std::optional<std::pair<sw::Tick, std::uint64_t>> peek_key() {
    if (size_ == 0) return std::nullopt;
    if (wheel_size_ == 0) {
      return std::make_pair(overflow_.top().tick, overflow_.top().seq);
    }
    const std::size_t idx = next_occupied(cursor_);
    const sw::Tick t = base_ + ((idx - cursor_ + kSpan) & (kSpan - 1));
    Bucket& b = wheel_[idx];
    if (!b.sorted) sort_bucket(b);
    auto key = std::make_pair(t, b.items.back().seq);
    if (!overflow_.empty()) {
      const auto far = std::make_pair(overflow_.top().tick,
                                      overflow_.top().seq);
      if (far < key) return far;
    }
    return key;
  }

  /// Smallest tick of any queued event in (lo, hi] that fails `pred`, or
  /// nullopt when every event in the range passes.  Overflow events at or
  /// below `hi` conservatively count as violations at the overflow's top
  /// tick (the heap's interior cannot be inspected cheaply).  Read-only:
  /// lets the engine's batched-grant guard prove a window free of
  /// order-perturbing events without popping anything.
  template <typename Pred>
  std::optional<sw::Tick> first_violation(sw::Tick lo, sw::Tick hi,
                                          Pred pred) const {
    // An overflow event at or below `hi` conservatively counts as a
    // violation at the overflow's top tick (the heap's interior cannot be
    // inspected cheaply) — but only as a *fallback*: the wheel may hold an
    // earlier violation, so it is scanned first with the range clamped to
    // the overflow top, and the smaller of the two wins.
    std::optional<sw::Tick> far;
    if (!overflow_.empty() && overflow_.top().tick <= hi) {
      far = overflow_.top().tick;
      hi = *far;
    }
    if (wheel_size_ != 0) {
      // Each wheel bucket holds exactly one tick in [base_, base_ + kSpan);
      // hop occupied buckets in tick order via the bitmap.  A wrapped jump
      // (next occupied bucket lands behind `t` in time) means the remaining
      // occupied buckets all precede the range — done.
      sw::Tick t = std::max<sw::Tick>(lo + 1, base_);
      const sw::Tick end =
          std::min<sw::Tick>(hi, base_ + static_cast<sw::Tick>(kSpan) - 1);
      while (t <= end) {
        const std::size_t from = index_of(t);
        const std::size_t idx = next_occupied(from);
        const sw::Tick bt =
            t + static_cast<sw::Tick>((idx - from + kSpan) & (kSpan - 1));
        if (bt > end) break;
        for (const Item& it : wheel_[idx].items) {
          if (!pred(it)) return bt;  // bt <= clamped hi <= far
        }
        t = bt + 1;
      }
    }
    return far;
  }

  /// Test oracle for first_violation: the same contract by brute force — a
  /// linear scan of every queued item plus the same conservative overflow
  /// fallback.  O(kSpan + items); only for tests pinning the bitmap walk.
  template <typename Pred>
  std::optional<sw::Tick> first_violation_naive(sw::Tick lo, sw::Tick hi,
                                                Pred pred) const {
    std::optional<sw::Tick> best;
    for (std::size_t i = 0; i < kSpan; ++i) {
      for (const Item& it : wheel_[i].items) {
        if (it.tick > lo && it.tick <= hi && !pred(it) &&
            (!best || it.tick < *best)) {
          best = it.tick;
        }
      }
    }
    if (!overflow_.empty() && overflow_.top().tick <= hi &&
        (!best || overflow_.top().tick < *best)) {
      best = overflow_.top().tick;
    }
    return best;
  }

 private:
  // 4096 single-tick buckets ≈ 8× Δdelay: DMA trains, controller service
  // chains and data returns all land inside one rotation.
  static constexpr std::size_t kSpan = 4096;

  struct Bucket {
    std::vector<Item> items;
    bool sorted = true;  // descending seq, so pop_back yields min seq
  };

  std::size_t index_of(sw::Tick tick) const {
    return static_cast<std::size_t>(tick) & (kSpan - 1);
  }

  static void sort_bucket(Bucket& b) {
    std::sort(b.items.begin(), b.items.end(),
              [](const Item& a, const Item& c) { return a.seq > c.seq; });
    b.sorted = true;
  }

  /// Index of the next occupied bucket at or after `from` in cursor order
  /// (wrapping), via the occupancy bitmap: two word reads in the common
  /// case instead of a per-tick scan.  Precondition: wheel_size_ > 0.
  std::size_t next_occupied(std::size_t from) const {
    const std::size_t w = from >> 6;
    const std::uint64_t first = occ_[w] >> (from & 63);
    if (first != 0) return from + static_cast<std::size_t>(std::countr_zero(first));
    for (std::size_t i = 1; i <= kWords; ++i) {
      const std::size_t w2 = (w + i) & (kWords - 1);
      if (occ_[w2] != 0) {
        return (w2 << 6) + static_cast<std::size_t>(std::countr_zero(occ_[w2]));
      }
    }
    assert(false && "next_occupied on an empty wheel");
    return from;
  }

  /// Moves the cursor to the next non-empty bucket, migrating overflow
  /// events as the horizon advances.
  void advance_to_next() {
    if (wheel_size_ == 0) {
      // Jump straight to the first far event (old buckets are all empty,
      // so re-basing the cursor is safe); migrate() below folds it in.
      base_ = overflow_.top().tick;
      cursor_ = index_of(base_);
    }
    migrate();
    const std::size_t idx = next_occupied(cursor_);
    base_ += (idx - cursor_ + kSpan) & (kSpan - 1);
    cursor_ = idx;
    // The jump widened the horizon; newly migratable far events all have
    // tick >= old base + kSpan > base_, so none affects this pop.
    migrate();
  }

  void migrate() {
    while (!overflow_.empty() && overflow_.top().tick - base_ < kSpan) {
      const Item& it = overflow_.top();
      const std::size_t idx = index_of(it.tick);
      Bucket& b = wheel_[idx];
      b.items.push_back(it);
      b.sorted = false;  // heap order is not seq order
      occ_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
      ++wheel_size_;
      overflow_.pop();
    }
  }

  static constexpr std::size_t kWords = kSpan / 64;

  std::vector<Bucket> wheel_;
  std::array<std::uint64_t, kWords> occ_{};  // bit i <=> wheel_[i] non-empty
  sw::Tick base_ = 0;       // tick the cursor bucket represents
  std::size_t cursor_ = 0;  // == index_of(base_)
  std::size_t wheel_size_ = 0;
  std::size_t size_ = 0;
  std::priority_queue<Item, std::vector<Item>, EvAfter<Item>> overflow_;
};

}  // namespace swperf::sim
