// Whole-chip scenarios: concurrent kernels gang-scheduled across the
// SW26010's four core groups.
//
// A single simulate() call models one kernel launch on a fixed set of
// CGs.  Real workloads on the chip run several kernels at once — each
// claiming some CGs, all sharing cross-section memory bandwidth — and the
// paper's contended-regime analysis (Section V-C3) is really about this
// whole-chip picture: a kernel's DMA throughput degrades when a neighbour
// job saturates the shared controllers.
//
// A ChipScenario is a queue of jobs.  The FIFO gang scheduler launches
// the head job as soon as its CG demand fits in the free slots; jobs
// launched concurrently interleave their transactions round-robin over
// *all* the chip's controllers (cross-section memory at the measured
// reduced efficiency), so bandwidth interference between jobs emerges
// from the same queueing that produces single-kernel contention.
// Barriers stay scoped to each job's CPEs.
//
// Determinism contract: like simulate()/simulate_reference(), the fast
// and reference chip engines are bit-identical on every result field
// except SimResult::counters, and repeated runs of the same scenario are
// byte-identical (pinned by tests/sim/chip_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.h"
#include "sim/program.h"
#include "sw/arch.h"
#include "sw/time.h"

namespace swperf::sim {

/// One kernel launch inside a chip scenario.  Each job carries its own
/// code object and per-CPE programs; simulate_chip() merges the binaries
/// (re-basing block ids) so jobs stay independently lowerable.
struct ChipJob {
  std::string name;
  KernelBinary binary;
  std::vector<CpeProgram> programs;  // one per CPE the job occupies
  std::uint32_t core_groups = 1;     // CG slots held while running
};

/// A whole-chip run: jobs queued in order on `core_groups` CG slots.
struct ChipScenario {
  sw::ArchParams arch = sw::ArchParams::sw26010();
  std::uint32_t core_groups = 4;  // CG slots the chip offers
  bool trace = false;
  std::vector<ChipJob> jobs;
};

/// Per-job outcome: when the gang scheduler launched it and when its last
/// CPE finished (ticks on the shared chip clock).
struct ChipJobResult {
  std::string name;
  std::uint32_t core_groups = 0;
  std::uint32_t cpes = 0;
  sw::Tick launch_ticks = 0;
  sw::Tick finish_ticks = 0;

  sw::Tick makespan_ticks() const { return finish_ticks - launch_ticks; }
};

/// Result of one chip scenario: the merged simulation (totals, counters,
/// optional trace over every CPE of every job) plus per-job windows.
struct ChipResult {
  SimResult sim;
  std::vector<ChipJobResult> jobs;
};

/// Runs `scenario` on the fast engine.
ChipResult simulate_chip(const ChipScenario& scenario);

/// Runs `scenario` on the reference oracle (bit-identical to
/// simulate_chip() on everything except SimResult::counters).
ChipResult simulate_chip_reference(const ChipScenario& scenario);

}  // namespace swperf::sim
