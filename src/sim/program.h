// Per-CPE programs consumed by the discrete-event simulator.
//
// A lowered SWACC kernel (src/swacc) becomes one CpeProgram per active CPE:
// the three-part structure the paper describes in Section II-B — copy data
// to SPM (DMA), execute (computation and Gload requests), copy data back —
// expressed as an op sequence.  Async DMA ops plus explicit waits express
// the double-buffer optimization (Section IV-2).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "isa/block.h"
#include "mem/request.h"
#include "sw/error.h"
#include "sw/time.h"

namespace swperf::sim {

/// Async DMA reply slots per CPE. Handles used by DmaOp/DmaWaitOp must lie
/// in [0, kMaxDmaHandles); the builder, the simulator and the static
/// checker (analysis/) all enforce the same bound.
inline constexpr int kMaxDmaHandles = 16;

/// Executes basic block `block_id` of the KernelBinary `iters` times
/// back-to-back (an innermost loop over SPM-resident data).
struct ComputeOp {
  std::uint32_t block_id = 0;
  std::uint64_t iters = 1;
};

/// Issues one DMA request. `handle < 0` means blocking: the CPE stalls
/// until the last transaction's data returns. `handle >= 0` issues
/// asynchronously into that reply slot; pair with DmaWaitOp.
struct DmaOp {
  mem::DmaRequest req;
  int handle = -1;
};

/// Blocks until the async DMA previously issued on `handle` completes.
struct DmaWaitOp {
  int handle = 0;
};

/// `count` serial Gload/Gstore requests, each followed by
/// `compute_ticks_per_elem` of dependent computation — the access pattern
/// of irregular kernels (BFS, B+tree, ...) that cannot stage data in SPM.
/// Each request occupies one full DRAM transaction and blocks the CPE.
struct GloadLoopOp {
  std::uint64_t count = 0;
  std::uint32_t bytes = 8;
  mem::Direction dir = mem::Direction::kRead;
  sw::Tick compute_ticks_per_elem = 0;
};

/// Synchronises all active CPEs (athread barrier).
struct BarrierOp {};

// ---- SPM access annotations ------------------------------------------------
//
// Lowering knows which SPM byte ranges each op touches (DMA destinations and
// sources from the SPM layout, compute reads/writes from the staged-buffer
// assignment of the chunk being processed).  It records that knowledge as
// side-band notes on the op stream: the simulator ignores them entirely, but
// the dataflow analyses (analysis/dataflow/) use them to prove double-buffer
// phases disjoint — or to report the overlap precisely when they are not.

/// Half-open SPM byte range [lo, hi).
struct SpmRange {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;

  std::uint32_t bytes() const { return hi - lo; }
  bool overlaps(const SpmRange& o) const { return lo < o.hi && o.lo < hi; }
};

/// What an annotated op does to the range.
enum class SpmAccessKind : std::uint8_t {
  kDmaDst,        // DMA get writes the range when the transfer lands
  kDmaSrc,        // DMA put reads the range while the transfer is in flight
  kComputeRead,   // compute (or gload-interleaved compute) reads the range
  kComputeWrite,  // compute writes the range
};

/// One side-band annotation: op `op` touches `range` as `kind`.
struct SpmNote {
  std::uint32_t op = 0;
  SpmAccessKind kind = SpmAccessKind::kComputeRead;
  SpmRange range;
};

/// Fixed-duration stall (kernel launch overhead, MPE interaction).
struct DelayOp {
  sw::Tick ticks = 0;
};

using Op = std::variant<ComputeOp, DmaOp, DmaWaitOp, GloadLoopOp, BarrierOp,
                        DelayOp>;

/// The op stream of one CPE.
struct CpeProgram {
  std::vector<Op> ops;
  /// SPM byte ranges the ops touch (see SpmNote). Optional: hand-built
  /// programs carry none and the analyses that need them skip silently.
  std::vector<SpmNote> spm_notes;
  /// Handles ever issued through dma(); lets dma_wait() reject waits on
  /// handles no DMA was ever issued on, at construction time.
  std::uint32_t issued_handles = 0;

  CpeProgram& compute(std::uint32_t block_id, std::uint64_t iters) {
    if (iters > 0) ops.push_back(ComputeOp{block_id, iters});
    return *this;
  }
  CpeProgram& dma(mem::DmaRequest req, int handle = -1) {
    SWPERF_CHECK(handle < kMaxDmaHandles,
                 "dma handle " << handle << " out of range (max "
                               << kMaxDmaHandles - 1 << ")");
    if (handle >= 0) issued_handles |= 1u << handle;
    ops.push_back(DmaOp{req, handle});
    return *this;
  }
  CpeProgram& dma_wait(int handle) {
    SWPERF_CHECK(handle >= 0 && handle < kMaxDmaHandles,
                 "dma_wait handle " << handle << " out of range");
    SWPERF_CHECK((issued_handles >> handle) & 1u,
                 "dma_wait on handle " << handle
                                       << " which was never issued");
    ops.push_back(DmaWaitOp{handle});
    return *this;
  }
  CpeProgram& gload_loop(GloadLoopOp g) {
    if (g.count > 0) ops.push_back(g);
    return *this;
  }
  CpeProgram& barrier() {
    ops.push_back(BarrierOp{});
    return *this;
  }
  CpeProgram& delay(sw::Tick t) {
    if (t > 0) ops.push_back(DelayOp{t});
    return *this;
  }

  /// Annotates op `op_index` as touching SPM bytes [lo, hi) as `kind`.
  /// Empty ranges are dropped, so callers can pass computed extents
  /// unconditionally.
  CpeProgram& note_spm(std::size_t op_index, SpmAccessKind kind,
                       std::uint32_t lo, std::uint32_t hi) {
    SWPERF_CHECK(op_index < ops.size(),
                 "note_spm on op " << op_index << " of a " << ops.size()
                                   << "-op program");
    if (hi > lo) {
      spm_notes.push_back(
          SpmNote{static_cast<std::uint32_t>(op_index), kind, {lo, hi}});
    }
    return *this;
  }
  /// Annotates the most recently pushed op.
  CpeProgram& note_last_spm(SpmAccessKind kind, std::uint32_t lo,
                            std::uint32_t hi) {
    SWPERF_CHECK(!ops.empty(), "note_last_spm on an empty program");
    return note_spm(ops.size() - 1, kind, lo, hi);
  }
};

/// Shared code object: the basic blocks referenced by ComputeOps.
struct KernelBinary {
  std::vector<isa::BasicBlock> blocks;

  std::uint32_t add_block(isa::BasicBlock b) {
    blocks.push_back(std::move(b));
    return static_cast<std::uint32_t>(blocks.size() - 1);
  }
};

}  // namespace swperf::sim
