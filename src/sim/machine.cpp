#include "sim/machine.h"

#include <algorithm>

#include "isa/schedule.h"
#include "mem/controller.h"
#include "mem/dma.h"
#include "sim/event_queue.h"
#include "sw/error.h"
#include "sw/stats.h"

namespace swperf::sim {

namespace {

constexpr int kBlockingHandle = -2;
constexpr int kMaxHandles = kMaxDmaHandles;

// Memory streams, for the controller's burst affinity: one stream per
// in-flight request source.  Slot codes: 0 = blocking DMA, 1..16 = async
// handles, 17 = gload.
constexpr std::uint64_t kSlotBlocking = 0;
constexpr std::uint64_t kSlotGload = 17;
constexpr std::uint64_t kSlotsPerCpe = 18;

std::uint64_t stream_id(std::uint32_t cpe, std::uint64_t slot) {
  return static_cast<std::uint64_t>(cpe) * kSlotsPerCpe + slot;
}

std::uint64_t handle_slot(int handle) {
  return handle == kBlockingHandle ? kSlotBlocking
                                   : static_cast<std::uint64_t>(handle) + 1;
}

/// The handle as exposed in TraceEvent: -1 for the blocking pseudo-handle
/// (the DmaOp spelling), the async handle id otherwise.
std::int32_t public_handle(int handle) {
  return handle == kBlockingHandle ? -1 : handle;
}

enum class EvKind : std::uint8_t {
  kResume = 0,
  kDmaArrival = 1,  // one transaction (reference engine only)
  kGloadArrival = 2,
  kMcService = 3,  // reference engine only: the fast engine keeps its
                   // controller service events in per-controller slots
  kDmaTrain = 4,   // self-rescheduling whole-request train (fast engine)
  kJobLaunch = 5,  // gang scheduler releasing a queued job onto freed CGs
};

struct Ev {
  sw::Tick tick;
  std::uint64_t seq;  // insertion order: deterministic tie-break
  EvKind kind;
  std::uint32_t cpe;  // or controller index (kMcService) / job (kJobLaunch)
  int handle;         // for kDmaArrival / kDmaTrain
};

/// In-flight DMA request state (one per handle slot, plus a blocking slot).
struct Request {
  std::uint64_t remaining = 0;  // transactions whose data is not back yet
  sw::Tick latest_done = 0;     // completion = max over transaction returns
  bool complete = true;

  // Train state (fast engine): transactions not yet submitted, and the
  // seq reserved for the train's next hop.  Reserving the whole seq block
  // [base, base + MRT) at issue time makes the train's (tick, seq) keys
  // exactly those the reference engine's per-transaction arrivals carry,
  // so the pop order — and with it every result byte — is unchanged.
  std::uint64_t issue_remaining = 0;
  std::uint64_t train_seq = 0;

  // Causal identity for the trace.  Request ids are assigned at issue in
  // program-step order, which both engines share, so the ids — and the
  // event links built from them — are engine-independent.  They stay
  // valid after completion (a dma_wait may observe an already-complete
  // request) until the slot is reissued.
  std::uint64_t req_id = kNoReq;
  std::uint32_t issue_op = kNoOp;       // DmaOp index in the program
  std::uint64_t issue_ev = kNoPred;     // kDmaIssue event id
  std::uint64_t last_service_ev = kNoPred;  // latest kMemService event id
};

struct Cpe {
  const CpeProgram* prog = nullptr;
  std::size_t pc = 0;
  bool done = false;

  // Gload loop progress at the current op.  Each serial Gload round-trip
  // is its own request for trace purposes.
  bool in_gload = false;
  std::uint64_t gload_remaining = 0;
  sw::Tick gload_issue = 0;
  std::uint64_t gload_req = kNoReq;

  // Waiting state: kNoWait, kBlockingHandle, or an async handle id.
  static constexpr int kNoWait = -1;
  int wait_handle = kNoWait;
  sw::Tick wait_start = 0;

  Request blocking;
  std::vector<Request> handles;

  CpeStats stats;
};

/// The event core, parameterized on the queue implementation and on the
/// fast paths (DMA trains + uncontended fast-forward).  Two instantiations
/// exist: the production engine (BucketEventQueue, fast paths on) and the
/// reference oracle (HeapEventQueue, per-transaction arrivals) — both are
/// bit-identical on every SimResult field except `counters`.
template <typename Queue, bool kFastPath>
class Engine {
 public:
  Engine(const SimConfig& cfg, const KernelBinary& binary,
         const std::vector<CpeProgram>& programs,
         const std::vector<detail::JobSpec>* jobs = nullptr)
      : cfg_(cfg), dma_(cfg.arch) {
    cfg_.arch.validate();
    SWPERF_CHECK(cfg_.core_groups >= 1 &&
                     cfg_.core_groups <= cfg_.arch.core_groups,
                 "core_groups=" << cfg_.core_groups);
    const std::size_t capacity =
        static_cast<std::size_t>(cfg_.arch.cpes_per_cg) * cfg_.core_groups;
    SWPERF_CHECK(!programs.empty(), "no programs");
    if (jobs == nullptr || jobs->empty()) {
      SWPERF_CHECK(programs.size() <= capacity,
                   programs.size() << " programs for " << capacity
                                   << " CPEs");
    }

    // Cross-section memory (multi-CG) runs at slightly reduced efficiency.
    const double bw_scale =
        cfg_.core_groups > 1 ? cfg_.arch.cross_section_bw_efficiency : 1.0;
    controllers_.reserve(cfg_.core_groups);
    for (std::uint32_t g = 0; g < cfg_.core_groups; ++g) {
      controllers_.emplace_back(cfg_.arch, bw_scale);
    }

    schedules_.reserve(binary.blocks.size());
    for (const auto& b : binary.blocks) {
      schedules_.emplace_back(b, cfg_.arch);
    }

    cpes_.resize(programs.size());
    std::size_t total_ops = 0;
    for (std::size_t i = 0; i < programs.size(); ++i) {
      cpes_[i].prog = &programs[i];
      cpes_[i].handles.resize(kMaxHandles);
      total_ops += programs[i].ops.size();
    }
    if (cfg_.trace) {
      trace_.events.reserve(std::min<std::size_t>(5 * total_ops, 1 << 20));
    }

    // The job table: explicit gang-scheduled jobs in chip mode, or one
    // implicit job spanning every program (the classic single-launch
    // behaviour, byte-for-byte) otherwise.
    if (jobs != nullptr && !jobs->empty()) {
      std::uint32_t at = 0;
      for (const auto& spec : *jobs) {
        SWPERF_CHECK(spec.program_count >= 1, "job with no programs");
        SWPERF_CHECK(spec.first_program == at,
                     "job slices must tile the program vector in order");
        SWPERF_CHECK(spec.core_groups >= 1 &&
                         spec.core_groups <= cfg_.core_groups,
                     "job wants " << spec.core_groups << " CGs on a "
                                  << cfg_.core_groups << "-CG chip");
        SWPERF_CHECK(
            spec.program_count <=
                static_cast<std::size_t>(cfg_.arch.cpes_per_cg) *
                    spec.core_groups,
            "job has " << spec.program_count << " programs for "
                       << spec.core_groups << " CGs");
        at += spec.program_count;
        jobs_.push_back(JobState{spec, spec.program_count, 0, 0});
      }
      SWPERF_CHECK(at == programs.size(),
                   "job slices cover " << at << " of " << programs.size()
                                       << " programs");
    } else {
      detail::JobSpec spec;
      spec.first_program = 0;
      spec.program_count = static_cast<std::uint32_t>(programs.size());
      spec.core_groups = cfg_.core_groups;
      jobs_.push_back(JobState{spec, spec.program_count, 0, 0});
    }
    job_of_.resize(programs.size());
    for (std::uint32_t j = 0; j < jobs_.size(); ++j) {
      const auto& spec = jobs_[j].spec;
      for (std::uint32_t i = 0; i < spec.program_count; ++i) {
        job_of_[spec.first_program + i] = j;
      }
    }
    barrier_waiters_.resize(jobs_.size());
    free_cgs_ = cfg_.core_groups;
    if constexpr (kFastPath) mc_slots_.resize(controllers_.size());
  }

  SimResult run() {
    trace_.n_cpes = static_cast<std::uint32_t>(cpes_.size());
    trace_.n_controllers = static_cast<std::uint32_t>(controllers_.size());
    launch_ready(0, /*immediate=*/true);

    while (true) {
      if constexpr (kFastPath) {
        // Controller service slots live outside the queue: at most one per
        // controller, keyed (tick, seq) exactly like the kMcService events
        // the reference engine pushes, so ordering them against the queue
        // head reproduces the reference pop order.
        int best = -1;
        for (std::size_t m = 0; m < mc_slots_.size(); ++m) {
          const McSlot& s = mc_slots_[m];
          if (!s.armed) continue;
          if (best < 0 || s.tick < mc_slots_[best].tick ||
              (s.tick == mc_slots_[best].tick &&
               s.seq < mc_slots_[best].seq)) {
            best = static_cast<int>(m);
          }
        }
        if (best >= 0) {
          bool fire = true;
          if (!events_.empty()) {
            const auto qk = events_.peek_key();
            fire = std::make_pair(mc_slots_[best].tick,
                                  mc_slots_[best].seq) < *qk;
          }
          if (fire) {
            fire_slot(static_cast<std::uint32_t>(best));
            continue;
          }
        }
      }
      if (events_.empty()) break;
      const Ev ev = events_.pop();
      ++counters_.events_popped;
      if constexpr (kFastPath) materialize(ev.tick, ev.seq);
      switch (ev.kind) {
        case EvKind::kResume:
          step(ev.cpe, ev.tick);
          break;
        case EvKind::kDmaArrival:
          submit_transaction(ev.tick, stream_id(ev.cpe, handle_slot(ev.handle)));
          break;
        case EvKind::kDmaTrain: {
          Request& r = request_slot(cpes_[ev.cpe], ev.handle);
          if (try_fast_forward(ev, r)) break;
          // This hop's own transaction first: its arrival may extend the
          // controller backlog absorb_train's busy horizon counts on.  The
          // re-entry hop's key is the preallocated (tick, train_seq), so
          // pushing it after changes nothing the queue can observe.
          submit_transaction(ev.tick, stream_id(ev.cpe, handle_slot(ev.handle)));
          if (--r.issue_remaining > 0) {
            const std::uint64_t k = absorb_train(ev, r);
            if (r.issue_remaining > 0) {
              events_.push(Ev{ev.tick +
                                  static_cast<sw::Tick>(k + 1) *
                                      dma_.delta_ticks(),
                              r.train_seq++, EvKind::kDmaTrain, ev.cpe,
                              ev.handle});
            }
          }
          break;
        }
        case EvKind::kGloadArrival:
          submit_transaction(ev.tick, stream_id(ev.cpe, kSlotGload));
          break;
        case EvKind::kMcService: {
          auto& mc = controllers_[ev.cpe];
          if (auto g = mc.service(ev.tick)) {
            deliver(ev.cpe, *g);
          }
          break;
        }
        case EvKind::kJobLaunch: {
          JobState& job = jobs_[ev.cpe];
          job.launch = ev.tick;
          for (std::uint32_t i = 0; i < job.spec.program_count; ++i) {
            step(job.spec.first_program + i, ev.tick);
          }
          break;
        }
      }
    }

    if constexpr (kFastPath) {
      // Every absorbed arrival lands strictly inside its burst's busy
      // horizon, so the controller's slot chain stays alive past it and
      // some fire_slot materialized it before the queue could drain.
      SWPERF_ASSERT(bursts_.empty());
    }
    std::size_t finished = 0;
    for (const auto& c : cpes_) finished += c.done ? 1 : 0;
    SWPERF_CHECK(finished == cpes_.size(),
                 "simulation deadlocked: "
                     << cpes_.size() - finished << " CPEs blocked, "
                     << jobs_.size() - next_launch_
                     << " jobs never launched (barrier mismatch, missing "
                        "dma_wait, or a job that cannot fit)");

    SimResult r;
    r.cpes.reserve(cpes_.size());
    for (auto& c : cpes_) {
      r.total_ticks = std::max(r.total_ticks, c.stats.finish);
      r.cpes.push_back(c.stats);
    }
    for (auto& mc : controllers_) {
      r.transactions += mc.transactions();
      r.mem_busy_ticks += mc.busy_ticks();
      r.mem_idle_ticks += mc.idle_ticks();
      counters_.mc_enqueued += mc.enqueued_total();
      counters_.mc_max_queued =
          std::max(counters_.mc_max_queued, mc.max_queued());
    }
    r.counters = counters_;
    if (cfg_.trace) r.trace = std::move(trace_);
    return r;
  }

  /// Launch/finish ticks per job, in job order (valid after run()).
  std::vector<detail::JobWindow> job_windows() const {
    std::vector<detail::JobWindow> w;
    w.reserve(jobs_.size());
    for (const auto& j : jobs_) w.push_back({j.launch, j.finish});
    return w;
  }

 private:
  void schedule(sw::Tick tick, EvKind kind, std::uint32_t cpe,
                int handle = 0) {
    events_.push(Ev{tick, seq_++, kind, cpe, handle});
  }

  /// Appends a causal event and returns its id (its index in the event
  /// vector).  Zero-length spans are dropped — except kDmaIssue, which is
  /// a point event by design — and tracing-off returns kNoPred, so causal
  /// links degrade to "no predecessor" rather than dangling.
  std::uint64_t record(TraceEvent e) {
    if (!cfg_.trace) return kNoPred;
    if (e.end <= e.begin && e.what != Activity::kDmaIssue) return kNoPred;
    trace_.events.push_back(e);
    return trace_.events.size() - 1;
  }

  /// Routes a transaction to a controller (cross-section memory interleaves
  /// round-robin over the participating CGs) and drives the service chain.
  void submit_transaction(sw::Tick t, std::uint64_t stream) {
    const std::uint32_t mc_idx = static_cast<std::uint32_t>(rr_);
    rr_ = (rr_ + 1) % controllers_.size();
    if (auto g = controllers_[mc_idx].arrive(t, stream)) {
      deliver(mc_idx, *g);
    }
  }

  /// Handles a granted transaction: schedules the controller's next service
  /// slot and routes the data-return to the owning request/gload.  The fast
  /// engine keeps the service slot out of the event queue entirely — one
  /// McSlot per controller, re-armed in place — which removes the dominant
  /// push/pop churn of the contended regime; the slot's (tick, seq) key is
  /// exactly the kMcService event's, so pop order is unchanged.
  void deliver(std::uint32_t mc_idx, const mem::MemoryController::Grant& g) {
    if constexpr (kFastPath) {
      arm_slot(mc_idx);
    } else {
      schedule(controllers_[mc_idx].busy_until(), EvKind::kMcService, mc_idx);
    }
    serve(mc_idx, g);
  }

  /// Arms controller `m`'s service slot for busy_until.  Allocating seq
  /// here — before serve() — mirrors the reference engine's deliver(),
  /// which pushes kMcService before any data-return resume, so both
  /// engines consume identical seq values.
  void arm_slot(std::uint32_t m) {
    mc_slots_[m] = McSlot{controllers_[m].busy_until(), seq_++, true};
    ++counters_.heap_pushes_avoided;
  }

  /// Admits absorbed train arrivals (see absorb_train) whose (tick, seq)
  /// key strictly precedes (t, s) — the key of the event or service slot
  /// about to execute — to the single controller, in exact global arrival
  /// order.  Called before every pop dispatch and every slot fire, so each
  /// engine decision sees the same wait queue the reference engine built
  /// one arrival event at a time.
  void materialize(sw::Tick t, std::uint64_t s) {
    while (!bursts_.empty()) {
      const Burst& b = bursts_.front();
      if (b.next_tick > t || (b.next_tick == t && b.next_seq >= s)) break;
      // Inside the burst's busy horizon by construction: the arrival can
      // only enqueue, never grant.
      auto g = controllers_[0].arrive(b.next_tick, b.stream);
      SWPERF_ASSERT(!g.has_value());
      std::pop_heap(bursts_.begin(), bursts_.end(), BurstAfter{});
      Burst& back = bursts_.back();
      back.next_tick += back.delta;
      ++back.next_seq;
      if (--back.remaining == 0) {
        bursts_.pop_back();
      } else {
        std::push_heap(bursts_.begin(), bursts_.end(), BurstAfter{});
      }
    }
  }

  /// Contended train absorption (fast engine, single controller): after a
  /// train hop at ev.tick, absorb the next k arrivals — those provably
  /// landing while the controller is still draining its current backlog —
  /// into a Burst instead of scheduling them as events.  Busy horizon: the
  /// in-flight service ends at busy_until(), then each queued transaction
  /// occupies the controller for service_ticks() back to back, so until
  /// busy_until() + queued()*S every arrival strictly earlier can only
  /// enqueue; materialize() admits them in exact (tick, seq) order using
  /// the train's preallocated seq block.  Returns k; the caller schedules
  /// the train's re-entry hop after the absorbed stretch.
  std::uint64_t absorb_train(const Ev& ev, Request& r) {
    if constexpr (!kFastPath) {
      (void)ev;
      (void)r;
      return 0;
    } else {
      if (controllers_.size() != 1) return 0;
      auto& mc = controllers_[0];
      if (!mc.service_pending()) return 0;
      const sw::Tick delta = dma_.delta_ticks();
      if (delta == 0) return 0;
      const sw::Tick horizon =
          mc.busy_until() +
          static_cast<sw::Tick>(mc.queued()) * mc.service_ticks();
      if (ev.tick + delta >= horizon) return 0;
      const std::uint64_t k = std::min<std::uint64_t>(
          r.issue_remaining,
          static_cast<std::uint64_t>((horizon - 1 - ev.tick) / delta));
      if (k == 0) return 0;
      bursts_.push_back(Burst{ev.tick + delta, r.train_seq, delta, k,
                              stream_id(ev.cpe, handle_slot(ev.handle))});
      std::push_heap(bursts_.begin(), bursts_.end(), BurstAfter{});
      r.train_seq += k;
      r.issue_remaining -= k;
      counters_.train_arrivals_absorbed += k;
      counters_.heap_pushes_avoided += k;
      return k;
    }
  }

  /// Fires controller `m`'s armed service slot: the fast-engine equivalent
  /// of popping its kMcService event (counted as a logical pop).
  void fire_slot(std::uint32_t m) {
    const sw::Tick now = mc_slots_[m].tick;
    const std::uint64_t sseq = mc_slots_[m].seq;
    mc_slots_[m].armed = false;
    ++counters_.events_popped;
    materialize(now, sseq);
    auto& mc = controllers_[m];
    auto g = mc.service(now);
    if (!g) return;
    arm_slot(m);
    serve(m, *g);
    try_batch(m, now);
  }

  /// Contended batched grant: after the grant at `t0`, serve up to j more
  /// queued transactions back-to-back at t0+S, t0+2S, ... analytically,
  /// when the grant decisions provably come out the same as the reference
  /// engine's event-at-a-time interleaving.  Guards (all conservative):
  ///   * j*S < L (i.e. j <= (L-1)/S): the slot fire at t0 already granted
  ///     once, so the batch's decisions land at t0+S .. t0+j*S; keeping the
  ///     whole window strictly inside one data-return latency means every
  ///     resume or arrival the window's own grants schedule — t0+L at the
  ///     earliest — lands past the last batched decision.  L <= S disables
  ///     batching outright;
  ///   * every other controller's armed slot sits strictly past t0+j*S
  ///     (strict because a slot at an equal tick carries a smaller seq than
  ///     the batch's freshly armed slot, and would fire first in between);
  ///   * single controller: j <= affine_queued() — every batched decision
  ///     grants a waiter of the affine stream that is already queued, and
  ///     the controller pops those in arrival order no matter what arrives
  ///     meanwhile.  Queued events inside the window [t0, t0+j*S] are then
  ///     harmless as long as they are pure arrivals (kDmaTrain /
  ///     kGloadArrival): popped before or after the batch, they only
  ///     enqueue (the controller stays busy through the window, so they
  ///     cannot grant) at the same ring positions (admission order is push
  ///     order either way), leaving every controller decision unchanged.
  ///     kResume / kJobLaunch events run CPE steps with arbitrary effects,
  ///     so the first one in the window caps j below its tick.  This is
  ///     what makes batching engage in the paper's contended regime, where
  ///     DMA trains keep dribbling arrivals into the backlog every few
  ///     hundred ticks while the controller drains one request's
  ///     transactions back-to-back.
  ///   * multiple controllers: arrivals round-robin across controllers and
  ///     could grant idle neighbours immediately, so fall back to the
  ///     strict guard — no queued event of any kind inside the window
  ///     (j <= queued() then bounds the grants the backlog can supply).
  /// The grant at t0's own data-return was pushed before this runs, so the
  /// window scan (or peek) covers it.
  void try_batch(std::uint32_t m, sw::Tick t0) {
    auto& mc = controllers_[m];
    const std::uint64_t q =
        controllers_.size() == 1 ? mc.affine_queued() : mc.queued();
    if (q == 0) return;
    const sw::Tick S = mc.service_ticks();
    const sw::Tick L = mc.l_base_ticks();
    if (L <= S) return;
    // The slot fire at t0 already granted once; the batch's decisions land
    // at t0+S .. t0+jS.  Keep the whole window strictly inside one
    // data-return latency (jS < L) so the resumes and arrivals the batch's
    // own grants schedule — t0+L at the earliest — land past the window.
    std::uint64_t j =
        std::min<std::uint64_t>(q, static_cast<std::uint64_t>((L - 1) / S));
    if (controllers_.size() == 1) {
      const auto viol = events_.first_violation(
          t0 - 1, t0 + static_cast<sw::Tick>(j) * S, [](const Ev& e) {
            return e.kind == EvKind::kDmaTrain ||
                   e.kind == EvKind::kGloadArrival;
          });
      if (viol) {
        if (*viol <= t0) return;
        j = std::min<std::uint64_t>(
            j, static_cast<std::uint64_t>((*viol - t0 - 1) / S));
      }
    } else {
      if (const auto next = events_.peek_tick()) {
        if (*next <= t0) return;
        j = std::min<std::uint64_t>(
            j, static_cast<std::uint64_t>((*next - t0 - 1) / S));
      }
      for (std::size_t o = 0; o < mc_slots_.size(); ++o) {
        if (o == m || !mc_slots_[o].armed) continue;
        const sw::Tick ft = mc_slots_[o].tick;
        if (ft <= t0) return;
        j = std::min<std::uint64_t>(
            j, static_cast<std::uint64_t>((ft - t0 - 1) / S));
      }
    }
    if (j == 0) return;
    for (std::uint64_t i = 0; i < j; ++i) {
      const sw::Tick ts = mc_slots_[m].tick;
      mc_slots_[m].armed = false;
      auto g = mc.service(ts);
      SWPERF_ASSERT(g.has_value());
      arm_slot(m);
      serve(m, *g);
    }
    // The slot-fired grant at t0 plus the j analytic ones; the reference
    // engine pops one kMcService per grant, this path popped only the
    // first (counter reconciliation: ref pops exceed fast pops by exactly
    // batched_transactions - batched_grants).
    ++counters_.batched_grants;
    counters_.batched_transactions += j + 1;
  }

  /// Records the service slot as a causal kMemService event — linked back
  /// to the owning request's issue point through its per-request service
  /// chain — then routes the data-return.  Shared verbatim by the event
  /// loop and the fast-forward replay, so both paths emit the same events.
  void serve(std::uint32_t mc_idx, const mem::MemoryController::Grant& g) {
    auto& mc = controllers_[mc_idx];
    const sw::Tick svc_begin = mc.busy_until() - mc.service_ticks();
    const sw::Tick svc_end = mc.busy_until();
    const std::uint32_t lane = trace_.n_cpes + mc_idx;

    const auto cpe_id = static_cast<std::uint32_t>(g.stream / kSlotsPerCpe);
    const std::uint64_t slot = g.stream % kSlotsPerCpe;
    Cpe& c = cpes_[cpe_id];
    std::uint64_t service_ev = kNoPred;
    if (slot == kSlotGload) {
      service_ev = record({lane, Activity::kMemService, svc_begin, svc_end,
                           static_cast<std::uint32_t>(c.pc), kNoHandle,
                           c.gload_req, kNoPred});
    } else {
      const int handle =
          slot == kSlotBlocking ? kBlockingHandle : static_cast<int>(slot) - 1;
      Request& r = request_slot(c, handle);
      const std::uint64_t pred =
          r.last_service_ev != kNoPred ? r.last_service_ev : r.issue_ev;
      service_ev = record({lane, Activity::kMemService, svc_begin, svc_end,
                           r.issue_op, public_handle(handle), r.req_id, pred});
      r.last_service_ev = service_ev;
    }
    data_return(g, service_ev);
  }

  /// Routes a grant's data-return to the owning request/gload and wakes
  /// the CPE when that completes the thing it is blocked on.
  void data_return(const mem::MemoryController::Grant& g,
                   std::uint64_t service_ev) {
    const auto cpe_id = static_cast<std::uint32_t>(g.stream / kSlotsPerCpe);
    const std::uint64_t slot = g.stream % kSlotsPerCpe;
    Cpe& c = cpes_[cpe_id];

    if (slot == kSlotGload) {
      SWPERF_ASSERT(c.in_gload && c.gload_remaining > 0);
      const auto& op = std::get<GloadLoopOp>(c.prog->ops[c.pc]);
      const auto op_idx = static_cast<std::uint32_t>(c.pc);
      c.stats.gload_wait += g.data_ready - c.gload_issue;
      c.stats.comp += op.compute_ticks_per_elem;
      const std::uint64_t wait_ev =
          record({cpe_id, Activity::kGloadWait, c.gload_issue, g.data_ready,
                  op_idx, kNoHandle, c.gload_req, service_ev});
      record({cpe_id, Activity::kCompute, g.data_ready,
              g.data_ready + op.compute_ticks_per_elem, op_idx, kNoHandle,
              kNoReq, wait_ev});
      --c.gload_remaining;
      schedule(g.data_ready + op.compute_ticks_per_elem, EvKind::kResume,
               cpe_id);
      return;
    }

    const int handle =
        slot == kSlotBlocking ? kBlockingHandle : static_cast<int>(slot) - 1;
    Request& r = request_slot(c, handle);
    r.latest_done = std::max(r.latest_done, g.data_ready);
    SWPERF_ASSERT(r.remaining > 0);
    if (--r.remaining == 0) {
      r.complete = true;
      if (c.wait_handle == handle) {
        // The waiter's local clock may already be past the completion (it
        // ran ahead through compute before blocking on an async handle).
        const sw::Tick resume = std::max(r.latest_done, c.wait_start);
        c.stats.dma_wait += resume - c.wait_start;
        record({cpe_id, Activity::kDmaWait, c.wait_start, resume,
                static_cast<std::uint32_t>(c.pc - 1), public_handle(handle),
                r.req_id, r.last_service_ev});
        c.wait_handle = Cpe::kNoWait;
        schedule(resume, EvKind::kResume, cpe_id);
      }
    }
  }

  /// Uncontended fast-forward (fast engine only): when the single
  /// controller is idle and no other event can land inside the train's
  /// batch window, the whole remaining train resolves analytically — the
  /// same arrive/service ping-pong the event loop would run (Eq. 11's
  /// uncontended regime), replayed inline without queue traffic.  Every
  /// MemoryController call, grant tick, trace interval and data-return is
  /// the one the reference engine produces.
  bool try_fast_forward(const Ev& ev, Request& r) {
    if constexpr (!kFastPath) {
      (void)ev;
      (void)r;
      return false;
    } else {
      // Multi-CG runs interleave round-robin over controllers; the train
      // would perturb rr_, so restrict to the single-controller case.
      if (controllers_.size() != 1) return false;
      // Absorbed arrivals are invisible to the queue peeks below; while any
      // are pending the controller is busy anyway, so nothing is lost.
      if (!bursts_.empty()) return false;
      auto& mc = controllers_[0];
      const std::uint64_t n = r.issue_remaining;
      if (n < 2) return false;
      if (mc.service_pending() || mc.queued() != 0 ||
          ev.tick < mc.busy_until()) {
        return false;
      }
      // With l_base < service the completion resume could land inside the
      // window and issue new traffic mid-batch; bail to the normal path.
      if (mc.l_base_ticks() < mc.service_ticks()) return false;
      // Batch window: last service ends at issue + (n-1)*max(Δ, service)
      // + service, whichever of issue rate or bandwidth is the bottleneck.
      const sw::Tick gap = std::max(dma_.delta_ticks(), mc.service_ticks());
      const sw::Tick window_end = ev.tick + (n - 1) * gap + mc.service_ticks();
      if (const auto next = events_.peek_tick(); next && *next <= window_end) {
        return false;
      }

      const std::uint64_t stream = stream_id(ev.cpe, handle_slot(ev.handle));
      const sw::Tick delta = dma_.delta_ticks();
      std::uint64_t i = 0;
      while (i < n || mc.service_pending()) {
        const sw::Tick ta = i < n ? ev.tick + i * delta : sw::kTickNever;
        const sw::Tick ts =
            mc.service_pending() ? mc.busy_until() : sw::kTickNever;
        std::optional<mem::MemoryController::Grant> g;
        if (ta <= ts) {
          g = mc.arrive(ta, stream);
          ++i;
        } else {
          g = mc.service(ts);
        }
        if (g) serve(0, *g);
      }
      r.issue_remaining = 0;
      ++counters_.trains_fast_forwarded;
      counters_.ff_transactions += n;
      // n-1 train hops plus the n kMcService events never queued.
      counters_.heap_pushes_avoided += 2 * n - 1;
      return true;
    }
  }

  Request& request_slot(Cpe& c, int handle) {
    if (handle == kBlockingHandle) return c.blocking;
    SWPERF_ASSERT(handle >= 0 && handle < kMaxHandles);
    return c.handles[static_cast<std::size_t>(handle)];
  }

  sw::Tick block_ticks(std::uint32_t block_id, std::uint64_t iters) const {
    SWPERF_CHECK(block_id < schedules_.size(),
                 "compute op references unknown block " << block_id);
    return sw::cycles_to_ticks(schedules_[block_id].cycles(iters));
  }

  /// Issues a DMA request's transactions.  Fast engine: one train event
  /// whose seq block [seq_, seq_ + MRT) is reserved up front; reference:
  /// MRT individual arrival events (which consume the same seq values).
  /// Both record the same zero-duration kDmaIssue point event, the root
  /// of the request's causal chain.
  void issue_dma(sw::Tick t, std::uint32_t cpe_id, int slot, Request& r,
                 const DmaOp& dma, std::uint64_t mrt, std::uint32_t op_idx) {
    r = Request{};
    r.remaining = mrt;
    r.complete = false;
    r.req_id = next_req_++;
    r.issue_op = op_idx;
    r.issue_ev = record({cpe_id, Activity::kDmaIssue, t, t, op_idx,
                         public_handle(slot), r.req_id, kNoPred});
    if constexpr (kFastPath) {
      r.issue_remaining = mrt;
      r.train_seq = seq_;
      seq_ += mrt;
      ++counters_.dma_trains;
      counters_.heap_pushes_avoided += mrt - 1;
      events_.push(Ev{t, r.train_seq++, EvKind::kDmaTrain, cpe_id, slot});
    } else {
      for (sw::Tick off : dma_.plan(dma.req)) {
        schedule(t + off, EvKind::kDmaArrival, cpe_id, slot);
      }
    }
  }

  /// Executes ops for CPE `cpe_id` starting at tick `t` until it blocks,
  /// finishes, or joins a barrier.
  void step(std::uint32_t cpe_id, sw::Tick t) {
    Cpe& c = cpes_[cpe_id];
    const auto& ops = c.prog->ops;
    while (true) {
      if (c.in_gload) {
        if (c.gload_remaining > 0) {
          // Issue the next serial Gload; its data-return resumes us.
          c.gload_issue = t;
          c.gload_req = next_req_++;
          schedule(t, EvKind::kGloadArrival, cpe_id);
          ++c.stats.gload_requests;
          return;
        }
        c.in_gload = false;
        ++c.pc;
      }
      if (c.pc >= ops.size()) {
        c.done = true;
        c.stats.finish = t;
        JobState& job = jobs_[job_of_[cpe_id]];
        job.finish = std::max(job.finish, t);
        if (--job.remaining == 0) {
          // Last CPE of the job: its CG slots free up at the job's finish
          // tick, and the gang scheduler may release queued jobs onto them.
          free_cgs_ += job.spec.core_groups;
          launch_ready(job.finish, /*immediate=*/false);
        }
        return;
      }

      const Op& op = ops[c.pc];
      const auto op_idx = static_cast<std::uint32_t>(c.pc);
      if (const auto* comp = std::get_if<ComputeOp>(&op)) {
        const sw::Tick dur = block_ticks(comp->block_id, comp->iters);
        c.stats.comp += dur;
        record({cpe_id, Activity::kCompute, t, t + dur, op_idx});
        t += dur;
        ++c.pc;
      } else if (const auto* delay = std::get_if<DelayOp>(&op)) {
        t += delay->ticks;
        ++c.pc;
      } else if (const auto* dma = std::get_if<DmaOp>(&op)) {
        const std::uint64_t mrt = dma->req.transactions(cfg_.arch);
        const int slot = dma->handle < 0 ? kBlockingHandle : dma->handle;
        SWPERF_CHECK(dma->handle < kMaxHandles,
                     "dma handle " << dma->handle << " out of range");
        Request& r = request_slot(c, slot);
        SWPERF_CHECK(r.complete,
                     "dma issued on handle " << dma->handle
                                             << " while still in flight");
        ++c.stats.dma_requests;
        ++c.pc;
        if (mrt == 0) continue;
        issue_dma(t, cpe_id, slot, r, *dma, mrt, op_idx);
        if (slot == kBlockingHandle) {
          c.wait_handle = kBlockingHandle;
          c.wait_start = t;
          return;
        }
      } else if (const auto* wait = std::get_if<DmaWaitOp>(&op)) {
        SWPERF_CHECK(wait->handle >= 0 && wait->handle < kMaxHandles,
                     "dma_wait handle " << wait->handle << " out of range");
        Request& r = c.handles[static_cast<std::size_t>(wait->handle)];
        ++c.pc;
        if (!r.complete) {
          c.wait_handle = wait->handle;
          c.wait_start = t;
          return;
        }
        if (r.latest_done > t) {
          c.stats.dma_wait += r.latest_done - t;
          record({cpe_id, Activity::kDmaWait, t, r.latest_done, op_idx,
                  wait->handle, r.req_id, r.last_service_ev});
          t = r.latest_done;
        }
      } else if (const auto* gl = std::get_if<GloadLoopOp>(&op)) {
        SWPERF_CHECK(gl->bytes > 0 && gl->bytes <= cfg_.arch.gload_max_bytes,
                     "gload of " << gl->bytes << " bytes exceeds max "
                                 << cfg_.arch.gload_max_bytes);
        c.in_gload = true;
        c.gload_remaining = gl->count;
      } else if (std::get_if<BarrierOp>(&op)) {
        ++c.pc;
        // Barriers are scoped to the CPE's job: athread barriers never
        // cross kernel launches, so concurrent jobs synchronize
        // independently.  With the implicit single job this is the classic
        // all-CPEs barrier, byte-for-byte.
        const std::uint32_t job = job_of_[cpe_id];
        auto& waiters = barrier_waiters_[job];
        waiters.push_back({cpe_id, t, op_idx});
        if (waiters.size() == jobs_[job].spec.program_count) {
          // CPEs may run ahead of the event clock through local compute, so
          // the release time is the max arrival tick, not this event's tick.
          sw::Tick release = 0;
          for (const auto& w : waiters) {
            release = std::max(release, w.arrive);
          }
          // All arrivals at one barrier share a req (the barrier ordinal):
          // the explain DAG joins them into one synchronization node.
          const std::uint64_t ordinal = next_barrier_++;
          for (const auto& w : waiters) {
            cpes_[w.cpe].stats.barrier_wait += release - w.arrive;
            record({w.cpe, Activity::kBarrier, w.arrive, release, w.op,
                    kNoHandle, ordinal, kNoPred});
            schedule(release, EvKind::kResume, w.cpe);
          }
          waiters.clear();
        }
        return;
      } else {
        SWPERF_ASSERT(false);
      }
    }
  }

  /// FIFO gang scheduler: launches queued jobs, in order, while the head
  /// job fits in the free CG slots.  `immediate` (the tick-0 kickoff)
  /// steps the job's CPEs directly — matching the classic engine's
  /// straight-line launch loop — while completion-time launches go through
  /// a kJobLaunch event so they interleave deterministically with pending
  /// events at the same tick.
  void launch_ready(sw::Tick t, bool immediate) {
    while (next_launch_ < jobs_.size() &&
           jobs_[next_launch_].spec.core_groups <= free_cgs_) {
      const auto j = static_cast<std::uint32_t>(next_launch_++);
      JobState& job = jobs_[j];
      free_cgs_ -= job.spec.core_groups;
      if (immediate) {
        job.launch = t;
        for (std::uint32_t i = 0; i < job.spec.program_count; ++i) {
          step(job.spec.first_program + i, t);
        }
      } else {
        schedule(t, EvKind::kJobLaunch, j);
      }
    }
  }

  struct BarrierWaiter {
    std::uint32_t cpe;
    sw::Tick arrive;
    std::uint32_t op;
  };

  /// Fast-engine controller service slot: the kMcService event, held out
  /// of the queue.  At most one per controller (the controller serves one
  /// transaction at a time), keyed like any event.
  struct McSlot {
    sw::Tick tick = 0;
    std::uint64_t seq = 0;
    bool armed = false;
  };

  /// Fast-engine absorbed DMA train remainder: `remaining` arrivals delta
  /// apart starting at next_tick, carrying the request's preallocated seq
  /// block — exactly the (tick, seq) keys the per-arrival events would
  /// have had.  Admitted to the controller lazily by materialize().
  struct Burst {
    sw::Tick next_tick = 0;
    std::uint64_t next_seq = 0;
    sw::Tick delta = 0;
    std::uint64_t remaining = 0;
    std::uint64_t stream = 0;
  };

  /// Min-first on the next arrival's (tick, seq) key, for std heap ops.
  struct BurstAfter {
    bool operator()(const Burst& a, const Burst& b) const {
      if (a.next_tick != b.next_tick) return a.next_tick > b.next_tick;
      return a.next_seq > b.next_seq;
    }
  };

  /// One gang-scheduled job's runtime state.
  struct JobState {
    detail::JobSpec spec;
    std::uint64_t remaining = 0;  // member CPEs not yet finished
    sw::Tick launch = 0;
    sw::Tick finish = 0;  // max finish tick over member CPEs
  };

  SimConfig cfg_;
  mem::DmaEngine dma_;
  std::vector<mem::MemoryController> controllers_;
  std::vector<isa::LoopSchedule> schedules_;
  std::vector<Cpe> cpes_;
  std::vector<std::vector<BarrierWaiter>> barrier_waiters_;  // per job
  std::vector<JobState> jobs_;
  std::vector<std::uint32_t> job_of_;  // cpe index -> job index
  std::uint32_t free_cgs_ = 0;         // CG slots not held by a running job
  std::size_t next_launch_ = 0;        // first job not yet launched
  std::vector<McSlot> mc_slots_;       // fast engine only
  std::vector<Burst> bursts_;          // fast engine only; min-heap on
                                       // (next_tick, next_seq)
  Queue events_;
  std::uint64_t seq_ = 0;
  std::uint64_t next_req_ = 0;      // request ids, engine-independent
  std::uint64_t next_barrier_ = 0;  // barrier ordinals
  std::size_t rr_ = 0;
  Trace trace_;
  SimCounters counters_;
};

double avg_over(const std::vector<CpeStats>& cpes,
                sw::Tick CpeStats::* field) {
  if (cpes.empty()) return 0.0;
  double s = 0.0;
  for (const auto& c : cpes) s += sw::ticks_to_cycles(c.*field);
  return s / static_cast<double>(cpes.size());
}

}  // namespace

double SimResult::avg_comp_cycles() const {
  return avg_over(cpes, &CpeStats::comp);
}

double SimResult::max_comp_cycles() const {
  sw::Tick m = 0;
  for (const auto& c : cpes) m = std::max(m, c.comp);
  return sw::ticks_to_cycles(m);
}

double SimResult::avg_dma_wait_cycles() const {
  return avg_over(cpes, &CpeStats::dma_wait);
}

double SimResult::avg_gload_wait_cycles() const {
  return avg_over(cpes, &CpeStats::gload_wait);
}

double SimResult::avg_barrier_wait_cycles() const {
  return avg_over(cpes, &CpeStats::barrier_wait);
}

SimResult simulate(const SimConfig& cfg, const KernelBinary& binary,
                   const std::vector<CpeProgram>& programs) {
  Engine<BucketEventQueue<Ev>, /*kFastPath=*/true> engine(cfg, binary,
                                                          programs);
  return engine.run();
}

SimResult simulate_reference(const SimConfig& cfg, const KernelBinary& binary,
                             const std::vector<CpeProgram>& programs) {
  Engine<HeapEventQueue<Ev>, /*kFastPath=*/false> engine(cfg, binary,
                                                         programs);
  return engine.run();
}

namespace detail {

SimResult simulate_jobs(const SimConfig& cfg, const KernelBinary& binary,
                        const std::vector<CpeProgram>& programs,
                        const std::vector<JobSpec>& jobs,
                        std::vector<JobWindow>* windows, bool fast_engine) {
  if (fast_engine) {
    Engine<BucketEventQueue<Ev>, /*kFastPath=*/true> engine(cfg, binary,
                                                            programs, &jobs);
    SimResult r = engine.run();
    if (windows != nullptr) *windows = engine.job_windows();
    return r;
  }
  Engine<HeapEventQueue<Ev>, /*kFastPath=*/false> engine(cfg, binary,
                                                         programs, &jobs);
  SimResult r = engine.run();
  if (windows != nullptr) *windows = engine.job_windows();
  return r;
}

}  // namespace detail

}  // namespace swperf::sim
