// Discrete-event simulator of SW26010 core groups.
//
// This is the "hardware" of the reproduction: the ground truth the paper's
// static model is evaluated against (the real SW26010 being unobtainable).
// It simulates, at DRAM-transaction granularity with exact instruction
// schedules:
//   * per-CPE in-order execution of CpeProgram ops;
//   * per-CPE DMA engines issuing a request's transactions Δdelay apart;
//   * a FIFO bandwidth-limited memory controller per core group;
//   * serial blocking Gloads, each consuming a whole transaction;
//   * athread-style barriers across active CPEs;
//   * multi-CG runs with cross-section memory: transactions interleave
//     round-robin across the CGs' controllers at slightly reduced
//     efficiency, as the paper measured (Section V-C3).
//
// The simulation is fully deterministic: events are ordered by
// (tick, insertion sequence), and all latencies are fixed (cache-less
// architecture).  Crucially it shares *parameters* but not *structure*
// with the analytical model: contention and memory/compute overlap emerge
// from queueing here, while the model approximates them in closed form via
// virtual grouping (MRP/NG) — the gap between the two is the paper's
// prediction error.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/program.h"
#include "sim/trace.h"
#include "sw/arch.h"
#include "sw/time.h"

namespace swperf::sim {

/// Machine configuration for one simulation.
struct SimConfig {
  sw::ArchParams arch = sw::ArchParams::sw26010();
  /// Core groups participating. With >1, memory is cross-section
  /// (interleaved round-robin across the CGs' controllers).
  std::uint32_t core_groups = 1;
  /// Record an execution trace (see trace.h); costs memory, off by default.
  bool trace = false;
};

/// Per-CPE timing account (in ticks).
struct CpeStats {
  sw::Tick finish = 0;        // tick the program completed
  sw::Tick comp = 0;          // computing (ComputeOps + gload-interleaved)
  sw::Tick dma_wait = 0;      // blocked on DMA completion
  sw::Tick gload_wait = 0;    // blocked on Gload round-trips
  sw::Tick barrier_wait = 0;  // waiting at barriers
  std::uint64_t dma_requests = 0;
  std::uint64_t gload_requests = 0;
};

/// Engine throughput counters: how much work the event core did and how
/// much the fast paths saved.  Purely observational — two engines that
/// agree on every other SimResult field are bit-identical even when their
/// counters differ (the reference engine never fast-forwards).
struct SimCounters {
  std::uint64_t events_popped = 0;     // events taken off the queue (the
                                       // fast engine's controller service
                                       // slots count as logical pops)
  std::uint64_t heap_pushes_avoided = 0;  // pushes the train/FF/slot paths
                                          // skipped
  std::uint64_t dma_trains = 0;        // DMA requests issued as train events
  std::uint64_t trains_fast_forwarded = 0;  // trains granted analytically
  std::uint64_t ff_transactions = 0;   // transactions inside those trains

  // Contended batched grant (fast engine): one controller service slot
  // serving k back-to-back transactions analytically when no other event
  // can land between the grant decisions (Eq. 11's contended analogue of
  // the uncontended train fast-forward).
  std::uint64_t batched_grants = 0;        // batch windows executed
  std::uint64_t batched_transactions = 0;  // transactions granted inside
                                           // those windows (>= 2 each)

  // Contended train absorption (fast engine): arrivals of a DMA train that
  // provably land while the controller is still busy draining its current
  // backlog carry no events at all — they are admitted to the wait queue
  // analytically, in exact (tick, seq) arrival order, when the engine next
  // touches the controller.  Each absorbed arrival is one event pop the
  // reference engine pays and the fast engine skips.
  std::uint64_t train_arrivals_absorbed = 0;

  // Controller queue pressure: how hard the contended regime actually hit
  // the memory system.  mc_enqueued is identical across engines (both
  // drive the same arrivals to the same verdicts); mc_max_queued can read
  // lower on the fast engine, whose batched grants pop waiters before the
  // arrivals interleaved through the window are admitted.
  std::uint64_t mc_enqueued = 0;    // transactions that had to queue
  std::uint64_t mc_max_queued = 0;  // deepest controller backlog high-water
};

/// Aggregate result of one simulated kernel launch.
struct SimResult {
  sw::Tick total_ticks = 0;
  std::vector<CpeStats> cpes;

  // Memory-system aggregates (summed over controllers).
  std::uint64_t transactions = 0;
  sw::Tick mem_busy_ticks = 0;
  sw::Tick mem_idle_ticks = 0;  // idle gaps between transactions

  /// Populated when SimConfig::trace is set.
  Trace trace;

  /// Engine throughput accounting (see SimCounters).
  SimCounters counters;

  double total_cycles() const { return sw::ticks_to_cycles(total_ticks); }

  // Measured breakdown in cycles (averages over active CPEs) — the
  // quantities plotted in the paper's Figure 10.
  double avg_comp_cycles() const;
  double max_comp_cycles() const;
  double avg_dma_wait_cycles() const;
  double avg_gload_wait_cycles() const;
  double avg_barrier_wait_cycles() const;
};

/// Runs `programs` (one per active CPE) against the machine `cfg`.
/// Programs beyond cfg.arch.cpes_per_cg * cfg.core_groups are rejected.
///
/// Re-entrant: every piece of machine state (event queue, controllers,
/// CPE records, trace buffers) is built per call, and the inputs are only
/// read — concurrent simulations, even sharing one LoweredKernel, are
/// race-free and return identical results (the parallel tuner relies on
/// this; pinned by tests/sim/concurrent_machine_test.cpp).
SimResult simulate(const SimConfig& cfg, const KernelBinary& binary,
                   const std::vector<CpeProgram>& programs);

/// The pre-fast-path engine: per-transaction arrival events on a binary
/// heap, no fast-forward.  Bit-identical to simulate() on every field
/// except `counters` (pinned by tests/sim/fast_engine_test.cpp); kept as
/// the validation oracle and as the baseline bench_sim_throughput measures
/// the fast engine against.
SimResult simulate_reference(const SimConfig& cfg, const KernelBinary& binary,
                             const std::vector<CpeProgram>& programs);

namespace detail {

/// One gang-scheduled job inside a whole-chip run: a contiguous slice of
/// the merged program vector plus the CG slots it occupies while running.
/// Barriers are scoped to the job's programs; the FIFO gang scheduler
/// launches a job as soon as the head of the queue fits in the free CGs.
struct JobSpec {
  std::uint32_t first_program = 0;
  std::uint32_t program_count = 0;
  std::uint32_t core_groups = 1;  // CG slots reserved while running
};

/// Launch/finish window of one job, in ticks.
struct JobWindow {
  sw::Tick launch = 0;
  sw::Tick finish = 0;
};

/// Multi-job entry point behind simulate_chip(): runs `jobs` (slices of
/// `programs`) under the FIFO gang scheduler on `cfg.core_groups` CG
/// slots sharing cross-section memory.  `fast_engine` selects the
/// production engine vs. the reference oracle; both are bit-identical on
/// every SimResult field except `counters` (the same contract as
/// simulate()/simulate_reference()).  `windows`, when non-null, receives
/// one launch/finish record per job.
SimResult simulate_jobs(const SimConfig& cfg, const KernelBinary& binary,
                        const std::vector<CpeProgram>& programs,
                        const std::vector<JobSpec>& jobs,
                        std::vector<JobWindow>* windows, bool fast_engine);

}  // namespace detail

}  // namespace swperf::sim
