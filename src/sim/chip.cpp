#include "sim/chip.h"

#include <utility>
#include <variant>

#include "sw/error.h"

namespace swperf::sim {

namespace {

ChipResult run_scenario(const ChipScenario& scenario, bool fast_engine) {
  SWPERF_CHECK(!scenario.jobs.empty(), "chip scenario with no jobs");

  // Merge the jobs' code objects into one binary, re-basing each job's
  // ComputeOp block ids past the blocks already merged.  Programs are
  // copied (the patch must not touch the caller's job), concatenated in
  // job order so each job is a contiguous slice — the layout
  // detail::JobSpec expects.
  KernelBinary merged;
  std::vector<CpeProgram> programs;
  std::vector<detail::JobSpec> specs;
  std::size_t total_blocks = 0;
  std::size_t total_programs = 0;
  for (const auto& job : scenario.jobs) {
    total_blocks += job.binary.blocks.size();
    total_programs += job.programs.size();
  }
  merged.blocks.reserve(total_blocks);
  programs.reserve(total_programs);
  specs.reserve(scenario.jobs.size());

  for (const auto& job : scenario.jobs) {
    SWPERF_CHECK(!job.programs.empty(),
                 "chip job '" << job.name << "' has no programs");
    const auto base = static_cast<std::uint32_t>(merged.blocks.size());
    for (const auto& b : job.binary.blocks) merged.blocks.push_back(b);

    detail::JobSpec spec;
    spec.first_program = static_cast<std::uint32_t>(programs.size());
    spec.program_count = static_cast<std::uint32_t>(job.programs.size());
    spec.core_groups = job.core_groups;
    specs.push_back(spec);

    for (const auto& p : job.programs) {
      CpeProgram copy = p;
      for (auto& op : copy.ops) {
        if (auto* comp = std::get_if<ComputeOp>(&op)) {
          SWPERF_CHECK(comp->block_id < job.binary.blocks.size(),
                       "chip job '" << job.name
                                    << "' references unknown block "
                                    << comp->block_id);
          comp->block_id += base;
        }
      }
      programs.push_back(std::move(copy));
    }
  }

  SimConfig cfg;
  cfg.arch = scenario.arch;
  cfg.core_groups = scenario.core_groups;
  cfg.trace = scenario.trace;

  ChipResult out;
  std::vector<detail::JobWindow> windows;
  out.sim = detail::simulate_jobs(cfg, merged, programs, specs, &windows,
                                  fast_engine);

  out.jobs.reserve(scenario.jobs.size());
  for (std::size_t j = 0; j < scenario.jobs.size(); ++j) {
    ChipJobResult r;
    r.name = scenario.jobs[j].name;
    r.core_groups = specs[j].core_groups;
    r.cpes = specs[j].program_count;
    r.launch_ticks = windows[j].launch;
    r.finish_ticks = windows[j].finish;
    out.jobs.push_back(std::move(r));
  }
  return out;
}

}  // namespace

ChipResult simulate_chip(const ChipScenario& scenario) {
  return run_scenario(scenario, /*fast_engine=*/true);
}

ChipResult simulate_chip_reference(const ChipScenario& scenario) {
  return run_scenario(scenario, /*fast_engine=*/false);
}

}  // namespace swperf::sim
