// Execution traces and timeline rendering.
//
// When enabled (SimConfig::trace), the simulator records every interval a
// CPE spends computing, waiting on DMA, waiting on Gloads, or parked at a
// barrier, plus every memory controller's service busy intervals.  The
// renderer turns the trace into an ASCII Gantt chart — the picture of the
// paper's Figure 4 (virtual groups' staggered requests overlapping other
// groups' computation), regenerated from an actual simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sw/time.h"

namespace swperf::sim {

enum class Activity : std::uint8_t {
  kCompute,     // '#'
  kDmaWait,     // 'D'
  kGloadWait,   // 'G'
  kBarrier,     // 'B'
  kMemService,  // '=' (controller lanes)
};

char activity_glyph(Activity a);

/// One traced interval on one lane.
struct Interval {
  std::uint32_t lane = 0;  // CPE id, or n_cpes + controller index
  Activity what = Activity::kCompute;
  sw::Tick begin = 0;
  sw::Tick end = 0;
};

/// A complete trace of one simulation.
struct Trace {
  std::uint32_t n_cpes = 0;
  std::uint32_t n_controllers = 0;
  std::vector<Interval> intervals;

  bool empty() const { return intervals.empty(); }
  sw::Tick span() const;
};

/// Renders `trace` as an ASCII Gantt chart `width` columns wide covering
/// [0, trace.span()]. One row per CPE lane (capped at `max_cpe_rows`, the
/// rest elided) plus one row per memory controller. When activities share
/// a cell, the busier one wins.
std::string render_timeline(const Trace& trace, std::size_t width = 100,
                            std::uint32_t max_cpe_rows = 16);

}  // namespace swperf::sim
