// Causal execution traces and timeline rendering.
//
// When enabled (SimConfig::trace), the simulator records a typed causal
// event for every span a CPE spends computing, waiting on DMA, waiting on
// Gloads, or parked at a barrier, plus every memory controller service
// slot and every DMA issue point.  Each event carries the program op that
// caused it, the DMA handle and request sequence number it belongs to,
// and a predecessor link — enough to rebuild the execution DAG
// (DMA issue → grant → data-return → compute block → barrier) that
// src/explain/ walks for critical paths.  Both engines emit the exact
// same event stream (pinned by tests/sim/fast_engine_test.cpp), so the
// causal structure is engine-independent ground truth, not a rendering
// artifact.  The renderer still turns the trace into an ASCII Gantt
// chart — the picture of the paper's Figure 4 (virtual groups' staggered
// requests overlapping other groups' computation), regenerated from an
// actual simulation.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sw/time.h"

namespace swperf::sim {

enum class Activity : std::uint8_t {
  kCompute,     // '#'
  kDmaWait,     // 'D'
  kGloadWait,   // 'G'
  kBarrier,     // 'B'
  kMemService,  // '=' (controller lanes)
  kDmaIssue,    // zero-duration issue point on the CPE lane
};

char activity_glyph(Activity a);
const char* activity_name(Activity a);  // "compute", "dma_wait", ...

/// Sentinels for TraceEvent fields that do not apply to an event.
inline constexpr std::uint32_t kNoOp = std::numeric_limits<std::uint32_t>::max();
inline constexpr std::int32_t kNoHandle = std::numeric_limits<std::int32_t>::min();
inline constexpr std::uint64_t kNoReq = std::numeric_limits<std::uint64_t>::max();
inline constexpr std::uint64_t kNoPred = std::numeric_limits<std::uint64_t>::max();

/// One traced causal event on one lane.  An event's id is its index in
/// Trace::events; both engines emit events in the same order, so ids are
/// engine-independent.  `pred` always points backward (pred < id).
struct TraceEvent {
  std::uint32_t lane = 0;  // CPE id, or n_cpes + controller index
  Activity what = Activity::kCompute;
  sw::Tick begin = 0;
  sw::Tick end = 0;  // == begin only for kDmaIssue points

  /// Index of the CpeProgram op that caused this event (kNoOp if none):
  /// the ComputeOp / GloadLoopOp / BarrierOp itself, the DmaOp for issue
  /// and service events, the DmaOp or DmaWaitOp the CPE blocked on.
  std::uint32_t op = kNoOp;
  /// DMA handle: >= 0 async, -1 blocking, kNoHandle for non-DMA events.
  std::int32_t handle = kNoHandle;
  /// Request sequence number (global, monotone in issue order) for DMA
  /// and Gload events; the barrier ordinal for kBarrier events (all
  /// arrivals at one barrier share it); kNoReq otherwise.
  std::uint64_t req = kNoReq;
  /// Causal predecessor event id: the issue / previous service event for
  /// kMemService, the last service event for kDmaWait/kGloadWait, the
  /// Gload-wait event for a Gload's interleaved compute slice.  Same-lane
  /// program order is implicit (events on one lane are emitted in time
  /// order) and not repeated here.
  std::uint64_t pred = kNoPred;

  bool operator==(const TraceEvent&) const = default;
};

/// A complete trace of one simulation.
struct Trace {
  std::uint32_t n_cpes = 0;
  std::uint32_t n_controllers = 0;
  std::vector<TraceEvent> events;

  bool empty() const { return events.empty(); }
  sw::Tick span() const;
  /// Ticks lane `lane` spent doing useful work: compute on CPE lanes,
  /// service slots on controller lanes.  Waits and barriers don't count.
  sw::Tick lane_busy(std::uint32_t lane) const;
};

/// Renders `trace` as an ASCII Gantt chart `width` columns wide covering
/// [0, trace.span()]. One row per CPE lane (capped at `max_cpe_rows`, the
/// rest elided) plus one row per memory controller.  The header reports
/// the total span; every row ends with that lane's utilization (busy% of
/// span, compute for CPEs / service for controllers).  When activities
/// share a cell, the busier one wins; zero-duration issue events are not
/// drawn.
std::string render_timeline(const Trace& trace, std::size_t width = 100,
                            std::uint32_t max_cpe_rows = 16);

}  // namespace swperf::sim
