// Diagnostics vocabulary of the static checker (swcheck).
//
// Every defect the analysis passes can find is reported as a Diagnostic
// carrying a stable code (e.g. "SWD001"), a severity, a human-readable
// message and, where a concrete remedy exists, a fix-it string.  Codes are
// part of the public interface: tests pin them, the CLI filters on them,
// and docs/ANALYSIS.md catalogues them against the paper section each
// check derives from.
//
// Severity semantics:
//   * kError   — the launch is illegal (SPM overflow, malformed kernel,
//                broken DMA dataflow): lowering refuses it and the tuners
//                prune it;
//   * kWarning — legal but statically known to be slow or hazardous
//                (Gload-fallback cliff, sub-transaction DMA waste, leaked
//                async DMA);
//   * kNote    — informational lints (live-in registers, dead values).
// A result is "clean" when it carries nothing above kNote.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace swperf::analysis {

enum class Severity : std::uint8_t { kNote = 0, kWarning = 1, kError = 2 };

const char* severity_name(Severity s);

/// One finding of a checker pass.
struct Diagnostic {
  Severity severity = Severity::kNote;
  std::string code;     // stable identifier, e.g. "SWD001"
  std::string message;  // what is wrong, with the offending values
  std::string fixit;    // concrete remedy ("" when none applies)

  /// "error[SWD001]: message" plus the fix-it when present.
  std::string to_string() const;
};

using Diagnostics = std::vector<Diagnostic>;

/// True if any diagnostic is kError.
bool has_errors(const Diagnostics& diags);

/// True if nothing above kNote was reported — the bar the whole kernel
/// suite must meet (tests/analysis regression).
bool clean(const Diagnostics& diags);

/// Number of diagnostics at `min` severity or above.
std::size_t count_at_least(const Diagnostics& diags, Severity min);

/// The subset at `min` severity or above, preserving order.
Diagnostics filter(const Diagnostics& diags, Severity min);

/// Distinct codes present, in first-appearance order.
std::vector<std::string> codes_of(const Diagnostics& diags);

/// Machine-readable rendering: a JSON array of
/// {"severity","code","message","fixit"} objects.
std::string to_json(const Diagnostics& diags);

/// Throws sw::Error formatted from the *first* error-severity diagnostic
/// (message prefixed with its code) when any is present; otherwise no-op.
/// This is how swacc::lower() and KernelDesc::validate() surface checker
/// findings through the existing exception interface.
void throw_on_errors(const Diagnostics& diags);

}  // namespace swperf::analysis
