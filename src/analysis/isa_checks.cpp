// ISA-level basic-block lints (SWI* codes).
//
// These mirror what the native compiler's annotated assembly makes obvious
// to a human reader (Section III-D): values that are computed and never
// consumed, registers consumed that nothing produces, and SPM stores shadowed
// before anything reads them back.  Read-never-written registers are the
// *normal* idiom for loop invariants in this IR (BlockBuilder::reg() hands
// out live-in registers), so SWI001 is a note, not a warning — it exists
// because a typo'd register id produces exactly the same shape.
#include <set>
#include <sstream>

#include "analysis/checker.h"
#include "isa/instr.h"

namespace swperf::analysis {
namespace {

void lint_block(const isa::BasicBlock& b, Diagnostics& out) {
  std::set<isa::Reg> written;
  std::set<isa::Reg> read;
  for (const auto& i : b.instrs) {
    for (isa::Reg s : i.srcs) {
      if (s != isa::kNoReg) read.insert(s);
    }
    if (i.dst != isa::kNoReg) written.insert(i.dst);
  }

  // SWI001 — read of a never-written register.
  for (isa::Reg r : read) {
    if (written.count(r) != 0) continue;
    std::ostringstream os;
    os << "block '" << b.name << "': register r" << r
       << " is read but never written — a live-in loop invariant, or a "
          "typo'd register id";
    out.push_back(Diagnostic{Severity::kNote, "SWI001", os.str(), ""});
  }

  // SWI003 — dead value: a destination nothing ever reads. Loop-overhead
  // instructions are bookkeeping by construction and excluded; stores have
  // no destination, so they never fire here.
  std::set<isa::Reg> reported_dead;
  for (const auto& i : b.instrs) {
    if (i.loop_overhead || i.dst == isa::kNoReg) continue;
    if (read.count(i.dst) != 0 || reported_dead.count(i.dst) != 0) continue;
    reported_dead.insert(i.dst);
    std::ostringstream os;
    os << "block '" << b.name << "': register r" << i.dst << " ("
       << isa::op_class_name(i.cls)
       << ") is written but never read — dead value";
    out.push_back(Diagnostic{Severity::kNote, "SWI003", os.str(), ""});
  }

  // SWI002 — dead SPM store: a store through an explicit address register
  // that is overwritten by a later store through the same register with no
  // intervening SPM load from it.  Implicit (kNoReg) addresses carry no
  // aliasing information and are skipped.
  std::set<isa::Reg> pending_store_addr;
  for (std::size_t idx = 0; idx < b.instrs.size(); ++idx) {
    const auto& i = b.instrs[idx];
    if (i.cls == isa::OpClass::kSpmLoad) {
      if (i.srcs[0] != isa::kNoReg) pending_store_addr.erase(i.srcs[0]);
    } else if (i.cls == isa::OpClass::kSpmStore) {
      const isa::Reg addr = i.srcs[1];
      if (addr == isa::kNoReg) continue;
      if (pending_store_addr.count(addr) != 0) {
        std::ostringstream os;
        os << "block '" << b.name << "': SPM store through address r"
           << addr << " (instr " << idx
           << ") shadows an earlier store through the same register with "
              "no intervening load — the earlier store is dead";
        out.push_back(Diagnostic{Severity::kWarning, "SWI002", os.str(),
                                 "drop the earlier store, or load the "
                                 "value back before overwriting it"});
      }
      pending_store_addr.insert(addr);
    }
  }
}

class BlockLintChecker final : public Checker {
 public:
  const char* name() const override { return "block-lints"; }

  void run(const CheckContext& ctx, Diagnostics& out) const override {
    // Lowered blocks are derived from the kernel body, so when a binary is
    // present it is the authoritative lint target and the body is skipped
    // (avoids duplicate findings in check_all()).
    if (ctx.binary != nullptr) {
      for (const auto& b : ctx.binary->blocks) lint_block(b, out);
    } else if (ctx.kernel != nullptr) {
      lint_block(ctx.kernel->body, out);
    }
  }
};

}  // namespace

Diagnostics check_block(const isa::BasicBlock& block) {
  Diagnostics out;
  lint_block(block, out);
  return out;
}

namespace detail {

void register_isa_checkers(Registry& r) {
  r.push_back(std::make_unique<BlockLintChecker>());
}

}  // namespace detail
}  // namespace swperf::analysis
