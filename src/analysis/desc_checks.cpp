// Description/launch checks (SWK* structural errors, SWD* launch checks).
//
// Everything here is decidable from KernelDesc + LaunchParams + ArchParams
// alone — no lowering, no simulation — which is what makes the checks
// cheap enough for the tuners to consult on every candidate variant.
#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/checker.h"
#include "isa/vectorize.h"
#include "sw/error.h"
#include "swacc/decompose.h"
#include "swacc/lower.h"

namespace swperf::analysis {
namespace {

using swacc::Access;
using swacc::ArrayRef;
using swacc::Dir;

void emit(Diagnostics& out, Severity sev, const char* code,
          std::string message, std::string fixit = "") {
  out.push_back(
      Diagnostic{sev, code, std::move(message), std::move(fixit)});
}

/// True when the structural (SWK*) checks would reject the description —
/// later passes skip rather than reason about malformed inputs.
bool structurally_sound(const swacc::KernelDesc& k) {
  if (k.name.empty() || k.n_outer < 1 || k.inner_iters < 1 ||
      k.body.instrs.empty()) {
    return false;
  }
  for (const auto& a : k.arrays) {
    if (a.staged() &&
        (a.bytes_per_outer == 0 || a.segments_per_outer == 0 ||
         a.bytes_per_outer % a.segments_per_outer != 0)) {
      return false;
    }
  }
  return true;
}

// ---- SWK001/SWK002/SWK003/SWK004 + SWD003: description structure ----------

class DescStructureChecker final : public Checker {
 public:
  const char* name() const override { return "desc-structure"; }

  void run(const CheckContext& ctx, Diagnostics& out) const override {
    if (ctx.kernel == nullptr) return;
    const auto& k = *ctx.kernel;
    const std::string who = "kernel '" + k.name + "'";

    if (k.name.empty()) {
      emit(out, Severity::kError, "SWK001", "kernel has no name");
    }
    if (k.n_outer < 1) {
      emit(out, Severity::kError, "SWK001", who + ": n_outer must be >= 1");
    }
    if (k.inner_iters < 1) {
      emit(out, Severity::kError, "SWK001",
           who + ": inner_iters must be >= 1");
    }
    if (k.body.instrs.empty()) {
      emit(out, Severity::kError, "SWK001", who + ": empty compute body");
    } else {
      try {
        k.body.validate();
      } catch (const sw::Error& e) {
        emit(out, Severity::kError, "SWK001",
             who + ": invalid body: " + e.what());
      }
    }

    for (const auto& a : k.arrays) {
      check_array(ctx, k, a, out);
    }

    // SWK004 — fraction ranges, written so NaN also fails the check.
    if (!(k.gload_coalesceable >= 0.0 && k.gload_coalesceable <= 1.0)) {
      emit(out, Severity::kError, "SWK004",
           who + ": gload_coalesceable out of [0,1]");
    }
    if (!(k.gload_imbalance >= 0.0 && k.gload_imbalance < 1.0)) {
      emit(out, Severity::kError, "SWK004",
           who + ": gload_imbalance out of [0,1)");
    }
    if (!(k.comp_imbalance >= 0.0 && k.comp_imbalance < 1.0)) {
      emit(out, Severity::kError, "SWK004",
           who + ": comp_imbalance out of [0,1)");
    }
  }

 private:
  static void check_array(const CheckContext& ctx,
                          const swacc::KernelDesc& k, const ArrayRef& a,
                          Diagnostics& out) {
    const std::string who =
        "kernel '" + k.name + "', array '" + a.name + "'";
    if (a.name.empty()) {
      emit(out, Severity::kError, "SWK002",
           "kernel '" + k.name + "': unnamed array");
    }
    switch (a.access) {
      case Access::kContiguous:
      case Access::kStrided:
      case Access::kBlock2D:
        if (a.bytes_per_outer == 0) {
          emit(out, Severity::kError, "SWK002",
               who + ": staged arrays need bytes_per_outer > 0");
        }
        if (a.segments_per_outer < 1 ||
            (a.bytes_per_outer > 0 &&
             a.bytes_per_outer % a.segments_per_outer != 0)) {
          emit(out, Severity::kError, "SWK002",
               who + ": segments_per_outer must divide bytes_per_outer");
        }
        break;
      case Access::kBroadcast:
        if (a.broadcast_bytes == 0) {
          emit(out, Severity::kError, "SWK002",
               who + ": broadcast needs bytes");
        }
        if (a.dir != Dir::kIn) {
          emit(out, Severity::kError, "SWK002",
               who + ": broadcast arrays are read-only per launch");
        }
        break;
      case Access::kIndirect:
        if (!(a.gloads_per_inner > 0.0)) {
          emit(out, Severity::kError, "SWK002",
               who + ": indirect arrays need gloads_per_inner > 0");
        }
        if (a.gload_bytes == 0) {
          emit(out, Severity::kError, "SWK003",
               who + ": gload_bytes must be >= 1");
        } else if (a.gload_bytes > ctx.arch.gload_max_bytes) {
          std::ostringstream os;
          os << who << ": gload_bytes=" << a.gload_bytes
             << " exceeds the " << ctx.arch.gload_max_bytes
             << "-byte Gload request limit";
          emit(out, Severity::kError, "SWD003", os.str(),
               "split the access or set gload_bytes <= " +
                   std::to_string(ctx.arch.gload_max_bytes));
        }
        break;
    }
  }
};

// ---- SWD007/SWD002: launch parameter sanity -------------------------------

class LaunchParamChecker final : public Checker {
 public:
  const char* name() const override { return "launch-params"; }

  void run(const CheckContext& ctx, Diagnostics& out) const override {
    if (ctx.kernel == nullptr || ctx.params == nullptr) return;
    const auto& p = *ctx.params;
    if (p.tile < 1) {
      emit(out, Severity::kError, "SWD007", "tile must be >= 1");
    }
    if (p.unroll < 1 || p.unroll > 64) {
      emit(out, Severity::kError, "SWD007",
           "unroll must be in 1..64, got " + std::to_string(p.unroll));
    }
    if (p.vector_width != 1 && p.vector_width != 2 &&
        p.vector_width != isa::kMaxVectorLanes) {
      emit(out, Severity::kError, "SWD007",
           "vector_width must be 1, 2 or " +
               std::to_string(isa::kMaxVectorLanes) + ", got " +
               std::to_string(p.vector_width));
    }
    const std::uint32_t max_cpes =
        ctx.arch.cpes_per_cg * ctx.arch.core_groups;
    if (p.requested_cpes < 1 || p.requested_cpes > max_cpes) {
      emit(out, Severity::kError, "SWD007",
           "requested_cpes=" + std::to_string(p.requested_cpes) +
               " outside 1.." + std::to_string(max_cpes));
    }
    if (p.vector_width > 1 && !ctx.kernel->vectorizable) {
      emit(out, Severity::kError, "SWD002",
           "kernel '" + ctx.kernel->name +
               "' is not vectorizable but vector_width=" +
               std::to_string(p.vector_width),
           "set vector_width=1, or mark the body vectorizable if its SPM "
           "accesses are stride-1 and lane-independent");
    }
  }
};

// ---- SWD001: SPM capacity including the double-buffer footprint -----------

class SpmCapacityChecker final : public Checker {
 public:
  const char* name() const override { return "spm-capacity"; }

  void run(const CheckContext& ctx, Diagnostics& out) const override {
    if (ctx.kernel == nullptr || ctx.params == nullptr) return;
    const auto& k = *ctx.kernel;
    const auto& p = *ctx.params;
    // spm_bytes_required() re-validates the description (and throws), so
    // this pass must skip whenever *any* structural check failed — not
    // just the cheap subset structurally_sound() covers.
    if (p.tile < 1 || has_errors(check_kernel_desc(k))) return;

    const std::uint64_t need = swacc::spm_bytes_required(k, p);
    if (need <= ctx.arch.spm_bytes) return;

    const std::uint64_t spb = k.spm_bytes_per_outer();
    const std::uint64_t bc = k.broadcast_bytes_total();
    const std::uint64_t nbuf = p.double_buffer ? 2 : 1;
    const std::uint64_t eff_tile = std::min(p.tile, k.n_outer);

    std::ostringstream os;
    os << "kernel '" << k.name << "': SPM overflow: needs " << need
       << " B of " << ctx.arch.spm_bytes << " B (" << nbuf
       << " buffer(s) x tile " << eff_tile << " x " << spb
       << " B/outer + " << bc << " B broadcast)";

    std::string fixit;
    if (spb > 0 && bc + nbuf * spb <= ctx.arch.spm_bytes) {
      const std::uint64_t max_tile =
          (ctx.arch.spm_bytes - bc) / (nbuf * spb);
      fixit = "reduce tile to <= " + std::to_string(max_tile);
      if (p.double_buffer && bc + eff_tile * spb <= ctx.arch.spm_bytes) {
        fixit += ", or disable double buffering (single-buffered footprint "
                 "fits)";
      }
    } else {
      fixit = "shrink the staged or broadcast working set; it cannot fit "
              "at any tile";
    }
    emit(out, Severity::kError, "SWD001", os.str(), fixit);
  }
};

// ---- SWD004: the Gload-fallback cliff (Fig. 7a) ---------------------------

class GloadFallbackChecker final : public Checker {
 public:
  const char* name() const override { return "gload-fallback"; }

  void run(const CheckContext& ctx, Diagnostics& out) const override {
    if (ctx.kernel == nullptr || ctx.params == nullptr) return;
    const auto& k = *ctx.kernel;
    const auto& p = *ctx.params;
    if (p.tile < 1 || p.tile >= k.dma_min_tile) return;
    bool staged_in = false;
    for (const auto& a : k.arrays) {
      staged_in |= a.staged() && a.copies_in();
    }
    if (!staged_in) return;
    std::ostringstream os;
    os << "kernel '" << k.name << "': tile " << p.tile
       << " is below dma_min_tile " << k.dma_min_tile
       << ": the compiler stops staging input arrays and every element "
          "becomes a Gload (the Fig. 7a cliff)";
    emit(out, Severity::kWarning, "SWD004", os.str(),
         "raise tile to >= " + std::to_string(k.dma_min_tile));
  }
};

// ---- SWD005: sub-transaction DMA segments (Fig. 9 waste) ------------------
//
// Severity is graded: a finding is a *warning* only when the launch can do
// something about it (a larger tile reaches whole transactions) and the
// array carries a non-negligible share of the staged traffic.  Waste that
// is inherent to the declared layout (strided rows — tile-independent) or
// confined to a trickle array is still reported, but as a note: the model
// already prices it, and no launch parameter removes it.

class DmaGranularityChecker final : public Checker {
 public:
  const char* name() const override { return "dma-granularity"; }

  /// An array below this share of the staged bytes cannot waste enough
  /// bandwidth to matter; its sub-transaction segments are a note.
  static constexpr double kSignificantShare = 1.0 / 16.0;

  void run(const CheckContext& ctx, Diagnostics& out) const override {
    if (ctx.kernel == nullptr || ctx.params == nullptr) return;
    const auto& k = *ctx.kernel;
    const auto& p = *ctx.params;
    if (!structurally_sound(k) || p.tile < 1) return;
    if (p.tile < k.dma_min_tile) return;  // SWD004 territory: no DMA at all

    const std::uint64_t g = std::min(p.tile, k.n_outer);
    const std::uint64_t trans = ctx.arch.trans_size_bytes;
    const std::uint64_t staged_total = k.spm_bytes_per_outer();
    for (const auto& a : k.arrays) {
      if (!a.staged()) continue;
      std::uint64_t seg = 0;       // bytes per contiguous DMA segment
      std::uint64_t fix_tile = 0;  // smallest tile with whole transactions
      const std::uint64_t row = a.bytes_per_outer / a.segments_per_outer;
      switch (a.access) {
        case Access::kContiguous:
          seg = g * a.bytes_per_outer;
          fix_tile = (trans + a.bytes_per_outer - 1) / a.bytes_per_outer;
          break;
        case Access::kBlock2D:
          seg = g * row;
          fix_tile = (trans + row - 1) / row;
          break;
        case Access::kStrided:
          seg = row;  // independent of tile
          break;
        default:
          continue;
      }
      if (seg == 0 || seg >= trans) continue;
      const double waste =
          1.0 - static_cast<double>(seg) / static_cast<double>(trans);
      std::ostringstream os;
      os << "kernel '" << k.name << "', array '" << a.name << "': "
         << seg << "-byte DMA segments each round up to a " << trans
         << "-byte transaction, wasting " << static_cast<int>(100.0 * waste)
         << "% of the bandwidth they occupy";
      std::string fixit;
      bool launch_fixable = false;
      if (a.access == Access::kStrided) {
        fixit = "row length is tile-independent; merge rows into a "
                "contiguous or 2D-block layout to reach whole transactions";
      } else if (fix_tile > k.n_outer) {
        fixit = "array is too small to fill a transaction at any tile";
      } else {
        launch_fixable = true;
        fixit = "raise tile to >= " + std::to_string(fix_tile) +
                " so each segment covers a whole transaction";
      }
      const double share =
          staged_total > 0
              ? static_cast<double>(a.bytes_per_outer) /
                    static_cast<double>(staged_total)
              : 0.0;
      const Severity sev = launch_fixable && share >= kSignificantShare
                               ? Severity::kWarning
                               : Severity::kNote;
      emit(out, sev, "SWD005", os.str(), std::move(fixit));
    }
  }
};

// ---- SWD006: idle CPEs (tile too coarse) ----------------------------------

class IdleCpeChecker final : public Checker {
 public:
  const char* name() const override { return "idle-cpes"; }

  void run(const CheckContext& ctx, Diagnostics& out) const override {
    if (ctx.kernel == nullptr || ctx.params == nullptr) return;
    const auto& k = *ctx.kernel;
    const auto& p = *ctx.params;
    if (!structurally_sound(k) || p.tile < 1 || p.requested_cpes < 1) {
      return;
    }
    const auto d = swacc::decompose(k.n_outer, p.tile, p.requested_cpes);
    if (d.active_cpes >= p.requested_cpes) return;
    std::ostringstream os;
    os << "kernel '" << k.name << "': tile " << p.tile << " splits "
       << k.n_outer << " outer elements into only " << d.n_chunks
       << " chunk(s), leaving " << (p.requested_cpes - d.active_cpes)
       << " of " << p.requested_cpes << " requested CPEs idle";
    // The fix-it is *validated*: swd006_suggestion() re-checks each
    // candidate launch and only suggests ones that clear SWD006 without
    // introducing new findings (tests/analysis pins this).
    const Swd006Suggestion sug = swd006_suggestion(k, p, ctx.arch);
    emit(out, Severity::kWarning, "SWD006", os.str(),
         sug.valid ? sug.fixit
                   : "request only " + std::to_string(d.active_cpes) +
                         " CPEs");
  }
};

}  // namespace

Swd006Suggestion swd006_suggestion(const swacc::KernelDesc& kernel,
                                   const swacc::LaunchParams& params,
                                   const sw::ArchParams& arch) {
  // Validating a candidate runs check_launch(), whose IdleCpeChecker may
  // ask for a suggestion again.  The guard makes the nested call answer
  // "no suggestion" (the checker then uses its fallback fix-it), so
  // validation terminates after one level.
  static thread_local bool validating = false;
  Swd006Suggestion none;
  if (validating) return none;
  if (!structurally_sound(kernel) || params.tile < 1 ||
      params.requested_cpes < 1) {
    return none;
  }
  const auto d =
      swacc::decompose(kernel.n_outer, params.tile, params.requested_cpes);
  if (d.active_cpes >= params.requested_cpes) return none;

  validating = true;
  struct Reset {
    bool& flag;
    ~Reset() { flag = false; }
  } reset{validating};

  // A candidate is acceptable when it carries no SWD006 and every
  // (code, severity) it reports was already present in the original
  // launch's report — fixing idle CPEs must not surface new problems.
  using Sig = std::multiset<std::pair<std::string, int>>;
  auto signature = [&](const swacc::LaunchParams& p, bool* has_swd006) {
    Sig sig;
    *has_swd006 = false;
    for (const auto& di : check_launch(kernel, p, arch)) {
      if (di.code == "SWD006") {
        *has_swd006 = true;
        continue;
      }
      sig.insert({di.code, static_cast<int>(di.severity)});
    }
    return sig;
  };
  bool base_swd006 = false;
  const Sig base = signature(params, &base_swd006);
  auto validate = [&](const swacc::LaunchParams& cand) {
    bool cand_swd006 = false;
    const Sig sig = signature(cand, &cand_swd006);
    return !cand_swd006 &&
           std::includes(base.begin(), base.end(), sig.begin(), sig.end());
  };

  // Candidate 1 (preferred — keeps every requested CPE busy): the largest
  // tile whose chunks still reach all requested CPEs.
  const std::uint64_t fit_tile =
      std::max<std::uint64_t>(1, kernel.n_outer / params.requested_cpes);
  if (fit_tile < params.tile) {
    swacc::LaunchParams cand = params;
    cand.tile = fit_tile;
    if (validate(cand)) {
      Swd006Suggestion s;
      s.valid = true;
      s.params = cand;
      s.fixit = "reduce tile to <= " + std::to_string(fit_tile) +
                ", or request only " + std::to_string(d.active_cpes) +
                " CPEs";
      return s;
    }
  }

  // Candidate 2: accept the decomposition and request only the CPEs it
  // activates.  Cannot introduce findings that depend on tile or shape,
  // but is still validated like any other candidate.
  {
    swacc::LaunchParams cand = params;
    cand.requested_cpes = d.active_cpes;
    if (validate(cand)) {
      Swd006Suggestion s;
      s.valid = true;
      s.params = cand;
      s.fixit =
          "request only " + std::to_string(d.active_cpes) + " CPEs";
      return s;
    }
  }
  return none;
}

namespace detail {

void register_desc_checkers(Registry& r) {
  r.push_back(std::make_unique<DescStructureChecker>());
  r.push_back(std::make_unique<LaunchParamChecker>());
  r.push_back(std::make_unique<SpmCapacityChecker>());
  r.push_back(std::make_unique<GloadFallbackChecker>());
  r.push_back(std::make_unique<DmaGranularityChecker>());
  r.push_back(std::make_unique<IdleCpeChecker>());
}

}  // namespace detail
}  // namespace swperf::analysis
