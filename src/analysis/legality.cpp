#include "analysis/legality.h"

#include <algorithm>

#include "analysis/checker.h"
#include "analysis/dataflow/interval.h"
#include "analysis/dataflow/liveness.h"
#include "analysis/dataflow/regions.h"
#include "swacc/lower.h"

namespace swperf::analysis {

namespace {

using dataflow::Interval;

/// Mirror of mem::SpmAllocator's bump alignment (align = 32), lifted to
/// the interval domain. align_up is monotone, so mapping both bounds is
/// exact for the bounds (and the inputs here are point intervals anyway).
Interval align32(const Interval& v) {
  auto up = [](std::int64_t x) -> std::int64_t {
    if (x <= 0) return 0;
    if (x >= Interval::kInf - 31) return Interval::kInf;
    return (x + 31) & ~std::int64_t{31};
  };
  if (v.is_empty()) return v;
  return {up(v.lo), up(v.hi)};
}

/// The SPM footprint in allocation order — broadcasts first, then staged
/// buffers in declaration order with the double-buffer copies innermost —
/// exactly as swacc's layout_spm() performs it, but over intervals.
Interval spm_footprint(const swacc::KernelDesc& kernel,
                       const swacc::LaunchParams& params) {
  Interval top = Interval::point(0);
  for (const auto& a : kernel.arrays) {
    if (a.access != swacc::Access::kBroadcast) continue;
    top = align32(top).add(
        Interval::point(static_cast<std::int64_t>(a.broadcast_bytes)));
  }
  const Interval eff_tile =
      Interval::point(static_cast<std::int64_t>(params.tile))
          .min_with(Interval::point(static_cast<std::int64_t>(kernel.n_outer)));
  const int nbuf = params.double_buffer ? 2 : 1;
  for (const auto& a : kernel.arrays) {
    if (!a.staged()) continue;
    for (int b = 0; b < nbuf; ++b) {
      top = align32(top).add(eff_tile.mul(
          Interval::point(static_cast<std::int64_t>(a.bytes_per_outer))));
    }
  }
  return top;
}

}  // namespace

const char* fact_name(Legality::Fact f) {
  switch (f) {
    case Legality::Fact::kHolds:
      return "holds";
    case Legality::Fact::kFails:
      return "fails";
    case Legality::Fact::kUnknown:
      break;
  }
  return "unknown";
}

Legality launch_legality(const swacc::KernelDesc& kernel,
                         const swacc::LaunchParams& params,
                         const sw::ArchParams& arch) {
  Legality l;
  const Diagnostics diags = check_launch(kernel, params, arch);
  l.launch_legal = !has_errors(diags);
  for (const auto& d : diags) {
    if (d.severity != Severity::kError) continue;
    if (std::find(l.error_codes.begin(), l.error_codes.end(), d.code) ==
        l.error_codes.end()) {
      l.error_codes.push_back(d.code);
    }
  }

  // The finer facts need a well-formed description and in-range launch
  // parameters; SWK*/SWD007 errors mean the quantities below are not even
  // defined, so they stay kUnknown.
  const bool structurally_usable =
      std::none_of(l.error_codes.begin(), l.error_codes.end(),
                   [](const std::string& c) {
                     return c.compare(0, 3, "SWK") == 0 || c == "SWD007";
                   });
  if (!structurally_usable) return l;

  const Interval footprint = spm_footprint(kernel, params);
  l.spm_fits = footprint.hi <= static_cast<std::int64_t>(arch.spm_bytes)
                   ? Legality::Fact::kHolds
                   : Legality::Fact::kFails;

  if (!kernel.body.instrs.empty()) {
    const auto bd = dataflow::analyze_block(kernel.body, /*repeated=*/true);
    l.loop_carried_independent = bd.carried.empty() ? Legality::Fact::kHolds
                                                    : Legality::Fact::kFails;
  }
  return l;
}

void refine_with_program(Legality& l, const sim::KernelBinary& binary,
                         const std::vector<sim::CpeProgram>& programs,
                         const sw::ArchParams& arch) {
  (void)binary;
  (void)arch;
  if (programs.empty()) return;

  bool protocol_ok = true;
  bool any_notes = false;
  bool overlap = false;
  bool leak = false;
  for (const auto& prog : programs) {
    const auto facts = dataflow::analyze_regions(prog);
    protocol_ok &= facts.protocol_ok;
    any_notes |= facts.has_notes;
    for (const auto& f : facts.findings) {
      using K = dataflow::RegionFinding::Kind;
      overlap |= f.kind == K::kComputeDmaOverlap || f.kind == K::kDmaDmaOverlap;
      leak |= f.kind == K::kHandleLeak;
    }
  }
  if (!protocol_ok) {
    l.dma_protocol_clean = Legality::Fact::kFails;
    // Region windows are undefined under a broken protocol.
    l.regions_disjoint = Legality::Fact::kUnknown;
  } else {
    l.dma_protocol_clean =
        leak ? Legality::Fact::kFails : Legality::Fact::kHolds;
    if (any_notes) {
      l.regions_disjoint =
          overlap ? Legality::Fact::kFails : Legality::Fact::kHolds;
    }
  }

  std::size_t first_count = 0;
  bool aligned = true;
  for (std::size_t cpe = 0; cpe < programs.size(); ++cpe) {
    std::size_t n = 0;
    for (const auto& op : programs[cpe].ops) {
      n += std::holds_alternative<sim::BarrierOp>(op) ? 1 : 0;
    }
    if (cpe == 0) {
      first_count = n;
    } else {
      aligned &= n == first_count;
    }
  }
  l.barriers_aligned =
      aligned ? Legality::Fact::kHolds : Legality::Fact::kFails;
}

Legality program_legality(const swacc::KernelDesc& kernel,
                          const swacc::LaunchParams& params,
                          const sw::ArchParams& arch) {
  Legality l = launch_legality(kernel, params, arch);
  if (!l.launch_legal) return l;
  const auto lowered = swacc::lower(kernel, params, arch);
  refine_with_program(l, lowered.binary, lowered.programs, arch);
  return l;
}

}  // namespace swperf::analysis
