// Dataflow-analysis checks over lowered per-CPE programs (SWA* codes).
//
// Where the SWP* passes interpret each op stream with one bit of state per
// DMA handle, the SWA* family runs the full region/flow machinery of
// analysis/dataflow/: SPM byte ranges from the lowering's side-band notes,
// MUST-defined and MAY-read-later sets from the worklist solver, and the
// exact in-flight window of every async transfer.  That is what turns the
// paper's double-buffer discipline (Fig. 5) into checkable facts: phases
// must touch disjoint buffers, every read must be staged first, and no
// handle may stay in flight across more than two compute phases.
#include <algorithm>
#include <set>
#include <sstream>
#include <variant>

#include "analysis/checker.h"
#include "analysis/dataflow/regions.h"

namespace swperf::analysis {
namespace {

using dataflow::RegionFinding;

void emit(Diagnostics& out, Severity sev, const char* code,
          std::string message, std::string fixit = "") {
  out.push_back(
      Diagnostic{sev, code, std::move(message), std::move(fixit)});
}

std::string at(std::size_t cpe, std::size_t op) {
  std::ostringstream os;
  os << "CPE " << cpe << ", op " << op;
  return os.str();
}

std::string range_str(const sim::SpmRange& r) {
  std::ostringstream os;
  os << "[" << r.lo << ", " << r.hi << ")";
  return os.str();
}

// ---- SWA001/SWA003/SWA004/SWA005/SWA008: region analysis findings ----------

class SpmRegionChecker final : public Checker {
 public:
  const char* name() const override { return "spm-regions"; }

  void run(const CheckContext& ctx, Diagnostics& out) const override {
    if (ctx.programs == nullptr) return;
    for (std::size_t cpe = 0; cpe < ctx.programs->size(); ++cpe) {
      const auto facts = dataflow::analyze_regions((*ctx.programs)[cpe]);
      // A broken handle protocol is SWP001/002/006 territory; region
      // windows are undefined there and analyze_regions reports nothing.
      for (const auto& f : facts.findings) report(cpe, f, out);
    }
  }

 private:
  static void report(std::size_t cpe, const RegionFinding& f,
                     Diagnostics& out) {
    std::ostringstream os;
    switch (f.kind) {
      case RegionFinding::Kind::kComputeDmaOverlap:
        os << at(cpe, f.op) << ": compute touches SPM bytes "
           << range_str(f.range)
           << " that the async DMA on handle " << f.handle
           << " is still landing into — the double-buffer phases overlap";
        emit(out, Severity::kError, "SWA001", os.str(),
             "dma_wait(" + std::to_string(f.handle) +
                 ") before computing on this buffer, or stage the chunk "
                 "into the other parity buffer");
        break;
      case RegionFinding::Kind::kDeadStore:
        os << at(cpe, f.op) << ": SPM bytes " << range_str(f.range)
           << " are written but never read again";
        if (f.handle >= 0) {
          os << " (async get on handle " << f.handle
             << " landing at this wait)";
        }
        emit(out, Severity::kWarning, "SWA003", os.str(),
             "drop the store/transfer, or add the compute or copy-out that "
             "should consume the staged data");
        break;
      case RegionFinding::Kind::kDmaDmaOverlap:
        os << at(cpe, f.op) << ": DMA overlaps SPM bytes "
           << range_str(f.range) << " of the transfer still in flight on "
           << "handle " << f.other_handle
           << " with at least one side writing";
        emit(out, Severity::kError, "SWA004", os.str(),
             "dma_wait(" + std::to_string(f.other_handle) +
                 ") first, or give the transfers disjoint SPM buffers");
        break;
      case RegionFinding::Kind::kUndefinedRead:
        os << at(cpe, f.op) << ": reads SPM bytes " << range_str(f.range)
           << " that no DMA get or compute write is known to have defined";
        emit(out, Severity::kWarning, "SWA005", os.str(),
             "stage the data with a DMA get (or a compute write) before "
             "this op");
        break;
      case RegionFinding::Kind::kHandleLeak:
        os << at(cpe, f.op) << ": async DMA on handle " << f.handle
           << " stays in flight across " << f.phases
           << " compute phases (the Fig. 5 rotation drains a handle within "
           << dataflow::kMaxFlightPhases << ")";
        emit(out, Severity::kWarning, "SWA008", os.str(),
             "move the dma_wait(" + std::to_string(f.handle) +
                 ") earlier in the pipeline rotation");
        break;
    }
  }
};

// ---- SWA002: annotated ranges vs the physical scratchpad --------------------

class SpmBoundsChecker final : public Checker {
 public:
  const char* name() const override { return "spm-bounds"; }

  void run(const CheckContext& ctx, Diagnostics& out) const override {
    if (ctx.programs == nullptr) return;
    for (std::size_t cpe = 0; cpe < ctx.programs->size(); ++cpe) {
      for (const auto& note : (*ctx.programs)[cpe].spm_notes) {
        if (note.range.hi <= ctx.arch.spm_bytes) continue;
        std::ostringstream os;
        os << at(cpe, note.op) << ": SPM access " << range_str(note.range)
           << " runs past the " << ctx.arch.spm_bytes
           << "-byte scratchpad";
        emit(out, Severity::kError, "SWA002", os.str(),
             "shrink the staged buffers (smaller tile) so every access "
             "stays inside SPM");
      }
    }
  }
};

// ---- SWA006: basic blocks no ComputeOp ever runs ---------------------------

class UnreferencedBlockChecker final : public Checker {
 public:
  const char* name() const override { return "block-reach"; }

  void run(const CheckContext& ctx, Diagnostics& out) const override {
    if (ctx.programs == nullptr || ctx.binary == nullptr) return;
    std::vector<bool> referenced(ctx.binary->blocks.size(), false);
    for (const auto& prog : *ctx.programs) {
      for (const auto& op : prog.ops) {
        if (const auto* c = std::get_if<sim::ComputeOp>(&op)) {
          if (c->block_id < referenced.size()) referenced[c->block_id] = true;
        }
      }
    }
    for (std::size_t b = 0; b < referenced.size(); ++b) {
      if (referenced[b]) continue;
      std::ostringstream os;
      os << "block " << b << " ('" << ctx.binary->blocks[b].name
         << "') is never referenced by any ComputeOp of this launch";
      emit(out, Severity::kNote, "SWA006", os.str());
    }
  }
};

// ---- SWA007: barriers nobody does any work between -------------------------

class RedundantBarrierChecker final : public Checker {
 public:
  const char* name() const override { return "barrier-redundant"; }

  void run(const CheckContext& ctx, Diagnostics& out) const override {
    if (ctx.programs == nullptr || ctx.programs->empty()) return;
    // Barrier op positions per CPE. Mismatched counts are an SWP004 error;
    // redundancy is only well defined when the counts line up.
    std::vector<std::vector<std::size_t>> pos(ctx.programs->size());
    for (std::size_t cpe = 0; cpe < ctx.programs->size(); ++cpe) {
      const auto& ops = (*ctx.programs)[cpe].ops;
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (std::holds_alternative<sim::BarrierOp>(ops[i])) {
          pos[cpe].push_back(i);
        }
      }
      if (pos[cpe].size() != pos[0].size()) return;
    }
    if (pos[0].size() < 2) return;
    for (std::size_t k = 0; k + 1 < pos[0].size(); ++k) {
      bool all_idle = true;
      for (const auto& p : pos) {
        if (p[k + 1] != p[k] + 1) {
          all_idle = false;
          break;
        }
      }
      if (!all_idle) continue;
      std::ostringstream os;
      os << "barrier " << (k + 1) << " is redundant: no CPE does any work "
         << "between barriers " << k << " and " << (k + 1);
      emit(out, Severity::kWarning, "SWA007", os.str(),
           "drop one of the back-to-back barriers");
    }
  }
};

}  // namespace

namespace detail {

void register_swa_checkers(Registry& r) {
  r.push_back(std::make_unique<SpmRegionChecker>());
  r.push_back(std::make_unique<SpmBoundsChecker>());
  r.push_back(std::make_unique<UnreferencedBlockChecker>());
  r.push_back(std::make_unique<RedundantBarrierChecker>());
}

}  // namespace detail
}  // namespace swperf::analysis
