#include "analysis/checker.h"

#include <algorithm>

#include "swacc/lower.h"

namespace swperf::analysis {

const std::vector<std::unique_ptr<Checker>>& all_checkers() {
  static const detail::Registry registry = [] {
    detail::Registry r;
    detail::register_desc_checkers(r);
    detail::register_dataflow_checkers(r);
    detail::register_isa_checkers(r);
    detail::register_swa_checkers(r);
    return r;
  }();
  return registry;
}

Diagnostics run_checks(const CheckContext& ctx) {
  Diagnostics out;
  for (const auto& c : all_checkers()) c->run(ctx, out);
  return out;
}

Diagnostics check_kernel_desc(const swacc::KernelDesc& kernel) {
  CheckContext ctx;
  ctx.kernel = &kernel;
  return run_checks(ctx);
}

Diagnostics check_launch(const swacc::KernelDesc& kernel,
                         const swacc::LaunchParams& params,
                         const sw::ArchParams& arch) {
  CheckContext ctx;
  ctx.kernel = &kernel;
  ctx.params = &params;
  ctx.arch = arch;
  return run_checks(ctx);
}

Diagnostics check_program(const sim::KernelBinary& binary,
                          const std::vector<sim::CpeProgram>& programs,
                          const sw::ArchParams& arch) {
  CheckContext ctx;
  ctx.binary = &binary;
  ctx.programs = &programs;
  ctx.arch = arch;
  return run_checks(ctx);
}

Diagnostics check_all(const swacc::KernelDesc& kernel,
                      const swacc::LaunchParams& params,
                      const sw::ArchParams& arch) {
  Diagnostics diags = check_launch(kernel, params, arch);
  if (has_errors(diags)) return diags;
  const auto lowered = swacc::lower(kernel, params, arch);
  const auto prog_diags =
      check_program(lowered.binary, lowered.programs, arch);
  diags.insert(diags.end(), prog_diags.begin(), prog_diags.end());
  return diags;
}

const std::vector<CodeInfo>& diagnostic_catalog() {
  static const std::vector<CodeInfo> catalog = {
      {"SWA001", Severity::kError, "dataflow",
       "compute touches SPM bytes an in-flight async DMA get is still "
       "landing into (double-buffer phases overlap)",
       "Sec. IV-2, Fig. 5"},
      {"SWA002", Severity::kError, "dataflow",
       "annotated SPM access runs past the physical scratchpad",
       "Sec. II-A"},
      {"SWA003", Severity::kWarning, "dataflow",
       "dead SPM store: staged or computed bytes are never read again",
       "Sec. III-D"},
      {"SWA004", Severity::kError, "dataflow",
       "two concurrently in-flight DMA transfers overlap in SPM with at "
       "least one writing",
       "Sec. IV-2, Fig. 5"},
      {"SWA005", Severity::kWarning, "dataflow",
       "read of SPM bytes no DMA get or compute write is known to define",
       "Sec. II-A"},
      {"SWA006", Severity::kNote, "dataflow",
       "basic block of the kernel binary never referenced by any ComputeOp",
       "Sec. III-D"},
      {"SWA007", Severity::kWarning, "dataflow",
       "redundant barrier: no CPE does any work between two consecutive "
       "barriers",
       "Sec. II-B"},
      {"SWA008", Severity::kWarning, "dataflow",
       "async DMA held in flight across more than two compute phases "
       "(handle leaks through the pipeline rotation)",
       "Sec. IV-2, Fig. 5"},
      {"SWD001", Severity::kError, "launch",
       "SPM capacity overflow (staged buffers x double-buffer factor plus "
       "broadcast arrays exceed 64 KiB)",
       "Sec. II-A, IV-2"},
      {"SWD002", Severity::kError, "launch",
       "vector_width > 1 requested on a body not marked vectorizable",
       "Sec. V-D"},
      {"SWD003", Severity::kError, "launch",
       "Gload request wider than the architecture's gload_max_bytes",
       "Sec. II-A"},
      {"SWD004", Severity::kWarning, "launch",
       "copy granularity below dma_min_tile: compiler falls back to "
       "per-element Gloads",
       "Fig. 7(a)"},
      {"SWD005", Severity::kWarning, "launch",
       "DMA segment smaller than one DRAM transaction: bandwidth wasted on "
       "padding",
       "Sec. IV-3, Fig. 9"},
      {"SWD006", Severity::kWarning, "launch",
       "decomposition activates fewer CPEs than requested (tile too coarse "
       "for n_outer)",
       "Sec. II-B"},
      {"SWD007", Severity::kError, "launch",
       "launch parameter out of range (tile, unroll, vector_width or "
       "requested_cpes)",
       "Sec. V-D"},
      {"SWI001", Severity::kNote, "isa",
       "register read but never written in the block (live-in; a typo'd "
       "register id looks the same)",
       "Sec. III-D"},
      {"SWI002", Severity::kWarning, "isa",
       "dead SPM store: overwritten through the same address register with "
       "no intervening load",
       "Sec. III-D"},
      {"SWI003", Severity::kNote, "isa",
       "dead value: destination register never read and not loop-carried",
       "Sec. III-D"},
      {"SWK001", Severity::kError, "structure",
       "malformed kernel description (name, extents, empty or invalid body)",
       "Sec. II-B"},
      {"SWK002", Severity::kError, "structure",
       "malformed array reference (bytes/segments/broadcast/indirect shape)",
       "Sec. II-B"},
      {"SWK003", Severity::kError, "structure",
       "gload_bytes of an indirect array is zero", "Sec. II-A"},
      {"SWK004", Severity::kError, "structure",
       "imbalance or coalesceable fraction outside its valid range",
       "Sec. III-F"},
      {"SWP001", Severity::kError, "program",
       "dma_wait on a handle with no DMA in flight (wait without issue)",
       "Sec. IV-2"},
      {"SWP002", Severity::kError, "program",
       "async DMA issued on a handle still in flight (no intervening wait)",
       "Sec. IV-2"},
      {"SWP003", Severity::kWarning, "program",
       "async DMA still in flight at program end (missing final dma_wait)",
       "Sec. IV-2, Fig. 5"},
      {"SWP004", Severity::kError, "program",
       "barrier count differs across CPEs (athread deadlock)",
       "Sec. II-B"},
      {"SWP005", Severity::kError, "program",
       "ComputeOp references a basic block outside the kernel binary",
       "Sec. III-D"},
      {"SWP006", Severity::kError, "program",
       "DMA handle outside [0, kMaxDmaHandles)", "Sec. IV-2"},
  };
  return catalog;
}

}  // namespace swperf::analysis
