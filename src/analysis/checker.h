// swcheck — the static diagnostics engine.
//
// The paper's premise (Sections III–IV) is that SW26010 performance
// pathologies are *statically decidable* from the kernel description:
// SPM overflow (with the 2× double-buffer footprint), the Gload-fallback
// cliff of Fig. 7(a), sub-transaction DMA waste (Fig. 9), idle CPEs.
// This module decides them before any simulation or tuning run, in two
// families of passes:
//
//   1. description/launch checks over swacc::KernelDesc + LaunchParams
//      (desc_checks.cpp) — SWK*/SWD* codes;
//   2. dataflow checks over lowered sim::CpeProgram / sim::KernelBinary
//      (dataflow_checks.cpp, isa_checks.cpp) — SWP*/SWI* codes: per-CPE
//      abstract interpretation of DMA handle state, cross-CPE barrier
//      parity, block references, and basic-block lints.
//
// Wiring: swacc::lower() refuses launches with error-severity findings,
// tuning::prune_variants() drops them before spending bounds on them, and
// the `swperf check` CLI subcommand prints the full report.
#pragma once

#include <memory>
#include <vector>

#include "analysis/diagnostic.h"
#include "isa/block.h"
#include "sim/program.h"
#include "sw/arch.h"
#include "swacc/kernel.h"

namespace swperf::analysis {

/// Everything a checker pass may look at. Checkers skip silently when the
/// inputs they need are absent, so one context type serves both families.
struct CheckContext {
  const swacc::KernelDesc* kernel = nullptr;
  const swacc::LaunchParams* params = nullptr;
  const sim::KernelBinary* binary = nullptr;
  const std::vector<sim::CpeProgram>* programs = nullptr;
  sw::ArchParams arch = sw::ArchParams::sw26010();
};

/// One analysis pass.
class Checker {
 public:
  virtual ~Checker() = default;
  virtual const char* name() const = 0;
  virtual void run(const CheckContext& ctx, Diagnostics& out) const = 0;
};

/// The full pass registry, in execution order (description checks first).
const std::vector<std::unique_ptr<Checker>>& all_checkers();

/// Runs every registered checker against `ctx`.
Diagnostics run_checks(const CheckContext& ctx);

// ---- Convenience drivers --------------------------------------------------

/// Structural checks of the description alone (no launch parameters) —
/// what KernelDesc::validate() routes through.
Diagnostics check_kernel_desc(const swacc::KernelDesc& kernel);

/// Description + launch checks (no lowering): cheap enough for tuners to
/// call per candidate variant.
Diagnostics check_launch(const swacc::KernelDesc& kernel,
                         const swacc::LaunchParams& params,
                         const sw::ArchParams& arch);

/// Dataflow + ISA checks of an already-lowered launch.
Diagnostics check_program(const sim::KernelBinary& binary,
                          const std::vector<sim::CpeProgram>& programs,
                          const sw::ArchParams& arch);

/// ISA-level lints of a single basic block.
Diagnostics check_block(const isa::BasicBlock& block);

/// The whole pipeline: launch checks, then — when those found no errors —
/// lowering plus program checks on the result. Never throws on findings;
/// lowering failures that slip past the launch checks surface as sw::Error.
Diagnostics check_all(const swacc::KernelDesc& kernel,
                      const swacc::LaunchParams& params,
                      const sw::ArchParams& arch);

// ---- Code catalogue -------------------------------------------------------

/// Catalogue entry for one diagnostic code (docs/ANALYSIS.md, CLI
/// `check --list-codes`).
struct CodeInfo {
  const char* code;
  Severity severity;
  const char* family;     // pass family: structure/launch/program/isa/dataflow
  const char* summary;
  const char* paper_ref;  // the paper section/figure the check derives from
};

/// All diagnostic codes the engine can emit, sorted by code.
const std::vector<CodeInfo>& diagnostic_catalog();

// ---- SWD006 fix-it ---------------------------------------------------------

/// A validated remedy for an SWD006 (idle CPEs) finding: a launch that
/// differs from the original in one parameter, carries no SWD006 itself,
/// and introduces no finding the original launch did not already have.
struct Swd006Suggestion {
  bool valid = false;
  swacc::LaunchParams params;
  std::string fixit;  // the rendering the checker attaches to SWD006
};

/// Computes (and validates against check_launch) the remedy the SWD006
/// checker suggests. `valid == false` when no single-parameter adjustment
/// survives validation — the checker then falls back to a descriptive
/// fix-it. tests/analysis pins that valid suggestions re-check clean of
/// SWD006 with no new findings.
Swd006Suggestion swd006_suggestion(const swacc::KernelDesc& kernel,
                                   const swacc::LaunchParams& params,
                                   const sw::ArchParams& arch);

namespace detail {
using Registry = std::vector<std::unique_ptr<Checker>>;
void register_desc_checkers(Registry& r);
void register_dataflow_checkers(Registry& r);
void register_isa_checkers(Registry& r);
void register_swa_checkers(Registry& r);
}  // namespace detail

}  // namespace swperf::analysis
