// Legality facts — the checker's verdicts as a queryable API.
//
// The tuners (tuning::prune_variants) used to re-derive "is this variant
// even lowerable" by scraping check_launch() for error-severity findings.
// This header gives that question, and the finer-grained facts behind it,
// a first-class answer type:
//
//   * launch_legal is BY CONSTRUCTION identical to
//     !has_errors(check_launch(kernel, params, arch)) — the tuners' pruning
//     verdicts (winners, explored sets, PruneStats) are bit-identical to
//     the scraping they replace (tests/tuning pins this at --jobs 1 and 8);
//   * the individual facts are tri-state: a Fact is only kHolds/kFails when
//     the analysis actually decided it, and kUnknown when its inputs were
//     absent (no lowered program yet, malformed kernel, no SPM notes).
//
// launch_legality() is cheap (description + launch checks only);
// refine_with_program() adds the facts that need a lowered program
// (region disjointness, DMA protocol, barrier alignment) via
// analysis/dataflow/.  serde renders the whole struct to JSON for
// `swperf check --analyze`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/program.h"
#include "sw/arch.h"
#include "swacc/kernel.h"

namespace swperf::analysis {

/// Facts the static analyses establish about one (kernel, launch) pair.
struct Legality {
  /// Tri-state verdict: kUnknown when the deciding analysis did not run.
  enum class Fact : std::uint8_t { kUnknown, kHolds, kFails };

  /// Exactly !has_errors(check_launch(kernel, params, arch)).
  bool launch_legal = false;
  /// Distinct error-severity codes of the launch check, in first
  /// appearance order (empty when launch_legal).
  std::vector<std::string> error_codes;

  // -- decidable from the description + launch alone --------------------
  /// The SPM footprint (staged buffers x double-buffer factor + broadcast,
  /// with allocator alignment) fits the scratchpad — computed with the
  /// interval domain; agrees with swacc::spm_bytes_required().
  Fact spm_fits = Fact::kUnknown;
  /// The body block carries no value across iterations (liveness fixpoint
  /// finds no loop-carried register): iterations are independent.
  Fact loop_carried_independent = Fact::kUnknown;

  // -- need a lowered program (refine_with_program) ----------------------
  /// No compute/DMA or DMA/DMA overlap inside any in-flight window on any
  /// CPE: the double-buffer phases touch disjoint SPM regions.
  Fact regions_disjoint = Fact::kUnknown;
  /// Handle protocol is well formed and no handle stays in flight across
  /// more than dataflow::kMaxFlightPhases compute phases.
  Fact dma_protocol_clean = Fact::kUnknown;
  /// Every CPE reaches the same number of barriers.
  Fact barriers_aligned = Fact::kUnknown;
};

const char* fact_name(Legality::Fact f);

/// The facts decidable without lowering. Runs check_launch() plus the
/// interval/liveness analyses.
Legality launch_legality(const swacc::KernelDesc& kernel,
                         const swacc::LaunchParams& params,
                         const sw::ArchParams& arch);

/// Fills in the program-level facts from an already-lowered launch.
void refine_with_program(Legality& l, const sim::KernelBinary& binary,
                         const std::vector<sim::CpeProgram>& programs,
                         const sw::ArchParams& arch);

/// Convenience: launch_legality(), then — when legal — lowers the kernel
/// and refines. Never throws on findings.
Legality program_legality(const swacc::KernelDesc& kernel,
                          const swacc::LaunchParams& params,
                          const sw::ArchParams& arch);

}  // namespace swperf::analysis
