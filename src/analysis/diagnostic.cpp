#include "analysis/diagnostic.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "sw/error.h"

namespace swperf::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << severity_name(severity) << "[" << code << "]: " << message;
  if (!fixit.empty()) os << " (fixit: " << fixit << ")";
  return os.str();
}

bool has_errors(const Diagnostics& diags) {
  return std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError;
  });
}

bool clean(const Diagnostics& diags) {
  return count_at_least(diags, Severity::kWarning) == 0;
}

std::size_t count_at_least(const Diagnostics& diags, Severity min) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(), [min](const Diagnostic& d) {
        return d.severity >= min;
      }));
}

Diagnostics filter(const Diagnostics& diags, Severity min) {
  Diagnostics out;
  for (const auto& d : diags) {
    if (d.severity >= min) out.push_back(d);
  }
  return out;
}

std::vector<std::string> codes_of(const Diagnostics& diags) {
  std::vector<std::string> out;
  for (const auto& d : diags) {
    if (std::find(out.begin(), out.end(), d.code) == out.end()) {
      out.push_back(d.code);
    }
  }
  return out;
}

namespace {

void json_escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

std::string to_json(const Diagnostics& diags) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const auto& d = diags[i];
    if (i > 0) os << ",";
    os << "{\"severity\":\"" << severity_name(d.severity) << "\",\"code\":\"";
    json_escape(os, d.code);
    os << "\",\"message\":\"";
    json_escape(os, d.message);
    os << "\",\"fixit\":\"";
    json_escape(os, d.fixit);
    os << "\"}";
  }
  os << "]";
  return os.str();
}

void throw_on_errors(const Diagnostics& diags) {
  for (const auto& d : diags) {
    if (d.severity == Severity::kError) {
      throw sw::Error("[" + d.code + "] " + d.message +
                      (d.fixit.empty() ? "" : " (fixit: " + d.fixit + ")"));
    }
  }
}

}  // namespace swperf::analysis
