#include "analysis/diagnostic.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "serde/json.h"
#include "sw/error.h"

namespace swperf::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << severity_name(severity) << "[" << code << "]: " << message;
  if (!fixit.empty()) os << " (fixit: " << fixit << ")";
  return os.str();
}

bool has_errors(const Diagnostics& diags) {
  return std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError;
  });
}

bool clean(const Diagnostics& diags) {
  return count_at_least(diags, Severity::kWarning) == 0;
}

std::size_t count_at_least(const Diagnostics& diags, Severity min) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(), [min](const Diagnostic& d) {
        return d.severity >= min;
      }));
}

Diagnostics filter(const Diagnostics& diags, Severity min) {
  Diagnostics out;
  for (const auto& d : diags) {
    if (d.severity >= min) out.push_back(d);
  }
  return out;
}

std::vector<std::string> codes_of(const Diagnostics& diags) {
  std::vector<std::string> out;
  for (const auto& d : diags) {
    if (std::find(out.begin(), out.end(), d.code) == out.end()) {
      out.push_back(d.code);
    }
  }
  return out;
}

std::string to_json(const Diagnostics& diags) {
  // Built with the serde JSON writer so messages containing quotes,
  // backslashes or control characters always escape correctly.
  serde::Json arr = serde::Json::array();
  for (const auto& d : diags) {
    serde::Json j = serde::Json::object();
    j.set("severity", severity_name(d.severity));
    j.set("code", d.code);
    j.set("message", d.message);
    j.set("fixit", d.fixit);
    arr.push_back(std::move(j));
  }
  return arr.dump();
}

void throw_on_errors(const Diagnostics& diags) {
  for (const auto& d : diags) {
    if (d.severity == Severity::kError) {
      throw sw::Error("[" + d.code + "] " + d.message +
                      (d.fixit.empty() ? "" : " (fixit: " + d.fixit + ")"));
    }
  }
}

}  // namespace swperf::analysis
