// Dataflow checks over lowered per-CPE programs (SWP* codes).
//
// The double-buffer restructuring of Section IV-2 (Fig. 5) is the classic
// source of DMA-handle bugs: a missing final dma_wait leaves the last
// copy-out in flight when the kernel "finishes", a wait on the wrong
// parity handle blocks on nothing, a re-issue on a busy handle corrupts
// the buffer being computed on.  All of these are decidable by abstract
// interpretation of each CPE's op stream with one bit of state per handle
// (idle / in-flight) — no simulation required.
#include <sstream>
#include <variant>

#include "analysis/checker.h"

namespace swperf::analysis {
namespace {

void emit(Diagnostics& out, Severity sev, const char* code,
          std::string message, std::string fixit = "") {
  out.push_back(
      Diagnostic{sev, code, std::move(message), std::move(fixit)});
}

std::string at(std::size_t cpe, std::size_t op) {
  std::ostringstream os;
  os << "CPE " << cpe << ", op " << op;
  return os.str();
}

// ---- SWP001/SWP002/SWP003/SWP006: DMA handle state machine ----------------

class DmaStateChecker final : public Checker {
 public:
  const char* name() const override { return "dma-dataflow"; }

  void run(const CheckContext& ctx, Diagnostics& out) const override {
    if (ctx.programs == nullptr) return;
    for (std::size_t cpe = 0; cpe < ctx.programs->size(); ++cpe) {
      check_cpe((*ctx.programs)[cpe], cpe, out);
    }
  }

 private:
  static void check_cpe(const sim::CpeProgram& prog, std::size_t cpe,
                        Diagnostics& out) {
    bool in_flight[sim::kMaxDmaHandles] = {};
    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
      const auto& op = prog.ops[i];
      if (const auto* d = std::get_if<sim::DmaOp>(&op)) {
        if (d->handle < 0) continue;  // blocking DMA: no handle state
        if (d->handle >= sim::kMaxDmaHandles) {
          emit(out, Severity::kError, "SWP006",
               at(cpe, i) + ": dma handle " + std::to_string(d->handle) +
                   " outside [0, " +
                   std::to_string(sim::kMaxDmaHandles) + ")");
          continue;
        }
        if (in_flight[d->handle]) {
          emit(out, Severity::kError, "SWP002",
               at(cpe, i) + ": async DMA issued on handle " +
                   std::to_string(d->handle) +
                   " while a previous request on it is still in flight",
               "insert dma_wait(" + std::to_string(d->handle) +
                   ") before re-issuing, or use the other parity handle");
        }
        in_flight[d->handle] = true;
      } else if (const auto* w = std::get_if<sim::DmaWaitOp>(&op)) {
        if (w->handle < 0 || w->handle >= sim::kMaxDmaHandles) {
          emit(out, Severity::kError, "SWP006",
               at(cpe, i) + ": dma_wait handle " +
                   std::to_string(w->handle) + " outside [0, " +
                   std::to_string(sim::kMaxDmaHandles) + ")");
          continue;
        }
        if (!in_flight[w->handle]) {
          emit(out, Severity::kError, "SWP001",
               at(cpe, i) + ": dma_wait on handle " +
                   std::to_string(w->handle) +
                   " with no DMA in flight (never issued, or already "
                   "waited for)",
               "drop the wait, or issue the matching async dma first");
        }
        in_flight[w->handle] = false;
      }
    }
    for (int h = 0; h < sim::kMaxDmaHandles; ++h) {
      if (!in_flight[h]) continue;
      emit(out, Severity::kWarning, "SWP003",
           "CPE " + std::to_string(cpe) + ": async DMA on handle " +
               std::to_string(h) +
               " still in flight at program end — the kernel may finish "
               "before its last transfer lands",
           "append dma_wait(" + std::to_string(h) + ")");
    }
  }
};

// ---- SWP004: cross-CPE barrier parity -------------------------------------

class BarrierParityChecker final : public Checker {
 public:
  const char* name() const override { return "barrier-parity"; }

  void run(const CheckContext& ctx, Diagnostics& out) const override {
    if (ctx.programs == nullptr || ctx.programs->size() < 2) return;
    std::size_t min_count = 0, max_count = 0, min_cpe = 0, max_cpe = 0;
    for (std::size_t cpe = 0; cpe < ctx.programs->size(); ++cpe) {
      std::size_t n = 0;
      for (const auto& op : (*ctx.programs)[cpe].ops) {
        n += std::holds_alternative<sim::BarrierOp>(op) ? 1 : 0;
      }
      if (cpe == 0 || n < min_count) {
        min_count = n;
        min_cpe = cpe;
      }
      if (cpe == 0 || n > max_count) {
        max_count = n;
        max_cpe = cpe;
      }
    }
    if (min_count == max_count) return;
    std::ostringstream os;
    os << "barrier count differs across CPEs: CPE " << max_cpe
       << " reaches " << max_count << " barrier(s) but CPE " << min_cpe
       << " only " << min_count << " — the launch deadlocks";
    emit(out, Severity::kError, "SWP004", os.str(),
         "give every active CPE the same number of barriers");
  }
};

// ---- SWP005: ComputeOp block references -----------------------------------

class BlockRefChecker final : public Checker {
 public:
  const char* name() const override { return "block-ref"; }

  void run(const CheckContext& ctx, Diagnostics& out) const override {
    if (ctx.programs == nullptr || ctx.binary == nullptr) return;
    const auto n_blocks = ctx.binary->blocks.size();
    for (std::size_t cpe = 0; cpe < ctx.programs->size(); ++cpe) {
      const auto& ops = (*ctx.programs)[cpe].ops;
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const auto* c = std::get_if<sim::ComputeOp>(&ops[i]);
        if (c == nullptr || c->block_id < n_blocks) continue;
        emit(out, Severity::kError, "SWP005",
             at(cpe, i) + ": ComputeOp references block " +
                 std::to_string(c->block_id) + " but the binary has only " +
                 std::to_string(n_blocks) + " block(s)");
      }
    }
  }
};

}  // namespace

namespace detail {

void register_dataflow_checkers(Registry& r) {
  r.push_back(std::make_unique<DmaStateChecker>());
  r.push_back(std::make_unique<BarrierParityChecker>());
  r.push_back(std::make_unique<BlockRefChecker>());
}

}  // namespace detail
}  // namespace swperf::analysis
