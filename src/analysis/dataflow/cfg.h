// Per-CPE control-flow graphs for the dataflow framework.
//
// Two program shapes feed the worklist solver (solver.h):
//
//   * a lowered sim::CpeProgram — an op stream whose only loops are the
//     implicit repetitions of ComputeOp (iters > 1) and GloadLoopOp
//     (count > 1), modelled as self-loop edges;
//   * an isa::BasicBlock — straight-line SSA-like code that, when executed
//     repeatedly (an inner loop), carries values across a single back edge
//     from the last instruction to the first.
//
// Both are deliberately small graphs: the point is not graph generality but
// giving every analysis one shared notion of node order (reverse post
// order), reachability and loop membership, so lattice code never hand-rolls
// its own traversal.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/block.h"
#include "sim/program.h"

namespace swperf::analysis::dataflow {

/// A small directed graph over nodes 0..size()-1, entry at node 0.
struct Cfg {
  struct Node {
    std::vector<std::uint32_t> succs;
    std::vector<std::uint32_t> preds;
    /// True when the node has an edge to itself (a repeated op).
    bool self_loop = false;
  };

  std::vector<Node> nodes;

  std::size_t size() const { return nodes.size(); }
  bool empty() const { return nodes.empty(); }

  /// Adds the edge from -> to (and the mirror pred edge).
  void add_edge(std::uint32_t from, std::uint32_t to);

  /// Node order for forward analyses: reverse post-order of a DFS from the
  /// entry. Unreachable nodes are appended after the reachable ones so
  /// every node still gets a slot.
  std::vector<std::uint32_t> rpo() const;

  /// Per-node reachability from the entry node.
  std::vector<bool> reachable() const;
};

/// One node per op; fallthrough edges plus self-loops on repeated ops
/// (ComputeOp iters > 1, GloadLoopOp count > 1).
Cfg make_program_cfg(const sim::CpeProgram& prog);

/// One node per instruction; fallthrough edges plus, when `repeated`, the
/// loop back edge last -> first that makes live-out feed live-in (how
/// reduction accumulators and running indices stay live).
Cfg make_block_cfg(const isa::BasicBlock& block, bool repeated);

}  // namespace swperf::analysis::dataflow
