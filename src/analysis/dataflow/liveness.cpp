#include "analysis/dataflow/liveness.h"

#include <algorithm>

#include "analysis/dataflow/cfg.h"
#include "analysis/dataflow/solver.h"

namespace swperf::analysis::dataflow {

std::vector<isa::Reg> RegSet::to_sorted(std::size_t num_regs) const {
  std::vector<isa::Reg> out;
  for (std::size_t r = 0; r < num_regs; ++r) {
    if (test(static_cast<isa::Reg>(r))) {
      out.push_back(static_cast<isa::Reg>(r));
    }
  }
  return out;
}

BlockDataflow analyze_block(const isa::BasicBlock& block, bool repeated) {
  BlockDataflow bd;
  const std::size_t nregs = static_cast<std::size_t>(block.num_regs);
  if (block.instrs.empty()) return bd;

  const Cfg cfg = make_block_cfg(block, repeated);
  const RegSet nothing(nregs);

  // Backward liveness: the flow-in state of instruction i is what is live
  // *after* it executes; the transfer kills the destination and gens the
  // sources.
  auto transfer = [&](std::uint32_t i, const RegSet& after) {
    RegSet before = after;
    const isa::Instr& ins = block.instrs[i];
    if (ins.dst != isa::kNoReg) before.clear(ins.dst);
    for (const isa::Reg s : ins.srcs) {
      if (s != isa::kNoReg) before.set(s);
    }
    return before;
  };
  auto join = [](RegSet& into, const RegSet& from) {
    return into.union_with(from);
  };
  const auto res = solve(cfg, Direction::kBackward, nothing, nothing,
                         transfer, join);
  bd.solver_iterations = res.iterations;

  // Backward flow: res.in[i] = live after instruction i, res.out[i] = live
  // before it. The block's live-in is the state before instruction 0.
  bd.live_in = res.out[0].to_sorted(nregs);
  bd.live_after = res.in;

  RegSet written(nregs);
  for (const isa::Reg r : block.written()) written.set(r);
  for (const isa::Reg r : bd.live_in) {
    if (written.test(r)) bd.carried.push_back(r);
  }
  for (std::size_t i = 0; i < block.instrs.size(); ++i) {
    const isa::Instr& ins = block.instrs[i];
    if (ins.dst != isa::kNoReg && !res.in[i].test(ins.dst)) {
      bd.dead_defs.push_back(i);
    }
  }
  return bd;
}

}  // namespace swperf::analysis::dataflow
