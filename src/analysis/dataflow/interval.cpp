#include "analysis/dataflow/interval.h"

#include <algorithm>
#include <sstream>

namespace swperf::analysis::dataflow {

namespace {

/// Clamp to the representable bound range (anything at or past kInf in
/// magnitude reads as infinity).
std::int64_t clamp(__int128 v) {
  if (v >= static_cast<__int128>(Interval::kInf)) return Interval::kInf;
  if (v <= -static_cast<__int128>(Interval::kInf)) return -Interval::kInf;
  return static_cast<std::int64_t>(v);
}

__int128 wide(std::int64_t v) { return static_cast<__int128>(v); }

}  // namespace

Interval Interval::join(const Interval& o) const {
  if (is_empty()) return o;
  if (o.is_empty()) return *this;
  return {std::min(lo, o.lo), std::max(hi, o.hi)};
}

Interval Interval::meet(const Interval& o) const {
  if (is_empty() || o.is_empty()) return empty();
  const Interval r{std::max(lo, o.lo), std::min(hi, o.hi)};
  return r.is_empty() ? empty() : r;
}

Interval Interval::widen(const Interval& next) const {
  if (is_empty()) return next;
  if (next.is_empty()) return *this;
  return {next.lo < lo ? -kInf : lo, next.hi > hi ? kInf : hi};
}

Interval Interval::add(const Interval& o) const {
  if (is_empty() || o.is_empty()) return empty();
  return {clamp(wide(lo) + wide(o.lo)), clamp(wide(hi) + wide(o.hi))};
}

Interval Interval::sub(const Interval& o) const {
  if (is_empty() || o.is_empty()) return empty();
  return {clamp(wide(lo) - wide(o.hi)), clamp(wide(hi) - wide(o.lo))};
}

Interval Interval::mul(const Interval& o) const {
  if (is_empty() || o.is_empty()) return empty();
  const __int128 a = wide(lo) * wide(o.lo);
  const __int128 b = wide(lo) * wide(o.hi);
  const __int128 c = wide(hi) * wide(o.lo);
  const __int128 d = wide(hi) * wide(o.hi);
  const __int128 mn = std::min(std::min(a, b), std::min(c, d));
  const __int128 mx = std::max(std::max(a, b), std::max(c, d));
  return {clamp(mn), clamp(mx)};
}

Interval Interval::min_with(const Interval& o) const {
  if (is_empty() || o.is_empty()) return empty();
  return {std::min(lo, o.lo), std::min(hi, o.hi)};
}

Interval Interval::max_with(const Interval& o) const {
  if (is_empty() || o.is_empty()) return empty();
  return {std::max(lo, o.lo), std::max(hi, o.hi)};
}

std::string Interval::to_string() const {
  if (is_empty()) return "[]";
  std::ostringstream os;
  os << "[";
  if (lo <= -kInf) {
    os << "-inf";
  } else {
    os << lo;
  }
  os << ", ";
  if (hi >= kInf) {
    os << "+inf";
  } else {
    os << hi;
  }
  os << "]";
  return os.str();
}

bool join_into(Interval& into, const Interval& from) {
  const Interval j = into.join(from);
  if (j == into) return false;
  into = j;
  return true;
}

}  // namespace swperf::analysis::dataflow
