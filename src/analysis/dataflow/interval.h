// Interval (value-range) lattice over 64-bit integers.
//
// The quantities the analyses bound — tile sizes, chunk extents, SPM byte
// offsets, address expressions like `offset + g * bytes_per_outer` — are all
// integer expressions of launch parameters.  An interval [lo, hi] per
// expression is enough to prove the facts the legality layer exports
// (footprints fit in SPM, index ranges stay inside buffers) without a full
// symbolic engine.
//
// All arithmetic saturates at the representation limits instead of wrapping:
// an overflowing bound becomes kInf/-kInf ("unknown beyond this point"),
// which keeps every operation sound and UBSan-clean.  The lattice has finite
// height under widen(), so solver.h loops terminate.
#pragma once

#include <cstdint>
#include <string>

namespace swperf::analysis::dataflow {

struct Interval {
  /// Bound magnitude treated as infinity. Half of the int64 range so that
  /// sums of two finite bounds stay representable before clamping.
  static constexpr std::int64_t kInf = INT64_C(0x3fffffffffffffff);

  std::int64_t lo = 1;   // empty when lo > hi
  std::int64_t hi = 0;

  static Interval empty() { return {1, 0}; }
  static Interval top() { return {-kInf, kInf}; }
  static Interval point(std::int64_t v) { return {v, v}; }
  static Interval range(std::int64_t lo, std::int64_t hi) {
    return {lo, hi};
  }

  bool is_empty() const { return lo > hi; }
  bool is_top() const { return lo <= -kInf && hi >= kInf; }
  bool contains(std::int64_t v) const { return lo <= v && v <= hi; }
  bool subset_of(const Interval& o) const {
    return is_empty() || (o.lo <= lo && hi <= o.hi);
  }
  bool operator==(const Interval& o) const {
    return (is_empty() && o.is_empty()) || (lo == o.lo && hi == o.hi);
  }

  /// Least upper bound: the convex hull.
  Interval join(const Interval& o) const;
  /// Greatest lower bound: the intersection.
  Interval meet(const Interval& o) const;
  /// Standard widening: bounds that grew since `*this` jump to infinity.
  /// join-compatible (result contains both), with finite ascending chains.
  Interval widen(const Interval& next) const;

  /// Saturating interval arithmetic.
  Interval add(const Interval& o) const;
  Interval sub(const Interval& o) const;
  Interval mul(const Interval& o) const;
  /// Element-wise min/max (e.g. eff_tile = min(tile, n_outer)).
  Interval min_with(const Interval& o) const;
  Interval max_with(const Interval& o) const;

  std::string to_string() const;
};

/// Solver-style join: grows `into` to cover `from`; true when it changed.
bool join_into(Interval& into, const Interval& from);

}  // namespace swperf::analysis::dataflow
