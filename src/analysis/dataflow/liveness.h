// Liveness and definition flow on virtual registers of an isa::BasicBlock.
//
// Runs the generic worklist solver backward over the block CFG (with the
// loop back edge when the block executes repeatedly) on a bitset lattice
// over the block's register universe.  The single-pass helpers
// BasicBlock::live_in()/carried() are the degenerate straight-line case of
// this analysis; tests pin that the fixpoint agrees with them, which is
// what lets the rest of the codebase keep using the cheap helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/block.h"

namespace swperf::analysis::dataflow {

/// A set of virtual registers as a bitset (the liveness lattice element).
struct RegSet {
  std::vector<std::uint64_t> words;

  explicit RegSet(std::size_t num_regs = 0)
      : words((num_regs + 63) / 64, 0) {}

  void set(isa::Reg r) {
    words[static_cast<std::size_t>(r) / 64] |=
        std::uint64_t{1} << (static_cast<std::size_t>(r) % 64);
  }
  void clear(isa::Reg r) {
    words[static_cast<std::size_t>(r) / 64] &=
        ~(std::uint64_t{1} << (static_cast<std::size_t>(r) % 64));
  }
  bool test(isa::Reg r) const {
    return (words[static_cast<std::size_t>(r) / 64] >>
            (static_cast<std::size_t>(r) % 64)) &
           1u;
  }
  /// Union-assign; true when this set grew.
  bool union_with(const RegSet& o) {
    bool changed = false;
    for (std::size_t i = 0; i < words.size(); ++i) {
      const std::uint64_t next = words[i] | o.words[i];
      changed |= next != words[i];
      words[i] = next;
    }
    return changed;
  }
  bool operator==(const RegSet& o) const { return words == o.words; }

  /// Members in ascending register order.
  std::vector<isa::Reg> to_sorted(std::size_t num_regs) const;
};

/// Everything the register-flow analysis proves about one block.
struct BlockDataflow {
  /// Registers live into the block (read before any write) — must agree
  /// with BasicBlock::live_in().
  std::vector<isa::Reg> live_in;
  /// Live-in registers the block also writes: loop-carried values when the
  /// block repeats — must agree with BasicBlock::carried().
  std::vector<isa::Reg> carried;
  /// Instruction indices whose destination is dead (never read afterwards,
  /// including across the back edge when repeated).
  std::vector<std::size_t> dead_defs;
  /// Per-instruction liveness after the instruction executes.
  std::vector<RegSet> live_after;
  /// Solver transfer applications until fixpoint.
  std::size_t solver_iterations = 0;
};

/// Backward liveness over the block; `repeated` adds the loop back edge so
/// values written late and read early survive as loop-carried.
BlockDataflow analyze_block(const isa::BasicBlock& block, bool repeated);

}  // namespace swperf::analysis::dataflow
