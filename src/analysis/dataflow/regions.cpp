#include "analysis/dataflow/regions.h"

#include <algorithm>
#include <array>
#include <sstream>
#include <utility>
#include <variant>

#include "analysis/dataflow/cfg.h"
#include "analysis/dataflow/solver.h"

namespace swperf::analysis::dataflow {

// ---- RangeSet --------------------------------------------------------------

RangeSet RangeSet::all() {
  RangeSet s;
  s.spans.push_back({0, ~std::uint32_t{0}});
  return s;
}

void RangeSet::add(sim::SpmRange r) {
  if (r.hi <= r.lo) return;
  std::vector<sim::SpmRange> next;
  next.reserve(spans.size() + 1);
  bool placed = false;
  for (const auto& s : spans) {
    if (s.hi < r.lo) {
      next.push_back(s);
    } else if (r.hi < s.lo) {
      if (!placed) {
        next.push_back(r);
        placed = true;
      }
      next.push_back(s);
    } else {
      // Overlapping or touching: absorb into r and keep scanning.
      r.lo = std::min(r.lo, s.lo);
      r.hi = std::max(r.hi, s.hi);
    }
  }
  if (!placed) next.push_back(r);
  spans = std::move(next);
}

bool RangeSet::intersects(sim::SpmRange r) const {
  if (r.hi <= r.lo) return false;
  for (const auto& s : spans) {
    if (s.lo >= r.hi) return false;
    if (s.overlaps(r)) return true;
  }
  return false;
}

bool RangeSet::covers(sim::SpmRange r) const {
  if (r.hi <= r.lo) return true;
  // Spans are merged, so coverage means one span contains the whole range.
  for (const auto& s : spans) {
    if (s.lo <= r.lo && r.hi <= s.hi) return true;
    if (s.lo > r.lo) return false;
  }
  return false;
}

sim::SpmRange RangeSet::first_overlap(sim::SpmRange r) const {
  for (const auto& s : spans) {
    if (s.overlaps(r)) return {std::max(s.lo, r.lo), std::min(s.hi, r.hi)};
    if (s.lo >= r.hi) break;
  }
  return {};
}

bool RangeSet::union_with(const RangeSet& o) {
  if (o.spans.empty()) return false;
  const std::vector<sim::SpmRange> before = spans;
  for (const auto& s : o.spans) add(s);
  return !(*this == RangeSet{before});
}

bool RangeSet::intersect_with(const RangeSet& o) {
  std::vector<sim::SpmRange> next;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < spans.size() && j < o.spans.size()) {
    const sim::SpmRange a = spans[i];
    const sim::SpmRange b = o.spans[j];
    const std::uint32_t lo = std::max(a.lo, b.lo);
    const std::uint32_t hi = std::min(a.hi, b.hi);
    if (lo < hi) next.push_back({lo, hi});
    if (a.hi < b.hi) {
      ++i;
    } else {
      ++j;
    }
  }
  const bool changed = !(*this == RangeSet{next});
  spans = std::move(next);
  return changed;
}

bool RangeSet::operator==(const RangeSet& o) const {
  if (spans.size() != o.spans.size()) return false;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].lo != o.spans[i].lo || spans[i].hi != o.spans[i].hi) {
      return false;
    }
  }
  return true;
}

std::string RangeSet::to_string() const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) os << " ";
    os << "[" << spans[i].lo << "," << spans[i].hi << ")";
  }
  os << "}";
  return os.str();
}

// ---- Region analysis -------------------------------------------------------

namespace {

/// The SPM ranges one op touches, split by role.
struct OpAccess {
  RangeSet dma_dst;  // kDmaDst notes (get destination)
  RangeSet dma_src;  // kDmaSrc notes (put source)
  RangeSet reads;    // kComputeRead notes
  RangeSet writes;   // kComputeWrite notes
};

/// One async DMA's in-flight window [issue, wait).
struct Flight {
  std::size_t issue = 0;
  std::size_t wait = 0;  // == op count when never waited
  int handle = -1;
  bool waited = false;
  // Compute groups touched strictly inside the window (contiguous ids).
  int first_group = -1;
  int last_group = -1;
};

bool is_compute(const sim::Op& op) {
  return std::holds_alternative<sim::ComputeOp>(op) ||
         std::holds_alternative<sim::GloadLoopOp>(op);
}

}  // namespace

RegionFacts analyze_regions(const sim::CpeProgram& prog) {
  RegionFacts rf;
  rf.has_notes = !prog.spm_notes.empty();
  const std::size_t n = prog.ops.size();
  if (n == 0) return rf;

  // Handle protocol scan + static issue->wait matching.  The op stream is
  // straight-line (self-loops repeat a single op), so each wait pairs with
  // exactly one preceding issue.  A broken protocol belongs to the SWP
  // codes; region windows are undefined then, so we stop without findings.
  std::vector<Flight> flights;
  std::vector<int> flight_at_wait(n, -1);
  std::vector<int> flight_at_issue(n, -1);
  {
    std::array<int, sim::kMaxDmaHandles> open;
    open.fill(-1);
    for (std::size_t i = 0; i < n; ++i) {
      if (const auto* d = std::get_if<sim::DmaOp>(&prog.ops[i])) {
        if (d->handle < 0) continue;
        if (d->handle >= sim::kMaxDmaHandles || open[d->handle] >= 0) {
          rf.protocol_ok = false;
          return rf;
        }
        open[d->handle] = static_cast<int>(flights.size());
        flight_at_issue[i] = static_cast<int>(flights.size());
        flights.push_back({i, n, d->handle, false, -1, -1});
      } else if (const auto* w = std::get_if<sim::DmaWaitOp>(&prog.ops[i])) {
        if (w->handle < 0 || w->handle >= sim::kMaxDmaHandles ||
            open[w->handle] < 0) {
          rf.protocol_ok = false;
          return rf;
        }
        Flight& f = flights[static_cast<std::size_t>(open[w->handle])];
        f.wait = i;
        f.waited = true;
        flight_at_wait[i] = open[w->handle];
        open[w->handle] = -1;
      }
    }
  }

  // Compute groups: maximal runs of consecutive compute/gload ops.  One
  // group is one pipeline phase of Fig. 5; flight windows are measured in
  // groups crossed.
  std::vector<int> group(n, -1);
  {
    int ngroups = 0;
    bool in_run = false;
    for (std::size_t i = 0; i < n; ++i) {
      const bool c = is_compute(prog.ops[i]);
      if (c) {
        if (!in_run) ++ngroups;
        group[i] = ngroups - 1;
      }
      in_run = c;
    }
  }

  // Per-op access sets from the side-band notes.
  std::vector<OpAccess> acc(n);
  for (const auto& note : prog.spm_notes) {
    if (note.op >= n) continue;  // hand-built out-of-range note: ignore
    OpAccess& a = acc[note.op];
    switch (note.kind) {
      case sim::SpmAccessKind::kDmaDst:
        a.dma_dst.add(note.range);
        break;
      case sim::SpmAccessKind::kDmaSrc:
        a.dma_src.add(note.range);
        break;
      case sim::SpmAccessKind::kComputeRead:
        a.reads.add(note.range);
        break;
      case sim::SpmAccessKind::kComputeWrite:
        a.writes.add(note.range);
        break;
    }
  }

  // MUST-defined bytes (forward, intersection join): a blocking get defines
  // its destination at issue, an async get at its wait, compute as it runs.
  // MAY-read-later bytes (backward, union join): compute reads + put
  // sources.  Both skipped when there are no notes — every set is empty.
  const Cfg cfg = make_program_cfg(prog);
  std::vector<RangeSet> must_in;
  std::vector<RangeSet> may_read_in;
  if (rf.has_notes) {
    std::vector<RangeSet> gen(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (const auto* d = std::get_if<sim::DmaOp>(&prog.ops[i])) {
        if (d->handle < 0) gen[i] = acc[i].dma_dst;
      } else if (is_compute(prog.ops[i])) {
        gen[i] = acc[i].writes;
      }
    }
    for (const Flight& f : flights) {
      if (f.waited) gen[f.wait].union_with(acc[f.issue].dma_dst);
    }
    auto fwd_transfer = [&](std::uint32_t i, const RangeSet& in) {
      RangeSet out = in;
      out.union_with(gen[i]);
      return out;
    };
    auto must_join = [](RangeSet& into, const RangeSet& from) {
      return into.intersect_with(from);
    };
    auto must = solve(cfg, Direction::kForward, RangeSet{}, RangeSet::all(),
                      fwd_transfer, must_join);
    rf.solver_iterations += must.iterations;
    must_in = std::move(must.in);

    std::vector<RangeSet> use(n);
    for (std::size_t i = 0; i < n; ++i) {
      use[i] = acc[i].reads;
      use[i].union_with(acc[i].dma_src);
    }
    auto bwd_transfer = [&](std::uint32_t i, const RangeSet& after) {
      RangeSet before = after;
      before.union_with(use[i]);
      return before;
    };
    auto may_join = [](RangeSet& into, const RangeSet& from) {
      return into.union_with(from);
    };
    auto may = solve(cfg, Direction::kBackward, RangeSet{}, RangeSet{},
                     bwd_transfer, may_join);
    rf.solver_iterations += may.iterations;
    may_read_in = std::move(may.in);
  }

  // Sweep the op stream with the set of open flights (bounded by
  // kMaxDmaHandles), producing the window findings in op order.
  std::array<int, sim::kMaxDmaHandles> open;
  open.fill(-1);
  auto open_flights = [&](auto&& fn) {
    for (const int fi : open) {
      if (fi >= 0) fn(flights[static_cast<std::size_t>(fi)]);
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    // A wait closes its flight first: the window is strictly (issue, wait).
    if (flight_at_wait[i] >= 0) {
      Flight& f = flights[static_cast<std::size_t>(flight_at_wait[i])];
      const int phases =
          f.first_group < 0 ? 0 : f.last_group - f.first_group + 1;
      if (phases > kMaxFlightPhases) {
        RegionFinding fd;
        fd.kind = RegionFinding::Kind::kHandleLeak;
        fd.op = i;
        fd.handle = f.handle;
        fd.phases = phases;
        rf.findings.push_back(fd);
      }
      open[f.handle] = -1;
    }

    const OpAccess& a = acc[i];
    if (is_compute(prog.ops[i])) {
      open_flights([&](Flight& f) {
        if (group[i] >= 0) {
          if (f.first_group < 0) f.first_group = group[i];
          f.last_group = group[i];
        }
        // Compute must not touch a get destination still in flight.  Put
        // sources are considered captured at issue (see regions.h).
        const RangeSet& dst = acc[f.issue].dma_dst;
        for (const auto& r : a.reads.spans) {
          if (dst.intersects(r)) {
            RegionFinding fd;
            fd.kind = RegionFinding::Kind::kComputeDmaOverlap;
            fd.op = i;
            fd.handle = f.handle;
            fd.range = dst.first_overlap(r);
            rf.findings.push_back(fd);
            return;
          }
        }
        for (const auto& w : a.writes.spans) {
          if (dst.intersects(w)) {
            RegionFinding fd;
            fd.kind = RegionFinding::Kind::kComputeDmaOverlap;
            fd.op = i;
            fd.handle = f.handle;
            fd.range = dst.first_overlap(w);
            rf.findings.push_back(fd);
            return;
          }
        }
      });
    } else if (const auto* d = std::get_if<sim::DmaOp>(&prog.ops[i])) {
      // A new transfer (blocking or freshly issued) must not overlap any
      // in-flight window when either side writes SPM: dst-vs-dst,
      // dst-vs-src and src-vs-dst all race; src-vs-src is read-read.
      open_flights([&](const Flight& f) {
        const RangeSet& fdst = acc[f.issue].dma_dst;
        const RangeSet& fsrc = acc[f.issue].dma_src;
        auto report = [&](sim::SpmRange r) {
          RegionFinding fd;
          fd.kind = RegionFinding::Kind::kDmaDmaOverlap;
          fd.op = i;
          fd.handle = d->handle;
          fd.other_handle = f.handle;
          fd.range = r;
          rf.findings.push_back(fd);
        };
        for (const auto& r : a.dma_dst.spans) {
          if (fdst.intersects(r)) return report(fdst.first_overlap(r));
          if (fsrc.intersects(r)) return report(fsrc.first_overlap(r));
        }
        for (const auto& r : a.dma_src.spans) {
          if (fdst.intersects(r)) return report(fdst.first_overlap(r));
        }
      });
    }

    // Reads must be covered by must-defined bytes or by a pending get (the
    // latter already reported as SWA001 above — not double-reported here).
    if (rf.has_notes && (!a.reads.empty() || !a.dma_src.empty())) {
      RangeSet avail = must_in[i];
      open_flights(
          [&](const Flight& f) { avail.union_with(acc[f.issue].dma_dst); });
      auto check_read = [&](const sim::SpmRange& r) {
        if (!avail.covers(r)) {
          RegionFinding fd;
          fd.kind = RegionFinding::Kind::kUndefinedRead;
          fd.op = i;
          fd.range = r;
          rf.findings.push_back(fd);
        }
      };
      for (const auto& r : a.reads.spans) check_read(r);
      for (const auto& r : a.dma_src.spans) check_read(r);
    }

    if (flight_at_issue[i] >= 0) {
      open[flights[static_cast<std::size_t>(flight_at_issue[i])].handle] =
          flight_at_issue[i];
    }
  }

  // Dead stores: written bytes never read again (compute reads or put
  // sources, across the repeat back edges).  Async get destinations are
  // judged at their wait — that is when the data lands.
  if (rf.has_notes) {
    for (std::size_t i = 0; i < n; ++i) {
      auto report_dead = [&](std::size_t op, int handle,
                             const sim::SpmRange& w) {
        RegionFinding fd;
        fd.kind = RegionFinding::Kind::kDeadStore;
        fd.op = op;
        fd.handle = handle;
        fd.range = w;
        rf.findings.push_back(fd);
      };
      if (is_compute(prog.ops[i])) {
        for (const auto& w : acc[i].writes.spans) {
          if (!may_read_in[i].intersects(w)) report_dead(i, -1, w);
        }
      } else if (const auto* d = std::get_if<sim::DmaOp>(&prog.ops[i])) {
        if (d->handle < 0) {
          for (const auto& w : acc[i].dma_dst.spans) {
            if (!may_read_in[i].intersects(w)) report_dead(i, -1, w);
          }
        }
      } else if (flight_at_wait[i] >= 0) {
        const Flight& f = flights[static_cast<std::size_t>(flight_at_wait[i])];
        for (const auto& w : acc[f.issue].dma_dst.spans) {
          if (!may_read_in[i].intersects(w)) report_dead(i, f.handle, w);
        }
      }
    }
  }
  return rf;
}

}  // namespace swperf::analysis::dataflow
