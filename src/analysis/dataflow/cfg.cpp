#include "analysis/dataflow/cfg.h"

#include <algorithm>
#include <variant>

#include "sw/error.h"

namespace swperf::analysis::dataflow {

void Cfg::add_edge(std::uint32_t from, std::uint32_t to) {
  SWPERF_CHECK(from < nodes.size() && to < nodes.size(),
               "cfg edge " << from << " -> " << to << " out of range (size "
                           << nodes.size() << ")");
  nodes[from].succs.push_back(to);
  nodes[to].preds.push_back(from);
  if (from == to) nodes[from].self_loop = true;
}

std::vector<std::uint32_t> Cfg::rpo() const {
  std::vector<std::uint32_t> post;
  post.reserve(nodes.size());
  std::vector<std::uint8_t> state(nodes.size(), 0);  // 0 new, 1 open, 2 done
  if (!nodes.empty()) {
    // Iterative DFS with an explicit stack of (node, next-succ-index).
    std::vector<std::pair<std::uint32_t, std::size_t>> stack;
    stack.emplace_back(0, 0);
    state[0] = 1;
    while (!stack.empty()) {
      auto& [n, next] = stack.back();
      if (next < nodes[n].succs.size()) {
        const std::uint32_t s = nodes[n].succs[next++];
        if (state[s] == 0) {
          state[s] = 1;
          stack.emplace_back(s, 0);
        }
      } else {
        state[n] = 2;
        post.push_back(n);
        stack.pop_back();
      }
    }
  }
  std::reverse(post.begin(), post.end());
  // Unreachable nodes last, in index order, so every node has an RPO slot.
  for (std::uint32_t n = 0; n < nodes.size(); ++n) {
    if (state[n] != 2) post.push_back(n);
  }
  return post;
}

std::vector<bool> Cfg::reachable() const {
  std::vector<bool> seen(nodes.size(), false);
  if (nodes.empty()) return seen;
  std::vector<std::uint32_t> work = {0};
  seen[0] = true;
  while (!work.empty()) {
    const std::uint32_t n = work.back();
    work.pop_back();
    for (const std::uint32_t s : nodes[n].succs) {
      if (!seen[s]) {
        seen[s] = true;
        work.push_back(s);
      }
    }
  }
  return seen;
}

Cfg make_program_cfg(const sim::CpeProgram& prog) {
  Cfg g;
  g.nodes.resize(prog.ops.size());
  for (std::uint32_t i = 0; i < prog.ops.size(); ++i) {
    if (i + 1 < prog.ops.size()) g.add_edge(i, i + 1);
    const auto& op = prog.ops[i];
    if (const auto* c = std::get_if<sim::ComputeOp>(&op)) {
      if (c->iters > 1) g.add_edge(i, i);
    } else if (const auto* gl = std::get_if<sim::GloadLoopOp>(&op)) {
      if (gl->count > 1) g.add_edge(i, i);
    }
  }
  return g;
}

Cfg make_block_cfg(const isa::BasicBlock& block, bool repeated) {
  Cfg g;
  g.nodes.resize(block.instrs.size());
  for (std::uint32_t i = 0; i + 1 < block.instrs.size(); ++i) {
    g.add_edge(i, i + 1);
  }
  if (repeated && !block.instrs.empty()) {
    g.add_edge(static_cast<std::uint32_t>(block.instrs.size() - 1), 0);
  }
  return g;
}

}  // namespace swperf::analysis::dataflow
