// Generic worklist solver for forward/backward dataflow over a Cfg.
//
// The classic Kildall scheme: per-node IN states are joined from the OUT
// states of the flow predecessors, OUT = transfer(node, IN), and nodes whose
// OUT changed re-enqueue their flow successors until a fixpoint.  The solver
// is deliberately agnostic about the lattice — a State is any copyable
// value, the caller supplies
//
//   transfer(node, const State&) -> State     the node's effect
//   join_into(State& into, const State& from) -> bool   least upper bound,
//       returning whether `into` changed (the convergence test)
//
// and an initial/boundary state.  Termination is the caller's obligation
// (finite-height lattice or widening inside join_into); the solver adds a
// large iteration fuse so a broken lattice fails loudly instead of hanging.
//
// Used by liveness.cpp (backward, bitset lattice over virtual registers)
// and regions.cpp (forward, SPM range-set lattice over lowered programs).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "analysis/dataflow/cfg.h"
#include "sw/error.h"

namespace swperf::analysis::dataflow {

enum class Direction : std::uint8_t { kForward, kBackward };

template <typename State>
struct SolveResult {
  /// State at the flow entry of each node (before its transfer applies).
  std::vector<State> in;
  /// State after each node's transfer.
  std::vector<State> out;
  /// Transfer applications until the fixpoint — exposed so tests can pin
  /// that structured inputs converge in the expected number of passes.
  std::size_t iterations = 0;
};

template <typename State, typename TransferFn, typename JoinFn>
SolveResult<State> solve(const Cfg& cfg, Direction dir,
                         const State& boundary, const State& bottom,
                         TransferFn&& transfer, JoinFn&& join_into) {
  SolveResult<State> r;
  const std::size_t n = cfg.size();
  r.in.assign(n, bottom);
  r.out.assign(n, bottom);
  if (n == 0) return r;

  const bool fwd = dir == Direction::kForward;
  auto flow_preds = [&](std::uint32_t i) -> const std::vector<std::uint32_t>& {
    return fwd ? cfg.nodes[i].preds : cfg.nodes[i].succs;
  };
  auto flow_succs = [&](std::uint32_t i) -> const std::vector<std::uint32_t>& {
    return fwd ? cfg.nodes[i].succs : cfg.nodes[i].preds;
  };

  // Seed the worklist in flow order: RPO forward, reverse RPO backward —
  // near-optimal visit order for reducible graphs like ours.
  auto order = cfg.rpo();
  if (!fwd) std::reverse(order.begin(), order.end());
  std::deque<std::uint32_t> work(order.begin(), order.end());
  std::vector<bool> queued(n, true);

  // The boundary state flows into the graph's flow entries: node 0 for a
  // forward analysis, the exit nodes (no successors) for a backward one.
  // Joined rather than assigned, so an entry that is also a loop header (a
  // self-looping first op) still combines the boundary with its back edge.
  if (fwd) {
    join_into(r.in[0], boundary);
  } else {
    for (std::uint32_t i = 0; i < n; ++i) {
      if (cfg.nodes[i].succs.empty()) join_into(r.in[i], boundary);
    }
  }

  // Fuse: a finite-height lattice over these graphs converges in
  // O(nodes * height); anything past nodes^2 + a generous constant means a
  // non-monotone join and must fail loudly.
  const std::size_t fuse = 64 + n * (n + 4);
  while (!work.empty()) {
    SWPERF_CHECK(r.iterations < fuse,
                 "dataflow solver failed to converge after "
                     << r.iterations << " transfers over " << n
                     << " nodes (non-monotone lattice?)");
    const std::uint32_t i = work.front();
    work.pop_front();
    queued[i] = false;

    for (const std::uint32_t p : flow_preds(i)) {
      join_into(r.in[i], r.out[p]);
    }
    State next = transfer(i, r.in[i]);
    ++r.iterations;
    const bool changed = join_into(r.out[i], next);
    if (changed) {
      for (const std::uint32_t s : flow_succs(i)) {
        if (!queued[s]) {
          queued[s] = true;
          work.push_back(s);
        }
      }
    }
  }
  return r;
}

}  // namespace swperf::analysis::dataflow
