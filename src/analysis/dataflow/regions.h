// SPM region analysis over lowered per-CPE programs.
//
// Lowering annotates every DMA and compute op with the SPM byte ranges it
// touches (sim::SpmNote).  This module turns those annotations into flow
// facts via the worklist solver:
//
//   * a forward MUST analysis of the bytes holding valid data ("defined"):
//     a blocking DMA get defines its destination immediately, an async get
//     defines it at the matching dma_wait, a compute write defines it as it
//     executes;
//   * a backward MAY analysis of the bytes read later (compute reads and
//     DMA-put sources), which exposes dead stores;
//   * the exact in-flight window of every async DMA (issue -> wait), against
//     which concurrent compute accesses and other transfers are checked for
//     overlap — the double-buffer correctness argument of the paper's
//     Fig. 5, made mechanical.
//
// The results surface as RegionFindings; the checker layer (swa_checks.cpp)
// maps each kind to an SWA diagnostic code, and analysis::Legality exports
// the aggregate facts (regions disjoint, protocol clean) to the tuners.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/program.h"

namespace swperf::analysis::dataflow {

/// Sorted, disjoint, merged set of half-open SPM byte ranges — the lattice
/// element of the region analyses (union for MAY, intersection for MUST).
struct RangeSet {
  std::vector<sim::SpmRange> spans;

  /// The full addressable range (the MUST-analysis identity element).
  static RangeSet all();

  bool empty() const { return spans.empty(); }
  void add(sim::SpmRange r);
  bool intersects(sim::SpmRange r) const;
  /// True when every byte of `r` is in the set.
  bool covers(sim::SpmRange r) const;
  /// First overlapping sub-range with `r` (empty range when disjoint).
  sim::SpmRange first_overlap(sim::SpmRange r) const;

  /// Union-assign; true when this set changed.
  bool union_with(const RangeSet& o);
  /// Intersection-assign; true when this set changed.
  bool intersect_with(const RangeSet& o);
  bool operator==(const RangeSet& o) const;

  std::string to_string() const;
};

/// Compute phases (maximal runs of compute/gload ops) a healthy
/// double-buffer rotation may hold one async DMA across: a copy-out issued
/// after phase i is drained right after phase i+2 at the latest (Fig. 5).
inline constexpr int kMaxFlightPhases = 2;

/// One fact the region analysis established; swa_checks.cpp maps kinds to
/// diagnostic codes.
struct RegionFinding {
  enum class Kind : std::uint8_t {
    /// Compute touches bytes an in-flight DMA get is still landing into
    /// (reads stale data or races the transfer with a write).  Put sources
    /// are treated as captured at issue — the lowering's late out-waits
    /// (drained together with the next same-parity out issue) are part of
    /// the modeled Fig. 5 protocol, not a defect. -> SWA001
    kComputeDmaOverlap,
    /// Bytes written (compute store or landed get) are never read again
    /// before program end. -> SWA003
    kDeadStore,
    /// Two concurrently in-flight transfers overlap, at least one writing
    /// SPM. -> SWA004
    kDmaDmaOverlap,
    /// Bytes read that no definition reaches (not defined, not pending in
    /// any in-flight get). -> SWA005
    kUndefinedRead,
    /// An async DMA held in flight across more than kMaxFlightPhases
    /// compute phases: the handle leaks across the pipeline loop. -> SWA008
    kHandleLeak,
  };

  Kind kind = Kind::kComputeDmaOverlap;
  std::size_t op = 0;     // op index the finding anchors to
  int handle = -1;        // in-flight handle involved (-1: blocking/none)
  int other_handle = -1;  // second handle for kDmaDmaOverlap
  sim::SpmRange range;    // offending byte range
  int phases = 0;         // compute phases crossed (kHandleLeak)
};

/// Region facts of one CPE program.
struct RegionFacts {
  /// False when the DMA handle protocol itself is broken (double issue,
  /// stray wait, out-of-range handle): the SWP* codes own those defects and
  /// region windows are not well defined, so no findings are produced.
  bool protocol_ok = true;
  /// True when the program carries SPM annotations at all; hand-built
  /// programs without notes produce no region findings.
  bool has_notes = false;
  std::vector<RegionFinding> findings;
  /// Transfer applications of the two solver runs (must-defined + may-read).
  std::size_t solver_iterations = 0;
};

/// Runs the region analyses over one CPE program.
RegionFacts analyze_regions(const sim::CpeProgram& prog);

}  // namespace swperf::analysis::dataflow
