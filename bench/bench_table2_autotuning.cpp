// Table II: static auto-tuning (model-based) vs dynamic auto-tuning
// (empirical) on the five loop-rich Rodinia kernels.
//
// Both tuners search the same tile x unroll space.  Reported, like the
// paper: the speedup of each tuner's pick over the default parameter
// setting, the hardware-equivalent tuning time of each campaign, and the
// savings factor (paper: 26.3x - 43.0x with < 6% quality loss; the two
// tuners picked identical variants on 3 of 5 kernels).
//
// Hardware-equivalent cost model: every variant must be compiled for both
// tuners (the static analysis reads the compiler's annotated assembly);
// the dynamic tuner additionally runs each variant `runs` times, each run
// paying job-launch/data-staging overhead plus the kernel time times the
// application's kernel-invocation count.  We also report the *actual host
// time* of both tuners in this reproduction.
#include <map>

#include "kernels/suite.h"
#include "tuning/tuner.h"

#include "bench_common.h"

int main() {
  using swperf::sw::Table;
  namespace bench = swperf::bench;
  namespace tuning = swperf::tuning;
  const auto arch = swperf::sw::ArchParams::sw26010();

  bench::print_header("Static vs dynamic auto-tuning",
                      "Table II (Section V-D)");

  // Kernel-invocation counts per application run (convergence loops /
  // time-stepping; chosen to the order of magnitude of the Rodinia apps).
  const std::map<std::string, std::uint64_t> invocations{
      {"kmeans", 8000},  {"cfd", 14000},     {"lud", 20000},
      {"hotspot", 40000}, {"backprop", 9000},
  };

  Table t("Table II — auto-tuning results");
  t.header({"kernel", "data size", "variants", "speedup(static)",
            "speedup(dynamic)", "quality loss", "tune(dyn)", "tune(static)",
            "savings", "host(dyn)", "host(static)", "same pick"});

  int same_picks = 0;
  for (const auto& name : swperf::kernels::table2_kernels()) {
    const auto spec =
        swperf::kernels::make(name, swperf::kernels::Scale::kFull);
    const auto space = tuning::SearchSpace::standard(spec.desc, arch);

    tuning::TuningCosts costs;
    costs.compile_seconds = 5.0;
    costs.runs_per_variant = 5;
    costs.program_overhead_seconds = 20.0;
    costs.kernel_invocations = invocations.at(name);

    const auto rs = tuning::StaticTuner(arch, costs).tune(spec.desc, space);
    const auto re =
        tuning::EmpiricalTuner(arch, costs).tune(spec.desc, space);

    const auto naive = bench::evaluate(spec.desc, spec.naive, arch);
    const double naive_cycles = naive.actual_cycles();
    const bool same = rs.best.to_string() == re.best.to_string();
    same_picks += same ? 1 : 0;

    const std::string size =
        std::to_string(spec.desc.n_outer) + "x" +
        std::to_string(spec.desc.inner_iters);
    t.row({name, size, std::to_string(rs.variants),
           Table::times(naive_cycles / rs.best_measured_cycles),
           Table::times(naive_cycles / re.best_measured_cycles),
           Table::pct(rs.best_measured_cycles / re.best_measured_cycles -
                      1.0),
           Table::num(re.tuning_seconds / 3600.0, 2) + "h",
           Table::num(rs.tuning_seconds / 3600.0, 2) + "h",
           Table::times(re.tuning_seconds / rs.tuning_seconds, 1),
           Table::num(re.host_seconds, 2) + "s",
           Table::num(rs.host_seconds, 2) + "s", same ? "yes" : "no"});
  }
  t.print(std::cout);
  std::cout << "identical picks on " << same_picks
            << "/5 kernels (paper: 3/5, differing within 6%)\n"
            << "(paper: speedups 1.67x-3.77x, savings 26.3x-43.0x)\n";
  return 0;
}
