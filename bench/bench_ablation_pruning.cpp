// Search-space pruning (Section VI-B: pruning methods "can benefit both
// the static and dynamic methods").
//
// The model-derived lower bound (bandwidth floor vs issue floor) drops
// variants that cannot win before either tuner compiles them; the pick
// must be unchanged.
#include <algorithm>

#include "kernels/suite.h"
#include "tuning/prune.h"
#include "tuning/tuner.h"

#include "bench_common.h"

int main() {
  using swperf::sw::Table;
  namespace bench = swperf::bench;
  namespace tuning = swperf::tuning;
  const auto arch = swperf::sw::ArchParams::sw26010();

  bench::print_header("Lower-bound search-space pruning",
                      "complements Table II (Section VI-B)");

  Table t("Pruning on the Table II kernels (slack 1.3)");
  t.header({"kernel", "variants", "kept", "pruned", "pick unchanged",
            "compile time saved"});
  for (const auto& name : swperf::kernels::table2_kernels()) {
    const auto spec =
        swperf::kernels::make(name, swperf::kernels::Scale::kFull);
    const auto space = tuning::SearchSpace::standard(spec.desc, arch);
    const auto all = space.enumerate(spec.desc, arch);
    tuning::PruneStats stats;
    const auto kept = tuning::prune_variants(spec.desc, all, arch, 1.3,
                                             &stats);

    const tuning::StaticTuner tuner(arch);
    const auto full_pick = tuner.tune(spec.desc, space);
    tuning::SearchSpace pruned_space = space;
    // Re-tune over only the kept variants via a filtered space.
    pruned_space.tiles.clear();
    pruned_space.unrolls.clear();
    for (const auto& v : kept) {
      pruned_space.tiles.push_back(v.tile);
      pruned_space.unrolls.push_back(v.unroll);
    }
    std::sort(pruned_space.tiles.begin(), pruned_space.tiles.end());
    pruned_space.tiles.erase(
        std::unique(pruned_space.tiles.begin(), pruned_space.tiles.end()),
        pruned_space.tiles.end());
    std::sort(pruned_space.unrolls.begin(), pruned_space.unrolls.end());
    pruned_space.unrolls.erase(
        std::unique(pruned_space.unrolls.begin(),
                    pruned_space.unrolls.end()),
        pruned_space.unrolls.end());
    const auto pruned_pick = tuner.tune(spec.desc, pruned_space);

    t.row({name, std::to_string(stats.considered),
           std::to_string(stats.kept), std::to_string(stats.pruned()),
           pruned_pick.best_measured_cycles <=
                   full_pick.best_measured_cycles * 1.001
               ? "yes"
               : "no",
           Table::num(5.0 * static_cast<double>(stats.pruned()), 0) + " s"});
  }
  t.print(std::cout);
  std::cout << "(bound soundness — never above the model or the simulator "
               "— is property-tested in tests/tuning/prune_test.cpp)\n";
  return 0;
}
