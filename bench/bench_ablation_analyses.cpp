// Section IV analyses: the closed-form optimization-effect formulas
// (Eq. 13, 14, 15) against measured (simulated) deltas.
#include "kernels/bfs.h"
#include "kernels/kmeans.h"
#include "kernels/nbody.h"
#include "kernels/pathfinder.h"
#include "model/analysis.h"

#include "bench_common.h"

namespace {

using swperf::sw::Table;
namespace bench = swperf::bench;

void eq13_granularity(const swperf::sw::ArchParams& arch) {
  // K-Means: halve the request granularity, compare Eq. 13's saving with
  // the measured delta.
  const auto spec = swperf::kernels::kmeans();
  Table t("Eq. 13 — smaller DMA granularity saving (kmeans)");
  t.header({"tile before", "tile after", "Eq.13 saving us", "measured us",
            "measured saving us"});
  for (const std::uint64_t tile : {256u, 128u, 64u}) {
    auto before = spec.tuned;
    before.tile = tile;
    auto after = before;
    after.tile = tile / 2;
    const auto eb = bench::evaluate(spec.desc, before, arch);
    const auto ea = bench::evaluate(spec.desc, after, arch);
    const double closed = swperf::model::granularity_saving(
        eb.predicted, eb.lowered.summary.n_dma_reqs(),
        2 * eb.lowered.summary.n_dma_reqs());
    t.row({std::to_string(tile), std::to_string(tile / 2),
           Table::num(swperf::sw::cycles_to_us(closed, arch.freq_ghz), 1),
           Table::num(ea.actual_us(arch), 1),
           Table::num(eb.actual_us(arch) - ea.actual_us(arch), 1)});
  }
  t.print(std::cout);
}

void eq14_double_buffer(const swperf::sw::ArchParams& arch) {
  const auto spec = swperf::kernels::nbody();
  auto plain = spec.tuned;
  auto db = spec.tuned;
  db.double_buffer = true;
  const auto ep = bench::evaluate(spec.desc, plain, arch);
  const auto ed = bench::evaluate(spec.desc, db, arch);
  Table t("Eq. 14 — double-buffer saving bound (nbody)");
  t.header({"quantity", "cycles"});
  t.row({"T_DMA / NG_DMA (first term)",
         Table::num(ep.predicted.t_dma / ep.predicted.ng_dma, 0)});
  t.row({"T_comp - T_overlap (second term)",
         Table::num(ep.predicted.t_comp - ep.predicted.t_overlap, 0)});
  t.row({"Eq.14 saving = min(...)",
         Table::num(swperf::model::double_buffer_saving(ep.predicted), 0)});
  t.row({"measured saving",
         Table::num(ep.actual_cycles() - ed.actual_cycles(), 0)});
  t.print(std::cout);
}

void eq15_fewer_cpes(const swperf::sw::ArchParams& arch) {
  // Pathfinder with deliberately small column tiles: transaction waste
  // makes T_DMA dominate, so fewer CPEs (with proportionally larger
  // chunks) win — the Section IV-3 effect on a Rodinia kernel.
  const auto spec = swperf::kernels::pathfinder();
  Table t("Eq. 15 — fewer active CPEs under transaction waste (pathfinder)");
  t.header({"#CPEs", "tile", "DMA efficiency", "actual us", "pred us"});
  for (const auto& [cpes, tile] :
       std::vector<std::pair<std::uint32_t, std::uint64_t>>{
           {64, 8}, {48, 11}, {32, 16}, {16, 32}}) {
    auto params = spec.tuned;
    params.requested_cpes = cpes;
    params.tile = tile;
    const auto e = bench::evaluate(spec.desc, params, arch);
    t.row({std::to_string(cpes), std::to_string(tile),
           Table::num(e.lowered.summary.dma_efficiency(), 2),
           Table::num(e.actual_us(arch), 1),
           Table::num(e.predicted_us(arch), 1)});
  }
  t.print(std::cout);
  std::cout << "(Eq.15: the benefit appears only while T_DMA > T_comp)\n";
}

void gload_coalescing(const swperf::sw::ArchParams& arch) {
  // Section V-B's prescription for irregular kernels: coalesce memory
  // accesses. BFS's sorted neighbour lists pack 4 adjacent 8-byte loads
  // into one 32-byte Gload on the coalesceable fraction.
  const auto spec = swperf::kernels::bfs();
  auto plain = spec.tuned;
  auto coal = spec.tuned;
  coal.coalesce_gloads = true;
  const auto ep = bench::evaluate(spec.desc, plain, arch);
  const auto ec = bench::evaluate(spec.desc, coal, arch);
  Table t("Gload coalescing on bfs (coalesceable fraction 0.6)");
  t.header({"variant", "gloads/CPE", "actual us", "pred us", "error"});
  t.row({"plain", std::to_string(ep.lowered.summary.n_gloads),
         Table::num(ep.actual_us(arch), 1),
         Table::num(ep.predicted_us(arch), 1),
         Table::pct(std::abs(ep.error()))});
  t.row({"coalesced", std::to_string(ec.lowered.summary.n_gloads),
         Table::num(ec.actual_us(arch), 1),
         Table::num(ec.predicted_us(arch), 1),
         Table::pct(std::abs(ec.error()))});
  t.print(std::cout);
  std::cout << "speedup from coalescing: "
            << Table::times(ep.actual_cycles() / ec.actual_cycles())
            << "\n";
}

void advisor_demo(const swperf::sw::ArchParams& arch) {
  const swperf::model::PerfModel m(arch);
  const auto spec = swperf::kernels::kmeans();
  auto params = spec.tuned;
  params.tile = 128;
  Table t("Advisor output (kmeans @ tile=128)");
  t.header({"optimization", "closed-form us", "full-model us", "saving"});
  for (const auto& a : swperf::model::advise(m, spec.desc, params)) {
    t.row({a.optimization,
           Table::num(swperf::sw::cycles_to_us(a.closed_form_saving,
                                               arch.freq_ghz),
                      1),
           Table::num(swperf::sw::cycles_to_us(a.model_saving,
                                               arch.freq_ghz),
                      1),
           Table::pct(a.saving_fraction)});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  const auto arch = swperf::sw::ArchParams::sw26010();
  bench::print_header("Closed-form optimization analyses",
                      "Section IV (Eq. 13-15)");
  eq13_granularity(arch);
  eq14_double_buffer(arch);
  eq15_fewer_cpes(arch);
  gload_coalescing(arch);
  advisor_demo(arch);
  return 0;
}
