// google-benchmark micro benchmarks of the library itself: how fast the
// static model evaluates (the quantity that makes static tuning 26-43x
// cheaper), and the costs of its supporting passes.
#include <benchmark/benchmark.h>

#include "isa/reorder.h"
#include "isa/schedule.h"
#include "isa/unroll.h"
#include "kernels/kmeans.h"
#include "kernels/suite.h"
#include "model/model.h"
#include "pipeline/session.h"
#include "sim/machine.h"
#include "tuning/tuner.h"

namespace {

using namespace swperf;  // NOLINT: bench-local convenience

const sw::ArchParams kArch = sw::ArchParams::sw26010();

void BM_ModelPredict(benchmark::State& state) {
  const auto spec = kernels::kmeans(kernels::Scale::kSmall);
  pipeline::Session session(kArch);
  const auto& lowered = session.lower(spec.desc, spec.tuned);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.model().predict(lowered.summary).t_total);
  }
}
BENCHMARK(BM_ModelPredict);

void BM_Lowering(benchmark::State& state) {
  // Cold pipeline lowering: a fresh Session each iteration so the memo
  // table never hits (this measures lower(), not the cache).
  const auto spec = kernels::kmeans(kernels::Scale::kSmall);
  for (auto _ : state) {
    pipeline::Session session(kArch);
    benchmark::DoNotOptimize(
        session.lower(spec.desc, spec.tuned).summary.comp_cycles);
  }
}
BENCHMARK(BM_Lowering);

void BM_StaticSchedule(benchmark::State& state) {
  const auto spec = kernels::kmeans(kernels::Scale::kSmall);
  const auto body = isa::unroll(
      spec.desc.body, isa::UnrollOptions{static_cast<int>(state.range(0)),
                                         true, true});
  for (auto _ : state) {
    isa::LoopSchedule ls(body, kArch);
    benchmark::DoNotOptimize(ls.steady_ii());
  }
}
BENCHMARK(BM_StaticSchedule)->Arg(1)->Arg(4)->Arg(8);

void BM_ListScheduler(benchmark::State& state) {
  const auto spec = kernels::kmeans(kernels::Scale::kSmall);
  const auto body = isa::unroll(
      spec.desc.body, isa::UnrollOptions{static_cast<int>(state.range(0)),
                                         true, true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        isa::reorder_for_ilp(body, kArch).instrs.size());
  }
}
BENCHMARK(BM_ListScheduler)->Arg(1)->Arg(4)->Arg(8);

void BM_SimulateKernel(benchmark::State& state) {
  const auto spec = kernels::kmeans(kernels::Scale::kSmall);
  pipeline::Session session(kArch);
  const auto& lowered = session.lower(spec.desc, spec.tuned);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate(lowered.sim_config, lowered.binary, lowered.programs)
            .total_ticks);
  }
  // Report simulated cycles per host second.
  const auto r =
      sim::simulate(lowered.sim_config, lowered.binary, lowered.programs);
  state.counters["sim_cycles"] =
      benchmark::Counter(r.total_cycles(), benchmark::Counter::kDefaults);
}
BENCHMARK(BM_SimulateKernel);

void BM_StaticTunerCampaign(benchmark::State& state) {
  const auto spec = kernels::kmeans(kernels::Scale::kSmall);
  const auto space = tuning::SearchSpace::standard(spec.desc, kArch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tuning::StaticTuner(kArch).tune(spec.desc, space).variants);
  }
}
BENCHMARK(BM_StaticTunerCampaign);

void BM_EmpiricalTunerCampaign(benchmark::State& state) {
  const auto spec = kernels::kmeans(kernels::Scale::kSmall);
  const auto space = tuning::SearchSpace::standard(spec.desc, kArch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tuning::EmpiricalTuner(kArch).tune(spec.desc, space).variants);
  }
}
BENCHMARK(BM_EmpiricalTunerCampaign);

}  // namespace

BENCHMARK_MAIN();
