// Figure 7: the effect of DMA request granularity on K-Means.
//
// (a) Fixed 256 data elements per CPE; the number of elements per DMA
//     request sweeps 256 -> 4. Smaller requests increase the overlapable
//     share of T_DMA (Eq. 8/13) — the paper measured up to 20% speedup at
//     granularity 32 — until, below 16 elements/request, compiler-
//     generated Gloads appear and the total time shoots back up.
// (b) Fixed granularity of 256 elements; the number of data partitions per
//     CPE sweeps 1 -> 32 (input size grows). More requests per CPE mean
//     more overlap: normalized execution time decreases.
#include "kernels/kmeans.h"

#include "bench_common.h"

namespace {

using swperf::sw::Table;
namespace bench = swperf::bench;

void part_a(const swperf::sw::ArchParams& arch) {
  // 64 CPEs x 256 elements each.
  swperf::kernels::KmeansConfig cfg;
  cfg.n_points = 64 * 256;
  const auto spec = swperf::kernels::kmeans_cfg(cfg);

  Table t("Fig. 7(a) — fixed 256 elements/CPE, granularity sweep");
  t.header({"elems/req", "#DMA_reqs/CPE", "gloads/CPE", "actual us",
            "pred us", "norm(actual)", "error"});
  double base = 0.0;
  for (const std::uint64_t gran : {256u, 128u, 64u, 32u, 16u, 8u, 4u}) {
    auto params = spec.tuned;
    params.tile = gran;
    const auto e = bench::evaluate(spec.desc, params, arch);
    if (base == 0.0) base = e.actual_cycles();
    t.row({std::to_string(gran),
           std::to_string(e.lowered.summary.n_dma_reqs()),
           std::to_string(e.lowered.summary.n_gloads),
           Table::num(e.actual_us(arch), 1),
           Table::num(e.predicted_us(arch), 1),
           Table::num(e.actual_cycles() / base, 3),
           Table::pct(std::abs(e.error()))});
  }
  t.print(std::cout);
  std::cout << "(paper: fastest near 32 elems/req, ~20% over 256; sharp "
               "Gload-driven increase below 16)\n";
}

void part_b(const swperf::sw::ArchParams& arch) {
  Table t("Fig. 7(b) — fixed granularity 256, partitions/CPE sweep");
  t.header({"partitions/CPE", "n_points", "actual us", "us/partition",
            "normalized", "error"});
  double base = 0.0;
  for (const std::uint64_t parts : {1u, 2u, 4u, 8u, 16u, 32u}) {
    swperf::kernels::KmeansConfig cfg;
    cfg.n_points = 64 * 256 * parts;
    const auto spec = swperf::kernels::kmeans_cfg(cfg);
    auto params = spec.tuned;
    params.tile = 256;
    const auto e = bench::evaluate(spec.desc, params, arch);
    const double per_part =
        e.actual_us(arch) / static_cast<double>(parts);
    if (base == 0.0) base = per_part;
    t.row({std::to_string(parts), std::to_string(cfg.n_points),
           Table::num(e.actual_us(arch), 1), Table::num(per_part, 2),
           Table::num(per_part / base, 3),
           Table::pct(std::abs(e.error()))});
  }
  t.print(std::cout);
  std::cout << "(paper: normalized time decreases as partitions/CPE grow — "
               "more requests, more overlap)\n";
}

}  // namespace

int main() {
  const auto arch = swperf::sw::ArchParams::sw26010();
  bench::print_header("DMA request granularity effects (K-Means)",
                      "Figure 7(a)/(b) (Sections IV-1, V-C1)");
  part_a(arch);
  part_b(arch);
  return 0;
}
