// Ablation: which terms of the model buy its accuracy.
//
// The paper argues its precision comes from (a) modelling contention via
// memory request transactions and bandwidth, and (b) the virtual-grouping
// overlap treatment (MRP/NG). Disabling each term and re-running the
// Fig. 6 accuracy study quantifies that claim.
#include "kernels/suite.h"

#include "bench_common.h"

int main() {
  using swperf::sw::Table;
  namespace bench = swperf::bench;
  namespace model = swperf::model;
  const auto arch = swperf::sw::ArchParams::sw26010();

  bench::print_header("Model-term ablations over the full suite",
                      "design ablation for Section III");

  struct Variant {
    const char* name;
    model::ModelOptions opts;
  };
  const Variant variants[] = {
      {"full model", {}},
      {"no overlap (Eq.7-12 off)", {.overlap = false}},
      {"no virtual grouping (GPU-style)", {.virtual_grouping = false}},
      {"no bandwidth contention",
       {.overlap = true, .virtual_grouping = true,
        .bandwidth_contention = false}},
  };

  Table t("Prediction error by model variant");
  t.header({"variant", "avg |error|", "max |error|"});
  for (const auto& v : variants) {
    swperf::sw::ErrorAccumulator acc;
    for (const auto& spec :
         swperf::kernels::fig6_suite(swperf::kernels::Scale::kFull)) {
      const auto e = bench::evaluate(spec.desc, spec.tuned, arch, v.opts);
      acc.add(e.predicted.t_total, e.actual_cycles());
    }
    t.row({v.name, Table::pct(acc.mean_error()),
           Table::pct(acc.max_error())});
  }
  t.print(std::cout);
  std::cout << "(every disabled term should degrade accuracy, motivating "
               "the paper's design)\n";
  return 0;
}
