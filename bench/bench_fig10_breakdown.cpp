// Figure 10: measured execution-time breakdown of the WRF kernels as
// #active_CPEs varies.
//
// The simulator's per-CPE accounting provides what the paper measured on
// hardware: computation time vs DMA wait (and Gloads, none for WRF).  The
// dynamics kernel shows T_DMA growing with the CPE count (transaction
// waste) against shrinking T_comp — the trade-off behind Fig. 9's optimum.
#include "kernels/wrf.h"

#include "bench_common.h"

namespace {

using swperf::sw::Table;
namespace bench = swperf::bench;

template <typename Factory>
void breakdown(const char* title, Factory make_spec,
               const swperf::sw::ArchParams& arch) {
  Table t(title);
  t.header({"#active_CPEs", "comp us", "dma wait us", "total us",
            "comp share", "mem idle share"});
  for (const std::uint32_t cpes : {8u, 16u, 32u, 48u, 64u, 96u, 128u}) {
    const auto spec = make_spec(cpes);
    const auto e = bench::evaluate(spec.desc, spec.tuned, arch);
    const double comp = swperf::sw::cycles_to_us(
        e.actual.avg_comp_cycles(), arch.freq_ghz);
    const double dma = swperf::sw::cycles_to_us(
        e.actual.avg_dma_wait_cycles(), arch.freq_ghz);
    const double total = e.actual_us(arch);
    const double idle =
        static_cast<double>(e.actual.mem_idle_ticks) /
        (static_cast<double>(e.actual.total_ticks) *
         static_cast<double>(e.lowered.sim_config.core_groups));
    t.row({std::to_string(cpes), Table::num(comp, 1), Table::num(dma, 1),
           Table::num(total, 1), Table::pct(comp / total),
           Table::pct(idle)});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  const auto arch = swperf::sw::ArchParams::sw26010();
  bench::print_header("Measured time breakdown across #active_CPEs",
                      "Figure 10 (Section V-C3)");

  breakdown("Fig. 10 (left) — WRF dynamics breakdown",
            [](std::uint32_t c) { return swperf::kernels::wrf_dynamics(c); },
            arch);
  std::cout << "(paper: T_comp shrinks, T_DMA grows with more CPEs)\n\n";

  breakdown("Fig. 10 (right) — WRF physics breakdown",
            [](std::uint32_t c) { return swperf::kernels::wrf_physics(c); },
            arch);
  std::cout << "(paper: computation dominates at every CPE count)\n";
  return 0;
}
