// Event-core throughput bench: fast engine vs. reference engine, plus
// tuning-campaign throughput with the two-level evaluation cache.
//
// Unlike the paper-figure benches this one measures *this repo's own*
// simulator, not the modeled machine: it exists to pin the speedup of the
// fast-path event core (DMA trains + bucketed queue + uncontended
// fast-forward, src/sim/machine.cpp) and of pre-lowering memoization
// (src/tuning/eval_cache.h) against the pre-fast-path baseline that
// sim::simulate_reference() preserves.  docs/PERF.md documents the
// methodology; bench/BENCH_sim.json checks in one measured run.
//
// Modes:
//   bench_sim_throughput                 full measurement, human-readable
//   bench_sim_throughput --out FILE      ... and write the JSON record
//   bench_sim_throughput --smoke         seconds-fast correctness pass:
//                                        bit-identity vs. the reference
//                                        engine, counters nonzero, warm
//                                        cache skips every lowering
//   bench_sim_throughput --check FILE    validate FILE against the
//                                        BENCH_sim.json schema
//   bench_sim_throughput --smoke-contended --check FILE
//                                        contended-regime floor: the
//                                        checked-in record claims >= 2.5x
//                                        on dma_train_contended, and a
//                                        live scaled-down contended run
//                                        holds a conservative 1.5x with
//                                        batching + absorption engaged
// --smoke and --check compose; the perf_smoke ctest runs both, and
// perf_smoke_sim_contended runs --smoke-contended.
//
// Throughput convention: "events/sec" for BOTH engines uses the
// *reference* engine's event count as the numerator (divided by each
// engine's own wall time), so fast/reference events-per-sec ratios equal
// wall-clock speedup.  Each engine's own events_popped is recorded too —
// the fast engine pops far fewer events for the same simulated work, which
// is the point.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "kernels/suite.h"
#include "mem/request.h"
#include "serde/json.h"
#include "sim/machine.h"
#include "sim/program.h"
#include "tuning/space.h"
#include "tuning/tuner.h"

namespace {

using namespace swperf;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---- Workloads -------------------------------------------------------------

struct Workload {
  std::string name;
  std::string description;
  sim::SimConfig cfg;
  sim::KernelBinary binary;
  std::vector<sim::CpeProgram> programs;
};

/// One CPE issuing `requests` blocking DMA reads of `kb` KB each.  With a
/// single stream the memory controller is uncontended, so the fast engine
/// grants every train analytically (one event per request instead of ~4
/// heap operations per 256-B transaction in the reference engine).
Workload dma_train_uncontended(std::uint64_t requests, std::uint64_t kb) {
  Workload w;
  w.name = "dma_train_uncontended";
  std::ostringstream d;
  d << "1 CPE, " << requests << " blocking " << kb
    << " KB DMA reads (fast-forward fires on every train)";
  w.description = d.str();
  mem::DmaRequest req;
  req.segs = {{kb * 1024, 1}};
  req.dir = mem::Direction::kRead;
  sim::CpeProgram p;
  for (std::uint64_t i = 0; i < requests; ++i) p.dma(req);
  w.programs.push_back(std::move(p));
  return w;
}

/// `cpes` CPEs issuing interleaved blocking DMA reads.  Streams overlap at
/// the controller, so fast-forward rarely fires; the contended gain comes
/// from train events, the bucketed queue, batched grants and train-arrival
/// absorption.
Workload dma_train_contended(std::uint32_t cpes, std::uint64_t requests,
                             std::uint64_t kb) {
  Workload w;
  w.name = "dma_train_contended";
  std::ostringstream d;
  d << cpes << " CPEs x " << requests << " blocking " << kb
    << " KB DMA reads (overlapping streams, fast-forward mostly guarded "
       "off)";
  w.description = d.str();
  mem::DmaRequest req;
  req.segs = {{kb * 1024, 1}};
  req.dir = mem::Direction::kRead;
  for (std::uint32_t c = 0; c < cpes; ++c) {
    sim::CpeProgram p;
    p.delay(c * 37);  // stagger starts so arrivals interleave, not stack
    for (std::uint64_t i = 0; i < requests; ++i) p.dma(req);
    w.programs.push_back(std::move(p));
  }
  return w;
}

/// Contended with mixed transaction counts: requests cycle through 2, 8
/// and 16 KB, so train lengths (and the absorption horizons they feed)
/// keep changing instead of settling into one steady pattern.
Workload dma_train_contended_mixed(std::uint32_t cpes,
                                   std::uint64_t requests) {
  Workload w;
  w.name = "dma_train_contended_mixed";
  std::ostringstream d;
  d << cpes << " CPEs x " << requests
    << " blocking DMA reads cycling 2/8/16 KB (mixed train lengths)";
  w.description = d.str();
  const std::uint64_t kbs[] = {2, 8, 16};
  for (std::uint32_t c = 0; c < cpes; ++c) {
    sim::CpeProgram p;
    p.delay(c * 37);
    for (std::uint64_t i = 0; i < requests; ++i) {
      mem::DmaRequest req;
      req.segs = {{kbs[(c + i) % 3] * 1024, 1}};
      req.dir = mem::Direction::kRead;
      p.dma(req);
    }
    w.programs.push_back(std::move(p));
  }
  return w;
}

/// Whole-chip cross-section interference: 4 CGs' worth of CPEs whose
/// transactions round-robin over all four controllers at the reduced
/// cross-section efficiency.  The single-controller fast paths (train
/// fast-forward, batching, absorption) are guarded off here, so this pins
/// the multi-controller gain: service slots + the bucketed queue.
Workload dma_train_cross_section(std::uint64_t requests, std::uint64_t kb) {
  Workload w;
  w.name = "dma_train_cross_section";
  std::ostringstream d;
  d << "4 CGs x 64 CPEs x " << requests << " blocking " << kb
    << " KB DMA reads (cross-section memory, round-robin controllers)";
  w.description = d.str();
  w.cfg.core_groups = 4;
  mem::DmaRequest req;
  req.segs = {{kb * 1024, 1}};
  req.dir = mem::Direction::kRead;
  for (std::uint32_t c = 0; c < 256; ++c) {
    sim::CpeProgram p;
    p.delay(c * 11);
    for (std::uint64_t i = 0; i < requests; ++i) p.dma(req);
    w.programs.push_back(std::move(p));
  }
  return w;
}

// ---- Engine measurement ----------------------------------------------------

struct EngineRun {
  double host_seconds = 0.0;
  sim::SimResult result;
};

template <typename SimulateFn>
EngineRun time_engine(const Workload& w, SimulateFn&& simulate, int reps) {
  EngineRun best;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    sim::SimResult res = simulate(w.cfg, w.binary, w.programs);
    const double s = seconds_since(t0);
    if (r == 0 || s < best.host_seconds) {
      best.host_seconds = s;
      best.result = std::move(res);
    }
  }
  return best;
}

serde::Json engine_json(const EngineRun& run, std::uint64_t ref_events) {
  serde::Json j = serde::Json::object();
  j.set("host_seconds", run.host_seconds);
  j.set("events_popped", run.result.counters.events_popped);
  j.set("events_per_sec",
        run.host_seconds > 0.0
            ? static_cast<double>(ref_events) / run.host_seconds
            : 0.0);
  j.set("heap_pushes_avoided", run.result.counters.heap_pushes_avoided);
  j.set("dma_trains", run.result.counters.dma_trains);
  j.set("trains_fast_forwarded", run.result.counters.trains_fast_forwarded);
  j.set("ff_transactions", run.result.counters.ff_transactions);
  j.set("batched_grants", run.result.counters.batched_grants);
  j.set("batched_transactions", run.result.counters.batched_transactions);
  j.set("train_arrivals_absorbed",
        run.result.counters.train_arrivals_absorbed);
  j.set("mc_enqueued", run.result.counters.mc_enqueued);
  j.set("mc_max_queued", run.result.counters.mc_max_queued);
  return j;
}

/// Bit-identity between the two engines on everything but counters.
bool same_result(const sim::SimResult& a, const sim::SimResult& b,
                 std::string* why) {
  auto fail = [&](const char* what) {
    if (why != nullptr) *why = what;
    return false;
  };
  if (a.total_ticks != b.total_ticks) return fail("total_ticks");
  if (a.transactions != b.transactions) return fail("transactions");
  if (a.mem_busy_ticks != b.mem_busy_ticks) return fail("mem_busy_ticks");
  if (a.mem_idle_ticks != b.mem_idle_ticks) return fail("mem_idle_ticks");
  if (a.cpes.size() != b.cpes.size()) return fail("cpes.size");
  for (std::size_t i = 0; i < a.cpes.size(); ++i) {
    const sim::CpeStats& x = a.cpes[i];
    const sim::CpeStats& y = b.cpes[i];
    if (x.finish != y.finish || x.comp != y.comp ||
        x.dma_wait != y.dma_wait || x.gload_wait != y.gload_wait ||
        x.barrier_wait != y.barrier_wait ||
        x.dma_requests != y.dma_requests ||
        x.gload_requests != y.gload_requests) {
      return fail("cpes[i]");
    }
  }
  return true;
}

serde::Json measure_workload(const Workload& w, int reps, bool* ok) {
  EngineRun ref = time_engine(w, sim::simulate_reference, reps);
  EngineRun fast = time_engine(w, sim::simulate, reps);

  std::string why;
  if (!same_result(ref.result, fast.result, &why)) {
    std::fprintf(stderr, "FAIL %s: engines disagree on %s\n", w.name.c_str(),
                 why.c_str());
    *ok = false;
  }

  const std::uint64_t ref_events = ref.result.counters.events_popped;
  const double speedup = fast.host_seconds > 0.0
                             ? ref.host_seconds / fast.host_seconds
                             : 0.0;
  std::printf("%-24s %12llu ref events\n",
              w.name.c_str(),
              static_cast<unsigned long long>(ref_events));
  std::printf("  reference: %8.3f ms  %10.2f Mevents/s\n",
              ref.host_seconds * 1e3,
              ref_events / ref.host_seconds / 1e6);
  std::printf(
      "  fast:      %8.3f ms  %10.2f Mevents/s  (popped %llu, trains %llu, "
      "ff %llu, batched %llu, absorbed %llu)\n",
      fast.host_seconds * 1e3, ref_events / fast.host_seconds / 1e6,
      static_cast<unsigned long long>(fast.result.counters.events_popped),
      static_cast<unsigned long long>(fast.result.counters.dma_trains),
      static_cast<unsigned long long>(
          fast.result.counters.trains_fast_forwarded),
      static_cast<unsigned long long>(
          fast.result.counters.batched_transactions),
      static_cast<unsigned long long>(
          fast.result.counters.train_arrivals_absorbed));
  std::printf("  speedup:   %8.2fx\n\n", speedup);

  serde::Json j = serde::Json::object();
  j.set("name", w.name);
  j.set("description", w.description);
  j.set("simulated_ticks", ref.result.total_ticks);
  j.set("reference", engine_json(ref, ref_events));
  j.set("fast", engine_json(fast, ref_events));
  j.set("speedup", speedup);
  return j;
}

// ---- Tuning throughput -----------------------------------------------------

serde::Json measure_tuning(bool smoke, bool* ok) {
  const kernels::KernelSpec spec = kernels::make("vecadd", kernels::Scale::kSmall);
  const sw::ArchParams arch = sw::ArchParams::sw26010();
  const tuning::SearchSpace space =
      tuning::SearchSpace::standard(spec.desc, arch);

  tuning::TuningOptions opts;
  opts.jobs = smoke ? 2 : 8;
  opts.cache = std::make_shared<tuning::EvalCache>();
  const tuning::StaticTuner tuner(arch, {}, opts);

  const tuning::TuningResult cold = tuner.tune(spec.desc, space);
  const tuning::TuningResult warm = tuner.tune(spec.desc, space);

  // The whole point of the pre-lowering key: a warm cache must skip
  // swacc::lower() on every evaluation, not just skip the model.
  if (warm.stats.cache_hits != warm.stats.evaluations ||
      warm.stats.lowers_skipped != warm.stats.cache_hits) {
    std::fprintf(stderr,
                 "FAIL tuning: warm run evals=%llu hits=%llu "
                 "lowers_skipped=%llu (want all equal)\n",
                 static_cast<unsigned long long>(warm.stats.evaluations),
                 static_cast<unsigned long long>(warm.stats.cache_hits),
                 static_cast<unsigned long long>(warm.stats.lowers_skipped));
    *ok = false;
  }
  if (cold.best.tile != warm.best.tile ||
      cold.best_measured_cycles != warm.best_measured_cycles) {
    std::fprintf(stderr, "FAIL tuning: warm result differs from cold\n");
    *ok = false;
  }

  auto run_json = [](const tuning::TuningResult& r) {
    serde::Json j = serde::Json::object();
    j.set("host_seconds", r.host_seconds);
    j.set("variants", static_cast<std::uint64_t>(r.variants));
    j.set("variants_per_sec",
          r.host_seconds > 0.0
              ? static_cast<double>(r.variants) / r.host_seconds
              : 0.0);
    j.set("cache_hits", r.stats.cache_hits);
    j.set("lowers_skipped", r.stats.lowers_skipped);
    return j;
  };

  std::printf("tuning (vecadd, %zu variants, jobs=%d)\n", cold.variants,
              opts.jobs);
  std::printf("  cold: %8.3f ms  %10.1f variants/s\n",
              cold.host_seconds * 1e3, cold.variants / cold.host_seconds);
  std::printf("  warm: %8.3f ms  %10.1f variants/s  (%llu lowerings "
              "skipped)\n\n",
              warm.host_seconds * 1e3, warm.variants / warm.host_seconds,
              static_cast<unsigned long long>(warm.stats.lowers_skipped));

  serde::Json j = serde::Json::object();
  j.set("kernel", std::string("vecadd"));
  j.set("jobs", static_cast<std::uint64_t>(opts.jobs));
  j.set("cold", run_json(cold));
  j.set("warm", run_json(warm));
  return j;
}

// ---- Smoke correctness pass ------------------------------------------------

bool smoke_pass() {
  bool ok = true;

  // Uncontended: every train must fast-forward, and the fast engine must
  // agree with the reference bit for bit.
  {
    const Workload w = dma_train_uncontended(64, 8);
    const sim::SimResult ref =
        sim::simulate_reference(w.cfg, w.binary, w.programs);
    const sim::SimResult fast = sim::simulate(w.cfg, w.binary, w.programs);
    std::string why;
    if (!same_result(ref, fast, &why)) {
      std::fprintf(stderr, "FAIL smoke uncontended: mismatch on %s\n",
                   why.c_str());
      ok = false;
    }
    const sim::SimCounters& c = fast.counters;
    if (c.events_popped == 0 || c.dma_trains == 0 ||
        c.trains_fast_forwarded == 0 || c.ff_transactions == 0 ||
        c.heap_pushes_avoided == 0) {
      std::fprintf(stderr,
                   "FAIL smoke uncontended: counter unexpectedly zero "
                   "(popped=%llu trains=%llu ff=%llu ff_tx=%llu "
                   "avoided=%llu)\n",
                   static_cast<unsigned long long>(c.events_popped),
                   static_cast<unsigned long long>(c.dma_trains),
                   static_cast<unsigned long long>(c.trains_fast_forwarded),
                   static_cast<unsigned long long>(c.ff_transactions),
                   static_cast<unsigned long long>(c.heap_pushes_avoided));
      ok = false;
    }
    if (ref.counters.events_popped <= fast.counters.events_popped) {
      std::fprintf(stderr,
                   "FAIL smoke uncontended: fast engine popped as many "
                   "events as the reference\n");
      ok = false;
    }
  }

  // Contended: streams overlap, identity must still hold.
  {
    const Workload w = dma_train_contended(8, 24, 4);
    const sim::SimResult ref =
        sim::simulate_reference(w.cfg, w.binary, w.programs);
    const sim::SimResult fast = sim::simulate(w.cfg, w.binary, w.programs);
    std::string why;
    if (!same_result(ref, fast, &why)) {
      std::fprintf(stderr, "FAIL smoke contended: mismatch on %s\n",
                   why.c_str());
      ok = false;
    }
  }

  bool tuning_ok = true;
  (void)measure_tuning(/*smoke=*/true, &tuning_ok);
  ok = ok && tuning_ok;

  std::printf("smoke: %s\n", ok ? "OK" : "FAILED");
  return ok;
}

// ---- Contended perf smoke --------------------------------------------------

/// Enforces the contended-regime speedup two ways:
///   * the checked-in record's dma_train_contended speedup claim holds the
///     >= 2.5x floor, and the two new contended workloads are recorded;
///   * a live scaled-down contended run (same shape, fewer requests) beats
///     a conservative >= 1.5x floor on this machine, with the batching and
///     absorption fast paths demonstrably engaged and the result still
///     bit-identical to the reference.
/// The live floor is far under the recorded claim on purpose: this ctest
/// also runs on debug builds and loaded CI machines, where absolute ratios
/// compress but a regression that disables the fast paths still shows.
bool smoke_contended_pass(const std::string& record_path) {
  bool ok = true;

  if (record_path.empty()) {
    std::fprintf(stderr,
                 "FAIL smoke-contended: needs --check FILE for the record "
                 "claim\n");
    return false;
  }
  std::ifstream in(record_path);
  std::stringstream buf;
  buf << in.rdbuf();
  serde::Json record;
  try {
    record = serde::Json::parse_or_throw(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL smoke-contended: %s does not parse: %s\n",
                 record_path.c_str(), e.what());
    return false;
  }
  bool found_contended = false;
  bool found_mixed = false;
  bool found_cross = false;
  for (const auto& w : record.at("workloads").items()) {
    const std::string& name = w.at("name").as_string();
    if (name == "dma_train_contended") {
      found_contended = true;
      const double claim = w.at("speedup").as_double();
      if (claim < 2.5) {
        std::fprintf(stderr,
                     "FAIL smoke-contended: recorded contended speedup "
                     "%.2fx is below the 2.5x floor\n",
                     claim);
        ok = false;
      }
    } else if (name == "dma_train_contended_mixed") {
      found_mixed = true;
    } else if (name == "dma_train_cross_section") {
      found_cross = true;
    }
  }
  if (!found_contended || !found_mixed || !found_cross) {
    std::fprintf(stderr,
                 "FAIL smoke-contended: record lacks the contended "
                 "workloads (contended=%d mixed=%d cross=%d)\n",
                 found_contended, found_mixed, found_cross);
    ok = false;
  }

  // Live floor, scaled to seconds: same contended shape, fewer requests.
  const Workload w = dma_train_contended(64, 60, 8);
  EngineRun ref = time_engine(w, sim::simulate_reference, 3);
  EngineRun fast = time_engine(w, sim::simulate, 3);
  std::string why;
  if (!same_result(ref.result, fast.result, &why)) {
    std::fprintf(stderr, "FAIL smoke-contended: engines disagree on %s\n",
                 why.c_str());
    ok = false;
  }
  const sim::SimCounters& c = fast.result.counters;
  if (c.batched_grants == 0 || c.batched_transactions <= c.batched_grants ||
      c.train_arrivals_absorbed == 0) {
    std::fprintf(stderr,
                 "FAIL smoke-contended: contended fast paths idle "
                 "(batched=%llu/%llu absorbed=%llu)\n",
                 static_cast<unsigned long long>(c.batched_grants),
                 static_cast<unsigned long long>(c.batched_transactions),
                 static_cast<unsigned long long>(c.train_arrivals_absorbed));
    ok = false;
  }
  const double live = fast.host_seconds > 0.0
                          ? ref.host_seconds / fast.host_seconds
                          : 0.0;
  std::printf("smoke-contended: live %.2fx (floor 1.5x), recorded claim "
              "checked against %s\n",
              live, record_path.c_str());
  if (live < 1.5) {
    std::fprintf(stderr,
                 "FAIL smoke-contended: live contended speedup %.2fx is "
                 "below the 1.5x floor\n",
                 live);
    ok = false;
  }
  std::printf("smoke-contended: %s\n", ok ? "OK" : "FAILED");
  return ok;
}

// ---- BENCH_sim.json schema check -------------------------------------------

bool check_engine_obj(const serde::Json& e, const char* where) {
  for (const char* f :
       {"host_seconds", "events_popped", "events_per_sec",
        "heap_pushes_avoided", "dma_trains", "trains_fast_forwarded",
        "ff_transactions", "batched_grants", "batched_transactions",
        "train_arrivals_absorbed", "mc_enqueued", "mc_max_queued"}) {
    if (!e.contains(f) || !e.at(f).is_number()) {
      std::fprintf(stderr, "FAIL check: %s.%s missing or not a number\n",
                   where, f);
      return false;
    }
  }
  return true;
}

bool check_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FAIL check: cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  serde::Json j;
  try {
    j = serde::Json::parse_or_throw(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL check: %s does not parse: %s\n", path.c_str(),
                 e.what());
    return false;
  }
  if (!j.contains("schema") ||
      j.at("schema").as_string() != "swperf-bench-sim/v1") {
    std::fprintf(stderr, "FAIL check: bad or missing schema tag\n");
    return false;
  }
  if (!j.contains("workloads") || !j.at("workloads").is_array() ||
      j.at("workloads").size() == 0) {
    std::fprintf(stderr, "FAIL check: workloads missing or empty\n");
    return false;
  }
  for (std::size_t i = 0; i < j.at("workloads").size(); ++i) {
    const serde::Json& w = j.at("workloads").items()[i];
    if (!w.contains("name") || !w.contains("reference") ||
        !w.contains("fast") || !w.contains("speedup") ||
        !w.at("speedup").is_number()) {
      std::fprintf(stderr, "FAIL check: workload %zu incomplete\n", i);
      return false;
    }
    if (!check_engine_obj(w.at("reference"), "reference") ||
        !check_engine_obj(w.at("fast"), "fast")) {
      return false;
    }
  }
  if (!j.contains("tuning") || !j.at("tuning").contains("cold") ||
      !j.at("tuning").contains("warm") ||
      !j.at("tuning").at("warm").contains("lowers_skipped")) {
    std::fprintf(stderr, "FAIL check: tuning record incomplete\n");
    return false;
  }
  std::printf("check: %s conforms to swperf-bench-sim/v1\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool smoke_contended = false;
  std::string check_path;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
    } else if (a == "--smoke-contended") {
      smoke_contended = true;
    } else if (a == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_sim_throughput [--smoke] "
                   "[--smoke-contended] [--check FILE] [--out FILE]\n");
      return 2;
    }
  }

  bool ok = true;
  if (!check_path.empty()) ok = check_file(check_path) && ok;

  if (smoke || smoke_contended) {
    if (smoke) ok = smoke_pass() && ok;
    if (smoke_contended) ok = smoke_contended_pass(check_path) && ok;
    return ok ? 0 : 1;
  }
  if (!check_path.empty() && out_path.empty()) return ok ? 0 : 1;

  swperf::bench::print_header(
      "Event-core throughput: fast engine vs. pre-fast-path reference",
      "repo performance record (BENCH_sim.json), not a paper figure");

  serde::Json workloads = serde::Json::array();
  workloads.push_back(
      measure_workload(dma_train_uncontended(20000, 8), 3, &ok));
  workloads.push_back(
      measure_workload(dma_train_contended(64, 400, 8), 3, &ok));
  workloads.push_back(
      measure_workload(dma_train_contended_mixed(64, 300), 3, &ok));
  workloads.push_back(
      measure_workload(dma_train_cross_section(100, 8), 3, &ok));

  serde::Json tuning = measure_tuning(/*smoke=*/false, &ok);

  serde::Json root = serde::Json::object();
  root.set("schema", std::string("swperf-bench-sim/v1"));
  root.set("workloads", std::move(workloads));
  root.set("tuning", std::move(tuning));

  if (!out_path.empty()) {
    if (!swperf::bench::write_file_atomic(out_path, root.dump() + "\n")) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
      ok = false;
    } else {
      std::printf("wrote %s\n", out_path.c_str());
    }
  }
  return ok ? 0 : 1;
}
