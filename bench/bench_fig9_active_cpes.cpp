// Figure 9: predicted vs actual execution time of the WRF kernels across
// #active_CPEs.
//
// Dynamics is memory-intensive with per-CPE DMA segments that shrink as
// more CPEs split the domain: transaction waste grows with the CPE count
// and an intermediate count (48 in the paper) beats 64.  Physics is
// computation-intensive and keeps improving with more CPEs.  Beyond 64
// CPEs multiple core groups serve cross-section memory, scaling bandwidth.
#include "kernels/wrf.h"

#include "bench_common.h"

namespace {

using swperf::sw::Table;
namespace bench = swperf::bench;

template <typename Factory>
void sweep(const char* title, Factory make_spec,
           const swperf::sw::ArchParams& arch) {
  Table t(title);
  t.header({"#active_CPEs", "CGs", "actual us", "pred us", "error",
            "DMA efficiency"});
  double best = 1e300;
  std::uint32_t best_cpes = 0;
  for (const std::uint32_t cpes : {8u, 16u, 32u, 48u, 64u, 96u, 128u}) {
    const auto spec = make_spec(cpes);
    const auto e = bench::evaluate(spec.desc, spec.tuned, arch);
    if (e.actual_us(arch) < best) {
      best = e.actual_us(arch);
      best_cpes = cpes;
    }
    t.row({std::to_string(cpes),
           std::to_string(e.lowered.sim_config.core_groups),
           Table::num(e.actual_us(arch), 1),
           Table::num(e.predicted_us(arch), 1),
           Table::pct(std::abs(e.error())),
           Table::num(e.lowered.summary.dma_efficiency(), 2)});
  }
  t.print(std::cout);
  std::cout << "best within one core group at " << best_cpes
            << " CPEs\n";
}

}  // namespace

int main() {
  const auto arch = swperf::sw::ArchParams::sw26010();
  bench::print_header("#active_CPEs study on WRF kernels",
                      "Figure 9 (Sections IV-3, V-C3)");

  sweep("Fig. 9 (left) — WRF dynamics (memory-intensive)",
        [](std::uint32_t c) { return swperf::kernels::wrf_dynamics(c); },
        arch);
  std::cout << "(paper: 48 CPEs outperform 64 by ~10%)\n\n";

  sweep("Fig. 9 (right) — WRF physics (computation-intensive)",
        [](std::uint32_t c) { return swperf::kernels::wrf_physics(c); },
        arch);
  std::cout << "(paper: more CPEs keep reducing time)\n";
  return 0;
}
