// Explain-engine record: what the causal trace + critical-path analysis
// cost over a plain simulation, and what the bottleneck labels buy the
// closed-loop optimizer.
//
// Two measurements per Table II kernel, each on a fresh pipeline::Session:
//
//   * overhead — host seconds for a full explanation (traced simulation +
//     execution DAG + classifier) vs. a plain untraced simulation of the
//     same launch, both cold;
//   * guidance — `swperf optimize` from the naive launch with label-guided
//     proposal ordering vs. the pure best-predicted-first order
//     (OptimizerOptions::label_guided off).  Guidance must never lose:
//     the guided winner's measured cycles are <= the unguided winner's,
//     with at most as many tried candidates.
//
// Modes (same contract as the other bench records):
//   bench_explain                 full measurement, human-readable
//   bench_explain --out FILE      ... and write the JSON record
//   bench_explain --smoke         seconds-fast pass on two kernels
//   bench_explain --check FILE    validate FILE against the
//                                 BENCH_explain.json schema + headlines
// --smoke and --check compose; the perf_smoke_explain ctest runs both.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "explain/explain.h"
#include "kernels/suite.h"
#include "pipeline/session.h"
#include "serde/json.h"
#include "transform/optimizer.h"

namespace {

using namespace swperf;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

serde::Json measure_kernel(const std::string& name, bool* ok) {
  const kernels::KernelSpec spec = kernels::make(name, kernels::Scale::kSmall);

  // Overhead: cold plain simulation vs. cold full explanation.
  double simulate_seconds = 0.0;
  {
    pipeline::Session session;
    const auto t0 = std::chrono::steady_clock::now();
    session.simulate(spec.desc, spec.tuned);
    simulate_seconds = seconds_since(t0);
  }
  std::string label;
  double explain_seconds = 0.0;
  {
    pipeline::Session session;
    const auto t0 = std::chrono::steady_clock::now();
    const explain::Explanation e = session.explain(spec.desc, spec.tuned);
    explain_seconds = seconds_since(t0);
    label = explain::label_name(e.label);
  }
  const double overhead =
      simulate_seconds > 0.0 ? explain_seconds / simulate_seconds : 0.0;

  // Guidance: the same campaign with and without label-guided ordering.
  transform::OptimizeResult guided;
  {
    pipeline::Session session;
    transform::Optimizer opt(session);  // label_guided defaults on
    guided = opt.optimize(spec.desc, spec.naive);
  }
  transform::OptimizeResult unguided;
  {
    pipeline::Session session;
    transform::OptimizerOptions topt;
    topt.label_guided = false;
    transform::Optimizer opt(session, topt);
    unguided = opt.optimize(spec.desc, spec.naive);
  }

  const bool no_worse =
      guided.final_measured <= unguided.final_measured &&
      guided.steps.size() <= unguided.steps.size();
  if (!no_worse) {
    std::fprintf(stderr,
                 "FAIL %s: guided %.0f cycles / %zu tried vs unguided "
                 "%.0f / %zu — guidance must never lose\n",
                 name.c_str(), guided.final_measured, guided.steps.size(),
                 unguided.final_measured, unguided.steps.size());
    *ok = false;
  }

  std::printf("%-10s %-24s explain %.3fs vs simulate %.3fs (%.1fx)\n",
              name.c_str(), label.c_str(), explain_seconds, simulate_seconds,
              overhead);
  std::printf("  guided:   %.2fx in %zu tried (%d accepted)\n",
              guided.speedup(), guided.steps.size(), guided.accepted_steps);
  std::printf("  unguided: %.2fx in %zu tried (%d accepted)\n",
              unguided.speedup(), unguided.steps.size(),
              unguided.accepted_steps);

  serde::Json j = serde::Json::object();
  j.set("name", name);
  j.set("label", label);
  j.set("simulate_seconds", simulate_seconds);
  j.set("explain_seconds", explain_seconds);
  j.set("explain_overhead", overhead);
  j.set("guided_speedup", guided.speedup());
  j.set("guided_tried", static_cast<std::uint64_t>(guided.steps.size()));
  j.set("guided_accepted", guided.accepted_steps);
  j.set("unguided_speedup", unguided.speedup());
  j.set("unguided_tried",
        static_cast<std::uint64_t>(unguided.steps.size()));
  j.set("unguided_accepted", unguided.accepted_steps);
  j.set("guided_no_worse", no_worse);
  return j;
}

bool smoke_pass() {
  bool ok = true;
  for (const char* name : {"kmeans", "hotspot"}) {
    const serde::Json j = measure_kernel(name, &ok);
    if (j.at("label").as_string().empty()) {
      std::fprintf(stderr, "FAIL smoke %s: empty bottleneck label\n", name);
      ok = false;
    }
  }
  std::printf("smoke: %s\n", ok ? "OK" : "FAILED");
  return ok;
}

// ---- BENCH_explain.json schema check ---------------------------------------

bool check_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FAIL check: cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  serde::Json j;
  try {
    j = serde::Json::parse_or_throw(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL check: %s does not parse: %s\n", path.c_str(),
                 e.what());
    return false;
  }
  if (!j.contains("schema") ||
      j.at("schema").as_string() != "swperf-bench-explain/v1") {
    std::fprintf(stderr, "FAIL check: bad or missing schema tag\n");
    return false;
  }
  if (!j.contains("kernels") || !j.at("kernels").is_array() ||
      j.at("kernels").size() == 0) {
    std::fprintf(stderr, "FAIL check: kernels missing or empty\n");
    return false;
  }
  bool headline = false;  // >= 1 kernel where guidance hits >= 1.5x
  for (std::size_t i = 0; i < j.at("kernels").size(); ++i) {
    const serde::Json& k = j.at("kernels").items()[i];
    for (const char* f :
         {"name", "label", "simulate_seconds", "explain_seconds",
          "explain_overhead", "guided_speedup", "guided_tried",
          "guided_accepted", "unguided_speedup", "unguided_tried",
          "unguided_accepted", "guided_no_worse"}) {
      if (!k.contains(f)) {
        std::fprintf(stderr, "FAIL check: kernel %zu missing %s\n", i, f);
        return false;
      }
    }
    if (k.at("label").as_string().empty()) {
      std::fprintf(stderr, "FAIL check: kernel %zu has an empty label\n", i);
      return false;
    }
    if (!k.at("guided_no_worse").as_bool()) {
      std::fprintf(stderr, "FAIL check: kernel %zu: guidance lost\n", i);
      return false;
    }
    if (k.at("guided_speedup").as_double() <
        k.at("unguided_speedup").as_double()) {
      std::fprintf(stderr,
                   "FAIL check: kernel %zu speedups inconsistent with "
                   "guided_no_worse\n",
                   i);
      return false;
    }
    // Tracing + DAG must stay a small constant factor over plain
    // simulation; the bound is an order of magnitude above the observed
    // overhead so only a complexity regression trips it.
    if (k.at("explain_overhead").as_double() > 50.0) {
      std::fprintf(stderr, "FAIL check: kernel %zu explain overhead %.1fx\n",
                   i, k.at("explain_overhead").as_double());
      return false;
    }
    if (k.at("guided_speedup").as_double() >= 1.5) headline = true;
  }
  if (!headline) {
    std::fprintf(stderr,
                 "FAIL check: no kernel shows >= 1.5x guided speedup\n");
    return false;
  }
  std::printf("check: %s conforms to swperf-bench-explain/v1\n",
              path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string check_path;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
    } else if (a == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_explain [--smoke] [--check FILE] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  bool ok = true;
  if (!check_path.empty()) ok = check_file(check_path) && ok;

  if (smoke) {
    ok = smoke_pass() && ok;
    return ok ? 0 : 1;
  }
  if (!check_path.empty() && out_path.empty()) return ok ? 0 : 1;

  swperf::bench::print_header(
      "Explain-engine overhead and label-guided optimization gains",
      "repo performance record (BENCH_explain.json), not a paper figure");

  serde::Json kernels_json = serde::Json::array();
  for (const std::string& name : kernels::table2_kernels()) {
    kernels_json.push_back(measure_kernel(name, &ok));
  }

  serde::Json root = serde::Json::object();
  root.set("schema", std::string("swperf-bench-explain/v1"));
  root.set("kernels", std::move(kernels_json));

  if (!out_path.empty()) {
    if (!swperf::bench::write_file_atomic(out_path, root.dump() + "\n")) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
      ok = false;
    } else {
      std::printf("wrote %s\n", out_path.c_str());
    }
  }
  return ok ? 0 : 1;
}
