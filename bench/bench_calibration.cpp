// How Table I's memory parameters are obtained: microbenchmark
// calibration, reproduced against the simulated machine.
#include "model/calibrate.h"

#include "bench_common.h"

int main() {
  using swperf::sw::Table;
  namespace bench = swperf::bench;
  const auto machine = swperf::sw::ArchParams::sw26010();

  bench::print_header("Microbenchmark calibration of Table I",
                      "methodology behind Table I's measured rows");

  const auto c = swperf::model::calibrate(machine);
  Table t("Recovered vs configured parameters");
  t.header({"parameter", "probe", "recovered", "configured"});
  t.row({"L_base", "1 CPE, 1-transaction DMA",
         Table::num(c.l_base_cycles, 1) + " cyc",
         std::to_string(machine.l_base_cycles) + " cyc"});
  t.row({"Delta_delay", "1 CPE, latency slope over MRT",
         Table::num(c.delta_delay_cycles, 1) + " cyc",
         std::to_string(machine.delta_delay_cycles) + " cyc"});
  t.row({"mem_bw", "64 CPEs, streaming saturation",
         Table::num(c.mem_bw_gbps, 1) + " GB/s",
         Table::num(machine.mem_bw_gbps, 1) + " GB/s"});
  t.row({"trans service", "derived",
         Table::num(c.trans_service_cycles, 2) + " cyc",
         Table::num(machine.trans_service_cycles(), 2) + " cyc"});
  t.print(std::cout);

  // A what-if machine: the probes measure, not assume.
  swperf::sw::ArchParams next_gen = machine;
  next_gen.mem_bw_gbps = 64.0;
  next_gen.l_base_cycles = 180;
  const auto c2 = swperf::model::calibrate(next_gen);
  Table w("Same probes on a hypothetical 64 GB/s machine");
  w.header({"parameter", "recovered", "configured"});
  w.row({"L_base", Table::num(c2.l_base_cycles, 1) + " cyc", "180 cyc"});
  w.row({"mem_bw", Table::num(c2.mem_bw_gbps, 1) + " GB/s", "64.0 GB/s"});
  w.print(std::cout);
  return 0;
}
