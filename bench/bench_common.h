// Shared helpers for the paper-reproduction bench harnesses.
//
// Every bench_* binary regenerates one table or figure of the paper: it
// runs the relevant kernels through the simulator ("actual") and the
// static model ("predicted") and prints the same rows/series the paper
// reports. Binaries take no arguments and run in seconds.
#pragma once

#include <iostream>

#include "model/model.h"
#include "sim/machine.h"
#include "sw/arch.h"
#include "sw/stats.h"
#include "sw/table.h"
#include "swacc/lower.h"

namespace swperf::bench {

/// One kernel launch evaluated both ways.
struct Evaluation {
  swacc::LoweredKernel lowered;
  sim::SimResult actual;
  model::Prediction predicted;

  double actual_cycles() const { return actual.total_cycles(); }
  double error() const {
    return (predicted.t_total - actual_cycles()) / actual_cycles();
  }
  double actual_us(const sw::ArchParams& arch) const {
    return sw::cycles_to_us(actual_cycles(), arch.freq_ghz);
  }
  double predicted_us(const sw::ArchParams& arch) const {
    return predicted.total_us(arch.freq_ghz);
  }
};

/// Lowers, simulates and predicts one launch.
inline Evaluation evaluate(const swacc::KernelDesc& kernel,
                           const swacc::LaunchParams& params,
                           const sw::ArchParams& arch,
                           const model::ModelOptions& opts = {}) {
  Evaluation e;
  e.lowered = swacc::lower(kernel, params, arch);
  e.actual = sim::simulate(e.lowered.sim_config, e.lowered.binary,
                           e.lowered.programs);
  e.predicted = model::PerfModel(arch, opts).predict(e.lowered.summary);
  return e;
}

inline void print_header(const char* what, const char* paper_ref) {
  std::cout << "\n################################################\n"
            << "# " << what << "\n"
            << "# Reproduces: " << paper_ref << "\n"
            << "# Machine: simulated SW26010 core group(s), Table I "
               "parameters\n"
            << "################################################\n\n";
}

}  // namespace swperf::bench
