// Shared helpers for the paper-reproduction bench harnesses.
//
// Every bench_* binary regenerates one table or figure of the paper: it
// runs the relevant kernels through the simulator ("actual") and the
// static model ("predicted") and prints the same rows/series the paper
// reports. Binaries take no arguments and run in seconds.
//
// The desc -> lower -> {sim, model} chain itself lives in
// pipeline::Session; this header only re-exports the pipeline types
// under the bench namespace and adds print formatting.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "model/model.h"
#include "pipeline/session.h"
#include "sw/arch.h"
#include "sw/stats.h"
#include "sw/table.h"
#include "swacc/lower.h"

namespace swperf::bench {

/// One kernel launch evaluated both ways (see pipeline::Evaluation).
using Evaluation = pipeline::Evaluation;

/// Lowers, simulates and predicts one launch through a pipeline::Session.
inline Evaluation evaluate(const swacc::KernelDesc& kernel,
                           const swacc::LaunchParams& params,
                           const sw::ArchParams& arch,
                           const model::ModelOptions& opts = {}) {
  return pipeline::Session(arch, opts).evaluate(kernel, params);
}

/// Writes `content` to `path` atomically: the bytes land in `path + ".tmp"`
/// first and are renamed into place only after a successful close, so a
/// crash or signal mid-write can never leave a truncated record where a
/// previously good one (e.g. a checked-in BENCH_*.json) used to be.
/// Returns false (with the partial .tmp removed) on any I/O failure.
inline bool write_file_atomic(const std::string& path,
                              const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << content;
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

inline void print_header(const char* what, const char* paper_ref) {
  std::cout << "\n################################################\n"
            << "# " << what << "\n"
            << "# Reproduces: " << paper_ref << "\n"
            << "# Machine: simulated SW26010 core group(s), Table I "
               "parameters\n"
            << "################################################\n\n";
}

}  // namespace swperf::bench
