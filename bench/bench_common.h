// Shared helpers for the paper-reproduction bench harnesses.
//
// Every bench_* binary regenerates one table or figure of the paper: it
// runs the relevant kernels through the simulator ("actual") and the
// static model ("predicted") and prints the same rows/series the paper
// reports. Binaries take no arguments and run in seconds.
//
// The desc -> lower -> {sim, model} chain itself lives in
// pipeline::Session; this header only re-exports the pipeline types
// under the bench namespace and adds print formatting.
#pragma once

#include <iostream>

#include "model/model.h"
#include "pipeline/session.h"
#include "sw/arch.h"
#include "sw/stats.h"
#include "sw/table.h"
#include "swacc/lower.h"

namespace swperf::bench {

/// One kernel launch evaluated both ways (see pipeline::Evaluation).
using Evaluation = pipeline::Evaluation;

/// Lowers, simulates and predicts one launch through a pipeline::Session.
inline Evaluation evaluate(const swacc::KernelDesc& kernel,
                           const swacc::LaunchParams& params,
                           const sw::ArchParams& arch,
                           const model::ModelOptions& opts = {}) {
  return pipeline::Session(arch, opts).evaluate(kernel, params);
}

inline void print_header(const char* what, const char* paper_ref) {
  std::cout << "\n################################################\n"
            << "# " << what << "\n"
            << "# Reproduces: " << paper_ref << "\n"
            << "# Machine: simulated SW26010 core group(s), Table I "
               "parameters\n"
            << "################################################\n\n";
}

}  // namespace swperf::bench
