// WRF physics: auto-tuned vs hand-tuned configuration (Section V-D).
//
// The paper compares its model-driven auto-tuning against prior hand-tuned
// WRF physics ports [17]: 421 -> 500 GFLOPS (micro_mg0.I) and 127 -> 148
// GFLOPS (mcica_subcol.hw) on one core group — the auto-tuner finds a
// better configuration within the same SWACC implementation, ~1.17x.
//
// Our reproduction: the wrf_physics proxy with a plausible hand choice
// (small conservative tile, no unrolling) vs the static tuner's pick over
// the same tile x unroll space.  GFLOPS are scalar-issue numbers: this
// reproduction does not model the 256-bit vector unit, so absolute GFLOPS
// are ~4x below the paper's; the improvement *ratio* is the target.
#include "kernels/wrf.h"
#include "tuning/tuner.h"

#include "bench_common.h"

int main() {
  using swperf::sw::Table;
  namespace bench = swperf::bench;
  const auto arch = swperf::sw::ArchParams::sw26010();

  bench::print_header("Auto-tuned vs hand-tuned WRF physics",
                      "Section V-D hand-tuning comparison");

  const auto spec = swperf::kernels::wrf_physics(64);
  const double flops = spec.desc.total_flops();

  // A good hand configuration — what a careful porter lands on after a
  // few rounds of manual tiling/unrolling (the paper's [17] ports were
  // already optimized; auto-tuning still found ~1.17x more).
  swperf::swacc::LaunchParams hand;
  hand.tile = 16;
  hand.unroll = 2;
  hand.vector_width = 4;  // hand ports are vectorized too
  const auto eh = bench::evaluate(spec.desc, hand, arch);

  // Model-driven static tuning over the standard space.
  const auto space =
      swperf::tuning::SearchSpace::with_vectorization(spec.desc, arch);
  const auto rs = swperf::tuning::StaticTuner(arch).tune(spec.desc, space);
  const auto ea = bench::evaluate(spec.desc, rs.best, arch);

  const double peak = arch.peak_gflops_per_cg();  // 4-wide FMA/cycle/CPE

  Table t("WRF physics on one core group");
  t.header({"configuration", "params", "time us", "GFLOPS",
            "% of peak"});
  const double g_hand = flops / (eh.actual_cycles() / arch.freq_ghz);
  const double g_auto = flops / (ea.actual_cycles() / arch.freq_ghz);
  t.row({"hand-tuned", hand.to_string(),
         Table::num(eh.actual_us(arch), 1), Table::num(g_hand, 1),
         Table::pct(g_hand / peak)});
  t.row({"static auto-tuned", rs.best.to_string(),
         Table::num(ea.actual_us(arch), 1), Table::num(g_auto, 1),
         Table::pct(g_auto / peak)});
  t.print(std::cout);

  std::cout << "improvement: " << Table::times(g_auto / g_hand)
            << "   (paper: 421 -> 500 GFLOPS = 1.19x and 127 -> 148 = "
               "1.17x; our microphysics proxy is div/sqrt-bound, hence "
               "the lower absolute GFLOPS)\n";
  return 0;
}
