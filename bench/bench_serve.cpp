// Evaluation-service record: what `swperf serve` sustains under
// concurrent JSONL clients over loopback TCP, cold vs. warm.
//
// Three workloads, each against a fresh in-process serve::Server (the
// exact object behind `swperf serve`, driven through real sockets):
//
//   * cold_single_client — one client, one mixed batch
//     (check/model/sim over five suite kernels plus one tune and one
//     explain), every cache empty.  This is the baseline: the cost of
//     actually computing the mix.
//   * warm_multi_client — the same server after a warm-up pass, then
//     N concurrent clients each firing a pipelined mixed batch.  Almost
//     every request hits the shard's Session memos / EvalCaches, so the
//     sustained throughput measures the serving layer, not the simulator;
//     the record's headline claim is warm/cold throughput >= 5x.
//   * overload — queue depth 1, batch 1, four clients firing pipelined
//     bursts.  Backpressure must answer *every* request: each reply is a
//     result or a structured "overloaded" error, and dropped == 0.
//
// Latency is measured client-side (send to matching reply, pipelined, so
// queueing is included) and reported as p50/p95/p99 over the pooled
// sorted samples.
//
// Modes (same contract as the other bench records):
//   bench_serve                 full measurement, human-readable
//   bench_serve --out FILE      ... and write the JSON record (atomic:
//                               temp file + rename)
//   bench_serve --smoke         the same workloads with relaxed live
//                               floors (warm/cold >= 2x — CI machines are
//                               noisy; the checked-in record still claims
//                               >= 5x) plus the overload invariants
//   bench_serve --check FILE    validate FILE against the
//                               BENCH_serve.json schema + claims
// --smoke and --check compose; the perf_smoke_serve ctest runs both.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serde/json.h"
#include "serve/server.h"
#include "serve/shard.h"

namespace {

using namespace swperf;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---- In-process server harness ---------------------------------------------

/// A serve::Server on an ephemeral loopback port with run() on its own
/// thread — the production object and transport, minus the process spawn.
struct ServerHarness {
  explicit ServerHarness(serve::ServeOptions opts) : server(opts) {
    std::string error;
    if (!server.listen_on(&error)) {
      std::fprintf(stderr, "FATAL: serve harness: %s\n", error.c_str());
      std::exit(1);
    }
    runner = std::thread([this] { run_rc = server.run(); });
  }
  /// Graceful drain; returns run()'s exit status (0 on a clean drain).
  int stop() {
    server.request_stop();
    if (runner.joinable()) runner.join();
    return run_rc;
  }
  ~ServerHarness() { stop(); }

  serve::Server server;
  std::thread runner;
  int run_rc = -1;
};

// ---- Request mixes ---------------------------------------------------------

std::string request_line(const std::string& id, const char* kernel,
                         const char* stage) {
  serde::Json j = serde::Json::object();
  j.set("id", id);
  j.set("kernel", std::string(kernel));
  j.set("scale", std::string("small"));
  serde::Json stages = serde::Json::array();
  stages.push_back(serde::Json(std::string(stage)));
  j.set("stages", std::move(stages));
  return j.dump();
}

/// The full mixed batch: check/model/sim across five suite kernels plus
/// one tune and one explain — the two stages that exercise the tuner's
/// EvalCaches and the (deliberately never-memoized) traced simulation.
std::vector<std::string> full_mix(const std::string& prefix) {
  std::vector<std::string> lines;
  int seq = 0;
  auto add = [&](const char* kernel, const char* stage) {
    lines.push_back(
        request_line(prefix + "-" + std::to_string(seq++), kernel, stage));
  };
  add("vecadd", "check");
  add("vecadd", "model");
  add("vecadd", "sim");
  add("kmeans", "check");
  add("kmeans", "model");
  add("kmeans", "sim");
  add("lud", "model");
  add("lud", "sim");
  add("hotspot", "model");
  add("backprop", "sim");
  add("vecadd", "tune");
  add("kmeans", "explain");
  return lines;
}

/// The cheap variant for the other warm clients: same breadth, no
/// tune/explain (explain is one-shot by design — a mix where every client
/// re-traces would measure the simulator, not the serving layer).
std::vector<std::string> cheap_mix(const std::string& prefix) {
  std::vector<std::string> lines;
  int seq = 0;
  auto add = [&](const char* kernel, const char* stage) {
    lines.push_back(
        request_line(prefix + "-" + std::to_string(seq++), kernel, stage));
  };
  add("vecadd", "check");
  add("vecadd", "model");
  add("vecadd", "sim");
  add("kmeans", "check");
  add("kmeans", "model");
  add("kmeans", "sim");
  add("lud", "model");
  add("lud", "sim");
  add("hotspot", "model");
  add("backprop", "sim");
  add("hotspot", "check");
  add("lud", "check");
  return lines;
}

// ---- The socket client -----------------------------------------------------

struct ClientResult {
  std::vector<double> latency_us;  // one sample per matched reply
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t other_errors = 0;
  std::uint64_t replies = 0;
};

/// Connects, fires every request pipelined, and reads until each request's
/// id has been answered.  Latency is send-to-matching-reply.
ClientResult run_client(int port, const std::vector<std::string>& requests) {
  ClientResult r;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return r;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return r;
  }
  std::map<std::string, Clock::time_point> sent_at;
  std::string payload;
  for (const auto& line : requests) {
    payload += line;
    payload.push_back('\n');
  }
  // Pipelined load: every request is in flight at once, so latency
  // includes queueing — that is the point of the measurement.
  const Clock::time_point t_send = Clock::now();
  for (const auto& line : requests) {
    const auto parsed = serde::Json::parse(line);
    sent_at[parsed.value.at("id").as_string()] = t_send;
  }
  std::size_t off = 0;
  while (off < payload.size()) {
    const ssize_t n = ::send(fd, payload.data() + off, payload.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string pending;
  char buf[65536];
  while (r.replies < requests.size()) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // server gone: remaining requests count as dropped
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = pending.find('\n', start);
      if (nl == std::string::npos) break;
      const Clock::time_point now = Clock::now();
      const auto parsed = serde::Json::parse(
          std::string_view(pending).substr(start, nl - start));
      start = nl + 1;
      if (!parsed.ok) continue;
      ++r.replies;
      const serde::Json* id = parsed.value.find("id");
      if (id != nullptr && id->is_string()) {
        const auto it = sent_at.find(id->as_string());
        if (it != sent_at.end()) {
          r.latency_us.push_back(
              std::chrono::duration<double, std::micro>(now - it->second)
                  .count());
        }
      }
      const serde::Json* okj = parsed.value.find("ok");
      if (okj != nullptr && okj->is_bool() && okj->as_bool()) {
        ++r.ok;
      } else {
        const serde::Json* err = parsed.value.find("error");
        const serde::Json* code =
            err != nullptr ? err->find("code") : nullptr;
        if (code != nullptr && code->is_string() &&
            code->as_string() == "overloaded") {
          ++r.overloaded;
        } else {
          ++r.other_errors;
        }
      }
    }
    pending.erase(0, start);
  }
  ::close(fd);
  return r;
}

double percentile_us(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = std::ceil(q * static_cast<double>(samples.size()));
  const std::size_t idx = static_cast<std::size_t>(
      std::max(1.0, std::min(rank, static_cast<double>(samples.size()))));
  return samples[idx - 1];
}

// ---- Workloads -------------------------------------------------------------

struct WorkloadResult {
  std::uint64_t requests = 0;
  std::uint64_t replies = 0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t other_errors = 0;
  double seconds = 0.0;
  double throughput_rps = 0.0;
  std::vector<double> latency_us;

  serde::Json to_json() const {
    serde::Json j = serde::Json::object();
    j.set("requests", requests);
    j.set("replies", replies);
    j.set("ok", ok);
    j.set("overloaded", overloaded);
    j.set("other_errors", other_errors);
    j.set("dropped", requests - replies);
    j.set("seconds", seconds);
    j.set("throughput_rps", throughput_rps);
    j.set("p50_us", percentile_us(latency_us, 0.50));
    j.set("p95_us", percentile_us(latency_us, 0.95));
    j.set("p99_us", percentile_us(latency_us, 0.99));
    return j;
  }
};

void fold(WorkloadResult& w, const ClientResult& c, std::size_t sent) {
  w.requests += sent;
  w.replies += c.replies;
  w.ok += c.ok;
  w.overloaded += c.overloaded;
  w.other_errors += c.other_errors;
  w.latency_us.insert(w.latency_us.end(), c.latency_us.begin(),
                      c.latency_us.end());
}

/// cold_single_client: fresh server, one client, the full mixed batch.
WorkloadResult run_cold(bool* drain_ok) {
  ServerHarness h(serve::ServeOptions{});
  WorkloadResult w;
  const auto mix = full_mix("cold");
  const auto t0 = Clock::now();
  fold(w, run_client(h.server.port(), mix), mix.size());
  w.seconds = seconds_since(t0);
  w.throughput_rps =
      w.seconds > 0.0 ? static_cast<double>(w.replies) / w.seconds : 0.0;
  *drain_ok = h.stop() == 0 && *drain_ok;
  return w;
}

/// warm_multi_client: one warm-up pass, then `clients` concurrent mixed
/// batches against the same (now cache-hot) server.
WorkloadResult run_warm(int clients, bool* drain_ok,
                        serde::Json* server_stats) {
  ServerHarness h(serve::ServeOptions{});
  // Warm-up: both mix shapes once, serially, so the measured pass hits
  // the Session memos and EvalCaches (explain stays one-shot by design).
  run_client(h.server.port(), full_mix("warmup-full"));
  run_client(h.server.port(), cheap_mix("warmup-cheap"));

  WorkloadResult w;
  std::vector<std::vector<std::string>> mixes;
  for (int c = 0; c < clients; ++c) {
    const std::string prefix = "warm" + std::to_string(c);
    mixes.push_back(c == 0 ? full_mix(prefix) : cheap_mix(prefix));
  }
  std::vector<ClientResult> results(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      results[static_cast<std::size_t>(c)] =
          run_client(h.server.port(), mixes[static_cast<std::size_t>(c)]);
    });
  }
  for (auto& t : threads) t.join();
  w.seconds = seconds_since(t0);
  for (int c = 0; c < clients; ++c) {
    fold(w, results[static_cast<std::size_t>(c)],
         mixes[static_cast<std::size_t>(c)].size());
  }
  w.throughput_rps =
      w.seconds > 0.0 ? static_cast<double>(w.replies) / w.seconds : 0.0;

  // One stats request so the record carries the server's own view
  // (cache hit rates, batch sizes, queue behaviour).
  serde::Json probe = serde::Json::object();
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(h.server.port()));
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      const std::string line = "{\"stats\":true}\n";
      (void)!::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
      std::string reply;
      char buf[65536];
      while (reply.find('\n') == std::string::npos) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        reply.append(buf, static_cast<std::size_t>(n));
      }
      const auto parsed =
          serde::Json::parse(reply.substr(0, reply.find('\n')));
      if (parsed.ok) {
        if (const auto* s = parsed.value.find("stats")) probe = *s;
      }
    }
    if (fd >= 0) ::close(fd);
  }
  *server_stats = std::move(probe);
  *drain_ok = h.stop() == 0 && *drain_ok;
  return w;
}

/// overload: queue depth 1, batch 1, four clients firing pipelined cheap
/// bursts.  Every request must be answered — result or "overloaded".
WorkloadResult run_overload(bool* drain_ok) {
  serve::ServeOptions opts;
  opts.queue_depth = 1;
  opts.batch = 1;
  ServerHarness h(opts);
  constexpr int kClients = 4;
  constexpr int kPerClient = 25;
  WorkloadResult w;
  std::vector<std::vector<std::string>> mixes;
  for (int c = 0; c < kClients; ++c) {
    std::vector<std::string> lines;
    for (int i = 0; i < kPerClient; ++i) {
      lines.push_back(request_line(
          "ov" + std::to_string(c) + "-" + std::to_string(i), "vecadd",
          "model"));
    }
    mixes.push_back(std::move(lines));
  }
  std::vector<ClientResult> results(kClients);
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      results[static_cast<std::size_t>(c)] =
          run_client(h.server.port(), mixes[static_cast<std::size_t>(c)]);
    });
  }
  for (auto& t : threads) t.join();
  w.seconds = seconds_since(t0);
  for (int c = 0; c < kClients; ++c) {
    fold(w, results[static_cast<std::size_t>(c)],
         mixes[static_cast<std::size_t>(c)].size());
  }
  w.throughput_rps =
      w.seconds > 0.0 ? static_cast<double>(w.replies) / w.seconds : 0.0;
  *drain_ok = h.stop() == 0 && *drain_ok;
  return w;
}

// ---- Measurement + record --------------------------------------------------

constexpr int kWarmClients = 8;

serde::Json measure(bool* ok) {
  bool drain_ok = true;

  std::printf("cold single client (full mix, empty caches)...\n");
  const WorkloadResult cold = run_cold(&drain_ok);
  std::printf("  %llu replies in %.3fs: %.1f req/s, p50 %.0fus p99 %.0fus\n",
              static_cast<unsigned long long>(cold.replies), cold.seconds,
              cold.throughput_rps, percentile_us(cold.latency_us, 0.50),
              percentile_us(cold.latency_us, 0.99));

  std::printf("warm %d concurrent clients (cache-hot server)...\n",
              kWarmClients);
  serde::Json server_stats;
  const WorkloadResult warm =
      run_warm(kWarmClients, &drain_ok, &server_stats);
  std::printf("  %llu replies in %.3fs: %.1f req/s, p50 %.0fus p99 %.0fus\n",
              static_cast<unsigned long long>(warm.replies), warm.seconds,
              warm.throughput_rps, percentile_us(warm.latency_us, 0.50),
              percentile_us(warm.latency_us, 0.99));

  std::printf("overload (queue depth 1, 4 pipelined clients)...\n");
  const WorkloadResult over = run_overload(&drain_ok);
  std::printf(
      "  %llu requests: %llu ok + %llu overloaded, %llu dropped\n",
      static_cast<unsigned long long>(over.requests),
      static_cast<unsigned long long>(over.ok),
      static_cast<unsigned long long>(over.overloaded),
      static_cast<unsigned long long>(over.requests - over.replies));

  const double ratio = cold.throughput_rps > 0.0
                           ? warm.throughput_rps / cold.throughput_rps
                           : 0.0;
  std::printf("warm/cold throughput: %.1fx\n", ratio);

  if (over.requests != over.replies || over.other_errors != 0) {
    std::fprintf(stderr,
                 "FAIL overload: %llu dropped, %llu non-overloaded errors "
                 "— backpressure must answer every request\n",
                 static_cast<unsigned long long>(over.requests -
                                                 over.replies),
                 static_cast<unsigned long long>(over.other_errors));
    *ok = false;
  }
  if (cold.other_errors != 0 || warm.other_errors != 0 ||
      cold.replies != cold.requests || warm.replies != warm.requests) {
    std::fprintf(stderr, "FAIL: cold/warm workloads saw errors or drops\n");
    *ok = false;
  }
  if (!drain_ok) {
    std::fprintf(stderr, "FAIL: a server drain returned nonzero\n");
    *ok = false;
  }

  serde::Json root = serde::Json::object();
  root.set("schema", std::string("swperf-bench-serve/v1"));
  serde::Json config = serde::Json::object();
  config.set("warm_clients", kWarmClients);
  config.set("mix_requests_per_client",
             static_cast<std::uint64_t>(full_mix("x").size()));
  config.set("mix", std::string("check/model/sim over vecadd, kmeans, lud, "
                                "hotspot, backprop + 1 tune + 1 explain"));
  root.set("config", std::move(config));
  root.set("cold_single_client", cold.to_json());
  root.set("warm_multi_client", warm.to_json());
  serde::Json overload = over.to_json();
  overload.set("queue_depth", 1);
  overload.set("clients", 4);
  root.set("overload", std::move(overload));
  root.set("server_stats", std::move(server_stats));
  serde::Json claims = serde::Json::object();
  claims.set("warm_over_cold_throughput", ratio);
  claims.set("overload_zero_dropped", over.requests == over.replies);
  claims.set("clean_drains", drain_ok);
  root.set("claims", std::move(claims));
  return root;
}

bool smoke_pass(const serde::Json& record) {
  bool ok = true;
  const double ratio =
      record.at("claims").at("warm_over_cold_throughput").as_double();
  // Relaxed live floor: CI boxes are noisy and often single-core; the
  // checked-in record (measured properly) must still claim >= 5x.
  if (ratio < 2.0) {
    std::fprintf(stderr, "FAIL smoke: warm/cold %.2fx < 2x live floor\n",
                 ratio);
    ok = false;
  }
  if (!record.at("claims").at("overload_zero_dropped").as_bool()) {
    std::fprintf(stderr, "FAIL smoke: overload run dropped requests\n");
    ok = false;
  }
  if (record.at("overload").at("overloaded").as_u64() == 0) {
    std::fprintf(stderr,
                 "FAIL smoke: queue depth 1 never answered overloaded — "
                 "backpressure is not engaging\n");
    ok = false;
  }
  if (!record.at("claims").at("clean_drains").as_bool()) {
    std::fprintf(stderr, "FAIL smoke: unclean server drain\n");
    ok = false;
  }
  std::printf("smoke: %s\n", ok ? "OK" : "FAILED");
  return ok;
}

// ---- BENCH_serve.json schema check -----------------------------------------

bool check_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FAIL check: cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  serde::Json j;
  try {
    j = serde::Json::parse_or_throw(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL check: %s does not parse: %s\n", path.c_str(),
                 e.what());
    return false;
  }
  if (!j.contains("schema") ||
      j.at("schema").as_string() != "swperf-bench-serve/v1") {
    std::fprintf(stderr, "FAIL check: bad or missing schema tag\n");
    return false;
  }
  for (const char* section :
       {"config", "cold_single_client", "warm_multi_client", "overload",
        "claims"}) {
    if (!j.contains(section)) {
      std::fprintf(stderr, "FAIL check: missing %s\n", section);
      return false;
    }
  }
  for (const char* section : {"cold_single_client", "warm_multi_client",
                              "overload"}) {
    for (const char* f : {"requests", "replies", "ok", "overloaded",
                          "dropped", "seconds", "throughput_rps", "p50_us",
                          "p95_us", "p99_us"}) {
      if (!j.at(section).contains(f)) {
        std::fprintf(stderr, "FAIL check: %s missing %s\n", section, f);
        return false;
      }
    }
  }
  if (j.at("config").at("warm_clients").as_u64() < 8) {
    std::fprintf(stderr, "FAIL check: record measured fewer than 8 warm "
                         "clients\n");
    return false;
  }
  const double ratio =
      j.at("claims").at("warm_over_cold_throughput").as_double();
  if (ratio < 5.0) {
    std::fprintf(stderr,
                 "FAIL check: recorded warm/cold throughput %.2fx < 5x\n",
                 ratio);
    return false;
  }
  if (j.at("overload").at("dropped").as_u64() != 0 ||
      !j.at("claims").at("overload_zero_dropped").as_bool()) {
    std::fprintf(stderr,
                 "FAIL check: recorded overload run dropped requests\n");
    return false;
  }
  if (j.at("overload").at("overloaded").as_u64() == 0) {
    std::fprintf(stderr,
                 "FAIL check: recorded overload run never shed load\n");
    return false;
  }
  if (!j.at("claims").at("clean_drains").as_bool()) {
    std::fprintf(stderr, "FAIL check: recorded run had an unclean drain\n");
    return false;
  }
  std::printf("check: %s conforms to swperf-bench-serve/v1\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string check_path;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
    } else if (a == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--smoke] [--check FILE] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  bool ok = true;
  if (!check_path.empty()) ok = check_file(check_path) && ok;
  if (smoke) {
    const serde::Json record = measure(&ok);
    ok = smoke_pass(record) && ok;
    return ok ? 0 : 1;
  }
  if (!check_path.empty() && out_path.empty()) return ok ? 0 : 1;

  swperf::bench::print_header(
      "swperf serve: concurrent-client throughput, latency and "
      "backpressure",
      "repo performance record (BENCH_serve.json), not a paper figure");

  const serde::Json root = measure(&ok);

  if (!out_path.empty()) {
    if (!swperf::bench::write_file_atomic(out_path, root.dump() + "\n")) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
      ok = false;
    } else {
      std::printf("wrote %s\n", out_path.c_str());
    }
  }
  return ok ? 0 : 1;
}
