// Figure 8: the double-buffer optimization on N-body.
//
// N-body is compute-bound, so computation already hides nearly all DMA and
// the double buffer buys only a few percent (paper: 3.7% measured, with
// the model predicting the benefit within 3.3%).  Eq. 14 caps the benefit
// at min(T_DMA / NG_DMA, T_comp - T_overlap).
#include "kernels/nbody.h"
#include "model/analysis.h"

#include "bench_common.h"

int main() {
  using swperf::sw::Table;
  namespace bench = swperf::bench;
  const auto arch = swperf::sw::ArchParams::sw26010();

  bench::print_header("Double-buffer optimization (N-body)",
                      "Figure 8 (Sections IV-2, V-C2)");

  const auto spec = swperf::kernels::nbody();
  auto plain = spec.tuned;
  plain.double_buffer = false;
  auto db = spec.tuned;
  db.double_buffer = true;

  const auto ep = bench::evaluate(spec.desc, plain, arch);
  const auto ed = bench::evaluate(spec.desc, db, arch);

  Table t("Fig. 8 — N-body with and without double buffering");
  t.header({"variant", "actual us", "pred us", "error"});
  t.row({"baseline", Table::num(ep.actual_us(arch), 1),
         Table::num(ep.predicted_us(arch), 1),
         Table::pct(std::abs(ep.error()))});
  t.row({"double buffer", Table::num(ed.actual_us(arch), 1),
         Table::num(ed.predicted_us(arch), 1),
         Table::pct(std::abs(ed.error()))});
  t.print(std::cout);

  const double measured_gain =
      (ep.actual_cycles() - ed.actual_cycles()) / ep.actual_cycles();
  const double predicted_gain =
      swperf::model::double_buffer_saving(ep.predicted) /
      ep.predicted.t_total;
  Table b("Benefit (paper: 3.7% measured, predicted within 3.3%)");
  b.header({"quantity", "value"});
  b.row({"measured improvement", Table::pct(measured_gain)});
  b.row({"Eq.14 predicted improvement", Table::pct(predicted_gain)});
  b.row({"Eq.14 cap T_DMA/NG_DMA (cycles)",
         Table::num(ep.predicted.t_dma / ep.predicted.ng_dma, 0)});
  b.row({"unhidden compute T_comp-T_overlap (cycles)",
         Table::num(ep.predicted.t_comp - ep.predicted.t_overlap, 0)});
  b.row({"benefit prediction gap",
         Table::pct(std::abs(predicted_gain - measured_gain))});
  b.print(std::cout);

  // A memory-bound contrast (right side of the paper's Figure 5): when
  // computation is already fully overlapped, double buffering buys nothing.
  swperf::kernels::NbodyConfig tiny;
  tiny.n_bodies = 512;
  auto light = swperf::kernels::nbody_cfg(tiny);
  // Strip the body down to almost no compute per interaction.
  swperf::isa::BlockBuilder bb("light");
  const auto x = bb.spm_load();
  bb.spm_store(bb.fadd(x, x));
  light.desc.body = std::move(bb).build();
  light.desc.inner_iters = 1;
  const auto lp = bench::evaluate(light.desc, plain, arch);
  const auto ld = bench::evaluate(light.desc, db, arch);
  const double gain2 =
      (lp.actual_cycles() - ld.actual_cycles()) / lp.actual_cycles();
  Table c("Scenario-2 contrast: memory-bound variant");
  c.header({"quantity", "value"});
  c.row({"measured improvement", Table::pct(gain2)});
  c.row({"Eq.14 predicted improvement",
         Table::pct(swperf::model::double_buffer_saving(lp.predicted) /
                    lp.predicted.t_total)});
  c.print(std::cout);
  return 0;
}
