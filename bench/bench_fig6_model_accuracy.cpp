// Figure 6: predicted-time breakdown and prediction error per benchmark.
//
// For every kernel of the suite (tuned configuration, like the paper's
// ported-and-tuned benchmarks), prints the predicted T_comp / T_DMA / T_g /
// T_overlap normalized by the *actual* (simulated) execution time, plus the
// prediction error. Paper headline: 5% average error, 9.6% max (bfs).
#include "kernels/suite.h"

#include "bench_common.h"

int main() {
  using swperf::sw::Table;
  namespace bench = swperf::bench;
  const auto arch = swperf::sw::ArchParams::sw26010();

  bench::print_header("Static performance model accuracy",
                      "Figure 6 (Section V-B)");

  Table t("Fig. 6 — predicted breakdown (normalized by actual) and error");
  t.header({"kernel", "class", "T_comp", "T_DMA", "T_g", "T_overlap",
            "scenario", "actual us", "pred us", "|error|"});

  swperf::sw::ErrorAccumulator acc;
  std::string worst;
  double worst_err = -1.0;
  for (const auto& spec :
       swperf::kernels::fig6_suite(swperf::kernels::Scale::kFull)) {
    const auto e = bench::evaluate(spec.desc, spec.tuned, arch);
    const double a = e.actual_cycles();
    acc.add(e.predicted.t_total, a);
    const double err = std::abs(e.error());
    if (err > worst_err) {
      worst_err = err;
      worst = spec.desc.name;
    }
    t.row({spec.desc.name, spec.irregular ? "irregular" : "regular",
           Table::num(e.predicted.t_comp / a, 2),
           Table::num(e.predicted.t_dma / a, 2),
           Table::num(e.predicted.t_g / a, 2),
           Table::num(e.predicted.t_overlap / a, 2),
           std::to_string(e.predicted.scenario),
           Table::num(e.actual_us(arch), 1),
           Table::num(e.predicted_us(arch), 1), Table::pct(err)});
  }
  t.print(std::cout);

  Table s("Headline (paper: avg 5%, max 9.6% on bfs)");
  s.header({"metric", "value"});
  s.row({"average |error|", Table::pct(acc.mean_error())});
  s.row({"max |error|", Table::pct(acc.max_error()) + " (" + worst + ")"});
  s.row({"kernels", std::to_string(acc.count())});
  s.print(std::cout);
  return 0;
}
