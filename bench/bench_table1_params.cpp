// Table I: the summary of model parameters.
#include "bench_common.h"

int main() {
  using swperf::sw::Table;
  const auto p = swperf::sw::ArchParams::sw26010();
  swperf::bench::print_header("Model input parameters",
                              "Table I (input rows)");

  Table t("Table I — model parameters (SW26010)");
  t.header({"parameter", "definition", "value"});
  t.row({"mem_bw", "memory bandwidth per core group",
         Table::num(p.mem_bw_gbps, 0) + " GB/s"});
  t.row({"Freq", "processor frequency", Table::num(p.freq_ghz, 2) + " GHz"});
  t.row({"Trans_size", "DRAM transaction size",
         std::to_string(p.trans_size_bytes) + " B"});
  t.row({"Delta_delay", "extra delay per transaction of a request",
         std::to_string(p.delta_delay_cycles) + " cycles"});
  t.row({"L_base", "baseline memory access latency",
         std::to_string(p.l_base_cycles) + " cycles"});
  t.row({"L_float", "floating point operation latency",
         std::to_string(p.l_float_cycles) + " cycles"});
  t.row({"L_fixed", "fixed point operation latency",
         std::to_string(p.l_fixed_cycles) + " cycle"});
  t.row({"L_SPM", "SPM access latency",
         std::to_string(p.l_spm_cycles) + " cycles"});
  t.row({"L_div/sqrt", "divide / sqrt latency (unpipelined)",
         std::to_string(p.l_div_sqrt_cycles) + " cycles"});
  t.row({"#CPEs/CG", "compute processing elements per core group",
         std::to_string(p.cpes_per_cg)});
  t.row({"SPM", "scratch pad memory per CPE",
         std::to_string(p.spm_bytes / 1024) + " KiB"});
  t.row({"gload_max", "max bytes per Gload request",
         std::to_string(p.gload_max_bytes) + " B"});
  t.print(std::cout);

  Table d("Derived quantities");
  d.header({"quantity", "value"});
  d.row({"transaction service time",
         Table::num(p.trans_service_cycles(), 2) + " cycles"});
  d.row({"bytes per cycle", Table::num(p.bytes_per_cycle(), 2) + " B"});
  d.row({"peak DP per core group",
         Table::num(p.peak_gflops_per_cg(), 1) + " GFLOPS"});
  d.print(std::cout);
  return 0;
}
