// Closed-loop optimizer record: what `swperf optimize` recovers of the
// Table II tuning gains when it starts from the naive launch and must
// *prove* every step (model improvement, simulator confirmation, checker
// cleanliness, bit-level equivalence) before taking it.
//
// Like bench_tuning_cold this measures the repo's own machinery, not the
// modeled machine: each kernel gets a fresh pipeline::Session, so the
// recorded host time is a genuine cold campaign including every guard run.
// bench/BENCH_optimize.json checks in one measured run; the
// perf_smoke_optimize ctest keeps its headline claims honest.
//
// Modes:
//   bench_optimize                 full measurement, human-readable
//   bench_optimize --out FILE      ... and write the JSON record
//   bench_optimize --smoke         seconds-fast correctness pass on two
//                                  kernels: progress is monotone, nothing
//                                  regresses, >= 1 step accepted
//   bench_optimize --check FILE    validate FILE against the
//                                  BENCH_optimize.json schema and its
//                                  headline claims (no kernel regresses
//                                  in predicted or measured cycles; >= 1
//                                  kernel at >= 1.5x measured speedup)
// --smoke and --check compose; the perf_smoke_optimize ctest runs both.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "kernels/suite.h"
#include "pipeline/session.h"
#include "serde/json.h"
#include "transform/optimizer.h"

namespace {

using namespace swperf;

/// One cold guarded campaign from the naive launch.  The monotonicity
/// invariant — optimization must never regress either score — is checked
/// here, on the freshly measured run, not just on the checked-in record.
serde::Json measure_kernel(const std::string& name, bool* ok) {
  pipeline::Session session;
  const kernels::KernelSpec spec = kernels::make(name, kernels::Scale::kSmall);
  transform::Optimizer opt(session);
  const transform::OptimizeResult r = opt.optimize(spec.desc, spec.naive);

  if (r.final_predicted > r.initial_predicted) {
    std::fprintf(stderr, "FAIL %s: predicted cycles regressed\n",
                 name.c_str());
    *ok = false;
  }
  if (r.final_measured > r.initial_measured) {
    std::fprintf(stderr, "FAIL %s: measured cycles regressed\n",
                 name.c_str());
    *ok = false;
  }
  for (const auto& s : r.steps) {
    if (s.accepted && !(s.measured_after < s.measured_before)) {
      std::fprintf(stderr, "FAIL %s: accepted step did not improve\n",
                   name.c_str());
      *ok = false;
    }
  }

  std::printf("%-10s %2d accepted / %2zu tried in %d rounds\n", name.c_str(),
              r.accepted_steps, r.steps.size(), r.rounds);
  std::printf("  naive:     %12.0f cycles measured\n", r.initial_measured);
  std::printf("  optimized: %12.0f cycles measured  (%.2fx, %.3f s host)\n",
              r.final_measured, r.speedup(), r.host_seconds);

  serde::Json j = serde::Json::object();
  j.set("name", name);
  j.set("initial_predicted", r.initial_predicted);
  j.set("final_predicted", r.final_predicted);
  j.set("initial_measured", r.initial_measured);
  j.set("final_measured", r.final_measured);
  j.set("speedup", r.speedup());
  j.set("accepted_steps", r.accepted_steps);
  j.set("tried_steps", static_cast<std::uint64_t>(r.steps.size()));
  j.set("rounds", r.rounds);
  j.set("host_seconds", r.host_seconds);
  j.set("no_regression", r.final_predicted <= r.initial_predicted &&
                             r.final_measured <= r.initial_measured);
  return j;
}

bool smoke_pass() {
  bool ok = true;
  for (const char* name : {"kmeans", "hotspot"}) {
    bool kernel_ok = true;
    const serde::Json j = measure_kernel(name, &kernel_ok);
    ok = ok && kernel_ok;
    if (j.at("accepted_steps").as_double() == 0.0) {
      std::fprintf(stderr, "FAIL smoke %s: no step accepted from naive\n",
                   name);
      ok = false;
    }
  }
  std::printf("smoke: %s\n", ok ? "OK" : "FAILED");
  return ok;
}

// ---- BENCH_optimize.json schema check --------------------------------------

bool check_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FAIL check: cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  serde::Json j;
  try {
    j = serde::Json::parse_or_throw(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL check: %s does not parse: %s\n", path.c_str(),
                 e.what());
    return false;
  }
  if (!j.contains("schema") ||
      j.at("schema").as_string() != "swperf-bench-optimize/v1") {
    std::fprintf(stderr, "FAIL check: bad or missing schema tag\n");
    return false;
  }
  if (!j.contains("kernels") || !j.at("kernels").is_array() ||
      j.at("kernels").size() == 0) {
    std::fprintf(stderr, "FAIL check: kernels missing or empty\n");
    return false;
  }
  bool headline = false;  // >= 1 kernel at the claimed speedup
  for (std::size_t i = 0; i < j.at("kernels").size(); ++i) {
    const serde::Json& k = j.at("kernels").items()[i];
    for (const char* f :
         {"name", "initial_predicted", "final_predicted", "initial_measured",
          "final_measured", "speedup", "accepted_steps", "tried_steps",
          "rounds", "host_seconds", "no_regression"}) {
      if (!k.contains(f)) {
        std::fprintf(stderr, "FAIL check: kernel %zu missing %s\n", i, f);
        return false;
      }
    }
    if (!k.at("no_regression").as_bool()) {
      std::fprintf(stderr, "FAIL check: kernel %zu regressed\n", i);
      return false;
    }
    if (k.at("final_predicted").as_double() >
            k.at("initial_predicted").as_double() ||
        k.at("final_measured").as_double() >
            k.at("initial_measured").as_double()) {
      std::fprintf(stderr, "FAIL check: kernel %zu cycles inconsistent with "
                           "no_regression\n",
                   i);
      return false;
    }
    if (k.at("speedup").as_double() >= 1.5) headline = true;
  }
  if (!headline) {
    std::fprintf(stderr,
                 "FAIL check: no kernel shows >= 1.5x measured speedup\n");
    return false;
  }
  std::printf("check: %s conforms to swperf-bench-optimize/v1\n",
              path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string check_path;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
    } else if (a == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_optimize [--smoke] [--check FILE] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  bool ok = true;
  if (!check_path.empty()) ok = check_file(check_path) && ok;

  if (smoke) {
    ok = smoke_pass() && ok;
    return ok ? 0 : 1;
  }
  if (!check_path.empty() && out_path.empty()) return ok ? 0 : 1;

  swperf::bench::print_header(
      "Guarded closed-loop optimization from the Table II naive launches",
      "repo performance record (BENCH_optimize.json), not a paper figure");

  serde::Json kernels_json = serde::Json::array();
  for (const std::string& name : kernels::table2_kernels()) {
    kernels_json.push_back(measure_kernel(name, &ok));
  }

  serde::Json root = serde::Json::object();
  root.set("schema", std::string("swperf-bench-optimize/v1"));
  root.set("kernels", std::move(kernels_json));

  if (!out_path.empty()) {
    if (!swperf::bench::write_file_atomic(out_path, root.dump() + "\n")) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
      ok = false;
    } else {
      std::printf("wrote %s\n", out_path.c_str());
    }
  }
  return ok ? 0 : 1;
}
