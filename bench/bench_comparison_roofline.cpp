// Roofline vs the precise model (Section VI's related-work argument).
//
// Two demonstrations:
//  1. Accuracy: Roofline is an upper-bound model; across the suite it
//     underestimates execution time badly, while the precise model stays
//     near 5%.
//  2. Blindness: sweeping DMA granularity (Fig. 7(a)) changes measured
//     time by >30% while arithmetic intensity — and hence the Roofline
//     prediction — does not move at all. "The subtle effects of some of
//     the optimizations ... cannot be captured by upper-bound analysis."
#include "kernels/kmeans.h"
#include "kernels/suite.h"
#include "model/roofline.h"

#include "bench_common.h"

int main() {
  using swperf::sw::Table;
  namespace bench = swperf::bench;
  const auto arch = swperf::sw::ArchParams::sw26010();

  bench::print_header("Roofline vs precise model",
                      "Section VI comparison (Roofline [24])");

  const swperf::model::RooflineModel roof(arch);
  const swperf::model::RooflineModel roof_tx(arch,
                                             /*transaction_aware=*/true);

  Table t("Prediction error across the suite");
  t.header({"kernel", "AI (flops/B)", "precise", "roofline",
            "roofline(tx-aware)"});
  swperf::sw::ErrorAccumulator e_precise, e_roof, e_rooftx;
  for (const auto& spec :
       swperf::kernels::fig6_suite(swperf::kernels::Scale::kFull)) {
    const auto e = bench::evaluate(spec.desc, spec.tuned, arch);
    const double actual = e.actual_cycles();
    const auto r = roof.predict(e.lowered.summary);
    const auto rt = roof_tx.predict(e.lowered.summary);
    e_precise.add(e.predicted.t_total, actual);
    e_roof.add(std::max(r.t_cycles, 1.0), actual);
    e_rooftx.add(std::max(rt.t_cycles, 1.0), actual);
    t.row({spec.desc.name, Table::num(r.arithmetic_intensity, 2),
           Table::pct(std::abs(e.error())),
           Table::pct(std::abs(r.t_cycles - actual) / actual),
           Table::pct(std::abs(rt.t_cycles - actual) / actual)});
  }
  t.row({"AVERAGE", "",
         Table::pct(e_precise.mean_error()), Table::pct(e_roof.mean_error()),
         Table::pct(e_rooftx.mean_error())});
  t.print(std::cout);

  // Blindness to granularity (the paper's explicit example).
  swperf::kernels::KmeansConfig cfg;
  cfg.n_points = 64 * 256;
  const auto spec = swperf::kernels::kmeans_cfg(cfg);
  Table g("Fig. 7(a) sweep through Roofline's eyes");
  g.header({"elems/req", "actual us", "precise us", "roofline us", "AI"});
  for (const std::uint64_t gran : {256u, 64u, 16u}) {
    auto params = spec.tuned;
    params.tile = gran;
    const auto e = bench::evaluate(spec.desc, params, arch);
    const auto r = roof.predict(e.lowered.summary);
    g.row({std::to_string(gran), Table::num(e.actual_us(arch), 1),
           Table::num(e.predicted_us(arch), 1),
           Table::num(swperf::sw::cycles_to_us(r.t_cycles, arch.freq_ghz),
                      1),
           Table::num(r.arithmetic_intensity, 3)});
  }
  g.print(std::cout);
  std::cout << "(granularity moves measured time ~30% at constant "
               "arithmetic intensity: Roofline cannot see it)\n";
  return 0;
}
