// Multi-core-group scaling through cross-section memory (Section V-C3).
//
// The paper scales programs beyond one CG by allocating data on
// cross-section memory, interleaved round-robin over the CGs' physical
// memory, and measures that (a) cross-section bandwidth is "only slightly
// lower than the local memory" and (b) effective bandwidth grows linearly
// with the number of CGs — which is how the model treats mem_bw in Eq. 4
// and 10 for multi-CG runs.
#include "kernels/vecadd.h"

#include "bench_common.h"
#include "sim/chip.h"

int main() {
  using swperf::sw::Table;
  namespace bench = swperf::bench;
  const auto arch = swperf::sw::ArchParams::sw26010();

  bench::print_header("Cross-section memory scaling over core groups",
                      "Section V-C3 (multi-CG modelling)");

  // A purely bandwidth-bound kernel; work grows with the CPE count so
  // per-CG traffic is constant (weak scaling).
  Table t("Weak scaling of a bandwidth-bound stream");
  t.header({"CGs", "CPEs", "elements", "actual us", "pred us", "error",
            "effective GB/s", "scaling"});
  double base_bw = 0.0;
  for (const std::uint32_t cgs : {1u, 2u, 3u, 4u}) {
    const std::uint64_t n = static_cast<std::uint64_t>(cgs) << 20;
    const auto spec = swperf::kernels::vecadd_n(n);
    auto params = spec.tuned;
    params.requested_cpes = cgs * arch.cpes_per_cg;
    params.double_buffer = false;
    const auto e = bench::evaluate(spec.desc, params, arch);
    const double secs =
        swperf::sw::cycles_to_seconds(e.actual_cycles(), arch.freq_ghz);
    const double bytes = 3.0 * 8.0 * static_cast<double>(n);
    const double gbps = bytes / secs / 1e9;
    if (base_bw == 0.0) base_bw = gbps;
    t.row({std::to_string(cgs), std::to_string(params.requested_cpes),
           std::to_string(n), Table::num(e.actual_us(arch), 1),
           Table::num(e.predicted_us(arch), 1),
           Table::pct(std::abs(e.error())), Table::num(gbps, 1),
           Table::times(gbps / base_bw)});
  }
  t.print(std::cout);
  std::cout << "(paper: cross-section bandwidth scales linearly with CGs, "
               "slightly below local;\n our cross-section efficiency "
               "parameter is "
            << arch.cross_section_bw_efficiency << ")\n";

  // Whole-chip cross-check: the same aggregate work expressed as g
  // concurrent single-CG jobs gang-scheduled on a g-CG chip (the scenario
  // layer's view) must land where the analytic Eq. 4/10 multi-CG
  // prediction and the single multi-CG launch simulation land — the three
  // answers describe one machine, so the error columns keep them honest
  // against each other.
  Table t2("Chip scenarios vs analytic multi-CG prediction");
  t2.header({"jobs x 1 CG", "chip us", "launch us", "analytic us",
             "chip vs launch", "chip vs model"});
  swperf::pipeline::Session session(arch);
  for (const std::uint32_t g : {1u, 2u, 3u, 4u}) {
    const std::uint64_t n = 1ull << 20;  // elements per job (weak scaling)
    const auto spec = swperf::kernels::vecadd_n(n);
    auto params = spec.tuned;
    params.requested_cpes = arch.cpes_per_cg;
    params.double_buffer = false;
    const auto& lk = session.lower(spec.desc, params);

    swperf::sim::ChipScenario scn;
    scn.arch = arch;
    scn.core_groups = g;
    for (std::uint32_t j = 0; j < g; ++j) {
      swperf::sim::ChipJob job;
      job.name = "stream" + std::to_string(j);
      job.binary = lk.binary;
      job.programs = lk.programs;
      job.core_groups = 1;
      scn.jobs.push_back(std::move(job));
    }
    const auto chip = swperf::sim::simulate_chip(scn);
    const double chip_us =
        swperf::sw::cycles_to_us(chip.sim.total_cycles(), arch.freq_ghz);

    const auto wspec = swperf::kernels::vecadd_n(g * n);
    auto wparams = wspec.tuned;
    wparams.requested_cpes = g * arch.cpes_per_cg;
    wparams.double_buffer = false;
    const auto e = bench::evaluate(wspec.desc, wparams, arch);
    const double launch_us = e.actual_us(arch);
    const double model_us = e.predicted_us(arch);

    t2.row({std::to_string(g), Table::num(chip_us, 1),
            Table::num(launch_us, 1), Table::num(model_us, 1),
            Table::pct(std::abs(chip_us - launch_us) / launch_us),
            Table::pct(std::abs(chip_us - model_us) / model_us)});
  }
  t2.print(std::cout);
  std::cout << "(the chip scenario's concurrent 1-CG jobs share "
               "cross-section bandwidth through\n the same queueing as a "
               "single multi-CG launch, so all three views should agree)\n";
  return 0;
}
