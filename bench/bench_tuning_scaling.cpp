// Parallel tuning engine scaling on the Table II campaigns.
//
// Every variant of a campaign is an independent lowering + evaluation, so
// wall-clock time should fall near-linearly with --jobs until the host
// runs out of cores. Reported per kernel, empirical tuner (the expensive
// campaign — each variant is a full simulation):
//   * host seconds at 1/2/4/8 jobs and the speedup over 1 job;
//   * a determinism cross-check (the N-job winner must equal the serial
//     winner bit-for-bit — the tests enforce this, the bench re-asserts);
//   * memoization: a repeated campaign over a shared cache, where every
//     evaluation hits and the rerun cost collapses to lowering time.
//
// Speedup is bounded by the host's core count: on a single-core container
// the engine degrades gracefully to ~1x (the numbers below say so rather
// than pretend).
//
// `--out FILE` additionally writes a JSON record
// (swperf-bench-tuning-scaling/v1); its memoized-rerun object carries the
// same fields as BENCH_sim.json's tuning runs (host_seconds, variants,
// variants_per_sec, cache_hits, lowers_skipped) so the two records diff
// cleanly.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "kernels/suite.h"
#include "serde/json.h"
#include "sw/pool.h"
#include "tuning/tuner.h"

#include "bench_common.h"

int main(int argc, char** argv) {
  using swperf::sw::Table;
  namespace bench = swperf::bench;
  namespace serde = swperf::serde;
  namespace tuning = swperf::tuning;
  const auto arch = swperf::sw::ArchParams::sw26010();

  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_tuning_scaling [--out FILE]\n");
      return 2;
    }
  }

  bench::print_header("Parallel tuning engine scaling",
                      "Table II campaigns, empirical tuner");
  std::printf("host hardware threads: %u\n\n",
              swperf::sw::resolve_jobs(0));

  const int jobs_sweep[] = {1, 2, 4, 8};
  const auto jobs_opt = [](int jobs) {
    tuning::TuningOptions o;
    o.jobs = jobs;
    return o;
  };

  Table t("Empirical campaign wall-clock vs --jobs");
  t.header({"kernel", "variants", "t(1j)", "t(2j)", "t(4j)", "t(8j)",
            "speedup(8j)", "same pick", "rerun hit rate", "rerun t"});

  double largest_t1 = 0.0, largest_t8 = 0.0;
  std::size_t largest_variants = 0;
  std::string largest_kernel;

  serde::Json kernels_json = serde::Json::array();
  // Same field set as BENCH_sim.json's tuning cold/warm runs.
  const auto run_json = [](const tuning::TuningResult& r) {
    serde::Json j = serde::Json::object();
    j.set("host_seconds", r.host_seconds);
    j.set("variants", static_cast<std::uint64_t>(r.variants));
    j.set("variants_per_sec",
          r.host_seconds > 0.0
              ? static_cast<double>(r.variants) / r.host_seconds
              : 0.0);
    j.set("cache_hits", r.stats.cache_hits);
    j.set("lowers_skipped", r.stats.lowers_skipped);
    return j;
  };

  for (const auto& name : swperf::kernels::table2_kernels()) {
    const auto spec =
        swperf::kernels::make(name, swperf::kernels::Scale::kSmall);
    const auto space = tuning::SearchSpace::standard(spec.desc, arch);

    double host[4] = {0, 0, 0, 0};
    tuning::TuningResult serial, last;
    for (int j = 0; j < 4; ++j) {
      const tuning::EmpiricalTuner tuner(arch, {},
                                         jobs_opt(jobs_sweep[j]));
      const auto r = tuner.tune(spec.desc, space);
      host[j] = r.host_seconds;
      if (jobs_sweep[j] == 1) serial = r;
      last = r;
    }
    const bool same =
        serial.best.to_string() == last.best.to_string() &&
        serial.best_measured_cycles == last.best_measured_cycles;

    // Memoized rerun: same campaign, shared cache, every evaluation hits.
    auto cache = std::make_shared<tuning::EvalCache>();
    const tuning::EmpiricalTuner cached(arch, {},
                                        {.jobs = 8, .cache = cache});
    cached.tune(spec.desc, space);
    const auto rerun = cached.tune(spec.desc, space);

    if (serial.host_seconds > largest_t1) {
      largest_t1 = serial.host_seconds;
      largest_t8 = host[3];
      largest_variants = serial.variants;
      largest_kernel = name;
    }

    t.row({name, std::to_string(serial.variants),
           Table::num(host[0], 3) + "s", Table::num(host[1], 3) + "s",
           Table::num(host[2], 3) + "s", Table::num(host[3], 3) + "s",
           Table::times(host[0] / host[3]), same ? "yes" : "NO",
           Table::pct(rerun.stats.hit_rate()),
           Table::num(rerun.host_seconds, 3) + "s"});

    serde::Json k = serde::Json::object();
    k.set("name", name);
    k.set("variants", static_cast<std::uint64_t>(serial.variants));
    serde::Json per_jobs = serde::Json::object();
    for (int j = 0; j < 4; ++j) {
      per_jobs.set("jobs_" + std::to_string(jobs_sweep[j]), host[j]);
    }
    k.set("host_seconds", std::move(per_jobs));
    k.set("same_pick", same);
    k.set("memoized_rerun", run_json(rerun));
    kernels_json.push_back(std::move(k));

    if (!same) {
      std::fprintf(stderr,
                   "determinism violation on %s: parallel pick differs\n",
                   name.c_str());
      return 1;
    }
  }
  t.print(std::cout);

  std::printf(
      "\nlargest campaign: %s (%zu variants) %.3fs -> %.3fs at 8 jobs "
      "(%.2fx)\n",
      largest_kernel.c_str(), largest_variants, largest_t1, largest_t8,
      largest_t8 > 0 ? largest_t1 / largest_t8 : 0.0);
  std::printf(
      "speedup is capped by the host's %u hardware thread(s); the "
      "determinism tests guarantee any --jobs value returns the serial "
      "result bit-for-bit\n",
      swperf::sw::resolve_jobs(0));

  if (!out_path.empty()) {
    serde::Json root = serde::Json::object();
    root.set("schema", std::string("swperf-bench-tuning-scaling/v1"));
    root.set("hardware_threads",
             static_cast<std::uint64_t>(swperf::sw::resolve_jobs(0)));
    root.set("kernels", std::move(kernels_json));
    std::ofstream out(out_path);
    out << root.dump() << "\n";
    if (!out) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
