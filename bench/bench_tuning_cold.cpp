// Cold-run tuning throughput: exhaustive enumeration vs. branch-and-bound
// with admissible analytic lower bounds (tuning/bounds.h) and skeleton
// sharing (swacc/skeleton.h).
//
// Unlike the paper-figure benches this one measures *this repo's own*
// static tuner, not the modeled machine: it pins how much of a first-ever
// ("cold cache") campaign the bound sieve avoids paying for.  Exhaustive
// and branch-and-bound each get a fresh private cache, so every number is
// a genuine cold run; the two must agree on the winner bit for bit —
// branch-and-bound only skips variants whose lower bound proves they
// cannot enter the winner's tie window.  docs/PERF.md documents the
// methodology; bench/BENCH_tuning.json checks in one measured run.
//
// Modes:
//   bench_tuning_cold                 full measurement, human-readable
//   bench_tuning_cold --out FILE      ... and write the JSON record
//   bench_tuning_cold --smoke         seconds-fast correctness pass:
//                                     winner identity on two kernels,
//                                     bound_pruned and skeleton_reuses
//                                     both nonzero
//   bench_tuning_cold --check FILE    validate FILE against the
//                                     BENCH_tuning.json schema and its
//                                     headline claims (all winners
//                                     identical; >= 1 kernel with >= 2x
//                                     wall-clock or evaluation reduction
//                                     and both counters nonzero)
// --smoke and --check compose; the perf_smoke_tuning ctest runs both.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "kernels/suite.h"
#include "serde/json.h"
#include "tuning/eval_cache.h"
#include "tuning/space.h"
#include "tuning/tuner.h"

namespace {

using namespace swperf;

double min_predicted(const tuning::TuningResult& r) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& v : r.explored) best = std::min(best, v.predicted_cycles);
  return best;
}

/// One cold campaign: a fresh private cache, so nothing is amortized.
tuning::TuningResult run_cold(const swacc::KernelDesc& desc,
                              const tuning::SearchSpace& space,
                              const sw::ArchParams& arch, bool bnb) {
  tuning::TuningOptions opts;
  opts.jobs = 1;  // serial: wall clocks compare work, not scheduling
  opts.branch_and_bound = bnb;
  return tuning::StaticTuner(arch, {}, opts).tune(desc, space);
}

/// The identity the branch-and-bound proof promises: same variant (by the
/// canonical parameter encoding), same validated cycles, same model
/// minimum over the explored set.
bool same_winner(const swacc::KernelDesc& desc, const sw::ArchParams& arch,
                 const tuning::TuningResult& ex,
                 const tuning::TuningResult& bnb, std::string* why) {
  auto fail = [&](const char* what) {
    if (why != nullptr) *why = what;
    return false;
  };
  if (tuning::prelower_key(desc, ex.best, arch) !=
      tuning::prelower_key(desc, bnb.best, arch)) {
    return fail("best params");
  }
  if (ex.best_measured_cycles != bnb.best_measured_cycles) {
    return fail("best_measured_cycles");
  }
  if (min_predicted(ex) != min_predicted(bnb)) return fail("min predicted");
  return true;
}

serde::Json mode_json(const tuning::TuningResult& r, double host_seconds) {
  serde::Json j = serde::Json::object();
  j.set("host_seconds", host_seconds);
  j.set("full_evaluations", r.stats.evaluations);
  j.set("variants_per_sec",
        host_seconds > 0.0
            ? static_cast<double>(r.variants) / host_seconds
            : 0.0);
  return j;
}

serde::Json measure_kernel(const std::string& name, int reps, bool* ok) {
  const kernels::KernelSpec spec = kernels::make(name, kernels::Scale::kSmall);
  const sw::ArchParams arch = sw::ArchParams::sw26010();
  const tuning::SearchSpace space =
      tuning::SearchSpace::standard(spec.desc, arch);

  // Best-of-reps wall clocks; the evaluated sets are deterministic, so
  // every rep of a mode does identical work.
  tuning::TuningResult ex, bnb;
  double ex_seconds = 0.0;
  double bnb_seconds = 0.0;
  for (int r = 0; r < reps; ++r) {
    tuning::TuningResult e = run_cold(spec.desc, space, arch, false);
    tuning::TuningResult b = run_cold(spec.desc, space, arch, true);
    if (r == 0 || e.host_seconds < ex_seconds) ex_seconds = e.host_seconds;
    if (r == 0 || b.host_seconds < bnb_seconds) bnb_seconds = b.host_seconds;
    if (r == 0) {
      ex = std::move(e);
      bnb = std::move(b);
    }
  }

  std::string why;
  const bool identical = same_winner(spec.desc, arch, ex, bnb, &why);
  if (!identical) {
    std::fprintf(stderr, "FAIL %s: winners disagree on %s\n", name.c_str(),
                 why.c_str());
    *ok = false;
  }

  const double wall_speedup =
      bnb_seconds > 0.0 ? ex_seconds / bnb_seconds : 0.0;
  const double eval_reduction =
      bnb.stats.evaluations > 0
          ? static_cast<double>(ex.stats.evaluations) /
                static_cast<double>(bnb.stats.evaluations)
          : 0.0;

  std::printf("%-10s %3zu variants\n", name.c_str(), ex.variants);
  std::printf("  exhaustive: %8.3f ms  %4llu evaluations\n",
              ex_seconds * 1e3,
              static_cast<unsigned long long>(ex.stats.evaluations));
  std::printf(
      "  b&b:        %8.3f ms  %4llu evaluations  (%llu bound-pruned, "
      "%llu skeleton reuses)\n",
      bnb_seconds * 1e3,
      static_cast<unsigned long long>(bnb.stats.evaluations),
      static_cast<unsigned long long>(bnb.stats.bound_pruned),
      static_cast<unsigned long long>(bnb.stats.skeleton_reuses));
  std::printf("  speedup:    %8.2fx wall, %.2fx evaluations, winner %s\n\n",
              wall_speedup, eval_reduction,
              identical ? "identical" : "DIFFERS");

  serde::Json j = serde::Json::object();
  j.set("name", name);
  j.set("variants", static_cast<std::uint64_t>(ex.variants));
  j.set("exhaustive", mode_json(ex, ex_seconds));
  serde::Json b = mode_json(bnb, bnb_seconds);
  b.set("bound_pruned", bnb.stats.bound_pruned);
  b.set("skeleton_reuses", bnb.stats.skeleton_reuses);
  j.set("bnb", std::move(b));
  j.set("wall_speedup", wall_speedup);
  j.set("eval_reduction", eval_reduction);
  j.set("same_winner", identical);
  return j;
}

// ---- Smoke correctness pass ------------------------------------------------

bool smoke_pass() {
  bool ok = true;
  // Two kernels whose standard spaces exercise both fast paths: the bound
  // sieve must actually prune and the skeleton level must actually reuse.
  for (const char* name : {"kmeans", "backprop"}) {
    bool kernel_ok = true;
    const serde::Json j = measure_kernel(name, /*reps=*/1, &kernel_ok);
    ok = ok && kernel_ok;
    if (!j.at("same_winner").as_bool()) ok = false;  // already reported
    if (j.at("bnb").at("bound_pruned").as_double() == 0.0) {
      std::fprintf(stderr, "FAIL smoke %s: bound_pruned == 0\n", name);
      ok = false;
    }
    if (j.at("bnb").at("skeleton_reuses").as_double() == 0.0) {
      std::fprintf(stderr, "FAIL smoke %s: skeleton_reuses == 0\n", name);
      ok = false;
    }
  }
  std::printf("smoke: %s\n", ok ? "OK" : "FAILED");
  return ok;
}

// ---- BENCH_tuning.json schema check ----------------------------------------

bool check_mode_obj(const serde::Json& m, const char* where) {
  for (const char* f :
       {"host_seconds", "full_evaluations", "variants_per_sec"}) {
    if (!m.contains(f) || !m.at(f).is_number()) {
      std::fprintf(stderr, "FAIL check: %s.%s missing or not a number\n",
                   where, f);
      return false;
    }
  }
  return true;
}

bool check_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FAIL check: cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  serde::Json j;
  try {
    j = serde::Json::parse_or_throw(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL check: %s does not parse: %s\n", path.c_str(),
                 e.what());
    return false;
  }
  if (!j.contains("schema") ||
      j.at("schema").as_string() != "swperf-bench-tuning/v1") {
    std::fprintf(stderr, "FAIL check: bad or missing schema tag\n");
    return false;
  }
  if (!j.contains("kernels") || !j.at("kernels").is_array() ||
      j.at("kernels").size() == 0) {
    std::fprintf(stderr, "FAIL check: kernels missing or empty\n");
    return false;
  }
  bool headline = false;  // >= 1 kernel delivering the claimed reduction
  for (std::size_t i = 0; i < j.at("kernels").size(); ++i) {
    const serde::Json& k = j.at("kernels").items()[i];
    if (!k.contains("name") || !k.contains("exhaustive") ||
        !k.contains("bnb") || !k.contains("wall_speedup") ||
        !k.contains("eval_reduction") || !k.contains("same_winner")) {
      std::fprintf(stderr, "FAIL check: kernel %zu incomplete\n", i);
      return false;
    }
    if (!k.at("same_winner").as_bool()) {
      std::fprintf(stderr, "FAIL check: kernel %zu winner differs\n", i);
      return false;
    }
    if (!check_mode_obj(k.at("exhaustive"), "exhaustive") ||
        !check_mode_obj(k.at("bnb"), "bnb")) {
      return false;
    }
    const serde::Json& b = k.at("bnb");
    if (!b.contains("bound_pruned") || !b.contains("skeleton_reuses")) {
      std::fprintf(stderr, "FAIL check: kernel %zu bnb counters missing\n",
                   i);
      return false;
    }
    if ((k.at("wall_speedup").as_double() >= 2.0 ||
         k.at("eval_reduction").as_double() >= 2.0) &&
        b.at("bound_pruned").as_double() > 0.0 &&
        b.at("skeleton_reuses").as_double() > 0.0) {
      headline = true;
    }
  }
  if (!headline) {
    std::fprintf(stderr,
                 "FAIL check: no kernel shows >= 2x wall or evaluation "
                 "reduction with both counters nonzero\n");
    return false;
  }
  std::printf("check: %s conforms to swperf-bench-tuning/v1\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string check_path;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
    } else if (a == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_tuning_cold [--smoke] [--check FILE] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  bool ok = true;
  if (!check_path.empty()) ok = check_file(check_path) && ok;

  if (smoke) {
    ok = smoke_pass() && ok;
    return ok ? 0 : 1;
  }
  if (!check_path.empty() && out_path.empty()) return ok ? 0 : 1;

  swperf::bench::print_header(
      "Cold-run static tuning: exhaustive vs. branch-and-bound",
      "repo performance record (BENCH_tuning.json), not a paper figure");

  serde::Json kernels_json = serde::Json::array();
  for (const std::string& name : kernels::table2_kernels()) {
    kernels_json.push_back(measure_kernel(name, /*reps=*/3, &ok));
  }

  serde::Json root = serde::Json::object();
  root.set("schema", std::string("swperf-bench-tuning/v1"));
  root.set("kernels", std::move(kernels_json));

  if (!out_path.empty()) {
    if (!swperf::bench::write_file_atomic(out_path, root.dump() + "\n")) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
      ok = false;
    } else {
      std::printf("wrote %s\n", out_path.c_str());
    }
  }
  return ok ? 0 : 1;
}
