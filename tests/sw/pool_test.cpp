#include "sw/pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace swperf::sw {
namespace {

TEST(Pool, VisitsEveryIndexExactlyOnce) {
  for (const int jobs : {1, 2, 3, 8}) {
    for (const std::uint64_t n : {0ull, 1ull, 7ull, 64ull, 1000ull}) {
      std::vector<std::atomic<int>> visits(n);
      parallel_for(n, jobs, [&](std::uint64_t i) {
        visits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::uint64_t i = 0; i < n; ++i) {
        EXPECT_EQ(visits[i].load(), 1) << "i=" << i << " jobs=" << jobs;
      }
    }
  }
}

TEST(Pool, ResultsLandInCallerSlotsRegardlessOfSchedule) {
  // The determinism contract: slot i only ever depends on i.
  constexpr std::uint64_t kN = 257;
  std::vector<std::uint64_t> serial(kN), parallel(kN);
  const auto body = [](std::uint64_t i) { return i * i + 17; };
  parallel_for(kN, 1, [&](std::uint64_t i) { serial[i] = body(i); });
  parallel_for(kN, 8, [&](std::uint64_t i) { parallel[i] = body(i); });
  EXPECT_EQ(serial, parallel);
}

TEST(Pool, MoreJobsThanWorkIsFine) {
  std::atomic<std::uint64_t> sum{0};
  parallel_for(3, 16, [&](std::uint64_t i) {
    sum.fetch_add(i + 1, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 6u);
}

TEST(Pool, RethrowsLowestFailingIndex) {
  // Indices 5 and 40 both throw; the rethrown message must always be the
  // lowest one's, independent of which worker hit its failure first.
  for (int rep = 0; rep < 8; ++rep) {
    try {
      parallel_for(64, 4, [&](std::uint64_t i) {
        if (i == 5 || i == 40) {
          throw std::runtime_error("fail@" + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "fail@5");
    }
  }
}

TEST(Pool, ResolveJobs) {
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_EQ(resolve_jobs(8), 8u);
  EXPECT_GE(resolve_jobs(0), 1u);   // hardware concurrency, at least 1
  EXPECT_GE(resolve_jobs(-1), 1u);
}

}  // namespace
}  // namespace swperf::sw
