#include "sw/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sw/error.h"

namespace swperf::sw {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t("demo");
  t.header({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22    |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t("demo");
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), Error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.0534, 1), "5.3%");
  EXPECT_EQ(Table::times(2.407, 2), "2.41x");
}

}  // namespace
}  // namespace swperf::sw
