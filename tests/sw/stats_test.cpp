#include "sw/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "sw/error.h"

namespace swperf::sw {
namespace {

TEST(Stats, MeanAndStdev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stdev(xs), 1.118033988749895, 1e-12);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stdev(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, Geomean) {
  const std::vector<double> xs{1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
  const std::vector<double> bad{1.0, 0.0};
  EXPECT_THROW(geomean(bad), Error);
}

TEST(Stats, MinMaxMedian) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(max_of(xs), 3.0);
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(median(xs), 2.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, RelError) {
  EXPECT_DOUBLE_EQ(rel_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(rel_error(90.0, 100.0), 0.1);
  EXPECT_THROW(rel_error(1.0, 0.0), Error);
}

TEST(Stats, ErrorAccumulatorAggregates) {
  ErrorAccumulator acc;
  acc.add(105.0, 100.0);
  acc.add(100.0, 80.0);  // 25%
  EXPECT_EQ(acc.count(), 2u);
  EXPECT_NEAR(acc.mean_error(), (0.05 + 0.25) / 2.0, 1e-12);
  EXPECT_NEAR(acc.max_error(), 0.25, 1e-12);
}

}  // namespace
}  // namespace swperf::sw
