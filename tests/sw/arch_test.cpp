#include "sw/arch.h"

#include <gtest/gtest.h>

#include "sw/error.h"

namespace swperf::sw {
namespace {

TEST(ArchParams, TableIDefaults) {
  const ArchParams p = ArchParams::sw26010();
  EXPECT_DOUBLE_EQ(p.mem_bw_gbps, 32.0);
  EXPECT_DOUBLE_EQ(p.freq_ghz, 1.45);
  EXPECT_EQ(p.trans_size_bytes, 256u);
  EXPECT_EQ(p.delta_delay_cycles, 50u);
  EXPECT_EQ(p.l_base_cycles, 220u);
  EXPECT_EQ(p.l_float_cycles, 9u);
  EXPECT_EQ(p.l_fixed_cycles, 1u);
  EXPECT_EQ(p.l_spm_cycles, 3u);
  EXPECT_EQ(p.l_div_sqrt_cycles, 34u);
  EXPECT_EQ(p.cpes_per_cg, 64u);
  EXPECT_EQ(p.core_groups, 4u);
  EXPECT_EQ(p.spm_bytes, 64u * 1024u);
  EXPECT_NO_THROW(p.validate());
}

TEST(ArchParams, TransactionServiceTime) {
  const ArchParams p;
  // 256 B at 32 GB/s on a 1.45 GHz clock: 11.6 cycles per transaction.
  EXPECT_NEAR(p.trans_service_cycles(), 11.6, 1e-9);
  EXPECT_EQ(p.trans_service_ticks(), 116u);
  EXPECT_NEAR(p.bytes_per_cycle(), 32.0 / 1.45, 1e-12);
}

TEST(ArchParams, TransactionsForRoundsUp) {
  const ArchParams p;
  EXPECT_EQ(p.transactions_for(0), 0u);
  EXPECT_EQ(p.transactions_for(1), 1u);
  EXPECT_EQ(p.transactions_for(256), 1u);
  EXPECT_EQ(p.transactions_for(257), 2u);
  EXPECT_EQ(p.transactions_for(8192), 32u);
}

TEST(ArchParams, RequestLatencyEq11) {
  const ArchParams p;
  EXPECT_DOUBLE_EQ(p.request_latency_cycles(1), 220.0);
  EXPECT_DOUBLE_EQ(p.request_latency_cycles(5), 220.0 + 4 * 50.0);
  EXPECT_DOUBLE_EQ(p.request_latency_cycles(0), 0.0);
}

TEST(ArchParams, PeakGflopsMatchesSW26010) {
  const ArchParams p;
  // 765 GFLOPS per core group, 3.06 TFLOPS per processor (paper, Sec. II).
  EXPECT_NEAR(p.peak_gflops_per_cg(), 742.4, 1.0);
  EXPECT_NEAR(p.peak_gflops_per_cg() * 4 / 1000.0, 2.97, 0.1);
}

TEST(ArchParams, ValidateRejectsNonsense) {
  ArchParams p;
  p.mem_bw_gbps = 0.0;
  EXPECT_THROW(p.validate(), Error);
  p = ArchParams{};
  p.trans_size_bytes = 100;  // not a power of two
  EXPECT_THROW(p.validate(), Error);
  p = ArchParams{};
  p.gload_max_bytes = 512;  // larger than a transaction
  EXPECT_THROW(p.validate(), Error);
  p = ArchParams{};
  p.core_groups = 0;
  EXPECT_THROW(p.validate(), Error);
  p = ArchParams{};
  p.cross_section_bw_efficiency = 1.5;
  EXPECT_THROW(p.validate(), Error);
}

}  // namespace
}  // namespace swperf::sw
