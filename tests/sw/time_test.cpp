#include "sw/time.h"

#include <gtest/gtest.h>

namespace swperf::sw {
namespace {

TEST(Time, CycleTickRoundTrip) {
  EXPECT_EQ(cycles_to_ticks(0), 0u);
  EXPECT_EQ(cycles_to_ticks(220), 2200u);
  EXPECT_DOUBLE_EQ(ticks_to_cycles(2200), 220.0);
  EXPECT_DOUBLE_EQ(ticks_to_cycles(5), 0.5);
}

TEST(Time, FractionalCyclesRoundToNearestTick) {
  EXPECT_EQ(fractional_cycles_to_ticks(11.6), 116u);
  EXPECT_EQ(fractional_cycles_to_ticks(0.04), 0u);
  EXPECT_EQ(fractional_cycles_to_ticks(0.06), 1u);
}

TEST(Time, WallClockConversions) {
  // 1.45e9 cycles at 1.45 GHz is exactly one second.
  EXPECT_DOUBLE_EQ(cycles_to_seconds(1.45e9, 1.45), 1.0);
  EXPECT_DOUBLE_EQ(cycles_to_us(1450.0, 1.45), 1.0);
}

}  // namespace
}  // namespace swperf::sw
