#include "sw/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace swperf::sw {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsProduceDistinctStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(r.uniform(-2.0, 3.0), -2.0);
    EXPECT_LT(r.uniform(-2.0, 3.0), 3.0);
    const auto v = r.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);  // all residues hit
  EXPECT_LE(*seen.rbegin(), 7u);
}

TEST(Rng, RoughlyUniformMean) {
  Rng r(13);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 a(0), b(0);
  EXPECT_EQ(a.next(), b.next());
  SplitMix64 c(123);
  const auto first = c.next();
  EXPECT_NE(first, SplitMix64(124).next());
}

}  // namespace
}  // namespace swperf::sw
