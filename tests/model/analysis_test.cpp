#include "model/analysis.h"

#include <gtest/gtest.h>

#include "kernels/kmeans.h"
#include "kernels/suite.h"
#include "kernels/vecadd.h"
#include "kernels/wrf.h"
#include "sw/error.h"
#include "swacc/lower.h"

namespace swperf::model {
namespace {

const sw::ArchParams kArch;

Prediction synthetic_prediction() {
  Prediction p;
  p.t_dma = 10000.0;
  p.t_comp = 8000.0;
  p.t_overlap = 5000.0;
  p.ng_dma = 16.0;
  p.t_mem = 10000.0;
  p.t_total = p.t_mem + p.t_comp - p.t_overlap;
  return p;
}

TEST(Analysis, GranularitySavingEq13) {
  const auto p = synthetic_prediction();
  // (1/4 - 1/8) * T_DMA.
  EXPECT_NEAR(granularity_saving(p, 4, 8), 0.125 * 10000.0, 1e-9);
  // No change, no saving.
  EXPECT_DOUBLE_EQ(granularity_saving(p, 4, 4), 0.0);
  // Saving grows monotonically with the request-count increase.
  EXPECT_LT(granularity_saving(p, 4, 8), granularity_saving(p, 4, 16));
  // Shrinking the count is invalid.
  EXPECT_THROW(granularity_saving(p, 8, 4), sw::Error);
}

TEST(Analysis, DoubleBufferSavingEq14) {
  auto p = synthetic_prediction();
  // min(T_DMA/NG, T_comp - T_overlap) = min(625, 3000).
  EXPECT_NEAR(double_buffer_saving(p), 625.0, 1e-9);
  // Fully overlapped compute: nothing left to save.
  p.t_overlap = p.t_comp;
  p.ng_dma = 2.0;
  EXPECT_DOUBLE_EQ(double_buffer_saving(p), 0.0);
  // No DMA at all.
  p.ng_dma = 0.0;
  EXPECT_DOUBLE_EQ(double_buffer_saving(p), 0.0);
}

TEST(Analysis, PaperCommonCaseOneSixteenth) {
  // Section IV-2: with 64 CPEs and large DMA blocks, NG = 16 and the
  // double-buffer benefit is at most T_DMA/16.
  Prediction p;
  p.t_dma = 16000.0;
  p.ng_dma = 16.0;
  p.t_comp = 1e9;
  p.t_overlap = 0.0;
  EXPECT_NEAR(double_buffer_saving(p), 1000.0, 1e-9);
}

TEST(Analysis, FewerCpesSavingEq15) {
  auto p = synthetic_prediction();
  // T_DMA(10000) > T_comp(8000): saving = 0.25 * 2000.
  EXPECT_NEAR(fewer_cpes_saving(p, 0.25), 500.0, 1e-9);
  // Compute-bound: no benefit.
  p.t_comp = 20000.0;
  EXPECT_DOUBLE_EQ(fewer_cpes_saving(p, 0.25), 0.0);
  EXPECT_THROW(fewer_cpes_saving(p, 1.5), sw::Error);
}

TEST(Advisor, RecommendsDoubleBufferForScenario1Kernel) {
  const PerfModel m(kArch);
  const auto spec = kernels::kmeans(kernels::Scale::kSmall);
  auto params = spec.tuned;
  params.tile = 64;  // leave SPM headroom for the second buffer
  const auto advice = advise(m, spec.desc, params);
  bool has_db = false;
  for (const auto& a : advice) {
    EXPECT_GT(a.model_saving, 0.0);
    EXPECT_GT(a.saving_fraction, 0.0);
    EXPECT_FALSE(a.rationale.empty());
    if (a.suggested.double_buffer) has_db = true;
  }
  EXPECT_TRUE(has_db);
}

TEST(Advisor, RecommendsFewerCpesForTransactionWaste) {
  // A pathfinder-style kBlock2D launch with small column tiles wastes most
  // of every transaction; fewer CPEs with proportionally larger chunks is
  // the Section IV-3 remedy.
  const PerfModel m(kArch);
  auto spec = kernels::make("pathfinder", kernels::Scale::kSmall);
  auto params = spec.tuned;
  params.tile = 8;  // 32-B row segments: 87% of each transaction wasted
  const auto advice = advise(m, spec.desc, params);
  bool fewer = false;
  for (const auto& a : advice) {
    if (a.suggested.requested_cpes < params.requested_cpes) {
      fewer = true;
      EXPECT_GT(a.suggested.tile, params.tile);
      EXPECT_GT(a.model_saving, 0.0);
    }
  }
  EXPECT_TRUE(fewer);
}

TEST(Advisor, AdviceSortedByModelSaving) {
  const PerfModel m(kArch);
  const auto spec = kernels::vecadd(kernels::Scale::kSmall);
  const auto advice = advise(m, spec.desc, spec.naive);
  for (std::size_t i = 1; i < advice.size(); ++i) {
    EXPECT_GE(advice[i - 1].model_saving, advice[i].model_saving);
  }
}

TEST(Advisor, SuggestionsAreFeasible) {
  const PerfModel m(kArch);
  for (const auto* name : {"kmeans", "vecadd"}) {
    const auto spec = kernels::make(name, kernels::Scale::kSmall);
    for (const auto& a : advise(m, spec.desc, spec.tuned)) {
      EXPECT_NO_THROW(swacc::lower(spec.desc, a.suggested, kArch))
          << name << ": " << a.optimization;
    }
  }
}

}  // namespace
}  // namespace swperf::model
