// Monotonicity and sanity properties of the analytical model over random
// but well-formed StaticSummaries.
#include <gtest/gtest.h>

#include "model/model.h"
#include "sw/rng.h"

namespace swperf::model {
namespace {

const sw::ArchParams kArch;

swacc::StaticSummary random_summary(sw::Rng& rng) {
  swacc::StaticSummary s;
  s.kernel = "prop";
  s.active_cpes = static_cast<std::uint32_t>(1 + rng.next_below(64));
  s.core_groups = 1;
  const auto n_reqs = 1 + rng.next_below(64);
  for (std::uint64_t i = 0; i < n_reqs; ++i) {
    s.dma_req_mrt.push_back(1 + rng.next_below(64));
  }
  s.n_gloads = rng.next_below(2000);
  s.comp_cycles = static_cast<double>(rng.next_below(2000000));
  s.inst_counts[isa::OpClass::kFloatFma] = rng.next_below(100000);
  return s;
}

class ModelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelProperty, OutputsAreWellFormed) {
  sw::Rng rng(GetParam());
  const PerfModel m(kArch);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = random_summary(rng);
    const auto p = m.predict(s);
    EXPECT_GE(p.t_total, 0.0);
    EXPECT_GE(p.t_overlap, 0.0);
    EXPECT_LE(p.t_overlap, p.t_comp + 1e-9);
    EXPECT_LE(p.t_overlap, p.t_mem + 1e-9);
    EXPECT_NEAR(p.t_mem, p.t_g + p.t_dma, 1e-9);
    // Eq. 1 reassembles (before the double-buffer correction).
    EXPECT_NEAR(p.t_total + p.double_buffer_saving,
                p.t_mem + p.t_comp - p.t_overlap, 1e-6);
    // T_total is bounded below by each exclusive resource.
    EXPECT_GE(p.t_total + 1e-9, p.t_comp - p.t_overlap);
    EXPECT_GE(p.t_total + 1e-9, p.t_mem - p.t_overlap);
    if (!s.dma_req_mrt.empty()) {
      EXPECT_GE(p.mrp_dma, 1.0);
      EXPECT_LE(p.mrp_dma, static_cast<double>(s.active_cpes));
      EXPECT_GE(p.ng_dma, 1.0);
    }
  }
}

TEST_P(ModelProperty, MonotoneInWork) {
  sw::Rng rng(GetParam() ^ 0x51);
  const PerfModel m(kArch);
  for (int trial = 0; trial < 30; ++trial) {
    auto s = random_summary(rng);
    const auto base = m.predict(s);

    auto more_comp = s;
    more_comp.comp_cycles *= 2.0;
    EXPECT_GE(m.predict(more_comp).t_total, base.t_total - 1e-6);

    auto more_gloads = s;
    more_gloads.n_gloads = s.n_gloads * 2 + 1;
    EXPECT_GE(m.predict(more_gloads).t_g, base.t_g);

    auto more_dma = s;
    more_dma.dma_req_mrt.push_back(32);
    EXPECT_GT(m.predict(more_dma).t_dma, base.t_dma);
  }
}

TEST_P(ModelProperty, DoubleBufferNeverPredictedSlower) {
  sw::Rng rng(GetParam() ^ 0xd8);
  const PerfModel m(kArch);
  for (int trial = 0; trial < 30; ++trial) {
    auto s = random_summary(rng);
    s.double_buffer = false;
    const auto plain = m.predict(s);
    s.double_buffer = true;
    const auto db = m.predict(s);
    EXPECT_LE(db.t_total, plain.t_total + 1e-6);
    EXPECT_GE(db.double_buffer_saving, 0.0);
  }
}

TEST_P(ModelProperty, MoreBandwidthNeverHurts) {
  sw::Rng rng(GetParam() ^ 0xbb);
  for (int trial = 0; trial < 20; ++trial) {
    const auto s = random_summary(rng);
    sw::ArchParams fast = kArch;
    fast.mem_bw_gbps = 64.0;
    const auto slow_p = PerfModel(kArch).predict(s);
    const auto fast_p = PerfModel(fast).predict(s);
    EXPECT_LE(fast_p.t_mem, slow_p.t_mem + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperty,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace swperf::model
