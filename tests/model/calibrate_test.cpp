#include "model/calibrate.h"

#include <gtest/gtest.h>

#include "kernels/suite.h"
#include "model/model.h"
#include "sim/machine.h"
#include "sw/stats.h"
#include "swacc/lower.h"

namespace swperf::model {
namespace {

TEST(Calibrate, RecoversTableIOnSw26010) {
  const auto machine = sw::ArchParams::sw26010();
  const auto c = calibrate(machine);
  EXPECT_NEAR(c.l_base_cycles, 220.0, 1.0);
  EXPECT_NEAR(c.delta_delay_cycles, 50.0, 1.0);
  EXPECT_NEAR(c.trans_service_cycles, 11.6, 0.2);
  EXPECT_NEAR(c.mem_bw_gbps, 32.0, 0.5);
}

TEST(Calibrate, RecoversModifiedMachines) {
  // The probes must measure whatever machine they run on, not assume
  // SW26010 constants.
  sw::ArchParams weird;
  weird.l_base_cycles = 300;
  weird.delta_delay_cycles = 80;
  weird.mem_bw_gbps = 16.0;
  const auto c = calibrate(weird);
  EXPECT_NEAR(c.l_base_cycles, 300.0, 1.0);
  EXPECT_NEAR(c.delta_delay_cycles, 80.0, 1.0);
  EXPECT_NEAR(c.mem_bw_gbps, 16.0, 0.3);
}

TEST(Calibrate, AppliedParamsRoundTrip) {
  const auto machine = sw::ArchParams::sw26010();
  const auto applied = calibrate(machine).apply_to(machine);
  EXPECT_EQ(applied.l_base_cycles, machine.l_base_cycles);
  EXPECT_EQ(applied.delta_delay_cycles, machine.delta_delay_cycles);
  EXPECT_NEAR(applied.mem_bw_gbps, machine.mem_bw_gbps, 0.5);
}

TEST(Calibrate, ModelFromRecoveredParamsPredictsAsWell) {
  // Stand the model up from measured parameters only: accuracy across the
  // suite must match the configured-parameter model closely.
  const auto machine = sw::ArchParams::sw26010();
  const auto recovered = calibrate(machine).apply_to(machine);
  const PerfModel configured(machine);
  const PerfModel measured(recovered);
  sw::ErrorAccumulator e_conf, e_meas;
  for (const auto& spec : kernels::fig6_suite(kernels::Scale::kSmall)) {
    const auto lk = swacc::lower(spec.desc, spec.tuned, machine);
    const auto sim =
        sim::simulate(lk.sim_config, lk.binary, lk.programs);
    e_conf.add(configured.predict(lk.summary).t_total, sim.total_cycles());
    e_meas.add(measured.predict(lk.summary).t_total, sim.total_cycles());
  }
  EXPECT_LT(std::abs(e_meas.mean_error() - e_conf.mean_error()), 0.01);
}

}  // namespace
}  // namespace swperf::model
