#include "model/model.h"

#include <gtest/gtest.h>

#include "sw/error.h"

namespace swperf::model {
namespace {

const sw::ArchParams kArch;

swacc::StaticSummary base_summary() {
  swacc::StaticSummary s;
  s.kernel = "synthetic";
  s.active_cpes = 64;
  s.core_groups = 1;
  s.comp_cycles = 0.0;
  return s;
}

TEST(PerfModel, ComputeOnlyPassesThroughEq6) {
  auto s = base_summary();
  s.comp_cycles = 12345.0;
  s.inst_counts[isa::OpClass::kFloatAdd] = 1000;
  const PerfModel m(kArch);
  const auto p = m.predict(s);
  EXPECT_DOUBLE_EQ(p.t_comp, 12345.0);
  EXPECT_DOUBLE_EQ(p.t_total, 12345.0);
  EXPECT_DOUBLE_EQ(p.t_mem, 0.0);
  EXPECT_EQ(p.scenario, 0);
  EXPECT_NEAR(p.avg_ilp, 1000.0 * 9.0 / 12345.0, 1e-12);
}

TEST(PerfModel, DmaTimeEq3To5HandComputed) {
  auto s = base_summary();
  s.dma_req_mrt = {8};  // one request of 8 transactions per CPE
  const PerfModel m(kArch);
  const auto p = m.predict(s);
  // Bandwidth term: 64 CPEs x 8 MRT x 11.6 cycles = 5939.2; uncontended
  // term L_avg = 220 + 7*50 = 570. Bandwidth dominates.
  EXPECT_NEAR(p.t_dma, 64 * 8 * 11.6, 1e-6);
  EXPECT_DOUBLE_EQ(p.t_mem, p.t_dma);
  EXPECT_NEAR(p.avg_mrt_dma, 8.0, 1e-12);
  EXPECT_NEAR(p.l_avg_dma, 570.0, 1e-12);
  // Eq. 10: MRP = 570 / (11.6 * 8) = 6.14; Eq. 9: NG = 64 / MRP.
  EXPECT_NEAR(p.mrp_dma, 570.0 / (11.6 * 8.0), 1e-9);
  EXPECT_NEAR(p.ng_dma, 64.0 / p.mrp_dma, 1e-9);
}

TEST(PerfModel, UncontendedTermWinsAtLowCpeCounts) {
  auto s = base_summary();
  s.active_cpes = 2;
  s.dma_req_mrt = {8};
  const PerfModel m(kArch);
  const auto p = m.predict(s);
  // 2 x 8 x 11.6 = 185.6 < L_avg 570: latency-bound.
  EXPECT_NEAR(p.t_dma, 570.0, 1e-9);
}

TEST(PerfModel, GloadTimeUsesOneTransactionPerRequest) {
  auto s = base_summary();
  s.n_gloads = 100;
  const PerfModel m(kArch);
  const auto p = m.predict(s);
  // max(220, 64 * 11.6) = 742.4 per gload.
  EXPECT_NEAR(p.t_g, 100 * 742.4, 1e-6);
  // MRP_g = 220 / 11.6 = 18.97.
  EXPECT_NEAR(p.mrp_g, 220.0 / 11.6, 1e-9);
}

TEST(PerfModel, OverlapEq7And8) {
  auto s = base_summary();
  s.dma_req_mrt = {8, 8, 8, 8};  // 4 requests
  s.comp_cycles = 1e9;           // compute-dominated: Scenario 1
  const PerfModel m(kArch);
  const auto p = m.predict(s);
  const double expected_ov =
      (1.0 - 1.0 / p.ng_dma) * (1.0 - 1.0 / 4.0) * p.t_dma;
  EXPECT_NEAR(p.t_dma_overlap, expected_ov, 1e-6);
  EXPECT_NEAR(p.t_overlap, expected_ov, 1e-6);
  EXPECT_EQ(p.scenario, 1);
  EXPECT_NEAR(p.t_total, p.t_mem + p.t_comp - p.t_overlap, 1e-6);
}

TEST(PerfModel, Scenario2FullyHidesCompute) {
  auto s = base_summary();
  s.dma_req_mrt.assign(64, 8);  // lots of DMA
  s.comp_cycles = 1000.0;       // tiny compute
  const PerfModel m(kArch);
  const auto p = m.predict(s);
  EXPECT_EQ(p.scenario, 2);
  EXPECT_DOUBLE_EQ(p.t_overlap, p.t_comp);
  EXPECT_DOUBLE_EQ(p.t_total, p.t_mem);
}

TEST(PerfModel, SingleRequestHasNoOverlap) {
  auto s = base_summary();
  s.dma_req_mrt = {8};
  s.comp_cycles = 1e6;
  const PerfModel m(kArch);
  const auto p = m.predict(s);
  // (1 - 1/#reqs) with one request: nothing overlaps.
  EXPECT_DOUBLE_EQ(p.t_dma_overlap, 0.0);
}

TEST(PerfModel, DoubleBufferSavingEq14) {
  auto s = base_summary();
  s.dma_req_mrt.assign(8, 8);
  s.comp_cycles = 1e7;  // Scenario 1, plenty of unhidden compute
  const PerfModel m(kArch);
  const auto base = m.predict(s);
  s.double_buffer = true;
  const auto db = m.predict(s);
  EXPECT_NEAR(db.double_buffer_saving,
              std::min(base.t_dma / base.ng_dma,
                       base.t_comp - base.t_overlap),
              1e-6);
  EXPECT_NEAR(db.t_total, base.t_total - db.double_buffer_saving, 1e-6);
  EXPECT_LT(db.t_total, base.t_total);
}

TEST(PerfModel, MultiCgScalesBandwidthLinearly) {
  auto s = base_summary();
  s.dma_req_mrt.assign(16, 8);
  const PerfModel m(kArch);
  const auto one = m.predict(s);
  s.core_groups = 2;
  s.active_cpes = 128;
  const auto two = m.predict(s);
  // Twice the CPEs on twice the bandwidth (with cross-section efficiency):
  // per-CPE DMA time is nearly unchanged.
  EXPECT_NEAR(two.t_dma, one.t_dma / kArch.cross_section_bw_efficiency,
              1e-6);
  EXPECT_NEAR(m.trans_cycles(2),
              kArch.trans_service_cycles() /
                  (2.0 * kArch.cross_section_bw_efficiency),
              1e-12);
}

TEST(PerfModel, AblationNoOverlap) {
  auto s = base_summary();
  s.dma_req_mrt.assign(8, 8);
  s.comp_cycles = 1e6;
  const PerfModel full(kArch);
  const PerfModel crippled(kArch, ModelOptions{.overlap = false});
  EXPECT_GT(crippled.predict(s).t_total, full.predict(s).t_total);
  EXPECT_DOUBLE_EQ(crippled.predict(s).t_overlap, 0.0);
}

TEST(PerfModel, AblationNoVirtualGrouping) {
  auto s = base_summary();
  s.dma_req_mrt.assign(8, 8);
  s.comp_cycles = 1e9;  // scenario 1 so the overlap term matters
  const PerfModel full(kArch);
  const PerfModel gpu_style(kArch,
                            ModelOptions{.virtual_grouping = false});
  // Treating CPEs like independent SMs inflates the overlap estimate.
  EXPECT_GT(gpu_style.predict(s).t_overlap, full.predict(s).t_overlap);
  EXPECT_LT(gpu_style.predict(s).t_total, full.predict(s).t_total);
}

TEST(PerfModel, AblationNoBandwidthContention) {
  auto s = base_summary();
  s.dma_req_mrt.assign(8, 8);
  const PerfModel full(kArch);
  const PerfModel naive(kArch,
                        ModelOptions{.overlap = true,
                                     .virtual_grouping = true,
                                     .bandwidth_contention = false});
  // Without contention each request costs only L_avg.
  EXPECT_NEAR(naive.predict(s).t_dma, 8 * 570.0, 1e-9);
  EXPECT_LT(naive.predict(s).t_dma, full.predict(s).t_dma);
}

TEST(PerfModel, RejectsEmptySummary) {
  swacc::StaticSummary s;
  const PerfModel m(kArch);
  EXPECT_THROW(m.predict(s), sw::Error);
}

TEST(Prediction, WallClockAndGflops) {
  Prediction p;
  p.t_total = 1.45e6;  // 1 ms at 1.45 GHz
  EXPECT_NEAR(p.total_us(1.45), 1000.0, 1e-9);
  // 1e6 flops in 1 ms -> 1 GFLOPS.
  EXPECT_NEAR(p.gflops(1e6, 1.45), 1.0, 1e-9);
}

}  // namespace
}  // namespace swperf::model
