#include "model/roofline.h"

#include <gtest/gtest.h>

#include "kernels/suite.h"
#include "model/model.h"
#include "sim/machine.h"
#include "swacc/lower.h"

namespace swperf::model {
namespace {

const sw::ArchParams kArch;

swacc::StaticSummary summary_of(const kernels::KernelSpec& spec,
                                const swacc::LaunchParams& p) {
  return swacc::lower(spec.desc, p, kArch).summary;
}

TEST(Roofline, HandComputedMemoryBoundCase) {
  swacc::StaticSummary s;
  s.active_cpes = 64;
  s.core_groups = 1;
  s.total_flops = 1e6;
  s.dma_bytes_requested = 100 * 1000 * 1000;  // 100 MB: memory roof binds
  s.dma_bytes_transferred = s.dma_bytes_requested;
  const RooflineModel m(kArch);
  const auto p = m.predict(s);
  EXPECT_TRUE(p.memory_bound);
  EXPECT_NEAR(p.arithmetic_intensity, 0.01, 1e-9);
  // Memory roof: 1e8 B / (32/1.45 B per cycle).
  EXPECT_NEAR(p.t_cycles, 1e8 / (32.0 / 1.45), 1.0);
}

TEST(Roofline, HandComputedComputeBoundCase) {
  swacc::StaticSummary s;
  s.active_cpes = 64;
  s.core_groups = 1;
  s.total_flops = 1e9;
  s.dma_bytes_requested = 1000;
  s.dma_bytes_transferred = 1000;
  const RooflineModel m(kArch);
  const auto p = m.predict(s);
  EXPECT_FALSE(p.memory_bound);
  EXPECT_NEAR(p.t_cycles, 1e9 / (8.0 * 64.0), 1.0);
  // Attainable = peak: 742.4 GFLOPS.
  EXPECT_NEAR(p.attainable_gflops, kArch.peak_gflops_per_cg(), 1.0);
}

TEST(Roofline, IsALowerBoundOnSimulatedTime) {
  const RooflineModel m(kArch);
  for (const auto& spec :
       kernels::fig6_suite(kernels::Scale::kSmall)) {
    const auto lowered = swacc::lower(spec.desc, spec.tuned, kArch);
    const auto sim =
        sim::simulate(lowered.sim_config, lowered.binary, lowered.programs);
    const auto p = m.predict(lowered.summary);
    EXPECT_LE(p.t_cycles, sim.total_cycles() * 1.001) << spec.desc.name;
  }
}

TEST(Roofline, TransactionAwareVariantTightensGloadKernels) {
  const auto spec = kernels::make("bfs", kernels::Scale::kSmall);
  const auto s = summary_of(spec, spec.tuned);
  const RooflineModel classic(kArch);
  const RooflineModel tx(kArch, /*transaction_aware=*/true);
  // Counting whole transactions for 8-byte gloads raises the memory roof
  // (bytes) by ~32x on a gload-dominated kernel.
  EXPECT_GT(tx.predict(s).t_cycles, 10.0 * classic.predict(s).t_cycles);
}

TEST(Roofline, BlindToGranularity) {
  // Same traffic at different granularity: identical Roofline prediction,
  // different precise-model prediction (Eq. 13's point).
  const auto spec = kernels::make("kmeans", kernels::Scale::kSmall);
  auto coarse = spec.tuned;
  coarse.tile = 256;
  auto fine = spec.tuned;
  fine.tile = 32;
  const RooflineModel roof(kArch);
  const PerfModel precise(kArch);
  const auto sc = summary_of(spec, coarse);
  const auto sf = summary_of(spec, fine);
  EXPECT_DOUBLE_EQ(roof.predict(sc).t_cycles, roof.predict(sf).t_cycles);
  EXPECT_NE(precise.predict(sc).t_total, precise.predict(sf).t_total);
}

TEST(Roofline, FlopFreeKernelStillGetsMemoryRoof) {
  const auto spec = kernels::make("pathfinder", kernels::Scale::kSmall);
  const auto s = summary_of(spec, spec.tuned);
  const RooflineModel m(kArch);
  const auto p = m.predict(s);
  EXPECT_TRUE(p.memory_bound);
  EXPECT_GT(p.t_cycles, 0.0);
  EXPECT_DOUBLE_EQ(p.attainable_gflops, 0.0);
}

}  // namespace
}  // namespace swperf::model
