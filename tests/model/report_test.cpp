#include "model/report.h"

#include <gtest/gtest.h>

#include "kernels/suite.h"

namespace swperf::model {
namespace {

const sw::ArchParams kArch;

TEST(Report, ClassifiesMemoryBoundKernel) {
  const PerfModel m(kArch);
  const auto spec = kernels::make("vecadd", kernels::Scale::kSmall);
  const auto r = analyze(m, spec.desc, spec.tuned);
  EXPECT_EQ(r.bottleneck, Bottleneck::kMemoryBandwidth);
  EXPECT_GT(r.dma_fraction, 0.9);
  EXPECT_DOUBLE_EQ(r.dma_efficiency, 1.0);
}

TEST(Report, ClassifiesComputeBoundKernel) {
  const PerfModel m(kArch);
  const auto spec = kernels::make("wrf_physics", kernels::Scale::kSmall);
  const auto r = analyze(m, spec.desc, spec.tuned);
  EXPECT_EQ(r.bottleneck, Bottleneck::kCompute);
  EXPECT_GT(r.comp_fraction, 0.5);
  EXPECT_EQ(r.prediction.scenario, 1);
}

TEST(Report, ClassifiesGloadBoundKernel) {
  const PerfModel m(kArch);
  const auto spec = kernels::make("bfs", kernels::Scale::kSmall);
  const auto r = analyze(m, spec.desc, spec.tuned);
  EXPECT_EQ(r.bottleneck, Bottleneck::kGload);
  EXPECT_GT(r.gload_fraction, 0.9);
}

TEST(Report, FractionsAreConsistent) {
  const PerfModel m(kArch);
  for (const auto& spec : kernels::fig6_suite(kernels::Scale::kSmall)) {
    const auto r = analyze(m, spec.desc, spec.tuned);
    // T_total = T_mem + T_comp - T_overlap, so the fractions reassemble.
    EXPECT_NEAR(r.dma_fraction + r.gload_fraction + r.comp_fraction -
                    r.overlap_fraction,
                1.0, 1e-6)
        << spec.desc.name;
    EXPECT_GE(r.dma_efficiency, 0.0);
    EXPECT_LE(r.dma_efficiency, 1.0);
    EXPECT_LE(r.roofline_fraction, 1.001) << spec.desc.name;
  }
}

TEST(Report, RendersReadableText) {
  const PerfModel m(kArch);
  const auto spec = kernels::make("kmeans", kernels::Scale::kSmall);
  const auto r = analyze(m, spec.desc, spec.tuned);
  const auto s = r.to_string(kArch);
  EXPECT_NE(s.find("kmeans"), std::string::npos);
  EXPECT_NE(s.find("bottleneck"), std::string::npos);
  EXPECT_NE(s.find("breakdown"), std::string::npos);
  EXPECT_NE(s.find("GFLOPS"), std::string::npos);
}

TEST(Report, WastefulLaunchReportsLowEfficiency) {
  const PerfModel m(kArch);
  const auto spec = kernels::make("pathfinder", kernels::Scale::kSmall);
  auto params = spec.tuned;
  params.tile = 4;  // 16-B row segments: massive waste
  const auto r = analyze(m, spec.desc, params);
  EXPECT_LT(r.dma_efficiency, 0.1);
  EXPECT_FALSE(r.advice.empty());
}

}  // namespace
}  // namespace swperf::model
