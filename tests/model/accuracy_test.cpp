// The headline integration property: the static model predicts the
// simulator within paper-like error bounds across the whole suite
// (Fig. 6: 5% average, 9.6% max; we allow modest slack at small scales).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>

#include "kernels/kmeans.h"
#include "kernels/suite.h"
#include "kernels/wrf.h"
#include "model/model.h"
#include "sim/machine.h"
#include "sw/stats.h"
#include "swacc/lower.h"

namespace swperf::model {
namespace {

const sw::ArchParams kArch;

double prediction_error(const kernels::KernelSpec& spec,
                        const swacc::LaunchParams& params) {
  const auto lk = swacc::lower(spec.desc, params, kArch);
  const auto sim = sim::simulate(lk.sim_config, lk.binary, lk.programs);
  const PerfModel m(kArch);
  const auto pred = m.predict(lk.summary);
  return sw::rel_error(pred.t_total, sim.total_cycles());
}

class SuiteAccuracy : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteAccuracy, TunedConfigWithinPerKernelBound) {
  const auto spec = kernels::make(GetParam(), kernels::Scale::kFull);
  // Irregular kernels carry unmodelled imbalance (the paper's max error is
  // on BFS); regular kernels must be tight.
  const double bound = spec.irregular ? 0.16 : 0.09;
  EXPECT_LT(prediction_error(spec, spec.tuned), bound);
}

TEST_P(SuiteAccuracy, NaiveConfigStillPredicted) {
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  EXPECT_LT(prediction_error(spec, spec.naive), 0.30);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, SuiteAccuracy,
    ::testing::ValuesIn(kernels::suite_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(SuiteAccuracy, AverageErrorMatchesPaperHeadline) {
  sw::ErrorAccumulator acc;
  const PerfModel m(kArch);
  for (const auto& spec : kernels::fig6_suite(kernels::Scale::kFull)) {
    const auto lk = swacc::lower(spec.desc, spec.tuned, kArch);
    const auto sim = sim::simulate(lk.sim_config, lk.binary, lk.programs);
    acc.add(m.predict(lk.summary).t_total, sim.total_cycles());
  }
  // Paper: "less than 5% average errors". Allow a point of slack.
  EXPECT_LT(acc.mean_error(), 0.06);
  EXPECT_LT(acc.max_error(), 0.16);
}

TEST(SuiteAccuracy, AblationsDegradeAccuracy) {
  // Each model term must earn its keep on the regular suite.
  const PerfModel full(kArch);
  const PerfModel no_overlap(kArch, ModelOptions{.overlap = false});
  const PerfModel no_contention(
      kArch, ModelOptions{.overlap = true,
                          .virtual_grouping = true,
                          .bandwidth_contention = false});
  sw::ErrorAccumulator e_full, e_noov, e_nobw;
  for (const auto& spec : kernels::fig6_suite(kernels::Scale::kSmall)) {
    const auto lk = swacc::lower(spec.desc, spec.tuned, kArch);
    const auto sim = sim::simulate(lk.sim_config, lk.binary, lk.programs);
    e_full.add(full.predict(lk.summary).t_total, sim.total_cycles());
    e_noov.add(no_overlap.predict(lk.summary).t_total, sim.total_cycles());
    e_nobw.add(no_contention.predict(lk.summary).t_total,
               sim.total_cycles());
  }
  EXPECT_LT(e_full.mean_error(), e_noov.mean_error());
  EXPECT_LT(e_full.mean_error(), e_nobw.mean_error());
}

class WrfCpeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WrfCpeSweep, DynamicsPredictedAcrossCpeCounts) {
  const auto spec = kernels::wrf_dynamics(GetParam());
  EXPECT_LT(prediction_error(spec, spec.tuned), 0.10)
      << "active_cpes=" << GetParam();
}

TEST_P(WrfCpeSweep, PhysicsPredictedAcrossCpeCounts) {
  const auto spec = kernels::wrf_physics(GetParam());
  EXPECT_LT(prediction_error(spec, spec.tuned), 0.10)
      << "active_cpes=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Fig9, WrfCpeSweep,
                         ::testing::Values(8, 16, 32, 48, 64, 96, 128));

TEST(SuiteAccuracy, InputSizeDoesNotBreakAccuracy) {
  // Section V-D: "input size does not affect the accuracy of our model".
  // The copy granularity scales with the input so every size keeps several
  // chunks per CPE, as any sane configuration (or tuner) would.
  for (const std::uint64_t n : {1u << 14, 1u << 16, 1u << 18}) {
    kernels::KmeansConfig cfg;
    cfg.n_points = n;
    const auto spec = kernels::kmeans_cfg(cfg);
    auto params = spec.tuned;
    params.tile = std::clamp<std::uint64_t>(n / 64 / 8, 16, 256);
    EXPECT_LT(prediction_error(spec, params), 0.09) << "n=" << n;
  }
}

}  // namespace
}  // namespace swperf::model
