#include "analysis/diagnostic.h"

#include <gtest/gtest.h>

#include "sw/error.h"

namespace swperf::analysis {
namespace {

Diagnostics mixed() {
  return {
      {Severity::kNote, "SWI001", "a live-in register", ""},
      {Severity::kWarning, "SWD005", "a wasteful segment", "raise tile"},
      {Severity::kError, "SWD001", "SPM overflow", "reduce tile"},
      {Severity::kWarning, "SWD005", "another wasteful segment", ""},
  };
}

TEST(Diagnostic, ToStringCarriesSeverityCodeAndFixit) {
  const Diagnostic d{Severity::kError, "SWD001", "SPM overflow",
                     "reduce tile"};
  EXPECT_EQ(d.to_string(),
            "error[SWD001]: SPM overflow (fixit: reduce tile)");
  const Diagnostic n{Severity::kNote, "SWI001", "live-in", ""};
  EXPECT_EQ(n.to_string(), "note[SWI001]: live-in");
}

TEST(Diagnostic, SeverityPredicates) {
  EXPECT_FALSE(has_errors({}));
  EXPECT_TRUE(clean({}));
  const auto diags = mixed();
  EXPECT_TRUE(has_errors(diags));
  EXPECT_FALSE(clean(diags));
  EXPECT_EQ(count_at_least(diags, Severity::kNote), 4u);
  EXPECT_EQ(count_at_least(diags, Severity::kWarning), 3u);
  EXPECT_EQ(count_at_least(diags, Severity::kError), 1u);

  // Notes alone are clean.
  const Diagnostics notes = {{Severity::kNote, "SWI003", "dead value", ""}};
  EXPECT_TRUE(clean(notes));
  EXPECT_FALSE(has_errors(notes));
}

TEST(Diagnostic, FilterPreservesOrder) {
  const auto warnings = filter(mixed(), Severity::kWarning);
  ASSERT_EQ(warnings.size(), 3u);
  EXPECT_EQ(warnings[0].code, "SWD005");
  EXPECT_EQ(warnings[1].code, "SWD001");
  EXPECT_EQ(warnings[2].code, "SWD005");
}

TEST(Diagnostic, CodesOfDeduplicatesInFirstAppearanceOrder) {
  const auto codes = codes_of(mixed());
  ASSERT_EQ(codes.size(), 3u);
  EXPECT_EQ(codes[0], "SWI001");
  EXPECT_EQ(codes[1], "SWD005");
  EXPECT_EQ(codes[2], "SWD001");
}

TEST(Diagnostic, ToJsonIsWellFormed) {
  EXPECT_EQ(to_json({}), "[]");
  const Diagnostics diags = {
      {Severity::kWarning, "SWD005", "says \"waste\"", ""}};
  const auto json = to_json(diags);
  EXPECT_NE(json.find("\"severity\":\"warning\""), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"SWD005\""), std::string::npos);
  // The embedded quotes must come out escaped.
  EXPECT_NE(json.find("says \\\"waste\\\""), std::string::npos);
}

TEST(Diagnostic, ThrowOnErrorsUsesTheFirstError) {
  EXPECT_NO_THROW(throw_on_errors({}));
  EXPECT_NO_THROW(
      throw_on_errors({{Severity::kWarning, "SWD005", "waste", ""}}));
  try {
    throw_on_errors(mixed());
    FAIL() << "expected sw::Error";
  } catch (const sw::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("[SWD001]"), std::string::npos);
    EXPECT_NE(what.find("SPM overflow"), std::string::npos);
  }
}

}  // namespace
}  // namespace swperf::analysis
