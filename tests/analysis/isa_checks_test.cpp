// Triggering + clean fixture pairs for the SWI* basic-block lints.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/checker.h"
#include "isa/block.h"

namespace swperf::analysis {
namespace {

bool has_code(const Diagnostics& diags, const std::string& code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

/// load -> add -> store: every value produced is consumed, nothing live-in.
isa::BasicBlock self_contained_block() {
  isa::BlockBuilder b("clean");
  const auto x = b.spm_load();
  b.spm_store(b.fadd(x, x));
  return std::move(b).build();
}

// ---- SWI001: read of a never-written register -----------------------------

TEST(IsaChecks, Swi001NotesLiveInRegisters) {
  isa::BlockBuilder b("live_in");
  const auto inv = b.reg();  // live-in loop invariant — or a typo
  const auto x = b.spm_load();
  b.spm_store(b.fmul(x, inv));
  const auto diags = check_block(std::move(b).build());
  ASSERT_TRUE(has_code(diags, "SWI001"));
  // The normal loop-invariant idiom must stay note-severity: whole kernels
  // in the suite use it.
  EXPECT_TRUE(clean(diags));
}

TEST(IsaChecks, Swi001CleanOnSelfContainedBlock) {
  EXPECT_FALSE(has_code(check_block(self_contained_block()), "SWI001"));
}

// ---- SWI002: dead SPM store -----------------------------------------------

TEST(IsaChecks, Swi002WarnsOnShadowedStore) {
  isa::BlockBuilder b("shadow");
  const auto addr = b.reg();
  const auto x = b.spm_load();
  b.spm_store(x, addr);
  b.spm_store(b.fadd(x, x), addr);  // overwrites before anyone loads
  const auto diags = check_block(std::move(b).build());
  ASSERT_TRUE(has_code(diags, "SWI002"));
  EXPECT_FALSE(clean(diags));  // a genuinely lost store is warning-severity
}

TEST(IsaChecks, Swi002CleanWhenALoadIntervenes) {
  isa::BlockBuilder b("intervene");
  const auto addr = b.reg();
  const auto x = b.spm_load();
  b.spm_store(x, addr);
  const auto y = b.spm_load(addr);  // consumes the first store
  b.spm_store(b.fadd(y, y), addr);
  EXPECT_FALSE(has_code(check_block(std::move(b).build()), "SWI002"));
}

TEST(IsaChecks, Swi002IgnoresImplicitAddresses) {
  // Stores with no explicit address register carry no aliasing information.
  isa::BlockBuilder b("implicit");
  const auto x = b.spm_load();
  b.spm_store(x);
  b.spm_store(b.fadd(x, x));
  EXPECT_FALSE(has_code(check_block(std::move(b).build()), "SWI002"));
}

// ---- SWI003: dead values --------------------------------------------------

TEST(IsaChecks, Swi003NotesUnreadResults) {
  isa::BlockBuilder b("dead");
  const auto x = b.spm_load();
  b.fmul(x, x);  // result never consumed
  b.spm_store(b.fadd(x, x));
  const auto diags = check_block(std::move(b).build());
  ASSERT_TRUE(has_code(diags, "SWI003"));
  EXPECT_TRUE(clean(diags));
}

TEST(IsaChecks, Swi003IgnoresLoopOverhead) {
  // Loop bookkeeping writes registers nothing reads — by construction.
  isa::BlockBuilder b("loop");
  const auto x = b.spm_load();
  b.spm_store(b.fadd(x, x));
  b.loop_overhead(2);
  EXPECT_FALSE(has_code(check_block(std::move(b).build()), "SWI003"));
}

TEST(IsaChecks, Swi003CleanWhenEveryValueIsConsumed) {
  EXPECT_FALSE(has_code(check_block(self_contained_block()), "SWI003"));
}

// ---- Driver plumbing ------------------------------------------------------

TEST(IsaChecks, CheckBlockMatchesTheRegisteredChecker) {
  isa::BlockBuilder b("both");
  const auto x = b.spm_load();
  b.fmul(x, x);
  auto block = std::move(b).build();

  const auto direct = check_block(block);

  sim::KernelBinary bin;
  bin.add_block(block);
  CheckContext ctx;
  ctx.binary = &bin;
  const auto via_registry = run_checks(ctx);

  ASSERT_EQ(direct.size(), via_registry.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].code, via_registry[i].code);
  }
}

}  // namespace
}  // namespace swperf::analysis
