// The legality-fact API: launch_legal must be exactly the check_launch
// error verdict (the identity tuning::prune_variants relies on), the
// interval-domain SPM-footprint fact must agree with the allocator-exact
// swacc::spm_bytes_required(), and the program-level facts must land on the
// lowered suite kernels. Also pins the serde rendering `swperf check
// --analyze` emits.
#include "analysis/legality.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "analysis/checker.h"
#include "isa/block.h"
#include "kernels/suite.h"
#include "serde/serde.h"
#include "swacc/lower.h"

namespace swperf::analysis {
namespace {

const sw::ArchParams kArch = sw::ArchParams::sw26010();

std::string safe_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (auto& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

std::vector<swacc::LaunchParams> variant_grid(std::uint64_t n_outer) {
  std::vector<swacc::LaunchParams> grid;
  for (const std::uint64_t tile :
       {std::uint64_t{1}, std::uint64_t{4}, std::uint64_t{64},
        std::uint64_t{1024}, n_outer, n_outer * 4}) {
    for (const bool db : {false, true}) {
      swacc::LaunchParams p;
      p.tile = tile;
      p.double_buffer = db;
      grid.push_back(p);
    }
  }
  return grid;
}

class LegalityIdentity : public ::testing::TestWithParam<std::string> {};

TEST_P(LegalityIdentity, LaunchLegalEqualsCheckLaunchVerdict) {
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  for (const auto& p : variant_grid(spec.desc.n_outer)) {
    const Legality l = launch_legality(spec.desc, p, kArch);
    const Diagnostics diags = check_launch(spec.desc, p, kArch);
    EXPECT_EQ(l.launch_legal, !has_errors(diags)) << p.to_string();
    EXPECT_EQ(l.error_codes.empty(), l.launch_legal) << p.to_string();
  }
}

TEST_P(LegalityIdentity, SpmFitsAgreesWithAllocatorExactFootprint) {
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  for (const auto& p : variant_grid(spec.desc.n_outer)) {
    const Legality l = launch_legality(spec.desc, p, kArch);
    if (l.spm_fits == Legality::Fact::kUnknown) continue;
    const bool fits =
        swacc::spm_bytes_required(spec.desc, p) <= kArch.spm_bytes;
    EXPECT_EQ(l.spm_fits == Legality::Fact::kHolds, fits)
        << GetParam() << " @ " << p.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, LegalityIdentity,
                         ::testing::ValuesIn(kernels::suite_names()),
                         safe_name);

TEST(Legality, LoopCarriedFactSeparatesMapsFromReductions) {
  isa::BlockBuilder map("map");
  const auto x = map.spm_load();
  map.spm_store(map.fadd(x, x));
  swacc::KernelDesc k;
  k.name = "map";
  k.n_outer = 4096;
  k.body = std::move(map).build();
  k.arrays = {{"in", swacc::Dir::kIn, swacc::Access::kContiguous, 8},
              {"out", swacc::Dir::kOut, swacc::Access::kContiguous, 8}};
  swacc::LaunchParams p;
  p.tile = 64;
  EXPECT_EQ(launch_legality(k, p, kArch).loop_carried_independent,
            Legality::Fact::kHolds);

  isa::BlockBuilder red("reduce");
  const auto acc = red.reg();
  red.accumulate_add(acc, red.spm_load());
  k.body = std::move(red).build();
  EXPECT_EQ(launch_legality(k, p, kArch).loop_carried_independent,
            Legality::Fact::kFails);
}

TEST(Legality, IllegalLaunchReportsDistinctErrorCodes) {
  const auto spec = kernels::make("hotspot", kernels::Scale::kSmall);
  swacc::LaunchParams p = spec.tuned;
  p.tile = spec.desc.n_outer * 64;  // hopeless SPM overflow
  const Legality l = launch_legality(spec.desc, p, kArch);
  EXPECT_FALSE(l.launch_legal);
  ASSERT_FALSE(l.error_codes.empty());
  for (std::size_t i = 0; i < l.error_codes.size(); ++i) {
    for (std::size_t j = i + 1; j < l.error_codes.size(); ++j) {
      EXPECT_NE(l.error_codes[i], l.error_codes[j]);
    }
  }
  EXPECT_EQ(l.spm_fits, Legality::Fact::kFails);
}

class ProgramFacts : public ::testing::TestWithParam<std::string> {};

TEST_P(ProgramFacts, TunedSuiteLaunchesEstablishTheProgramFacts) {
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  const Legality l = program_legality(spec.desc, spec.tuned, kArch);
  ASSERT_TRUE(l.launch_legal);
  EXPECT_EQ(l.dma_protocol_clean, Legality::Fact::kHolds) << GetParam();
  EXPECT_NE(l.regions_disjoint, Legality::Fact::kFails) << GetParam();
  EXPECT_EQ(l.barriers_aligned, Legality::Fact::kHolds) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllKernels, ProgramFacts,
                         ::testing::ValuesIn(kernels::suite_names()),
                         safe_name);

TEST(Legality, RefineMatchesProgramLegalityOnALoweredLaunch) {
  const auto spec = kernels::make("nbody", kernels::Scale::kSmall);
  Legality via_refine = launch_legality(spec.desc, spec.tuned, kArch);
  ASSERT_TRUE(via_refine.launch_legal);
  const auto lowered = swacc::lower(spec.desc, spec.tuned, kArch);
  refine_with_program(via_refine, lowered.binary, lowered.programs, kArch);

  const Legality direct = program_legality(spec.desc, spec.tuned, kArch);
  EXPECT_EQ(via_refine.regions_disjoint, direct.regions_disjoint);
  EXPECT_EQ(via_refine.dma_protocol_clean, direct.dma_protocol_clean);
  EXPECT_EQ(via_refine.barriers_aligned, direct.barriers_aligned);
}

TEST(Legality, FactNamesAndSerdeRendering) {
  EXPECT_STREQ(fact_name(Legality::Fact::kHolds), "holds");
  EXPECT_STREQ(fact_name(Legality::Fact::kFails), "fails");
  EXPECT_STREQ(fact_name(Legality::Fact::kUnknown), "unknown");

  const auto spec = kernels::make("hotspot", kernels::Scale::kSmall);
  const Legality l = program_legality(spec.desc, spec.tuned, kArch);
  const std::string j = serde::to_json(l).dump();
  EXPECT_NE(j.find("\"launch_legal\":true"), std::string::npos) << j;
  EXPECT_NE(j.find("\"error_codes\":[]"), std::string::npos) << j;
  EXPECT_NE(j.find("\"spm_fits\":\"holds\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"dma_protocol_clean\":\"holds\""), std::string::npos)
      << j;
  EXPECT_NE(j.find("\"barriers_aligned\":\"holds\""), std::string::npos)
      << j;
}

}  // namespace
}  // namespace swperf::analysis
