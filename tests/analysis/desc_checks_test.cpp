// Triggering + clean fixture pairs for every SWK*/SWD* diagnostic code.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/checker.h"
#include "isa/block.h"

namespace swperf::analysis {
namespace {

using swacc::Access;
using swacc::ArrayRef;
using swacc::Dir;
using swacc::KernelDesc;
using swacc::LaunchParams;

const sw::ArchParams kArch = sw::ArchParams::sw26010();

bool has_code(const Diagnostics& diags, const std::string& code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

Severity severity_of(const Diagnostics& diags, const std::string& code) {
  for (const auto& d : diags) {
    if (d.code == code) return d.severity;
  }
  ADD_FAILURE() << "no diagnostic with code " << code;
  return Severity::kNote;
}

std::string fixit_of(const Diagnostics& diags, const std::string& code) {
  for (const auto& d : diags) {
    if (d.code == code) return d.fixit;
  }
  return "";
}

/// A well-formed streaming kernel that passes every check.
KernelDesc base_kernel() {
  isa::BlockBuilder b("body");
  const auto x = b.spm_load();
  b.spm_store(b.fadd(x, x));
  b.loop_overhead(2);
  KernelDesc k;
  k.name = "fixture";
  k.n_outer = 4096;
  k.inner_iters = 4;
  k.body = std::move(b).build();
  k.arrays = {
      {"in", Dir::kIn, Access::kContiguous, 32},
      {"out", Dir::kOut, Access::kContiguous, 32},
  };
  k.dma_min_tile = 4;
  return k;
}

LaunchParams base_params() {
  LaunchParams p;
  p.tile = 64;
  p.unroll = 2;
  p.requested_cpes = 64;
  return p;
}

TEST(DescChecks, CleanFixtureIsClean) {
  EXPECT_TRUE(clean(check_kernel_desc(base_kernel())));
  EXPECT_TRUE(clean(check_launch(base_kernel(), base_params(), kArch)));
}

// ---- SWK001: malformed description ----------------------------------------

TEST(DescChecks, Swk001FiresOnMissingNameExtentAndBody) {
  KernelDesc k = base_kernel();
  k.name.clear();
  k.n_outer = 0;
  k.body.instrs.clear();
  const auto diags = check_kernel_desc(k);
  EXPECT_TRUE(has_code(diags, "SWK001"));
  EXPECT_TRUE(has_errors(diags));
}

TEST(DescChecks, Swk001FiresOnInvalidBody) {
  KernelDesc k = base_kernel();
  k.body.num_regs = 0;  // register ids now out of range
  EXPECT_TRUE(has_code(check_kernel_desc(k), "SWK001"));
}

TEST(DescChecks, Swk001CleanOnWellFormedKernel) {
  EXPECT_FALSE(has_code(check_kernel_desc(base_kernel()), "SWK001"));
}

// ---- SWK002: malformed array references -----------------------------------

TEST(DescChecks, Swk002FiresOnNonDividingSegments) {
  KernelDesc k = base_kernel();
  k.arrays[0].access = Access::kStrided;
  k.arrays[0].segments_per_outer = 3;  // does not divide 32
  EXPECT_TRUE(has_code(check_kernel_desc(k), "SWK002"));
}

TEST(DescChecks, Swk002FiresOnWritableBroadcast) {
  KernelDesc k = base_kernel();
  k.arrays.push_back({.name = "lut",
                      .dir = Dir::kOut,
                      .access = Access::kBroadcast,
                      .broadcast_bytes = 256});
  EXPECT_TRUE(has_code(check_kernel_desc(k), "SWK002"));
}

TEST(DescChecks, Swk002CleanOnDividingSegmentsAndReadOnlyBroadcast) {
  KernelDesc k = base_kernel();
  k.arrays[0].access = Access::kStrided;
  k.arrays[0].segments_per_outer = 4;
  k.arrays.push_back({.name = "lut",
                      .dir = Dir::kIn,
                      .access = Access::kBroadcast,
                      .broadcast_bytes = 256});
  EXPECT_FALSE(has_code(check_kernel_desc(k), "SWK002"));
}

// ---- SWK003: zero-size gloads ---------------------------------------------

KernelDesc indirect_kernel(std::uint32_t gload_bytes) {
  KernelDesc k = base_kernel();
  k.arrays.push_back({.name = "idx",
                      .dir = Dir::kIn,
                      .access = Access::kIndirect,
                      .gloads_per_inner = 0.5,
                      .gload_bytes = gload_bytes});
  return k;
}

TEST(DescChecks, Swk003FiresOnZeroGloadBytes) {
  const auto diags = check_kernel_desc(indirect_kernel(0));
  EXPECT_TRUE(has_code(diags, "SWK003"));
  EXPECT_EQ(severity_of(diags, "SWK003"), Severity::kError);
}

TEST(DescChecks, Swk003CleanOnPositiveGloadBytes) {
  EXPECT_FALSE(has_code(check_kernel_desc(indirect_kernel(8)), "SWK003"));
}

// ---- SWK004: fraction ranges ----------------------------------------------

TEST(DescChecks, Swk004FiresOnOutOfRangeFractions) {
  KernelDesc k = base_kernel();
  k.comp_imbalance = 1.5;
  k.gload_coalesceable = -0.1;
  const auto diags = check_kernel_desc(k);
  EXPECT_TRUE(has_code(diags, "SWK004"));
  EXPECT_GE(count_at_least(diags, Severity::kError), 2u);
}

TEST(DescChecks, Swk004FiresOnNanFraction) {
  KernelDesc k = base_kernel();
  k.gload_imbalance = std::nan("");
  EXPECT_TRUE(has_code(check_kernel_desc(k), "SWK004"));
}

TEST(DescChecks, Swk004CleanOnValidFractions) {
  KernelDesc k = base_kernel();
  k.comp_imbalance = 0.3;
  k.gload_coalesceable = 1.0;
  EXPECT_FALSE(has_code(check_kernel_desc(k), "SWK004"));
}

// ---- SWD001: SPM overflow (with the double-buffer factor) -----------------

TEST(DescChecks, Swd001FiresOnOverflowAndComputesFixitTile) {
  KernelDesc k = base_kernel();
  k.arrays[0].bytes_per_outer = 1024;
  LaunchParams p = base_params();
  p.tile = 128;  // 128 x 1056 B > 64 KiB
  const auto diags = check_launch(k, p, kArch);
  ASSERT_TRUE(has_code(diags, "SWD001"));
  EXPECT_EQ(severity_of(diags, "SWD001"), Severity::kError);
  // 65536 / 1056 = 62: the fix-it must name the largest legal tile.
  EXPECT_NE(fixit_of(diags, "SWD001").find("62"), std::string::npos);
}

TEST(DescChecks, Swd001CountsTheDoubleBufferFootprintTwice) {
  KernelDesc k = base_kernel();
  k.arrays[0].bytes_per_outer = 1024;
  LaunchParams p = base_params();
  p.tile = 48;  // 48 x 1056 = 50688 B: fits single-, not double-buffered
  EXPECT_FALSE(has_code(check_launch(k, p, kArch), "SWD001"));
  p.double_buffer = true;
  const auto diags = check_launch(k, p, kArch);
  ASSERT_TRUE(has_code(diags, "SWD001"));
  // The fix-it must point out that dropping double buffering also works.
  EXPECT_NE(fixit_of(diags, "SWD001").find("double buffering"),
            std::string::npos);
}

TEST(DescChecks, Swd001CleanWhenFootprintFits) {
  EXPECT_FALSE(
      has_code(check_launch(base_kernel(), base_params(), kArch), "SWD001"));
}

// ---- SWD002: illegal vectorization ----------------------------------------

TEST(DescChecks, Swd002FiresOnNonVectorizableBody) {
  LaunchParams p = base_params();
  p.vector_width = 4;
  const auto diags = check_launch(base_kernel(), p, kArch);
  ASSERT_TRUE(has_code(diags, "SWD002"));
  EXPECT_EQ(severity_of(diags, "SWD002"), Severity::kError);
}

TEST(DescChecks, Swd002CleanOnVectorizableBody) {
  KernelDesc k = base_kernel();
  k.vectorizable = true;
  LaunchParams p = base_params();
  p.vector_width = 4;
  EXPECT_FALSE(has_code(check_launch(k, p, kArch), "SWD002"));
}

// ---- SWD003: oversized gload requests -------------------------------------

TEST(DescChecks, Swd003FiresAboveTheGloadLimit) {
  const auto diags = check_kernel_desc(indirect_kernel(64));
  ASSERT_TRUE(has_code(diags, "SWD003"));
  EXPECT_NE(fixit_of(diags, "SWD003").find("32"), std::string::npos);
}

TEST(DescChecks, Swd003CleanAtTheLimit) {
  EXPECT_FALSE(has_code(check_kernel_desc(indirect_kernel(32)), "SWD003"));
}

// ---- SWD004: the Gload-fallback cliff (Fig. 7a) ---------------------------

TEST(DescChecks, Swd004FiresBelowDmaMinTile) {
  KernelDesc k = base_kernel();
  k.dma_min_tile = 16;
  LaunchParams p = base_params();
  p.tile = 8;
  const auto diags = check_launch(k, p, kArch);
  ASSERT_TRUE(has_code(diags, "SWD004"));
  EXPECT_EQ(severity_of(diags, "SWD004"), Severity::kWarning);
  EXPECT_NE(fixit_of(diags, "SWD004").find("16"), std::string::npos);
}

TEST(DescChecks, Swd004CleanAtDmaMinTile) {
  KernelDesc k = base_kernel();
  k.dma_min_tile = 16;
  LaunchParams p = base_params();
  p.tile = 16;
  EXPECT_FALSE(has_code(check_launch(k, p, kArch), "SWD004"));
}

// ---- SWD005: sub-transaction DMA segments (Fig. 9) ------------------------

KernelDesc block2d_kernel() {
  KernelDesc k = base_kernel();
  k.arrays = {{.name = "grid",
               .dir = Dir::kInOut,
               .access = Access::kBlock2D,
               .bytes_per_outer = 64,
               .segments_per_outer = 8}};  // 8-byte rows
  return k;
}

TEST(DescChecks, Swd005WarnsOnFixableSubTransactionSegments) {
  LaunchParams p = base_params();
  p.tile = 16;  // 16 x 8 B = 128-byte segments < 256
  const auto diags = check_launch(block2d_kernel(), p, kArch);
  ASSERT_TRUE(has_code(diags, "SWD005"));
  EXPECT_EQ(severity_of(diags, "SWD005"), Severity::kWarning);
  // 256 / 8 = 32: the closed-form fix-it tile.
  EXPECT_NE(fixit_of(diags, "SWD005").find("32"), std::string::npos);
}

TEST(DescChecks, Swd005NotesInherentStridedRowWaste) {
  KernelDesc k = base_kernel();
  k.arrays[0].access = Access::kStrided;
  k.arrays[0].bytes_per_outer = 1024;
  k.arrays[0].segments_per_outer = 8;  // 128-byte rows, tile-independent
  const auto diags = check_launch(k, base_params(), kArch);
  ASSERT_TRUE(has_code(diags, "SWD005"));
  // No launch parameter fixes a strided row: reported as a note.
  EXPECT_EQ(severity_of(diags, "SWD005"), Severity::kNote);
  EXPECT_NE(fixit_of(diags, "SWD005").find("layout"), std::string::npos);
}

TEST(DescChecks, Swd005NotesTrickleArrays) {
  // A sub-transaction segment on an array carrying a negligible share of
  // the staged traffic is a note, not a warning.
  KernelDesc k = base_kernel();
  k.arrays = {{"bulk", Dir::kIn, Access::kContiguous, 1024},
              {"tiny", Dir::kOut, Access::kContiguous, 8}};
  LaunchParams p = base_params();
  p.tile = 16;  // tiny: 128-byte segments, 8/1032 of the traffic
  const auto diags = check_launch(k, p, kArch);
  ASSERT_TRUE(has_code(diags, "SWD005"));
  EXPECT_EQ(severity_of(diags, "SWD005"), Severity::kNote);
}

TEST(DescChecks, Swd005CleanAtWholeTransactions) {
  LaunchParams p = base_params();
  p.tile = 32;  // 32 x 8 B = exactly one transaction per row
  EXPECT_FALSE(has_code(check_launch(block2d_kernel(), p, kArch), "SWD005"));
}

// ---- SWD006: idle CPEs ----------------------------------------------------

TEST(DescChecks, Swd006FiresWhenTileStarvesCpes) {
  KernelDesc k = base_kernel();
  k.n_outer = 64;
  LaunchParams p = base_params();
  p.tile = 32;  // only 2 chunks for 64 requested CPEs
  const auto diags = check_launch(k, p, kArch);
  ASSERT_TRUE(has_code(diags, "SWD006"));
  EXPECT_EQ(severity_of(diags, "SWD006"), Severity::kWarning);
}

TEST(DescChecks, Swd006CleanWhenEveryCpeGetsAChunk) {
  KernelDesc k = base_kernel();
  k.n_outer = 64;
  LaunchParams p = base_params();
  p.tile = 1;
  EXPECT_FALSE(has_code(check_launch(k, p, kArch), "SWD006"));
}

// ---- SWD007: launch parameters out of range -------------------------------

TEST(DescChecks, Swd007FiresOnEachOutOfRangeParameter) {
  LaunchParams p = base_params();
  p.tile = 0;
  p.unroll = 65;
  p.vector_width = 3;
  p.requested_cpes = 1000;
  const auto diags = check_launch(base_kernel(), p, kArch);
  EXPECT_TRUE(has_code(diags, "SWD007"));
  EXPECT_GE(count_at_least(diags, Severity::kError), 4u);
}

TEST(DescChecks, Swd007CleanOnValidParameters) {
  EXPECT_FALSE(
      has_code(check_launch(base_kernel(), base_params(), kArch), "SWD007"));
}

}  // namespace
}  // namespace swperf::analysis
