// Triggering + clean fixture pairs for the SWP* dataflow codes, plus the
// CpeProgram builder guards that catch the constructible subset of them at
// construction time.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/checker.h"
#include "isa/block.h"
#include "sim/program.h"
#include "sw/error.h"
#include "swacc/lower.h"

namespace swperf::analysis {
namespace {

const sw::ArchParams kArch = sw::ArchParams::sw26010();

bool has_code(const Diagnostics& diags, const std::string& code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

mem::DmaRequest req(std::uint64_t bytes = 1024) {
  return mem::DmaRequest::contiguous(bytes);
}

sim::KernelBinary one_block_binary() {
  isa::BlockBuilder b("body");
  const auto x = b.spm_load();
  b.spm_store(b.fadd(x, x));
  sim::KernelBinary bin;
  bin.add_block(std::move(b).build());
  return bin;
}

Diagnostics check(const std::vector<sim::CpeProgram>& progs) {
  return check_program(one_block_binary(), progs, kArch);
}

/// A correct double-buffered pipeline over `chunks` chunks, alternating
/// parity handles 0/1 — the Fig. 5 structure.
sim::CpeProgram double_buffer_program(int chunks) {
  sim::CpeProgram p;
  p.dma(req(), 0);
  for (int c = 0; c < chunks; ++c) {
    const int cur = c % 2;
    if (c + 1 < chunks) p.dma(req(), 1 - cur);
    p.dma_wait(cur);
    p.compute(0, 64);
  }
  return p;
}

// ---- SWP001: wait without issue -------------------------------------------

TEST(DataflowChecks, Swp001FiresOnDoubleWait) {
  sim::CpeProgram p;
  p.dma(req(), 0).dma_wait(0).dma_wait(0);  // second wait has nothing to do
  EXPECT_TRUE(has_code(check({p}), "SWP001"));
}

TEST(DataflowChecks, Swp001FiresOnWaitBeforeIssue) {
  // The fluent builder rejects waits on never-issued handles, but programs
  // assembled op-by-op (or reordered) can still express them.
  sim::CpeProgram p;
  p.ops.push_back(sim::DmaWaitOp{2});
  EXPECT_TRUE(has_code(check({p}), "SWP001"));
}

TEST(DataflowChecks, Swp001CleanOnMatchedIssueAndWait) {
  sim::CpeProgram p;
  p.dma(req(), 0).dma_wait(0);
  EXPECT_FALSE(has_code(check({p}), "SWP001"));
}

// ---- SWP002: issue on a busy handle ---------------------------------------

TEST(DataflowChecks, Swp002FiresOnReissueWithoutWait) {
  sim::CpeProgram p;
  p.dma(req(), 0).dma(req(), 0).dma_wait(0);
  EXPECT_TRUE(has_code(check({p}), "SWP002"));
}

TEST(DataflowChecks, Swp002CleanOnParityHandles) {
  EXPECT_FALSE(has_code(check({double_buffer_program(4)}), "SWP002"));
}

// ---- SWP003: leaked in-flight DMA at program end --------------------------

TEST(DataflowChecks, Swp003FiresOnMissingFinalWait) {
  sim::CpeProgram p;
  p.dma(req(), 0).compute(0, 64);  // never waited
  const auto diags = check({p});
  ASSERT_TRUE(has_code(diags, "SWP003"));
  for (const auto& d : diags) {
    if (d.code == "SWP003") {
      EXPECT_EQ(d.severity, Severity::kWarning);
      EXPECT_NE(d.fixit.find("dma_wait(0)"), std::string::npos);
    }
  }
}

TEST(DataflowChecks, Swp003CatchesDoubleBufferMissingItsFinalWait) {
  // The classic Fig. 5 bug: the drain wait of the last chunk is dropped.
  auto good = double_buffer_program(6);
  EXPECT_TRUE(clean(check({good})));

  auto bad = good;
  ASSERT_TRUE(std::holds_alternative<sim::ComputeOp>(bad.ops.back()));
  bad.ops.pop_back();  // final compute
  ASSERT_TRUE(std::holds_alternative<sim::DmaWaitOp>(bad.ops.back()));
  bad.ops.pop_back();  // final dma_wait — the bug under test
  EXPECT_TRUE(has_code(check({bad}), "SWP003"));
}

TEST(DataflowChecks, Swp003CleanWhenEveryDmaIsDrained) {
  EXPECT_FALSE(has_code(check({double_buffer_program(6)}), "SWP003"));
}

// ---- SWP004: barrier parity across CPEs -----------------------------------

TEST(DataflowChecks, Swp004FiresOnMismatchedBarrierCounts) {
  sim::CpeProgram a;
  a.compute(0, 8).barrier();
  sim::CpeProgram b;
  b.compute(0, 8);  // no barrier: the launch deadlocks
  EXPECT_TRUE(has_code(check({a, b}), "SWP004"));
}

TEST(DataflowChecks, Swp004CleanOnUniformBarriers) {
  sim::CpeProgram a;
  a.compute(0, 8).barrier();
  sim::CpeProgram b;
  b.compute(0, 4).barrier();
  EXPECT_FALSE(has_code(check({a, b}), "SWP004"));
}

// ---- SWP005: block references ---------------------------------------------

TEST(DataflowChecks, Swp005FiresOnOutOfRangeBlockId) {
  sim::CpeProgram p;
  p.compute(5, 8);  // the binary has exactly one block
  EXPECT_TRUE(has_code(check({p}), "SWP005"));
}

TEST(DataflowChecks, Swp005CleanOnValidBlockId) {
  sim::CpeProgram p;
  p.compute(0, 8);
  EXPECT_FALSE(has_code(check({p}), "SWP005"));
}

// ---- SWP006: handle range -------------------------------------------------

TEST(DataflowChecks, Swp006FiresOnOutOfRangeHandle) {
  sim::CpeProgram p;
  p.ops.push_back(sim::DmaOp{req(), sim::kMaxDmaHandles});
  EXPECT_TRUE(has_code(check({p}), "SWP006"));

  sim::CpeProgram w;
  w.ops.push_back(sim::DmaWaitOp{sim::kMaxDmaHandles + 3});
  EXPECT_TRUE(has_code(check({w}), "SWP006"));
}

TEST(DataflowChecks, Swp006CleanAcrossTheWholeHandleRange) {
  sim::CpeProgram p;
  for (int h = 0; h < sim::kMaxDmaHandles; ++h) p.dma(req(), h);
  for (int h = 0; h < sim::kMaxDmaHandles; ++h) p.dma_wait(h);
  EXPECT_FALSE(has_code(check({p}), "SWP006"));
}

// ---- CpeProgram builder guards (construction-time subset) -----------------

TEST(ProgramBuilderGuards, RejectsOutOfRangeDmaHandle) {
  sim::CpeProgram p;
  EXPECT_THROW(p.dma(req(), sim::kMaxDmaHandles), sw::Error);
  EXPECT_NO_THROW(p.dma(req(), sim::kMaxDmaHandles - 1));
}

TEST(ProgramBuilderGuards, RejectsWaitOnNeverIssuedHandle) {
  sim::CpeProgram p;
  EXPECT_THROW(p.dma_wait(0), sw::Error);
  p.dma(req(), 0);
  EXPECT_NO_THROW(p.dma_wait(0));
  EXPECT_THROW(p.dma_wait(1), sw::Error);  // only handle 0 was issued
}

TEST(ProgramBuilderGuards, RejectsOutOfRangeWaitHandle) {
  sim::CpeProgram p;
  p.dma(req(), 0);
  EXPECT_THROW(p.dma_wait(-1), sw::Error);
  EXPECT_THROW(p.dma_wait(sim::kMaxDmaHandles), sw::Error);
}

TEST(ProgramBuilderGuards, BlockingDmaNeedsNoHandleState) {
  sim::CpeProgram p;
  EXPECT_NO_THROW(p.dma(req()));  // handle -1: blocking
  EXPECT_TRUE(clean(check({p})));
}

// ---- Lowered double-buffer programs pass the dataflow pass ----------------

TEST(DataflowChecks, LoweredDoubleBufferKernelIsClean) {
  isa::BlockBuilder b("body");
  const auto x = b.spm_load();
  b.spm_store(b.fadd(x, x));
  b.loop_overhead(2);
  swacc::KernelDesc k;
  k.name = "db";
  k.n_outer = 4096;
  k.inner_iters = 4;
  k.body = std::move(b).build();
  k.arrays = {{"in", swacc::Dir::kIn, swacc::Access::kContiguous, 32},
              {"out", swacc::Dir::kOut, swacc::Access::kContiguous, 32}};
  k.dma_min_tile = 1;
  swacc::LaunchParams p;
  p.tile = 16;
  p.requested_cpes = 64;
  p.double_buffer = true;
  const auto lk = swacc::lower(k, p, kArch);
  EXPECT_TRUE(clean(check_program(lk.binary, lk.programs, kArch)));
}

}  // namespace
}  // namespace swperf::analysis
